package decongestant_test

// One benchmark per table/figure of the paper's evaluation, plus the
// ablation variants. Each iteration runs a time-shortened version of
// the experiment (stretch < 1) and reports the headline quantities as
// custom metrics, so `go test -bench=. -benchtime=1x -benchmem`
// regenerates the whole evaluation in miniature. For the full-length
// runs use cmd/decongestant-bench.

import (
	"testing"
	"time"

	"decongestant/internal/experiments"
)

// benchStretch shortens experiment timelines for bench iterations.
const benchStretch = 0.06

func reportRow(b *testing.B, prefix string, r experiments.Row) {
	b.ReportMetric(r.Throughput, prefix+"_thr_ops/s")
	b.ReportMetric(float64(r.P80)/float64(time.Millisecond), prefix+"_p80_ms")
	b.ReportMetric(r.PctSecondary, prefix+"_sec_pct")
}

func BenchmarkTable1Mix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig2AdaptToReadRatioJump(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts := experiments.Fig2(int64(i+1), benchStretch)
		sum := experiments.SummarizeTimeSeries(ts, 0, 0)
		b.StopTimer()
		reportRow(b, "decongestant", sum["Decongestant"])
		reportRow(b, "primary", sum["Primary"])
		b.StartTimer()
	}
}

func BenchmarkFig3AdaptToLoadDrop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts := experiments.Fig3(int64(i+1), benchStretch)
		sum := experiments.SummarizeTimeSeries(ts, 0, 0)
		b.StopTimer()
		reportRow(b, "decongestant", sum["Decongestant"])
		b.StartTimer()
	}
}

func BenchmarkFig4TPCCBurst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts := experiments.Fig4(int64(i+1), benchStretch)
		sum := experiments.SummarizeTimeSeries(ts, 0, 0)
		b.StopTimer()
		reportRow(b, "decongestant", sum["Decongestant"])
		b.StartTimer()
	}
}

func BenchmarkFig5ClientSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := experiments.Fig5(int64(i+1), []int{20, 160}, 0.2)
		b.StopTimer()
		last := sw.Points[len(sw.Points)-1]
		b.ReportMetric(last.Values["Decongestant/throughput"], "d_thr_ops/s")
		b.ReportMetric(last.Values["Secondary/throughput"], "s_thr_ops/s")
		b.ReportMetric(last.Values["Primary/throughput"], "p_thr_ops/s")
		b.ReportMetric(last.Values["Decongestant/pct_secondary"], "d_sec_pct")
		b.StartTimer()
	}
}

func BenchmarkFig6YCSBTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := experiments.Fig6(int64(i+1), []int{100}, 0.15)
		b.StopTimer()
		pt := sw.Points[0]
		b.ReportMetric(pt.Values["Decongestant/throughput"], "d_thr_ops/s")
		b.ReportMetric(pt.Values["Decongestant/p80_staleness_s"], "d_stale_s")
		b.ReportMetric(pt.Values["Secondary/p80_staleness_s"], "s_stale_s")
		b.StartTimer()
	}
}

func BenchmarkFig7TPCCTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := experiments.Fig7(int64(i+1), []int{100}, 0.12)
		b.StopTimer()
		pt := sw.Points[0]
		b.ReportMetric(pt.Values["Decongestant/throughput"], "d_sl_thr/s")
		b.ReportMetric(pt.Values["Decongestant/p80_staleness_s"], "d_stale_s")
		b.StartTimer()
	}
}

func BenchmarkFig8EstimateVsObserved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(int64(i+1), 0.15)
		b.StopTimer()
		b.ReportMetric(float64(res.SampleCount), "samples")
		b.StartTimer()
	}
}

func BenchmarkFig9Bound10s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(int64(i+1), 0.3)
		b.StopTimer()
		b.ReportMetric(float64(res.ViolationCount), "violations")
		b.ReportMetric(float64(res.SampleCount), "samples")
		b.ReportMetric(float64(res.GatedSeconds), "gated_s")
		b.StartTimer()
	}
}

func BenchmarkFig10Bound3s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10(int64(i+1), 0.2)
		b.StopTimer()
		b.ReportMetric(float64(res.ViolationCount), "violations")
		b.ReportMetric(float64(res.SampleCount), "samples")
		b.StartTimer()
	}
}

func BenchmarkFig11SWorkloadImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw := experiments.Fig11(int64(i+1), []int{100}, 0.15)
		b.StopTimer()
		pt := sw.Points[0]
		b.ReportMetric(pt.Values["with_s/throughput"], "with_s_thr/s")
		b.ReportMetric(pt.Values["no_s/throughput"], "no_s_thr/s")
		b.StartTimer()
	}
}

// Ablation benches: each design choice from DESIGN.md, one bench per
// variant so their metrics line up in the -bench output.
func benchAblation(b *testing.B, name string) {
	var variant experiments.AblationVariant
	found := false
	for _, v := range experiments.AblationVariants() {
		if v.Name == name {
			variant, found = v, true
			break
		}
	}
	if !found {
		b.Fatalf("unknown variant %q", name)
	}
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblation(int64(i+1), variant, 0.1)
		b.StopTimer()
		b.ReportMetric(r.Throughput, "thr_ops/s")
		b.ReportMetric(r.PctSecondary, "sec_pct")
		b.ReportMetric(float64(r.GateTrips), "gate_trips")
		b.StartTimer()
	}
}

func BenchmarkAblationPaper(b *testing.B)           { benchAblation(b, "paper") }
func BenchmarkAblationRTT(b *testing.B)             { benchAblation(b, "no-rtt-subtraction") }
func BenchmarkAblationExploration(b *testing.B)     { benchAblation(b, "no-exploration") }
func BenchmarkAblationMedianVsMean(b *testing.B)    { benchAblation(b, "mean-not-median") }
func BenchmarkAblationStalenessSource(b *testing.B) { benchAblation(b, "staleness-from-secondary") }
func BenchmarkAblationThresholds(b *testing.B)      { benchAblation(b, "tight-ratio-band") }
func BenchmarkAblationDelta(b *testing.B)           { benchAblation(b, "delta-30pct") }
