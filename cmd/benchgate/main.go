// Command benchgate enforces the PR 7 tracing-overhead budget from a
// benchjson comparison file. It reads the JSON produced by
// cmd/benchjson (current + baseline metric means per benchmark) and
// fails when the named sampling-off benchmarks regress: throughput
// (rt/s) below -min-ratio of the pre-tracing baseline, or more
// allocs/op than the baseline (tracing off must add zero allocations
// on the hot path).
//
// -min-ratio 0 switches to report-only mode: ratios are printed but
// nothing fails. CI smoke runs (-benchtime 1x) use this, since
// single-iteration throughput is noise; the deterministic half of the
// alloc gate still runs there as TestEncodeRequestSamplingOffZeroAllocs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
)

type result struct {
	Runs    int                `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

type doc struct {
	Current  map[string]*result `json:"current"`
	Baseline map[string]*result `json:"baseline"`
}

func main() {
	file := flag.String("file", "BENCH_PR7.json", "benchjson comparison file to gate on")
	minRatio := flag.Float64("min-ratio", 0.97,
		"minimum current/baseline rt/s ratio for the gated benchmarks (0 = report only)")
	benches := flag.String("benches", "BenchmarkWireConcurrentPointReads,BenchmarkWireFindQuery",
		"comma-separated benchmarks to gate (the sampling-off hot paths)")
	flag.Parse()

	raw, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	var d doc
	if err := json.Unmarshal(raw, &d); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	if d.Baseline == nil {
		fmt.Fprintln(os.Stderr, "benchgate: no baseline section in", *file)
		os.Exit(1)
	}

	failed := false
	for _, name := range strings.Split(*benches, ",") {
		name = strings.TrimSpace(name)
		cur, base := d.Current[name], d.Baseline[name]
		if cur == nil || base == nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s missing from current or baseline\n", name)
			failed = true
			continue
		}
		ratio := math.NaN()
		if bv := base.Metrics["rt/s"]; bv > 0 {
			ratio = cur.Metrics["rt/s"] / bv
		}
		// allocs/op means are averaged over integer per-run values;
		// round before comparing so 15.0000001 does not read as a leak.
		curAllocs := math.Round(cur.Metrics["allocs/op"])
		baseAllocs := math.Round(base.Metrics["allocs/op"])
		status := "ok"
		if *minRatio > 0 {
			if !(ratio >= *minRatio) {
				status = fmt.Sprintf("FAIL throughput (< %.2f)", *minRatio)
				failed = true
			} else if curAllocs > baseAllocs {
				status = "FAIL allocs (tracing off must add zero allocs/op)"
				failed = true
			}
		} else {
			status = "report-only"
		}
		fmt.Printf("benchgate: %-36s rt/s %9.0f vs %9.0f (x%.3f)  allocs/op %3.0f vs %3.0f  %s\n",
			name, cur.Metrics["rt/s"], base.Metrics["rt/s"], ratio, curAllocs, baseAllocs, status)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: sampling-off overhead budget exceeded")
		os.Exit(1)
	}
}
