// Command benchgate enforces throughput budgets from a benchjson
// comparison file. It reads the JSON produced by cmd/benchjson
// (current + baseline metric means per benchmark) and applies two
// kinds of gates:
//
//   - -benches (vs baseline): the named benchmarks fail when current
//     throughput (rt/s) drops below -min-ratio of the recorded
//     baseline, or when they allocate more per op than the baseline.
//     This is the PR 7 tracing-overhead budget.
//
//   - -alloc-benches (vs baseline): like -benches but only the
//     allocs/op bound is enforced; the rt/s ratio is printed for the
//     record. This is the PR 9 unleased-path budget, where the frame
//     bytes are proven identical by a deterministic test and a
//     throughput gate would only re-measure runner noise.
//
//   - -scale (within current): "A/B>=R" pairs fail when benchmark A's
//     current rt/s is less than R times benchmark B's. This is the
//     PR 8 sharding-scale budget (4-shard mongos throughput vs
//     1-shard, parallel scatter vs sequential) and the PR 9
//     strong-read scaling budget (5-member linearizable throughput vs
//     primary-only), where the claim is a ratio between two fresh
//     runs rather than a regression bound.
//
// -min-ratio 0 switches to report-only mode for both gates: ratios
// are printed but nothing fails. CI smoke runs (-benchtime 1x) use
// this, since single-iteration throughput is noise; the deterministic
// halves of the alloc gates still run there as regular tests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Runs    int                `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

type doc struct {
	Current  map[string]*result `json:"current"`
	Baseline map[string]*result `json:"baseline"`
}

func main() {
	file := flag.String("file", "BENCH_PR7.json", "benchjson comparison file to gate on")
	minRatio := flag.Float64("min-ratio", 0.97,
		"minimum current/baseline rt/s ratio for the gated benchmarks (0 = report only)")
	benches := flag.String("benches", "BenchmarkWireConcurrentPointReads,BenchmarkWireFindQuery",
		"comma-separated benchmarks to gate against the baseline (empty disables)")
	allocBenches := flag.String("alloc-benches", "",
		"comma-separated benchmarks whose allocs/op must not exceed the baseline; their rt/s ratio is reported but not gated (for paths proven byte-identical by a deterministic test, where a throughput gate only adds runner noise)")
	scale := flag.String("scale", "",
		"comma-separated A/B>=R pairs gated within the current section (e.g. BenchmarkFast/BenchmarkSlow>=2.5)")
	flag.Parse()

	raw, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	var d doc
	if err := json.Unmarshal(raw, &d); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	if d.Baseline == nil && (*benches != "" || *allocBenches != "") {
		fmt.Fprintln(os.Stderr, "benchgate: no baseline section in", *file)
		os.Exit(1)
	}

	failed := false
	for _, name := range strings.Split(*benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		cur, base := d.Current[name], d.Baseline[name]
		if cur == nil || base == nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s missing from current or baseline\n", name)
			failed = true
			continue
		}
		ratio := math.NaN()
		if bv := base.Metrics["rt/s"]; bv > 0 {
			ratio = cur.Metrics["rt/s"] / bv
		}
		// allocs/op means are averaged over integer per-run values;
		// round before comparing so 15.0000001 does not read as a leak.
		curAllocs := math.Round(cur.Metrics["allocs/op"])
		baseAllocs := math.Round(base.Metrics["allocs/op"])
		status := "ok"
		if *minRatio > 0 {
			if !(ratio >= *minRatio) {
				status = fmt.Sprintf("FAIL throughput (< %.2f)", *minRatio)
				failed = true
			} else if curAllocs > baseAllocs {
				status = "FAIL allocs (tracing off must add zero allocs/op)"
				failed = true
			}
		} else {
			status = "report-only"
		}
		fmt.Printf("benchgate: %-36s rt/s %9.0f vs %9.0f (x%.3f)  allocs/op %3.0f vs %3.0f  %s\n",
			name, cur.Metrics["rt/s"], base.Metrics["rt/s"], ratio, curAllocs, baseAllocs, status)
	}
	for _, name := range strings.Split(*allocBenches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		cur, base := d.Current[name], d.Baseline[name]
		if cur == nil || base == nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s missing from current or baseline\n", name)
			failed = true
			continue
		}
		ratio := math.NaN()
		if bv := base.Metrics["rt/s"]; bv > 0 {
			ratio = cur.Metrics["rt/s"] / bv
		}
		curAllocs := math.Round(cur.Metrics["allocs/op"])
		baseAllocs := math.Round(base.Metrics["allocs/op"])
		status := "ok"
		if *minRatio > 0 {
			if curAllocs > baseAllocs {
				status = "FAIL allocs (must add zero allocs/op over the baseline)"
				failed = true
			}
		} else {
			status = "report-only"
		}
		fmt.Printf("benchgate: %-36s rt/s %9.0f vs %9.0f (x%.3f, not gated)  allocs/op %3.0f vs %3.0f  %s\n",
			name, cur.Metrics["rt/s"], base.Metrics["rt/s"], ratio, curAllocs, baseAllocs, status)
	}
	for _, pair := range strings.Split(*scale, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		names, wantStr, ok := strings.Cut(pair, ">=")
		num, den, ok2 := strings.Cut(names, "/")
		if !ok || !ok2 {
			fmt.Fprintf(os.Stderr, "benchgate: bad -scale pair %q (want A/B>=R)\n", pair)
			failed = true
			continue
		}
		want, err := strconv.ParseFloat(strings.TrimSpace(wantStr), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: bad -scale ratio in %q: %v\n", pair, err)
			failed = true
			continue
		}
		num, den = strings.TrimSpace(num), strings.TrimSpace(den)
		cn, cd := d.Current[num], d.Current[den]
		if cn == nil || cd == nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s or %s missing from current\n", num, den)
			failed = true
			continue
		}
		ratio := math.NaN()
		if dv := cd.Metrics["rt/s"]; dv > 0 {
			ratio = cn.Metrics["rt/s"] / dv
		}
		status := "ok"
		if *minRatio > 0 {
			if !(ratio >= want) {
				status = fmt.Sprintf("FAIL scale (< %.2f)", want)
				failed = true
			}
		} else {
			status = "report-only"
		}
		fmt.Printf("benchgate: %-36s rt/s %9.0f vs %9.0f (x%.3f, want >= %.2f)  %s\n",
			num+"/"+den, cn.Metrics["rt/s"], cd.Metrics["rt/s"], ratio, want, status)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: benchmark budget exceeded")
		os.Exit(1)
	}
}
