// Command benchjson converts `go test -bench` output into a JSON
// record. Fed the current run on stdin and (optionally) a recorded
// pre-change baseline via -baseline, it emits both result sets plus
// per-benchmark improvement factors, normalized so that > 1 always
// means "better" (time and allocation metrics invert; throughput
// metrics divide directly). The repo's `make bench` target uses it to
// produce BENCH_PR3.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result aggregates the -count repetitions of one benchmark.
type result struct {
	Runs    int                `json:"runs"`
	Metrics map[string]float64 `json:"metrics"` // unit -> mean value
}

// lowerIsBetter reports whether a smaller value of the unit is an
// improvement (times and allocations, as opposed to throughputs).
func lowerIsBetter(unit string) bool {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return true
	}
	return !strings.HasSuffix(unit, "/s")
}

// parse reads `go test -bench` output and aggregates benchmark lines
// by name (the -CPU suffix is stripped), averaging each metric across
// repetitions. Non-benchmark lines are ignored.
func parse(r io.Reader) (map[string]*result, error) {
	sums := map[string]map[string]float64{}
	runs := map[string]int{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count: not a benchmark line
		}
		if sums[name] == nil {
			sums[name] = map[string]float64{}
		}
		runs[name]++
		// Remaining fields come in value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], sc.Text())
			}
			sums[name][fields[i+1]] += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]*result, len(sums))
	for name, m := range sums {
		res := &result{Runs: runs[name], Metrics: make(map[string]float64, len(m))}
		for unit, sum := range m {
			res.Metrics[unit] = sum / float64(runs[name])
		}
		out[name] = res
	}
	return out, nil
}

func parseFile(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func main() {
	baselinePath := flag.String("baseline", "", "recorded pre-change `go test -bench` output to compare against")
	flag.Parse()

	current, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	doc := map[string]any{"current": current}
	if *baselinePath != "" {
		baseline, err := parseFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		doc["baseline"] = baseline
		improvement := map[string]map[string]float64{}
		for name, cur := range current {
			base, ok := baseline[name]
			if !ok {
				continue
			}
			row := map[string]float64{}
			for unit, cv := range cur.Metrics {
				bv, ok := base.Metrics[unit]
				if !ok || bv == 0 || cv == 0 {
					continue
				}
				if lowerIsBetter(unit) {
					row[unit] = bv / cv
				} else {
					row[unit] = cv / bv
				}
			}
			if len(row) > 0 {
				improvement[name] = row
			}
		}
		doc["improvement_x"] = improvement
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
