// Command sworkload runs the paper's S staleness prober (§4.1.5)
// standalone against a wire server: a writer stamping wall-clock
// timestamps into a probe document and a reader comparing primary vs
// secondary values, printing the observed staleness distribution.
//
// Usage:
//
//	sworkload -addr 127.0.0.1:27099 -duration 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/metrics"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
	"decongestant/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:27099", "wire server address")
	duration := flag.Duration("duration", 30*time.Second, "how long to probe")
	writeEvery := flag.Duration("write-interval", 50*time.Millisecond, "writer stamp period")
	probeEvery := flag.Duration("probe-interval", 250*time.Millisecond, "reader probe period")
	flag.Parse()

	conn, err := wire.Dial(*addr)
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer conn.Close()
	env := sim.NewRealtimeEnv(time.Now().UnixNano())
	defer env.Shutdown()
	client := driver.NewClient(env, conn)

	var samples []time.Duration
	done := make(chan struct{})

	env.Spawn("writer", func(p sim.Proc) {
		for p.Now() < *duration {
			now := time.Now().UnixNano()
			client.Write(p, func(tx cluster.WriteTxn) (any, error) {
				return nil, tx.Set("sprobe", "cell", storage.D{"ts": now})
			})
			p.Sleep(*writeEvery)
		}
	})
	env.Spawn("reader", func(p sim.Proc) {
		defer close(done)
		read := func(pref driver.ReadPref) int64 {
			res, _, _, err := client.Read(p, driver.ReadOptions{Pref: pref},
				func(v cluster.ReadView) (any, error) {
					d, ok := v.FindByID("sprobe", "cell")
					if !ok {
						return int64(0), nil
					}
					return d.Int("ts"), nil
				})
			if err != nil {
				return -1
			}
			return res.(int64)
		}
		for p.Now() < *duration {
			p.Sleep(*probeEvery)
			primTS := read(driver.Primary)
			secTS := read(driver.Secondary)
			if primTS < 0 || secTS < 0 {
				continue
			}
			st := time.Duration(primTS - secTS)
			if st < 0 {
				st = 0
			}
			samples = append(samples, st)
		}
	})

	<-done
	if len(samples) == 0 {
		log.Fatal("no staleness samples collected")
	}
	fmt.Printf("samples: %d\n", len(samples))
	for _, q := range []float64{0.50, 0.80, 0.99, 1.0} {
		fmt.Printf("P%-3.0f staleness: %v\n", q*100, metrics.PercentileOf(samples, q))
	}
}
