// Command replsetd serves a real-time simulated replica set over TCP
// using the wire protocol, so Decongestant clients (including the
// examples and cmd/sworkload) can run against it as a network service.
//
// Usage:
//
//	replsetd -listen 127.0.0.1:27099 -nodes 3 -seed 1
//
// With -http the same metrics surface is exposed for scraping:
// /metrics serves the Prometheus text exposition, /metrics.json the
// JSON snapshot, and /healthz a liveness probe. /debug/trace exports
// recorded spans (?id=<hex trace id> for one trace, ?limit=N for the
// most recent) and /debug/currentOp the requests in dispatch, both as
// JSON. The admission-control flags (-max-conns, -max-inflight,
// -shed-inflight, -idle-timeout, -slow-op) tune the wire server's
// overload behavior; all default off. Trace sampling is decided by
// clients (the context rides the wire); -current-op toggles the
// server's registry of in-dispatch requests.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/obs/trace"
	"decongestant/internal/sim"
	"decongestant/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:27099", "address to listen on")
	httpAddr := flag.String("http", "", "address for the HTTP observability endpoint (empty disables)")
	nodes := flag.Int("nodes", 3, "replica set size")
	seed := flag.Int64("seed", 1, "environment seed")
	readCost := flag.Duration("read-cost", 500*time.Microsecond, "service time per read unit")
	writeCost := flag.Duration("write-cost", time.Millisecond, "service time per write op")
	metricsEvery := flag.Duration("metrics-interval", 0,
		"log the observability snapshot at this interval (0 disables; it is always logged on shutdown)")
	maxConns := flag.Int("max-conns", 0, "max simultaneous wire connections (0 = unlimited)")
	maxInflight := flag.Int("max-inflight", 0, "max in-service requests per connection (0 = unlimited)")
	shedInflight := flag.Int("shed-inflight", 0,
		"server-wide in-service request ceiling past which requests are shed with a retryable error (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close connections idle this long (0 disables)")
	slowOp := flag.Duration("slow-op", 0, "log requests that take at least this long (0 disables)")
	currentOp := flag.Bool("current-op", true, "maintain the currentOp registry of in-dispatch requests")
	leases := flag.Bool("linearizable-leases", false,
		"grant read leases on heartbeats so every member serves linearizable reads locally")
	leaseDur := flag.Duration("lease-duration", 0,
		"read/leader lease validity window (0 = 4x the heartbeat interval)")
	flag.Parse()

	logger := log.New(os.Stderr, "replsetd: ", log.LstdFlags)
	env := sim.NewRealtimeEnv(*seed)
	cfg := cluster.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.ReadCost = *readCost
	cfg.WriteCost = *writeCost
	cfg.LinearizableLeases = *leases
	cfg.LeaseDuration = *leaseDur
	rs := cluster.New(env, cfg)
	srv := wire.NewServerWith(env, rs, logger, wire.ServerConfig{
		IdleTimeout:        *idleTimeout,
		MaxConns:           *maxConns,
		MaxInflightPerConn: *maxInflight,
		ShedInflight:       *shedInflight,
		SlowOpThreshold:    *slowOp,
		CurrentOp:          *currentOp,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("serving %d-node replica set on %s (primary: node %d)",
		*nodes, ln.Addr(), rs.PrimaryID())
	logger.Printf("metrics available over the wire protocol's %q op", wire.OpMetrics)

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write([]byte(rs.Metrics().Snapshot().Prometheus()))
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
			raw, err := rs.Metrics().Snapshot().JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(raw)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("ok\n"))
		})
		writeJSON := func(w http.ResponseWriter, v any) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(v)
		}
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			tr := rs.Tracer()
			if idStr := r.URL.Query().Get("id"); idStr != "" {
				id, err := trace.ParseID(idStr)
				if err != nil {
					http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
					return
				}
				writeJSON(w, map[string]any{"trace": idStr, "spans": tr.TraceSpans(id)})
				return
			}
			limit := 0
			if ls := r.URL.Query().Get("limit"); ls != "" {
				if n, err := strconv.Atoi(ls); err == nil {
					limit = n
				}
			}
			pinned := []string{}
			for _, id := range tr.Pinned() {
				pinned = append(pinned, trace.IDString(id))
			}
			writeJSON(w, map[string]any{
				"pinned": pinned,
				"spans":  tr.Recent(limit),
			})
		})
		mux.HandleFunc("/debug/currentOp", func(w http.ResponseWriter, r *http.Request) {
			ops := srv.CurrentOps()
			if ops == nil {
				ops = []trace.OpInfo{}
			}
			writeJSON(w, map[string]any{"inprog": ops})
		})
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			logger.Fatalf("http listen: %v", err)
		}
		logger.Printf("scrape endpoints on http://%s/metrics (Prometheus), /metrics.json, /healthz, /debug/trace, /debug/currentOp", hln.Addr())
		go func() {
			if err := http.Serve(hln, mux); err != nil {
				logger.Printf("http serve: %v", err)
			}
		}()
	}

	if *metricsEvery > 0 {
		go func() {
			for range time.Tick(*metricsEvery) {
				logger.Printf("metrics snapshot:\n%s", rs.Metrics().Snapshot().Text())
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Printf("shutting down; final metrics snapshot:\n%s", rs.Metrics().Snapshot().Text())
		srv.Close()
		env.Shutdown()
	}()

	if err := srv.Serve(ln); err != nil {
		logger.Fatalf("serve: %v", err)
	}
}
