// Command replsetd serves a real-time simulated replica set over TCP
// using the wire protocol, so Decongestant clients (including the
// examples and cmd/sworkload) can run against it as a network service.
//
// Usage:
//
//	replsetd -listen 127.0.0.1:27099 -nodes 3 -seed 1
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/sim"
	"decongestant/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:27099", "address to listen on")
	nodes := flag.Int("nodes", 3, "replica set size")
	seed := flag.Int64("seed", 1, "environment seed")
	readCost := flag.Duration("read-cost", 500*time.Microsecond, "service time per read unit")
	writeCost := flag.Duration("write-cost", time.Millisecond, "service time per write op")
	metricsEvery := flag.Duration("metrics-interval", 0,
		"log the observability snapshot at this interval (0 disables; it is always logged on shutdown)")
	flag.Parse()

	logger := log.New(os.Stderr, "replsetd: ", log.LstdFlags)
	env := sim.NewRealtimeEnv(*seed)
	cfg := cluster.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.ReadCost = *readCost
	cfg.WriteCost = *writeCost
	rs := cluster.New(env, cfg)
	srv := wire.NewServer(env, rs, logger)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("serving %d-node replica set on %s (primary: node %d)",
		*nodes, ln.Addr(), rs.PrimaryID())
	logger.Printf("metrics available over the wire protocol's %q op", wire.OpMetrics)

	if *metricsEvery > 0 {
		go func() {
			for range time.Tick(*metricsEvery) {
				logger.Printf("metrics snapshot:\n%s", rs.Metrics().Snapshot().Text())
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Printf("shutting down; final metrics snapshot:\n%s", rs.Metrics().Snapshot().Text())
		srv.Close()
		env.Shutdown()
	}()

	if err := srv.Serve(ln); err != nil {
		logger.Fatalf("serve: %v", err)
	}
}
