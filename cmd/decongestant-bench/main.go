// Command decongestant-bench regenerates the paper's tables and
// figures on the simulated replica set.
//
// Usage:
//
//	decongestant-bench -figure fig5            # one figure
//	decongestant-bench -figure all             # everything
//	decongestant-bench -figure fig2 -stretch 0.25 -seed 7
//
// Figures: table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
// ablations. -stretch scales all experiment durations (1.0 = the
// paper's timeline; smaller is faster but noisier).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strings"
	"time"

	"decongestant/internal/experiments"
)

func main() {
	figure := flag.String("figure", "all", "which figure/table to regenerate (fig2..fig11, table1, ablations, all)")
	seed := flag.Int64("seed", 1, "simulation seed")
	stretch := flag.Float64("stretch", 1.0, "duration multiplier (1.0 = paper timeline)")
	flag.Parse()

	// The virtual-time simulator allocates heavily but briefly; a
	// moderately lazy GC trades some memory headroom for wall time.
	debug.SetGCPercent(150)

	w := os.Stdout
	run := func(name string, fn func()) {
		start := time.Now()
		fn()
		fmt.Fprintf(w, "   [%s done in %s]\n", name, time.Since(start).Round(time.Millisecond))
	}

	figures := map[string]func(){
		"table1": func() {
			fmt.Fprintln(w, "\n== Table 1: transaction mixes ==")
			for _, line := range experiments.Table1() {
				fmt.Fprintln(w, line)
			}
		},
		"fig2": func() { experiments.RenderTimeSeries(w, experiments.Fig2(*seed, *stretch)) },
		"fig3": func() { experiments.RenderTimeSeries(w, experiments.Fig3(*seed, *stretch)) },
		"fig4": func() { experiments.RenderTimeSeries(w, experiments.Fig4(*seed, *stretch)) },
		"fig5": func() { experiments.RenderSweep(w, experiments.Fig5(*seed, nil, *stretch)) },
		"fig6": func() { experiments.RenderSweep(w, experiments.Fig6(*seed, nil, *stretch)) },
		"fig7": func() { experiments.RenderSweep(w, experiments.Fig7(*seed, nil, *stretch)) },
		"fig8": func() { experiments.RenderStaleness(w, experiments.Fig8(*seed, *stretch)) },
		"fig9": func() { experiments.RenderStaleness(w, experiments.Fig9(*seed, *stretch)) },
		"fig10": func() {
			experiments.RenderStaleness(w, experiments.Fig10(*seed, *stretch))
		},
		"fig11": func() { experiments.RenderSweep(w, experiments.Fig11(*seed, nil, *stretch)) },
		"ablations": func() {
			fmt.Fprintln(w, "\n== Ablations: controller design choices (YCSB-B, 180 clients) ==")
			fmt.Fprintf(w, "%-26s %12s %10s %8s %6s %8s\n",
				"variant", "thr(reads/s)", "p80(ms)", "sec%", "gates", "explores")
			for _, r := range experiments.RunAllAblations(*seed, *stretch) {
				fmt.Fprintf(w, "%-26s %12.0f %10.1f %8.1f %6d %8d\n",
					r.Name, r.Throughput,
					float64(r.P80)/float64(time.Millisecond),
					r.PctSecondary, r.GateTrips, r.Explorations)
			}
		},
	}

	order := []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "ablations"}

	which := strings.ToLower(*figure)
	if which == "all" {
		for _, name := range order {
			run(name, figures[name])
		}
		return
	}
	fn, ok := figures[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q; choose one of %s or all\n",
			*figure, strings.Join(order, " "))
		os.Exit(2)
	}
	run(which, fn)
}
