// Command mongosd serves a sharded cluster's query router over TCP
// using the wire protocol. It dials every shard's replsetd, builds a
// chunk- or hash-routed sharding.Router over those connections (one
// Decongestant system per shard), and answers the same op set a
// single replica set does — plus the topology ops list_shards and
// chunk_map, and the admin op move_chunk for live chunk migration.
//
// Usage:
//
//	replsetd -listen 127.0.0.1:27101 &
//	replsetd -listen 127.0.0.1:27102 &
//	mongosd -listen 127.0.0.1:27100 -shards 127.0.0.1:27101,127.0.0.1:27102
//
// Without -split the router hash-partitions by _id (chunks disabled).
// With -split (comma-separated shard-key split points) it builds a
// chunk table over the key ranges, assigned round-robin, and chunks
// can then be split and live-migrated while serving traffic.
//
// The -http observability surface and the admission-control flags
// mirror replsetd's.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"decongestant/internal/cache"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/obs/trace"
	"decongestant/internal/sharding"
	"decongestant/internal/sim"
	"decongestant/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:27100", "address to listen on")
	httpAddr := flag.String("http", "", "address for the HTTP observability endpoint (empty disables)")
	shards := flag.String("shards", "", "comma-separated shard server addresses (required)")
	splits := flag.String("split", "", "comma-separated shard-key split points enabling chunk routing (empty = hash mode)")
	seed := flag.Int64("seed", 1, "environment seed")
	seqScatter := flag.Bool("seq-scatter", false, "scatter to shards sequentially instead of in parallel")
	cacheOn := flag.Bool("cache", false,
		"enable the router-side freshness-priced read cache: bounded point reads spend the client's staleness budget locally before touching a shard")
	cacheBytes := flag.Int("cache-bytes", 0, "cache capacity in bytes before LRU eviction (0 = the 8 MiB default)")
	cacheGuard := flag.Int64("cache-guard", 0,
		"cache validity guard band in seconds, subtracted from every entry's remaining staleness budget (0 = the 1s default)")
	maxConns := flag.Int("max-conns", 0, "max simultaneous wire connections (0 = unlimited)")
	maxInflight := flag.Int("max-inflight", 0, "max in-service requests per connection (0 = unlimited)")
	shedInflight := flag.Int("shed-inflight", 0,
		"server-wide in-service request ceiling past which requests are shed with a retryable error (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close connections idle this long (0 disables)")
	slowOp := flag.Duration("slow-op", 0, "log requests that take at least this long (0 disables)")
	currentOp := flag.Bool("current-op", true, "maintain the currentOp registry of in-dispatch requests")
	metricsEvery := flag.Duration("metrics-interval", 0,
		"log the observability snapshot at this interval (0 disables; it is always logged on shutdown)")
	flag.Parse()

	logger := log.New(os.Stderr, "mongosd: ", log.LstdFlags)
	addrs := splitList(*shards)
	if len(addrs) == 0 {
		logger.Fatalf("need at least one shard address (-shards host:port,host:port,...)")
	}

	env := sim.NewRealtimeEnv(*seed)
	conns := make([]driver.Conn, len(addrs))
	for i, addr := range addrs {
		c, err := wire.Dial(addr)
		if err != nil {
			logger.Fatalf("dial shard %d (%s): %v", i, addr, err)
		}
		defer c.Close()
		conns[i] = c
	}

	opts := sharding.RouterOptions{SequentialScatter: *seqScatter}
	if sp := splitList(*splits); len(sp) > 0 {
		opts.Authority = sharding.NewChunkAuthority(env, sharding.NewChunkMap(sp, len(conns)))
	}
	mongos := sharding.NewMongos(env, conns, addrs, core.DefaultParams(), opts)
	if *cacheOn {
		rc := mongos.Router().EnableCache(cache.Config{MaxBytes: *cacheBytes, GuardBandSecs: *cacheGuard})
		eff := rc.EffectiveConfig()
		logger.Printf("freshness-priced read cache enabled: %d bytes, %ds guard band", eff.MaxBytes, eff.GuardBandSecs)
	}
	srv := wire.NewBackendServer(env, mongos, logger, wire.ServerConfig{
		IdleTimeout:        *idleTimeout,
		MaxConns:           *maxConns,
		MaxInflightPerConn: *maxInflight,
		ShedInflight:       *shedInflight,
		SlowOpThreshold:    *slowOp,
		CurrentOp:          *currentOp,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	mode := "hash"
	if opts.Authority != nil {
		mode = "chunk"
		logger.Printf("chunk table: %d chunks at version %d", opts.Authority.Map().NumChunks(), opts.Authority.Version())
	}
	logger.Printf("routing %d shards (%s mode) on %s", len(conns), mode, ln.Addr())

	if *httpAddr != "" {
		reg, tr := mongos.Metrics(), mongos.Tracer()
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write([]byte(reg.Snapshot().Prometheus()))
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
			raw, err := reg.Snapshot().JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(raw)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("ok\n"))
		})
		writeJSON := func(w http.ResponseWriter, v any) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(v)
		}
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			if idStr := r.URL.Query().Get("id"); idStr != "" {
				id, err := trace.ParseID(idStr)
				if err != nil {
					http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
					return
				}
				writeJSON(w, map[string]any{"trace": idStr, "spans": tr.TraceSpans(id)})
				return
			}
			limit := 0
			if ls := r.URL.Query().Get("limit"); ls != "" {
				if n, err := strconv.Atoi(ls); err == nil {
					limit = n
				}
			}
			pinned := []string{}
			for _, id := range tr.Pinned() {
				pinned = append(pinned, trace.IDString(id))
			}
			writeJSON(w, map[string]any{"pinned": pinned, "spans": tr.Recent(limit)})
		})
		mux.HandleFunc("/debug/currentOp", func(w http.ResponseWriter, r *http.Request) {
			ops := srv.CurrentOps()
			if ops == nil {
				ops = []trace.OpInfo{}
			}
			writeJSON(w, map[string]any{"inprog": ops})
		})
		mux.HandleFunc("/debug/chunks", func(w http.ResponseWriter, r *http.Request) {
			if opts.Authority == nil {
				writeJSON(w, map[string]any{"mode": "hash"})
				return
			}
			writeJSON(w, map[string]any{"mode": "chunk", "map": opts.Authority.Map()})
		})
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			logger.Fatalf("http listen: %v", err)
		}
		logger.Printf("scrape endpoints on http://%s/metrics (Prometheus), /metrics.json, /healthz, /debug/trace, /debug/currentOp, /debug/chunks", hln.Addr())
		go func() {
			if err := http.Serve(hln, mux); err != nil {
				logger.Printf("http serve: %v", err)
			}
		}()
	}

	if *metricsEvery > 0 {
		go func() {
			for range time.Tick(*metricsEvery) {
				logger.Printf("metrics snapshot:\n%s", mongos.Metrics().Snapshot().Text())
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Printf("shutting down; final metrics snapshot:\n%s", mongos.Metrics().Snapshot().Text())
		srv.Close()
		env.Shutdown()
	}()

	if err := srv.Serve(ln); err != nil {
		logger.Fatalf("serve: %v", err)
	}
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
