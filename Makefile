GO ?= go
# Benchmark knobs: CI smoke-runs with BENCHTIME=1x; the committed
# BENCH_PR3.json numbers come from a full-length run (default 2s).
BENCHTIME ?= 2s
COUNT ?= 3
# Minimum current/baseline throughput ratio cmd/benchgate enforces for
# the sampling-off tracing benchmarks (PR 7). CI smoke runs pass 0
# (report-only) because 1x iterations are throughput noise.
BENCHGATE_MIN ?= 0.97

.PHONY: all build test race vet staticcheck bench bench-pr4 bench-pr5 bench-pr6 bench-pr7 bench-pr8 bench-pr9 bench-pr10

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools when the binary is installed and
# degrades to a notice when it is not, so the target is safe in
# hermetic environments without module downloads.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# bench runs the PR 3 concurrency benchmarks (storage read path,
# per-node concurrent reads, wire round trips) and rewrites
# BENCH_PR3.json: fresh numbers side by side with the recorded
# coarse-mutex baseline in bench/baseline_pr3.txt.
bench:
	$(GO) test ./internal/storage -run '^$$' -bench BenchmarkCollection -benchtime $(BENCHTIME) -count $(COUNT) -benchmem > bench/current_pr3.txt
	$(GO) test ./internal/cluster -run '^$$' -bench BenchmarkNode -benchtime $(BENCHTIME) -count $(COUNT) -benchmem >> bench/current_pr3.txt
	$(GO) test ./internal/wire -run '^$$' -bench BenchmarkWire -benchtime $(BENCHTIME) -count $(COUNT) -benchmem >> bench/current_pr3.txt
	$(GO) run ./cmd/benchjson -baseline bench/baseline_pr3.txt < bench/current_pr3.txt > BENCH_PR3.json
	@cat BENCH_PR3.json

# bench-pr4 runs the PR 4 write-path benchmarks (group-committed
# replicated writes, majority-ack latency, ring-buffer oplog
# truncation) and rewrites BENCH_PR4.json against the recorded
# pre-group-commit baseline in bench/baseline_pr4.txt.
bench-pr4:
	$(GO) test ./internal/cluster -run '^$$' -bench 'BenchmarkReplicatedWrites|BenchmarkMajorityAck' -benchtime $(BENCHTIME) -count $(COUNT) -benchmem > bench/current_pr4.txt
	$(GO) test ./internal/oplog -run '^$$' -bench BenchmarkOplogTruncate -benchtime $(BENCHTIME) -count $(COUNT) -benchmem >> bench/current_pr4.txt
	$(GO) run ./cmd/benchjson -baseline bench/baseline_pr4.txt < bench/current_pr4.txt > BENCH_PR4.json
	@cat BENCH_PR4.json

# bench-pr5 runs the PR 5 wire-codec benchmarks — binary protocol v2
# round trips (point reads, indexed finds, id-batch lookups) and the
# small-document encoder — and rewrites BENCH_PR5.json against the
# recorded JSON-codec baseline in bench/baseline_pr5.txt (captured
# with WIRE_PROTO=1, which pins the v1 codec).
bench-pr5:
	$(GO) test ./internal/wire -run '^$$' -bench BenchmarkWire -benchtime $(BENCHTIME) -count $(COUNT) -benchmem > bench/current_pr5.txt
	$(GO) test ./internal/storage -run '^$$' -bench BenchmarkEncodeDoc -benchtime $(BENCHTIME) -count $(COUNT) -benchmem >> bench/current_pr5.txt
	$(GO) run ./cmd/benchjson -baseline bench/baseline_pr5.txt < bench/current_pr5.txt > BENCH_PR5.json
	@cat BENCH_PR5.json

# bench-pr6 runs the PR 6 observability/admission benchmarks — point
# reads with every admission gate armed, and snapshot lookups/renders —
# and rewrites BENCH_PR6.json against bench/baseline_pr6.txt (captured
# with WIRE_ADMISSION=off OBS_NOINDEX=1, which pins the seed server
# construction and the pre-index snapshot accessors).
bench-pr6:
	$(GO) test ./internal/wire -run '^$$' -bench BenchmarkWireAdmission -benchtime $(BENCHTIME) -count $(COUNT) -benchmem > bench/current_pr6.txt
	$(GO) test ./internal/obs -run '^$$' -bench BenchmarkSnapshot -benchtime $(BENCHTIME) -count $(COUNT) -benchmem >> bench/current_pr6.txt
	$(GO) run ./cmd/benchjson -baseline bench/baseline_pr6.txt < bench/current_pr6.txt > BENCH_PR6.json
	@cat BENCH_PR6.json

# bench-pr7 measures the PR 7 tracing overhead on the PR 5 wire find
# path: the untraced benchmarks run with sampling off (the default) and
# are gated by cmd/benchgate against bench/baseline_pr7.txt (recorded
# just before the tracing code landed) — throughput within
# BENCHGATE_MIN and zero extra allocs/op; the Traced variants run at
# the 1% sampling rate (TRACE_SAMPLE overrides) for the sampled cost.
bench-pr7:
	$(GO) test ./internal/wire -run '^$$' -bench 'BenchmarkWire(ConcurrentPointReads|FindQuery|Traced)' -benchtime $(BENCHTIME) -count $(COUNT) -benchmem > bench/current_pr7.txt
	$(GO) run ./cmd/benchjson -baseline bench/baseline_pr7.txt < bench/current_pr7.txt > BENCH_PR7.json
	$(GO) run ./cmd/benchgate -file BENCH_PR7.json -min-ratio $(BENCHGATE_MIN)
	@cat BENCH_PR7.json

# bench-pr8 runs the PR 8 sharded-tier benchmarks: zero-alloc shard-key
# hashing (gated against bench/baseline_pr8.txt, captured with
# SCATTER_SEQ=1 i.e. pre-parallel-scatter), plus two scale gates
# computed within the current run — 4-shard point-read throughput
# through mongosd must be >= 3x the 1-shard deployment, and parallel
# scatter-gather must be >= 2.5x sequential.
bench-pr8:
	$(GO) test ./internal/sharding -run '^$$' -bench 'BenchmarkShardFor|BenchmarkScatterFind|BenchmarkMongosPointReads' -benchtime $(BENCHTIME) -count $(COUNT) -benchmem > bench/current_pr8.txt
	$(GO) run ./cmd/benchjson -baseline bench/baseline_pr8.txt < bench/current_pr8.txt > BENCH_PR8.json
	$(GO) run ./cmd/benchgate -file BENCH_PR8.json -min-ratio $(BENCHGATE_MIN) -benches BenchmarkShardFor \
		-scale 'BenchmarkMongosPointReads4/BenchmarkMongosPointReads1>=3.0,BenchmarkScatterFindParallel/BenchmarkScatterFindSequential>=2.5'
	@cat BENCH_PR8.json

# bench-pr9 runs the PR 9 lease benchmarks: linearizable reads spread
# across all five leased members must clear 3x the primary-only
# baseline (a scale gate within the current run), and the unleased
# wire read path must add zero allocations over
# bench/baseline_pr9.txt (its throughput ratio is reported but not
# gated — TestReadConcernUnsetCostsZeroBytes proves the frames are
# byte-identical when no read concern is set, so a throughput gate
# would only re-measure runner noise).
bench-pr9:
	$(GO) test ./internal/cluster -run '^$$' -bench 'BenchmarkLinearizable' -benchtime $(BENCHTIME) -count $(COUNT) -benchmem > bench/current_pr9.txt
	$(GO) test ./internal/wire -run '^$$' -bench 'BenchmarkWireConcurrentPointReads' -benchtime $(BENCHTIME) -count $(COUNT) -benchmem >> bench/current_pr9.txt
	$(GO) run ./cmd/benchjson -baseline bench/baseline_pr9.txt < bench/current_pr9.txt > BENCH_PR9.json
	$(GO) run ./cmd/benchgate -file BENCH_PR9.json -min-ratio $(BENCHGATE_MIN) -benches '' -alloc-benches BenchmarkWireConcurrentPointReads \
		-scale 'BenchmarkLinearizable5Node/BenchmarkLinearizablePrimaryOnly>=3.0'
	@cat BENCH_PR9.json

# bench-pr10 runs the freshness-priced cache benchmarks: Zipf hot-key
# bounded reads with the driver cache on must clear 5x the cache-off
# baseline (a scale gate within the current run — both arms pay the
# same modeled 2 ms server-side service time, so the ratio is
# local-hit vs server capacity), and the pure hit path must stay at
# zero allocations per op over bench/baseline_pr10.txt (its
# throughput is reported but not gated; the alloc bound is the
# regression that matters on a path this hot).
bench-pr10:
	$(GO) test ./internal/driver -run '^$$' -bench 'BenchmarkDriverCache|BenchmarkCacheHitPath' -benchtime $(BENCHTIME) -count $(COUNT) -benchmem > bench/current_pr10.txt
	$(GO) run ./cmd/benchjson -baseline bench/baseline_pr10.txt < bench/current_pr10.txt > BENCH_PR10.json
	$(GO) run ./cmd/benchgate -file BENCH_PR10.json -min-ratio $(BENCHGATE_MIN) -benches '' -alloc-benches BenchmarkCacheHitPath \
		-scale 'BenchmarkDriverCacheOn/BenchmarkDriverCacheOff>=5.0'
	@cat BENCH_PR10.json
