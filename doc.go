// Package decongestant is a from-scratch Go reproduction of
// "Decongestant: A Breath of Fresh Air for MongoDB Through
// Freshness-aware Reads" (Huang, Cahill, Fekete, Röhm; EDBT 2021).
//
// The repository contains, under internal/:
//
//   - sim: a deterministic discrete-event kernel (plus a real-time
//     implementation of the same interfaces),
//   - btree, storage, oplog: the document-store substrate,
//   - cluster: a MongoDB-like replica set with oplog replication,
//     serverStatus, checkpoints and flow control,
//   - driver: a MongoDB-like client with Read Preference semantics,
//   - core: the paper's contribution — the Read Balancer and Router,
//   - workload: YCSB, document-model TPC-C, and the S staleness prober,
//   - experiments: runners that regenerate every table and figure,
//   - wire: a TCP protocol exposing a replica set to remote clients.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record. The benches in
// bench_test.go regenerate shortened versions of each figure:
//
//	go test -bench=. -benchtime=1x
package decongestant
