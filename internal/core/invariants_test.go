package core

import (
	"testing"
	"testing/quick"
	"time"

	"decongestant/internal/driver"
)

// TestQuickFractionInvariants drives the Read Balancer through random
// sequences of latency observations, staleness reports and period
// boundaries, and checks Algorithm 1's structural invariants after
// every step:
//
//  1. the published fraction is 0 or within [LowBalPct, HighBalPct];
//  2. the published fraction is 0 exactly when the gate is active;
//  3. the underlying decision (RecentBal tail) is always within
//     [LowBalPct, HighBalPct] — gating never corrupts it;
//  4. consecutive decisions differ by at most DeltaPct.
func TestQuickFractionInvariants(t *testing.T) {
	type step struct {
		PrimLatMs uint16 // 0 = no samples this period
		SecLatMs  uint16
		Staleness uint8
		EndPeriod bool
	}
	f := func(steps []step) bool {
		env, b := newTestBalancer(DefaultParams())
		defer env.Shutdown()
		prevDecision := b.params.LowBalPct
		for _, st := range steps {
			if st.PrimLatMs > 0 {
				for i := 0; i < 5; i++ {
					b.Record(driver.Primary, time.Duration(st.PrimLatMs)*time.Millisecond)
				}
			}
			if st.SecLatMs > 0 {
				for i := 0; i < 5; i++ {
					b.Record(driver.Secondary, time.Duration(st.SecLatMs)*time.Millisecond)
				}
			}
			b.mu.Lock()
			b.maxStale = int64(st.Staleness % 30)
			b.applyGateLocked()
			b.mu.Unlock()
			if st.EndPeriod {
				b.endPeriod(0)
			}
			pct := b.FractionPct()
			gated := b.Gated()
			// (1) and (2)
			if gated && pct != 0 {
				return false
			}
			if !gated && (pct < b.params.LowBalPct || pct > b.params.HighBalPct) {
				return false
			}
			// (3) and (4)
			b.mu.Lock()
			decision := b.recent[len(b.recent)-1]
			b.mu.Unlock()
			if decision < b.params.LowBalPct || decision > b.params.HighBalPct {
				return false
			}
			if diff := decision - prevDecision; diff > b.params.DeltaPct || diff < -b.params.DeltaPct {
				return false
			}
			prevDecision = decision
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGateIsExactlyBoundCheck: gating must equal
// (StaleBound == 0 || staleness > StaleBound), Algorithm 1 lines 3/21.
func TestQuickGateIsExactlyBoundCheck(t *testing.T) {
	f := func(staleness uint8, boundSel uint8) bool {
		params := DefaultParams()
		params.StaleBound = int64(boundSel % 15) // includes 0
		env, b := newTestBalancer(params)
		defer env.Shutdown()
		b.mu.Lock()
		b.maxStale = int64(staleness % 30)
		b.applyGateLocked()
		gated := b.gated
		b.mu.Unlock()
		want := params.StaleBound == 0 || int64(staleness%30) > params.StaleBound
		return gated == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRouterCoinMatchesFraction: over many flips, the share of
// secondary choices tracks the published fraction.
func TestRouterCoinMatchesFraction(t *testing.T) {
	env, b := newTestBalancer(DefaultParams())
	defer env.Shutdown()
	r := NewRouter(env, b, b.client)
	for _, target := range []int{10, 40, 90} {
		b.mu.Lock()
		b.recent[len(b.recent)-1] = target
		b.applyGateLocked()
		b.mu.Unlock()
		sec := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if r.Choose() == driver.Secondary {
				sec++
			}
		}
		got := 100 * float64(sec) / n
		if got < float64(target)-2 || got > float64(target)+2 {
			t.Fatalf("fraction %d%%: coin gave %.1f%%", target, got)
		}
	}
	// Gated: never secondary.
	b.mu.Lock()
	b.maxStale = 99
	b.applyGateLocked()
	b.mu.Unlock()
	for i := 0; i < 1000; i++ {
		if r.Choose() == driver.Secondary {
			t.Fatal("gated router chose secondary")
		}
	}
}
