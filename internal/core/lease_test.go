package core

// Router-level tests for PR 9: linearizable reads route across lease
// holders with reason-coded decisions, latency files under the role
// that actually served, and the decision ring retains the routing
// evidence for currentOp-style inspection.

import (
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/obs"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func newLeaseRouter(seed int64) (*sim.VirtualEnv, *cluster.ReplicaSet, *Router) {
	env := sim.NewEnv(seed)
	cfg := cluster.DefaultConfig()
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	cfg.ReplIdlePoll = 5 * time.Millisecond
	cfg.LinearizableLeases = true
	rs := cluster.New(env, cfg)
	client := driver.NewClient(env, driver.WrapClusterCausal(rs))
	client.StartMonitor(env, 200*time.Millisecond)
	b := NewBalancer(env, client, DefaultParams())
	return env, rs, NewRouter(env, b, client)
}

// TestRouterLinearizableRoutesAndRecords: strong reads through the
// router succeed, spread onto leased secondaries, count per-reason,
// and leave an inspectable decision trail.
func TestRouterLinearizableRoutesAndRecords(t *testing.T) {
	env, rs, r := newLeaseRouter(21)
	defer env.Shutdown()

	const reads = 30
	var secondaryServed int
	env.Spawn("client", func(p sim.Proc) {
		r.client.RefreshRTTs(p)
		if _, _, err := r.client.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "rt", "v": int64(5)})
		}); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * time.Millisecond) // grants + monitor snapshot
		for i := 0; i < reads; i++ {
			res, node, _, reason, err := r.ReadLinearizable(p, func(v cluster.ReadView) (any, error) {
				d, ok := v.FindByID("kv", "rt")
				if !ok {
					return int64(-1), nil
				}
				return d.Int("v"), nil
			})
			if err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if res.(int64) != 5 {
				t.Errorf("read %d saw %d, want 5", i, res.(int64))
				return
			}
			if node != rs.PrimaryID() {
				secondaryServed++
				if reason != driver.RouteLeaseValid {
					t.Errorf("secondary-served read %d carries reason %q, want %q", i, reason, driver.RouteLeaseValid)
					return
				}
			}
		}
	})
	env.Run(30 * time.Second)

	if secondaryServed == 0 {
		t.Fatal("router never sent a linearizable read to a leased secondary")
	}
	decs := r.LinearizableDecisions()
	if len(decs) != reads {
		t.Fatalf("decision ring holds %d entries, want %d", len(decs), reads)
	}
	for _, d := range decs {
		if d.Reason == "" || d.Node < 0 {
			t.Fatalf("decision missing evidence: %+v", d)
		}
	}
	snap := r.client.Metrics().Snapshot()
	if got := snap.CounterValue(obs.Name("router.linearizable", "reason", driver.RouteLeaseValid)); got == 0 {
		t.Fatal("router.linearizable{reason=lease-valid} not counted")
	}
	// Latency filed under the serving role: lease-served secondary
	// reads must show up as secondary capacity in the balancer.
	if r.nSecond == 0 {
		t.Fatal("no linearizable latency filed under the secondary role")
	}
}

// TestRouterLinearizableTraceCarriesRoute: a traced strong read
// records the balancer.decision and router.read spans with the
// lease-routing reason, so a trace explains the route end to end.
func TestRouterLinearizableTraceCarriesRoute(t *testing.T) {
	env, _, r := newLeaseRouter(22)
	defer env.Shutdown()
	r.client.Tracer().SetSampling(1)

	var traceID uint64
	env.Spawn("client", func(p sim.Proc) {
		r.client.RefreshRTTs(p)
		p.Sleep(500 * time.Millisecond)
		_, _, _, _, tid, err := r.ReadLinearizableTraced(p, func(v cluster.ReadView) (any, error) {
			return nil, nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		traceID = tid
	})
	env.Run(30 * time.Second)

	if traceID == 0 {
		t.Fatal("traced linearizable read returned no trace id")
	}
	spans := r.client.Tracer().TraceSpans(traceID)
	var sawDecision, sawRead bool
	for _, sp := range spans {
		switch sp.Name {
		case "balancer.decision":
			sawDecision = true
			var prefOK bool
			for _, a := range sp.Attrs {
				if a.K == "pref" && a.V == "linearizable" {
					prefOK = true
				}
			}
			if !prefOK {
				t.Fatalf("balancer.decision span lacks pref=linearizable: %+v", sp.Attrs)
			}
		case "router.read":
			sawRead = true
		}
	}
	if !sawDecision || !sawRead {
		t.Fatalf("trace %d missing spans (decision=%v read=%v): %d spans", traceID, sawDecision, sawRead, len(spans))
	}
}
