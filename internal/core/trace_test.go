package core

import (
	"strconv"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/obs/trace"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// TestRoutedReadTraceTree is the in-process acceptance check for the
// tracing tentpole: a balancer-routed read sampled at rate 1 yields a
// causally linked span tree — router.read at the root, a
// balancer.decision child carrying the routing reason and staleness
// estimate, the driver hop beneath the root, and the node exec span
// hanging off the driver hop.
func TestRoutedReadTraceTree(t *testing.T) {
	env := sim.NewEnv(11)
	defer env.Shutdown()
	cfg := cluster.DefaultConfig()
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	sys := NewSystem(env, driver.WrapCluster(rs), DefaultParams())
	rs.Tracer().SetSampling(1)

	var traceID uint64
	env.Spawn("client", func(p sim.Proc) {
		_, err := rs.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "k", "v": 1})
		})
		if err != nil {
			t.Error(err)
			return
		}
		_, _, _, id, err := sys.Router.ReadTraced(p, func(v cluster.ReadView) (any, error) {
			v.FindByID("kv", "k")
			return nil, nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		traceID = id
	})
	env.Run(10 * time.Second)

	if traceID == 0 {
		t.Fatal("rate-1 sampling produced no trace id")
	}
	spans := rs.Tracer().TraceSpans(traceID)
	byName := map[string]trace.Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	for _, name := range []string{"router.read", "balancer.decision", "driver.read", "node.exec_read"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace missing span %q; got %+v", name, spans)
		}
	}
	root := byName["router.read"]
	if root.Parent != 0 {
		t.Fatalf("router.read should be the root, has parent %x", root.Parent)
	}
	if byName["balancer.decision"].Parent != root.ID {
		t.Fatalf("balancer.decision parent %x, want root %x", byName["balancer.decision"].Parent, root.ID)
	}
	if byName["driver.read"].Parent != root.ID {
		t.Fatalf("driver.read parent %x, want root %x", byName["driver.read"].Parent, root.ID)
	}
	if byName["node.exec_read"].Parent != byName["driver.read"].ID {
		t.Fatalf("node.exec_read parent %x, want driver span %x",
			byName["node.exec_read"].Parent, byName["driver.read"].ID)
	}

	// The decision span must carry the routing evidence: a preference,
	// a reason code, and the balancer's staleness estimate.
	attrs := map[string]string{}
	for _, a := range byName["balancer.decision"].Attrs {
		attrs[a.K] = a.V
	}
	if attrs["pref"] != driver.Primary.String() && attrs["pref"] != driver.Secondary.String() {
		t.Fatalf("decision pref %q", attrs["pref"])
	}
	if _, err := strconv.ParseInt(attrs["stale_secs"], 10, 64); err != nil {
		t.Fatalf("decision stale_secs %q not an integer: %v", attrs["stale_secs"], err)
	}
	if _, err := strconv.Atoi(attrs["frac_pct"]); err != nil {
		t.Fatalf("decision frac_pct %q not an integer: %v", attrs["frac_pct"], err)
	}
	if _, ok := attrs["gated"]; !ok {
		t.Fatal("decision span lacks gated attr")
	}
}

// TestBalancerStalenessPollErrorCounter asserts the once-silent
// staleness poll failure is now visible: with every node down, the
// poll loop increments balancer.staleness_poll_errors and the poll-age
// gauge stays at -1 (never succeeded).
func TestBalancerStalenessPollErrorCounter(t *testing.T) {
	env := sim.NewEnv(12)
	defer env.Shutdown()
	cfg := cluster.DefaultConfig()
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	for _, id := range rs.NodeIDs() {
		rs.SetDown(id, true)
	}
	params := DefaultParams()
	params.StalenessPoll = 100 * time.Millisecond
	sys := NewSystem(env, driver.WrapCluster(rs), params)
	env.Run(2 * time.Second)

	snap := sys.Client.Metrics().Snapshot()
	if errs := snap.CounterValue("balancer.staleness_poll_errors"); errs == 0 {
		t.Fatal("staleness poll failures left no counter trace")
	}
	if age := snap.GaugeValue("balancer.staleness_poll_age_secs"); age != -1 {
		t.Fatalf("poll-age gauge %d with no successful poll, want -1", age)
	}
}

// TestBalancerStalenessPollAgeTracksSuccess asserts the poll-age gauge
// reflects the last successful poll on a healthy cluster.
func TestBalancerStalenessPollAgeTracksSuccess(t *testing.T) {
	env := sim.NewEnv(13)
	defer env.Shutdown()
	cfg := cluster.DefaultConfig()
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	params := DefaultParams()
	params.StalenessPoll = 100 * time.Millisecond
	sys := NewSystem(env, driver.WrapCluster(rs), params)
	env.Run(5 * time.Second)

	snap := sys.Client.Metrics().Snapshot()
	if errs := snap.CounterValue("balancer.staleness_poll_errors"); errs != 0 {
		t.Fatalf("healthy cluster logged %d poll errors", errs)
	}
	age := snap.GaugeValue("balancer.staleness_poll_age_secs")
	if age < 0 || age > 1 {
		t.Fatalf("poll-age gauge %ds under a 100ms poll, want within a second", age)
	}
}
