// Package core implements Decongestant's contribution: the Read
// Balancer of Algorithm 1 and the client-side Router that consults it.
//
// The Read Balancer periodically publishes a Balance Fraction — the
// probability that a client's next read is sent with Read Preference
// secondary. Every period it compares Server-Side Latency estimates
// (client-observed median latency minus median RTT, §3.3.1) between
// primary- and secondary-routed reads and moves the fraction toward
// the congested side's relief; a staleness gate polling serverStatus
// at the primary snaps the fraction to zero whenever any secondary's
// conservative staleness estimate exceeds the client-set bound
// (§3.3.2).
package core

import (
	"sync"
	"time"

	"decongestant/internal/driver"
	"decongestant/internal/metrics"
	"decongestant/internal/obs"
	"decongestant/internal/sim"
)

// Params are the Read Balancer's tuning constants. Defaults reproduce
// the paper's settings (§4.1.2).
type Params struct {
	// DeltaPct is the one-period change in Balance Fraction, in whole
	// percentage points (10). The controller works in integer percent,
	// as the paper's 10%-step algorithm does.
	DeltaPct int
	// LowBalPct / HighBalPct bound the non-zero Balance Fraction
	// (10 / 90) so both roles keep receiving probe traffic.
	LowBalPct  int
	HighBalPct int
	// HighRatio: latency ratio above which the primary is congested
	// and the fraction increases (1.30). LowRatio: ratio below which
	// the secondaries are congested and the fraction decreases (0.75).
	HighRatio float64
	LowRatio  float64
	// Period is the decision interval (10 s).
	Period time.Duration
	// RecentLen is how many past decisions are kept; when they are all
	// equal the balancer explores downward (4).
	RecentLen int
	// StaleBound is the client-set staleness limit in seconds. Zero
	// means the clients accept no stale reads at all: the fraction
	// stays 0 and every read goes to the primary (Algorithm 1 line 3).
	StaleBound int64
	// StalenessPoll is how often serverStatus is polled (1 s).
	StalenessPoll time.Duration
	// RTTPing is how often every node is pinged for RTT samples (1 s).
	RTTPing time.Duration
	// DecisionCap bounds the retained decision trace: only the most
	// recent DecisionCap period-end decisions are kept (512). Values
	// <= 0 take the default.
	DecisionCap int

	// Ablation switches (all false in the paper's system).

	// NoRTTSubtraction uses raw client latency instead of Server-Side
	// Latency (§3.3.1 ablation).
	NoRTTSubtraction bool
	// NoExploration disables the four-equal-periods downward probe.
	NoExploration bool
	// UseMean aggregates latencies with the mean instead of P50.
	UseMean bool
	// StalenessFromSecondary estimates staleness from a secondary's
	// serverStatus instead of the primary's (non-conservative, §2.3).
	StalenessFromSecondary bool
}

// DefaultParams returns the paper's configuration with a 10-second
// staleness bound (§4.1.2).
func DefaultParams() Params {
	return Params{
		DeltaPct:      10,
		LowBalPct:     10,
		HighBalPct:    90,
		HighRatio:     1.30,
		LowRatio:      0.75,
		Period:        10 * time.Second,
		RecentLen:     4,
		StaleBound:    10,
		StalenessPoll: time.Second,
		RTTPing:       time.Second,
		DecisionCap:   512,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.DeltaPct == 0 {
		p.DeltaPct = d.DeltaPct
	}
	if p.LowBalPct == 0 {
		p.LowBalPct = d.LowBalPct
	}
	if p.HighBalPct == 0 {
		p.HighBalPct = d.HighBalPct
	}
	if p.HighRatio == 0 {
		p.HighRatio = d.HighRatio
	}
	if p.LowRatio == 0 {
		p.LowRatio = d.LowRatio
	}
	if p.Period == 0 {
		p.Period = d.Period
	}
	if p.RecentLen == 0 {
		p.RecentLen = d.RecentLen
	}
	if p.StalenessPoll == 0 {
		p.StalenessPoll = d.StalenessPoll
	}
	if p.RTTPing == 0 {
		p.RTTPing = d.RTTPing
	}
	if p.DecisionCap <= 0 {
		p.DecisionCap = d.DecisionCap
	}
	return p
}

// Reason codes for one period-end decision — the structured trace the
// registry counts and Decisions exposes.
const (
	// ReasonIncrease: primary congested (ratio > HighRatio), fraction up.
	ReasonIncrease = "increase"
	// ReasonDecrease: secondaries congested (ratio < LowRatio), fraction down.
	ReasonDecrease = "decrease"
	// ReasonExplore: stable for RecentLen periods, probing downward.
	ReasonExplore = "explore"
	// ReasonHold: ratio in the dead band, or no samples this period.
	ReasonHold = "hold"
	// ReasonGated: the staleness gate forced the published fraction to
	// zero, regardless of what the controller computed.
	ReasonGated = "gated"
)

// Decision records one period-end outcome, for tests and plots.
type Decision struct {
	At        time.Duration
	Ratio     float64 // 0 when not computable this period
	NewBalPct int
	Published int    // percent actually published, after the staleness gate
	Reason    string // one of the Reason constants
	Gated     bool
}

// Stats counts Read Balancer activity.
type Stats struct {
	Periods      int
	Increases    int
	Decreases    int
	Explorations int
	Holds        int
	GateTrips    int // transitions into the gated state
	StatusPolls  int
	StatusSkips  int // serverStatus polls skipped (primary down / invalid)
	RTTSkips     int // RTT pings skipped (target down / failed probe)
}

// decisionRing is a fixed-capacity ring of the most recent decisions,
// replacing the previous unbounded slice that grew forever on long
// runs.
type decisionRing struct {
	buf  []Decision
	next int
	n    int
}

func newDecisionRing(capacity int) *decisionRing {
	return &decisionRing{buf: make([]Decision, capacity)}
}

func (r *decisionRing) add(d Decision) {
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// last returns the most recent decision, if any.
func (r *decisionRing) last() (Decision, bool) {
	if r.n == 0 {
		return Decision{}, false
	}
	i := r.next - 1
	if i < 0 {
		i += len(r.buf)
	}
	return r.buf[i], true
}

// list returns the retained decisions, oldest first.
func (r *decisionRing) list() []Decision {
	out := make([]Decision, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// maxRoleSamples bounds each of the shared per-role latency and RTT
// lists within one period. Once full, the newest sample overwrites
// the oldest, so a stalled period loop can no longer grow the lists
// without bound and the median reflects the freshest samples.
const maxRoleSamples = 8192

// sampleBuf is a fixed-capacity duration buffer with ring overwrite.
type sampleBuf struct {
	buf  []time.Duration
	next int // overwrite cursor, used once len(buf) == cap(buf)
}

func (s *sampleBuf) add(v time.Duration) {
	if len(s.buf) < maxRoleSamples {
		s.buf = append(s.buf, v)
		return
	}
	s.buf[s.next] = v
	s.next = (s.next + 1) % maxRoleSamples
}

// take returns the buffered samples and resets the buffer.
func (s *sampleBuf) take() []time.Duration {
	out := s.buf
	s.buf, s.next = nil, 0
	return out
}

// Balancer is the Read Balancer: one per client system, shared by all
// client processes on it.
type Balancer struct {
	env    sim.Env
	client *driver.Client
	params Params

	mu           sync.Mutex
	balPct       int   // published Balance Fraction, in percent
	recent       []int // last RecentLen decisions in percent (ungated)
	latPrimary   sampleBuf
	latSecondary sampleBuf
	rttPrimary   sampleBuf
	rttSecondary sampleBuf
	maxStale     int64
	gated        bool
	stats        Stats
	decisions    *decisionRing
	lastPollAt   time.Duration // env time of the last successful staleness poll; -1 before the first
	ewmaPrimary  time.Duration // smoothed client-observed latency per role,
	ewmaSecond   time.Duration // fed by Record; used by the SLA router

	// Registry instruments (atomic/self-locking; touched without b.mu).
	obsReasons   map[string]*obs.Counter
	obsFraction  *obs.Gauge
	obsStaleness *obs.Gauge
	obsGateTrips *obs.Counter
	obsPolls     *obs.Counter
	obsPollSkips *obs.Counter
	obsPollErrs  *obs.Counter
	obsRTTSkips  *obs.Counter
}

// NewBalancer creates a Read Balancer over the given client session.
// Call Start to launch its background processes.
func NewBalancer(env sim.Env, client *driver.Client, params Params) *Balancer {
	params = params.withDefaults()
	b := &Balancer{env: env, client: client, params: params}
	b.decisions = newDecisionRing(params.DecisionCap)
	b.balPct = params.LowBalPct
	b.recent = make([]int, params.RecentLen)
	for i := range b.recent {
		b.recent[i] = params.LowBalPct
	}
	if params.StaleBound == 0 {
		// Clients tolerate no staleness: never use secondaries.
		b.gated = true
		b.balPct = 0
	}
	reg := client.Metrics()
	b.obsReasons = make(map[string]*obs.Counter)
	for _, reason := range []string{ReasonIncrease, ReasonDecrease, ReasonExplore, ReasonHold, ReasonGated} {
		b.obsReasons[reason] = reg.Counter(obs.Name("balancer.decisions", "reason", reason))
	}
	b.obsFraction = reg.Gauge("balancer.fraction_pct")
	b.obsStaleness = reg.Gauge("balancer.max_staleness_secs")
	b.obsGateTrips = reg.Counter("balancer.gate_trips")
	b.obsPolls = reg.Counter("balancer.status_polls")
	b.obsPollSkips = reg.Counter("balancer.status_skips")
	b.obsPollErrs = reg.Counter("balancer.staleness_poll_errors")
	b.obsRTTSkips = reg.Counter("balancer.rtt_skips")
	b.obsFraction.Set(int64(b.balPct))
	b.lastPollAt = -1
	// Surface poller liveness in serverStatus snapshots: the age of the
	// last *successful* staleness poll. A wedged or always-failing
	// poller shows up as a growing age (-1 until the first success)
	// instead of silently stale gate state.
	pollAge := reg.Gauge("balancer.staleness_poll_age_secs")
	reg.RegisterCollector(func() {
		b.mu.Lock()
		last := b.lastPollAt
		b.mu.Unlock()
		if last < 0 {
			pollAge.Set(-1)
			return
		}
		pollAge.Set(int64((b.env.Now() - last) / time.Second))
	})
	return b
}

// Params returns the effective parameters.
func (b *Balancer) Params() Params { return b.params }

// Start launches the period loop, the staleness poller and the RTT
// pinger.
func (b *Balancer) Start() {
	b.env.Spawn("core/balancer-period", b.periodLoop)
	b.env.Spawn("core/staleness-poller", b.stalenessLoop)
	b.env.Spawn("core/rtt-pinger", b.rttLoop)
}

// Fraction returns the current published Balance Fraction in [0,1].
func (b *Balancer) Fraction() float64 {
	return float64(b.FractionPct()) / 100
}

// FractionPct returns the published Balance Fraction in whole percent.
func (b *Balancer) FractionPct() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balPct
}

// MaxStaleness returns the latest conservative staleness estimate in
// seconds.
func (b *Balancer) MaxStaleness() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.maxStale
}

// Gated reports whether the staleness gate currently forces all reads
// to the primary.
func (b *Balancer) Gated() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gated
}

// Stats returns a copy of the balancer's activity counters.
func (b *Balancer) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Decisions returns the retained period-end decision trace, oldest
// first — at most Params.DecisionCap entries.
func (b *Balancer) Decisions() []Decision {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.decisions.list()
}

// LastDecision returns the most recent period-end decision, if one has
// been made — the reason code the router links into a sampled read's
// trace.
func (b *Balancer) LastDecision() (Decision, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.decisions.last()
}

// Record reports one client-observed read latency for the given Read
// Preference — the shared lists of Figure 1.
func (b *Balancer) Record(pref driver.ReadPref, lat time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch pref {
	case driver.Primary:
		b.latPrimary.add(lat)
		b.ewmaPrimary = ewma(b.ewmaPrimary, lat)
	case driver.Secondary:
		b.latSecondary.add(lat)
		b.ewmaSecond = ewma(b.ewmaSecond, lat)
	}
}

// ewma folds a sample into a smoothed estimate (alpha 0.1).
func ewma(prev, sample time.Duration) time.Duration {
	if prev == 0 {
		return sample
	}
	return time.Duration(0.9*float64(prev) + 0.1*float64(sample))
}

// LatencyEstimate returns the smoothed client-observed read latency
// for the given Read Preference (0 before any sample).
func (b *Balancer) LatencyEstimate(pref driver.ReadPref) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if pref == driver.Secondary {
		return b.ewmaSecond
	}
	return b.ewmaPrimary
}

// rttLoop pings every node each RTTPing interval and files the sample
// under the Read Preference group the node belongs to. A failed probe
// (negative RTT: the target is down or mid-failover) is skipped and
// counted instead of being filed as a sample — filing it would poison
// the role's median with garbage, or file a dead primary's "RTT"
// under a role it no longer holds.
func (b *Balancer) rttLoop(p sim.Proc) {
	conn := b.client.Conn()
	for {
		primary := conn.PrimaryID()
		for _, id := range conn.NodeIDs() {
			rtt := conn.Ping(p, id)
			if rtt < 0 {
				b.obsRTTSkips.Inc(1)
				b.mu.Lock()
				b.stats.RTTSkips++
				b.mu.Unlock()
				continue
			}
			b.mu.Lock()
			if id == primary {
				b.rttPrimary.add(rtt)
			} else {
				b.rttSecondary.add(rtt)
			}
			b.mu.Unlock()
		}
		p.Sleep(b.params.RTTPing)
	}
}

// stalenessLoop implements Rcv-ServerStatus: poll serverStatus (at the
// primary, conservatively), update Staleness, and gate the published
// fraction immediately when the bound is breached.
func (b *Balancer) stalenessLoop(p sim.Proc) {
	conn := b.client.Conn()
	for {
		from := conn.PrimaryID()
		if b.params.StalenessFromSecondary {
			for _, id := range conn.NodeIDs() {
				if id != from {
					from = id
					break
				}
			}
		}
		st := conn.ServerStatus(p, from)
		if !st.OK() {
			// The polled node is down or unreachable (common mid-
			// failover). Skip the sample: a member-less status would
			// read as zero staleness and silently open the gate. The
			// failure is counted (staleness_poll_errors) and the last
			// successful poll's age keeps growing in serverStatus, so a
			// wedged poller is visible rather than silent.
			b.obsPollSkips.Inc(1)
			b.obsPollErrs.Inc(1)
			b.mu.Lock()
			b.stats.StatusPolls++
			b.stats.StatusSkips++
			b.mu.Unlock()
			p.Sleep(b.params.StalenessPoll)
			continue
		}
		stale := st.MaxSecondaryStalenessSecs()
		b.obsPolls.Inc(1)
		b.mu.Lock()
		b.stats.StatusPolls++
		b.maxStale = stale
		b.lastPollAt = p.Now()
		b.applyGateLocked()
		b.mu.Unlock()
		b.obsStaleness.Set(stale)
		p.Sleep(b.params.StalenessPoll)
	}
}

// applyGateLocked recomputes the published fraction from the latest
// decision and the staleness gate. Caller holds b.mu.
func (b *Balancer) applyGateLocked() {
	breach := b.params.StaleBound == 0 || b.maxStale > b.params.StaleBound
	if breach {
		if !b.gated {
			b.stats.GateTrips++
			b.obsGateTrips.Inc(1)
		}
		b.gated = true
		b.balPct = 0
		b.obsFraction.Set(0)
		return
	}
	b.gated = false
	b.balPct = b.recent[len(b.recent)-1]
	b.obsFraction.Set(int64(b.balPct))
}

// periodLoop implements OnPeriodEnd.
func (b *Balancer) periodLoop(p sim.Proc) {
	for {
		p.Sleep(b.params.Period)
		b.endPeriod(p.Now())
	}
}

// endPeriod runs one OnPeriodEnd step using the latencies and RTT
// samples accumulated during the period. Exposed for deterministic
// unit testing.
func (b *Balancer) endPeriod(now time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()

	latP, latS := b.latPrimary.take(), b.latSecondary.take()
	rttP, rttS := b.rttPrimary.take(), b.rttSecondary.take()
	b.stats.Periods++

	latest := b.recent[len(b.recent)-1]
	newBal := latest
	ratio := 0.0
	reason := ReasonHold

	if len(latP) > 0 && len(latS) > 0 {
		lssP := b.serverSideLatency(latP, rttP)
		lssS := b.serverSideLatency(latS, rttS)
		ratio = float64(lssP) / float64(lssS)
		switch {
		case ratio > b.params.HighRatio:
			newBal = min(latest+b.params.DeltaPct, b.params.HighBalPct)
			b.stats.Increases++
			reason = ReasonIncrease
		case ratio < b.params.LowRatio:
			newBal = max(latest-b.params.DeltaPct, b.params.LowBalPct)
			b.stats.Decreases++
			reason = ReasonDecrease
		case !b.params.NoExploration && allEqual(b.recent):
			// Stable for RecentLen periods: probe downward to move
			// reads back to the primary for freshness (§3.3).
			newBal = max(latest-b.params.DeltaPct, b.params.LowBalPct)
			b.stats.Explorations++
			reason = ReasonExplore
		default:
			b.stats.Holds++
		}
	} else {
		b.stats.Holds++
	}

	b.recent = append(b.recent[1:], newBal)
	b.applyGateLocked()
	b.obsReasons[reason].Inc(1)
	if b.gated {
		// Count the gate separately: the controller's reason records
		// what it computed; "gated" records what was published.
		b.obsReasons[ReasonGated].Inc(1)
	}
	b.decisions.add(Decision{
		At: now, Ratio: ratio, NewBalPct: newBal,
		Published: b.balPct, Reason: reason, Gated: b.gated,
	})
}

// serverSideLatency computes L_ss = agg(L_client) − agg(RTT), clamped
// to a small positive floor so the ratio stays defined.
func (b *Balancer) serverSideLatency(lat, rtt []time.Duration) time.Duration {
	agg := func(s []time.Duration) time.Duration {
		if b.params.UseMean {
			var sum time.Duration
			for _, v := range s {
				sum += v
			}
			if len(s) == 0 {
				return 0
			}
			return sum / time.Duration(len(s))
		}
		return metrics.PercentileOf(s, 0.50)
	}
	lss := agg(lat)
	if !b.params.NoRTTSubtraction {
		lss -= agg(rtt)
	}
	const floor = 10 * time.Microsecond
	if lss < floor {
		lss = floor
	}
	return lss
}

func allEqual(s []int) bool {
	for _, v := range s[1:] {
		if v != s[0] {
			return false
		}
	}
	return true
}
