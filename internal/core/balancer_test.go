package core

import (
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/obs"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func newTestBalancer(params Params) (*sim.VirtualEnv, *Balancer) {
	env := sim.NewEnv(1)
	cfg := cluster.DefaultConfig()
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	client := driver.NewClient(env, driver.WrapCluster(rs))
	return env, NewBalancer(env, client, params)
}

// feed records n latency samples per preference with the given medians
// and zero RTT, then ends the period.
func feed(b *Balancer, primaryLat, secondaryLat time.Duration) {
	for i := 0; i < 20; i++ {
		b.Record(driver.Primary, primaryLat)
		b.Record(driver.Secondary, secondaryLat)
	}
	b.endPeriod(0)
}

func TestInitialFractionIsLowBal(t *testing.T) {
	env, b := newTestBalancer(DefaultParams())
	defer env.Shutdown()
	if f := b.FractionPct(); f != 10 {
		t.Fatalf("initial fraction %v%%, want 10%%", f)
	}
	// A zero-value StaleBound means "no stale reads tolerated": 0%.
	env2, b2 := newTestBalancer(Params{})
	defer env2.Shutdown()
	if f := b2.FractionPct(); f != 0 {
		t.Fatalf("zero StaleBound fraction %v%%, want 0%%", f)
	}
}

func TestStaleBoundZeroForcesPrimaryForever(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 0})
	defer env.Shutdown()
	// DefaultParams sets bound 10; explicit zero must be respected, so
	// construct directly.
	p := DefaultParams()
	p.StaleBound = 0
	b2 := NewBalancer(env, b.client, p)
	if f := b2.FractionPct(); f != 0 {
		t.Fatalf("fraction %v with StaleBound=0, want 0", f)
	}
	feed(b2, 100*time.Millisecond, time.Millisecond) // huge primary congestion
	if f := b2.FractionPct(); f != 0 {
		t.Fatalf("gate released despite StaleBound=0: %v", f)
	}
}

func TestHighRatioIncreasesFraction(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10})
	defer env.Shutdown()
	feed(b, 10*time.Millisecond, 2*time.Millisecond) // ratio 5 > 1.3
	if f := b.FractionPct(); f != 20 {
		t.Fatalf("fraction %v after congested-primary period, want 0.20", f)
	}
	st := b.Stats()
	if st.Increases != 1 {
		t.Fatalf("increases=%d", st.Increases)
	}
}

func TestLowRatioDecreasesFractionWithFloor(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10})
	defer env.Shutdown()
	feed(b, 2*time.Millisecond, 10*time.Millisecond) // ratio 0.2 < 0.75
	if f := b.FractionPct(); f != 10 {
		t.Fatalf("fraction %v, want floor 0.10", f)
	}
	if b.Stats().Decreases != 1 {
		t.Fatalf("decreases=%d", b.Stats().Decreases)
	}
}

func TestFractionCapsAtHighBal(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10})
	defer env.Shutdown()
	for i := 0; i < 12; i++ {
		feed(b, 10*time.Millisecond, 2*time.Millisecond)
	}
	if f := b.FractionPct(); f != 90 {
		t.Fatalf("fraction %v, want cap 0.90", f)
	}
}

func TestNeutralRatioHolds(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10})
	defer env.Shutdown()
	feed(b, 10*time.Millisecond, 2*time.Millisecond) // -> 0.20
	feed(b, 5*time.Millisecond, 5*time.Millisecond)  // ratio 1.0: hold
	if f := b.FractionPct(); f != 20 {
		t.Fatalf("fraction %v, want hold at 0.20", f)
	}
	if b.Stats().Holds == 0 {
		t.Fatal("hold not counted")
	}
}

func TestFourEqualPeriodsExploreDownward(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10})
	defer env.Shutdown()
	// Push up to 0.30, then stay neutral until RecentBal is all 0.30.
	for i := 0; i < 2; i++ {
		feed(b, 10*time.Millisecond, 2*time.Millisecond)
	}
	if f := b.FractionPct(); f != 30 {
		t.Fatalf("setup failed: %v", f)
	}
	// Three neutral periods fill RecentBal with 0.30 (len 4).
	for i := 0; i < 3; i++ {
		feed(b, 5*time.Millisecond, 5*time.Millisecond)
	}
	if f := b.FractionPct(); f != 30 {
		t.Fatalf("fraction %v before exploration, want 0.30", f)
	}
	// Next neutral period: all recent equal -> probe down.
	feed(b, 5*time.Millisecond, 5*time.Millisecond)
	if f := b.FractionPct(); f != 20 {
		t.Fatalf("fraction %v after exploration, want 0.20", f)
	}
	if b.Stats().Explorations != 1 {
		t.Fatalf("explorations=%d", b.Stats().Explorations)
	}
}

func TestNoExplorationAblation(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10, NoExploration: true})
	defer env.Shutdown()
	for i := 0; i < 10; i++ {
		feed(b, 5*time.Millisecond, 5*time.Millisecond)
	}
	if f := b.FractionPct(); f != 10 {
		t.Fatalf("fraction moved without cause: %v", f)
	}
	if b.Stats().Explorations != 0 {
		t.Fatal("exploration ran despite ablation")
	}
}

func TestEmptyPeriodHolds(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10})
	defer env.Shutdown()
	feed(b, 10*time.Millisecond, 2*time.Millisecond) // -> 0.20
	b.endPeriod(0)                                   // no samples at all
	if f := b.FractionPct(); f != 20 {
		t.Fatalf("fraction %v after empty period, want 0.20", f)
	}
	// Only-primary samples (fraction could be 0 from gating): hold too.
	for i := 0; i < 5; i++ {
		b.Record(driver.Primary, time.Millisecond)
	}
	b.endPeriod(0)
	if f := b.FractionPct(); f != 20 {
		t.Fatalf("fraction %v after primary-only period, want 0.20", f)
	}
}

func TestStalenessGateTripsAndReleases(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10})
	defer env.Shutdown()
	feed(b, 10*time.Millisecond, 2*time.Millisecond) // -> 0.20
	b.mu.Lock()
	b.maxStale = 11
	b.applyGateLocked()
	b.mu.Unlock()
	if f := b.FractionPct(); f != 0 {
		t.Fatalf("fraction %v with staleness 11 > bound 10, want 0", f)
	}
	if !b.Gated() {
		t.Fatal("not gated")
	}
	if b.Stats().GateTrips != 1 {
		t.Fatalf("gateTrips=%d", b.Stats().GateTrips)
	}
	// Staleness recovers: fraction resumes the latest decision.
	b.mu.Lock()
	b.maxStale = 2
	b.applyGateLocked()
	b.mu.Unlock()
	if f := b.FractionPct(); f != 20 {
		t.Fatalf("fraction %v after recovery, want 0.20", f)
	}
	if b.Stats().GateTrips != 1 {
		t.Fatal("gate trip double counted")
	}
}

func TestGatePersistsAcrossPeriodEnd(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10})
	defer env.Shutdown()
	b.mu.Lock()
	b.maxStale = 50
	b.applyGateLocked()
	b.mu.Unlock()
	feed(b, 10*time.Millisecond, 2*time.Millisecond)
	if f := b.FractionPct(); f != 0 {
		t.Fatalf("period end un-gated the balancer: %v", f)
	}
	// The underlying decision still advanced (Algorithm 1 keeps
	// updating RecentBal while gated).
	d := b.Decisions()
	if len(d) == 0 || d[len(d)-1].NewBalPct != 20 {
		t.Fatalf("decisions=%v", d)
	}
}

func TestRTTSubtractionSeparatesNetworkFromService(t *testing.T) {
	// Same client-observed latencies, but the secondary sits behind a
	// longer network path: without subtraction the ratio looks
	// balanced; with it, the secondary's server is revealed as faster.
	env, b := newTestBalancer(Params{StaleBound: 10})
	defer env.Shutdown()
	for i := 0; i < 20; i++ {
		b.Record(driver.Primary, 4*time.Millisecond)
		b.Record(driver.Secondary, 4*time.Millisecond)
	}
	b.mu.Lock()
	b.rttPrimary.add(200 * time.Microsecond)
	b.rttSecondary.add(3 * time.Millisecond)
	b.mu.Unlock()
	b.endPeriod(0)
	// L_ss(primary)=3.8ms, L_ss(secondary)=1ms, ratio=3.8 > 1.3 -> up.
	if f := b.FractionPct(); f != 20 {
		t.Fatalf("fraction %v, want 0.20 (ratio should exceed HighRatio)", f)
	}

	env2, b2 := newTestBalancer(Params{StaleBound: 10, NoRTTSubtraction: true})
	defer env2.Shutdown()
	for i := 0; i < 20; i++ {
		b2.Record(driver.Primary, 4*time.Millisecond)
		b2.Record(driver.Secondary, 4*time.Millisecond)
	}
	b2.endPeriod(0)
	if f := b2.FractionPct(); f != 10 {
		t.Fatalf("ablated fraction %v, want hold at 0.10 (ratio 1.0)", f)
	}
}

func TestUseMeanAblation(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10, UseMean: true})
	defer env.Shutdown()
	// Median primary latency is low, but a tail outlier drags the mean
	// far up: mean-based control reacts, median-based would not.
	for i := 0; i < 9; i++ {
		b.Record(driver.Primary, 1*time.Millisecond)
		b.Record(driver.Secondary, 1*time.Millisecond)
	}
	b.Record(driver.Primary, 200*time.Millisecond)
	b.Record(driver.Secondary, 1*time.Millisecond)
	b.endPeriod(0)
	if f := b.FractionPct(); f != 20 {
		t.Fatalf("mean-based fraction %v, want 0.20", f)
	}
}

func TestDecisionsRecorded(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10})
	defer env.Shutdown()
	feed(b, 10*time.Millisecond, 2*time.Millisecond)
	feed(b, 2*time.Millisecond, 10*time.Millisecond)
	d := b.Decisions()
	if len(d) != 2 {
		t.Fatalf("%d decisions", len(d))
	}
	if d[0].Ratio < 4 || d[1].Ratio > 0.5 {
		t.Fatalf("ratios %v %v", d[0].Ratio, d[1].Ratio)
	}
	if b.Stats().Periods != 2 {
		t.Fatalf("periods=%d", b.Stats().Periods)
	}
}

func TestEndToEndBalancerShiftsUnderCongestion(t *testing.T) {
	// Full loop: congested primary (closed-loop readers all hitting
	// it at first through the router) must drive the fraction up.
	env := sim.NewEnv(7)
	defer env.Shutdown()
	cfg := cluster.DefaultConfig()
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	rs.Bootstrap(func(s *storage.Store) error { return nil })
	params := DefaultParams()
	params.Period = 2 * time.Second
	sys := NewSystem(env, driver.WrapCluster(rs), params)
	for i := 0; i < 120; i++ {
		env.Spawn("client", func(p sim.Proc) {
			for {
				sys.Router.Read(p, func(v cluster.ReadView) (any, error) {
					v.FindByID("kv", "k")
					return nil, nil
				})
			}
		})
	}
	env.Run(60 * time.Second)
	if f := sys.Balancer.Fraction(); f < 0.6 {
		t.Fatalf("fraction %v after sustained primary congestion, want >= 0.6", f)
	}
	prim, sec := sys.Router.Counts(false)
	if sec == 0 || prim == 0 {
		t.Fatalf("counts %d/%d", prim, sec)
	}
}

func TestDecisionRingBoundsTrace(t *testing.T) {
	p := Params{StaleBound: 10, DecisionCap: 8}
	env, b := newTestBalancer(p)
	defer env.Shutdown()
	for i := 0; i < 50; i++ {
		b.endPeriod(time.Duration(i) * time.Second)
	}
	d := b.Decisions()
	if len(d) != 8 {
		t.Fatalf("trace holds %d decisions, want cap 8", len(d))
	}
	// Oldest first: the retained window is periods 42..49.
	if d[0].At != 42*time.Second || d[7].At != 49*time.Second {
		t.Fatalf("window [%v, %v], want [42s, 49s]", d[0].At, d[7].At)
	}
	if b.Stats().Periods != 50 {
		t.Fatalf("periods=%d", b.Stats().Periods)
	}
}

func TestDecisionReasonsRecordedAndCounted(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10})
	defer env.Shutdown()
	feed(b, 10*time.Millisecond, 2*time.Millisecond) // increase
	feed(b, 2*time.Millisecond, 10*time.Millisecond) // decrease
	b.endPeriod(0)                                   // no samples: hold
	d := b.Decisions()
	want := []string{ReasonIncrease, ReasonDecrease, ReasonHold}
	for i, r := range want {
		if d[i].Reason != r {
			t.Errorf("decision %d reason %q, want %q", i, d[i].Reason, r)
		}
	}
	snap := b.client.Metrics().Snapshot()
	for _, r := range want {
		if snap.CounterValue(obs.Name("balancer.decisions", "reason", r)) == 0 {
			t.Errorf("reason %q not counted in registry", r)
		}
	}
}

func TestGatedDecisionCounted(t *testing.T) {
	env, b := newTestBalancer(Params{StaleBound: 10})
	defer env.Shutdown()
	b.mu.Lock()
	b.maxStale = 50
	b.applyGateLocked()
	b.mu.Unlock()
	feed(b, 10*time.Millisecond, 2*time.Millisecond)
	d := b.Decisions()
	if !d[len(d)-1].Gated {
		t.Fatal("decision not marked gated")
	}
	snap := b.client.Metrics().Snapshot()
	if snap.CounterValue(obs.Name("balancer.decisions", "reason", ReasonGated)) == 0 {
		t.Error("gated decision not counted")
	}
	if snap.CounterValue("balancer.gate_trips") == 0 {
		t.Error("gate trip not counted in registry")
	}
}

func TestSampleBufRingOverwrite(t *testing.T) {
	var s sampleBuf
	for i := 0; i < maxRoleSamples+100; i++ {
		s.add(time.Duration(i))
	}
	got := s.take()
	if len(got) != maxRoleSamples {
		t.Fatalf("buffer holds %d samples, want cap %d", len(got), maxRoleSamples)
	}
	// The oldest 100 samples were overwritten by the newest 100.
	for _, v := range got {
		if v < 100 {
			t.Fatalf("stale sample %d survived overwrite", v)
		}
	}
	if len(s.take()) != 0 {
		t.Fatal("take did not reset the buffer")
	}
}

func TestBalancerLoopsSkipDownPrimary(t *testing.T) {
	env := sim.NewEnv(9)
	defer env.Shutdown()
	cfg := cluster.DefaultConfig()
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	client := driver.NewClient(env, driver.WrapCluster(rs))
	b := NewBalancer(env, client, Params{StaleBound: 10})
	rs.SetDown(rs.PrimaryID(), true)
	b.Start()
	env.Run(5 * time.Second)
	st := b.Stats()
	if st.StatusSkips == 0 {
		t.Error("down-primary serverStatus polls not skipped")
	}
	if st.RTTSkips == 0 {
		t.Error("down-primary RTT pings not skipped")
	}
	if b.MaxStaleness() != 0 {
		t.Errorf("staleness %d filed from a down primary", b.MaxStaleness())
	}
	b.mu.Lock()
	nPrimRTT := len(b.rttPrimary.buf)
	nSecRTT := len(b.rttSecondary.buf)
	b.mu.Unlock()
	if nPrimRTT != 0 {
		t.Errorf("%d RTT samples filed for the down primary", nPrimRTT)
	}
	if nSecRTT == 0 {
		t.Error("live secondaries produced no RTT samples")
	}
	snap := client.Metrics().Snapshot()
	if snap.CounterValue("balancer.status_skips") == 0 {
		t.Error("status skips not in registry")
	}
	if snap.CounterValue("balancer.rtt_skips") == 0 {
		t.Error("rtt skips not in registry")
	}
}
