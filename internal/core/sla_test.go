package core

import (
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func TestSLAValidate(t *testing.T) {
	if err := (SLA{}).Validate(); err == nil {
		t.Fatal("empty SLA accepted")
	}
	bad := SLA{
		{Name: "a", Utility: 0.5},
		{Name: "b", Utility: 0.9},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("increasing utility accepted")
	}
	if err := DefaultSLA().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSLAChooseStrongWhenPrimaryFast(t *testing.T) {
	env, b := newTestBalancer(DefaultParams())
	defer env.Shutdown()
	r, err := NewSLARouter(b, b.client, DefaultSLA())
	if err != nil {
		t.Fatal(err)
	}
	// Primary latency well within the 10ms bound.
	b.Record(driver.Primary, 2*time.Millisecond)
	b.Record(driver.Secondary, 2*time.Millisecond)
	sub, pref := r.choose()
	if sub.Name != "strong-fast" || pref != driver.Primary {
		t.Fatalf("chose %q via %v, want strong-fast via primary", sub.Name, pref)
	}
}

func TestSLAChooseStaleFastWhenPrimaryCongested(t *testing.T) {
	env, b := newTestBalancer(DefaultParams())
	defer env.Shutdown()
	r, _ := NewSLARouter(b, b.client, DefaultSLA())
	// Primary slow (congested), secondary fast, staleness fine.
	for i := 0; i < 20; i++ {
		b.Record(driver.Primary, 50*time.Millisecond)
		b.Record(driver.Secondary, 3*time.Millisecond)
	}
	sub, pref := r.choose()
	if sub.Name != "stale-fast" || pref != driver.Secondary {
		t.Fatalf("chose %q via %v, want stale-fast via secondary", sub.Name, pref)
	}
}

func TestSLAStalenessDisqualifiesSecondaries(t *testing.T) {
	env, b := newTestBalancer(DefaultParams())
	defer env.Shutdown()
	r, _ := NewSLARouter(b, b.client, DefaultSLA())
	for i := 0; i < 20; i++ {
		b.Record(driver.Primary, 50*time.Millisecond) // too slow for strong-fast
		b.Record(driver.Secondary, 3*time.Millisecond)
	}
	b.mu.Lock()
	b.maxStale = 30 // beyond stale-fast's 10s requirement
	b.mu.Unlock()
	sub, pref := r.choose()
	if sub.Name != "strong-slow" || pref != driver.Primary {
		t.Fatalf("chose %q via %v, want strong-slow fallback via primary", sub.Name, pref)
	}
}

func TestSLAFallbackAlwaysAvailable(t *testing.T) {
	env, b := newTestBalancer(DefaultParams())
	defer env.Shutdown()
	// Single-entry SLA: everything routes to it regardless of state.
	r, _ := NewSLARouter(b, b.client, SLA{
		{Name: "only", MaxStalenessSecs: 5, LatencyBound: time.Nanosecond, Utility: 1},
	})
	sub, pref := r.choose()
	if sub.Name != "only" || pref != driver.Secondary {
		t.Fatalf("fallback chose %q via %v", sub.Name, pref)
	}
	b.mu.Lock()
	b.maxStale = 99
	b.mu.Unlock()
	if _, pref := r.choose(); pref != driver.Primary {
		t.Fatal("stale fallback should route to primary")
	}
}

func TestSLAEndToEndUtility(t *testing.T) {
	env := sim.NewEnv(55)
	defer env.Shutdown()
	cfg := cluster.DefaultConfig()
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	rs.Bootstrap(func(s *storage.Store) error {
		return s.C("kv").Insert(storage.D{"_id": "k", "v": 1})
	})
	sys := NewSystem(env, driver.WrapCluster(rs), DefaultParams())
	r, err := NewSLARouter(sys.Balancer, sys.Client, DefaultSLA())
	if err != nil {
		t.Fatal(err)
	}
	// Congest the primary with background load.
	for i := 0; i < 120; i++ {
		env.Spawn("bg", func(p sim.Proc) {
			for {
				sys.Client.Read(p, driver.ReadOptions{Pref: driver.Primary}, func(v cluster.ReadView) (any, error) {
					v.FindByID("kv", "k")
					return nil, nil
				})
			}
		})
	}
	env.Spawn("sla-client", func(p sim.Proc) {
		for i := 0; i < 400; i++ {
			if _, _, _, err := r.Read(p, func(v cluster.ReadView) (any, error) {
				v.FindByID("kv", "k")
				return nil, nil
			}); err != nil {
				t.Errorf("sla read: %v", err)
				return
			}
			p.Sleep(50 * time.Millisecond)
		}
	})
	env.Run(40 * time.Second)
	st := r.Stats()
	total := int64(0)
	for _, v := range st.Hits {
		total += v
	}
	for _, v := range st.Misses {
		total += v
	}
	if total < 300 {
		t.Fatalf("only %d SLA reads recorded", total)
	}
	// Under a congested primary, the stale-fast subSLA should carry
	// most of the traffic (secondaries are fast and fresh).
	if st.Hits["stale-fast"] == 0 {
		t.Fatalf("stale-fast never hit: %+v", st)
	}
	if st.UtilitySum <= 0 {
		t.Fatal("no utility delivered")
	}
}
