package core

import (
	"fmt"
	"sync"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
)

// The paper's conclusion names "richer client SLAs as well as maximum
// staleness" as future work and discusses Pileus (§5) as the
// SLA-driven point in the design space. SLARouter is that extension:
// a declarative, Pileus-style SLA — an ordered list of subSLAs, each a
// (consistency requirement, latency bound, utility) triple — evaluated
// per read against the Read Balancer's live staleness estimate and
// smoothed per-role latencies. The read is routed to satisfy the
// highest-utility subSLA currently predicted to be achievable.

// SubSLA is one acceptable way to serve a read.
type SubSLA struct {
	// Name labels the subSLA in hit statistics.
	Name string
	// MaxStalenessSecs is the consistency requirement: 0 demands
	// up-to-date data (primary only); otherwise secondaries whose
	// estimated staleness is within the bound are acceptable.
	MaxStalenessSecs int64
	// LatencyBound is the response-time target; the subSLA is chosen
	// only when the predicted latency of its routing is within it.
	LatencyBound time.Duration
	// Utility scores the subSLA; higher is better. The list should be
	// ordered by descending utility.
	Utility float64
}

// SLA is an ordered list of subSLAs; the last entry acts as the
// fallback and is used regardless of predictions when nothing better
// qualifies.
type SLA []SubSLA

// Validate checks structural sanity: non-empty, descending utility.
func (s SLA) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("core: SLA has no subSLAs")
	}
	for i := 1; i < len(s); i++ {
		if s[i].Utility > s[i-1].Utility {
			return fmt.Errorf("core: SLA utilities must be non-increasing (%q > %q)",
				s[i].Name, s[i-1].Name)
		}
	}
	return nil
}

// SLAStats accumulates per-subSLA outcomes.
type SLAStats struct {
	// Hits counts reads that met both the chosen subSLA's consistency
	// and latency requirements; Misses counts reads that were routed
	// for a subSLA but exceeded its latency bound.
	Hits   map[string]int64
	Misses map[string]int64
	// UtilitySum accumulates delivered utility (hits only).
	UtilitySum float64
}

// SLARouter routes reads by SLA. It shares the Balancer's telemetry
// (staleness estimate, per-role latency EWMAs) but makes its own
// per-read choice instead of a biased coin flip.
type SLARouter struct {
	balancer *Balancer
	client   *driver.Client
	sla      SLA

	mu    sync.Mutex
	stats SLAStats
}

// NewSLARouter creates a router for the given SLA. The balancer's
// background processes must be started for staleness and latency
// telemetry to flow.
func NewSLARouter(balancer *Balancer, client *driver.Client, sla SLA) (*SLARouter, error) {
	if err := sla.Validate(); err != nil {
		return nil, err
	}
	return &SLARouter{
		balancer: balancer,
		client:   client,
		sla:      sla,
		stats:    SLAStats{Hits: map[string]int64{}, Misses: map[string]int64{}},
	}, nil
}

// choose picks the highest-utility subSLA whose requirements look
// satisfiable right now, and the Read Preference that serves it.
func (r *SLARouter) choose() (SubSLA, driver.ReadPref) {
	stale := r.balancer.MaxStaleness()
	latP := r.balancer.LatencyEstimate(driver.Primary)
	latS := r.balancer.LatencyEstimate(driver.Secondary)
	for i, sub := range r.sla {
		fallback := i == len(r.sla)-1
		if sub.MaxStalenessSecs == 0 {
			// Consistency requires the primary.
			if fallback || latP == 0 || latP <= sub.LatencyBound {
				return sub, driver.Primary
			}
			continue
		}
		// Secondaries qualify only within the staleness requirement.
		if stale > sub.MaxStalenessSecs {
			if fallback {
				return sub, driver.Primary
			}
			continue
		}
		if fallback || latS == 0 || latS <= sub.LatencyBound {
			return sub, driver.Secondary
		}
	}
	// Unreachable given Validate, but keep a safe default.
	return r.sla[len(r.sla)-1], driver.Primary
}

// Read routes one read per the SLA, records the outcome against the
// chosen subSLA, and reports the latency to the Balancer's shared
// lists (the SLA router still feeds the feedback controller).
func (r *SLARouter) Read(p sim.Proc, fn func(v cluster.ReadView) (any, error)) (any, SubSLA, time.Duration, error) {
	sub, pref := r.choose()
	res, _, lat, err := r.client.Read(p, driver.ReadOptions{Pref: pref}, fn)
	if err != nil {
		return nil, sub, lat, err
	}
	r.balancer.Record(pref, lat)
	r.mu.Lock()
	if lat <= sub.LatencyBound {
		r.stats.Hits[sub.Name]++
		r.stats.UtilitySum += sub.Utility
	} else {
		r.stats.Misses[sub.Name]++
	}
	r.mu.Unlock()
	return res, sub, lat, nil
}

// Stats returns a copy of the hit/miss counters.
func (r *SLARouter) Stats() SLAStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := SLAStats{
		Hits:       make(map[string]int64, len(r.stats.Hits)),
		Misses:     make(map[string]int64, len(r.stats.Misses)),
		UtilitySum: r.stats.UtilitySum,
	}
	for k, v := range r.stats.Hits {
		out.Hits[k] = v
	}
	for k, v := range r.stats.Misses {
		out.Misses[k] = v
	}
	return out
}

// DefaultSLA mirrors Pileus's canonical example: prefer fast+fresh,
// accept fast+slightly-stale, fall back to whatever the primary gives.
func DefaultSLA() SLA {
	return SLA{
		{Name: "strong-fast", MaxStalenessSecs: 0, LatencyBound: 10 * time.Millisecond, Utility: 1.0},
		{Name: "stale-fast", MaxStalenessSecs: 10, LatencyBound: 10 * time.Millisecond, Utility: 0.7},
		{Name: "strong-slow", MaxStalenessSecs: 0, LatencyBound: time.Second, Utility: 0.2},
	}
}
