package core

import (
	"math/rand"
	"strconv"
	"sync"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/obs"
	"decongestant/internal/obs/trace"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
)

// Router is the piece of Decongestant living inside every client
// process (§3.2): before each read it consults the Read Balancer's
// latest Balance Fraction, flips a biased coin to pick primary or
// secondary Read Preference, executes the read through the driver,
// and reports the observed latency back to the Balancer's shared
// lists.
type Router struct {
	balancer *Balancer
	client   *driver.Client

	mu       sync.Mutex
	rng      *rand.Rand
	nPrimary int64
	nSecond  int64
	lin      linRing
}

// NewRouter creates a router bound to a balancer and driver client.
func NewRouter(env sim.Env, balancer *Balancer, client *driver.Client) *Router {
	return &Router{
		balancer: balancer,
		client:   client,
		rng:      env.NewRand("core-router"),
	}
}

// Choose flips the biased coin: secondary with probability equal to
// the current Balance Fraction, primary otherwise.
func (r *Router) Choose() driver.ReadPref {
	f := r.balancer.Fraction()
	r.mu.Lock()
	coin := r.rng.Float64()
	r.mu.Unlock()
	if coin < f {
		return driver.Secondary
	}
	return driver.Primary
}

// Read routes one read-only operation: coin flip, execute, record the
// client-observed latency with the Balancer, and count the actual
// destination (the experiments report measured percentages, not the
// suggested fraction).
func (r *Router) Read(p sim.Proc, fn func(v cluster.ReadView) (any, error)) (any, driver.ReadPref, time.Duration, error) {
	res, pref, lat, _, err := r.ReadTraced(p, fn)
	return res, pref, lat, err
}

// ReadTraced is Read plus the trace id it ran under (0 when the
// sampling coin came up unsampled). The router is the trace
// originator for balanced reads: a sampled read gets a router.read
// root span, a balancer.decision child span recording the routing
// choice and the balancer state that produced it (reason code,
// fraction, staleness estimate at decision time, gate state), and the
// same decision snapshot rides the wire in the trace context so the
// server's slow-op log can attribute the op to its routing. Reads the
// coin sends to a secondary also declare the balancer's staleness
// bound, arming the serving side's freshness auditor.
func (r *Router) ReadTraced(p sim.Proc, fn func(v cluster.ReadView) (any, error)) (any, driver.ReadPref, time.Duration, uint64, error) {
	pref := r.Choose()
	tracer := r.client.Tracer()
	tctx := tracer.StartTrace()
	opts := driver.ReadOptions{Pref: pref}
	if pref == driver.Secondary {
		opts.AuditBoundSecs = r.balancer.Params().StaleBound
	}
	child := tctx
	var start time.Duration
	if tctx.Live() {
		start = p.Now()
		rootID := tracer.NewSpanID()
		staleSecs := r.balancer.MaxStaleness()
		fracPct := r.balancer.FractionPct()
		gated := r.balancer.Gated()
		reason := ""
		if d, ok := r.balancer.LastDecision(); ok {
			reason = d.Reason
		}
		tracer.Record(trace.Span{
			Trace:  tctx.TraceID,
			ID:     tracer.NewSpanID(),
			Parent: rootID,
			Name:   "balancer.decision",
			Node:   -1,
			Start:  start,
			Attrs: []trace.Attr{
				{K: "pref", V: pref.String()},
				{K: "reason", V: reason},
				{K: "frac_pct", V: strconv.Itoa(fracPct)},
				{K: "stale_secs", V: strconv.FormatInt(staleSecs, 10)},
				{K: "gated", V: strconv.FormatBool(gated)},
			},
		})
		child = trace.Context{
			TraceID: tctx.TraceID,
			SpanID:  rootID,
			Route: &trace.Route{
				Pref:      pref.String(),
				Reason:    reason,
				FracPct:   fracPct,
				StaleSecs: staleSecs,
				Gated:     gated,
			},
		}
	}
	res, node, lat, err := r.client.ReadTraced(p, opts, child, fn)
	if tctx.Live() {
		tracer.Record(trace.Span{
			Trace: tctx.TraceID,
			ID:    child.SpanID,
			Name:  "router.read",
			Node:  -1,
			Start: start,
			Dur:   p.Now() - start,
			Attrs: []trace.Attr{
				{K: "pref", V: pref.String()},
				{K: "node", V: strconv.Itoa(node)},
			},
		})
	}
	if err != nil {
		return nil, pref, lat, tctx.TraceID, err
	}
	r.balancer.Record(pref, lat)
	r.mu.Lock()
	if pref == driver.Secondary {
		r.nSecond++
	} else {
		r.nPrimary++
	}
	r.mu.Unlock()
	return res, pref, lat, tctx.TraceID, nil
}

// ReadFresh routes one read like Read — same biased coin, same
// balancer latency accounting — but also returns the serving node's
// applied OpTime and observed staleness, so a caller-side
// freshness-priced cache (the mongos router cache) can stamp its
// fills. fresh=false means the connection cannot report staleness and
// the results must not be cached under a bound. This path is untraced:
// it exists for cache fills, whose spans the cache owner records.
func (r *Router) ReadFresh(p sim.Proc, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, int64, driver.ReadPref, time.Duration, bool, error) {
	pref := r.Choose()
	opts := driver.ReadOptions{Pref: pref}
	if pref == driver.Secondary {
		opts.AuditBoundSecs = r.balancer.Params().StaleBound
	}
	res, ts, observed, _, lat, fresh, err := r.client.ReadFresh(p, opts, fn)
	if err != nil {
		return nil, oplog.Zero, 0, pref, lat, fresh, err
	}
	r.balancer.Record(pref, lat)
	r.mu.Lock()
	if pref == driver.Secondary {
		r.nSecond++
	} else {
		r.nPrimary++
	}
	r.mu.Unlock()
	return res, ts, observed, pref, lat, fresh, nil
}

// LinDecision records one linearizable routing outcome: where the read
// was actually served and why — "lease-valid" when a leased member
// answered locally, "primary" for the unleased majority-confirm
// baseline, and the "→primary" forms when a lease rejection redirected
// the read (the reason names what the first member rejected with).
type LinDecision struct {
	At     time.Duration
	Node   int
	Reason string
	Lat    time.Duration
}

// linDecisionCap bounds the retained linearizable routing trace.
const linDecisionCap = 512

// linRing is a fixed-capacity ring of recent linearizable decisions,
// mirroring decisionRing for the lease-routing path.
type linRing struct {
	buf  []LinDecision
	next int
	n    int
}

func (r *linRing) add(d LinDecision) {
	if r.buf == nil {
		r.buf = make([]LinDecision, linDecisionCap)
	}
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

func (r *linRing) list() []LinDecision {
	out := make([]LinDecision, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// ReadLinearizable routes one linearizable read across the replica
// set's lease holders: the driver picks among leased members (primary
// always eligible) using the same latency window the balancer's RTT
// pinger feeds, and falls back to the primary on a lease rejection.
// The observed latency is filed with the Balancer under the role that
// actually served — a leased secondary's local strong read counts as
// secondary capacity, exactly like a balanced stale read — and the
// routing reason is returned, counted, and kept in the decision ring.
func (r *Router) ReadLinearizable(p sim.Proc, fn func(v cluster.ReadView) (any, error)) (any, int, time.Duration, string, error) {
	res, node, lat, reason, _, err := r.ReadLinearizableTraced(p, fn)
	return res, node, lat, reason, err
}

// ReadLinearizableTraced is ReadLinearizable plus the trace id it ran
// under (0 when unsampled). A sampled linearizable read mirrors the
// balanced-read span tree: a balancer.decision child records the
// routing mode and balancer state, the route snapshot rides the wire
// for slow-op attribution (the driver rewrites its reason on a lease
// fallback so the primary's slow-op log names the redirected hop), and
// a router.read root span closes over the serving node and final
// reason.
func (r *Router) ReadLinearizableTraced(p sim.Proc, fn func(v cluster.ReadView) (any, error)) (any, int, time.Duration, string, uint64, error) {
	tracer := r.client.Tracer()
	tctx := tracer.StartTrace()
	child := tctx
	var start time.Duration
	if tctx.Live() {
		start = p.Now()
		rootID := tracer.NewSpanID()
		staleSecs := r.balancer.MaxStaleness()
		fracPct := r.balancer.FractionPct()
		gated := r.balancer.Gated()
		tracer.Record(trace.Span{
			Trace:  tctx.TraceID,
			ID:     tracer.NewSpanID(),
			Parent: rootID,
			Name:   "balancer.decision",
			Node:   -1,
			Start:  start,
			Attrs: []trace.Attr{
				{K: "pref", V: driver.Linearizable.String()},
				{K: "reason", V: "lease-routing"},
				{K: "frac_pct", V: strconv.Itoa(fracPct)},
				{K: "stale_secs", V: strconv.FormatInt(staleSecs, 10)},
				{K: "gated", V: strconv.FormatBool(gated)},
			},
		})
		child = trace.Context{
			TraceID: tctx.TraceID,
			SpanID:  rootID,
			Route: &trace.Route{
				Pref:      driver.Linearizable.String(),
				Reason:    "lease-routing",
				FracPct:   fracPct,
				StaleSecs: staleSecs,
				Gated:     gated,
			},
		}
	}
	res, node, lat, reason, err := r.client.ReadLinearizableTraced(p, driver.ReadOptions{}, child, fn)
	if tctx.Live() {
		tracer.Record(trace.Span{
			Trace: tctx.TraceID,
			ID:    child.SpanID,
			Name:  "router.read",
			Node:  -1,
			Start: start,
			Dur:   p.Now() - start,
			Attrs: []trace.Attr{
				{K: "pref", V: driver.Linearizable.String()},
				{K: "node", V: strconv.Itoa(node)},
				{K: "reason", V: reason},
			},
		})
	}
	if reason != "" {
		r.client.Metrics().Counter(obs.Name("router.linearizable", "reason", reason)).Inc(1)
	}
	if err != nil {
		return nil, node, lat, reason, tctx.TraceID, err
	}
	rolePref := driver.Secondary
	if node == r.client.Conn().PrimaryID() {
		rolePref = driver.Primary
	}
	r.balancer.Record(rolePref, lat)
	r.mu.Lock()
	if rolePref == driver.Secondary {
		r.nSecond++
	} else {
		r.nPrimary++
	}
	r.lin.add(LinDecision{At: p.Now(), Node: node, Reason: reason, Lat: lat})
	r.mu.Unlock()
	return res, node, lat, reason, tctx.TraceID, nil
}

// LinearizableDecisions returns the retained linearizable routing
// outcomes, oldest first — at most linDecisionCap entries.
func (r *Router) LinearizableDecisions() []LinDecision {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lin.list()
}

// Write forwards a write transaction to the primary via the driver.
func (r *Router) Write(p sim.Proc, fn func(tx cluster.WriteTxn) (any, error)) (any, time.Duration, error) {
	return r.client.Write(p, fn)
}

// Counts returns how many routed reads actually went to the primary
// and to secondaries, and resets the counters when reset is true.
func (r *Router) Counts(reset bool) (primary, secondary int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	primary, secondary = r.nPrimary, r.nSecond
	if reset {
		r.nPrimary, r.nSecond = 0, 0
	}
	return primary, secondary
}

// System bundles everything a Decongestant-enabled client system needs:
// the driver session, the Read Balancer and a Router.
type System struct {
	Client   *driver.Client
	Balancer *Balancer
	Router   *Router
}

// NewSystem wires a complete Decongestant deployment over a
// connection and starts the Balancer's background processes.
func NewSystem(env sim.Env, conn driver.Conn, params Params) *System {
	client := driver.NewClient(env, conn)
	balancer := NewBalancer(env, client, params)
	router := NewRouter(env, balancer, client)
	balancer.Start()
	return &System{Client: client, Balancer: balancer, Router: router}
}
