package cluster

import (
	"strconv"
	"sync"

	"decongestant/internal/obs"
)

// FreshnessExemplar is one audited secondary read: the bound the
// session promised (0 = none), the staleness observed at serve time,
// and the read's trace id when it was sampled — the exemplar that
// makes a histogram bucket attributable to a concrete operation.
type FreshnessExemplar struct {
	BoundSecs    int64
	ObservedSecs int64
	Trace        uint64
	Violation    bool
}

const freshnessExemplarCap = 128

// freshnessAuditor turns the paper's §4.1.2 per-read staleness
// guarantee into a continuously checked invariant: every read served
// by a secondary is recorded into a per-bound observed-staleness
// histogram, and any read that exceeded its promised bound fires the
// freshness.bound_violations counter. The caller pins the violating
// trace so its spans survive ring eviction.
type freshnessAuditor struct {
	reg        *obs.Registry
	violations *obs.Counter

	mu        sync.Mutex
	hists     map[int64]*obs.Histogram
	exemplars [freshnessExemplarCap]FreshnessExemplar
	next      int
	filled    bool
}

func newFreshnessAuditor(reg *obs.Registry) *freshnessAuditor {
	return &freshnessAuditor{
		reg:        reg,
		violations: reg.Counter("freshness.bound_violations"),
		hists:      make(map[int64]*obs.Histogram),
	}
}

// record files one secondary-served read and reports whether it
// violated its promised bound. Exemplars are kept for every sampled
// read and unconditionally for violations.
func (a *freshnessAuditor) record(boundSecs, observedSecs int64, traceID uint64) bool {
	violated := boundSecs > 0 && observedSecs > boundSecs
	a.mu.Lock()
	h := a.hists[boundSecs]
	if h == nil {
		label := "none"
		if boundSecs > 0 {
			label = strconv.FormatInt(boundSecs, 10)
		}
		h = a.reg.Histogram(obs.Name("freshness.observed_staleness_secs", "bound", label))
		a.hists[boundSecs] = h
	}
	if traceID != 0 || violated {
		a.exemplars[a.next] = FreshnessExemplar{
			BoundSecs:    boundSecs,
			ObservedSecs: observedSecs,
			Trace:        traceID,
			Violation:    violated,
		}
		a.next++
		if a.next == freshnessExemplarCap {
			a.next = 0
			a.filled = true
		}
	}
	a.mu.Unlock()
	h.ObserveN(observedSecs)
	if violated {
		a.violations.Inc(1)
	}
	return violated
}

// exemplarList returns the retained exemplars oldest-first.
func (a *freshnessAuditor) exemplarList() []FreshnessExemplar {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.filled {
		out := make([]FreshnessExemplar, a.next)
		copy(out, a.exemplars[:a.next])
		return out
	}
	out := make([]FreshnessExemplar, 0, freshnessExemplarCap)
	out = append(out, a.exemplars[a.next:]...)
	out = append(out, a.exemplars[:a.next]...)
	return out
}
