package cluster

import (
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
)

// OplogTail scans the primary's oplog for entries strictly after the
// given OpTime, decoded and in TS order, up to max of them. Alongside
// the batch it reports the primary's lastApplied at scan time (so the
// caller can tell "caught up" from "nothing new yet") and the log's
// truncation horizon: when `after` predates it the log no longer holds
// every entry the caller missed, and an incremental tail is impossible —
// resync from a snapshot instead, exactly like a secondary that fell
// off the end of the oplog.
//
// This is the feed for cross-replica-set consumers — chunk migration
// drains a shard's writes through it — so unlike the internal
// replication pull it charges a network round trip and a status-priced
// CPU slice at the primary.
func (rs *ReplicaSet) OplogTail(p sim.Proc, after oplog.OpTime, max int) ([]oplog.DecodedEntry, oplog.OpTime, oplog.OpTime, error) {
	n := rs.Primary()
	rs.net.Travel(p, rs.cfg.ClientZone, n.Zone)
	if n.Down() {
		rs.net.Travel(p, n.Zone, rs.cfg.ClientZone)
		return nil, oplog.Zero, oplog.Zero, ErrNodeDown
	}
	n.cpu.Acquire(p)
	p.Sleep(n.jitterCost(rs.cfg.StatusCost))
	n.mu.RLock()
	entries := n.log.ScanAfter(after, max)
	applied := n.lastApplied
	trunc := n.log.TruncatedTo()
	n.mu.RUnlock()
	n.cpu.Release()
	rs.net.Travel(p, n.Zone, rs.cfg.ClientZone)
	decoded, _, err := oplog.DecodeBatch(entries)
	if err != nil {
		return nil, oplog.Zero, oplog.Zero, err
	}
	return decoded, applied, trunc, nil
}
