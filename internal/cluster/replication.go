package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"decongestant/internal/oplog"
	"decongestant/internal/sim"
)

// startBackground launches the replica set's internal processes:
// oplog pullers, heartbeat gossip, checkpoints, and the idle-noop
// writer.
func (rs *ReplicaSet) startBackground() {
	for _, n := range rs.nodes {
		n := n
		rs.env.Spawn(fmt.Sprintf("repl/puller-%d", n.ID), n.pullerLoop)
		rs.env.Spawn(fmt.Sprintf("repl/checkpoint-%d", n.ID), n.checkpointLoop)
		for _, m := range rs.nodes {
			if m == n {
				continue
			}
			m := m
			rs.env.Spawn(fmt.Sprintf("repl/heartbeat-%d-to-%d", n.ID, m.ID), func(p sim.Proc) {
				n.heartbeatLoop(p, m)
			})
		}
	}
	rs.env.Spawn("repl/noop-writer", rs.noopLoop)
}

// pullerLoop is the secondary's replication fetcher: it issues getMore
// requests against the primary's oplog and applies the returned batches
// locally, then reports progress. When the primary is saturated or
// checkpointing, the getMore stalls and local lastApplied freezes —
// staleness rises gradually. Once a large batch finally arrives, the
// (uncongested) secondary applies it quickly and catches up — staleness
// collapses. This is the sawtooth of §4.5.
func (n *Node) pullerLoop(p sim.Proc) {
	rs := n.rs
	for {
		if rs.PrimaryID() == n.ID || n.Down() {
			p.Sleep(rs.cfg.ReplIdlePoll)
			continue
		}
		prim := rs.Primary()
		after := n.OplogLast()
		rs.net.Travel(p, n.Zone, prim.Zone)
		batch, gapped := prim.serveGetMore(p, n.ID, after)
		rs.net.Travel(p, prim.Zone, n.Zone)
		n.obsOplogLag.Set(prim.OplogLast().LagSeconds(n.LastApplied()))
		if gapped {
			// Our fetch position fell off the primary's (hard-capped)
			// oplog; the log can no longer bring us up to date.
			n.resyncFrom(p, prim)
			continue
		}
		if len(batch) == 0 {
			n.waitForTail(p, prim, after)
			continue
		}
		n.applyBatch(p, batch)
		// Report replication progress to the primary; it arrives one
		// network traversal later, so the primary's knowledge lags —
		// the conservative over-estimate of §2.3.
		ts := n.LastApplied()
		from, to := n, prim
		rs.env.Spawn(fmt.Sprintf("repl/progress-%d", n.ID), func(q sim.Proc) {
			rs.net.Travel(q, from.Zone, to.Zone)
			to.setKnown(from.ID, ts)
		})
	}
}

// waitForTail parks an idle puller until the primary appends — its
// oplog's tail-notification hook broadcasts the gate — or until the
// poll interval elapses. The signal is an optimization, not a
// correctness dependency: a wakeup missed between the emptiness check
// and the wait degrades to the old ReplIdlePoll latency, never a hang.
// It also guards the post-failover case where this node's log is ahead
// of the new primary's: there is nothing to fetch and nothing to wake
// on, so only the timed wait prevents a hot fetch loop.
func (n *Node) waitForTail(p sim.Proc, prim *Node, after oplog.OpTime) {
	rs := n.rs
	if rs.cfg.DisableTailWake {
		p.Sleep(rs.cfg.ReplIdlePoll)
		return
	}
	if after.Before(prim.OplogLast()) {
		return // the tail moved while the empty batch was in flight
	}
	prim.tailGate.WaitTimeout(p, rs.cfg.ReplIdlePoll)
}

// applyBatch applies one fetched oplog batch: decode every entry ONCE,
// outside any lock, then apply chunk by chunk — paying the CPU queue
// per chunk, mutating the store under applyMu only (reads keep
// flowing), and taking the node write lock just for the bookkeeping
// flip. MongoDB secondaries do the same: batch decode, parallel
// appliers, then a single lastApplied advance.
func (n *Node) applyBatch(p sim.Proc, batch []oplog.Entry) {
	rs := n.rs
	decoded, dropped, derr := oplog.DecodeBatch(batch)
	if dropped > 0 {
		n.noteApplyErrors(dropped, derr)
	}
	const chunkSize = 256
	for start := 0; start < len(decoded); start += chunkSize {
		chunk := decoded[start:min(start+chunkSize, len(decoded))]
		work := 0
		for _, e := range chunk {
			if e.Kind != oplog.KindNoop {
				work++
			}
		}
		if work > 0 {
			cost := n.jitterCost(time.Duration(work) * rs.cfg.ApplyCost)
			if n.Checkpointing() {
				cost = time.Duration(float64(cost) * rs.cfg.CheckpointSlowdown)
			}
			n.cpu.Use(p, cost)
		}
		n.applyChunk(chunk)
		n.applyGate.Broadcast() // release afterClusterTime waiters
	}
}

// applyChunk applies one decoded chunk. Store mutation happens under
// applyMu (serialized against commits, catch-up and resync, but NOT
// against readers); the node write lock is held only to append the
// oplog entries and flip lastApplied.
func (n *Node) applyChunk(chunk []oplog.DecodedEntry) {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	if failed, err := n.applyChunkToStore(chunk); failed > 0 {
		n.noteApplyErrors(failed, err)
	}
	entries := make([]oplog.Entry, len(chunk))
	for i, e := range chunk {
		entries[i] = e.Entry
	}
	n.mu.Lock()
	// Skip any prefix already in the log: a concurrent failover
	// catch-up can land the same entries first. Their store apply
	// above was idempotent; re-appending would be out of order.
	skip := 0
	for skip < len(entries) && !n.lastApplied.Before(entries[skip].TS) {
		skip++
	}
	entries = entries[skip:]
	if len(entries) == 0 {
		n.mu.Unlock()
		return
	}
	var dirty int64
	for _, e := range entries {
		if e.Kind != oplog.KindNoop {
			dirty += entryBytes(e)
		}
	}
	if err := n.log.AppendBatch(entries); err != nil {
		// Only possible if a role change appended newer entries
		// concurrently; the documents are already in the store, so
		// count the divergence and move on rather than wedge.
		n.noteApplyErrors(len(entries), err)
		n.mu.Unlock()
		return
	}
	last := entries[len(entries)-1].TS
	n.lastApplied = last
	n.known[n.ID] = last
	n.dirtyBytes += dirty
	n.stats.applied.Add(int64(len(entries)))
	n.wakeAckWaitersLocked()
	n.truncateSecondaryLocked()
	n.mu.Unlock()
}

// parallelApplyMin is the chunk size below which fanning out to
// appliers costs more than it saves.
const parallelApplyMin = 64

// parallelAppliers is the secondary's applier pool width, as MongoDB's
// replWriterThreadCount bounds its batch appliers.
var parallelAppliers = min(4, runtime.GOMAXPROCS(0))

// applyChunkToStore lands a decoded chunk's documents in the store.
// Caller holds applyMu. On the real-time env, large chunks fan out
// across appliers partitioned by (collection, docID) hash: every entry
// for a given document lands in the same partition, preserving per-
// document ordering, while distinct documents apply in parallel. The
// virtual-time env always applies sequentially — parallelism there
// would change the event schedule and break run-for-run determinism.
func (n *Node) applyChunkToStore(chunk []oplog.DecodedEntry) (int, error) {
	workers := parallelAppliers
	if !n.rs.realtime || workers < 2 || len(chunk) < parallelApplyMin {
		_, failed, err := oplog.ApplyDecodedBatch(n.store, chunk)
		return failed, err
	}
	parts := make([][]oplog.DecodedEntry, workers)
	for _, e := range chunk {
		w := applierHash(e.Collection, e.DocID) % uint32(workers)
		parts[w] = append(parts[w], e)
	}
	var wg sync.WaitGroup
	var failed atomic.Int64
	errs := make([]error, workers)
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part []oplog.DecodedEntry) {
			defer wg.Done()
			_, f, err := oplog.ApplyDecodedBatch(n.store, part)
			failed.Add(int64(f))
			errs[i] = err
		}(i, part)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err != nil {
			first = err
			break
		}
	}
	return int(failed.Load()), first
}

// applierHash is FNV-1a over collection + docID, the applier
// partitioning key.
func applierHash(collection, id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(collection); i++ {
		h = (h ^ uint32(collection[i])) * 16777619
	}
	h = (h ^ '/') * 16777619
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return h
}

// resyncFrom rebuilds this node from a snapshot of the primary: a
// shallow store clone (committed documents are immutable under
// copy-on-write, so sharing pointers is safe) plus the primary's
// lastApplied as the new oplog sync point. This is initial sync,
// reached when the node's fetch position fell off the primary's
// hard-capped oplog.
func (n *Node) resyncFrom(p sim.Proc, prim *Node) {
	prim.mu.RLock()
	snap := prim.store.CloneShallow()
	syncTo := prim.lastApplied
	prim.mu.RUnlock()
	// Charge CPU proportional to the data set: a full copy is far from
	// free, which is why falling off the oplog is worth avoiding.
	if docs := snap.TotalDocs(); docs > 0 {
		n.cpu.Use(p, n.jitterCost(time.Duration(docs)*n.rs.cfg.ApplyCost/8))
	}
	n.applyMu.Lock()
	n.mu.Lock()
	n.store = snap
	n.log.ResetTo(syncTo)
	n.lastApplied = syncTo
	n.known[n.ID] = syncTo
	n.dirtyBytes = 0
	n.wakeAckWaitersLocked()
	n.mu.Unlock()
	n.applyMu.Unlock()
	n.applyGate.Broadcast()
	n.stats.resyncs.Add(1)
	n.obsResyncs.Inc(1)
}

// serveGetMore services one oplog fetch at the primary. It stalls
// behind an in-progress checkpoint and then competes for a CPU slot
// with client operations, so a congested primary delivers the oplog
// late. The scan itself runs under the read lock — fetches no longer
// serialize behind commits — and the fetch-position update takes only
// fetchMu. The second result is true when `after` has been truncated
// away and the caller must resync.
func (n *Node) serveGetMore(p sim.Proc, from int, after oplog.OpTime) ([]oplog.Entry, bool) {
	start := p.Now()
	defer func() { n.obsGetMore.Observe(p.Now() - start) }()
	for n.Checkpointing() {
		n.ckptGate.Wait(p)
	}
	cost := n.jitterCost(n.rs.cfg.GetMoreCost)
	total := n.cpu.Use(p, cost)
	n.obsQueueWait.Observe(total - cost)
	n.mu.RLock()
	gapped := after.Before(n.log.TruncatedTo())
	var batch []oplog.Entry
	if !gapped {
		batch = n.log.ScanAfter(after, n.rs.cfg.BatchMax)
	}
	n.mu.RUnlock()
	n.stats.getMores.Add(1)
	if gapped {
		return nil, true
	}
	n.stats.fetchedEntries.Add(int64(len(batch)))
	pos := after
	if len(batch) > 0 {
		pos = batch[len(batch)-1].TS
	}
	n.fetchMu.Lock()
	if n.fetchPos[from].Before(pos) {
		n.fetchPos[from] = pos
	}
	n.fetchMu.Unlock()
	return batch, false
}

// truncatePrimaryLocked caps the primary's oplog (commit-side: the
// write paths own truncation now that getMore only reads). Retention
// normally stops at the slowest LIVE member's fetch position — a down
// member no longer pins the log, which used to let one dead secondary
// grow the primary's memory without bound. OplogHardCap bounds the log
// even against live-but-slow fetchers; anyone cut off detects the gap
// on its next fetch and resyncs from a snapshot. Caller holds n.mu.
// The ring truncates in O(dropped), so the 25% hysteresis only batches
// the cutoff bookkeeping, not a suffix copy.
func (n *Node) truncatePrimaryLocked() {
	cap := n.rs.cfg.OplogCap
	if cap <= 0 || n.log.Len() < cap+cap/4 {
		return
	}
	cutoff := n.lastApplied
	n.fetchMu.Lock()
	for id, ts := range n.fetchPos {
		if id == n.ID || n.rs.nodes[id].Down() {
			continue
		}
		if ts.Before(cutoff) {
			cutoff = ts
		}
	}
	n.fetchMu.Unlock()
	n.log.TruncateBefore(cutoff)
	if hard := n.rs.cfg.OplogHardCap; hard > 0 && n.log.Len() > hard {
		n.log.TruncateToLast(hard)
	}
}

// truncateSecondaryLocked keeps the newest OplogCap entries on a
// secondary (it serves no fetchers). Caller holds n.mu.
func (n *Node) truncateSecondaryLocked() {
	cap := n.rs.cfg.OplogCap
	if cap <= 0 || n.log.Len() < cap+cap/4 {
		return
	}
	n.log.TruncateToLast(cap)
}

// heartbeatLoop gossips n's lastApplied to m every HeartbeatInterval;
// the value in flight ages by one network traversal. When leases are
// enabled and n is the live primary, each heartbeat also carries a
// read-lease grant: the send time (captured BEFORE the traversal, so
// the leader-lease window is anchored conservatively) and the majority
// commit point observed at send time. The grant lands only if both
// ends are still up and n still holds primacy on arrival — and the
// lease manager re-verifies both drain state and primacy under its own
// lock, so a deposed primary's in-flight heartbeat can never mint a
// new-epoch lease.
func (n *Node) heartbeatLoop(p sim.Proc, m *Node) {
	rs := n.rs
	for {
		ts := n.LastApplied()
		grant := rs.leases.enabled && !n.Down() && rs.PrimaryID() == n.ID
		var sendAt time.Duration
		var commit oplog.OpTime
		if grant {
			sendAt = p.Now()
			commit = n.MajorityCommitPoint()
		}
		rs.net.Travel(p, n.Zone, m.Zone)
		m.setKnown(n.ID, ts)
		if grant && !m.Down() {
			rs.leases.grant(n.ID, m.ID, sendAt, commit)
		}
		p.Sleep(rs.cfg.HeartbeatInterval)
	}
}

// checkpointLoop models WiredTiger checkpoints: every interval, flush
// the dirty data accumulated since the last checkpoint. The duration
// grows with write volume; while flushing, the node's disk is
// saturated (writes and applies slow down) and getMore servicing is
// stalled — the mechanism the paper's §4.5 diagnosis describes.
func (n *Node) checkpointLoop(p sim.Proc) {
	rs := n.rs
	for {
		p.Sleep(rs.cfg.CheckpointInterval)
		n.mu.Lock()
		dirty := n.dirtyBytes
		n.dirtyBytes = 0
		n.mu.Unlock()
		if dirty == 0 {
			continue
		}
		mb := float64(dirty) / (1 << 20)
		dur := rs.cfg.CheckpointMinDuration + time.Duration(mb*float64(rs.cfg.CheckpointPerMB))
		if dur > rs.cfg.CheckpointMaxDuration {
			dur = rs.cfg.CheckpointMaxDuration
		}
		n.mu.Lock()
		n.checkpointing = true
		n.mu.Unlock()
		n.stats.checkpoints.Add(1)
		n.obsCkpts.Inc(1)
		p.Sleep(dur)
		n.mu.Lock()
		n.checkpointing = false
		n.mu.Unlock()
		n.obsCkptDur.Observe(dur)
		n.ckptGate.Broadcast()
	}
}

// entryBytes estimates an entry's dirty-page contribution. Inserts
// dirty far more than in-place field merges: fresh documents allocate
// new pages and touch every index (TPC-C's order/history inserts are
// what made the paper's checkpoints take ~30 s, §4.5), so they weigh
// 10x their payload; deletes touch a fixed amount of bookkeeping.
func entryBytes(e oplog.Entry) int64 {
	const overhead = 64
	switch e.Kind {
	case oplog.KindInsert:
		return 10*int64(len(e.Payload)) + overhead
	case oplog.KindDelete:
		return 128
	default:
		return int64(len(e.Payload)) + overhead
	}
}

// noopLoop writes a periodic no-op oplog entry at the primary so that
// replication progress (and hence staleness) stays defined when the
// workload is idle. The primary is re-resolved every interval and
// commitNoop re-verifies liveness and primacy, so the noop writer
// never appends to a member that went down or was demoted since the
// last tick.
func (rs *ReplicaSet) noopLoop(p sim.Proc) {
	for {
		p.Sleep(rs.cfg.NoopInterval)
		rs.Primary().commitNoop(p)
	}
}
