package cluster

import (
	"fmt"
	"time"

	"decongestant/internal/oplog"
	"decongestant/internal/sim"
)

// startBackground launches the replica set's internal processes:
// oplog pullers, heartbeat gossip, checkpoints, and the idle-noop
// writer.
func (rs *ReplicaSet) startBackground() {
	for _, n := range rs.nodes {
		n := n
		rs.env.Spawn(fmt.Sprintf("repl/puller-%d", n.ID), n.pullerLoop)
		rs.env.Spawn(fmt.Sprintf("repl/checkpoint-%d", n.ID), n.checkpointLoop)
		for _, m := range rs.nodes {
			if m == n {
				continue
			}
			m := m
			rs.env.Spawn(fmt.Sprintf("repl/heartbeat-%d-to-%d", n.ID, m.ID), func(p sim.Proc) {
				n.heartbeatLoop(p, m)
			})
		}
	}
	rs.env.Spawn("repl/noop-writer", rs.noopLoop)
}

// pullerLoop is the secondary's replication fetcher: it issues getMore
// requests against the primary's oplog and applies the returned batches
// locally, then reports progress. When the primary is saturated or
// checkpointing, the getMore stalls and local lastApplied freezes —
// staleness rises gradually. Once a large batch finally arrives, the
// (uncongested) secondary applies it quickly and catches up — staleness
// collapses. This is the sawtooth of §4.5.
func (n *Node) pullerLoop(p sim.Proc) {
	rs := n.rs
	for {
		if rs.PrimaryID() == n.ID || n.Down() {
			p.Sleep(rs.cfg.ReplIdlePoll)
			continue
		}
		prim := rs.Primary()
		n.mu.RLock()
		after := n.log.Last()
		n.mu.RUnlock()
		rs.net.Travel(p, n.Zone, prim.Zone)
		batch := prim.serveGetMore(p, n.ID, after)
		rs.net.Travel(p, prim.Zone, n.Zone)
		n.obsOplogLag.Set(prim.OplogLast().LagSeconds(n.LastApplied()))
		if len(batch) == 0 {
			p.Sleep(rs.cfg.ReplIdlePoll)
			continue
		}
		// Apply the batch in chunks, paying the CPU queue once per
		// chunk rather than once per entry — MongoDB secondaries apply
		// oplog batches under a batch lock with parallel appliers, so
		// replication does not serialize behind every queued read.
		const chunkSize = 256
		for start := 0; start < len(batch); start += chunkSize {
			end := start + chunkSize
			if end > len(batch) {
				end = len(batch)
			}
			chunk := batch[start:end]
			work := 0
			for _, e := range chunk {
				if e.Kind != oplog.KindNoop {
					work++
				}
			}
			if work > 0 {
				cost := n.jitterCost(time.Duration(work) * rs.cfg.ApplyCost)
				if n.Checkpointing() {
					cost = time.Duration(float64(cost) * rs.cfg.CheckpointSlowdown)
				}
				n.cpu.Use(p, cost)
			}
			n.mu.Lock()
			for _, e := range chunk {
				if err := e.Apply(n.store); err != nil {
					continue
				}
				if err := n.log.Append(e); err != nil {
					continue
				}
				n.lastApplied = e.TS
				n.known[n.ID] = e.TS
				n.stats.applied.Add(1)
				if e.Kind != oplog.KindNoop {
					n.dirtyBytes += entryBytes(e)
				}
			}
			n.maybeTruncateOplog() // caller-side cap (we hold no fetch state)
			n.mu.Unlock()
			n.applyGate.Broadcast() // release afterClusterTime waiters
		}
		// Report replication progress to the primary; it arrives one
		// network traversal later, so the primary's knowledge lags —
		// the conservative over-estimate of §2.3.
		ts := n.LastApplied()
		from, to := n, prim
		rs.env.Spawn(fmt.Sprintf("repl/progress-%d", n.ID), func(q sim.Proc) {
			rs.net.Travel(q, from.Zone, to.Zone)
			to.setKnown(from.ID, ts)
		})
	}
}

// serveGetMore services one oplog fetch at the primary. It stalls
// behind an in-progress checkpoint and then competes for a CPU slot
// with client operations, so a congested primary delivers the oplog
// late.
func (n *Node) serveGetMore(p sim.Proc, from int, after oplog.OpTime) []oplog.Entry {
	start := p.Now()
	defer func() { n.obsGetMore.Observe(p.Now() - start) }()
	for n.Checkpointing() {
		n.ckptGate.Wait(p)
	}
	cost := n.jitterCost(n.rs.cfg.GetMoreCost)
	total := n.cpu.Use(p, cost)
	n.obsQueueWait.Observe(total - cost)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.getMores.Add(1)
	batch := n.log.ScanAfter(after, n.rs.cfg.BatchMax)
	n.stats.fetchedEntries.Add(int64(len(batch)))
	pos := after
	if len(batch) > 0 {
		pos = batch[len(batch)-1].TS
	}
	if n.fetchPos[from].Before(pos) {
		n.fetchPos[from] = pos
	}
	n.maybeTruncateOplog()
	return batch
}

// maybeTruncateOplog caps oplog memory. On the primary it never cuts
// off a fetcher (truncation stops at the slowest member's fetch
// position); on a secondary it simply keeps the newest OplogCap
// entries. Caller holds n.mu.
func (n *Node) maybeTruncateOplog() {
	cap := n.rs.cfg.OplogCap
	// Hysteresis: truncation copies the retained suffix, so run it
	// only after the log overshoots the cap by 25% and cut back to the
	// cap — amortized O(1) per append instead of O(cap) per batch.
	if cap <= 0 || n.log.Len() < cap+cap/4 {
		return
	}
	if n.rs.PrimaryID() != n.ID {
		n.log.TruncateToLast(cap)
		return
	}
	// Never truncate past the slowest member's fetch position.
	cutoff := n.lastApplied
	for id, ts := range n.fetchPos {
		if id == n.ID {
			continue
		}
		if ts.Before(cutoff) {
			cutoff = ts
		}
	}
	n.log.TruncateBefore(cutoff)
}

// heartbeatLoop gossips n's lastApplied to m every HeartbeatInterval;
// the value in flight ages by one network traversal.
func (n *Node) heartbeatLoop(p sim.Proc, m *Node) {
	rs := n.rs
	for {
		ts := n.LastApplied()
		rs.net.Travel(p, n.Zone, m.Zone)
		m.setKnown(n.ID, ts)
		p.Sleep(rs.cfg.HeartbeatInterval)
	}
}

// checkpointLoop models WiredTiger checkpoints: every interval, flush
// the dirty data accumulated since the last checkpoint. The duration
// grows with write volume; while flushing, the node's disk is
// saturated (writes and applies slow down) and getMore servicing is
// stalled — the mechanism the paper's §4.5 diagnosis describes.
func (n *Node) checkpointLoop(p sim.Proc) {
	rs := n.rs
	for {
		p.Sleep(rs.cfg.CheckpointInterval)
		n.mu.Lock()
		dirty := n.dirtyBytes
		n.dirtyBytes = 0
		n.mu.Unlock()
		if dirty == 0 {
			continue
		}
		mb := float64(dirty) / (1 << 20)
		dur := rs.cfg.CheckpointMinDuration + time.Duration(mb*float64(rs.cfg.CheckpointPerMB))
		if dur > rs.cfg.CheckpointMaxDuration {
			dur = rs.cfg.CheckpointMaxDuration
		}
		n.mu.Lock()
		n.checkpointing = true
		n.mu.Unlock()
		n.stats.checkpoints.Add(1)
		n.obsCkpts.Inc(1)
		p.Sleep(dur)
		n.mu.Lock()
		n.checkpointing = false
		n.mu.Unlock()
		n.obsCkptDur.Observe(dur)
		n.ckptGate.Broadcast()
	}
}

// entryBytes estimates an entry's dirty-page contribution. Inserts
// dirty far more than in-place field merges: fresh documents allocate
// new pages and touch every index (TPC-C's order/history inserts are
// what made the paper's checkpoints take ~30 s, §4.5), so they weigh
// 10x their payload; deletes touch a fixed amount of bookkeeping.
func entryBytes(e oplog.Entry) int64 {
	const overhead = 64
	switch e.Kind {
	case oplog.KindInsert:
		return 10*int64(len(e.Payload)) + overhead
	case oplog.KindDelete:
		return 128
	default:
		return int64(len(e.Payload)) + overhead
	}
}

// noopLoop writes a periodic no-op oplog entry at the primary so that
// replication progress (and hence staleness) stays defined when the
// workload is idle.
func (rs *ReplicaSet) noopLoop(p sim.Proc) {
	for {
		p.Sleep(rs.cfg.NoopInterval)
		prim := rs.Primary()
		prim.mu.Lock()
		_, _ = prim.appendLocal(p.Now(), func(ts oplog.OpTime) oplog.Entry {
			return oplog.NewNoop(ts)
		})
		prim.mu.Unlock()
	}
}
