package cluster

import (
	"hash/fnv"
	"math/rand"
	"time"

	"decongestant/internal/sim"
)

// Network models round-trip times between availability zones: a flat
// base within a zone, a per-zone-pair deterministic offset across
// zones (so different pairs differ by sub-millisecond amounts, as the
// paper measures on EC2), and uniform jitter per traversal.
type Network struct {
	cfg Config
	rng *rand.Rand
}

func newNetwork(env sim.Env, cfg Config) *Network {
	return &Network{cfg: cfg, rng: env.NewRand("network")}
}

// BaseRTT returns the jitter-free round-trip time between two zones.
func (n *Network) BaseRTT(a, b string) time.Duration {
	if a == b {
		return n.cfg.RTTSameZone
	}
	if b < a {
		a, b = b, a
	}
	h := fnv.New32a()
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	spread := time.Duration(0)
	if n.cfg.RTTCrossZoneSpread > 0 {
		spread = time.Duration(h.Sum32()) % n.cfg.RTTCrossZoneSpread
	}
	return n.cfg.RTTCrossZoneBase + spread
}

// jittered applies +/- RTTJitter uniform noise to d.
func (n *Network) jittered(d time.Duration) time.Duration {
	if n.cfg.RTTJitter <= 0 {
		return d
	}
	f := 1 + n.cfg.RTTJitter*(2*n.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// Travel suspends p for one network traversal (half an RTT) between
// the two zones and returns the time spent.
func (n *Network) Travel(p sim.Proc, from, to string) time.Duration {
	d := n.jittered(n.BaseRTT(from, to)) / 2
	p.Sleep(d)
	return d
}

// RoundTrip suspends p for a full jittered RTT (a ping).
func (n *Network) RoundTrip(p sim.Proc, from, to string) time.Duration {
	d := n.jittered(n.BaseRTT(from, to))
	p.Sleep(d)
	return d
}
