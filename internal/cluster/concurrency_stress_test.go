package cluster

// Race-detector stress test for the reader-writer node concurrency
// introduced in PR 3: concurrent batch reads, index scans, causal
// reads, writes, serverStatus polling and stats snapshots against a
// real-time replica set whose background pullers, heartbeats and
// checkpoints are live — with failovers fired mid-run. Run under
// `go test -race` this exercises every lock-ordering and shared-
// snapshot invariant the design section documents.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

const (
	stressDocs  = 512
	stressIters = 250
)

func stressDocID(i int) string { return fmt.Sprintf("doc%04d", i) }

func TestRealtimeConcurrencyStress(t *testing.T) {
	env := sim.NewRealtimeEnv(1)
	defer env.Shutdown()
	cfg := zeroCostConfig(8)
	cfg.ReplIdlePoll = time.Millisecond
	cfg.HeartbeatInterval = 5 * time.Millisecond
	rs := New(env, cfg)
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("stress")
		if _, err := c.CreateIndex("grp", false, "grp"); err != nil {
			return err
		}
		for i := 0; i < stressDocs; i++ {
			if err := c.Insert(storage.D{
				"_id":    stressDocID(i),
				"grp":    int64(i % 16),
				"val":    int64(0),
				"nested": storage.D{"a": int64(i)},
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	// A failover can race a write between its primary check and commit;
	// those writes fail with ErrNotPrimary and the workload just retries
	// its next iteration.
	writeErrOK := func(err error) bool {
		return err == nil || errors.Is(err, ErrNotPrimary)
	}

	// Writers: read-modify-write against the current primary.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			p := env.Adhoc(fmt.Sprintf("stress/writer-%d", idx))
			rng := rand.New(rand.NewSource(int64(idx)))
			for i := 0; i < stressIters; i++ {
				id := stressDocID(rng.Intn(stressDocs))
				_, err := rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
					d, ok := tx.FindByID("stress", id)
					if !ok {
						return nil, fmt.Errorf("stress: %s missing", id)
					}
					return nil, tx.Set("stress", id, storage.D{"val": d.Int("val") + 1})
				})
				if !writeErrOK(err) {
					fail(err)
					return
				}
			}
		}(w)
	}

	// Readers: batch point reads and index scans on random nodes. They
	// only inspect the shared snapshots — any write through them is the
	// race the detector should catch.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			p := env.Adhoc(fmt.Sprintf("stress/reader-%d", idx))
			rng := rand.New(rand.NewSource(int64(100 + idx)))
			ids := make([]string, 16)
			for i := 0; i < stressIters; i++ {
				node := rng.Intn(cfg.Nodes)
				for j := range ids {
					ids[j] = stressDocID(rng.Intn(stressDocs))
				}
				_, err := rs.ExecRead(p, node, func(v ReadView) (any, error) {
					docs := v.FindManyByID("stress", ids)
					for _, d := range docs {
						_ = d.Int("val")
						_ = d.Doc("nested").Int("a")
					}
					grp := int64(rng.Intn(16))
					if got := v.Find("stress", storage.Filter{"grp": storage.Eq(grp)}, 0); len(got) == 0 {
						return nil, fmt.Errorf("stress: empty scan for grp %d", grp)
					}
					_ = v.Count("stress", storage.Filter{"grp": storage.Gte(int64(8))})
					return nil, nil
				})
				if err != nil {
					fail(err)
					return
				}
			}
		}(r)
	}

	// Causal sessions: write with a tracked token, then read-your-write
	// on a random (possibly lagging) node via afterClusterTime. A W1
	// write that commits while a Failover is scanning the old primary's
	// oplog can be legitimately lost (fire-and-forget write concern),
	// so individual misses are tolerated; the run as a whole must still
	// demonstrate causal reads observing their writes.
	var causalHits atomic.Int64
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			p := env.Adhoc(fmt.Sprintf("stress/causal-%d", idx))
			rng := rand.New(rand.NewSource(int64(200 + idx)))
			field := fmt.Sprintf("c%d", idx)
			for i := 0; i < stressIters/5; i++ {
				id := stressDocID(rng.Intn(stressDocs))
				want := int64(1000*idx + i)
				_, token, err := rs.ExecWriteTracked(p, func(tx WriteTxn) (any, error) {
					return nil, tx.Set("stress", id, storage.D{field: want})
				})
				if !writeErrOK(err) {
					fail(err)
					return
				}
				if err != nil || token.IsZero() {
					continue
				}
				node := rng.Intn(cfg.Nodes)
				res, _, err := rs.ExecReadAfter(p, node, token, func(v ReadView) (any, error) {
					d, ok := v.FindByID("stress", id)
					if !ok {
						return nil, fmt.Errorf("stress: %s missing on node %d", id, node)
					}
					return d.Int(field), nil
				})
				if err != nil {
					fail(err)
					return
				}
				got := res.(int64)
				if got > want {
					// Only this goroutine writes the field, with
					// increasing values: seeing a later one is impossible.
					fail(fmt.Errorf("stress: causal read on node %d saw %d, want <= %d", node, got, want))
					return
				}
				if got == want {
					causalHits.Add(1)
				}
			}
		}(c)
	}

	// Status pollers: serverStatus, stats snapshots, commit points.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			p := env.Adhoc(fmt.Sprintf("stress/status-%d", idx))
			rng := rand.New(rand.NewSource(int64(300 + idx)))
			for i := 0; i < stressIters; i++ {
				node := rng.Intn(cfg.Nodes)
				st := rs.ServerStatus(p, node)
				if !st.OK() {
					fail(fmt.Errorf("stress: empty status from node %d", node))
					return
				}
				_ = st.MaxSecondaryStalenessSecs()
				_ = rs.Node(node).Stats()
				_ = rs.Node(node).MajorityCommitPoint()
				_ = rs.Node(node).LastApplied()
			}
		}(s)
	}

	// Failovers mid-run: promote the best secondary a few times while
	// everything above is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := env.Adhoc("stress/failover")
		for i := 0; i < 3; i++ {
			time.Sleep(20 * time.Millisecond)
			rs.Failover(p)
		}
	}()

	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if causalHits.Load() == 0 {
		t.Fatal("stress: no causal read ever observed its own write")
	}

	// Writes survived the failovers: every acknowledged commit is on
	// the final primary.
	var total int64
	prim := rs.Primary()
	prim.mu.RLock()
	for i := 0; i < stressDocs; i++ {
		if d, ok := prim.store.C("stress").FindByID(stressDocID(i)); ok {
			total += d.Int("val")
		}
	}
	prim.mu.RUnlock()
	if total == 0 {
		t.Fatal("stress: no writer increments visible on the final primary")
	}
}
