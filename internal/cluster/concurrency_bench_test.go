package cluster

// Benchmarks for the per-node read path on the real-time environment.
// They measure what PR 3 changes: how many reads one node can service
// per second when several clients hit it concurrently, and how many
// allocations each read costs. Simulated service times and network
// RTTs are forced negative (a no-op Sleep) so the benchmark isolates
// the engine's own synchronization and copying overhead — exactly the
// part that `Config.CPUSlots` cannot buy back when the node serializes
// every operation behind one mutex.
//
// Run with:
//
//	go test ./internal/cluster -bench BenchmarkNode -benchtime 1x -count 3 -benchmem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

const (
	benchDocs    = 4096
	benchBatch   = 64
	benchFanout  = 8 // parallel clients per GOMAXPROCS
	benchWidFans = 64
)

func benchDocID(i int) string { return fmt.Sprintf("doc%05d", i) }

// zeroCostConfig builds a replica-set config whose simulated costs are
// all negative: Sleep(d<=0) returns immediately, so the benchmark
// measures engine overhead, not modeled service time.
func zeroCostConfig(slots int) Config {
	return Config{
		Nodes:    3,
		CPUSlots: slots,

		ReadCost:    -1,
		WriteCost:   -1,
		ApplyCost:   -1,
		StatusCost:  -1,
		GetMoreCost: -1,
		CostJitter:  -1,

		RTTSameZone:        -1,
		RTTCrossZoneBase:   -1,
		RTTCrossZoneSpread: -1,
		RTTJitter:          -1,
	}
}

// benchReplicaSet builds a real-time replica set preloaded with
// benchDocs order-like documents (nested line subdocuments, the shape
// whose deep clones dominate the baseline read path).
func benchReplicaSet(b *testing.B, slots int) (*sim.RealtimeEnv, *ReplicaSet) {
	b.Helper()
	env := sim.NewRealtimeEnv(1)
	rs := New(env, zeroCostConfig(slots))
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("bench")
		if _, err := c.CreateIndex("w_id", false, "w_id"); err != nil {
			return err
		}
		for i := 0; i < benchDocs; i++ {
			lines := make([]any, 8)
			for j := range lines {
				lines[j] = storage.D{
					"i_id":   int64(j),
					"qty":    int64(5),
					"amount": 3.14,
					"info":   "abcdefghijklmnopqrstuvwx",
				}
			}
			if err := c.Insert(storage.D{
				"_id":         benchDocID(i),
				"w_id":        int64(i % benchWidFans),
				"val":         int64(i),
				"order_lines": lines,
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return env, rs
}

// BenchmarkNodeConcurrentBatchReads hammers one node with concurrent
// 64-document batch reads — the YCSB/TPC-C hot-path shape. Per-node
// read throughput (reads/s) is the headline PR 3 number.
func BenchmarkNodeConcurrentBatchReads(b *testing.B) {
	env, rs := benchReplicaSet(b, 8)
	defer env.Shutdown()
	var seed atomic.Int64
	b.SetParallelism(benchFanout)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := env.Adhoc("bench-reader")
		rng := rand.New(rand.NewSource(seed.Add(1)))
		ids := make([]string, benchBatch)
		for pb.Next() {
			for i := range ids {
				ids[i] = benchDocID(rng.Intn(benchDocs))
			}
			_, err := rs.ExecRead(p, 0, func(v ReadView) (any, error) {
				docs := v.FindManyByID("bench", ids)
				if len(docs) != benchBatch {
					return nil, errors.New("bench: missing docs")
				}
				return nil, nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
}

// BenchmarkNodeConcurrentIndexScans runs concurrent secondary-index
// range scans (~benchDocs/benchWidFans documents each), the Stock
// Level / OrderStatus shape.
func BenchmarkNodeConcurrentIndexScans(b *testing.B) {
	env, rs := benchReplicaSet(b, 8)
	defer env.Shutdown()
	var seed atomic.Int64
	b.SetParallelism(benchFanout)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := env.Adhoc("bench-scanner")
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			w := int64(rng.Intn(benchWidFans))
			_, err := rs.ExecRead(p, 0, func(v ReadView) (any, error) {
				docs := v.Find("bench", storage.Filter{"w_id": storage.Eq(w)}, 0)
				if len(docs) == 0 {
					return nil, errors.New("bench: empty scan")
				}
				return nil, nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "scans/s")
}

// BenchmarkNodeReadsUnderWrites measures read throughput at the
// primary while a closed-loop writer keeps committing — the
// reader-vs-writer interference the coarse node mutex maximizes.
func BenchmarkNodeReadsUnderWrites(b *testing.B) {
	env, rs := benchReplicaSet(b, 8)
	defer env.Shutdown()
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		p := env.Adhoc("bench-writer")
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			_, _ = rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
				return nil, tx.Set("bench", benchDocID(i%benchDocs),
					storage.D{"val": int64(i)})
			})
		}
	}()
	var seed atomic.Int64
	b.SetParallelism(benchFanout)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := env.Adhoc("bench-reader")
		rng := rand.New(rand.NewSource(seed.Add(1)))
		ids := make([]string, benchBatch)
		for pb.Next() {
			for i := range ids {
				ids[i] = benchDocID(rng.Intn(benchDocs))
			}
			_, err := rs.ExecRead(p, 0, func(v ReadView) (any, error) {
				v.FindManyByID("bench", ids)
				return nil, nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
	close(stop)
	<-writerDone
}
