package cluster

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"decongestant/internal/obs"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// Node is one replica set member: a document store, an oplog, a CPU
// resource with a fixed number of service slots, and its (possibly
// lagging) knowledge of every member's lastAppliedOpTime.
type Node struct {
	ID   int
	Zone string

	rs  *ReplicaSet
	cpu *sim.Resource
	rng *rand.Rand

	// ckptGate releases getMore requests stalled behind a checkpoint.
	ckptGate sim.Gate
	// applyGate broadcasts whenever lastApplied advances, releasing
	// afterClusterTime reads waiting for causal consistency.
	applyGate sim.Gate
	// knownGate broadcasts whenever this node's knowledge of another
	// member's progress advances, releasing write-concern waiters.
	knownGate sim.Gate

	// mu guards all fields below with a reader-writer scheme: read
	// operations (execRead bodies, status snapshots, progress
	// accessors) hold the read lock and run in parallel on the
	// real-time env, while commits, oplog application and failover
	// catch-up take the write lock. Virtual-time execution is
	// single-threaded, so there the lock is always uncontended and the
	// scheme costs nothing. The lock is never held across a blocking
	// environment primitive (Sleep/Acquire/Wait), which keeps
	// virtual-time runs deterministic and deadlock-free.
	mu            sync.RWMutex
	store         *storage.Store
	log           *oplog.Log
	lastApplied   oplog.OpTime
	known         []oplog.OpTime // per-member lastApplied as known here
	fetchPos      []oplog.OpTime // primary: last oplog position fetched by each member
	dirtyBytes    int64          // payload bytes written since the last checkpoint
	checkpointing bool
	down          bool

	// stats are atomic so operation counting never forces a read path
	// onto the exclusive lock.
	stats nodeCounters

	// Registry instruments, labeled with this node's id. Counters and
	// gauges are atomic; the histograms carry their own mutex — none
	// of these require n.mu.
	obsReads     *obs.Counter
	obsWrites    *obs.Counter
	obsQueueWait *obs.Histogram // time spent waiting for a CPU slot
	obsGetMore   *obs.Histogram // getMore service latency (primary side)
	obsCkpts     *obs.Counter
	obsCkptDur   *obs.Histogram
	obsOplogLag  *obs.Gauge // seconds behind the primary (secondary side)
}

// NodeStats is a point-in-time snapshot of the operations a node has
// serviced, as returned by Node.Stats.
type NodeStats struct {
	Reads          int64
	Writes         int64
	GetMores       int64
	FetchedEntries int64 // oplog entries handed out via getMore
	Applied        int64
	Checkpoints    int64
	Statuses       int64
}

// nodeCounters is the live, atomically-bumped form of NodeStats.
type nodeCounters struct {
	reads          atomic.Int64
	writes         atomic.Int64
	getMores       atomic.Int64
	fetchedEntries atomic.Int64
	applied        atomic.Int64
	checkpoints    atomic.Int64
	statuses       atomic.Int64
}

func newNode(rs *ReplicaSet, id int, zone string) *Node {
	n := &Node{
		ID:        id,
		Zone:      zone,
		rs:        rs,
		cpu:       sim.NewResource(rs.env, rs.cfg.CPUSlots),
		rng:       rs.env.NewRand(fmt.Sprintf("node-%d", id)),
		ckptGate:  rs.env.NewGate(),
		applyGate: rs.env.NewGate(),
		knownGate: rs.env.NewGate(),
		store:     storage.NewStore(),
		log:       oplog.NewLog(),
		known:     make([]oplog.OpTime, rs.cfg.Nodes),
		fetchPos:  make([]oplog.OpTime, rs.cfg.Nodes),
	}
	node := strconv.Itoa(id)
	reg := rs.metrics
	n.obsReads = reg.Counter(obs.Name("cluster.reads", "node", node))
	n.obsWrites = reg.Counter(obs.Name("cluster.writes", "node", node))
	n.obsQueueWait = reg.Histogram(obs.Name("cluster.cpu_queue_wait", "node", node))
	n.obsGetMore = reg.Histogram(obs.Name("cluster.getmore_latency", "node", node))
	n.obsCkpts = reg.Counter(obs.Name("cluster.checkpoints", "node", node))
	n.obsCkptDur = reg.Histogram(obs.Name("cluster.checkpoint_duration", "node", node))
	n.obsOplogLag = reg.Gauge(obs.Name("cluster.oplog_lag_secs", "node", node))
	return n
}

// jitterCost applies +/- CostJitter uniform noise to a service time.
func (n *Node) jitterCost(d time.Duration) time.Duration {
	j := n.rs.cfg.CostJitter
	if j <= 0 {
		return d
	}
	f := 1 + j*(2*n.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// LastApplied returns the node's own lastAppliedOpTime.
func (n *Node) LastApplied() oplog.OpTime {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.lastApplied
}

// setKnown records that member `id` had applied up to ts, as learned
// from a heartbeat or progress report. Knowledge never moves backward.
func (n *Node) setKnown(id int, ts oplog.OpTime) {
	n.mu.Lock()
	advanced := n.known[id].Before(ts)
	if advanced {
		n.known[id] = ts
	}
	n.mu.Unlock()
	if advanced {
		n.knownGate.Broadcast()
	}
}

// Down reports whether the node is marked unavailable.
func (n *Node) Down() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.down
}

// Checkpointing reports whether a checkpoint is in progress.
func (n *Node) Checkpointing() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.checkpointing
}

// OplogLast returns the OpTime of the node's newest oplog entry.
func (n *Node) OplogLast() oplog.OpTime {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.log.Last()
}

// Stats returns a snapshot of the node's operation counters. The
// counters are atomics, so the snapshot needs no lock and never
// contends with the node's operation paths.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Reads:          n.stats.reads.Load(),
		Writes:         n.stats.writes.Load(),
		GetMores:       n.stats.getMores.Load(),
		FetchedEntries: n.stats.fetchedEntries.Load(),
		Applied:        n.stats.applied.Load(),
		Checkpoints:    n.stats.checkpoints.Load(),
		Statuses:       n.stats.statuses.Load(),
	}
}

// QueueDepth returns the number of operations waiting for a CPU slot.
func (n *Node) QueueDepth() int { return n.cpu.Waiting() }

// appendLocal mints a timestamp, applies the mutation to the local
// store, and appends the oplog entry. Caller holds the n.mu write
// lock.
func (n *Node) appendLocal(now time.Duration, build func(ts oplog.OpTime) oplog.Entry) (oplog.Entry, error) {
	ts := n.log.NextTS(now)
	e := build(ts)
	if err := e.Apply(n.store); err != nil {
		return oplog.Entry{}, err
	}
	if err := n.log.Append(e); err != nil {
		return oplog.Entry{}, err
	}
	n.lastApplied = ts
	n.known[n.ID] = ts
	if e.Kind != oplog.KindNoop {
		n.dirtyBytes += entryBytes(e)
	}
	n.applyGate.Broadcast()
	return e, nil
}

// ---- transactional views ----

// ReadView provides read access to a store inside an ExecRead or
// ExecWrite body. The in-process implementation meters work in read
// units that translate to CPU service time; the wire client implements
// the same interface with one network round trip per call.
//
// Every document an in-process view returns is a shared immutable
// snapshot of committed state (the store is copy-on-write): results
// are strictly read-only, and a caller that wants to modify one clones
// it first. The historical *Shared variants, which predate
// copy-on-write storage, are retained as aliases so existing call
// sites keep compiling; new code can use either form.
type ReadView interface {
	// FindByID looks up one document by _id. The result is a shared
	// immutable snapshot — read-only for the caller.
	FindByID(collection, id string) (storage.Document, bool)
	// FindByIDShared is an alias of FindByID (see the interface note).
	FindByIDShared(collection, id string) (storage.Document, bool)
	// FindManyByID batch-fetches documents by _id.
	FindManyByID(collection string, ids []string) []storage.Document
	// FindManyByIDShared is an alias of FindManyByID.
	FindManyByIDShared(collection string, ids []string) []storage.Document
	// Find runs a filtered query (limit 0 = unlimited).
	Find(collection string, f storage.Filter, limit int) []storage.Document
	// FindShared is an alias of Find.
	FindShared(collection string, f storage.Filter, limit int) []storage.Document
	// Count counts matching documents.
	Count(collection string, f storage.Filter) int
	// AddUnits charges extra read work units for computation on results.
	AddUnits(u int)
}

// WriteTxn extends ReadView with buffered mutations that commit at the
// end of the transaction's service time.
type WriteTxn interface {
	ReadView
	// Insert adds a new document at commit time.
	Insert(collection string, doc storage.Document) error
	// Set merges fields into the identified document (upserting),
	// logging post-image values so replication is idempotent.
	Set(collection, id string, fields storage.Document) error
	// Delete removes the identified document at commit, if present.
	Delete(collection, id string) error
}

// localReadView is the in-process ReadView over a node's store.
type localReadView struct {
	node      *Node
	readUnits int
}

// FindByID looks up one document (1 read unit). The result is a
// shared immutable snapshot — the copy-on-write store makes the
// defensive deep copy unnecessary, keeping point reads off the
// allocator.
func (v *localReadView) FindByID(collection, id string) (storage.Document, bool) {
	v.readUnits++
	return v.node.store.C(collection).FindByID(id)
}

// FindByIDShared is an alias of FindByID, retained from the
// pre-copy-on-write API.
func (v *localReadView) FindByIDShared(collection, id string) (storage.Document, bool) {
	v.readUnits++
	return v.node.store.C(collection).FindByID(id)
}

// Find runs a filtered query; it costs 1 unit plus one per four
// returned documents — an index-assisted batch scan amortizes per-
// document overhead, unlike repeated point lookups.
func (v *localReadView) Find(collection string, f storage.Filter, limit int) []storage.Document {
	docs := v.node.store.C(collection).Find(f, limit)
	v.readUnits += 1 + len(docs)/4
	return docs
}

// FindManyByID batch-fetches documents by _id (a $in on the _id
// index); it costs 1 unit plus one per eight ids — cheaper per
// document than individual FindByID calls.
func (v *localReadView) FindManyByID(collection string, ids []string) []storage.Document {
	c := v.node.store.C(collection)
	out := make([]storage.Document, 0, len(ids))
	for _, id := range ids {
		if d, ok := c.FindByID(id); ok {
			out = append(out, d)
		}
	}
	v.readUnits += 1 + (len(ids)+7)/8
	return out
}

// FindManyByIDShared is an alias of FindManyByID, retained from the
// pre-copy-on-write API.
func (v *localReadView) FindManyByIDShared(collection string, ids []string) []storage.Document {
	return v.FindManyByID(collection, ids)
}

// FindShared is an alias of Find, retained from the pre-copy-on-write
// API.
func (v *localReadView) FindShared(collection string, f storage.Filter, limit int) []storage.Document {
	return v.Find(collection, f, limit)
}

// Count counts matching documents (1 unit plus one per 4 matches).
func (v *localReadView) Count(collection string, f storage.Filter) int {
	c := v.node.store.C(collection).Count(f)
	v.readUnits += 1 + c/4
	return c
}

// AddUnits charges extra read units for computation done on results.
func (v *localReadView) AddUnits(u int) { v.readUnits += u }

// localWriteTxn is the in-process WriteTxn. Mutations are buffered
// while the transaction body runs and committed — applied to the
// primary's store and appended to the oplog — only after the
// transaction's service time elapses, so a write becomes visible to
// replication (and to other clients) when it commits, not when it is
// issued. Reads inside the transaction see the pre-transaction state;
// reading a document the same transaction wrote is not supported (the
// workloads in this repository never do).
type localWriteTxn struct {
	localReadView
	muts []mutation
}

type mutKind int

const (
	mutInsert mutKind = iota
	mutSet
	mutDelete
)

type mutation struct {
	kind       mutKind
	collection string
	docID      string
	doc        storage.Document // normalized
}

// Insert adds a new document at commit time. Duplicate-_id detection
// happens against the pre-transaction state plus this transaction's
// own buffered inserts.
func (t *localWriteTxn) Insert(collection string, doc storage.Document) error {
	norm, err := doc.Normalized()
	if err != nil {
		return err
	}
	id, ok := norm["_id"].(string)
	if !ok || id == "" {
		return fmt.Errorf("cluster: insert requires a string _id")
	}
	if _, exists := t.node.store.C(collection).FindByID(id); exists {
		return fmt.Errorf("cluster: duplicate _id %q in %s", id, collection)
	}
	for _, m := range t.muts {
		if m.kind == mutInsert && m.collection == collection && m.docID == id {
			return fmt.Errorf("cluster: duplicate _id %q in %s (within transaction)", id, collection)
		}
	}
	t.muts = append(t.muts, mutation{kind: mutInsert, collection: collection, docID: id, doc: norm})
	return nil
}

// Set merges fields into the identified document (upserting at commit),
// logging post-image values so replication is idempotent.
func (t *localWriteTxn) Set(collection, id string, fields storage.Document) error {
	norm, err := fields.Normalized()
	if err != nil {
		return err
	}
	t.muts = append(t.muts, mutation{kind: mutSet, collection: collection, docID: id, doc: norm})
	return nil
}

// Delete removes the identified document at commit, if present.
func (t *localWriteTxn) Delete(collection, id string) error {
	t.muts = append(t.muts, mutation{kind: mutDelete, collection: collection, docID: id})
	return nil
}

// writeOps returns the number of buffered mutations.
func (t *localWriteTxn) writeOps() int { return len(t.muts) }

// commit applies the buffered mutations and appends their oplog
// entries. Caller holds the node's mutex.
func (t *localWriteTxn) commit(now time.Duration) error {
	for _, m := range t.muts {
		m := m
		_, err := t.node.appendLocal(now, func(ts oplog.OpTime) oplog.Entry {
			switch m.kind {
			case mutInsert:
				return oplog.NewInsert(ts, m.collection, m.doc)
			case mutSet:
				return oplog.NewSet(ts, m.collection, m.docID, m.doc)
			default:
				return oplog.NewDelete(ts, m.collection, m.docID)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
