package cluster

import (
	"fmt"
	stdlog "log"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"decongestant/internal/obs"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// Node is one replica set member: a document store, an oplog, a CPU
// resource with a fixed number of service slots, and its (possibly
// lagging) knowledge of every member's lastAppliedOpTime.
type Node struct {
	ID   int
	Zone string

	rs  *ReplicaSet
	cpu *sim.Resource
	rng *rand.Rand

	// ckptGate releases getMore requests stalled behind a checkpoint.
	ckptGate sim.Gate
	// applyGate broadcasts whenever lastApplied advances, releasing
	// afterClusterTime reads waiting for causal consistency.
	applyGate sim.Gate
	// tailGate broadcasts whenever this node's oplog grows (wired to
	// the log's append hook), waking idle pullers the instant new
	// entries exist instead of after a ReplIdlePoll sleep.
	tailGate sim.Gate

	// applyMu serializes every path that mutates the store: primary
	// commits, secondary batch application, failover catch-up and
	// resync snapshot swaps. It is ordered BEFORE n.mu and lets the
	// bulk of a batch apply run outside the node lock — readers keep
	// flowing while documents land, and n.mu is taken only for the
	// lastApplied/bookkeeping flip.
	applyMu sync.Mutex

	// gc coordinates the primary's group commit (real-time env only).
	gc groupCommit

	// mu guards all fields below with a reader-writer scheme: read
	// operations (execRead bodies, status snapshots, progress
	// accessors) hold the read lock and run in parallel on the
	// real-time env, while commits, oplog bookkeeping flips and
	// failover catch-up take the write lock. Virtual-time execution is
	// single-threaded, so there the lock is always uncontended and the
	// scheme costs nothing. The lock is never held across a blocking
	// environment primitive (Sleep/Acquire/Wait), which keeps
	// virtual-time runs deterministic and deadlock-free.
	mu            sync.RWMutex
	store         *storage.Store
	log           *oplog.Log
	lastApplied   oplog.OpTime
	known         []oplog.OpTime // per-member lastApplied as known here
	dirtyBytes    int64          // payload bytes written since the last checkpoint
	checkpointing bool
	// ackWaiters are write-concern waiters parked until the majority
	// commit point reaches their OpTime, sorted ascending by OpTime.
	// Guarded by mu; woken from setKnown and the commit/apply paths
	// instead of broadcasting every waiter on every gossip message.
	ackWaiters []ackWaiter

	// fetchMu guards fetchPos so getMore servicing never needs the
	// node write lock. Ordered AFTER n.mu (truncation reads fetchPos
	// while holding n.mu; serveGetMore takes fetchMu alone).
	fetchMu  sync.Mutex
	fetchPos []oplog.OpTime // primary: last oplog position fetched by each member

	// down is atomic so liveness checks (truncation cutoffs, the noop
	// writer) can consult other nodes without nesting node locks.
	down atomic.Bool

	// applyErrLogged makes the first replication apply failure loud
	// (subsequent ones only count).
	applyErrLogged atomic.Bool

	// stats are atomic so operation counting never forces a read path
	// onto the exclusive lock.
	stats nodeCounters

	// Registry instruments, labeled with this node's id. Counters and
	// gauges are atomic; the histograms carry their own mutex — none
	// of these require n.mu.
	obsReads      *obs.Counter
	obsWrites     *obs.Counter
	obsQueueWait  *obs.Histogram // time spent waiting for a CPU slot
	obsGetMore    *obs.Histogram // getMore service latency (primary side)
	obsCkpts      *obs.Counter
	obsCkptDur    *obs.Histogram
	obsOplogLag   *obs.Gauge     // seconds behind the primary (secondary side)
	obsCommitLat  *obs.Histogram // group-commit critical-section latency
	obsCommitTxns *obs.Histogram // transactions per group commit (raw count)
	obsApplyErrs  *obs.Counter   // replication apply/append failures
	obsResyncs    *obs.Counter   // snapshot resyncs after falling off the oplog
}

// ackWaiter is one parked write-concern waiter: the commit OpTime it
// needs a majority to reach, and the mailbox that releases it.
type ackWaiter struct {
	ts oplog.OpTime
	mb sim.Mailbox
}

// groupCommit batches concurrent commits on the real-time env: the
// first writer to arrive becomes the leader and drains everything
// staged while it held the store, so N concurrent transactions pay one
// lock acquisition, one oplog batch append and one round of wakeups
// instead of N.
type groupCommit struct {
	mu      sync.Mutex
	pending []*commitReq
	leading bool
}

// commitReq is one transaction staged for group commit.
type commitReq struct {
	muts []mutation
	now  time.Duration
	done chan struct{} // closed by the leader once last/err are set
	last oplog.OpTime
	err  error
}

// NodeStats is a point-in-time snapshot of the operations a node has
// serviced, as returned by Node.Stats.
type NodeStats struct {
	Reads          int64
	Writes         int64
	GetMores       int64
	FetchedEntries int64 // oplog entries handed out via getMore
	Applied        int64
	Checkpoints    int64
	Statuses       int64
	GroupCommits   int64 // group-commit batches led at this node
	GroupedTxns    int64 // transactions committed through those batches
	ApplyErrors    int64 // replication apply/append failures (were silent)
	Resyncs        int64 // snapshot resyncs after falling off the oplog
}

// nodeCounters is the live, atomically-bumped form of NodeStats.
type nodeCounters struct {
	reads          atomic.Int64
	writes         atomic.Int64
	getMores       atomic.Int64
	fetchedEntries atomic.Int64
	applied        atomic.Int64
	checkpoints    atomic.Int64
	statuses       atomic.Int64
	groupCommits   atomic.Int64
	groupedTxns    atomic.Int64
	applyErrors    atomic.Int64
	resyncs        atomic.Int64
}

func newNode(rs *ReplicaSet, id int, zone string) *Node {
	n := &Node{
		ID:        id,
		Zone:      zone,
		rs:        rs,
		cpu:       sim.NewResource(rs.env, rs.cfg.CPUSlots),
		rng:       rs.env.NewRand(fmt.Sprintf("node-%d", id)),
		ckptGate:  rs.env.NewGate(),
		applyGate: rs.env.NewGate(),
		tailGate:  rs.env.NewGate(),
		store:     storage.NewStore(),
		log:       oplog.NewLog(),
		known:     make([]oplog.OpTime, rs.cfg.Nodes),
		fetchPos:  make([]oplog.OpTime, rs.cfg.Nodes),
	}
	// Tail-signaled fetch: every append (batched or single) wakes the
	// pullers parked on this node's oplog tail. The hook runs under
	// whatever lock the appender holds and must not block; a gate
	// broadcast only schedules wakeups.
	if !rs.cfg.DisableTailWake {
		n.log.OnAppend(n.tailGate.Broadcast)
	}
	node := strconv.Itoa(id)
	reg := rs.metrics
	n.obsReads = reg.Counter(obs.Name("cluster.reads", "node", node))
	n.obsWrites = reg.Counter(obs.Name("cluster.writes", "node", node))
	n.obsQueueWait = reg.Histogram(obs.Name("cluster.cpu_queue_wait", "node", node))
	n.obsGetMore = reg.Histogram(obs.Name("cluster.getmore_latency", "node", node))
	n.obsCkpts = reg.Counter(obs.Name("cluster.checkpoints", "node", node))
	n.obsCkptDur = reg.Histogram(obs.Name("cluster.checkpoint_duration", "node", node))
	n.obsOplogLag = reg.Gauge(obs.Name("cluster.oplog_lag_secs", "node", node))
	n.obsCommitLat = reg.Histogram(obs.Name("cluster.commit_latency", "node", node))
	n.obsCommitTxns = reg.Histogram(obs.Name("cluster.commit_batch_txns", "node", node))
	n.obsApplyErrs = reg.Counter(obs.Name("cluster.apply_errors", "node", node))
	n.obsResyncs = reg.Counter(obs.Name("cluster.resyncs", "node", node))
	return n
}

// jitterCost applies +/- CostJitter uniform noise to a service time.
func (n *Node) jitterCost(d time.Duration) time.Duration {
	j := n.rs.cfg.CostJitter
	if j <= 0 {
		return d
	}
	f := 1 + j*(2*n.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// LastApplied returns the node's own lastAppliedOpTime.
func (n *Node) LastApplied() oplog.OpTime {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.lastApplied
}

// setKnown records that member `id` had applied up to ts, as learned
// from a heartbeat or progress report. Knowledge never moves backward.
// When progress advances, only the write-concern waiters whose OpTime
// the new majority point covers are woken — gossip with no waiters
// costs one lock round, not a broadcast.
func (n *Node) setKnown(id int, ts oplog.OpTime) {
	n.mu.Lock()
	if n.known[id].Before(ts) {
		n.known[id] = ts
		n.wakeAckWaitersLocked()
	}
	n.mu.Unlock()
}

// Down reports whether the node is marked unavailable.
func (n *Node) Down() bool { return n.down.Load() }

// Checkpointing reports whether a checkpoint is in progress.
func (n *Node) Checkpointing() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.checkpointing
}

// OplogLast returns the OpTime of the node's newest oplog entry.
func (n *Node) OplogLast() oplog.OpTime {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.log.Last()
}

// Stats returns a snapshot of the node's operation counters. The
// counters are atomics, so the snapshot needs no lock and never
// contends with the node's operation paths.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Reads:          n.stats.reads.Load(),
		Writes:         n.stats.writes.Load(),
		GetMores:       n.stats.getMores.Load(),
		FetchedEntries: n.stats.fetchedEntries.Load(),
		Applied:        n.stats.applied.Load(),
		Checkpoints:    n.stats.checkpoints.Load(),
		Statuses:       n.stats.statuses.Load(),
		GroupCommits:   n.stats.groupCommits.Load(),
		GroupedTxns:    n.stats.groupedTxns.Load(),
		ApplyErrors:    n.stats.applyErrors.Load(),
		Resyncs:        n.stats.resyncs.Load(),
	}
}

// QueueDepth returns the number of operations waiting for a CPU slot.
func (n *Node) QueueDepth() int { return n.cpu.Waiting() }

// commitMutationsLocked commits one transaction's staged mutations:
// mints timestamps, applies the post-images to the store through the
// owned entry points (payloads were encoded at staging time, documents
// were normalized there too — nothing is serialized or cloned inside
// the critical section), and appends the oplog entries in one batch
// (one tail notification per transaction). Caller holds applyMu and
// the n.mu write lock; gate broadcasts and waiter wakeups are the
// caller's job so a group-commit leader pays them once per batch.
func (n *Node) commitMutationsLocked(now time.Duration, muts []mutation) (oplog.OpTime, error) {
	entries := make([]oplog.Entry, 0, len(muts))
	var dirty int64
	var firstErr error
	for _, m := range muts {
		ts := n.log.NextTS(now)
		var e oplog.Entry
		switch m.kind {
		case mutInsert:
			e = oplog.Entry{TS: ts, Kind: oplog.KindInsert, Collection: m.collection, DocID: m.docID, Payload: m.payload}
			if err := n.store.C(m.collection).UpsertOwned(m.doc); err != nil {
				firstErr = err
			}
		case mutSet:
			e = oplog.Entry{TS: ts, Kind: oplog.KindSet, Collection: m.collection, DocID: m.docID, Payload: m.payload}
			if _, err := n.store.C(m.collection).ApplySetOwned(m.docID, m.doc); err != nil {
				firstErr = err
			}
		case mutDelete:
			e = oplog.Entry{TS: ts, Kind: oplog.KindDelete, Collection: m.collection, DocID: m.docID}
			n.store.C(m.collection).Delete(m.docID)
		case mutNoop:
			e = oplog.NewNoop(ts)
		}
		if firstErr != nil {
			break // the failed mutation is neither applied nor logged
		}
		if e.Kind != oplog.KindNoop {
			dirty += entryBytes(e)
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return oplog.Zero, firstErr
	}
	if err := n.log.AppendBatch(entries); err != nil {
		return oplog.Zero, err
	}
	last := entries[len(entries)-1].TS
	n.lastApplied = last
	n.known[n.ID] = last
	n.dirtyBytes += dirty
	return last, firstErr
}

// finishCommitLocked runs the once-per-batch tail of a commit: release
// any write-concern waiters the new lastApplied satisfies and enforce
// the oplog cap. Caller holds applyMu and the n.mu write lock.
func (n *Node) finishCommitLocked() {
	n.wakeAckWaitersLocked()
	n.truncatePrimaryLocked()
}

// commitStaged commits a transaction's staged mutations and returns
// the OpTime of its last entry.
//
// On the virtual-time env processes run one at a time, so there is
// never a second writer to batch with: commit directly, keeping the
// event schedule (and thus simulation results) bit-identical to the
// pre-group-commit engine.
//
// On the real-time env this is a group commit: writers stage their
// request and the first one in becomes the leader, draining everything
// that queued up while it held the store. N concurrent transactions
// pay one applyMu/n.mu acquisition, one oplog append batch per
// transaction under that single hold, and one applyGate broadcast —
// instead of N of each.
func (n *Node) commitStaged(p sim.Proc, muts []mutation) (oplog.OpTime, error) {
	if len(muts) == 0 {
		return oplog.Zero, nil
	}
	if !n.rs.realtime {
		n.applyMu.Lock()
		n.mu.Lock()
		last, err := n.commitMutationsLocked(p.Now(), muts)
		n.finishCommitLocked()
		n.mu.Unlock()
		n.applyMu.Unlock()
		n.applyGate.Broadcast()
		return last, err
	}
	req := &commitReq{muts: muts, now: p.Now(), done: make(chan struct{})}
	gc := &n.gc
	gc.mu.Lock()
	gc.pending = append(gc.pending, req)
	if gc.leading {
		gc.mu.Unlock()
		// A leader is draining the queue; it will commit this request
		// and close done. The leader never blocks on an environment
		// primitive while leading, so this wait is bounded by its
		// critical sections only.
		<-req.done
		return req.last, req.err
	}
	gc.leading = true
	gc.mu.Unlock()
	for {
		gc.mu.Lock()
		batch := gc.pending
		gc.pending = nil
		if len(batch) == 0 {
			gc.leading = false
			gc.mu.Unlock()
			break
		}
		gc.mu.Unlock()
		start := n.rs.env.Now()
		n.applyMu.Lock()
		n.mu.Lock()
		for _, r := range batch {
			r.last, r.err = n.commitMutationsLocked(r.now, r.muts)
		}
		n.finishCommitLocked()
		n.mu.Unlock()
		n.applyMu.Unlock()
		n.applyGate.Broadcast()
		n.obsCommitLat.Observe(n.rs.env.Now() - start)
		n.obsCommitTxns.ObserveN(int64(len(batch)))
		n.stats.groupCommits.Add(1)
		n.stats.groupedTxns.Add(int64(len(batch)))
		for _, r := range batch {
			if r != req {
				close(r.done)
			}
		}
	}
	return req.last, req.err
}

// commitNoop appends one no-op entry if this node is still a live
// primary. Both conditions are re-verified here because the noop
// writer races failovers and outages: a noop must never land on a
// demoted or downed member's log.
func (n *Node) commitNoop(p sim.Proc) {
	if n.Down() || n.rs.PrimaryID() != n.ID {
		return
	}
	_, _ = n.commitStaged(p, []mutation{{kind: mutNoop}})
}

// noteApplyErrors counts replication apply/append failures in the
// node's stats and the registry. The old puller silently swallowed
// these errors; now every failure is visible, and the first occurrence
// is logged so divergence can be traced without scraping metrics.
func (n *Node) noteApplyErrors(count int, err error) {
	if count <= 0 {
		return
	}
	n.stats.applyErrors.Add(int64(count))
	n.obsApplyErrs.Inc(uint64(count))
	if err != nil && n.applyErrLogged.CompareAndSwap(false, true) {
		stdlog.Printf("cluster: node %d: first replication apply error (%d entries failed): %v", n.ID, count, err)
	}
}

// awaitMajorityKnown blocks p until this node knows a majority of
// members (itself included) to have applied ts. Each waiter registers
// its OpTime once and is woken exactly when the majority commit point
// crosses it — the old scheme broadcast a gate on every heartbeat and
// had every waiter rescan the known table.
func (n *Node) awaitMajorityKnown(p sim.Proc, ts oplog.OpTime) {
	need := n.rs.cfg.Nodes/2 + 1
	n.mu.Lock()
	if n.countKnownAtLeastLocked(ts) >= need {
		n.mu.Unlock()
		return
	}
	w := ackWaiter{ts: ts, mb: n.rs.env.NewMailbox()}
	i := sort.Search(len(n.ackWaiters), func(i int) bool { return ts.Before(n.ackWaiters[i].ts) })
	n.ackWaiters = append(n.ackWaiters, ackWaiter{})
	copy(n.ackWaiters[i+1:], n.ackWaiters[i:])
	n.ackWaiters[i] = w
	n.mu.Unlock()
	w.mb.Recv(p)
}

// wakeAckWaitersLocked releases the write-concern waiters whose OpTime
// the majority commit point has reached. The slice is sorted by
// OpTime, so satisfied waiters form a prefix. Caller holds the n.mu
// write lock; Mailbox.Send never blocks.
func (n *Node) wakeAckWaitersLocked() {
	if len(n.ackWaiters) == 0 {
		return
	}
	point := n.majorityPointLocked()
	i := 0
	for i < len(n.ackWaiters) && !point.Before(n.ackWaiters[i].ts) {
		n.ackWaiters[i].mb.Send(nil)
		i++
	}
	if i > 0 {
		n.ackWaiters = append(n.ackWaiters[:0], n.ackWaiters[i:]...)
	}
}

// ---- transactional views ----

// ReadView provides read access to a store inside an ExecRead or
// ExecWrite body. The in-process implementation meters work in read
// units that translate to CPU service time; the wire client implements
// the same interface with one network round trip per call.
//
// Every document an in-process view returns is a shared immutable
// snapshot of committed state (the store is copy-on-write): results
// are strictly read-only, and a caller that wants to modify one clones
// it first.
type ReadView interface {
	// FindByID looks up one document by _id. The result is a shared
	// immutable snapshot — read-only for the caller.
	FindByID(collection, id string) (storage.Document, bool)
	// FindManyByID batch-fetches documents by _id.
	FindManyByID(collection string, ids []string) []storage.Document
	// Find runs a filtered query (limit 0 = unlimited).
	Find(collection string, f storage.Filter, limit int) []storage.Document
	// Count counts matching documents.
	Count(collection string, f storage.Filter) int
	// AddUnits charges extra read work units for computation on results.
	AddUnits(u int)
}

// EncodedReadView is an optional extension of ReadView implemented by
// the in-process view: read results as storage.EncodedDoc wrappers,
// exposing each committed document's lazily cached BSON-lite encoding.
// The wire server type-asserts for it on binary (protocol v2)
// connections and splices the cached bytes straight into response
// frames, skipping per-request document serialization. Remote views
// do not implement it — callers must fall back to the Document forms.
type EncodedReadView interface {
	// FindByIDEncoded is FindByID returning the encoding-cache wrapper.
	FindByIDEncoded(collection, id string) (*storage.EncodedDoc, bool)
	// FindManyByIDEncoded is FindManyByID over the encoding cache.
	FindManyByIDEncoded(collection string, ids []string) []*storage.EncodedDoc
	// FindEncoded is Find over the encoding cache.
	FindEncoded(collection string, f storage.Filter, limit int) []*storage.EncodedDoc
}

// WriteTxn extends ReadView with buffered mutations that commit at the
// end of the transaction's service time.
type WriteTxn interface {
	ReadView
	// Insert adds a new document at commit time.
	Insert(collection string, doc storage.Document) error
	// Set merges fields into the identified document (upserting),
	// logging post-image values so replication is idempotent.
	Set(collection, id string, fields storage.Document) error
	// Delete removes the identified document at commit, if present.
	Delete(collection, id string) error
}

// localReadView is the in-process ReadView over a node's store.
type localReadView struct {
	node      *Node
	readUnits int
}

// FindByID looks up one document (1 read unit). The result is a
// shared immutable snapshot — the copy-on-write store makes the
// defensive deep copy unnecessary, keeping point reads off the
// allocator.
func (v *localReadView) FindByID(collection, id string) (storage.Document, bool) {
	v.readUnits++
	return v.node.store.C(collection).FindByID(id)
}

// Find runs a filtered query; it costs 1 unit plus one per four
// returned documents — an index-assisted batch scan amortizes per-
// document overhead, unlike repeated point lookups.
func (v *localReadView) Find(collection string, f storage.Filter, limit int) []storage.Document {
	docs := v.node.store.C(collection).Find(f, limit)
	v.readUnits += 1 + len(docs)/4
	return docs
}

// FindManyByID batch-fetches documents by _id (a $in on the _id
// index); it costs 1 unit plus one per eight ids — cheaper per
// document than individual FindByID calls.
func (v *localReadView) FindManyByID(collection string, ids []string) []storage.Document {
	c := v.node.store.C(collection)
	out := make([]storage.Document, 0, len(ids))
	for _, id := range ids {
		if d, ok := c.FindByID(id); ok {
			out = append(out, d)
		}
	}
	v.readUnits += 1 + (len(ids)+7)/8
	return out
}

// Count counts matching documents (1 unit plus one per 4 matches).
func (v *localReadView) Count(collection string, f storage.Filter) int {
	c := v.node.store.C(collection).Count(f)
	v.readUnits += 1 + c/4
	return c
}

// AddUnits charges extra read units for computation done on results.
func (v *localReadView) AddUnits(u int) { v.readUnits += u }

// FindByIDEncoded implements EncodedReadView (1 read unit, like
// FindByID): the wire server's binary path reads through it to reach
// the document's cached BSON-lite encoding.
func (v *localReadView) FindByIDEncoded(collection, id string) (*storage.EncodedDoc, bool) {
	v.readUnits++
	return v.node.store.C(collection).FindByIDEncoded(id)
}

// FindManyByIDEncoded implements EncodedReadView with FindManyByID's
// unit charging.
func (v *localReadView) FindManyByIDEncoded(collection string, ids []string) []*storage.EncodedDoc {
	c := v.node.store.C(collection)
	out := make([]*storage.EncodedDoc, 0, len(ids))
	for _, id := range ids {
		if e, ok := c.FindByIDEncoded(id); ok {
			out = append(out, e)
		}
	}
	v.readUnits += 1 + (len(ids)+7)/8
	return out
}

// FindEncoded implements EncodedReadView with Find's unit charging.
func (v *localReadView) FindEncoded(collection string, f storage.Filter, limit int) []*storage.EncodedDoc {
	docs := v.node.store.C(collection).FindEncoded(f, limit)
	v.readUnits += 1 + len(docs)/4
	return docs
}

// localWriteTxn is the in-process WriteTxn. Mutations are buffered
// while the transaction body runs and committed — applied to the
// primary's store and appended to the oplog — only after the
// transaction's service time elapses, so a write becomes visible to
// replication (and to other clients) when it commits, not when it is
// issued. Reads inside the transaction see the pre-transaction state;
// reading a document the same transaction wrote is not supported (the
// workloads in this repository never do).
type localWriteTxn struct {
	localReadView
	muts []mutation
}

type mutKind int

const (
	mutInsert mutKind = iota
	mutSet
	mutDelete
	mutNoop
)

// mutation is one staged operation. Normalization and oplog payload
// encoding happen at staging time — on the writer's own service time,
// outside any lock — so the commit critical section is reduced to
// timestamp minting, pointer-swap applies and the ring append.
type mutation struct {
	kind       mutKind
	collection string
	docID      string
	doc        storage.Document // normalized; transferred to the store on commit
	payload    []byte           // pre-encoded oplog payload
}

// Insert adds a new document at commit time. Duplicate-_id detection
// happens against the pre-transaction state plus this transaction's
// own buffered inserts.
func (t *localWriteTxn) Insert(collection string, doc storage.Document) error {
	norm, err := doc.Normalized()
	if err != nil {
		return err
	}
	id, ok := norm["_id"].(string)
	if !ok || id == "" {
		return fmt.Errorf("cluster: insert requires a string _id")
	}
	if _, exists := t.node.store.C(collection).FindByID(id); exists {
		return fmt.Errorf("cluster: duplicate _id %q in %s", id, collection)
	}
	for _, m := range t.muts {
		if m.kind == mutInsert && m.collection == collection && m.docID == id {
			return fmt.Errorf("cluster: duplicate _id %q in %s (within transaction)", id, collection)
		}
	}
	t.muts = append(t.muts, mutation{kind: mutInsert, collection: collection, docID: id, doc: norm, payload: storage.EncodeDoc(norm)})
	return nil
}

// Set merges fields into the identified document (upserting at commit),
// logging post-image values so replication is idempotent.
func (t *localWriteTxn) Set(collection, id string, fields storage.Document) error {
	norm, err := fields.Normalized()
	if err != nil {
		return err
	}
	t.muts = append(t.muts, mutation{kind: mutSet, collection: collection, docID: id, doc: norm, payload: storage.EncodeDoc(norm)})
	return nil
}

// Delete removes the identified document at commit, if present.
func (t *localWriteTxn) Delete(collection, id string) error {
	t.muts = append(t.muts, mutation{kind: mutDelete, collection: collection, docID: id})
	return nil
}

// writeOps returns the number of buffered mutations.
func (t *localWriteTxn) writeOps() int { return len(t.muts) }
