package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decongestant/internal/obs"
	"decongestant/internal/obs/trace"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
)

// Lease-based linearizable reads (ROADMAP item 4, after
// "Towards Reconfigurable Linearizable Reads", arXiv 2404.05470).
//
// Two kinds of lease exist, both time-bounded on the HOLDER's local
// clock with a guard band against clock skew:
//
//   - The leader lease: the primary may serve linearizable reads
//     locally (no majority round) while a majority of members have
//     acknowledged a grant from it within the lease window. Grants ride
//     on the existing replication heartbeats, so the lease renews for
//     free while the primary can reach a majority and decays by pure
//     passage of time when it cannot — exactly the partition hazard the
//     guard band and the failover drain protect against.
//
//   - Per-secondary read leases: each heartbeat from the primary grants
//     the receiving secondary a lease carrying the current lease epoch
//     and the majority commit point observed at grant time. A secondary
//     whose lease is valid and whose lastApplied has reached that
//     commit point serves linearizable reads from its local COW
//     snapshot; otherwise it rejects with a typed retryable *LeaseError
//     and the driver falls back to the primary.
//
// Failover is the correctness crux: Failover bumps the lease epoch and
// refuses all grants first, then waits out every outstanding lease
// (read leases and the deposed primary's leader lease, each translated
// from holder-clock to simulation-clock using the injected skew) plus
// one guard band before installing the new primary — so no node can
// serve a linearizable read under the old regime once the new one
// accepts writes. The audit below turns that into a checked invariant.
//
// Lock order: leaseManager.mu is a leaf — it is taken with no other
// cluster lock held, and nothing is acquired under it. Hot-path
// validity checks (leaderValid/checkRead) are lock-free atomics so the
// read path never contends on the grant path.

// LeaseError is the typed, retryable rejection a node returns when it
// cannot serve a linearizable read locally. The driver reacts by
// retrying at the primary and attributing the extra hop to Reason.
type LeaseError struct {
	Node   int
	Reason string
}

// Lease rejection reasons (LeaseError.Reason and the driver's
// fallback attribution labels).
const (
	LeaseReasonNoLease        = "no-lease"
	LeaseReasonExpired        = "lease-expired"
	LeaseReasonCommitBehind   = "commit-point-behind"
	LeaseReasonNotPrimary     = "not-primary"
	LeaseReasonPrimaryConfirm = "primary-confirm" // primary without leader lease: majority round taken
)

func (e *LeaseError) Error() string {
	return fmt.Sprintf("cluster: linearizable read rejected (node %d): %s", e.Node, e.Reason)
}

// LeaseReject extracts a lease-rejection reason from err. It matches
// both the typed *LeaseError and its string form — wire responses
// flatten errors to text, and the driver must attribute remote
// rejections identically to in-process ones.
func LeaseReject(err error) (string, bool) {
	if err == nil {
		return "", false
	}
	var le *LeaseError
	if errors.As(err, &le) {
		return le.Reason, true
	}
	msg := err.Error()
	const marker = "linearizable read rejected"
	if i := strings.Index(msg, marker); i >= 0 {
		if j := strings.LastIndex(msg, ": "); j >= 0 && j+2 < len(msg) {
			return msg[j+2:], true
		}
	}
	return "", false
}

// readLease is one secondary's lease snapshot, swapped atomically so
// validity checks never lock.
type readLease struct {
	epoch  uint64
	commit oplog.OpTime  // majority commit point at grant time
	expiry time.Duration // on the HOLDER's local clock
}

// LeaseExemplar is one audited lease-served linearizable read: the
// epoch the serving lease was granted under, the newest epoch any
// grant had been issued under when the read completed, and the trace
// id when sampled. Granted > Epoch means the read outlived its lease
// regime — a stale linearizable read.
type LeaseExemplar struct {
	Node      int
	Epoch     uint64
	Granted   uint64
	Trace     uint64
	Violation bool
}

const leaseExemplarCap = 128

// leaseManager owns all lease state for a replica set. Grants and
// epoch transfers serialize under mu; validity checks on the read hot
// path are pure atomics.
type leaseManager struct {
	rs       *ReplicaSet
	enabled  bool
	duration time.Duration
	guard    time.Duration

	mu       sync.Mutex
	draining bool // transfers refuse grants while the old regime drains

	epoch        atomic.Uint64 // current lease epoch (1 when enabled, 0 when not)
	grantedEpoch atomic.Uint64 // newest epoch any grant has been issued under

	// skew is each node's injected clock offset: the node's local clock
	// reads env.Now()+skew. Tests use it to prove the guard band holds.
	skew []atomic.Int64

	// read[i] is node i's current read lease (nil = none).
	read []atomic.Pointer[readLease]

	// ackTime[g][m] is the send time (on g's clock) of the newest grant
	// g issued to m — m's heartbeat-borne acknowledgment of g's
	// leadership. validUntil[g] caches the majority-th newest ack plus
	// the lease window: g holds the leader lease until then. Keyed by
	// granter, not epoch, so a deposed primary's leader lease decays by
	// time alone, exactly as it would across a real partition.
	ackTime    [][]atomic.Int64
	validUntil []atomic.Int64

	renewals       *obs.Counter
	expiries       *obs.Counter
	localPrimary   *obs.Counter // lease.local_strong_reads{role=primary}
	localSecondary *obs.Counter // lease.local_strong_reads{role=secondary}
	fallbacks      map[string]*obs.Counter
	violations     *obs.Counter
	epochGauge     *obs.Gauge

	auditMu   sync.Mutex
	exemplars [leaseExemplarCap]LeaseExemplar
	next      int
	filled    bool
}

func newLeaseManager(rs *ReplicaSet) *leaseManager {
	cfg := rs.cfg
	lm := &leaseManager{
		rs:       rs,
		enabled:  cfg.LinearizableLeases,
		duration: cfg.LeaseDuration,
		guard:    cfg.LeaseGuardBand,
		skew:     make([]atomic.Int64, cfg.Nodes),
		read:     make([]atomic.Pointer[readLease], cfg.Nodes),
		ackTime:  make([][]atomic.Int64, cfg.Nodes),
	}
	lm.validUntil = make([]atomic.Int64, cfg.Nodes)
	for i := range lm.ackTime {
		lm.ackTime[i] = make([]atomic.Int64, cfg.Nodes)
	}
	reg := rs.metrics
	lm.renewals = reg.Counter("lease.renewals")
	lm.expiries = reg.Counter("lease.expiries")
	lm.localPrimary = reg.Counter(obs.Name("lease.local_strong_reads", "role", "primary"))
	lm.localSecondary = reg.Counter(obs.Name("lease.local_strong_reads", "role", "secondary"))
	lm.fallbacks = make(map[string]*obs.Counter)
	for _, reason := range []string{
		LeaseReasonNoLease, LeaseReasonExpired, LeaseReasonCommitBehind,
		LeaseReasonNotPrimary, LeaseReasonPrimaryConfirm,
	} {
		lm.fallbacks[reason] = reg.Counter(obs.Name("lease.fallbacks", "reason", reason))
	}
	lm.violations = reg.Counter("lease.audit_violations")
	lm.epochGauge = reg.Gauge("lease.epoch")
	if lm.enabled {
		lm.epoch.Store(1)
		lm.epochGauge.Set(1)
	}
	return lm
}

// skewOf returns node id's clock offset.
func (lm *leaseManager) skewOf(id int) time.Duration {
	return time.Duration(lm.skew[id].Load())
}

// localNow is node id's local clock reading.
func (lm *leaseManager) localNow(id int) time.Duration {
	return lm.rs.env.Now() + lm.skewOf(id)
}

func (lm *leaseManager) epochValue() uint64 { return lm.epoch.Load() }

// grant issues (or renews) grantee's read lease and records the grant
// as a leadership acknowledgment for the granter's leader lease.
// sendAt is the simulation time the heartbeat left the granter —
// captured BEFORE the network traversal, so the leader-lease window is
// anchored at the conservative end. Grants are refused while a
// transfer drains and when the granter no longer holds primacy (the
// primaryID flip is published before endTransfer reopens grants, so a
// deposed primary's late heartbeat can never mint a new-epoch lease).
func (lm *leaseManager) grant(granter, grantee int, sendAt time.Duration, commit oplog.OpTime) {
	if !lm.enabled {
		return
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if lm.draining || lm.rs.PrimaryID() != granter {
		return
	}
	ep := lm.epoch.Load()
	if old := lm.read[grantee].Load(); old != nil && lm.localNow(grantee) >= old.expiry {
		lm.expiries.Inc(1) // the previous lease lapsed before this renewal arrived
	}
	lm.read[grantee].Store(&readLease{
		epoch:  ep,
		commit: commit,
		expiry: lm.localNow(grantee) + lm.duration,
	})
	lm.grantedEpoch.Store(ep)
	lm.renewals.Inc(1)
	lm.ackTime[granter][grantee].Store(int64(sendAt + lm.skewOf(granter)))
	lm.validUntil[granter].Store(int64(lm.leaderDeadlineLocked(granter)))
}

// leaderDeadlineLocked computes g's leader-lease deadline on g's own
// clock: the (majority-1)-th newest grant acknowledgment plus the
// lease window, minus the guard band. Caller holds lm.mu.
func (lm *leaseManager) leaderDeadlineLocked(g int) time.Duration {
	need := lm.rs.cfg.Nodes/2 + 1
	if need <= 1 {
		// Single-member set: the node is its own majority.
		return lm.localNow(g) + lm.duration
	}
	acks := make([]int64, 0, len(lm.ackTime[g]))
	for i := range lm.ackTime[g] {
		if i == g {
			continue
		}
		if t := lm.ackTime[g][i].Load(); t > 0 {
			acks = append(acks, t)
		}
	}
	if len(acks) < need-1 {
		return 0
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] > acks[j] })
	return time.Duration(acks[need-2]) + lm.duration - lm.guard
}

// leaderValid reports whether node g currently holds the leader lease
// (on g's own clock). Lock-free.
func (lm *leaseManager) leaderValid(g int) bool {
	if !lm.enabled {
		return false
	}
	vu := time.Duration(lm.validUntil[g].Load())
	return vu > 0 && lm.localNow(g) < vu
}

// checkRead validates node's read lease against its applied position.
// Returns the lease epoch on success, or the rejection reason.
// Lock-free: called on every linearizable secondary read.
func (lm *leaseManager) checkRead(node int, applied oplog.OpTime) (uint64, string) {
	l := lm.read[node].Load()
	if l == nil || l.epoch != lm.epoch.Load() {
		return 0, LeaseReasonNoLease
	}
	if lm.localNow(node) >= l.expiry-lm.guard {
		return 0, LeaseReasonExpired
	}
	if applied.Before(l.commit) {
		return 0, LeaseReasonCommitBehind
	}
	return l.epoch, ""
}

// holds reports whether node id can currently serve a linearizable
// read from a lease (leader lease for the primary, read lease
// otherwise) — the replstatus view the driver's server selection uses.
func (lm *leaseManager) holds(id, primary int) bool {
	if !lm.enabled {
		return false
	}
	if id == primary {
		return lm.leaderValid(id)
	}
	l := lm.read[id].Load()
	return l != nil && l.epoch == lm.epoch.Load() && lm.localNow(id) < l.expiry-lm.guard
}

func (lm *leaseManager) countFallback(reason string) {
	if c := lm.fallbacks[reason]; c != nil {
		c.Inc(1)
	}
}

// auditServe files one lease-served linearizable read and reports
// whether it was stale: a grant under a NEWER epoch had already been
// issued when the read completed, meaning the read outlived the drain
// of its own lease regime. With a correct guard band this never fires.
func (lm *leaseManager) auditServe(node int, servedEpoch, traceID uint64) bool {
	granted := lm.grantedEpoch.Load()
	violated := granted > servedEpoch
	if traceID != 0 || violated {
		lm.auditMu.Lock()
		lm.exemplars[lm.next] = LeaseExemplar{
			Node:      node,
			Epoch:     servedEpoch,
			Granted:   granted,
			Trace:     traceID,
			Violation: violated,
		}
		lm.next++
		if lm.next == leaseExemplarCap {
			lm.next = 0
			lm.filled = true
		}
		lm.auditMu.Unlock()
	}
	if violated {
		lm.violations.Inc(1)
	}
	return violated
}

// exemplarList returns the retained exemplars oldest-first.
func (lm *leaseManager) exemplarList() []LeaseExemplar {
	lm.auditMu.Lock()
	defer lm.auditMu.Unlock()
	if !lm.filled {
		out := make([]LeaseExemplar, lm.next)
		copy(out, lm.exemplars[:lm.next])
		return out
	}
	out := make([]LeaseExemplar, 0, leaseExemplarCap)
	out = append(out, lm.exemplars[lm.next:]...)
	out = append(out, lm.exemplars[:lm.next]...)
	return out
}

// beginTransfer starts a lease epoch transfer: bump the epoch, refuse
// all further grants, wipe the winner's inherited acknowledgments
// (pre-transfer acks are not leadership evidence under the new epoch)
// and return the simulation time by which every outstanding lease —
// read leases and leader leases, each translated from its holder's
// skewed clock — will have expired. The caller must sleep past that
// point (plus the guard band) before installing the new primary.
func (lm *leaseManager) beginTransfer(winner int) time.Duration {
	if !lm.enabled {
		return 0
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.draining = true
	lm.epoch.Add(1)
	var drain time.Duration
	for i := range lm.read {
		if l := lm.read[i].Load(); l != nil {
			if t := l.expiry - lm.skewOf(i); t > drain {
				drain = t
			}
		}
	}
	for g := range lm.validUntil {
		if vu := time.Duration(lm.validUntil[g].Load()); vu > 0 {
			// validUntil already subtracts the guard band; restore it for
			// the conservative raw deadline before de-skewing.
			if t := vu + lm.guard - lm.skewOf(g); t > drain {
				drain = t
			}
		}
	}
	for i := range lm.ackTime[winner] {
		lm.ackTime[winner][i].Store(0)
	}
	lm.validUntil[winner].Store(0)
	return drain
}

// endTransfer completes a transfer after the drain sleep and the
// primaryID flip: retire every old-epoch lease and the deposed
// primary's leadership state, then reopen grants under the new epoch.
func (lm *leaseManager) endTransfer(deposed int) {
	if !lm.enabled {
		return
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	ep := lm.epoch.Load()
	for i := range lm.read {
		if l := lm.read[i].Load(); l != nil && l.epoch < ep {
			lm.read[i].Store(nil)
			lm.expiries.Inc(1)
		}
	}
	for i := range lm.ackTime[deposed] {
		lm.ackTime[deposed][i].Store(0)
	}
	lm.validUntil[deposed].Store(0)
	lm.draining = false
	lm.epochGauge.Set(int64(ep))
}

// awaitLeaseholders blocks a w:majority acknowledgment until no live
// read lease could serve a linearizable read that misses the commit:
// every leaseholder has either applied the commit, been renewed past
// it (its lease commit point now covers the write, so serving implies
// applying), or let its lease lapse. Without this barrier a secondary
// holding a pre-write lease could serve a linearizable read missing a
// majority-acknowledged write. Bounded by the lease duration; in
// practice one heartbeat renewal clears it.
func (lm *leaseManager) awaitLeaseholders(p sim.Proc, commit oplog.OpTime) {
	if !lm.enabled || commit.IsZero() {
		return
	}
	poll := lm.rs.cfg.HeartbeatInterval / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	for {
		blocked := false
		for i, n := range lm.rs.nodes {
			l := lm.read[i].Load()
			if l == nil || lm.localNow(i) >= l.expiry {
				continue // no lease, or lapsed: cannot serve
			}
			if !l.commit.Before(commit) {
				continue // lease already covers the commit
			}
			if !n.LastApplied().Before(commit) {
				continue // node itself has applied the commit
			}
			blocked = true
			break
		}
		if !blocked {
			return
		}
		p.Sleep(poll)
	}
}

// ---- replica-set surface ----

// SetClockSkew injects a clock offset on one node: its local clock
// reads env.Now()+skew for every lease validity decision. The guard
// band must absorb any skew below it; tests drive this.
func (rs *ReplicaSet) SetClockSkew(id int, skew time.Duration) {
	rs.leases.skew[id].Store(int64(skew))
}

// LeaseEpoch returns the current lease epoch (0 = leases disabled).
func (rs *ReplicaSet) LeaseEpoch() uint64 { return rs.leases.epochValue() }

// Leased reports whether node id currently holds a valid lease (the
// leader lease for the primary, a read lease for a secondary).
func (rs *ReplicaSet) Leased(id int) bool {
	return rs.leases.holds(id, rs.PrimaryID())
}

// LeaseExemplars returns the lease auditor's recent exemplars (newest
// last).
func (rs *ReplicaSet) LeaseExemplars() []LeaseExemplar { return rs.leases.exemplarList() }

// Lease outcome attribute values recorded on cluster.lease spans.
const (
	leaseOutcomeLocal   = "lease-local"      // secondary served from its read lease
	leaseOutcomeLeader  = "leader-lease"     // primary served under its leader lease
	leaseOutcomeConfirm = "majority-confirm" // primary served after a majority confirmation round
)

// ExecReadLinearizable runs a linearizable read at the chosen node.
// The primary serves locally under its leader lease (or, without one,
// after a majority confirmation round — the primary-only baseline); a
// secondary serves locally from a valid read lease whose commit point
// its lastApplied covers, and otherwise rejects with a retryable
// *LeaseError for the driver to fall back on.
func (rs *ReplicaSet) ExecReadLinearizable(p sim.Proc, nodeID int, fn func(v ReadView) (any, error)) (any, oplog.OpTime, error) {
	return rs.ExecReadLinearizableMeta(p, nodeID, oplog.Zero, ReadMeta{}, fn)
}

// ExecReadLinearizableMeta is ExecReadLinearizable with a causal
// prerequisite (session read-your-writes tokens compose with
// linearizable reads) and the observability layer: a cluster.lease
// span when sampled, and — independently of sampling — the lease audit
// on every lease-served read, which pins the trace and fires
// lease.audit_violations if the read outlived its lease regime.
func (rs *ReplicaSet) ExecReadLinearizableMeta(p sim.Proc, nodeID int, after oplog.OpTime, meta ReadMeta, fn func(v ReadView) (any, error)) (any, oplog.OpTime, error) {
	n := rs.nodes[nodeID]
	rs.net.Travel(p, rs.cfg.ClientZone, n.Zone)
	live := meta.Ctx.Live()
	var spanID uint64
	var start time.Duration
	if live {
		spanID = rs.tracer.NewSpanID()
		start = p.Now()
	}
	res, ts, outcome, servedEpoch, err := n.execReadLinearizable(p, after, fn)
	if err == nil && (outcome == leaseOutcomeLocal || outcome == leaseOutcomeLeader) {
		if rs.leases.auditServe(nodeID, servedEpoch, meta.Ctx.TraceID) {
			rs.tracer.Pin(meta.Ctx.TraceID)
		}
	}
	if live {
		attrs := []trace.Attr{
			{K: "rc", V: "linearizable"},
			{K: "outcome", V: outcome},
			{K: "epoch", V: strconv.FormatUint(servedEpoch, 10)},
		}
		if err == nil {
			attrs = append(attrs, trace.Attr{K: "optime", V: ts.String()})
		} else {
			attrs = append(attrs, trace.Attr{K: "err", V: err.Error()})
		}
		rs.tracer.Record(trace.Span{
			Trace:  meta.Ctx.TraceID,
			ID:     spanID,
			Parent: meta.Ctx.SpanID,
			Name:   "cluster.lease",
			Node:   nodeID,
			Start:  start,
			Dur:    p.Now() - start,
			Attrs:  attrs,
		})
	}
	rs.net.Travel(p, n.Zone, rs.cfg.ClientZone)
	return res, ts, err
}

// execReadLinearizable is the node-side linearizable read. It returns
// the outcome label and, for lease-served reads, the epoch the serving
// lease was granted under (the audit's input).
func (n *Node) execReadLinearizable(p sim.Proc, after oplog.OpTime, fn func(v ReadView) (any, error)) (any, oplog.OpTime, string, uint64, error) {
	rs := n.rs
	lm := rs.leases
	if n.Down() {
		return nil, oplog.Zero, "down", 0, ErrNodeDown
	}
	// Causal prerequisite first: a session's read-your-writes token
	// composes with linearizable reads exactly as with causal ones.
	for n.LastApplied().Before(after) {
		if n.Down() {
			return nil, oplog.Zero, "down", 0, ErrNodeDown
		}
		n.applyGate.Wait(p)
	}
	if rs.PrimaryID() == n.ID {
		if lm.enabled && lm.leaderValid(n.ID) {
			ep := lm.epochValue() // admission-time epoch, audited at completion
			res, err := n.execRead(p, fn)
			if err != nil {
				return nil, oplog.Zero, "err", ep, err
			}
			lm.localPrimary.Inc(1)
			return res, n.LastApplied(), leaseOutcomeLeader, ep, nil
		}
		// Majority-confirm fallback (and the leases-off baseline):
		// execute locally, then round-trip the served position through a
		// majority acknowledgment to confirm this node still held
		// primacy — MongoDB's linearizable read concern does the same
		// no-op write round.
		res, err := n.execRead(p, fn)
		if err != nil {
			return nil, oplog.Zero, "err", 0, err
		}
		ts := n.LastApplied()
		n.awaitMajorityKnown(p, ts)
		if rs.PrimaryID() != n.ID {
			lm.countFallback(LeaseReasonNotPrimary)
			return nil, oplog.Zero, LeaseReasonNotPrimary, 0, &LeaseError{Node: n.ID, Reason: LeaseReasonNotPrimary}
		}
		if lm.enabled {
			lm.countFallback(LeaseReasonPrimaryConfirm)
		}
		return res, ts, leaseOutcomeConfirm, 0, nil
	}
	if !lm.enabled {
		return nil, oplog.Zero, LeaseReasonNoLease, 0, &LeaseError{Node: n.ID, Reason: LeaseReasonNoLease}
	}
	ep, reason := lm.checkRead(n.ID, n.LastApplied())
	if reason != "" {
		lm.countFallback(reason)
		return nil, oplog.Zero, reason, 0, &LeaseError{Node: n.ID, Reason: reason}
	}
	res, err := n.execRead(p, fn)
	if err != nil {
		return nil, oplog.Zero, "err", ep, err
	}
	lm.localSecondary.Inc(1)
	return res, n.LastApplied(), leaseOutcomeLocal, ep, nil
}
