package cluster

import (
	"sort"
	"time"

	"decongestant/internal/obs/trace"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
)

// WriteConcern selects how many members must have applied a write
// before it is acknowledged, like MongoDB's `w` option. The paper's
// workloads use W1 (the fire-and-forget default of its era); WMajority
// is provided for applications that need durability across failovers.
type WriteConcern int

const (
	// W1 acknowledges after the primary's local commit.
	W1 WriteConcern = iota
	// WMajority acknowledges after a majority of members (including
	// the primary) are known to have applied the commit OpTime.
	WMajority
)

func (w WriteConcern) String() string {
	if w == WMajority {
		return "majority"
	}
	return "1"
}

// ExecWriteConcern runs a write transaction and blocks until the
// requested write concern is satisfied, returning the commit OpTime.
// With WMajority the caller parks on a per-OpTime waiter at the
// primary and is woken exactly when the majority commit point — which
// the primary learns via progress reports and heartbeats — crosses the
// commit, instead of rescanning the known table on every gossip
// message.
func (rs *ReplicaSet) ExecWriteConcern(p sim.Proc, wc WriteConcern, fn func(tx WriteTxn) (any, error)) (any, oplog.OpTime, error) {
	return rs.ExecWriteConcernMeta(p, wc, ReadMeta{}, fn)
}

// ExecWriteConcernMeta is ExecWriteConcern with trace annotation: a
// live context records the primary-exec hop as a span carrying the
// commit OpTime, and for WMajority a separate span around the majority
// wait annotated with the OpTime it blocked on — making replication
// stalls attributable per operation.
func (rs *ReplicaSet) ExecWriteConcernMeta(p sim.Proc, wc WriteConcern, meta ReadMeta, fn func(tx WriteTxn) (any, error)) (any, oplog.OpTime, error) {
	live := meta.Ctx.Live()
	var execID uint64
	var start time.Duration
	primary := rs.PrimaryID()
	if live {
		execID = rs.tracer.NewSpanID()
		start = p.Now()
	}
	res, commit, err := rs.ExecWriteTracked(p, fn)
	if live {
		rs.tracer.Record(trace.Span{
			Trace:  meta.Ctx.TraceID,
			ID:     execID,
			Parent: meta.Ctx.SpanID,
			Name:   "node.exec_write",
			Node:   primary,
			Start:  start,
			Dur:    p.Now() - start,
			Attrs:  []trace.Attr{{K: "optime", V: commit.String()}},
		})
	}
	if err != nil || wc == W1 || commit.IsZero() {
		return res, commit, err
	}
	var waitStart time.Duration
	if live {
		waitStart = p.Now()
	}
	rs.Primary().awaitMajorityKnown(p, commit)
	// Leaseholder barrier (no-op when leases are off): a majority ack
	// is not enough once secondaries serve linearizable reads — every
	// live read lease must also cover the commit (by application or by
	// renewal) before the write is acknowledged, or a leased secondary
	// outside the majority could serve a linearizable read missing it.
	rs.leases.awaitLeaseholders(p, commit)
	if live {
		rs.tracer.Record(trace.Span{
			Trace:  meta.Ctx.TraceID,
			ID:     rs.tracer.NewSpanID(),
			Parent: meta.Ctx.SpanID,
			Name:   "write.majority_wait",
			Node:   primary,
			Start:  waitStart,
			Dur:    p.Now() - waitStart,
			Attrs: []trace.Attr{
				{K: "blocked_on", V: commit.String()},
				{K: "w", V: wc.String()},
			},
		})
	}
	return res, commit, nil
}

// countKnownAtLeast reports how many members this node knows to have
// applied at least ts (itself included via its own lastApplied).
func (n *Node) countKnownAtLeast(ts oplog.OpTime) int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.countKnownAtLeastLocked(ts)
}

func (n *Node) countKnownAtLeastLocked(ts oplog.OpTime) int {
	count := 0
	for id, known := range n.known {
		applied := known
		if id == n.ID {
			applied = n.lastApplied
		}
		if !applied.Before(ts) {
			count++
		}
	}
	return count
}

// MajorityCommitPoint returns the highest OpTime this node knows a
// majority of members to have applied — MongoDB's majority commit
// point, the basis of read concern majority.
func (n *Node) MajorityCommitPoint() oplog.OpTime {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.majorityPointLocked()
}

func (n *Node) majorityPointLocked() oplog.OpTime {
	times := make([]oplog.OpTime, len(n.known))
	copy(times, n.known)
	times[n.ID] = n.lastApplied
	// Sort descending; the (majority-1) index is the newest OpTime
	// that at least a majority have reached.
	sort.Slice(times, func(i, j int) bool { return times[j].Before(times[i]) })
	return times[len(times)/2]
}
