package cluster

import (
	"sort"

	"decongestant/internal/oplog"
	"decongestant/internal/sim"
)

// WriteConcern selects how many members must have applied a write
// before it is acknowledged, like MongoDB's `w` option. The paper's
// workloads use W1 (the fire-and-forget default of its era); WMajority
// is provided for applications that need durability across failovers.
type WriteConcern int

const (
	// W1 acknowledges after the primary's local commit.
	W1 WriteConcern = iota
	// WMajority acknowledges after a majority of members (including
	// the primary) are known to have applied the commit OpTime.
	WMajority
)

func (w WriteConcern) String() string {
	if w == WMajority {
		return "majority"
	}
	return "1"
}

// ExecWriteConcern runs a write transaction and blocks until the
// requested write concern is satisfied, returning the commit OpTime.
// With WMajority the caller parks on a per-OpTime waiter at the
// primary and is woken exactly when the majority commit point — which
// the primary learns via progress reports and heartbeats — crosses the
// commit, instead of rescanning the known table on every gossip
// message.
func (rs *ReplicaSet) ExecWriteConcern(p sim.Proc, wc WriteConcern, fn func(tx WriteTxn) (any, error)) (any, oplog.OpTime, error) {
	res, commit, err := rs.ExecWriteTracked(p, fn)
	if err != nil || wc == W1 || commit.IsZero() {
		return res, commit, err
	}
	rs.Primary().awaitMajorityKnown(p, commit)
	return res, commit, nil
}

// countKnownAtLeast reports how many members this node knows to have
// applied at least ts (itself included via its own lastApplied).
func (n *Node) countKnownAtLeast(ts oplog.OpTime) int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.countKnownAtLeastLocked(ts)
}

func (n *Node) countKnownAtLeastLocked(ts oplog.OpTime) int {
	count := 0
	for id, known := range n.known {
		applied := known
		if id == n.ID {
			applied = n.lastApplied
		}
		if !applied.Before(ts) {
			count++
		}
	}
	return count
}

// MajorityCommitPoint returns the highest OpTime this node knows a
// majority of members to have applied — MongoDB's majority commit
// point, the basis of read concern majority.
func (n *Node) MajorityCommitPoint() oplog.OpTime {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.majorityPointLocked()
}

func (n *Node) majorityPointLocked() oplog.OpTime {
	times := make([]oplog.OpTime, len(n.known))
	copy(times, n.known)
	times[n.ID] = n.lastApplied
	// Sort descending; the (majority-1) index is the newest OpTime
	// that at least a majority have reached.
	sort.Slice(times, func(i, j int) bool { return times[j].Before(times[i]) })
	return times[len(times)/2]
}
