package cluster

import (
	"runtime"
	"strconv"

	"decongestant/internal/obs"
)

// Scrape-time serverStatus families. Real operators scrape MongoDB
// through four metric families — status (connections, asserts, memory,
// queues), replstatus (per-member replication state), collstats and
// dbstats — and the elastic integration's field list is the reference
// for which readings matter. The hot paths already maintain their own
// counters; everything here is derived state that would be wasteful to
// keep current per-operation, so it is computed by a registry
// collector that runs once per snapshot (a metrics-op scrape, the
// Prometheus endpoint, the periodic replsetd log) instead.
//
// The wire server contributes the connection rows of the status family
// (status.connections.*) from its own accept loop; everything below
// comes from the replica set.

// registerStatusCollector wires the replica set's serverStatus
// families into its registry. Called once from New.
func (rs *ReplicaSet) registerStatusCollector() {
	reg := rs.metrics
	nodes := len(rs.nodes)
	type nodeGauges struct {
		state      *obs.Gauge
		optimeSecs *obs.Gauge
		lagSecs    *obs.Gauge
		leased     *obs.Gauge
		queueDepth *obs.Gauge
		cpuInUse   *obs.Gauge
	}
	ng := make([]nodeGauges, nodes)
	for i := 0; i < nodes; i++ {
		node := strconv.Itoa(i)
		ng[i] = nodeGauges{
			state:      reg.Gauge(obs.Name("replstatus.state", "node", node)),
			optimeSecs: reg.Gauge(obs.Name("replstatus.optime_secs", "node", node)),
			lagSecs:    reg.Gauge(obs.Name("replstatus.lag_secs", "node", node)),
			leased:     reg.Gauge(obs.Name("replstatus.leased", "node", node)),
			queueDepth: reg.Gauge(obs.Name("status.queue_depth", "node", node)),
			cpuInUse:   reg.Gauge(obs.Name("status.cpu_in_use", "node", node)),
		}
	}
	heap := reg.Gauge("status.mem.heap_bytes")
	sys := reg.Gauge("status.mem.sys_bytes")
	goroutines := reg.Gauge("status.goroutines")
	assertApply := reg.Gauge(obs.Name("status.asserts", "kind", "apply_errors"))
	assertResync := reg.Gauge(obs.Name("status.asserts", "kind", "resyncs"))
	dbColls := reg.Gauge("dbstats.collections")
	dbDocs := reg.Gauge("dbstats.docs")
	dbIndexes := reg.Gauge("dbstats.indexes")
	dbEncBytes := reg.Gauge("dbstats.encoded_bytes")

	reg.RegisterCollector(func() {
		primaryID := rs.PrimaryID()
		primaryTS := rs.nodes[primaryID].LastApplied()
		var applyErrs, resyncs int64
		for i, n := range rs.nodes {
			st := n.Stats()
			applyErrs += st.ApplyErrors
			resyncs += st.Resyncs
			applied := n.LastApplied()
			state := int64(1)
			switch {
			case n.Down():
				state = 0
			case i == primaryID:
				state = 2
			}
			ng[i].state.Set(state)
			ng[i].optimeSecs.Set(applied.Secs)
			ng[i].lagSecs.Set(primaryTS.LagSeconds(applied))
			var leased int64
			if rs.leases.holds(i, primaryID) {
				leased = 1
			}
			ng[i].leased.Set(leased)
			ng[i].queueDepth.Set(int64(n.QueueDepth()))
			ng[i].cpuInUse.Set(int64(n.cpu.InUse()))
		}
		assertApply.Set(applyErrs)
		assertResync.Set(resyncs)

		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(int64(ms.HeapAlloc))
		sys.Set(int64(ms.Sys))
		goroutines.Set(int64(runtime.NumGoroutine()))

		// collstats/dbstats read the primary's store: the authoritative
		// copy, and under copy-on-write the walk shares snapshots with
		// concurrent readers.
		p := rs.nodes[primaryID]
		p.mu.RLock()
		store := p.store
		p.mu.RUnlock()
		db := store.Stats()
		dbColls.Set(int64(db.Collections))
		dbDocs.Set(int64(db.Docs))
		dbIndexes.Set(int64(db.Indexes))
		dbEncBytes.Set(db.EncodedBytes)
		for _, cs := range db.PerCollection {
			reg.Gauge(obs.Name("collstats.docs", "coll", cs.Name)).Set(int64(cs.Docs))
			reg.Gauge(obs.Name("collstats.indexes", "coll", cs.Name)).Set(int64(cs.Indexes))
			reg.Gauge(obs.Name("collstats.encoded_bytes", "coll", cs.Name)).Set(cs.EncodedBytes)
			reg.Gauge(obs.Name("collstats.encoded_docs", "coll", cs.Name)).Set(int64(cs.EncodedDocs))
		}
	})
}
