package cluster

import (
	"fmt"
	"testing"
	"time"

	"decongestant/internal/obs"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// fastConfig keeps replication and gossip snappy for unit tests.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.ReplIdlePoll = 5 * time.Millisecond
	cfg.HeartbeatInterval = 100 * time.Millisecond
	cfg.CheckpointInterval = time.Hour // disabled unless a test wants it
	cfg.NoopInterval = time.Hour
	cfg.FlowControlLagSecs = 0
	return cfg
}

func TestWriteReplicatesToSecondaries(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Shutdown()
	rs := New(env, fastConfig())
	env.Spawn("writer", func(p sim.Proc) {
		for i := 0; i < 10; i++ {
			_, err := rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
				return nil, tx.Insert("kv", storage.D{"_id": fmt.Sprintf("k%d", i), "v": i})
			})
			if err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
	})
	env.Run(5 * time.Second)
	for _, id := range rs.NodeIDs() {
		n := rs.Node(id)
		n.mu.Lock()
		got := n.store.C("kv").Len()
		n.mu.Unlock()
		if got != 10 {
			t.Errorf("node %d has %d docs, want 10", id, got)
		}
	}
	for _, id := range rs.SecondaryIDs() {
		if rs.Node(id).Stats().Applied == 0 {
			t.Errorf("secondary %d applied nothing", id)
		}
	}
}

func TestSecondaryReadSeesStaleThenFreshData(t *testing.T) {
	env := sim.NewEnv(2)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.ReplIdlePoll = 200 * time.Millisecond // widen the staleness window
	rs := New(env, cfg)
	secID := rs.SecondaryIDs()[0]

	var staleMiss, freshHit bool
	env.Spawn("client", func(p sim.Proc) {
		if _, err := rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "x", "v": 1})
		}); err != nil {
			t.Error(err)
			return
		}
		// Immediately read from the secondary: replication (idle poll
		// 5ms) cannot have delivered it yet.
		res, _ := rs.ExecRead(p, secID, func(v ReadView) (any, error) {
			_, found := v.FindByID("kv", "x")
			return found, nil
		})
		staleMiss = !(res.(bool))
		p.Sleep(time.Second)
		res, _ = rs.ExecRead(p, secID, func(v ReadView) (any, error) {
			_, found := v.FindByID("kv", "x")
			return found, nil
		})
		freshHit = res.(bool)
	})
	env.Run(5 * time.Second)
	if !staleMiss {
		t.Error("secondary read immediately after write was not stale")
	}
	if !freshHit {
		t.Error("secondary read after replication delay did not see the write")
	}
}

func TestBootstrapLoadsEveryNode(t *testing.T) {
	env := sim.NewEnv(3)
	defer env.Shutdown()
	rs := New(env, fastConfig())
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("items")
		if _, err := c.CreateIndex("byN", false, "n"); err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			if err := c.Insert(storage.D{"_id": fmt.Sprintf("i%d", i), "n": i}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	env.Spawn("reader", func(p sim.Proc) {
		for _, id := range rs.NodeIDs() {
			res, _ := rs.ExecRead(p, id, func(v ReadView) (any, error) {
				return len(v.Find("items", storage.Filter{"n": storage.Gte(0)}, 0)), nil
			})
			counts = append(counts, res.(int))
		}
	})
	env.Run(time.Second)
	if len(counts) != 3 {
		t.Fatalf("got %d reads", len(counts))
	}
	for i, c := range counts {
		if c != 5 {
			t.Errorf("node %d sees %d docs", i, c)
		}
	}
}

func TestPingReflectsZones(t *testing.T) {
	env := sim.NewEnv(4)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.RTTJitter = -1 // exactly zero jitter
	rs := New(env, cfg)
	var same, cross time.Duration
	env.Spawn("pinger", func(p sim.Proc) {
		same = rs.Ping(p, 0)  // node 0 in the client zone
		cross = rs.Ping(p, 1) // node 1 cross-zone
	})
	env.Run(time.Second)
	if same != cfg.RTTSameZone {
		t.Errorf("same-zone ping %v, want %v", same, cfg.RTTSameZone)
	}
	if cross < cfg.RTTCrossZoneBase {
		t.Errorf("cross-zone ping %v below base %v", cross, cfg.RTTCrossZoneBase)
	}
	if cross <= same {
		t.Errorf("cross-zone %v not above same-zone %v", cross, same)
	}
}

func TestServerStatusConservativeStaleness(t *testing.T) {
	env := sim.NewEnv(5)
	defer env.Shutdown()
	cfg := fastConfig()
	rs := New(env, cfg)
	secID := rs.SecondaryIDs()[0]

	var primaryView, actual int64
	env.Spawn("driver", func(p sim.Proc) {
		// Sustained writes so OpTimes keep advancing.
		for i := 0; i < 200; i++ {
			rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
				return nil, tx.Set("kv", "hot", storage.D{"v": i})
			})
			p.Sleep(20 * time.Millisecond)
		}
		st := rs.ServerStatus(p, rs.PrimaryID())
		primaryView = st.StalenessSecs(secID)
		actual = rs.Primary().LastApplied().LagSeconds(rs.Node(secID).LastApplied())
	})
	env.Run(time.Minute)
	if primaryView < actual {
		t.Errorf("primary-sourced staleness %ds below actual %ds (not conservative)", primaryView, actual)
	}
	if primaryView > actual+2 {
		t.Errorf("primary-sourced staleness %ds far above actual %ds", primaryView, actual)
	}
}

func TestCongestionRaisesLatency(t *testing.T) {
	measure := func(clients int) time.Duration {
		env := sim.NewEnv(6)
		defer env.Shutdown()
		rs := New(env, fastConfig())
		rs.Bootstrap(func(s *storage.Store) error {
			return s.C("kv").Insert(storage.D{"_id": "k", "v": 0})
		})
		var total time.Duration
		var count int
		for i := 0; i < clients; i++ {
			env.Spawn("client", func(p sim.Proc) {
				for {
					start := p.Now()
					rs.ExecRead(p, rs.PrimaryID(), func(v ReadView) (any, error) {
						v.FindByID("kv", "k")
						return nil, nil
					})
					total += p.Now() - start
					count++
				}
			})
		}
		env.Run(10 * time.Second)
		env.Shutdown()
		if count == 0 {
			t.Fatal("no reads completed")
		}
		return total / time.Duration(count)
	}
	light := measure(4)
	heavy := measure(100)
	if heavy < 3*light {
		t.Errorf("congestion barely visible: light %v heavy %v", light, heavy)
	}
}

func TestThroughputSaturates(t *testing.T) {
	measure := func(clients int) float64 {
		env := sim.NewEnv(7)
		defer env.Shutdown()
		rs := New(env, fastConfig())
		rs.Bootstrap(func(s *storage.Store) error {
			return s.C("kv").Insert(storage.D{"_id": "k", "v": 0})
		})
		count := 0
		for i := 0; i < clients; i++ {
			env.Spawn("client", func(p sim.Proc) {
				for {
					rs.ExecRead(p, rs.PrimaryID(), func(v ReadView) (any, error) {
						v.FindByID("kv", "k")
						return nil, nil
					})
					count++
				}
			})
		}
		env.Run(10 * time.Second)
		env.Shutdown()
		return float64(count) / 10
	}
	t50, t150 := measure(50), measure(150)
	// Past saturation, tripling clients should barely move throughput.
	if t150 > 1.25*t50 {
		t.Errorf("no saturation: 50 clients %.0f ops/s, 150 clients %.0f ops/s", t50, t150)
	}
}

func TestCheckpointStallsReplicationThenCatchesUp(t *testing.T) {
	env := sim.NewEnv(8)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.CheckpointInterval = 5 * time.Second
	cfg.CheckpointMinDuration = 3 * time.Second
	cfg.CheckpointPerMB = 0
	cfg.CheckpointMaxDuration = 3 * time.Second
	rs := New(env, cfg)
	secID := rs.SecondaryIDs()[0]

	var maxLag int64
	var finalLag int64
	for i := 0; i < 4; i++ {
		env.Spawn("writer", func(p sim.Proc) {
			for j := 0; ; j++ {
				rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
					return nil, tx.Set("kv", fmt.Sprintf("w%d", j%50), storage.D{"v": j})
				})
				p.Sleep(2 * time.Millisecond)
			}
		})
	}
	env.Spawn("observer", func(p sim.Proc) {
		for {
			p.Sleep(200 * time.Millisecond)
			lag := rs.Primary().LastApplied().LagSeconds(rs.Node(secID).LastApplied())
			if lag > maxLag {
				maxLag = lag
			}
		}
	})
	env.Run(14 * time.Second) // covers a checkpoint at t=5s..8s
	// Let writers stop and replication drain.
	env.Shutdown()
	env2 := sim.NewEnv(8)
	_ = env2
	if maxLag < 2 {
		t.Errorf("checkpoint did not stall replication: max lag %ds", maxLag)
	}
	finalLag = rs.Primary().LastApplied().LagSeconds(rs.Node(secID).LastApplied())
	_ = finalLag
	if rs.Primary().Stats().Checkpoints == 0 {
		t.Error("no checkpoint ran on the primary")
	}
}

func TestStalenessCollapsesAfterCheckpoint(t *testing.T) {
	env := sim.NewEnv(9)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.CheckpointInterval = 4 * time.Second
	cfg.CheckpointMinDuration = 2 * time.Second
	cfg.CheckpointPerMB = 0
	cfg.CheckpointMaxDuration = 2 * time.Second
	rs := New(env, cfg)
	secID := rs.SecondaryIDs()[0]
	stop := false
	env.Spawn("writer", func(p sim.Proc) {
		for j := 0; !stop; j++ {
			rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
				return nil, tx.Set("kv", "k", storage.D{"v": j})
			})
			p.Sleep(5 * time.Millisecond)
		}
	})
	env.Run(7 * time.Second) // one checkpoint at 4s..6s has completed
	stop = true
	env.Run(8 * time.Second) // drain
	lag := rs.Primary().LastApplied().LagSeconds(rs.Node(secID).LastApplied())
	if lag > 1 {
		t.Errorf("staleness did not collapse after checkpoint: %ds", lag)
	}
}

func TestFlowControlThrottlesWritesUnderLag(t *testing.T) {
	run := func(enabled bool) int {
		env := sim.NewEnv(10)
		defer env.Shutdown()
		cfg := fastConfig()
		cfg.CheckpointInterval = 2 * time.Second
		cfg.CheckpointMinDuration = 6 * time.Second
		cfg.CheckpointPerMB = 0
		cfg.CheckpointMaxDuration = 6 * time.Second
		if enabled {
			cfg.FlowControlLagSecs = 2
			cfg.FlowControlDelay = 20 * time.Millisecond
		}
		rs := New(env, cfg)
		writes := 0
		for i := 0; i < 4; i++ {
			env.Spawn("writer", func(p sim.Proc) {
				for j := 0; ; j++ {
					rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
						return nil, tx.Set("kv", "k", storage.D{"v": j})
					})
					writes++
				}
			})
		}
		env.Run(10 * time.Second)
		env.Shutdown()
		return writes
	}
	unthrottled := run(false)
	throttled := run(true)
	if throttled >= unthrottled {
		t.Errorf("flow control had no effect: %d vs %d writes", throttled, unthrottled)
	}
}

func TestFailoverPromotesAndAcceptsWrites(t *testing.T) {
	env := sim.NewEnv(11)
	defer env.Shutdown()
	rs := New(env, fastConfig())
	var newPrimary int
	var writeErr error
	env.Spawn("driver", func(p sim.Proc) {
		for i := 0; i < 20; i++ {
			rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
				return nil, tx.Set("kv", fmt.Sprintf("k%d", i), storage.D{"v": i})
			})
		}
		newPrimary = rs.Failover(p)
		_, writeErr = rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
			return nil, tx.Set("kv", "after", storage.D{"v": 1})
		})
	})
	env.Run(10 * time.Second)
	if newPrimary == 0 {
		t.Fatal("failover did not change the primary")
	}
	if rs.PrimaryID() != newPrimary {
		t.Fatal("PrimaryID does not match failover result")
	}
	if writeErr != nil {
		t.Fatalf("write after failover: %v", writeErr)
	}
	// All pre-failover writes must exist on the new primary (catch-up).
	n := rs.Primary()
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < 20; i++ {
		if _, ok := n.store.C("kv").FindByID(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("write k%d lost in failover", i)
		}
	}
}

func TestNoopWriterAdvancesOpTimeWhenIdle(t *testing.T) {
	env := sim.NewEnv(12)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.NoopInterval = time.Second
	rs := New(env, cfg)
	env.Run(5500 * time.Millisecond)
	if ts := rs.Primary().LastApplied(); ts.IsZero() {
		t.Fatal("idle primary never advanced its optime")
	}
	// Secondaries replicate the noops too.
	for _, id := range rs.SecondaryIDs() {
		if rs.Node(id).LastApplied().IsZero() {
			t.Errorf("secondary %d never applied a noop", id)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, string) {
		env := sim.NewEnv(99)
		defer env.Shutdown()
		rs := New(env, fastConfig())
		count := 0
		for i := 0; i < 10; i++ {
			env.Spawn("c", func(p sim.Proc) {
				for j := 0; ; j++ {
					rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
						return nil, tx.Set("kv", "k", storage.D{"v": j})
					})
					count++
				}
			})
		}
		env.Run(3 * time.Second)
		env.Shutdown()
		return count, rs.Primary().LastApplied().String()
	}
	c1, ts1 := run()
	c2, ts2 := run()
	if c1 != c2 || ts1 != ts2 {
		t.Fatalf("non-deterministic: (%d,%s) vs (%d,%s)", c1, ts1, c2, ts2)
	}
}

func TestStatusMaxSecondaryStaleness(t *testing.T) {
	st := Status{
		From:    0,
		Primary: 0,
		Members: []MemberStatus{
			{ID: 0, Primary: true, Applied: optime(100)},
			{ID: 1, Applied: optime(95)},
			{ID: 2, Applied: optime(98)},
		},
	}
	if got := st.StalenessSecs(1); got != 5 {
		t.Fatalf("StalenessSecs(1)=%d", got)
	}
	if got := st.MaxSecondaryStalenessSecs(); got != 5 {
		t.Fatalf("Max=%d", got)
	}
}

func optime(secs int64) oplog.OpTime {
	return oplog.OpTime{Secs: secs, Inc: 1}
}

// TestDownNodeProbesAreInvalid: pinging or polling a down node must
// not produce plausible-looking samples — the Read Balancer and the
// driver monitor rely on this to skip, not misfile, them.
func TestDownNodeProbesAreInvalid(t *testing.T) {
	env := sim.NewEnv(11)
	defer env.Shutdown()
	rs := New(env, fastConfig())
	secID := rs.SecondaryIDs()[0]
	env.Spawn("prober", func(p sim.Proc) {
		if st := rs.ServerStatus(p, secID); !st.OK() {
			t.Error("status from a live node reported not OK")
		}
		if rtt := rs.Ping(p, secID); rtt <= 0 {
			t.Errorf("ping of live node returned %v", rtt)
		}
		rs.SetDown(secID, true)
		if st := rs.ServerStatus(p, secID); st.OK() {
			t.Error("status from a down node reported OK")
		}
		if rtt := rs.Ping(p, secID); rtt >= 0 {
			t.Errorf("ping of down node returned %v, want negative", rtt)
		}
		rs.SetDown(secID, false)
		if st := rs.ServerStatus(p, secID); !st.OK() {
			t.Error("status stayed invalid after the node came back")
		}
	})
	env.Run(5 * time.Second)
}

// TestNodeInstrumentsPopulate: the registry mirrors node activity —
// reads, writes, queue wait, checkpoints and oplog lag all register.
func TestNodeInstrumentsPopulate(t *testing.T) {
	env := sim.NewEnv(12)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.CheckpointInterval = 500 * time.Millisecond
	cfg.CheckpointMinDuration = 10 * time.Millisecond
	rs := New(env, cfg)
	env.Spawn("load", func(p sim.Proc) {
		for i := 0; i < 20; i++ {
			if _, err := rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
				return nil, tx.Insert("kv", storage.D{"_id": fmt.Sprintf("k%d", i), "v": i})
			}); err != nil {
				t.Error(err)
			}
			if _, err := rs.ExecRead(p, rs.PrimaryID(), func(v ReadView) (any, error) {
				v.FindByID("kv", "k0")
				return nil, nil
			}); err != nil {
				t.Error(err)
			}
		}
	})
	env.Run(5 * time.Second)
	snap := rs.Metrics().Snapshot()
	prim := fmt.Sprintf("%d", rs.PrimaryID())
	if got := snap.CounterValue(obs.Name("cluster.reads", "node", prim)); got != 20 {
		t.Errorf("cluster.reads = %d, want 20", got)
	}
	if got := snap.CounterValue(obs.Name("cluster.writes", "node", prim)); got != 20 {
		t.Errorf("cluster.writes = %d, want 20", got)
	}
	if got := snap.CounterValue(obs.Name("cluster.checkpoints", "node", prim)); got == 0 {
		t.Error("no checkpoints counted despite dirty writes")
	}
	in, ok := snap.Get(obs.Name("cluster.checkpoint_duration", "node", prim))
	if !ok || in.Hist == nil || in.Hist.Count == 0 {
		t.Error("checkpoint duration histogram empty")
	}
	in, ok = snap.Get(obs.Name("cluster.getmore_latency", "node", prim))
	if !ok || in.Hist == nil || in.Hist.Count == 0 {
		t.Error("getMore latency histogram empty at the primary")
	}
	in, ok = snap.Get(obs.Name("cluster.cpu_queue_wait", "node", prim))
	if !ok || in.Hist == nil || in.Hist.Count == 0 {
		t.Error("queue wait histogram empty")
	}
	if _, ok := snap.Get(obs.Name("cluster.oplog_lag_secs", "node", "1")); !ok {
		t.Error("oplog lag gauge missing for secondary")
	}
}
