package cluster

import (
	"testing"
	"time"

	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func TestWriteConcernMajorityWaitsForReplication(t *testing.T) {
	env := sim.NewEnv(31)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.ReplIdlePoll = 400 * time.Millisecond // visible replication delay
	cfg.DisableTailWake = true                // poll-driven delay is the point here
	rs := New(env, cfg)

	var w1Lat, majLat time.Duration
	var commitOK bool
	env.Spawn("client", func(p sim.Proc) {
		start := p.Now()
		_, _, err := rs.ExecWriteConcern(p, W1, func(tx WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "w1", "v": 1})
		})
		if err != nil {
			t.Error(err)
			return
		}
		w1Lat = p.Now() - start

		start = p.Now()
		_, commit, err := rs.ExecWriteConcern(p, WMajority, func(tx WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "maj", "v": 1})
		})
		if err != nil {
			t.Error(err)
			return
		}
		majLat = p.Now() - start
		// At acknowledgment a majority must actually have the write.
		commitOK = rs.Primary().countKnownAtLeast(commit) >= 2
	})
	env.Run(10 * time.Second)
	if !commitOK {
		t.Fatal("majority ack without majority replication")
	}
	if majLat < w1Lat+100*time.Millisecond {
		t.Fatalf("majority write (%v) not visibly slower than w:1 (%v) under 400ms poll", majLat, w1Lat)
	}
}

func TestWriteConcernW1DoesNotWait(t *testing.T) {
	env := sim.NewEnv(32)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.ReplIdlePoll = 10 * time.Second // replication effectively frozen
	rs := New(env, cfg)
	var lat time.Duration
	env.Spawn("client", func(p sim.Proc) {
		start := p.Now()
		rs.ExecWriteConcern(p, W1, func(tx WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "x", "v": 1})
		})
		lat = p.Now() - start
	})
	env.Run(time.Second)
	if lat > 100*time.Millisecond {
		t.Fatalf("w:1 write took %v with frozen replication", lat)
	}
}

func TestMajorityCommitPoint(t *testing.T) {
	env := sim.NewEnv(33)
	defer env.Shutdown()
	rs := New(env, fastConfig())
	env.Spawn("writer", func(p sim.Proc) {
		for i := 0; i < 20; i++ {
			rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
				return nil, tx.Set("kv", "k", storage.D{"v": i})
			})
			p.Sleep(50 * time.Millisecond)
		}
	})
	env.Run(5 * time.Second)
	prim := rs.Primary()
	mcp := prim.MajorityCommitPoint()
	if mcp.IsZero() {
		t.Fatal("majority commit point never advanced")
	}
	if prim.LastApplied().Before(mcp) {
		t.Fatal("commit point ahead of the primary's own applied time")
	}
	// With healthy replication the commit point trails by at most a
	// couple of seconds.
	if lag := prim.LastApplied().LagSeconds(mcp); lag > 2 {
		t.Fatalf("commit point lags %ds on a healthy cluster", lag)
	}
}

func TestWriteConcernString(t *testing.T) {
	if W1.String() != "1" || WMajority.String() != "majority" {
		t.Fatal("WriteConcern strings wrong")
	}
}
