// Package cluster implements a MongoDB-like replica set from scratch:
// a primary that applies writes and logs them to an oplog, secondaries
// that pull oplog batches via getMore requests serviced by the primary,
// per-node lastAppliedOpTime tracking gossiped through heartbeats and
// progress reports, serverStatus with the same conservative-staleness
// error model the paper exploits (§2.3), WiredTiger-style periodic
// checkpoints that stall getMore servicing (producing the paper's
// gradual-rise/fast-drop staleness sawtooth, §4.5), and flow control
// that throttles writes under replication lag.
//
// Every node is modeled as a CPU resource with a fixed number of
// service slots; closed-loop clients queueing on those slots produce
// the congestion latencies Decongestant's feedback controller reads.
package cluster

import "time"

// Config describes a replica set deployment. The defaults approximate
// the paper's 3-node, equal-capacity cluster (§4.1.1) at a scale that
// saturates around 50-100 closed-loop clients, matching Figure 5's
// knee.
type Config struct {
	// Nodes is the replica set size (including the primary).
	Nodes int
	// Zones assigns an availability zone per node (cycled if shorter).
	Zones []string
	// ClientZone is the zone client systems run in.
	ClientZone string

	// CPUSlots is the number of concurrent operations a node services.
	CPUSlots int
	// ReadCost is the service time of one read work unit.
	ReadCost time.Duration
	// WriteCost is the service time of one write operation at the
	// primary (document apply + oplog append + journal).
	WriteCost time.Duration
	// ApplyCost is the service time of applying one oplog entry on a
	// secondary.
	ApplyCost time.Duration
	// StatusCost is the service time of a serverStatus command.
	StatusCost time.Duration
	// GetMoreCost is the primary-side service time of one oplog
	// getMore request.
	GetMoreCost time.Duration
	// CostJitter is the +/- uniform fraction applied to service times.
	// Negative means exactly zero jitter (zero takes the default).
	CostJitter float64

	// BatchMax is the maximum oplog entries per getMore batch.
	BatchMax int
	// ReplIdlePoll is how long a secondary waits before re-polling an
	// empty oplog tail.
	ReplIdlePoll time.Duration
	// HeartbeatInterval is how often every node gossips its
	// lastApplied OpTime to all others.
	HeartbeatInterval time.Duration
	// NoopInterval is how often an idle primary writes a no-op oplog
	// entry (keeps staleness well-defined on idle systems).
	NoopInterval time.Duration

	// CheckpointInterval is the WiredTiger-style checkpoint period.
	CheckpointInterval time.Duration
	// CheckpointMinDuration, CheckpointPerMB, CheckpointMaxDuration
	// size a checkpoint: duration = min + dirtyMB*perMB, capped. Dirty
	// volume is measured in payload bytes, so document-heavy workloads
	// (TPC-C orders) checkpoint longer than small-value ones (YCSB) at
	// the same op rate — matching the paper's observations.
	CheckpointMinDuration time.Duration
	CheckpointPerMB       time.Duration
	CheckpointMaxDuration time.Duration
	// CheckpointSlowdown multiplies write/apply service times while a
	// checkpoint saturates the node's disk.
	CheckpointSlowdown float64

	// FlowControlLagSecs enables write throttling when the primary's
	// known replication lag reaches this many seconds (0 disables).
	FlowControlLagSecs int64
	// FlowControlDelay is the per-write stall added when throttling.
	FlowControlDelay time.Duration

	// RTTSameZone and RTTCrossZoneBase set network round-trip times;
	// each cross-zone pair gets a deterministic extra offset below
	// RTTCrossZoneSpread so zones differ, as on EC2 (§3.3.1).
	RTTSameZone        time.Duration
	RTTCrossZoneBase   time.Duration
	RTTCrossZoneSpread time.Duration
	// RTTJitter is the +/- uniform fraction applied to each traversal.
	// Negative means exactly zero jitter (zero takes the default).
	RTTJitter float64

	// OplogCap bounds retained oplog entries (0 = unbounded).
	OplogCap int
	// OplogHardCap bounds the primary's oplog even against live-but-
	// slow (or down) fetchers: when retention for the slowest member
	// would exceed this many entries, the oldest are dropped anyway and
	// the lagging member resyncs from a snapshot instead of the log.
	// Zero takes 2x OplogCap; negative disables the hard cap.
	OplogHardCap int

	// DisableTailWake reverts secondaries to pure sleep-polling of the
	// primary's oplog tail every ReplIdlePoll instead of waking on the
	// append notification. Used by tests that assert poll-driven
	// replication timing.
	DisableTailWake bool

	// LinearizableLeases enables the lease subsystem: a leader lease
	// held by the primary (renewed piggybacked on heartbeats) and
	// per-secondary read leases that let a caught-up secondary serve
	// linearizable reads locally. Off by default — the unleased read
	// and write paths are byte-identical to the pre-lease engine.
	LinearizableLeases bool
	// LeaseDuration is how long a granted lease remains valid on the
	// holder's local clock. Zero takes 4x HeartbeatInterval, so a
	// holder survives a few missed renewals before falling back.
	LeaseDuration time.Duration
	// LeaseGuardBand is the clock-skew safety margin: holders stop
	// serving this long before their lease's nominal expiry, and a
	// failover drain waits this long past the last computed expiry
	// before the new epoch's leases may be granted. Zero takes
	// LeaseDuration/8.
	LeaseGuardBand time.Duration
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Nodes:      3,
		Zones:      []string{"ap-southeast-2a", "ap-southeast-2b", "ap-southeast-2c"},
		ClientZone: "ap-southeast-2a",

		CPUSlots:    8,
		ReadCost:    900 * time.Microsecond,
		WriteCost:   1800 * time.Microsecond,
		ApplyCost:   200 * time.Microsecond,
		StatusCost:  150 * time.Microsecond,
		GetMoreCost: 300 * time.Microsecond,
		CostJitter:  0.25,

		BatchMax:          2000,
		ReplIdlePoll:      50 * time.Millisecond,
		HeartbeatInterval: 500 * time.Millisecond,
		NoopInterval:      10 * time.Second,

		CheckpointInterval:    60 * time.Second,
		CheckpointMinDuration: 500 * time.Millisecond,
		CheckpointPerMB:       250 * time.Millisecond,
		CheckpointMaxDuration: 30 * time.Second,
		CheckpointSlowdown:    2.0,

		FlowControlLagSecs: 15,
		FlowControlDelay:   2 * time.Millisecond,

		RTTSameZone:        250 * time.Microsecond,
		RTTCrossZoneBase:   700 * time.Microsecond,
		RTTCrossZoneSpread: 600 * time.Microsecond,
		RTTJitter:          0.15,

		OplogCap: 500_000,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Nodes == 0 {
		c.Nodes = d.Nodes
	}
	if len(c.Zones) == 0 {
		c.Zones = d.Zones
	}
	if c.ClientZone == "" {
		c.ClientZone = d.ClientZone
	}
	if c.CPUSlots == 0 {
		c.CPUSlots = d.CPUSlots
	}
	if c.ReadCost == 0 {
		c.ReadCost = d.ReadCost
	}
	if c.WriteCost == 0 {
		c.WriteCost = d.WriteCost
	}
	if c.ApplyCost == 0 {
		c.ApplyCost = d.ApplyCost
	}
	if c.StatusCost == 0 {
		c.StatusCost = d.StatusCost
	}
	if c.GetMoreCost == 0 {
		c.GetMoreCost = d.GetMoreCost
	}
	if c.CostJitter == 0 {
		c.CostJitter = d.CostJitter
	} else if c.CostJitter < 0 {
		c.CostJitter = 0
	}
	if c.BatchMax == 0 {
		c.BatchMax = d.BatchMax
	}
	if c.ReplIdlePoll == 0 {
		c.ReplIdlePoll = d.ReplIdlePoll
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = d.HeartbeatInterval
	}
	if c.NoopInterval == 0 {
		c.NoopInterval = d.NoopInterval
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = d.CheckpointInterval
	}
	if c.CheckpointMinDuration == 0 {
		c.CheckpointMinDuration = d.CheckpointMinDuration
	}
	if c.CheckpointPerMB == 0 {
		c.CheckpointPerMB = d.CheckpointPerMB
	}
	if c.CheckpointMaxDuration == 0 {
		c.CheckpointMaxDuration = d.CheckpointMaxDuration
	}
	if c.CheckpointSlowdown == 0 {
		c.CheckpointSlowdown = d.CheckpointSlowdown
	}
	if c.FlowControlDelay == 0 {
		c.FlowControlDelay = d.FlowControlDelay
	}
	if c.RTTSameZone == 0 {
		c.RTTSameZone = d.RTTSameZone
	}
	if c.RTTCrossZoneBase == 0 {
		c.RTTCrossZoneBase = d.RTTCrossZoneBase
	}
	if c.RTTCrossZoneSpread == 0 {
		c.RTTCrossZoneSpread = d.RTTCrossZoneSpread
	}
	if c.RTTJitter == 0 {
		c.RTTJitter = d.RTTJitter
	} else if c.RTTJitter < 0 {
		c.RTTJitter = 0
	}
	if c.LeaseDuration == 0 {
		c.LeaseDuration = 4 * c.HeartbeatInterval
	}
	if c.LeaseGuardBand == 0 {
		c.LeaseGuardBand = c.LeaseDuration / 8
	}
	if c.OplogHardCap == 0 {
		c.OplogHardCap = 2 * c.OplogCap // 0 stays 0 (unbounded) when OplogCap is unbounded
	} else if c.OplogHardCap < 0 {
		c.OplogHardCap = 0
	}
	return c
}
