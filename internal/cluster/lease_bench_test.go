package cluster

// Benchmarks for the PR 9 headline claim: lease-served linearizable
// reads scale with the member count, because every leased member
// serves strong reads locally instead of funneling them all through
// the primary. Both benchmarks run the identical read against the
// identical five-member set — same simulated service time (ReadCost),
// same CPU slots per node — so the throughput ratio between them is
// pure placement: five lease holders versus the one primary. The gate
// (`make bench-pr9`) requires the spread variant to clear 3x the
// primary-only baseline.
//
// Service time is simulated (a Sleep while the CPU slot is held), so
// the scaling is visible even on a single-core runner: throughput is
// bounded by members x CPUSlots / ReadCost, not by host parallelism.
//
// Run with:
//
//	go test ./internal/cluster -bench BenchmarkLinearizable -benchtime 2s -count 3 -benchmem

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

const (
	leaseBenchNodes  = 5
	leaseBenchDocs   = 1024
	leaseBenchFanout = 64 // parallel clients per GOMAXPROCS
)

// leaseBenchSet builds a five-member real-time set with leases on and
// a modeled per-read service time, preloaded with small documents, and
// waits until the heartbeat path has granted every member its lease.
func leaseBenchSet(b *testing.B) (*sim.RealtimeEnv, *ReplicaSet) {
	b.Helper()
	env := sim.NewRealtimeEnv(9)
	cfg := zeroCostConfig(4)
	cfg.Nodes = leaseBenchNodes
	cfg.ReadCost = 2 * time.Millisecond
	cfg.HeartbeatInterval = 10 * time.Millisecond
	cfg.LinearizableLeases = true
	rs := New(env, cfg)
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("bench")
		for i := 0; i < leaseBenchDocs; i++ {
			if err := c.Insert(storage.D{"_id": benchDocID(i), "val": int64(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		leased := 0
		for id := 0; id < cfg.Nodes; id++ {
			if rs.Leased(id) {
				leased++
			}
		}
		if leased == cfg.Nodes {
			return env, rs
		}
		if time.Now().After(deadline) {
			b.Fatalf("only %d/%d members leased", leased, cfg.Nodes)
		}
		time.Sleep(time.Millisecond)
	}
}

// benchLinearizable drives closed-loop linearizable point reads. With
// spread on, clients round-robin across all five members (the lease
// path); off, every read is pinned to the primary (the baseline every
// strong read took before leases). A lease rejection falls back to the
// primary exactly as the driver does — rare renewals races must not
// abort the run, and mass fallback shows up in the gated ratio anyway.
func benchLinearizable(b *testing.B, spread bool) {
	env, rs := leaseBenchSet(b)
	defer env.Shutdown()
	primary := rs.PrimaryID()
	read := func(id string) func(v ReadView) (any, error) {
		return func(v ReadView) (any, error) {
			if _, ok := v.FindByID("bench", id); !ok {
				return nil, errors.New("bench: missing doc")
			}
			return nil, nil
		}
	}
	var seed atomic.Int64
	b.SetParallelism(leaseBenchFanout)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := env.Adhoc("bench-lin-reader")
		rng := rand.New(rand.NewSource(seed.Add(1)))
		node := primary
		next := rng.Intn(leaseBenchNodes)
		for pb.Next() {
			if spread {
				node = next % leaseBenchNodes
				next++
			}
			body := read(benchDocID(rng.Intn(leaseBenchDocs)))
			_, _, err := rs.ExecReadLinearizable(p, node, body)
			if _, rejected := LeaseReject(err); rejected {
				_, _, err = rs.ExecReadLinearizable(p, rs.PrimaryID(), body)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
}

// BenchmarkLinearizable5Node spreads linearizable reads across all
// five leased members — the PR 9 strong-read scaling number.
func BenchmarkLinearizable5Node(b *testing.B) { benchLinearizable(b, true) }

// BenchmarkLinearizablePrimaryOnly pins every linearizable read to the
// primary — the pre-lease baseline the 5-node number is gated against.
func BenchmarkLinearizablePrimaryOnly(b *testing.B) { benchLinearizable(b, false) }
