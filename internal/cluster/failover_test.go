package cluster

import (
	"fmt"
	"testing"
	"time"

	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// TestFailoverUnderLoad: writers and readers keep running across a
// failover; after promotion the new primary accepts writes, the old
// primary rejoins as a secondary and replication resumes toward it.
func TestFailoverUnderLoad(t *testing.T) {
	env := sim.NewEnv(21)
	defer env.Shutdown()
	cfg := fastConfig()
	rs := New(env, cfg)
	oldPrimary := rs.PrimaryID()

	var writeErrs, writeOKs int
	for i := 0; i < 5; i++ {
		i := i
		env.Spawn("writer", func(p sim.Proc) {
			for j := 0; ; j++ {
				_, err := rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
					return nil, tx.Set("kv", fmt.Sprintf("w%d-%d", i, j%20), storage.D{"v": j})
				})
				if err != nil {
					writeErrs++
				} else {
					writeOKs++
				}
				p.Sleep(5 * time.Millisecond)
			}
		})
	}
	env.Run(3 * time.Second)
	env.Spawn("operator", func(p sim.Proc) {
		rs.Failover(p)
	})
	env.Run(10 * time.Second)

	if rs.PrimaryID() == oldPrimary {
		t.Fatal("failover did not move the primary")
	}
	if writeOKs == 0 {
		t.Fatal("no writes succeeded")
	}
	// The old primary must now be pulling from the new one.
	oldNode := rs.Node(oldPrimary)
	appliedBefore := oldNode.Stats().Applied
	env.Run(15 * time.Second)
	if oldNode.Stats().Applied <= appliedBefore {
		t.Error("demoted node is not replicating from the new primary")
	}
	// All nodes converge on the hot keys once writers stop.
	env.Shutdown()
	prim := rs.Primary()
	prim.mu.Lock()
	primLen := prim.store.C("kv").Len()
	prim.mu.Unlock()
	if primLen == 0 {
		t.Fatal("new primary has no data")
	}
}

// TestDownNodeRejectsAndRecovers: a down secondary rejects reads, its
// puller pauses, and on recovery it catches up.
func TestDownNodeRejectsAndRecovers(t *testing.T) {
	env := sim.NewEnv(22)
	defer env.Shutdown()
	rs := New(env, fastConfig())
	secID := rs.SecondaryIDs()[0]
	rs.SetDown(secID, true)

	var readErr error
	env.Spawn("driver", func(p sim.Proc) {
		for i := 0; i < 20; i++ {
			rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
				return nil, tx.Set("kv", fmt.Sprintf("k%d", i), storage.D{"v": i})
			})
		}
		_, readErr = rs.ExecRead(p, secID, func(v ReadView) (any, error) { return nil, nil })
	})
	env.Run(3 * time.Second)
	if readErr != ErrNodeDown {
		t.Fatalf("read on down node returned %v, want ErrNodeDown", readErr)
	}
	if applied := rs.Node(secID).Stats().Applied; applied != 0 {
		t.Fatalf("down node applied %d entries", applied)
	}
	rs.SetDown(secID, false)
	env.Run(8 * time.Second)
	if applied := rs.Node(secID).Stats().Applied; applied < 20 {
		t.Fatalf("recovered node applied only %d entries", applied)
	}
}

// TestCausalReadBlocksUntilApplied exercises ExecReadAfter directly:
// with replication frozen the read must wait, then complete promptly
// once entries arrive.
func TestCausalReadBlocksUntilApplied(t *testing.T) {
	env := sim.NewEnv(23)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.ReplIdlePoll = 500 * time.Millisecond
	cfg.DisableTailWake = true // this test asserts poll-driven replication latency
	rs := New(env, cfg)
	secID := rs.SecondaryIDs()[0]

	var waited time.Duration
	var sawDoc bool
	env.Spawn("client", func(p sim.Proc) {
		rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "causal", "v": 1})
		})
		token := rs.Primary().LastApplied()
		start := p.Now()
		res, _, err := rs.ExecReadAfter(p, secID, token, func(v ReadView) (any, error) {
			_, ok := v.FindByID("kv", "causal")
			return ok, nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		waited = p.Now() - start
		sawDoc = res.(bool)
	})
	env.Run(5 * time.Second)
	if !sawDoc {
		t.Fatal("causal read missed the prerequisite write")
	}
	if waited < 200*time.Millisecond {
		t.Fatalf("causal read returned in %v; expected it to block for the 500ms poll", waited)
	}
}

// TestExecReadAfterZeroDoesNotBlock: the no-prerequisite case behaves
// like a plain read.
func TestExecReadAfterZeroDoesNotBlock(t *testing.T) {
	env := sim.NewEnv(24)
	defer env.Shutdown()
	rs := New(env, fastConfig())
	var lat time.Duration
	env.Spawn("client", func(p sim.Proc) {
		start := p.Now()
		rs.ExecReadAfter(p, rs.SecondaryIDs()[0], rs.Node(0).LastApplied(), func(v ReadView) (any, error) {
			return nil, nil
		})
		lat = p.Now() - start
	})
	env.Run(time.Second)
	if lat > 100*time.Millisecond {
		t.Fatalf("zero-prerequisite read took %v", lat)
	}
}
