package cluster

// Write-path stress and correctness tests for PR 4: group commit,
// tail-signaled oplog fetch, parallel batch appliers, per-OpTime
// majority-ack waiters, down-member-aware truncation, and apply-error
// accounting. The realtime stress test is the -race companion of
// TestRealtimeConcurrencyStress, aimed at the new write-side
// machinery: many concurrent w:majority writers funneling through the
// group-commit leader, bulk transactions wide enough to trigger the
// parallel applier path on secondaries, and failovers mid-batch.

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"decongestant/internal/obs"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

const (
	wpWriters = 8
	wpIters   = 200
	wpBulkTxn = 96 // > parallelApplyMin so secondaries fan out appliers
)

func TestWritePathGroupCommitStress(t *testing.T) {
	// Force the parallel applier fan-out even on single-core runners:
	// the point here is the race coverage of concurrent appliers, not
	// their speedup. Restored after env.Shutdown (defers run LIFO).
	old := parallelAppliers
	parallelAppliers = 4
	defer func() { parallelAppliers = old }()
	env := sim.NewRealtimeEnv(1)
	defer env.Shutdown()
	cfg := zeroCostConfig(8)
	cfg.ReplIdlePoll = time.Millisecond
	cfg.HeartbeatInterval = 5 * time.Millisecond
	cfg.OplogCap = 1_000_000
	rs := New(env, cfg)
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("wp")
		for i := 0; i < stressDocs; i++ {
			if err := c.Insert(storage.D{"_id": stressDocID(i), "val": int64(0)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// w:majority writers: every acknowledged write funnels through the
	// group-commit leader and then parks on a per-OpTime ack waiter.
	for w := 0; w < wpWriters; w++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			p := env.Adhoc(fmt.Sprintf("wp/writer-%d", idx))
			rng := rand.New(rand.NewSource(int64(idx)))
			field := fmt.Sprintf("w%d", idx)
			for i := 0; i < wpIters; i++ {
				id := stressDocID(rng.Intn(stressDocs))
				_, _, err := rs.ExecWriteConcern(p, WMajority, func(tx WriteTxn) (any, error) {
					return nil, tx.Set("wp", id, storage.D{field: int64(i)})
				})
				if !writeRaceOK(err) {
					fail(err)
					return
				}
			}
		}(w)
	}

	// Bulk writers: wide transactions whose oplog batches exceed
	// parallelApplyMin, so secondaries partition them across appliers.
	for b := 0; b < 2; b++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			p := env.Adhoc(fmt.Sprintf("wp/bulk-%d", idx))
			rng := rand.New(rand.NewSource(int64(50 + idx)))
			for i := 0; i < 20; i++ {
				base := rng.Intn(stressDocs - wpBulkTxn)
				_, err := rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
					for j := 0; j < wpBulkTxn; j++ {
						if err := tx.Set("wp", stressDocID(base+j), storage.D{"bulk": int64(i)}); err != nil {
							return nil, err
						}
					}
					return nil, nil
				})
				if !writeRaceOK(err) {
					fail(err)
					return
				}
			}
		}(b)
	}

	// Readers: point reads on random nodes while chunks apply under
	// applyMu — the interleavings the race detector should vet.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			p := env.Adhoc(fmt.Sprintf("wp/reader-%d", idx))
			rng := rand.New(rand.NewSource(int64(100 + idx)))
			for i := 0; i < wpIters; i++ {
				node := rng.Intn(cfg.Nodes)
				id := stressDocID(rng.Intn(stressDocs))
				_, err := rs.ExecRead(p, node, func(v ReadView) (any, error) {
					if d, ok := v.FindByID("wp", id); ok {
						_ = d.Int("val")
					}
					return nil, nil
				})
				if err != nil {
					fail(err)
					return
				}
			}
		}(r)
	}

	// Failovers mid-batch, same cadence as the PR 3 stress test.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := env.Adhoc("wp/failover")
		for i := 0; i < 3; i++ {
			time.Sleep(20 * time.Millisecond)
			rs.Failover(p)
		}
	}()

	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Every realtime commit goes through the group-commit leader. How
	// often batches actually carry >1 txn depends on core count and
	// scheduling, so that is asserted deterministically in
	// TestGroupCommitBatchesQueuedWriters; here we just require the
	// path was exercised and report the observed grouping.
	var commits, grouped int64
	for _, id := range rs.NodeIDs() {
		st := rs.Node(id).Stats()
		commits += st.GroupCommits
		grouped += st.GroupedTxns
	}
	if commits == 0 {
		t.Fatal("no group commits led by any node")
	}
	t.Logf("group commit: %d txns over %d batches (%.2f txns/batch)",
		grouped, commits, float64(grouped)/float64(commits))

	// Replication survived: a majority of members (primary included)
	// reaches the primary's applied point once writers stop. (The third
	// member can legitimately carry a divergent tail from a write that
	// raced a failover, so we require a majority, not all three.)
	deadline := time.Now().Add(5 * time.Second)
	for {
		prim := rs.Primary()
		top := prim.LastApplied()
		caughtUp := 0
		for _, id := range rs.NodeIDs() {
			if !rs.Node(id).LastApplied().Before(top) {
				caughtUp++
			}
		}
		if caughtUp >= cfg.Nodes/2+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d members reached the primary's applied point", caughtUp, cfg.Nodes)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Acknowledged writer increments are visible on the final primary.
	p := env.Adhoc("wp/final")
	res, err := rs.ExecRead(p, rs.PrimaryID(), func(v ReadView) (any, error) {
		var seen int64
		for i := 0; i < stressDocs; i++ {
			if d, ok := v.FindByID("wp", stressDocID(i)); ok {
				for w := 0; w < wpWriters; w++ {
					if _, ok := d[fmt.Sprintf("w%d", w)]; ok {
						seen++
					}
				}
			}
		}
		return seen, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.(int64) == 0 {
		t.Fatal("no writer fields visible on the final primary")
	}
}

// writeRaceOK tolerates the one legitimate failure mode of a write
// racing a failover between the primary check and the commit.
func writeRaceOK(err error) bool {
	return err == nil || err == ErrNotPrimary
}

// TestGroupCommitBatchesQueuedWriters proves the batching semantics
// deterministically: a request already sitting in the queue when a
// writer becomes leader is committed in the same batch, in staging
// order, with one group commit covering both transactions.
func TestGroupCommitBatchesQueuedWriters(t *testing.T) {
	env := sim.NewRealtimeEnv(1)
	defer env.Shutdown()
	cfg := zeroCostConfig(2)
	cfg.ReplIdlePoll = time.Millisecond
	cfg.HeartbeatInterval = 5 * time.Millisecond
	rs := New(env, cfg)
	n := rs.Primary()

	mkSet := func(id string, v int64) mutation {
		norm, err := storage.D{"v": v}.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		return mutation{kind: mutSet, collection: "kv", docID: id,
			doc: norm, payload: storage.EncodeDoc(norm)}
	}

	// Stage a follower request by hand, exactly as a concurrent writer
	// would leave it while the leader slot is free.
	queued := &commitReq{muts: []mutation{mkSet("queued", 1)}, done: make(chan struct{})}
	n.gc.mu.Lock()
	n.gc.pending = append(n.gc.pending, queued)
	n.gc.mu.Unlock()

	p := env.Adhoc("gc/leader")
	last, err := n.commitStaged(p, []mutation{mkSet("leader", 2)})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-queued.done:
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never completed; leader did not drain it")
	}
	if queued.err != nil {
		t.Fatal(queued.err)
	}
	if !queued.last.Before(last) {
		t.Fatalf("staging order lost: queued committed at %v, leader at %v", queued.last, last)
	}
	st := n.Stats()
	if st.GroupCommits != 1 || st.GroupedTxns != 2 {
		t.Fatalf("expected 1 batch of 2 txns, got %d batches / %d txns", st.GroupCommits, st.GroupedTxns)
	}
	n.mu.RLock()
	_, okQ := n.store.C("kv").FindByID("queued")
	_, okL := n.store.C("kv").FindByID("leader")
	n.mu.RUnlock()
	if !okQ || !okL {
		t.Fatalf("batched writes missing from the store: queued=%v leader=%v", okQ, okL)
	}
}

// TestWritePathVirtualDeterminism: the virtual-time environment must
// stay deterministic — group commit and parallel appliers are
// realtime-only fast paths. Two runs with the same seed produce
// byte-identical OpTime sequences on every node and identical final
// data.
func TestWritePathVirtualDeterminism(t *testing.T) {
	run := func() string {
		env := sim.NewEnv(77)
		defer env.Shutdown()
		cfg := fastConfig()
		cfg.ReplIdlePoll = 5 * time.Millisecond
		cfg.NoopInterval = 50 * time.Millisecond
		cfg.OplogCap = 100_000
		rs := New(env, cfg)
		for w := 0; w < 2; w++ {
			w := w
			env.Spawn(fmt.Sprintf("writer-%d", w), func(p sim.Proc) {
				for i := 0; i < 30; i++ {
					id := fmt.Sprintf("d%d-%d", w, i%7)
					switch {
					case i%5 == 4:
						rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
							return nil, tx.Delete("kv", id)
						})
					case i%2 == 0:
						rs.ExecWriteConcern(p, WMajority, func(tx WriteTxn) (any, error) {
							return nil, tx.Set("kv", id, storage.D{"v": int64(i)})
						})
					default:
						rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
							return nil, tx.Set("kv", id, storage.D{"u": int64(i)})
						})
					}
					p.Sleep(7 * time.Millisecond)
				}
			})
		}
		env.Spawn("operator", func(p sim.Proc) {
			p.Sleep(200 * time.Millisecond)
			rs.Failover(p)
		})
		env.Run(3 * time.Second)

		var b []byte
		for _, id := range rs.NodeIDs() {
			n := rs.Node(id)
			n.mu.RLock()
			b = fmt.Appendf(b, "n%d last=%v log=", id, n.lastApplied)
			for _, e := range n.log.ScanAfter(oplog.Zero, 0) {
				b = fmt.Appendf(b, "%v/%v,", e.TS, e.Kind)
			}
			if c, ok := n.store.Lookup("kv"); ok {
				ids := []string{}
				c.ScanIDs(func(docID string) bool { ids = append(ids, docID); return true })
				for _, docID := range ids {
					d, _ := c.FindByID(docID)
					b = fmt.Appendf(b, " %s=%v", docID, d)
				}
			}
			b = append(b, '\n')
			n.mu.RUnlock()
		}
		return string(b)
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("virtual write path not deterministic:\nrun1:\n%s\nrun2:\n%s", first, second)
	}
}

// TestDownSecondaryDoesNotPinOplog: a down member's stale fetch
// position must not hold primary truncation hostage. The primary keeps
// truncating against live fetchers (and the hard cap), the revived
// member finds a gap and resyncs from a snapshot, then converges.
func TestDownSecondaryDoesNotPinOplog(t *testing.T) {
	env := sim.NewEnv(55)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.ReplIdlePoll = 5 * time.Millisecond
	cfg.OplogCap = 64
	cfg.OplogHardCap = 128
	rs := New(env, cfg)
	downID := rs.SecondaryIDs()[1]
	rs.SetDown(downID, true)

	env.Spawn("writer", func(p sim.Proc) {
		for i := 0; i < 600; i++ {
			rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
				return nil, tx.Set("kv", fmt.Sprintf("k%d", i), storage.D{"v": int64(i)})
			})
			p.Sleep(2 * time.Millisecond)
		}
	})
	env.Run(2 * time.Second)

	prim := rs.Primary()
	prim.mu.RLock()
	primLen := prim.log.Len()
	truncTo := prim.log.TruncatedTo()
	prim.mu.RUnlock()
	if primLen > 200 {
		t.Fatalf("primary oplog holds %d entries with a down member; truncation pinned", primLen)
	}
	if truncTo.IsZero() {
		t.Fatal("primary never truncated despite 600 writes over a 64-entry cap")
	}

	// Revive: the stale member's fetch lands in the truncated gap, so
	// it must snapshot-resync and then stream the tail normally.
	// (Run horizons are absolute virtual times, not deltas.)
	rs.SetDown(downID, false)
	env.Run(5 * time.Second)
	down := rs.Node(downID)
	if got := down.Stats().Resyncs; got < 1 {
		t.Fatalf("revived member resynced %d times; expected a snapshot resync", got)
	}
	name := obs.Name("cluster.resyncs", "node", strconv.Itoa(downID))
	if v := rs.Metrics().Counter(name).Value(); v < 1 {
		t.Fatalf("obs counter %s = %d; not wired", name, v)
	}
	if down.LastApplied().Before(prim.MajorityCommitPoint()) {
		t.Fatalf("revived member at %v still behind commit point %v", down.LastApplied(), prim.MajorityCommitPoint())
	}
	// Spot-check the resynced data actually arrived.
	var ok bool
	env.Spawn("check", func(p sim.Proc) {
		res, err := rs.ExecRead(p, downID, func(v ReadView) (any, error) {
			_, found := v.FindByID("kv", "k599")
			return found, nil
		})
		ok = err == nil && res.(bool)
	})
	env.Run(6 * time.Second)
	if !ok {
		t.Fatal("revived member missing the final write after resync")
	}
}

// TestApplyErrorsAreCounted: a corrupt oplog payload must not be
// silently swallowed by the puller — it is dropped, counted in
// NodeStats.ApplyErrors and the obs registry, and replication of the
// entries around it continues.
func TestApplyErrorsAreCounted(t *testing.T) {
	env := sim.NewEnv(66)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.ReplIdlePoll = 5 * time.Millisecond
	rs := New(env, cfg)
	prim := rs.Primary()

	// Plant an entry whose payload does not decode, as a torn write
	// would leave it, then follow with good writes.
	prim.mu.Lock()
	ts := prim.log.NextTS(0)
	err := prim.log.Append(oplog.Entry{
		TS: ts, Kind: oplog.KindSet, Collection: "kv", DocID: "torn",
		Payload: []byte{0x01}, // one field promised, zero bytes follow
	})
	prim.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	env.Spawn("writer", func(p sim.Proc) {
		for i := 0; i < 10; i++ {
			rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
				return nil, tx.Set("kv", fmt.Sprintf("good%d", i), storage.D{"v": int64(i)})
			})
			p.Sleep(10 * time.Millisecond)
		}
	})
	env.Run(2 * time.Second)

	for _, id := range rs.SecondaryIDs() {
		n := rs.Node(id)
		if got := n.Stats().ApplyErrors; got < 1 {
			t.Fatalf("node %d counted %d apply errors; corrupt entry swallowed", id, got)
		}
		name := obs.Name("cluster.apply_errors", "node", strconv.Itoa(id))
		if v := rs.Metrics().Counter(name).Value(); v < 1 {
			t.Fatalf("obs counter %s = %d; not wired", name, v)
		}
		// Entries after the corrupt one still replicated.
		if n.LastApplied().Before(prim.LastApplied()) {
			t.Fatalf("node %d stalled at %v after the corrupt entry (primary at %v)",
				id, n.LastApplied(), prim.LastApplied())
		}
	}
}

// TestNoopLoopFollowsPrimary: the noop writer must skip a down or
// demoted member and mint noops at whichever node currently holds the
// primary role.
func TestNoopLoopFollowsPrimary(t *testing.T) {
	env := sim.NewEnv(88)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.ReplIdlePoll = 5 * time.Millisecond
	cfg.NoopInterval = 20 * time.Millisecond
	rs := New(env, cfg)

	firstID := rs.PrimaryID()
	env.Run(300 * time.Millisecond)
	if rs.Node(firstID).LastApplied().IsZero() {
		t.Fatal("noop writer never advanced the original primary")
	}

	// Run horizons are absolute virtual times, not deltas.
	env.Spawn("operator", func(p sim.Proc) { rs.Failover(p) })
	env.Run(400 * time.Millisecond)
	newID := rs.PrimaryID()
	if newID == firstID {
		t.Fatal("failover did not move the primary")
	}
	mark := rs.Node(newID).LastApplied()
	env.Run(700 * time.Millisecond)
	if !mark.Before(rs.Node(newID).LastApplied()) {
		t.Fatal("noop writer did not follow the failover to the new primary")
	}

	// A down primary takes no noops (and the loop must not crash): its
	// oplog freezes while the outage lasts.
	rs.SetDown(newID, true)
	n := rs.Node(newID)
	n.mu.RLock()
	frozen := n.log.Last()
	n.mu.RUnlock()
	env.Run(1200 * time.Millisecond)
	n.mu.RLock()
	after := n.log.Last()
	n.mu.RUnlock()
	if after != frozen {
		t.Fatalf("down primary's oplog advanced %v -> %v; noop writer ignored Down()", frozen, after)
	}
}
