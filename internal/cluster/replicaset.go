package cluster

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"decongestant/internal/obs"
	"decongestant/internal/obs/trace"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// ReplicaSet is the deployed cluster: one primary plus secondaries,
// connected by the zone network model, with background replication,
// heartbeat, checkpoint and noop-writer processes.
type ReplicaSet struct {
	env     sim.Env
	cfg     Config
	net     *Network
	nodes   []*Node
	metrics *obs.Registry
	// realtime selects the concurrent fast paths (group commit,
	// parallel batch appliers). The virtual-time env runs one process
	// at a time, where those paths would only perturb the event
	// schedule — it keeps the direct, deterministic code.
	realtime bool
	tracer   *trace.Recorder
	audit    *freshnessAuditor
	leases   *leaseManager

	// primaryID is atomic rather than mutexed because the read hot
	// path now consults it on every operation (the freshness auditor
	// must know whether the serving node is a secondary).
	primaryID atomic.Int32
}

// New builds and starts a replica set. Zero-valued Config fields take
// defaults. Node 0 starts as primary.
func New(env sim.Env, cfg Config) *ReplicaSet {
	cfg = cfg.withDefaults()
	_, realtime := env.(*sim.RealtimeEnv)
	rs := &ReplicaSet{env: env, cfg: cfg, net: newNetwork(env, cfg), metrics: obs.NewRegistry(), realtime: realtime}
	// Ring 0 holds client/server-side spans (Node -1), rings 1..N the
	// per-node exec spans.
	rs.tracer = trace.NewRecorder(env.NewRand("trace"), trace.Config{Rings: cfg.Nodes + 1})
	rs.tracer.Register(rs.metrics)
	rs.audit = newFreshnessAuditor(rs.metrics)
	rs.leases = newLeaseManager(rs)
	for i := 0; i < cfg.Nodes; i++ {
		zone := cfg.Zones[i%len(cfg.Zones)]
		rs.nodes = append(rs.nodes, newNode(rs, i, zone))
	}
	rs.registerStatusCollector()
	rs.startBackground()
	return rs
}

// Metrics returns the replica set's observability registry. The
// driver and Read Balancer running in the same process register their
// instruments here too (via driver.NewClient's MetricsProvider
// detection), so one snapshot covers the whole stack.
func (rs *ReplicaSet) Metrics() *obs.Registry { return rs.metrics }

// Config returns the effective configuration.
func (rs *ReplicaSet) Config() Config { return rs.cfg }

// Env returns the execution environment.
func (rs *ReplicaSet) Env() sim.Env { return rs.env }

// Network returns the zone RTT model.
func (rs *ReplicaSet) Network() *Network { return rs.net }

// Tracer returns the replica set's span recorder. The in-process
// driver, router, and wire server all record into it, so one trace id
// retrieves the whole causal tree.
func (rs *ReplicaSet) Tracer() *trace.Recorder { return rs.tracer }

// FreshnessExemplars returns the auditor's recent per-read staleness
// exemplars (newest last).
func (rs *ReplicaSet) FreshnessExemplars() []FreshnessExemplar { return rs.audit.exemplarList() }

// PrimaryID returns the current primary's node id.
func (rs *ReplicaSet) PrimaryID() int {
	return int(rs.primaryID.Load())
}

// Primary returns the current primary node.
func (rs *ReplicaSet) Primary() *Node { return rs.nodes[rs.PrimaryID()] }

// Node returns the node with the given id.
func (rs *ReplicaSet) Node(id int) *Node { return rs.nodes[id] }

// NodeIDs returns all node ids.
func (rs *ReplicaSet) NodeIDs() []int {
	ids := make([]int, len(rs.nodes))
	for i := range rs.nodes {
		ids[i] = i
	}
	return ids
}

// SecondaryIDs returns the ids of all current secondaries.
func (rs *ReplicaSet) SecondaryIDs() []int {
	p := rs.PrimaryID()
	var ids []int
	for i := range rs.nodes {
		if i != p {
			ids = append(ids, i)
		}
	}
	return ids
}

// Zone returns a node's availability zone.
func (rs *ReplicaSet) Zone(id int) string { return rs.nodes[id].Zone }

// ClientZone returns the zone client systems run in.
func (rs *ReplicaSet) ClientZone() string { return rs.cfg.ClientZone }

// Bootstrap runs fn against every node's store directly, outside the
// oplog — modeling data that was present before the run (a restored
// snapshot / completed initial sync). Use it for loading datasets and
// creating indexes.
func (rs *ReplicaSet) Bootstrap(fn func(s *storage.Store) error) error {
	for _, n := range rs.nodes {
		n.mu.Lock()
		err := fn(n.store)
		n.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// ---- client-facing operations ----

// ErrNotPrimary is returned when a write reaches a non-primary node.
var ErrNotPrimary = fmt.Errorf("cluster: node is not primary")

// ErrNodeDown is returned when an operation reaches an unavailable node.
var ErrNodeDown = fmt.Errorf("cluster: node is down")

// SetDown marks a node (un)available. Operations against a down node
// fail; the driver's server selection avoids it.
func (rs *ReplicaSet) SetDown(id int, down bool) {
	rs.nodes[id].down.Store(down)
}

// ExecRead runs a read-only body at the chosen node, modeling network
// traversal, CPU queueing and service time proportional to the read
// units the body consumes. It returns the body's result.
func (rs *ReplicaSet) ExecRead(p sim.Proc, nodeID int, fn func(v ReadView) (any, error)) (any, error) {
	res, _, err := rs.ExecReadMeta(p, nodeID, oplog.Zero, ReadMeta{}, fn)
	return res, err
}

func (n *Node) execRead(p sim.Proc, fn func(v ReadView) (any, error)) (any, error) {
	if n.Down() {
		return nil, ErrNodeDown
	}
	qstart := p.Now()
	n.cpu.Acquire(p)
	defer n.cpu.Release()
	n.obsQueueWait.Observe(p.Now() - qstart)
	n.obsReads.Inc(1)
	v := &localReadView{node: n}
	// Read lock only: concurrent reads on this node run in parallel
	// (bounded by the CPU slots acquired above); they are excluded only
	// by a committing write or an oplog batch apply, which guarantees a
	// read never observes a half-applied transaction.
	n.mu.RLock()
	res, err := fn(v)
	n.mu.RUnlock()
	n.stats.reads.Add(1)
	units := v.readUnits
	if units < 1 {
		units = 1
	}
	p.Sleep(n.jitterCost(time.Duration(units) * n.rs.cfg.ReadCost))
	return res, err
}

// ExecWrite runs a read-write transaction body at the primary,
// modeling flow-control throttling, CPU queueing, and service time for
// both the read and write work. Mutations are applied and oplogged.
func (rs *ReplicaSet) ExecWrite(p sim.Proc, fn func(tx WriteTxn) (any, error)) (any, error) {
	n := rs.Primary()
	rs.net.Travel(p, rs.cfg.ClientZone, n.Zone)
	res, _, err := n.execWrite(p, fn)
	rs.net.Travel(p, n.Zone, rs.cfg.ClientZone)
	return res, err
}

func (n *Node) execWrite(p sim.Proc, fn func(tx WriteTxn) (any, error)) (any, oplog.OpTime, error) {
	if n.Down() {
		return nil, oplog.Zero, ErrNodeDown
	}
	if n.rs.PrimaryID() != n.ID {
		return nil, oplog.Zero, ErrNotPrimary
	}
	// Flow control: stall writers when known replication lag is high.
	if lim := n.rs.cfg.FlowControlLagSecs; lim > 0 {
		if n.knownMaxLagSecs() >= lim {
			p.Sleep(n.rs.cfg.FlowControlDelay)
		}
	}
	qstart := p.Now()
	n.cpu.Acquire(p)
	defer n.cpu.Release()
	n.obsQueueWait.Observe(p.Now() - qstart)
	n.obsWrites.Inc(1)
	tx := &localWriteTxn{localReadView: localReadView{node: n}}
	// The transaction body only reads committed state (mutations are
	// buffered until commit), so it runs under the read lock and in
	// parallel with other reads and write bodies; the commit below
	// takes the write lock.
	n.mu.RLock()
	res, err := fn(tx)
	n.mu.RUnlock()
	n.stats.writes.Add(1)
	cost := time.Duration(tx.readUnits)*n.rs.cfg.ReadCost +
		time.Duration(tx.writeOps())*n.rs.cfg.WriteCost
	if cost < n.rs.cfg.WriteCost {
		cost = n.rs.cfg.WriteCost
	}
	if n.Checkpointing() {
		cost = time.Duration(float64(cost) * n.rs.cfg.CheckpointSlowdown)
	}
	p.Sleep(n.jitterCost(cost))
	// Commit at the end of the service time: this is when the write
	// becomes durable and visible to replication. Concurrent commits
	// group: see Node.commitStaged.
	if err != nil {
		return res, oplog.Zero, err
	}
	commit, err := n.commitStaged(p, tx.muts)
	return res, commit, err
}

// knownMaxLagSecs is the primary's view of its worst secondary's lag.
func (n *Node) knownMaxLagSecs() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var worst int64
	for id, ts := range n.known {
		if id == n.ID {
			continue
		}
		if lag := n.lastApplied.LagSeconds(ts); lag > worst {
			worst = lag
		}
	}
	return worst
}

// Ping measures one round trip to the node without touching its CPU —
// the Read Balancer's RTT probe. Pinging a down node still spends the
// round trip (the probe times out in flight) but returns -1 so the
// caller can skip the sample instead of filing a bogus RTT.
func (rs *ReplicaSet) Ping(p sim.Proc, nodeID int) time.Duration {
	start := p.Now()
	rs.net.RoundTrip(p, rs.cfg.ClientZone, rs.nodes[nodeID].Zone)
	if rs.nodes[nodeID].Down() {
		return -1
	}
	return p.Now() - start
}

// MemberStatus is one row of a serverStatus response.
type MemberStatus struct {
	ID      int
	Primary bool
	// Applied is the member's lastAppliedOpTime as known by the
	// queried node — possibly stale knowledge, which is exactly the
	// conservative error model of §2.3.
	Applied oplog.OpTime
	// Leased reports whether the member held a valid lease (leader
	// lease for the primary, read lease otherwise) at snapshot time —
	// the signal the driver's Linearizable server selection routes on.
	Leased bool
}

// Status is a serverStatus response from one node.
type Status struct {
	From    int
	Primary int
	// LeaseEpoch is the current lease epoch (0 = leases disabled).
	LeaseEpoch uint64
	Members    []MemberStatus
}

// OK reports whether the status actually came back from a live node.
// A down or unreachable node yields a member-less Status (the wire
// client produces the same shape on a network error), which callers
// must skip rather than interpret as zero staleness.
func (st Status) OK() bool { return len(st.Members) > 0 }

// StalenessSecs returns the apparent staleness of member id: the
// primary's applied optime minus the member's, in whole seconds.
func (st Status) StalenessSecs(id int) int64 {
	var primary, member oplog.OpTime
	for _, m := range st.Members {
		if m.ID == st.Primary {
			primary = m.Applied
		}
		if m.ID == id {
			member = m.Applied
		}
	}
	return primary.LagSeconds(member)
}

// MaxSecondaryStalenessSecs returns the worst apparent staleness over
// all secondaries.
func (st Status) MaxSecondaryStalenessSecs() int64 {
	var worst int64
	for _, m := range st.Members {
		if m.ID == st.Primary {
			continue
		}
		if lag := st.StalenessSecs(m.ID); lag > worst {
			worst = lag
		}
	}
	return worst
}

// ServerStatus issues the serverStatus command at the chosen node and
// returns its view of every member's replication progress. A down
// node spends the network round trip but returns a member-less Status
// (check Status.OK), never stale garbage.
func (rs *ReplicaSet) ServerStatus(p sim.Proc, nodeID int) Status {
	n := rs.nodes[nodeID]
	rs.net.Travel(p, rs.cfg.ClientZone, n.Zone)
	if n.Down() {
		rs.net.Travel(p, n.Zone, rs.cfg.ClientZone)
		return Status{From: n.ID}
	}
	n.cpu.Acquire(p)
	p.Sleep(n.jitterCost(rs.cfg.StatusCost))
	st := n.statusSnapshot()
	n.cpu.Release()
	rs.net.Travel(p, n.Zone, rs.cfg.ClientZone)
	return st
}

func (n *Node) statusSnapshot() Status {
	n.stats.statuses.Add(1)
	// Read the primary id through its own lock before taking n.mu so the
	// two locks never nest (replica set → node is the only legal order).
	primary := n.rs.PrimaryID()
	// Lease state reads only leaseManager atomics — safe under n.mu.
	leases := n.rs.leases
	n.mu.RLock()
	defer n.mu.RUnlock()
	st := Status{From: n.ID, Primary: primary, LeaseEpoch: leases.epochValue()}
	for id := range n.known {
		applied := n.known[id]
		if id == n.ID {
			applied = n.lastApplied
		}
		st.Members = append(st.Members, MemberStatus{
			ID:      id,
			Primary: id == primary,
			Applied: applied,
			Leased:  leases.holds(id, primary),
		})
	}
	return st
}

// Failover promotes the most up-to-date secondary. The new primary
// first catches up on any oplog entries it has not yet applied (as a
// MongoDB election's catch-up phase does), so no acknowledged write is
// lost. It returns the new primary's id.
func (rs *ReplicaSet) Failover(p sim.Proc) int {
	oldID := rs.PrimaryID()
	old := rs.nodes[oldID]
	// Pick the secondary with the highest lastApplied.
	best := -1
	var bestTS oplog.OpTime
	for id, n := range rs.nodes {
		if id == oldID {
			continue
		}
		if ts := n.LastApplied(); best == -1 || bestTS.Before(ts) {
			best, bestTS = id, ts
		}
	}
	if best == -1 {
		return oldID
	}
	winner := rs.nodes[best]
	// Lease drain, part 1: bump the epoch and stop all grants NOW, so
	// the outstanding leases' expiries (computed below) are final and
	// the drain overlaps the catch-up work. No new-epoch lease can
	// exist until endTransfer reopens grants after the primary flip.
	drainUntil := rs.leases.beginTransfer(best)
	// Catch-up: copy and apply the entries the winner is missing. The
	// scan only reads the old primary's oplog, so the read lock is
	// enough; reads there keep flowing during the election. The batch
	// is decoded once outside any lock, and the apply runs under the
	// winner's applyMu so it serializes with any in-flight chunk apply
	// from the winner's own puller.
	old.mu.RLock()
	missing := old.log.ScanAfter(bestTS, 0)
	old.mu.RUnlock()
	decoded, dropped, derr := oplog.DecodeBatch(missing)
	if dropped > 0 {
		winner.noteApplyErrors(dropped, derr)
	}
	winner.applyMu.Lock()
	winner.mu.Lock()
	for _, e := range decoded {
		if !winner.lastApplied.Before(e.TS) {
			// The winner's own puller applied this entry between the
			// bestTS snapshot and here; re-applying is redundant, not
			// an error.
			continue
		}
		if err := e.Apply(winner.store); err != nil {
			winner.noteApplyErrors(1, err)
			continue
		}
		if err := winner.log.Append(e.Entry); err != nil {
			winner.noteApplyErrors(1, err)
			continue
		}
		winner.lastApplied = e.TS
		winner.known[winner.ID] = e.TS
	}
	winner.wakeAckWaitersLocked()
	winner.mu.Unlock()
	winner.applyMu.Unlock()
	winner.applyGate.Broadcast()
	// Lease drain, part 2: before the new primary takes over, wait out
	// every lease granted under the old regime — the deposed primary's
	// leader lease and all read leases, translated from their holders'
	// (possibly skewed) clocks — plus one guard band. Only then is it
	// impossible for any node to serve a linearizable read against
	// pre-transfer state once the new primary accepts writes.
	if rs.leases.enabled {
		if wait := drainUntil + rs.cfg.LeaseGuardBand - p.Now(); wait > 0 {
			p.Sleep(wait)
		}
	}
	rs.primaryID.Store(int32(best))
	rs.leases.endTransfer(oldID)
	return best
}

// ---- causal consistency (afterClusterTime) ----

// ExecReadAfter is ExecRead with MongoDB's afterClusterTime semantics:
// the read blocks at the chosen node until that node has applied at
// least the `after` OpTime, then executes. It returns the node's
// lastApplied at execution time alongside the result, so sessions can
// thread their causal token forward.
func (rs *ReplicaSet) ExecReadAfter(p sim.Proc, nodeID int, after oplog.OpTime, fn func(v ReadView) (any, error)) (any, oplog.OpTime, error) {
	return rs.ExecReadMeta(p, nodeID, after, ReadMeta{}, fn)
}

// ReadMeta carries per-operation observability into the read path: the
// trace context (zero when unsampled) and the freshness bound, in
// seconds, the client's session promised for this read (0 = none).
type ReadMeta struct {
	Ctx       trace.Context
	BoundSecs int64
}

// ExecReadMeta is ExecReadAfter plus the observability layer. When the
// context is live, the node-exec hop is recorded as a span (annotated
// with the served OpTime and, on secondaries, the observed staleness).
// Independently of sampling, every read served by a secondary is
// stamped by the freshness auditor with
//
//	observed_staleness = primary lastApplied − serving node lastApplied
//
// at serve time; the primary's lastApplied is the commit-point proxy —
// it can only overestimate the majority commit point, so the audit
// errs conservative (DESIGN.md §12). Reads that exceed their promised
// bound bump freshness.bound_violations and pin the offending trace.
func (rs *ReplicaSet) ExecReadMeta(p sim.Proc, nodeID int, after oplog.OpTime, meta ReadMeta, fn func(v ReadView) (any, error)) (any, oplog.OpTime, error) {
	res, ts, _, err := rs.ExecReadFreshMeta(p, nodeID, after, meta, fn)
	return res, ts, err
}

// ExecReadFreshMeta is ExecReadMeta that additionally returns the
// staleness observed at serve time, in whole seconds (0 for
// primary-served reads). The freshness-priced cache stamps entries
// with this value: an entry filled with observed staleness s at wall
// time t provably satisfies any bound Δ until t + (Δ − s), because
// staleness grows at most at wall-clock rate.
func (rs *ReplicaSet) ExecReadFreshMeta(p sim.Proc, nodeID int, after oplog.OpTime, meta ReadMeta, fn func(v ReadView) (any, error)) (any, oplog.OpTime, int64, error) {
	n := rs.nodes[nodeID]
	rs.net.Travel(p, rs.cfg.ClientZone, n.Zone)
	live := meta.Ctx.Live()
	var spanID uint64
	var start time.Duration
	if live {
		spanID = rs.tracer.NewSpanID()
		start = p.Now()
	}
	res, ts, err := n.execReadAfter(p, after, fn)
	var observed int64
	var attrs []trace.Attr
	if err == nil && nodeID != rs.PrimaryID() {
		observed = rs.Primary().LastApplied().LagSeconds(ts)
		if rs.audit.record(meta.BoundSecs, observed, meta.Ctx.TraceID) {
			rs.tracer.Pin(meta.Ctx.TraceID)
		}
		if live {
			attrs = []trace.Attr{
				{K: "optime", V: ts.String()},
				{K: "staleness_secs", V: strconv.FormatInt(observed, 10)},
			}
		}
	} else if live && err == nil {
		attrs = []trace.Attr{{K: "optime", V: ts.String()}}
	}
	if live {
		rs.tracer.Record(trace.Span{
			Trace:  meta.Ctx.TraceID,
			ID:     spanID,
			Parent: meta.Ctx.SpanID,
			Name:   "node.exec_read",
			Node:   nodeID,
			Start:  start,
			Dur:    p.Now() - start,
			Attrs:  attrs,
		})
	}
	rs.net.Travel(p, n.Zone, rs.cfg.ClientZone)
	return res, ts, observed, err
}

// AuditServed files a read that was served without touching any node —
// a cache hit — into the same freshness auditor as node-served reads,
// with the hit's effective staleness (fill staleness + entry age). It
// reports whether the read violated its bound, pinning the trace when
// it did. The non-violating path is allocation-free once the bound's
// histogram exists, which keeps cache hits at zero allocs.
func (rs *ReplicaSet) AuditServed(boundSecs, observedSecs int64, traceID uint64) bool {
	if rs.audit.record(boundSecs, observedSecs, traceID) {
		rs.tracer.Pin(traceID)
		return true
	}
	return false
}

func (n *Node) execReadAfter(p sim.Proc, after oplog.OpTime, fn func(v ReadView) (any, error)) (any, oplog.OpTime, error) {
	if n.Down() {
		return nil, oplog.Zero, ErrNodeDown
	}
	// Wait for causal prerequisite before consuming a CPU slot, as
	// MongoDB queues the operation until the node catches up.
	for n.LastApplied().Before(after) {
		if n.Down() {
			return nil, oplog.Zero, ErrNodeDown
		}
		n.applyGate.Wait(p)
	}
	res, err := n.execRead(p, fn)
	return res, n.LastApplied(), err
}

// ExecWriteTracked is ExecWrite that also returns the OpTime of the
// transaction's last committed operation (Zero for empty
// transactions) — the session's new causal token. The token is the
// transaction's own commit OpTime, exact even when other writers
// group-committed alongside it.
func (rs *ReplicaSet) ExecWriteTracked(p sim.Proc, fn func(tx WriteTxn) (any, error)) (any, oplog.OpTime, error) {
	n := rs.Primary()
	rs.net.Travel(p, rs.cfg.ClientZone, n.Zone)
	res, ts, err := n.execWrite(p, fn)
	rs.net.Travel(p, n.Zone, rs.cfg.ClientZone)
	return res, ts, err
}
