package cluster

import (
	"testing"
	"time"

	"decongestant/internal/obs/trace"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// TestMajorityWaitSpanCarriesBlockedOpTime asserts a traced w:majority
// write records the replication-wait span annotated with the OpTime it
// blocked on, with a duration reflecting the actual wait.
func TestMajorityWaitSpanCarriesBlockedOpTime(t *testing.T) {
	env := sim.NewEnv(41)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.ReplIdlePoll = 400 * time.Millisecond
	cfg.DisableTailWake = true
	rs := New(env, cfg)

	tctx := rs.Tracer().ForceTrace()
	var commit string
	env.Spawn("client", func(p sim.Proc) {
		_, ts, err := rs.ExecWriteConcernMeta(p, WMajority, ReadMeta{Ctx: tctx}, func(tx WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "maj", "v": 1})
		})
		if err != nil {
			t.Error(err)
			return
		}
		commit = ts.String()
	})
	env.Run(10 * time.Second)

	spans := rs.Tracer().TraceSpans(tctx.TraceID)
	var wait, exec *trace.Span
	for i := range spans {
		switch spans[i].Name {
		case "write.majority_wait":
			wait = &spans[i]
		case "node.exec_write":
			exec = &spans[i]
		}
	}
	if exec == nil {
		t.Fatalf("no node.exec_write span in %+v", spans)
	}
	if wait == nil {
		t.Fatalf("no write.majority_wait span in %+v", spans)
	}
	var blocked, w string
	for _, a := range wait.Attrs {
		switch a.K {
		case "blocked_on":
			blocked = a.V
		case "w":
			w = a.V
		}
	}
	if blocked != commit || blocked == "" {
		t.Fatalf("majority wait blocked_on %q, want commit %q", blocked, commit)
	}
	if w != "majority" {
		t.Fatalf("majority wait w=%q", w)
	}
	// The 400ms poll makes the wait macroscopic.
	if wait.Dur < 100*time.Millisecond {
		t.Fatalf("majority wait span duration %v suspiciously small under a 400ms poll", wait.Dur)
	}
}

// TestFreshnessAuditorFlagsExactlyLaggedReads injects replication lag
// (frozen pull loop) and checks the auditor end to end: the observed
// staleness matches the true primary/secondary gap, only the read whose
// promised bound the lag exceeds fires the violation counter, the
// violating trace is pinned, and primary reads are never audited.
func TestFreshnessAuditorFlagsExactlyLaggedReads(t *testing.T) {
	env := sim.NewEnv(42)
	defer env.Shutdown()
	cfg := fastConfig()
	cfg.ReplIdlePoll = time.Hour // replication frozen: secondaries stay at OpTime zero
	cfg.DisableTailWake = true
	rs := New(env, cfg)

	primary := rs.PrimaryID()
	secondary := (primary + 1) % cfg.Nodes

	violCtx := rs.Tracer().ForceTrace()
	okCtx := rs.Tracer().ForceTrace()
	var observed int64 = -1
	env.Spawn("client", func(p sim.Proc) {
		// Two writes 4 virtual seconds apart: the primary's applied
		// OpTime advances to second 4 while the frozen secondary stays
		// at zero, so true staleness is exactly 4 whole seconds.
		_, err := rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "a", "v": 1})
		})
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(4 * time.Second)
		if _, err = rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "b", "v": 2})
		}); err != nil {
			t.Error(err)
			return
		}
		wantLag := rs.Primary().LastApplied().LagSeconds(rs.Node(secondary).LastApplied())

		// Secondary read promising a 3s bound: 4s observed > 3s → flag.
		_, _, err = rs.ExecReadMeta(p, secondary, oplog.Zero, ReadMeta{Ctx: violCtx, BoundSecs: 3},
			func(v ReadView) (any, error) { return nil, nil })
		if err != nil {
			t.Error(err)
			return
		}
		observed = wantLag

		// Secondary read with a generous 10s bound: audited, not flagged.
		if _, _, err = rs.ExecReadMeta(p, secondary, oplog.Zero, ReadMeta{Ctx: okCtx, BoundSecs: 10},
			func(v ReadView) (any, error) { return nil, nil }); err != nil {
			t.Error(err)
			return
		}
		// Primary read with a tight bound: never audited.
		if _, _, err = rs.ExecReadMeta(p, primary, oplog.Zero, ReadMeta{BoundSecs: 1},
			func(v ReadView) (any, error) { return nil, nil }); err != nil {
			t.Error(err)
		}
	})
	env.Run(time.Minute)

	if observed != 4 {
		t.Fatalf("true primary/secondary lag %ds, want 4s", observed)
	}
	snap := rs.Metrics().Snapshot()
	if got := snap.CounterValue("freshness.bound_violations"); got != 1 {
		t.Fatalf("bound violations = %d, want exactly 1", got)
	}

	exemplars := rs.FreshnessExemplars()
	if len(exemplars) != 2 {
		t.Fatalf("got %d exemplars, want 2 (both secondary reads): %+v", len(exemplars), exemplars)
	}
	viol := exemplars[0]
	if !viol.Violation || viol.Trace != violCtx.TraceID || viol.BoundSecs != 3 || viol.ObservedSecs != 4 {
		t.Fatalf("violation exemplar wrong: %+v", viol)
	}
	if ok := exemplars[1]; ok.Violation || ok.Trace != okCtx.TraceID || ok.ObservedSecs != 4 {
		t.Fatalf("in-bound exemplar wrong: %+v", ok)
	}

	// The offending trace — and only it — is pinned against eviction.
	pinned := rs.Tracer().Pinned()
	if len(pinned) != 1 || pinned[0] != violCtx.TraceID {
		t.Fatalf("pinned traces %v, want exactly [%x]", pinned, violCtx.TraceID)
	}
	if spans := rs.Tracer().TraceSpans(violCtx.TraceID); len(spans) == 0 {
		t.Fatal("pinned violating trace has no retained spans")
	}
}
