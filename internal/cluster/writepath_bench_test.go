package cluster

// Benchmarks for the replicated write path on the real-time
// environment: how many writes per second the cluster sustains when the
// acknowledgement requires a majority of members to have applied the
// commit point, and how quickly a single client's w:majority write is
// acknowledged. Simulated service times and network RTTs are forced
// negative (a no-op Sleep) so the benchmarks isolate the engine's own
// commit, replication and wakeup machinery — oplog append, getMore
// servicing, batch apply, progress gossip and write-concern waiting.
//
// Run with:
//
//	go test ./internal/cluster -run '^$' -bench 'BenchmarkReplicatedWrites|BenchmarkMajorityAck' -benchtime 1s -count 3 -benchmem

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// benchWriteConfig is zeroCostConfig tuned for replication benchmarks:
// background noise (noops, checkpoints) is pushed out of the run, the
// oplog cap is small enough that steady-state truncation is part of
// what the benchmark measures, and the idle poll is tight so the
// pre-change engine is benchmarked at its best, not against a lazy
// 50 ms poll.
func benchWriteConfig(slots int) Config {
	cfg := zeroCostConfig(slots)
	cfg.ReplIdlePoll = time.Millisecond
	cfg.HeartbeatInterval = 5 * time.Millisecond
	cfg.NoopInterval = time.Hour
	cfg.CheckpointInterval = time.Hour
	cfg.OplogCap = 100_000
	return cfg
}

// benchWriteReplicaSet builds a real-time replica set preloaded with
// benchDocs small documents that the write benchmarks update in place.
func benchWriteReplicaSet(b *testing.B, slots int) (*sim.RealtimeEnv, *ReplicaSet) {
	b.Helper()
	env := sim.NewRealtimeEnv(1)
	rs := New(env, benchWriteConfig(slots))
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("bench")
		for i := 0; i < benchDocs; i++ {
			if err := c.Insert(storage.D{
				"_id": benchDocID(i),
				"val": int64(i),
				"pad": "abcdefghijklmnopqrstuvwxyz012345",
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return env, rs
}

// BenchmarkReplicatedWrites hammers the primary with concurrent
// w:majority updates — each operation is a full replication round
// trip: primary commit, oplog fetch by the secondaries, batch apply,
// progress report, and the write-concern wakeup. Sustained replicated
// writes/s is the headline PR 4 number.
func BenchmarkReplicatedWrites(b *testing.B) {
	env, rs := benchWriteReplicaSet(b, 8)
	defer env.Shutdown()
	var seed atomic.Int64
	b.SetParallelism(benchFanout)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := env.Adhoc("bench-repl-writer")
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			id := benchDocID(rng.Intn(benchDocs))
			v := rng.Int63()
			_, _, err := rs.ExecWriteConcern(p, WMajority, func(tx WriteTxn) (any, error) {
				return nil, tx.Set("bench", id, storage.D{"val": v})
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "writes/s")
}

// BenchmarkMajorityAck measures the latency of a single closed-loop
// client's w:majority write: with no concurrent load, acknowledgement
// time is dominated by how the secondaries learn of the new entry
// (idle-poll sleep vs. tail signal) and how the waiter learns of the
// majority (gossip-broadcast rescan vs. per-OpTime wakeup).
func BenchmarkMajorityAck(b *testing.B) {
	env, rs := benchWriteReplicaSet(b, 8)
	defer env.Shutdown()
	p := env.Adhoc("bench-ack-writer")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := benchDocID(i % benchDocs)
		v := int64(i)
		_, _, err := rs.ExecWriteConcern(p, WMajority, func(tx WriteTxn) (any, error) {
			return nil, tx.Set("bench", id, storage.D{"val": v})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "acks/s")
}
