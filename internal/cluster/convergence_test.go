package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// TestQuickEventualConsistency is the cluster's core safety property:
// for any random mix of inserts/sets/deletes from concurrent writers —
// including a node outage in the middle — once writes stop and
// replication drains, every node's store holds exactly the primary's
// data.
func TestQuickEventualConsistency(t *testing.T) {
	type script struct {
		Seed      int64
		Writers   uint8
		Ops       uint8
		DownWhile bool
	}
	f := func(sc script) bool {
		env := sim.NewEnv(sc.Seed)
		defer env.Shutdown()
		cfg := fastConfig()
		rs := New(env, cfg)
		writers := int(sc.Writers%4) + 1
		opsEach := int(sc.Ops%40) + 5
		for w := 0; w < writers; w++ {
			w := w
			env.Spawn("writer", func(p sim.Proc) {
				rng := rand.New(rand.NewSource(sc.Seed + int64(w)))
				for i := 0; i < opsEach; i++ {
					key := fmt.Sprintf("k%d", rng.Intn(30))
					switch rng.Intn(3) {
					case 0:
						rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
							return nil, tx.Set("kv", key, storage.D{"v": rng.Int63n(1000), "w": w})
						})
					case 1:
						rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
							return nil, tx.Delete("kv", key)
						})
					default:
						rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
							if _, ok := tx.FindByID("kv", key); ok {
								return nil, tx.Set("kv", key, storage.D{"touched": true})
							}
							return nil, tx.Set("kv", key, storage.D{"v": int64(i)})
						})
					}
					p.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
				}
			})
		}
		if sc.DownWhile {
			sec := rs.SecondaryIDs()[0]
			env.After(50*time.Millisecond, func() { rs.SetDown(sec, true) })
			env.After(300*time.Millisecond, func() { rs.SetDown(sec, false) })
		}
		env.Run(2 * time.Second)  // writers finish
		env.Run(20 * time.Second) // replication drains
		return nodesConverged(rs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// nodesConverged compares every node's kv collection against the
// primary's, document by document.
func nodesConverged(rs *ReplicaSet) bool {
	prim := rs.Primary()
	prim.mu.Lock()
	ref := map[string]storage.Document{}
	if c, ok := prim.store.Lookup("kv"); ok {
		c.ScanIDs(func(id string) bool {
			d, _ := c.FindByID(id)
			ref[id] = d
			return true
		})
	}
	prim.mu.Unlock()
	for _, id := range rs.SecondaryIDs() {
		n := rs.Node(id)
		n.mu.Lock()
		count := 0
		same := true
		if c, ok := n.store.Lookup("kv"); ok {
			c.ScanIDs(func(docID string) bool {
				d, _ := c.FindByID(docID)
				want, present := ref[docID]
				if !present || !storage.Equal(d, want) {
					same = false
					return false
				}
				count++
				return true
			})
		}
		n.mu.Unlock()
		if !same || count != len(ref) {
			return false
		}
	}
	return true
}

// TestChaosSecondaryOutageWithRouting: with one secondary flapping,
// clients using Read Preference secondary keep succeeding on the other
// secondary (server selection skips down nodes once the monitor
// refreshes) and overall progress continues.
func TestChaosSecondaryFlapDoesNotHaltReplication(t *testing.T) {
	env := sim.NewEnv(77)
	defer env.Shutdown()
	cfg := fastConfig()
	rs := New(env, cfg)
	flappy := rs.SecondaryIDs()[0]
	stable := rs.SecondaryIDs()[1]

	env.Spawn("writer", func(p sim.Proc) {
		for i := 0; ; i++ {
			rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
				return nil, tx.Set("kv", fmt.Sprintf("k%d", i%50), storage.D{"v": i})
			})
			p.Sleep(5 * time.Millisecond)
		}
	})
	env.Spawn("chaos", func(p sim.Proc) {
		for {
			p.Sleep(2 * time.Second)
			rs.SetDown(flappy, true)
			p.Sleep(time.Second)
			rs.SetDown(flappy, false)
		}
	})
	env.Run(20 * time.Second)
	if applied := rs.Node(stable).Stats().Applied; applied < 1000 {
		t.Fatalf("stable secondary applied only %d entries under chaos", applied)
	}
	if applied := rs.Node(flappy).Stats().Applied; applied == 0 {
		t.Fatal("flapping secondary never recovered")
	}
	// And it converges after the chaos stops.
	rs.SetDown(flappy, false)
	env.Run(40 * time.Second)
	lag := rs.Primary().LastApplied().LagSeconds(rs.Node(flappy).LastApplied())
	if lag > 2 {
		t.Fatalf("flapping secondary still %ds behind after recovery", lag)
	}
}
