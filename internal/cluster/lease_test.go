package cluster

// Tests for the lease subsystem of PR 9: leader leases, per-secondary
// read leases, clock-skew guard bands, the failover drain, and the
// stale-read audit. The deterministic tests pin each rejection reason
// and state transition; the realtime stress test at the bottom runs
// the whole protocol — concurrent linearizable readers, w:majority
// writers, injected clock skew, a flapping secondary and mid-run
// failovers — under the race detector and asserts the audit saw zero
// stale linearizable reads across every lease transfer.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decongestant/internal/obs"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func leaseConfig() Config {
	cfg := fastConfig()
	cfg.LinearizableLeases = true
	// Pin the derived knobs so the tests can reason about them without
	// re-deriving the withDefaults arithmetic.
	cfg.LeaseDuration = 4 * cfg.HeartbeatInterval
	cfg.LeaseGuardBand = cfg.LeaseDuration / 8
	return cfg
}

// TestLinearizableLeaseServesLocally: once heartbeats have granted
// leases, every member serves linearizable reads locally — secondaries
// from their read lease, the primary under its leader lease — without
// a majority round, and the audit records no violation.
func TestLinearizableLeaseServesLocally(t *testing.T) {
	env := sim.NewEnv(51)
	defer env.Shutdown()
	cfg := leaseConfig()
	rs := New(env, cfg)

	var vals []int64
	env.Spawn("client", func(p sim.Proc) {
		if _, _, err := rs.ExecWriteConcern(p, WMajority, func(tx WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "lin", "v": int64(7)})
		}); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(3 * cfg.HeartbeatInterval) // let grants ride a few heartbeats
		for id := 0; id < cfg.Nodes; id++ {
			res, _, err := rs.ExecReadLinearizable(p, id, func(v ReadView) (any, error) {
				d, ok := v.FindByID("kv", "lin")
				if !ok {
					return nil, fmt.Errorf("node %d: doc missing", id)
				}
				return d.Int("v"), nil
			})
			if err != nil {
				t.Errorf("node %d: %v", id, err)
				return
			}
			vals = append(vals, res.(int64))
		}
	})
	env.Run(30 * time.Second)

	if len(vals) != cfg.Nodes {
		t.Fatalf("served %d linearizable reads, want %d", len(vals), cfg.Nodes)
	}
	for i, v := range vals {
		if v != 7 {
			t.Fatalf("read %d saw v=%d, want 7", i, v)
		}
	}
	if ep := rs.LeaseEpoch(); ep != 1 {
		t.Fatalf("lease epoch %d, want 1", ep)
	}
	for id := 0; id < cfg.Nodes; id++ {
		if !rs.Leased(id) {
			t.Fatalf("node %d not leased after heartbeats", id)
		}
	}
	snap := rs.Metrics().Snapshot()
	if got := snap.CounterValue(obs.Name("lease.local_strong_reads", "role", "secondary")); got != uint64(cfg.Nodes-1) {
		t.Fatalf("secondary-local strong reads = %d, want %d", got, cfg.Nodes-1)
	}
	if got := snap.CounterValue(obs.Name("lease.local_strong_reads", "role", "primary")); got != 1 {
		t.Fatalf("primary-local strong reads = %d, want 1", got)
	}
	if got := snap.CounterValue("lease.audit_violations"); got != 0 {
		t.Fatalf("audit violations = %d, want 0", got)
	}
	if got := snap.CounterValue("lease.renewals"); got == 0 {
		t.Fatal("no lease renewals counted")
	}
}

// TestLinearizableDisabledRejectsSecondaries: with leases off a
// secondary rejects with the typed no-lease error (which LeaseReject
// classifies, including through a wire-style string flattening), and
// the primary still serves via the majority-confirm baseline.
func TestLinearizableDisabledRejectsSecondaries(t *testing.T) {
	env := sim.NewEnv(52)
	defer env.Shutdown()
	rs := New(env, fastConfig())

	var secErr error
	var primOK bool
	env.Spawn("client", func(p sim.Proc) {
		rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "x", "v": 1})
		})
		_, _, secErr = rs.ExecReadLinearizable(p, rs.SecondaryIDs()[0], func(v ReadView) (any, error) {
			return nil, nil
		})
		_, _, err := rs.ExecReadLinearizable(p, rs.PrimaryID(), func(v ReadView) (any, error) {
			_, ok := v.FindByID("kv", "x")
			return ok, nil
		})
		primOK = err == nil
	})
	env.Run(10 * time.Second)

	var le *LeaseError
	if !errors.As(secErr, &le) || le.Reason != LeaseReasonNoLease {
		t.Fatalf("secondary error %v, want typed no-lease rejection", secErr)
	}
	if reason, ok := LeaseReject(secErr); !ok || reason != LeaseReasonNoLease {
		t.Fatalf("LeaseReject(typed) = %q,%v", reason, ok)
	}
	// Wire responses flatten errors to strings; attribution must survive.
	flat := errors.New("server: " + secErr.Error())
	if reason, ok := LeaseReject(flat); !ok || reason != LeaseReasonNoLease {
		t.Fatalf("LeaseReject(flattened) = %q,%v", reason, ok)
	}
	if !primOK {
		t.Fatal("primary majority-confirm read failed with leases off")
	}
	if ep := rs.LeaseEpoch(); ep != 0 {
		t.Fatalf("lease epoch %d with leases off, want 0", ep)
	}
}

// TestLeaseExpiresWhenPrimaryPartitioned: when the primary stops
// heartbeating, read leases stop renewing and expire after the lease
// window — and the deposed leader's own lease decays by pure time, so
// neither side can serve linearizable reads into a partition.
func TestLeaseExpiresWhenPrimaryPartitioned(t *testing.T) {
	env := sim.NewEnv(53)
	defer env.Shutdown()
	cfg := leaseConfig()
	rs := New(env, cfg)
	primary := rs.PrimaryID()
	sec := rs.SecondaryIDs()[0]

	var before, after error
	env.Spawn("client", func(p sim.Proc) {
		p.Sleep(3 * cfg.HeartbeatInterval)
		_, _, before = rs.ExecReadLinearizable(p, sec, func(v ReadView) (any, error) { return nil, nil })
		rs.SetDown(primary, true)
		p.Sleep(cfg.LeaseDuration + cfg.HeartbeatInterval)
		_, _, after = rs.ExecReadLinearizable(p, sec, func(v ReadView) (any, error) { return nil, nil })
	})
	env.Run(30 * time.Second)

	if before != nil {
		t.Fatalf("pre-partition lease read failed: %v", before)
	}
	if reason, ok := LeaseReject(after); !ok || reason != LeaseReasonExpired {
		t.Fatalf("post-partition read error %v, want lease-expired rejection", after)
	}
	if rs.Leased(primary) {
		t.Fatal("partitioned primary still holds its leader lease after the window")
	}
	snap := rs.Metrics().Snapshot()
	if got := snap.CounterValue(obs.Name("lease.fallbacks", "reason", LeaseReasonExpired)); got == 0 {
		t.Fatal("lease-expired fallback not counted")
	}
}

// TestLeaseCommitPointGate: a secondary whose lastApplied has not
// reached its lease's commit point must reject — serving would allow a
// linearizable read older than a majority-acknowledged write.
func TestLeaseCommitPointGate(t *testing.T) {
	env := sim.NewEnv(54)
	defer env.Shutdown()
	cfg := leaseConfig()
	rs := New(env, cfg)
	sec := rs.SecondaryIDs()[0]

	var err error
	env.Spawn("client", func(p sim.Proc) {
		p.Sleep(3 * cfg.HeartbeatInterval)
		// Re-grant the secondary's lease with a commit point far ahead of
		// anything it has applied.
		rs.leases.grant(rs.PrimaryID(), sec, p.Now(), oplog.OpTime{Secs: 1 << 30, Inc: 1})
		_, _, err = rs.ExecReadLinearizable(p, sec, func(v ReadView) (any, error) { return nil, nil })
	})
	env.Run(10 * time.Second)

	if reason, ok := LeaseReject(err); !ok || reason != LeaseReasonCommitBehind {
		t.Fatalf("read error %v, want commit-point-behind rejection", err)
	}
	snap := rs.Metrics().Snapshot()
	if got := snap.CounterValue(obs.Name("lease.fallbacks", "reason", LeaseReasonCommitBehind)); got != 1 {
		t.Fatalf("commit-point-behind fallbacks = %d, want 1", got)
	}
}

// TestLeaseClockSkewGuardBand: a clock jump on the holder beyond the
// guard band invalidates its lease until the next renewal re-stamps it
// on the new clock; a jump the guard band absorbs does not. Renewals
// are stopped (primary downed) before the jump so the rejection is
// attributable to skew, not to a re-grant racing the assertion.
func TestLeaseClockSkewGuardBand(t *testing.T) {
	env := sim.NewEnv(55)
	defer env.Shutdown()
	cfg := leaseConfig()
	rs := New(env, cfg)
	sec := rs.SecondaryIDs()[0]

	var small, large error
	env.Spawn("client", func(p sim.Proc) {
		p.Sleep(3 * cfg.HeartbeatInterval)
		rs.SetDown(rs.PrimaryID(), true) // freeze renewals
		rs.SetClockSkew(sec, cfg.LeaseGuardBand/2)
		_, _, small = rs.ExecReadLinearizable(p, sec, func(v ReadView) (any, error) { return nil, nil })
		rs.SetClockSkew(sec, cfg.LeaseDuration)
		_, _, large = rs.ExecReadLinearizable(p, sec, func(v ReadView) (any, error) { return nil, nil })
	})
	env.Run(10 * time.Second)

	if small != nil {
		t.Fatalf("skew within the guard band rejected the lease: %v", small)
	}
	if reason, ok := LeaseReject(large); !ok || reason != LeaseReasonExpired {
		t.Fatalf("skew beyond the lease window returned %v, want lease-expired", large)
	}
}

// TestFailoverDrainsAndReissuesLeases: a failover bumps the lease
// epoch, waits out every old-regime lease before installing the new
// primary, and the new regime re-grants leases under the new epoch —
// with zero audit violations across the transfer.
func TestFailoverDrainsAndReissuesLeases(t *testing.T) {
	env := sim.NewEnv(56)
	defer env.Shutdown()
	cfg := leaseConfig()
	rs := New(env, cfg)
	oldPrimary := rs.PrimaryID()

	env.Spawn("client", func(p sim.Proc) {
		rs.ExecWrite(p, func(tx WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "f", "v": 1})
		})
		p.Sleep(3 * cfg.HeartbeatInterval)
	})
	env.Run(2 * time.Second)

	var failoverTook time.Duration
	env.Spawn("operator", func(p sim.Proc) {
		start := p.Now()
		rs.Failover(p)
		failoverTook = p.Now() - start
	})
	env.Run(30 * time.Second)

	if rs.PrimaryID() == oldPrimary {
		t.Fatal("failover did not move the primary")
	}
	if ep := rs.LeaseEpoch(); ep != 2 {
		t.Fatalf("lease epoch after failover = %d, want 2", ep)
	}
	// The drain must have cost at least the guard band (outstanding
	// leases plus the skew margin are waited out before promotion).
	if failoverTook < cfg.LeaseGuardBand {
		t.Fatalf("failover took %v, shorter than the guard band %v", failoverTook, cfg.LeaseGuardBand)
	}

	var served error
	env.Spawn("client2", func(p sim.Proc) {
		p.Sleep(3 * cfg.HeartbeatInterval) // new-epoch grants ride new heartbeats
		for id := 0; id < cfg.Nodes; id++ {
			if _, _, err := rs.ExecReadLinearizable(p, id, func(v ReadView) (any, error) {
				return nil, nil
			}); err != nil && served == nil {
				served = fmt.Errorf("node %d after failover: %w", id, err)
			}
		}
	})
	env.Run(10 * time.Second)
	if served != nil {
		t.Fatal(served)
	}
	snap := rs.Metrics().Snapshot()
	if got := snap.CounterValue("lease.audit_violations"); got != 0 {
		t.Fatalf("audit violations across failover = %d, want 0", got)
	}
	if got := snap.CounterValue("lease.expiries"); got == 0 {
		t.Fatal("failover retired no leases")
	}
}

// TestWMajorityWaitsForLeaseholders: a w:majority write may not be
// acknowledged while any live read lease could still serve a
// linearizable read missing it — the leaseholder barrier holds the ack
// until renewal, application, or expiry covers every leaseholder.
func TestWMajorityWaitsForLeaseholders(t *testing.T) {
	env := sim.NewEnv(57)
	defer env.Shutdown()
	cfg := leaseConfig()
	rs := New(env, cfg)

	var readAfterAck int64 = -1
	env.Spawn("client", func(p sim.Proc) {
		p.Sleep(3 * cfg.HeartbeatInterval)
		if _, _, err := rs.ExecWriteConcern(p, WMajority, func(tx WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "bar", "v": int64(42)})
		}); err != nil {
			t.Error(err)
			return
		}
		// The ack returned: every leaseholder's linearizable read must now
		// observe the write.
		for _, id := range rs.SecondaryIDs() {
			res, _, err := rs.ExecReadLinearizable(p, id, func(v ReadView) (any, error) {
				d, ok := v.FindByID("kv", "bar")
				if !ok {
					return int64(-1), nil
				}
				return d.Int("v"), nil
			})
			if err != nil {
				continue // a rejection falls back to the primary; not stale
			}
			readAfterAck = res.(int64)
			if readAfterAck != 42 {
				return
			}
		}
	})
	env.Run(30 * time.Second)
	if readAfterAck != 42 && readAfterAck != -1 {
		t.Fatalf("leased secondary served %d after w:majority ack, want 42", readAfterAck)
	}
	if readAfterAck == -1 {
		t.Skip("no secondary lease was valid at read time (all fell back); barrier untestable this run")
	}
}

// TestRealtimeLinearizableLeaseAudit is the acceptance scenario: a
// 5-member realtime replica set under the race detector with
// concurrent w:majority writers, linearizable readers on every member,
// injected clock skew (inside the guard band), a flapping secondary
// (injected lag) and mid-run failovers. Every successful linearizable
// read must observe at least the last acknowledged write (real-time
// ordering), and the lease audit must record zero stale reads across
// every lease transfer.
func TestRealtimeLinearizableLeaseAudit(t *testing.T) {
	env := sim.NewRealtimeEnv(58)
	defer env.Shutdown()
	cfg := zeroCostConfig(8)
	cfg.Nodes = 5
	cfg.ReplIdlePoll = time.Millisecond
	cfg.HeartbeatInterval = 5 * time.Millisecond
	cfg.LinearizableLeases = true
	cfg.LeaseDuration = 20 * time.Millisecond
	cfg.LeaseGuardBand = 2 * time.Millisecond
	rs := New(env, cfg)
	if err := rs.Bootstrap(func(s *storage.Store) error {
		return s.C("acct").Insert(storage.D{"_id": "bal", "v": int64(0)})
	}); err != nil {
		t.Fatal(err)
	}

	const iters = 150
	var lastAcked atomic.Int64
	var localReads, fellBack atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writer: w:majority increments; the acknowledged value is the
	// linearizability floor every subsequent read must observe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := env.Adhoc("lease/writer")
		for i := 1; i <= iters; i++ {
			want := int64(i)
			_, _, err := rs.ExecWriteConcern(p, WMajority, func(tx WriteTxn) (any, error) {
				return nil, tx.Set("acct", "bal", storage.D{"v": want})
			})
			if err != nil {
				// Failover and flapper races: the write was not
				// acknowledged, so the floor does not advance.
				if errors.Is(err, ErrNotPrimary) || errors.Is(err, ErrNodeDown) {
					continue
				}
				fail(err)
				return
			}
			lastAcked.Store(want)
		}
	}()

	// Readers: linearizable reads on random members, driver-style
	// primary fallback on rejection. The floor is loaded BEFORE the
	// read starts, so real-time ordering demands the read observe it.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			p := env.Adhoc(fmt.Sprintf("lease/reader-%d", idx))
			rng := rand.New(rand.NewSource(int64(idx)))
			body := func(v ReadView) (any, error) {
				d, ok := v.FindByID("acct", "bal")
				if !ok {
					return int64(-1), nil
				}
				return d.Int("v"), nil
			}
			for i := 0; i < iters; i++ {
				floor := lastAcked.Load()
				node := rng.Intn(cfg.Nodes)
				res, _, err := rs.ExecReadLinearizable(p, node, body)
				if err != nil {
					if _, lease := LeaseReject(err); !lease && !errors.Is(err, ErrNodeDown) {
						fail(err)
						return
					}
					fellBack.Add(1)
					if res, _, err = rs.ExecReadLinearizable(p, rs.PrimaryID(), body); err != nil {
						continue // failover race; next iteration
					}
				} else if node != rs.PrimaryID() {
					localReads.Add(1)
				}
				if got := res.(int64); got < floor {
					fail(fmt.Errorf("stale linearizable read: node %d saw %d, floor %d", node, got, floor))
					return
				}
			}
		}(r)
	}

	// Clock-skew injector: jitter every node's clock inside the guard
	// band — the protocol must absorb it without a single stale read.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 40; i++ {
			node := rng.Intn(cfg.Nodes)
			skew := time.Duration(rng.Int63n(int64(cfg.LeaseGuardBand / 2)))
			if rng.Intn(2) == 0 {
				skew = -skew
			}
			rs.SetClockSkew(node, skew)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Lag injector: flap one secondary so its lease lapses and its
	// rejoin exercises the commit-point gate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := env.Adhoc("lease/flapper")
		_ = p
		for i := 0; i < 3; i++ {
			time.Sleep(15 * time.Millisecond)
			ids := rs.SecondaryIDs()
			id := ids[i%len(ids)]
			rs.SetDown(id, true)
			time.Sleep(25 * time.Millisecond)
			rs.SetDown(id, false)
		}
	}()

	// Failovers mid-run: each transfer must drain the old lease regime
	// before the new epoch grants.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := env.Adhoc("lease/failover")
		for i := 0; i < 2; i++ {
			time.Sleep(40 * time.Millisecond)
			rs.Failover(p)
		}
	}()

	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	snap := rs.Metrics().Snapshot()
	if got := snap.CounterValue("lease.audit_violations"); got != 0 {
		t.Fatalf("lease audit violations = %d, want 0 (exemplars: %+v)", got, rs.LeaseExemplars())
	}
	for _, ex := range rs.LeaseExemplars() {
		if ex.Violation {
			t.Fatalf("violating exemplar retained: %+v", ex)
		}
	}
	if localReads.Load() == 0 {
		t.Fatal("no linearizable read was ever served locally by a secondary")
	}
	if ep := rs.LeaseEpoch(); ep != 3 {
		t.Fatalf("lease epoch after two failovers = %d, want 3", ep)
	}
	t.Logf("local secondary reads=%d fallbacks=%d renewals=%d expiries=%d",
		localReads.Load(), fellBack.Load(),
		snap.CounterValue("lease.renewals"), snap.CounterValue("lease.expiries"))
}
