package wire

import (
	"bufio"
	"errors"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/obs"
	"decongestant/internal/obs/trace"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// Client is a network connection to a wire server implementing
// driver.Conn, so driver.Client, the Read Balancer and the Router run
// against a remote replica set exactly as they do in-process.
//
// All callers share one multiplexed TCP connection: requests are
// pipelined onto the socket and a demux goroutine matches responses
// back to callers by request id, so concurrent operations keep many
// requests in flight without a connection per caller.
//
// Dial negotiates protocol v2 (binary bodies, BSON-lite documents) and
// falls back to v1 JSON when the server predates the handshake;
// DialJSON forces v1 for debugging and comparative benchmarks.
type Client struct {
	addr    string
	maxVer  byte
	nextID  atomic.Uint64
	topoTTL time.Duration

	// tracer records client-side spans (the driver and exec hops run in
	// this process; the server only sees the wire ops). Sampling starts
	// off; SetTraceSampling arms it. PushTraces ships recorded spans to
	// the server so trace exports show the whole tree.
	tracer *trace.Recorder

	mu     sync.Mutex
	conn   *muxConn
	topo   Topology
	topoAt time.Time
	closed bool
}

// muxConn is one multiplexed connection. Senders write frames through
// a shared buffered writer that is flushed by the last sender in a
// burst (flush-on-idle); the demux loop reads response frames and
// delivers each to the caller registered under its id.
type muxConn struct {
	c      net.Conn
	binary bool // negotiated protocol ≥ V2
	wmu    sync.Mutex
	bw     *bufio.Writer
	queued atomic.Int32 // senders in or waiting for send(); last one out flushes

	pmu     sync.Mutex
	pending map[uint64]chan *Response
	err     error // set once the connection dies; sticky
}

// send writes one frame. Flushing is deferred to the last queued
// sender, so a burst of concurrent requests coalesces into one
// syscall instead of one per frame. Binary frames are staged in a
// pooled buffer (header and body in one slice, so the write is a
// single copy into the shared writer).
func (mc *muxConn) send(req *Request) error {
	if !mc.binary {
		mc.queued.Add(1)
		mc.wmu.Lock()
		defer mc.wmu.Unlock()
		err := WriteFrame(mc.bw, req)
		if mc.queued.Add(-1) == 0 && err == nil {
			err = mc.bw.Flush()
		}
		return err
	}
	p := getBuf()
	buf, err := encodeRequest(beginFrame((*p)[:0]), req)
	if err == nil {
		err = finishFrame(buf, 0)
	}
	if err != nil {
		putBuf(p)
		return err
	}
	*p = buf
	mc.queued.Add(1)
	mc.wmu.Lock()
	_, werr := mc.bw.Write(buf)
	if mc.queued.Add(-1) == 0 && werr == nil {
		werr = mc.bw.Flush()
	}
	mc.wmu.Unlock()
	putBuf(p)
	return werr
}

// register files a response channel for a request id.
func (mc *muxConn) register(id uint64) (chan *Response, error) {
	mc.pmu.Lock()
	defer mc.pmu.Unlock()
	if mc.err != nil {
		return nil, mc.err
	}
	ch := make(chan *Response, 1)
	mc.pending[id] = ch
	return ch, nil
}

// demux delivers response frames to their registered callers until the
// connection dies, then fails every outstanding caller. Frames are
// read into a per-connection reused buffer; decoding copies what it
// keeps, so the buffer never escapes a loop iteration.
func (mc *muxConn) demux() {
	fr := &frameReader{r: bufio.NewReader(mc.c)}
	for {
		body, err := fr.next()
		if err != nil {
			mc.fail(err)
			return
		}
		resp := &Response{}
		if mc.binary {
			err = decodeResponse(body, resp)
		} else {
			err = decodeJSONBody(body, resp)
		}
		if err != nil {
			mc.fail(err)
			return
		}
		mc.pmu.Lock()
		ch, ok := mc.pending[resp.ID]
		delete(mc.pending, resp.ID)
		mc.pmu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// fail marks the connection dead and wakes all waiting callers (their
// channels close without a response).
func (mc *muxConn) fail(err error) {
	mc.c.Close()
	mc.pmu.Lock()
	if mc.err == nil {
		mc.err = err
	}
	for id, ch := range mc.pending {
		delete(mc.pending, id)
		close(ch)
	}
	mc.pmu.Unlock()
}

// failure returns the sticky connection error.
func (mc *muxConn) failure() error {
	mc.pmu.Lock()
	defer mc.pmu.Unlock()
	if mc.err == nil {
		return errors.New("wire: connection closed")
	}
	return mc.err
}

// broken reports whether the connection has died.
func (mc *muxConn) broken() bool {
	mc.pmu.Lock()
	defer mc.pmu.Unlock()
	return mc.err != nil
}

// Statically assert Client satisfies the driver's connection
// interfaces, including the causal-session capability.
var (
	_ driver.Conn             = (*Client)(nil)
	_ driver.CausalConn       = (*Client)(nil)
	_ driver.TracedConn       = (*Client)(nil)
	_ driver.TraceProvider    = (*Client)(nil)
	_ driver.OplogTailer      = (*Client)(nil)
	_ driver.LinearizableConn = (*Client)(nil)
	_ driver.FreshConn        = (*Client)(nil)
)

// Dial connects to a wire server and fetches the initial topology.
// The connection negotiates the binary protocol (v2) and falls back
// to v1 JSON against servers that predate the handshake.
func Dial(addr string) (*Client, error) {
	return dial(addr, V2)
}

// DialJSON connects speaking only protocol v1 (JSON bodies). Intended
// for debug tooling and comparative benchmarks; the JSON codec is
// otherwise a compatibility fallback.
func DialJSON(addr string) (*Client, error) {
	return dial(addr, V1)
}

func dial(addr string, maxVer byte) (*Client, error) {
	cl := &Client{
		addr: addr, maxVer: maxVer, topoTTL: 5 * time.Second,
		tracer: trace.NewRecorder(rand.New(rand.NewSource(time.Now().UnixNano())), trace.Config{}),
	}
	if err := cl.refreshTopology(); err != nil {
		return nil, err
	}
	return cl, nil
}

// Tracer exposes the client-side span recorder; driver.Client adopts
// it via driver.TraceProvider so one recorder holds a process's spans.
func (cl *Client) Tracer() *trace.Recorder { return cl.tracer }

// SetTraceSampling sets the probabilistic sampling rate in [0,1] for
// operations originated through this client. 0 (the default) turns
// tracing off; its cost is then one atomic load per operation.
func (cl *Client) SetTraceSampling(rate float64) { cl.tracer.SetSampling(rate) }

// Version reports the negotiated protocol version of the live shared
// connection, dialing one if needed.
func (cl *Client) Version() (int, error) {
	mc, err := cl.getMux()
	if err != nil {
		return 0, err
	}
	if mc.binary {
		return V2, nil
	}
	return V1, nil
}

// Close shuts the shared connection; outstanding callers fail.
func (cl *Client) Close() {
	cl.mu.Lock()
	cl.closed = true
	mc := cl.conn
	cl.conn = nil
	cl.mu.Unlock()
	if mc != nil {
		mc.fail(errors.New("wire: client closed"))
	}
}

// getMux returns the live shared connection, dialing a fresh one if
// none exists or the previous one died.
func (cl *Client) getMux() (*muxConn, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil, errors.New("wire: client closed")
	}
	if cl.conn != nil && !cl.conn.broken() {
		return cl.conn, nil
	}
	mc, err := cl.dialMux()
	if err != nil {
		return nil, err
	}
	cl.conn = mc
	return mc, nil
}

// dialMux dials and, when the client speaks v2, runs the version
// handshake. A server that predates the handshake reads the hello
// magic as an oversized frame length and drops the connection — the
// client takes any handshake failure as that signal and redials in
// plain JSON mode, so new clients interoperate with old servers.
func (cl *Client) dialMux() (*muxConn, error) {
	c, err := net.Dial("tcp", cl.addr)
	if err != nil {
		return nil, err
	}
	ver := byte(V1)
	if cl.maxVer >= V2 {
		ver, err = clientHandshake(c, cl.maxVer)
		if err != nil {
			c.Close()
			if c, err = net.Dial("tcp", cl.addr); err != nil {
				return nil, err
			}
			ver = V1
		}
	}
	mc := &muxConn{
		c: c, binary: ver >= V2,
		bw:      bufio.NewWriter(c),
		pending: map[uint64]chan *Response{},
	}
	go mc.demux()
	return mc, nil
}

func clientHandshake(c net.Conn, maxVer byte) (byte, error) {
	if err := writeHello(c, maxVer); err != nil {
		return 0, err
	}
	return readHelloReply(c)
}

// roundTrip pipelines one request onto the shared connection and
// waits for the response with its id.
func (cl *Client) roundTrip(req *Request) (*Response, error) {
	req.ID = cl.nextID.Add(1)
	mc, err := cl.getMux()
	if err != nil {
		return nil, err
	}
	ch, err := mc.register(req.ID)
	if err != nil {
		return nil, err
	}
	if err := mc.send(req); err != nil {
		mc.fail(err)
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, mc.failure()
	}
	if resp.Err != "" {
		return resp, &Error{Code: resp.Code, Msg: resp.Err}
	}
	return resp, nil
}

func (cl *Client) refreshTopology() error {
	resp, err := cl.roundTrip(&Request{Op: OpTopology})
	if err != nil {
		return err
	}
	if resp.Topo == nil {
		return errors.New("wire: empty topology")
	}
	cl.mu.Lock()
	cl.topo = *resp.Topo
	cl.topoAt = time.Now()
	cl.mu.Unlock()
	return nil
}

func (cl *Client) topology() Topology {
	cl.mu.Lock()
	fresh := time.Since(cl.topoAt) < cl.topoTTL
	topo := cl.topo
	cl.mu.Unlock()
	if !fresh {
		if err := cl.refreshTopology(); err == nil {
			cl.mu.Lock()
			topo = cl.topo
			cl.mu.Unlock()
		}
	}
	return topo
}

// NodeIDs implements driver.Conn.
func (cl *Client) NodeIDs() []int {
	topo := cl.topology()
	ids := make([]int, len(topo.Zones))
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// PrimaryID implements driver.Conn.
func (cl *Client) PrimaryID() int { return cl.topology().Primary }

// Zone implements driver.Conn.
func (cl *Client) Zone(id int) string {
	topo := cl.topology()
	if id < 0 || id >= len(topo.Zones) {
		return ""
	}
	return topo.Zones[id]
}

// Ping implements driver.Conn: one protocol round trip, timed. A
// failed probe — the node is down, or the server is unreachable —
// returns a negative duration so callers skip the sample instead of
// folding an error path's timing into their RTT estimates.
func (cl *Client) Ping(p sim.Proc, nodeID int) time.Duration {
	start := time.Now()
	if _, err := cl.roundTrip(&Request{Op: OpPing, Node: nodeID}); err != nil {
		return -1
	}
	return time.Since(start)
}

// FetchMetrics retrieves the server's observability snapshot — the
// cluster registry merged with every pushed client snapshot.
func (cl *Client) FetchMetrics() (obs.Snapshot, error) {
	resp, err := cl.roundTrip(&Request{Op: OpMetrics})
	if err != nil {
		return obs.Snapshot{}, err
	}
	if resp.Metrics == nil {
		return obs.Snapshot{}, errors.New("wire: empty metrics response")
	}
	return *resp.Metrics, nil
}

// PushMetrics uploads a client-side snapshot under the given source
// name; the server namespaces it as "<source>." and folds it into
// subsequent metrics responses. Push repeatedly to keep it current.
func (cl *Client) PushMetrics(source string, snap obs.Snapshot) error {
	_, err := cl.roundTrip(&Request{Op: OpMetricsPush, Source: source, Snapshot: &snap})
	return err
}

// FetchTrace retrieves every span the server holds for one trace id —
// ring-resident spans plus pinned copies (freshness-bound violators
// survive ring eviction).
func (cl *Client) FetchTrace(id uint64) ([]trace.Span, error) {
	resp, err := cl.roundTrip(&Request{Op: OpTrace, DocID: trace.IDString(id)})
	if err != nil {
		return nil, err
	}
	return resp.Spans, nil
}

// RecentSpans retrieves the server's most recent spans, newest first.
// limit <= 0 takes the server default (256); the server caps it.
func (cl *Client) RecentSpans(limit int) ([]trace.Span, error) {
	resp, err := cl.roundTrip(&Request{Op: OpTrace, Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.Spans, nil
}

// CurrentOp retrieves the requests currently in dispatch server-side,
// longest running first — MongoDB's currentOp. Empty unless the server
// was configured with CurrentOp.
func (cl *Client) CurrentOp() ([]trace.OpInfo, error) {
	resp, err := cl.roundTrip(&Request{Op: OpCurrentOp})
	if err != nil {
		return nil, err
	}
	return resp.Ops, nil
}

// PushTraces drains the client recorder's spans and ships them to the
// server, which imports them into its own rings — after this, a trace
// export shows the full driver → server → node tree. Call it the way
// PushMetrics is called: periodically, or once after a workload.
func (cl *Client) PushTraces() error {
	spans := cl.tracer.Drain()
	if len(spans) == 0 {
		return nil
	}
	_, err := cl.roundTrip(&Request{Op: OpTracePush, Spans: spans})
	return err
}

// ListShards retrieves a mongos's shard roster. Replica-set servers
// reject the op.
func (cl *Client) ListShards() ([]ShardInfo, error) {
	resp, err := cl.roundTrip(&Request{Op: OpListShards})
	if err != nil {
		return nil, err
	}
	return resp.Shards, nil
}

// ChunkMap retrieves a mongos's versioned chunk routing table. Nil
// with no error means the deployment is hash-sharded (no chunk
// metadata to serve).
func (cl *Client) ChunkMap() (*ChunkMapBody, error) {
	resp, err := cl.roundTrip(&Request{Op: OpChunkMap})
	if err != nil {
		return nil, err
	}
	return resp.Chunks, nil
}

// MoveChunk asks a mongos to live-migrate the chunk owning key to the
// given shard. It returns when the hand-off has committed.
func (cl *Client) MoveChunk(key string, toShard int) error {
	_, err := cl.roundTrip(&Request{Op: OpMoveChunk, DocID: key, Node: toShard})
	return err
}

// OplogTail implements driver.OplogTailer over the wire: scan the
// primary's oplog after the given OpTime. The returned OpTimes are the
// primary's lastApplied and the log's truncation horizon.
func (cl *Client) OplogTail(p sim.Proc, after oplog.OpTime, max int) ([]oplog.DecodedEntry, oplog.OpTime, oplog.OpTime, error) {
	resp, err := cl.roundTrip(&Request{Op: OpOplogTail, AfterSecs: after.Secs, AfterInc: after.Inc, Limit: max})
	if err != nil {
		return nil, oplog.Zero, oplog.Zero, err
	}
	entries := make([]oplog.DecodedEntry, 0, len(resp.Entries))
	for i := range resp.Entries {
		eb := &resp.Entries[i]
		doc, derr := eb.document()
		if derr != nil {
			return nil, oplog.Zero, oplog.Zero, derr
		}
		var kind oplog.Kind
		switch eb.Kind {
		case "insert":
			kind = oplog.KindInsert
		case "set":
			kind = oplog.KindSet
		case "delete":
			kind = oplog.KindDelete
		case "noop":
			kind = oplog.KindNoop
		default:
			return nil, oplog.Zero, oplog.Zero, errors.New("wire: unknown oplog entry kind " + eb.Kind)
		}
		entries = append(entries, oplog.DecodedEntry{
			Entry: oplog.Entry{
				TS:         oplog.OpTime{Secs: eb.Secs, Inc: eb.Inc},
				Kind:       kind,
				Collection: eb.Collection,
				DocID:      eb.DocID,
			},
			Doc: doc,
		})
	}
	return entries, optimeFrom(resp.OpSecs, resp.OpInc), optimeFrom(resp.TruncSecs, resp.TruncInc), nil
}

// ServerStatus implements driver.Conn.
func (cl *Client) ServerStatus(p sim.Proc, nodeID int) cluster.Status {
	resp, err := cl.roundTrip(&Request{Op: OpStatus, Node: nodeID})
	if err != nil || resp.Status == nil {
		return cluster.Status{From: nodeID}
	}
	st := cluster.Status{
		From: resp.Status.From, Primary: resp.Status.Primary,
		LeaseEpoch: resp.Status.LeaseEpoch,
	}
	for _, m := range resp.Status.Members {
		st.Members = append(st.Members, cluster.MemberStatus{
			ID: m.ID, Primary: m.Primary,
			Applied: optimeFrom(m.Secs, m.Inc),
			Leased:  m.Leased,
		})
	}
	return st
}

// ExecRead implements driver.Conn: the body runs locally against a
// remote view whose every method is one network round trip to the
// chosen node. This path is deliberately untraced — the body is small
// enough to inline, which keeps the view off the heap, and the
// sampling-off hot path must cost zero extra allocations (the
// bench-pr7 gate). Sampled reads arrive through ExecReadMeta: the
// driver flips the coin per read, and direct callers who want traces
// originate one with Tracer().StartTrace() or ForceTrace() and call
// ExecReadMeta themselves.
func (cl *Client) ExecRead(p sim.Proc, nodeID int, fn func(v cluster.ReadView) (any, error)) (any, error) {
	view := &remoteReadView{cl: cl, node: nodeID}
	res, err := fn(view)
	if err != nil {
		return nil, err
	}
	return res, view.err
}

// ExecWrite implements driver.Conn: reads inside the body are round
// trips to the primary; mutations are buffered and committed with one
// write_batch request.
func (cl *Client) ExecWrite(p sim.Proc, fn func(tx cluster.WriteTxn) (any, error)) (any, error) {
	res, _, err := cl.ExecWriteTracked(p, fn)
	return res, err
}

// ExecReadAfter implements driver.CausalConn: every op of the body
// carries the afterClusterTime prerequisite; the returned OpTime is
// the highest node-applied time observed across the body's ops. Like
// ExecRead it is untraced and inlinable; traced causal reads go
// through ExecReadMeta.
func (cl *Client) ExecReadAfter(p sim.Proc, nodeID int, after oplog.OpTime, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, error) {
	view := &remoteReadView{cl: cl, node: nodeID, after: after}
	res, err := fn(view)
	if err != nil {
		return nil, oplog.Zero, err
	}
	return res, view.seen, view.err
}

// ExecReadMeta implements driver.TracedConn: the trace context and
// declared staleness bound ride on every round trip of the body, and a
// client.exec_read span wraps the body so the gap between it and the
// server's admission span is attributable wire time. The span ids are
// rewritten so server-side spans parent under the client hop.
func (cl *Client) ExecReadMeta(p sim.Proc, nodeID int, after oplog.OpTime, meta cluster.ReadMeta, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, error) {
	view := &remoteReadView{cl: cl, node: nodeID, after: after, bound: meta.BoundSecs}
	live := meta.Ctx.Live()
	var spanID uint64
	var start time.Duration
	if live {
		spanID = cl.tracer.NewSpanID()
		tctx := meta.Ctx
		tctx.SpanID = spanID
		view.trace = &tctx
		start = tnow(p)
	}
	res, err := fn(view)
	if live {
		cl.tracer.Record(trace.Span{
			Trace:  meta.Ctx.TraceID,
			ID:     spanID,
			Parent: meta.Ctx.SpanID,
			Name:   "client.exec_read",
			Node:   -1,
			Start:  start,
			Dur:    tnow(p) - start,
			Attrs:  []trace.Attr{{K: "node", V: strconv.Itoa(nodeID)}},
		})
	}
	if err != nil {
		return nil, oplog.Zero, err
	}
	return res, view.seen, view.err
}

// ExecReadFreshMeta implements driver.FreshConn: like ExecReadMeta,
// but every round trip of the body requests the serving node's
// observed staleness (Request.WantFresh → Response.StaleSecs) and the
// worst value across the body's ops comes back as the third result —
// the driver stamps cache fills with it so the freshness-priced
// validity rule prices entries by what the node actually observed.
// Unrequested, the tag costs zero wire bytes, so plain reads are
// byte-identical.
func (cl *Client) ExecReadFreshMeta(p sim.Proc, nodeID int, after oplog.OpTime, meta cluster.ReadMeta, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, int64, error) {
	view := &remoteReadView{cl: cl, node: nodeID, after: after, bound: meta.BoundSecs, wantFresh: true}
	live := meta.Ctx.Live()
	var spanID uint64
	var start time.Duration
	if live {
		spanID = cl.tracer.NewSpanID()
		tctx := meta.Ctx
		tctx.SpanID = spanID
		view.trace = &tctx
		start = tnow(p)
	}
	res, err := fn(view)
	if live {
		cl.tracer.Record(trace.Span{
			Trace:  meta.Ctx.TraceID,
			ID:     spanID,
			Parent: meta.Ctx.SpanID,
			Name:   "client.exec_read",
			Node:   -1,
			Start:  start,
			Dur:    tnow(p) - start,
			Attrs:  []trace.Attr{{K: "node", V: strconv.Itoa(nodeID)}},
		})
	}
	if err != nil {
		return nil, oplog.Zero, 0, err
	}
	return res, view.seen, view.stale, view.err
}

// ExecReadLinearizableMeta implements driver.LinearizableConn: every
// round trip of the body carries read concern linearizable, so the
// serving node answers under the lease protocol (primary leader lease,
// secondary read lease, majority-confirm otherwise) and rejects with
// CodeNotLeased when it cannot — the driver maps that back through
// cluster.LeaseReject and retries at the primary. The causal
// prerequisite and trace context ride along exactly as in ExecReadMeta.
func (cl *Client) ExecReadLinearizableMeta(p sim.Proc, nodeID int, after oplog.OpTime, meta cluster.ReadMeta, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, error) {
	view := &remoteReadView{cl: cl, node: nodeID, after: after, bound: meta.BoundSecs, rc: RCLinearizable}
	live := meta.Ctx.Live()
	var spanID uint64
	var start time.Duration
	if live {
		spanID = cl.tracer.NewSpanID()
		tctx := meta.Ctx
		tctx.SpanID = spanID
		view.trace = &tctx
		start = tnow(p)
	}
	res, err := fn(view)
	if live {
		cl.tracer.Record(trace.Span{
			Trace:  meta.Ctx.TraceID,
			ID:     spanID,
			Parent: meta.Ctx.SpanID,
			Name:   "client.exec_read",
			Node:   -1,
			Start:  start,
			Dur:    tnow(p) - start,
			Attrs: []trace.Attr{
				{K: "node", V: strconv.Itoa(nodeID)},
				{K: "rc", V: "linearizable"},
			},
		})
	}
	if err != nil {
		return nil, oplog.Zero, err
	}
	return res, view.seen, view.err
}

// tnow reads the span clock: the proc's when the caller runs under an
// environment, the process-epoch clock when it does not (benchmarks
// and plain goroutines pass a nil proc).
func tnow(p sim.Proc) time.Duration {
	if p != nil {
		return p.Now()
	}
	return trace.Now()
}

// ExecWriteTracked implements driver.CausalConn: the write batch's
// commit OpTime comes back in the response. The client originates the
// trace here; a sampled write's batch request carries the context so
// the server's dispatch and primary-exec spans link into it.
func (cl *Client) ExecWriteTracked(p sim.Proc, fn func(tx cluster.WriteTxn) (any, error)) (any, oplog.OpTime, error) {
	tctx := cl.tracer.StartTrace()
	tx := &remoteWriteTxn{remoteReadView: remoteReadView{cl: cl, node: cl.PrimaryID()}}
	live := tctx.Live()
	var spanID uint64
	var start time.Duration
	if live {
		spanID = cl.tracer.NewSpanID()
		child := tctx
		child.SpanID = spanID
		tx.trace = &child
		start = tnow(p)
	}
	res, err := fn(tx)
	if err != nil {
		return nil, oplog.Zero, err
	}
	if tx.err != nil {
		return nil, oplog.Zero, tx.err
	}
	var commit oplog.OpTime
	if len(tx.muts) > 0 {
		req := &Request{Op: OpWriteBatch, Muts: tx.muts, Trace: tx.trace}
		resp, err := cl.roundTrip(req)
		if err != nil {
			return nil, oplog.Zero, err
		}
		commit = oplog.OpTime{Secs: resp.OpSecs, Inc: resp.OpInc}
	}
	if live {
		cl.tracer.Record(trace.Span{
			Trace: tctx.TraceID,
			ID:    spanID,
			Name:  "client.exec_write",
			Node:  -1,
			Start: start,
			Dur:   tnow(p) - start,
			Attrs: []trace.Attr{{K: "optime", V: commit.String()}},
		})
	}
	return res, commit, nil
}

// remoteReadView implements cluster.ReadView over the wire. Errors are
// sticky: the first failed round trip poisons the view, and ExecRead
// surfaces it. When `after` is non-zero every op carries the causal
// prerequisite, and `seen` accumulates the highest node OpTime
// returned.
type remoteReadView struct {
	cl    *Client
	node  int
	err   error
	after oplog.OpTime
	seen  oplog.OpTime

	// trace rides on every request of the body (nil when untraced).
	// It deliberately does NOT point into the view: a &view.field
	// stored into a Request would make every view escape to the heap,
	// costing the untraced fast path an allocation per read. bound is
	// the declared staleness bound the server's freshness auditor
	// checks secondary reads against.
	trace *trace.Context
	bound int64
	// rc is the read concern every op of the body carries (0 = local;
	// zero wire bytes on both codecs).
	rc int
	// wantFresh asks each op for the node's observed staleness; stale
	// accumulates the worst value seen — the cache fill's price.
	wantFresh bool
	stale     int64
}

// observe folds a response's node OpTime into the view's causal token
// and, for freshness-priced reads, the worst observed staleness.
func (v *remoteReadView) observe(resp *Response) {
	ts := oplog.OpTime{Secs: resp.OpSecs, Inc: resp.OpInc}
	if v.seen.Before(ts) {
		v.seen = ts
	}
	if resp.StaleSecs > v.stale {
		v.stale = resp.StaleSecs
	}
}

// request builds the base request with the causal prerequisite, the
// trace context (only when live — an absent context is zero bytes on
// the v2 wire) and the audited staleness bound.
func (v *remoteReadView) request(op string) *Request {
	return &Request{
		Op: op, Node: v.node, AfterSecs: v.after.Secs, AfterInc: v.after.Inc,
		BoundSecs: v.bound, Trace: v.trace, ReadConcern: v.rc, WantFresh: v.wantFresh,
	}
}

func (v *remoteReadView) fail(err error) {
	if v.err == nil && err != nil {
		v.err = err
	}
}

func (v *remoteReadView) FindByID(collection, id string) (storage.Document, bool) {
	req := v.request(OpFindByID)
	req.Collection, req.DocID = collection, id
	resp, err := v.cl.roundTrip(req)
	if err != nil {
		v.fail(err)
		return nil, false
	}
	v.observe(resp)
	if !resp.Found {
		return nil, false
	}
	doc, err := resp.document()
	if err != nil {
		v.fail(err)
		return nil, false
	}
	return doc, true
}

func (v *remoteReadView) FindManyByID(collection string, ids []string) []storage.Document {
	req := v.request(OpFindMany)
	req.Collection, req.IDs = collection, ids
	resp, err := v.cl.roundTrip(req)
	if err != nil {
		v.fail(err)
		return nil
	}
	v.observe(resp)
	return v.respDocs(resp)
}

func (v *remoteReadView) Find(collection string, f storage.Filter, limit int) []storage.Document {
	req := v.request(OpFind)
	req.Collection, req.filter, req.Limit = collection, f, limit
	resp, err := v.cl.roundTrip(req)
	if err != nil {
		v.fail(err)
		return nil
	}
	v.observe(resp)
	return v.respDocs(resp)
}

func (v *remoteReadView) Count(collection string, f storage.Filter) int {
	req := v.request(OpCount)
	req.Collection, req.filter = collection, f
	resp, err := v.cl.roundTrip(req)
	if err != nil {
		v.fail(err)
		return 0
	}
	v.observe(resp)
	return resp.Count
}

func (v *remoteReadView) AddUnits(int) {} // costs are charged server-side

// respDocs extracts a response's documents, whichever codec delivered
// them, folding conversion errors into the view's sticky error.
func (v *remoteReadView) respDocs(resp *Response) []storage.Document {
	docs, err := resp.documents()
	if err != nil {
		v.fail(err)
		return nil
	}
	return docs
}

// remoteWriteTxn buffers mutations client-side; ExecWrite ships them
// as one batch. Documents stay in canonical storage form — the binary
// codec encodes them directly, and the v1 codec converts to JSON maps
// at marshal time.
type remoteWriteTxn struct {
	remoteReadView
	muts []Mutation
}

func (t *remoteWriteTxn) Insert(collection string, doc storage.Document) error {
	norm, err := doc.Normalized()
	if err != nil {
		return err
	}
	t.muts = append(t.muts, Mutation{Kind: "insert", Collection: collection, doc: norm})
	return nil
}

func (t *remoteWriteTxn) Set(collection, id string, fields storage.Document) error {
	norm, err := fields.Normalized()
	if err != nil {
		return err
	}
	t.muts = append(t.muts, Mutation{Kind: "set", Collection: collection, DocID: id, doc: norm})
	return nil
}

func (t *remoteWriteTxn) Delete(collection, id string) error {
	t.muts = append(t.muts, Mutation{Kind: "delete", Collection: collection, DocID: id})
	return nil
}

// optimeFrom rebuilds an OpTime from its wire fields.
func optimeFrom(secs int64, inc uint32) oplog.OpTime {
	return oplog.OpTime{Secs: secs, Inc: inc}
}
