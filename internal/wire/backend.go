package wire

import (
	"fmt"

	"decongestant/internal/cluster"
	"decongestant/internal/obs"
	"decongestant/internal/obs/trace"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// rsBackend serves the replica-set side of the protocol: the op set a
// shard server (replsetd) answers. It is the Backend NewServer wraps a
// *cluster.ReplicaSet in.
type rsBackend struct {
	rs *cluster.ReplicaSet
}

func (b *rsBackend) Metrics() *obs.Registry  { return b.rs.Metrics() }
func (b *rsBackend) Tracer() *trace.Recorder { return b.rs.Tracer() }

// execRead runs a read op, honoring an afterClusterTime prerequisite
// when the request carries one, and returns the node's applied OpTime.
// The trace context and declared staleness bound travel into the
// cluster layer, which records the node-exec span and audits observed
// staleness on secondary-served reads.
func (b *rsBackend) execRead(p sim.Proc, req *Request, tctx trace.Context, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, int64, error) {
	after := oplog.OpTime{Secs: req.AfterSecs, Inc: req.AfterInc}
	meta := cluster.ReadMeta{Ctx: tctx, BoundSecs: req.BoundSecs}
	if req.ReadConcern == RCLinearizable {
		res, ts, err := b.rs.ExecReadLinearizableMeta(p, req.Node, after, meta, fn)
		return res, ts, 0, err
	}
	if req.WantFresh {
		// The caller is filling a freshness-priced cache: report the
		// staleness the serving node observed (Response.StaleSecs).
		return b.rs.ExecReadFreshMeta(p, req.Node, after, meta, fn)
	}
	res, ts, err := b.rs.ExecReadMeta(p, req.Node, after, meta, fn)
	return res, ts, 0, err
}

// Dispatch implements Backend for a replica set.
func (b *rsBackend) Dispatch(p sim.Proc, req *Request, binary bool, tctx trace.Context) *Response {
	resp := &Response{}
	fail := func(err error) *Response {
		resp.Err = err.Error()
		// A lease rejection is a typed retryable error: code it so the
		// remote driver falls back to the primary exactly like the
		// in-process one (the reason rides in the message).
		if _, ok := cluster.LeaseReject(err); ok {
			resp.Code = CodeNotLeased
		}
		return resp
	}
	if req.Node < 0 || req.Node >= len(b.rs.NodeIDs()) {
		switch req.Op {
		case OpTopology, OpWriteBatch, OpOplogTail:
			// Not addressed to a node.
		default:
			return fail(fmt.Errorf("wire: bad node %d", req.Node))
		}
	}
	switch req.Op {
	case OpTopology:
		topo := &Topology{Primary: b.rs.PrimaryID()}
		for _, id := range b.rs.NodeIDs() {
			topo.Zones = append(topo.Zones, b.rs.Zone(id))
		}
		resp.Topo = topo
	case OpPing:
		if b.rs.Ping(p, req.Node) < 0 {
			return fail(cluster.ErrNodeDown)
		}
	case OpStatus:
		st := b.rs.ServerStatus(p, req.Node)
		body := &StatusBody{From: st.From, Primary: st.Primary, LeaseEpoch: st.LeaseEpoch}
		for _, m := range st.Members {
			body.Members = append(body.Members, Member{
				ID: m.ID, Primary: m.Primary, Secs: m.Applied.Secs, Inc: m.Applied.Inc,
				Leased: m.Leased,
			})
		}
		resp.Status = body
	case OpFindByID:
		res, ts, stale, err := b.execRead(p, req, tctx, func(v cluster.ReadView) (any, error) {
			if binary {
				if ev, ok := v.(cluster.EncodedReadView); ok {
					if e, found := ev.FindByIDEncoded(req.Collection, req.DocID); found {
						return e, nil
					}
					return nil, nil
				}
			}
			d, ok := v.FindByID(req.Collection, req.DocID)
			if !ok {
				return nil, nil
			}
			return d, nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc, resp.StaleSecs = ts.Secs, ts.Inc, stale
		switch d := res.(type) {
		case *storage.EncodedDoc:
			resp.Found = true
			resp.rawDoc = d.Bytes()
		case storage.Document:
			if d != nil {
				resp.Found = true
				fillDoc(resp, binary, d)
			}
		}
	case OpFindMany:
		res, ts, stale, err := b.execRead(p, req, tctx, func(v cluster.ReadView) (any, error) {
			if binary {
				if ev, ok := v.(cluster.EncodedReadView); ok {
					return ev.FindManyByIDEncoded(req.Collection, req.IDs), nil
				}
			}
			return v.FindManyByID(req.Collection, req.IDs), nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc, resp.StaleSecs = ts.Secs, ts.Inc, stale
		fillDocs(resp, binary, res)
	case OpFind:
		filter, err := req.filterValue()
		if err != nil {
			return fail(err)
		}
		res, ts, stale, err := b.execRead(p, req, tctx, func(v cluster.ReadView) (any, error) {
			if binary {
				if ev, ok := v.(cluster.EncodedReadView); ok {
					return ev.FindEncoded(req.Collection, filter, req.Limit), nil
				}
			}
			return v.Find(req.Collection, filter, req.Limit), nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc, resp.StaleSecs = ts.Secs, ts.Inc, stale
		fillDocs(resp, binary, res)
	case OpCount:
		filter, err := req.filterValue()
		if err != nil {
			return fail(err)
		}
		res, ts, stale, err := b.execRead(p, req, tctx, func(v cluster.ReadView) (any, error) {
			return v.Count(req.Collection, filter), nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc, resp.StaleSecs = ts.Secs, ts.Inc, stale
		resp.Count = res.(int)
	case OpWriteBatch:
		_, commitTS, err := b.rs.ExecWriteConcernMeta(p, cluster.W1, cluster.ReadMeta{Ctx: tctx}, func(tx cluster.WriteTxn) (any, error) {
			return nil, applyMutations(tx, req.Muts)
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = commitTS.Secs, commitTS.Inc
	case OpOplogTail:
		after := oplog.OpTime{Secs: req.AfterSecs, Inc: req.AfterInc}
		max := req.Limit
		if max <= 0 || max > 4096 {
			max = 512
		}
		entries, applied, trunc, err := b.rs.OplogTail(p, after, max)
		if err != nil {
			return fail(err)
		}
		fillEntries(resp, entries)
		resp.OpSecs, resp.OpInc = applied.Secs, applied.Inc
		resp.TruncSecs, resp.TruncInc = trunc.Secs, trunc.Inc
	default:
		return fail(fmt.Errorf("wire: unknown op %q", req.Op))
	}
	return resp
}

// applyMutations replays a write batch into a transaction — shared by
// the replica-set backend and a mongos's per-shard sub-batches.
func applyMutations(tx cluster.WriteTxn, muts []Mutation) error {
	for i := range muts {
		m := &muts[i]
		doc, err := m.document()
		if err != nil {
			return err
		}
		switch m.Kind {
		case "insert":
			if err := tx.Insert(m.Collection, doc); err != nil {
				return err
			}
		case "set":
			if err := tx.Set(m.Collection, m.DocID, doc); err != nil {
				return err
			}
		case "delete":
			if err := tx.Delete(m.Collection, m.DocID); err != nil {
				return err
			}
		default:
			return fmt.Errorf("wire: unknown mutation kind %q", m.Kind)
		}
	}
	return nil
}

// fillEntries converts decoded oplog entries to their wire form.
func fillEntries(resp *Response, entries []oplog.DecodedEntry) {
	if len(entries) == 0 {
		return
	}
	out := make([]EntryBody, 0, len(entries))
	for i := range entries {
		e := &entries[i]
		out = append(out, EntryBody{
			Secs: e.TS.Secs, Inc: e.TS.Inc, Kind: e.Kind.String(),
			Collection: e.Collection, DocID: e.DocID, doc: e.Doc,
		})
	}
	resp.Entries = out
}

// fillDoc routes a single-document result to the codec-appropriate
// response field.
func fillDoc(resp *Response, binary bool, d storage.Document) {
	if binary {
		resp.doc = d
	} else {
		resp.Doc = docToJSON(d)
	}
}

// fillDocs routes a multi-document read result — encoded wrappers or
// plain documents — to the codec-appropriate response fields.
func fillDocs(resp *Response, binary bool, res any) {
	switch ds := res.(type) {
	case []*storage.EncodedDoc:
		raw := make([][]byte, 0, len(ds))
		for _, e := range ds {
			raw = append(raw, e.Bytes())
		}
		resp.rawDocs = raw
	case []storage.Document:
		if binary {
			resp.docs = ds
			return
		}
		for _, d := range ds {
			resp.Docs = append(resp.Docs, docToJSON(d))
		}
	}
}
