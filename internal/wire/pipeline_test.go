package wire

// Tests for per-connection request pipelining: multiple requests in
// flight on one socket, responses matched back by id in completion
// order rather than arrival order.

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/oplog"
	"decongestant/internal/storage"
)

func muxKey(i int) string { return fmt.Sprintf("key%03d", i) }

// TestPipelinedResponsesOutOfOrder proves the server really pipelines:
// a read carrying an afterClusterTime beyond the node's applied optime
// blocks in dispatch, a ping sent behind it on the SAME connection
// completes first, and once a write advances the optime the blocked
// read's response arrives tagged with its original request id. The
// causal blocking makes the out-of-order completion deterministic —
// no sleep-based timing.
func TestPipelinedResponsesOutOfOrder(t *testing.T) {
	_, _, addr, stop := startTestServer(t)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Seed one document and capture its commit optime. The test server
	// has the noop writer off, so nothing else advances the optime.
	_, commit, err := cl.ExecWriteTracked(nil, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert("c", storage.D{"_id": "k", "v": int64(1)})
	})
	if err != nil {
		t.Fatal(err)
	}
	if commit.IsZero() {
		t.Fatal("zero commit optime")
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	// Request 101: a read on a secondary that must wait for the NEXT
	// oplog entry — it blocks server-side until the second write below.
	after := oplog.OpTime{Secs: commit.Secs, Inc: commit.Inc + 1}
	blocked := &Request{
		ID: 101, Op: OpFindByID, Node: 1, Collection: "c", DocID: "k",
		AfterSecs: after.Secs, AfterInc: after.Inc,
	}
	if err := WriteFrame(conn, blocked); err != nil {
		t.Fatal(err)
	}
	// Request 102: a ping pipelined behind the blocked read.
	if err := WriteFrame(conn, &Request{ID: 102, Op: OpPing, Node: 1}); err != nil {
		t.Fatal(err)
	}

	var first Response
	if err := ReadFrame(conn, &first); err != nil {
		t.Fatal(err)
	}
	if first.ID != 102 {
		t.Fatalf("first response id = %d, want the pipelined ping (102)", first.ID)
	}
	if first.Err != "" {
		t.Fatalf("ping failed: %s", first.Err)
	}

	// Unblock request 101 by committing the entry it waits for.
	if _, _, err := cl.ExecWriteTracked(nil, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Set("c", "k", storage.D{"v": int64(2)})
	}); err != nil {
		t.Fatal(err)
	}

	var second Response
	if err := ReadFrame(conn, &second); err != nil {
		t.Fatal(err)
	}
	if second.ID != 101 {
		t.Fatalf("second response id = %d, want the blocked read (101)", second.ID)
	}
	if second.Err != "" {
		t.Fatalf("blocked read failed: %s", second.Err)
	}
	if !second.Found {
		t.Fatal("blocked read found no document")
	}
	doc, err := jsonToDoc(second.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Int("v") != 2 {
		t.Fatalf("blocked read saw v=%d, want the post-write value 2", doc.Int("v"))
	}
}

// TestClientMultiplexesOneSocket drives many concurrent reads through
// one Client and checks every caller gets its own answer back — the
// id-matching demux under real concurrency.
func TestClientMultiplexesOneSocket(t *testing.T) {
	_, rs, addr, stop := startTestServer(t)
	defer stop()
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("mux")
		for i := 0; i < 64; i++ {
			if err := c.Insert(storage.D{"_id": muxKey(i), "val": int64(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				want := (g*50 + i) % 64
				res, err := cl.ExecRead(nil, want%3, func(v cluster.ReadView) (any, error) {
					d, ok := v.FindByID("mux", muxKey(want))
					if !ok {
						return nil, nil
					}
					return d, nil
				})
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				d, ok := res.(storage.Document)
				if !ok || d.Int("val") != int64(want) {
					select {
					case errs <- fmt.Errorf("got %v for key %d", res, want):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
