package wire

// Framing tests for the PR 9 read-concern surface: the linearizable
// read-concern tag on v2 request frames (zero bytes when unset, JSON
// omitempty on v1), lease state in replstatus answers, and corrupt
// member-flag rejection.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/obs"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// TestReadConcernRoundTripBothCodecs: the read-concern tag and the
// lease fields of a status answer survive both codecs.
func TestReadConcernRoundTripBothCodecs(t *testing.T) {
	req := Request{ID: 7, Op: OpFindByID, Node: 2, Collection: "kv", DocID: "a",
		ReadConcern: RCLinearizable}

	body, err := encodeRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := decodeRequest(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ReadConcern != RCLinearizable {
		t.Fatalf("v2 read concern = %d, want %d", out.ReadConcern, RCLinearizable)
	}

	js, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	var jout Request
	if err := json.Unmarshal(js, &jout); err != nil {
		t.Fatal(err)
	}
	if jout.ReadConcern != RCLinearizable {
		t.Fatalf("v1 read concern = %d, want %d", jout.ReadConcern, RCLinearizable)
	}

	resp := Response{ID: 8, Status: &StatusBody{
		From: 1, Primary: 0, LeaseEpoch: 5,
		Members: []Member{
			{ID: 0, Primary: true, Leased: true, Secs: 9, Inc: 2},
			{ID: 1, Leased: true, Secs: 9, Inc: 1},
			{ID: 2, Secs: 8, Inc: 7},
		},
	}}
	rbody, err := encodeResponse(nil, &resp)
	if err != nil {
		t.Fatal(err)
	}
	var rout Response
	if err := decodeResponse(rbody, &rout); err != nil {
		t.Fatal(err)
	}
	st := rout.Status
	if st == nil || st.LeaseEpoch != 5 {
		t.Fatalf("v2 status lease epoch: %+v", st)
	}
	if !st.Members[0].Primary || !st.Members[0].Leased ||
		st.Members[1].Primary || !st.Members[1].Leased ||
		st.Members[2].Primary || st.Members[2].Leased {
		t.Fatalf("v2 member lease flags: %+v", st.Members)
	}

	rjs, err := json.Marshal(&resp)
	if err != nil {
		t.Fatal(err)
	}
	var jrout Response
	if err := json.Unmarshal(rjs, &jrout); err != nil {
		t.Fatal(err)
	}
	if jrout.Status.LeaseEpoch != 5 || !jrout.Status.Members[1].Leased || jrout.Status.Members[2].Leased {
		t.Fatalf("v1 status lease fields: %+v", jrout.Status)
	}
}

// TestReadConcernUnsetCostsZeroBytes: a local-read-concern request
// must encode identically to one predating the field — the tag rides
// the frame only when set (two trailing bytes), and the v1 JSON form
// omits the key entirely.
func TestReadConcernUnsetCostsZeroBytes(t *testing.T) {
	base := Request{ID: 3, Op: OpFind, Node: 1, Collection: "kv", Limit: 10}
	plain, err := encodeRequest(nil, &base)
	if err != nil {
		t.Fatal(err)
	}
	lin := base
	lin.ReadConcern = RCLinearizable
	tagged, err := encodeRequest(nil, &lin)
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged) != len(plain)+2 {
		t.Fatalf("read-concern tag costs %d bytes, want 2", len(tagged)-len(plain))
	}
	if !bytes.Equal(plain, tagged[:len(plain)]) {
		t.Fatal("unset read concern changed unrelated frame bytes")
	}
	if tagged[len(plain)] != rqReadConcern {
		t.Fatalf("trailing tag = %d, want %d", tagged[len(plain)], rqReadConcern)
	}

	js, err := json.Marshal(&base)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(js), "read_concern") {
		t.Fatalf("v1 frame carries read_concern when unset: %s", js)
	}
}

// TestStatusMemberFlagsRejectCorruptFrame: a member flag byte with
// unknown bits is a corrupt frame, not a silent lease grant.
func TestStatusMemberFlagsRejectCorruptFrame(t *testing.T) {
	// rsStatus tag, From=1 (zigzag), Primary=0, LeaseEpoch=1, one
	// member: id=0, flags=4 (invalid), secs=0, inc=0.
	corrupt := []byte{rsStatus, 0x02, 0x00, 0x01, 0x01, 0x00, 0x04, 0x00, 0x00}
	var out Response
	err := decodeResponse(corrupt, &out)
	if err == nil || !strings.Contains(err.Error(), "member flags 4") {
		t.Fatalf("corrupt flags decoded: %v", err)
	}

	// The same frame with valid flags decodes; truncating it does not.
	valid := []byte{rsStatus, 0x02, 0x00, 0x01, 0x01, 0x00, 0x03, 0x00, 0x00}
	if err := decodeResponse(valid, &out); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if out.Status.LeaseEpoch != 1 || !out.Status.Members[0].Primary || !out.Status.Members[0].Leased {
		t.Fatalf("valid frame mis-decoded: %+v", out.Status)
	}
	for cut := 1; cut < len(valid); cut++ {
		var tr Response
		if err := decodeResponse(valid[:cut], &tr); err == nil && tr.Status != nil &&
			len(tr.Status.Members) == 1 {
			t.Fatalf("truncated frame (%d bytes) decoded a full member", cut)
		}
	}
}

// TestLinearizableOverWire: end to end through the v2 transport — a
// linearizable read against a leased secondary serves locally, the
// status answer exposes lease state, and a rejection surfaces as the
// retryable CodeNotLeased with the reason intact after the error
// crossed the wire as text.
func TestLinearizableOverWire(t *testing.T) {
	env := sim.NewRealtimeEnv(31)
	cfg := cluster.DefaultConfig()
	cfg.ReadCost = 50 * time.Microsecond
	cfg.WriteCost = 100 * time.Microsecond
	cfg.ApplyCost = 20 * time.Microsecond
	cfg.StatusCost = 20 * time.Microsecond
	cfg.RTTSameZone = 100 * time.Microsecond
	cfg.RTTCrossZoneBase = 200 * time.Microsecond
	cfg.ReplIdlePoll = 2 * time.Millisecond
	cfg.HeartbeatInterval = 20 * time.Millisecond
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	cfg.LinearizableLeases = true
	rs := cluster.New(env, cfg)
	srv := NewServer(env, rs, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() { srv.Close(); env.Shutdown() }()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := env.Adhoc("test")

	if _, err := cl.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert("kv", storage.D{"_id": "w", "v": int64(11)})
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(250 * time.Millisecond) // heartbeats grant; replication applies

	st := cl.ServerStatus(p, rs.PrimaryID())
	if st.LeaseEpoch != 1 {
		t.Fatalf("wire status lease epoch = %d, want 1", st.LeaseEpoch)
	}
	leased := 0
	for _, m := range st.Members {
		if m.Leased {
			leased++
		}
	}
	if leased != len(st.Members) {
		t.Fatalf("wire status shows %d/%d leased members", leased, len(st.Members))
	}

	sec := rs.SecondaryIDs()[0]
	res, _, err := cl.ExecReadLinearizableMeta(p, sec, oplog.Zero, cluster.ReadMeta{},
		func(v cluster.ReadView) (any, error) {
			d, ok := v.FindByID("kv", "w")
			if !ok {
				return int64(-1), nil
			}
			return d.Int("v"), nil
		})
	if err != nil {
		t.Fatalf("linearizable read over wire: %v", err)
	}
	if res.(int64) != 11 {
		t.Fatalf("read %d, want 11", res.(int64))
	}
	if got := rs.Metrics().Snapshot().CounterValue(obs.Name("lease.local_strong_reads", "role", "secondary")); got == 0 {
		t.Fatal("wire linearizable read was not lease-served on the secondary")
	}

	// Invalidate the lease (clock jump past the window, renewals
	// frozen) and read again: the rejection must carry CodeNotLeased
	// and a reason LeaseReject can still parse from the flat message.
	rs.SetDown(rs.PrimaryID(), true)
	time.Sleep(30 * time.Millisecond) // let in-flight grants land; no new ones
	rs.SetClockSkew(sec, time.Hour)
	_, _, err = cl.ExecReadLinearizableMeta(p, sec, oplog.Zero, cluster.ReadMeta{},
		func(v cluster.ReadView) (any, error) {
			_, ok := v.FindByID("kv", "w")
			return ok, nil
		})
	if err == nil {
		t.Fatal("expired lease served a linearizable read over the wire")
	}
	var we *Error
	if !errors.As(err, &we) || we.Code != CodeNotLeased {
		t.Fatalf("wire error %v, want CodeNotLeased", err)
	}
	if !IsRetryable(err) {
		t.Fatal("CodeNotLeased not retryable")
	}
	if reason, ok := cluster.LeaseReject(err); !ok || reason != cluster.LeaseReasonExpired {
		t.Fatalf("LeaseReject over wire = %q,%v; want lease-expired", reason, ok)
	}
}
