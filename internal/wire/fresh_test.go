package wire

// Framing and transport tests for the PR 10 freshness-cache surface:
// the want_fresh request flag and the stale_secs response answer (zero
// bytes when unrequested on v2, omitempty on v1), the two-sided filter
// condition, corrupt-frame rejection for both, and the end-to-end
// ExecReadFreshMeta path over a real socket.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// TestFreshMetaRoundTripBothCodecs: WantFresh and StaleSecs survive
// both codecs.
func TestFreshMetaRoundTripBothCodecs(t *testing.T) {
	req := Request{ID: 21, Op: OpFindByID, Node: 2, Collection: "kv", DocID: "a",
		WantFresh: true}

	body, err := encodeRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := decodeRequest(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.WantFresh {
		t.Fatal("v2 dropped want_fresh")
	}

	js, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	var jout Request
	if err := json.Unmarshal(js, &jout); err != nil {
		t.Fatal(err)
	}
	if !jout.WantFresh {
		t.Fatal("v1 dropped want_fresh")
	}

	resp := Response{ID: 22, Found: true, OpSecs: 9, OpInc: 1, StaleSecs: 4}
	rbody, err := encodeResponse(nil, &resp)
	if err != nil {
		t.Fatal(err)
	}
	var rout Response
	if err := decodeResponse(rbody, &rout); err != nil {
		t.Fatal(err)
	}
	if rout.StaleSecs != 4 {
		t.Fatalf("v2 stale_secs = %d, want 4", rout.StaleSecs)
	}

	rjs, err := json.Marshal(&resp)
	if err != nil {
		t.Fatal(err)
	}
	var jrout Response
	if err := json.Unmarshal(rjs, &jrout); err != nil {
		t.Fatal(err)
	}
	if jrout.StaleSecs != 4 {
		t.Fatalf("v1 stale_secs = %d, want 4", jrout.StaleSecs)
	}
}

// TestFreshTagsUnrequestedCostZeroBytes: a read that does not ask for
// staleness must encode byte-identically to one predating the field,
// and a response that carries none likewise — the cache's wire cost is
// borne only by cache fills.
func TestFreshTagsUnrequestedCostZeroBytes(t *testing.T) {
	base := Request{ID: 3, Op: OpFindByID, Node: 1, Collection: "kv", DocID: "a"}
	plain, err := encodeRequest(nil, &base)
	if err != nil {
		t.Fatal(err)
	}
	fresh := base
	fresh.WantFresh = true
	tagged, err := encodeRequest(nil, &fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged) != len(plain)+2 {
		t.Fatalf("want_fresh tag costs %d bytes, want 2", len(tagged)-len(plain))
	}
	if !bytes.Equal(plain, tagged[:len(plain)]) {
		t.Fatal("want_fresh changed unrelated frame bytes")
	}
	if tagged[len(plain)] != rqWantFresh {
		t.Fatalf("trailing tag = %d, want %d", tagged[len(plain)], rqWantFresh)
	}

	rbase := Response{ID: 4, Found: true, OpSecs: 9, OpInc: 1}
	rplain, err := encodeResponse(nil, &rbase)
	if err != nil {
		t.Fatal(err)
	}
	stale := rbase
	stale.StaleSecs = 3
	rtagged, err := encodeResponse(nil, &stale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtagged) != len(rplain)+2 {
		t.Fatalf("stale_secs tag costs %d bytes, want 2", len(rtagged)-len(rplain))
	}
	if !bytes.Equal(rplain, rtagged[:len(rplain)]) {
		t.Fatal("stale_secs changed unrelated frame bytes")
	}

	js, err := json.Marshal(&base)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(js), "want_fresh") {
		t.Fatalf("v1 frame carries want_fresh when unset: %s", js)
	}
	rjs, err := json.Marshal(&rbase)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(rjs), "stale_secs") {
		t.Fatalf("v1 frame carries stale_secs when zero: %s", rjs)
	}
}

// TestWantFreshRejectsCorruptFlag: the flag byte is strictly 1 — any
// other value is a corrupt frame, and a truncated tag errors rather
// than decoding a half request.
func TestWantFreshRejectsCorruptFlag(t *testing.T) {
	var out Request
	if err := decodeRequest([]byte{rqWantFresh, 0x01}, &out); err != nil || !out.WantFresh {
		t.Fatalf("valid flag rejected: %v", err)
	}
	if err := decodeRequest([]byte{rqWantFresh, 0x02}, &out); err == nil ||
		!strings.Contains(err.Error(), "want_fresh flag 2") {
		t.Fatalf("invalid flag decoded: %v", err)
	}
	if err := decodeRequest([]byte{rqWantFresh}, &out); err == nil {
		t.Fatal("truncated want_fresh tag decoded")
	}
}

// TestTwoSidedFilterRoundTripBothCodecs: a storage.Range condition —
// the closed-interval scan the planner turns into one index walk —
// survives the binary filter codec and the v1 JSON form with matching
// semantics ([lo, hi)).
func TestTwoSidedFilterRoundTripBothCodecs(t *testing.T) {
	f := storage.Filter{
		"k": storage.Range("doc10", "doc20"),
		"n": storage.Gte(int64(3)).And(storage.Lte(int64(7))),
	}
	check := func(name string, dec storage.Filter) {
		t.Helper()
		if len(dec) != len(f) {
			t.Fatalf("%s: decoded %d conds, want %d", name, len(dec), len(f))
		}
		in, _ := storage.D{"k": "doc15", "n": int64(7)}.Normalized()
		if !dec.Matches(in) {
			t.Fatalf("%s: decoded filter rejects in-range doc", name)
		}
		atHi, _ := storage.D{"k": "doc20", "n": int64(5)}.Normalized()
		if dec.Matches(atHi) {
			t.Fatalf("%s: decoded filter includes the exclusive high bound", name)
		}
		below, _ := storage.D{"k": "doc15", "n": int64(2)}.Normalized()
		if dec.Matches(below) {
			t.Fatalf("%s: decoded filter accepts out-of-range doc", name)
		}
	}

	enc, err := appendFilter(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	dec, rest, err := decodeFilter(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	check("v2", dec)

	jdec, err := DecodeFilter(EncodeFilter(f))
	if err != nil {
		t.Fatal(err)
	}
	check("v1", jdec)
}

// TestTwoSidedFilterRejectsCorruptFrame: a second-bound op byte
// outside the range table is a corrupt frame (op2 zero would silently
// drop the bound; an unknown op would match nothing predictable), and
// every truncation of a valid two-sided frame errors.
func TestTwoSidedFilterRejectsCorruptFrame(t *testing.T) {
	frame := func(op2 byte) []byte {
		b := binary.AppendUvarint(nil, 1)
		b = appendString(b, "k")
		b = append(b, byte(storage.OpGte)|twoSidedBit)
		b = storage.AppendValue(b, "a")
		b = append(b, op2)
		b = storage.AppendValue(b, "b")
		return binary.AppendUvarint(b, 0)
	}
	valid := frame(byte(storage.OpLt))
	dec, _, err := decodeFilter(valid)
	if err != nil {
		t.Fatalf("hand-built two-sided frame rejected: %v", err)
	}
	if c := dec["k"]; c.Op2 != storage.OpLt || c.Value2 != "b" {
		t.Fatalf("hand-built frame mis-decoded: %+v", c)
	}
	if _, _, err := decodeFilter(frame(0x00)); err == nil ||
		!strings.Contains(err.Error(), "filter op2 0") {
		t.Fatalf("zero op2 decoded: %v", err)
	}
	if _, _, err := decodeFilter(frame(0x7F)); err == nil ||
		!strings.Contains(err.Error(), "filter op2 127") {
		t.Fatalf("unknown op2 decoded: %v", err)
	}
	for cut := 1; cut < len(valid); cut++ {
		if f, rest, err := decodeFilter(valid[:cut]); err == nil && len(rest) == 0 && f != nil {
			if c, ok := f["k"]; ok && c.Op2 == storage.OpLt {
				t.Fatalf("truncated frame (%d bytes) decoded the full condition", cut)
			}
		}
	}
}

// TestFreshReadOverWire: end to end through the v2 transport — a
// primary-served ExecReadFreshMeta reports zero observed staleness,
// and once replication is frozen and the primary moves on, a
// secondary-served read reports the real lag in whole seconds. This is
// the number the driver stamps cache fills with.
func TestFreshReadOverWire(t *testing.T) {
	env := sim.NewRealtimeEnv(47)
	cfg := cluster.DefaultConfig()
	cfg.ReadCost = 50 * time.Microsecond
	cfg.WriteCost = 100 * time.Microsecond
	cfg.ApplyCost = 20 * time.Microsecond
	cfg.RTTSameZone = 100 * time.Microsecond
	cfg.RTTCrossZoneBase = 200 * time.Microsecond
	cfg.ReplIdlePoll = time.Hour // secondaries never catch up
	cfg.DisableTailWake = true
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	srv := NewServer(env, rs, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() { srv.Close(); env.Shutdown() }()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := env.Adhoc("test")

	if _, err := cl.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert("kv", storage.D{"_id": "a", "v": int64(1)})
	}); err != nil {
		t.Fatal(err)
	}

	res, ts, stale, err := cl.ExecReadFreshMeta(p, rs.PrimaryID(), oplog.Zero, cluster.ReadMeta{},
		func(v cluster.ReadView) (any, error) {
			d, ok := v.FindByID("kv", "a")
			if !ok {
				return int64(-1), nil
			}
			return d.Int("v"), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.(int64) != 1 || ts == oplog.Zero {
		t.Fatalf("primary fresh read: v=%v ts=%v", res, ts)
	}
	if stale != 0 {
		t.Fatalf("primary-served read observed %ds staleness, want 0", stale)
	}

	// Let wall time pass the one-second mark, write again so the
	// primary's applied OpTime advances, then read the frozen secondary:
	// the observed staleness is the primary-to-secondary lag.
	time.Sleep(1100 * time.Millisecond)
	if _, err := cl.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Set("kv", "a", storage.D{"v": int64(2)})
	}); err != nil {
		t.Fatal(err)
	}
	sec := rs.SecondaryIDs()[0]
	_, _, stale, err = cl.ExecReadFreshMeta(p, sec, oplog.Zero, cluster.ReadMeta{},
		func(v cluster.ReadView) (any, error) {
			_, ok := v.FindByID("kv", "a")
			return ok, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if stale < 1 {
		t.Fatalf("lagging secondary observed %ds staleness, want >= 1", stale)
	}
}
