package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/obs"
	"decongestant/internal/obs/trace"
	"decongestant/internal/sim"
)

// ServerConfig tunes the server's admission control and connection
// lifecycle. The zero value disables every mechanism, which is the
// seed behavior: unlimited connections, no idle reaping, no
// backpressure, no shedding.
//
// Admission is staged. A connection is first *accepted* (or refused at
// the listener when MaxConns is hit), then each request *queues*
// against the per-connection inflight budget — when the budget is
// spent the reader simply stops pulling frames, so excess load parks
// in kernel socket buffers and flow-controls the client — and finally
// a request that would push the server past ShedInflight is *shed*:
// answered immediately with CodeOverloaded instead of dispatched, so
// clients can back off and retry while the server keeps serving the
// load it admitted.
type ServerConfig struct {
	// IdleTimeout reaps connections with no readable data and no
	// requests in service for this long. Connections stalled mid-frame
	// are reaped too — a half-written frame past the deadline means a
	// broken peer, and waiting on it pins the reader goroutine.
	IdleTimeout time.Duration
	// MaxConns caps simultaneously served connections; extras are
	// closed at accept time. 0 means no cap.
	MaxConns int
	// MaxInflightPerConn caps requests in service per connection.
	// Past the cap the connection's reader stops consuming frames
	// (TCP backpressure). 0 means no cap.
	MaxInflightPerConn int
	// ShedInflight is the server-wide in-service request count beyond
	// which new requests are shed with a retryable error. 0 disables
	// shedding.
	ShedInflight int
	// SlowOpThreshold logs any request whose service time meets it,
	// MongoDB's slowms. 0 disables the slow-op log. A slow op whose
	// request was not sampled gets a retroactive trace id so its
	// dispatch span lands in the recorder anyway (always-on-slow
	// sampling), and the log line carries that id.
	SlowOpThreshold time.Duration
	// CurrentOp maintains a registry of requests currently in dispatch,
	// exported by the current_op wire op — MongoDB's currentOp. Off by
	// default: the registry costs a mutexed map insert/delete per
	// request.
	CurrentOp bool
}

// defaultMaxConns prices status.connections.available when no
// explicit cap is configured, mirroring how mongod derives the gauge
// from its file-descriptor rlimit.
const defaultMaxConns = 1 << 16

func (c ServerConfig) connLimit() int {
	if c.MaxConns > 0 {
		return c.MaxConns
	}
	return defaultMaxConns
}

// Backend executes protocol requests for a Server. The transport layer
// (framing, admission control, pipelining, tracing spans, the
// metrics/trace/current_op export ops) is backend-agnostic; the
// backend supplies the registry and recorder those surfaces read from
// and dispatches everything else — replica-set ops for a shard server,
// routed ops for a mongos.
type Backend interface {
	// Metrics is the registry the metrics op snapshots and the server
	// registers its transport instruments in.
	Metrics() *obs.Registry
	// Tracer is the span recorder admission/dispatch spans land in and
	// the trace export ops read from.
	Tracer() *trace.Recorder
	// Dispatch executes one non-transport request. The trace context is
	// the server's dispatch span (zero when unsampled); binary reports
	// whether the connection speaks v2, so encoded-document fast paths
	// apply.
	Dispatch(p sim.Proc, req *Request, binary bool, tctx trace.Context) *Response
}

// Server exposes a Backend (a replica set, a mongos router — anything
// running on a real-time environment) over TCP. Connections are
// pipelined: a reader goroutine decodes frames, each request is
// dispatched on its own proc, and id-tagged responses stream back in
// completion order — so one socket carries many requests in flight.
// Each connection speaks the protocol version negotiated by its
// opening handshake: v2 responses are encoded into pooled buffers and
// flushed in bursts through one writev, and document payloads come
// from the storage layer's encoding cache; v1 connections keep the
// original JSON codec.
type Server struct {
	env     *sim.RealtimeEnv
	backend Backend

	// tracer is the backend's span recorder; the server records
	// admission and dispatch spans into it for sampled requests and
	// serves the trace export ops from it. curOps tracks requests
	// currently in dispatch when cfg.CurrentOp is set (nil otherwise).
	tracer *trace.Recorder
	curOps *trace.OpRegistry

	// Per-opcode request counts and service latencies, registered in
	// the cluster's registry so the metrics op reports them alongside
	// the node instruments. Built once at construction; ops outside the
	// protocol land in the "other" bucket.
	opCounts map[string]*obs.Counter
	opLat    map[string]*obs.Histogram

	// Transport instruments: live connections by negotiated version,
	// frame and byte volume each way, and bodies that failed to decode.
	connsByVer [V2 + 1]*obs.Gauge
	framesIn   *obs.Counter
	framesOut  *obs.Counter
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
	decodeErrs *obs.Counter

	// Admission-control instruments. connsCur/connsAvail are the
	// status.connections pair operators alarm on; inflightG is the
	// server-wide in-service request count the shed stage reads.
	cfg           ServerConfig
	connsCur      *obs.Gauge
	connsAvail    *obs.Gauge
	connsRejected *obs.Counter
	inflightG     *obs.Gauge
	idleClosed    *obs.Counter
	shedCount     *obs.Counter
	slowOps       *obs.Counter

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	pushed map[string]obs.Snapshot // client snapshots by source, pre-prefixed
	done   bool
	log    *log.Logger
}

// wireOps enumerates the protocol's opcodes for instrument setup.
var wireOps = []string{
	OpTopology, OpPing, OpStatus, OpFindByID, OpFindMany, OpFind,
	OpCount, OpWriteBatch, OpMetrics, OpMetricsPush,
	OpTrace, OpCurrentOp, OpTracePush,
	OpListShards, OpChunkMap, OpOplogTail, OpMoveChunk, "other",
}

// NewServer creates a server over the given replica set with the
// zero ServerConfig — no admission control, the seed behavior. The
// replica set must have been built on env.
func NewServer(env *sim.RealtimeEnv, rs *cluster.ReplicaSet, logger *log.Logger) *Server {
	return NewServerWith(env, rs, logger, ServerConfig{})
}

// NewServerWith creates a replica-set server with explicit
// admission-control and connection-lifecycle configuration.
func NewServerWith(env *sim.RealtimeEnv, rs *cluster.ReplicaSet, logger *log.Logger, cfg ServerConfig) *Server {
	return NewBackendServer(env, &rsBackend{rs: rs}, logger, cfg)
}

// NewBackendServer creates a server over an arbitrary Backend — the
// entry point mongosd uses to put a router behind the same transport,
// admission control and observability surface a shard server has.
func NewBackendServer(env *sim.RealtimeEnv, backend Backend, logger *log.Logger, cfg ServerConfig) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Server{
		env: env, backend: backend,
		opCounts: make(map[string]*obs.Counter, len(wireOps)),
		opLat:    make(map[string]*obs.Histogram, len(wireOps)),
		cfg:      cfg,
		conns:    map[net.Conn]struct{}{},
		pushed:   map[string]obs.Snapshot{},
		log:      logger,
	}
	s.tracer = backend.Tracer()
	if cfg.CurrentOp {
		s.curOps = trace.NewOpRegistry()
	}
	reg := backend.Metrics()
	for _, op := range wireOps {
		s.opCounts[op] = reg.Counter(obs.Name("wire.requests", "op", op))
		s.opLat[op] = reg.Histogram(obs.Name("wire.request_latency", "op", op))
	}
	s.connsByVer[V1] = reg.Gauge(obs.Name("wire.conns", "ver", "1"))
	s.connsByVer[V2] = reg.Gauge(obs.Name("wire.conns", "ver", "2"))
	s.framesIn = reg.Counter("wire.frames_in")
	s.framesOut = reg.Counter("wire.frames_out")
	s.bytesIn = reg.Counter("wire.bytes_in")
	s.bytesOut = reg.Counter("wire.bytes_out")
	s.decodeErrs = reg.Counter("wire.decode_errors")
	s.connsCur = reg.Gauge("status.connections.current")
	s.connsAvail = reg.Gauge("status.connections.available")
	s.connsAvail.Set(int64(cfg.connLimit()))
	s.connsRejected = reg.Counter("status.connections.rejected")
	s.inflightG = reg.Gauge("status.inflight_requests")
	s.idleClosed = reg.Counter("wire.idle_closed")
	s.shedCount = reg.Counter(obs.Name("wire.requests_shed", "reason", "overload"))
	s.slowOps = reg.Counter("wire.slow_ops")
	return s
}

// setConnGauges publishes the status.connections pair after an
// accept or a close.
func (s *Server) setConnGauges(cur int) {
	s.connsCur.Set(int64(cur))
	s.connsAvail.Set(int64(s.cfg.connLimit() - cur))
}

// instruments returns the count and latency instruments for an opcode.
func (s *Server) instruments(op string) (*obs.Counter, *obs.Histogram) {
	c, ok := s.opCounts[op]
	if !ok {
		return s.opCounts["other"], s.opLat["other"]
	}
	return c, s.opLat[op]
}

// Serve accepts connections on ln until Close. It returns after the
// listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.done
			s.mu.Unlock()
			if done {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if max := s.cfg.MaxConns; max > 0 && len(s.conns) >= max {
			// Accept stage: over the cap the connection is refused
			// outright. Closing without a handshake reply reads as a
			// dial failure on the client, the retryable kind.
			s.mu.Unlock()
			s.connsRejected.Inc(1)
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		cur := len(s.conns)
		s.mu.Unlock()
		s.setConnGauges(cur)
		go s.handle(conn)
	}
}

// Close stops accepting and closes every live connection.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// handle serves one connection with request pipelining: the reader
// loop decodes frames and hands each request to its own dispatch
// goroutine, so a slow operation (a blocked afterClusterTime read, a
// long scan) never holds up the requests queued behind it. Responses
// carry the request id and return in completion order; the client
// matches them back to callers.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		cur := len(s.conns)
		s.mu.Unlock()
		s.setConnGauges(cur)
	}()
	idle := s.cfg.IdleTimeout
	if idle > 0 {
		// The deadline also bounds the handshake: a peer that connects
		// and never speaks is reaped like one that goes quiet later.
		conn.SetReadDeadline(time.Now().Add(idle))
	}
	br := bufio.NewReader(conn)
	ver, err := negotiate(br, conn)
	if err != nil {
		var ne net.Error
		switch {
		case errors.As(err, &ne) && ne.Timeout():
			s.idleClosed.Inc(1)
		case !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed):
			s.log.Printf("wire: handshake with %s: %v", conn.RemoteAddr(), err)
		}
		return
	}
	s.connsByVer[ver].Add(1)
	defer s.connsByVer[ver].Add(-1)
	binary := ver >= V2

	responses := make(chan *Response, 64)
	writerDone := make(chan struct{})
	go s.writeLoop(conn, ver, responses, writerDone)
	var inflight sync.WaitGroup
	var inService atomic.Int64 // this connection's requests in dispatch
	var sem chan struct{}      // queue-stage budget; nil when uncapped
	if n := s.cfg.MaxInflightPerConn; n > 0 {
		sem = make(chan struct{}, n)
	}
	fr := &frameReader{r: br}
	// One proc name per connection, not per request: formatting a
	// fresh name for every dispatch shows up in allocation profiles.
	procName := "wire/req-" + conn.RemoteAddr().String()
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		body, err := fr.next()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// The idle probe fired. A connection that is merely
				// waiting on its own slow responses is alive — extend
				// and keep reading (the resumable frameReader holds any
				// partial progress). A connection stalled mid-frame
				// with nothing in service, or fully idle, is dead
				// weight: reap it and free the gauges it pins.
				if inService.Load() > 0 && !fr.midFrame() {
					continue
				}
				s.idleClosed.Inc(1)
				break
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Printf("wire: read from %s: %v", conn.RemoteAddr(), err)
			}
			break
		}
		s.framesIn.Inc(1)
		s.bytesIn.Inc(uint64(4 + len(body)))
		var req Request
		if binary {
			err = decodeRequest(body, &req)
		} else {
			err = decodeJSONBody(body, &req)
		}
		if err != nil {
			// A frame that doesn't decode means a broken or hostile
			// peer; the stream has no trustworthy continuation.
			s.decodeErrs.Inc(1)
			s.log.Printf("wire: decode from %s: %v", conn.RemoteAddr(), err)
			break
		}
		r := req
		// A request carrying a trace context times its admission span
		// from here: the gap to dispatch start is exactly the queue and
		// shed stages it crossed. Unsampled requests skip the clock read.
		var arrive time.Duration
		if r.Trace != nil {
			arrive = s.env.Now()
		}
		// Queue stage: when this connection's budget is spent, block
		// here instead of reading further frames — unread requests
		// back up into socket buffers and flow-control the client.
		if sem != nil {
			sem <- struct{}{}
		}
		// Shed stage: past the server-wide inflight ceiling the
		// request is answered without being dispatched, so admitted
		// work keeps its latency while the excess gets an immediate
		// retryable error instead of a place in line.
		if max := s.cfg.ShedInflight; max > 0 && s.inflightG.Value() >= int64(max) {
			if sem != nil {
				<-sem
			}
			s.shedCount.Inc(1)
			responses <- &Response{ID: r.ID, Err: "wire: server overloaded", Code: CodeOverloaded}
			continue
		}
		inflight.Add(1)
		inService.Add(1)
		s.inflightG.Add(1)
		go func() {
			defer func() {
				if sem != nil {
					<-sem
				}
				s.inflightG.Add(-1)
				inService.Add(-1)
				inflight.Done()
			}()
			// The environment may shut down while a request is in
			// flight; swallow the stop signal like Spawn's wrapper does.
			defer func() {
				if v := recover(); v != nil && !sim.ErrStopped(v) {
					panic(v)
				}
			}()
			proc := s.env.Adhoc(procName)
			count, lat := s.instruments(r.Op)
			start := proc.Now()
			var tctx trace.Context
			if r.Trace != nil {
				tctx = *r.Trace
			}
			var dispatchID uint64
			if tctx.Live() {
				s.tracer.Record(trace.Span{
					Trace:  tctx.TraceID,
					ID:     s.tracer.NewSpanID(),
					Parent: tctx.SpanID,
					Name:   "server.admission",
					Node:   -1,
					Start:  arrive,
					Dur:    start - arrive,
				})
				dispatchID = s.tracer.NewSpanID()
			}
			var opID uint64
			if s.curOps != nil {
				opID = s.curOps.Register(r.Op, r.Collection, r.Node, tctx.TraceID, start)
			}
			// Node-level spans hang off the dispatch span, not the
			// client's, so the tree reads admission → dispatch → exec.
			child := tctx
			child.SpanID = dispatchID
			resp := s.dispatch(proc, &r, binary, child)
			if s.curOps != nil {
				s.curOps.Done(opID)
			}
			count.Inc(1)
			dur := proc.Now() - start
			lat.Observe(dur)
			slow := s.cfg.SlowOpThreshold > 0 && dur >= s.cfg.SlowOpThreshold
			if slow && !tctx.Live() {
				// Always-on-slow sampling: the op ran untraced, so its
				// sub-spans are gone, but a retroactive id makes the
				// dispatch span below land in the recorder and gives
				// the log line something to query.
				tctx = s.tracer.ForceTrace()
				dispatchID = s.tracer.NewSpanID()
			}
			if tctx.Live() {
				s.tracer.Record(trace.Span{
					Trace:  tctx.TraceID,
					ID:     dispatchID,
					Parent: tctx.SpanID,
					Name:   "server.dispatch",
					Node:   r.Node,
					Start:  start,
					Dur:    dur,
					Attrs:  []trace.Attr{{K: "op", V: r.Op}, {K: "coll", V: r.Collection}},
				})
			}
			if slow {
				s.slowOps.Inc(1)
				s.log.Printf("wire: slow op op=%s coll=%q node=%d id=%d dur=%s err=%q trace=%s route=%s",
					r.Op, r.Collection, r.Node, r.ID, dur, resp.Err,
					trace.IDString(tctx.TraceID), routeString(r.Trace))
			}
			resp.ID = r.ID
			responses <- resp
		}()
	}
	inflight.Wait()
	close(responses)
	<-writerDone
}

// writeLoop is the connection's single writer. The v1 path drains
// completed responses into a buffered writer and flushes only when no
// further response is immediately queued; the v2 path encodes each
// response into a pooled buffer and hands bursts to the kernel as one
// writev (net.Buffers), so neither codec pays a syscall per frame. On
// a write error it closes the connection (which unblocks the reader)
// and keeps draining so in-flight dispatchers never block on the
// response channel.
func (s *Server) writeLoop(conn net.Conn, ver byte, responses <-chan *Response, done chan<- struct{}) {
	defer close(done)
	if ver >= V2 {
		s.writeLoopBinary(conn, responses)
		return
	}
	bw := bufio.NewWriter(countingWriter{w: conn, c: s.bytesOut})
	broken := false
	for resp := range responses {
		if broken {
			continue
		}
		err := WriteFrame(bw, resp)
		s.framesOut.Inc(1)
		if err == nil && len(responses) == 0 {
			err = bw.Flush()
		}
		if err != nil {
			s.log.Printf("wire: write to %s: %v", conn.RemoteAddr(), err)
			conn.Close()
			broken = true
		}
	}
	if !broken {
		bw.Flush()
	}
}

// writevBatch bounds how many frames accumulate before a flush even
// while more completions are queued (IOV_MAX headroom).
const writevBatch = 64

func (s *Server) writeLoopBinary(conn net.Conn, responses <-chan *Response) {
	broken := false
	var frames net.Buffers
	var pooled []*[]byte
	flush := func() error {
		if len(frames) == 0 {
			return nil
		}
		var total uint64
		for _, f := range frames {
			total += uint64(len(f))
		}
		_, err := frames.WriteTo(conn)
		s.bytesOut.Inc(total)
		frames = frames[:0]
		for _, p := range pooled {
			putBuf(p)
		}
		pooled = pooled[:0]
		return err
	}
	for resp := range responses {
		if broken {
			continue
		}
		p := getBuf()
		buf, err := encodeResponse(beginFrame((*p)[:0]), resp)
		if err == nil {
			err = finishFrame(buf, 0)
		}
		if err != nil {
			// Encoding failed (an unencodable document, an oversized
			// frame): the caller still deserves an answer.
			buf, _ = encodeResponse(beginFrame((*p)[:0]), &Response{ID: resp.ID, Err: err.Error()})
			if err = finishFrame(buf, 0); err != nil {
				putBuf(p)
				continue
			}
		}
		*p = buf
		frames = append(frames, buf)
		pooled = append(pooled, p)
		s.framesOut.Inc(1)
		var werr error
		if len(responses) == 0 || len(frames) >= writevBatch {
			werr = flush()
		}
		if werr != nil {
			s.log.Printf("wire: write to %s: %v", conn.RemoteAddr(), werr)
			conn.Close()
			broken = true
		}
	}
	if !broken {
		flush()
	}
	for _, p := range pooled {
		putBuf(p)
	}
}

// countingWriter feeds written byte counts into a counter; placed
// under the v1 path's bufio.Writer so it prices flushes, not copies.
type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Inc(uint64(n))
	return n, err
}

// routeString renders the balancer decision snapshot a request's trace
// context carried, for the slow-op log. "-" means the request rode
// without one — either sampling was off (the context costs zero bytes
// then, so no snapshot travels) or the read was not balancer-routed.
func routeString(c *trace.Context) string {
	if c == nil || c.Route == nil {
		return "-"
	}
	r := c.Route
	return fmt.Sprintf("pref=%s reason=%s frac=%d stale=%d gated=%t",
		r.Pref, r.Reason, r.FracPct, r.StaleSecs, r.Gated)
}

// CurrentOps snapshots the requests currently in dispatch, longest
// running first. Nil when ServerConfig.CurrentOp is off.
func (s *Server) CurrentOps() []trace.OpInfo {
	if s.curOps == nil {
		return nil
	}
	return s.curOps.Snapshot(s.env.Now())
}

// dispatch executes one request: the transport-owned export ops
// (metrics, trace, current_op and their push counterparts) are served
// here against the server's own state, everything else goes to the
// backend. On binary connections backends route read results through
// cluster.EncodedReadView when the serving view offers it, so
// responses carry each document's cached BSON-lite encoding
// (rawDoc/rawDocs) and the write loop splices bytes instead of
// re-serializing; JSON connections get the map forms as before.
func (s *Server) dispatch(p sim.Proc, req *Request, binary bool, tctx trace.Context) *Response {
	resp := &Response{}
	switch req.Op {
	case OpMetrics:
		snap := s.backend.Metrics().Snapshot()
		s.mu.Lock()
		others := make([]obs.Snapshot, 0, len(s.pushed))
		for _, ps := range s.pushed {
			others = append(others, ps)
		}
		s.mu.Unlock()
		merged := snap.Merge(others...)
		resp.Metrics = &merged
	case OpTrace:
		// Export spans from the recorder: a hex trace id in DocID
		// selects one trace (ring spans plus any pinned copies); no id
		// returns the most recent spans across all rings, newest first,
		// capped so one export frame cannot balloon.
		if req.DocID != "" {
			id, err := trace.ParseID(req.DocID)
			if err != nil {
				resp.Err = fmt.Sprintf("wire: bad trace id %q", req.DocID)
				return resp
			}
			resp.Spans = s.tracer.TraceSpans(id)
		} else {
			limit := req.Limit
			if limit <= 0 || limit > 1024 {
				limit = 256
			}
			resp.Spans = s.tracer.Recent(limit)
		}
	case OpCurrentOp:
		resp.Ops = s.CurrentOps()
	case OpTracePush:
		// Clients fold their locally recorded spans (driver/session
		// hops run client-side) into the server's recorder so a trace
		// export shows the whole causal tree.
		s.tracer.Import(req.Spans)
	case OpMetricsPush:
		if req.Snapshot == nil {
			resp.Err = "wire: metrics_push without a snapshot"
			return resp
		}
		src := req.Source
		if src == "" {
			src = "client"
		}
		s.mu.Lock()
		s.pushed[src] = req.Snapshot.Prefixed(src + ".")
		s.mu.Unlock()
	default:
		return s.backend.Dispatch(p, req, binary, tctx)
	}
	return resp
}
