package wire

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"decongestant/internal/cluster"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// Server exposes a replica set (running on a real-time environment)
// over TCP. Each connection handles requests serially; clients open
// one connection per concurrent caller.
type Server struct {
	env *sim.RealtimeEnv
	rs  *cluster.ReplicaSet

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	done  bool
	log   *log.Logger
}

// NewServer creates a server over the given replica set. The replica
// set must have been built on env.
func NewServer(env *sim.RealtimeEnv, rs *cluster.ReplicaSet, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{env: env, rs: rs, conns: map[net.Conn]struct{}{}, log: logger}
}

// Serve accepts connections on ln until Close. It returns after the
// listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.done
			s.mu.Unlock()
			if done {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting and closes every live connection.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	proc := s.env.Adhoc("wire/conn-" + conn.RemoteAddr().String())
	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Printf("wire: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.dispatch(proc, &req)
		resp.ID = req.ID
		if err := WriteFrame(conn, resp); err != nil {
			s.log.Printf("wire: write to %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// execRead runs a read op, honoring an afterClusterTime prerequisite
// when the request carries one, and returns the node's applied OpTime.
func (s *Server) execRead(p sim.Proc, req *Request, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, error) {
	after := oplog.OpTime{Secs: req.AfterSecs, Inc: req.AfterInc}
	return s.rs.ExecReadAfter(p, req.Node, after, fn)
}

func (s *Server) dispatch(p sim.Proc, req *Request) *Response {
	resp := &Response{}
	fail := func(err error) *Response {
		resp.Err = err.Error()
		return resp
	}
	if req.Node < 0 || req.Node >= len(s.rs.NodeIDs()) {
		if req.Op != OpTopology && req.Op != OpWriteBatch {
			return fail(fmt.Errorf("wire: bad node %d", req.Node))
		}
	}
	switch req.Op {
	case OpTopology:
		topo := &Topology{Primary: s.rs.PrimaryID()}
		for _, id := range s.rs.NodeIDs() {
			topo.Zones = append(topo.Zones, s.rs.Zone(id))
		}
		resp.Topo = topo
	case OpPing:
		s.rs.Ping(p, req.Node)
	case OpStatus:
		st := s.rs.ServerStatus(p, req.Node)
		body := &StatusBody{From: st.From, Primary: st.Primary}
		for _, m := range st.Members {
			body.Members = append(body.Members, Member{
				ID: m.ID, Primary: m.Primary, Secs: m.Applied.Secs, Inc: m.Applied.Inc,
			})
		}
		resp.Status = body
	case OpFindByID:
		res, ts, err := s.execRead(p, req, func(v cluster.ReadView) (any, error) {
			d, ok := v.FindByID(req.Collection, req.DocID)
			if !ok {
				return nil, nil
			}
			return d, nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = ts.Secs, ts.Inc
		if d, ok := res.(storage.Document); ok && d != nil {
			resp.Found = true
			resp.Doc = docToJSON(d)
		}
	case OpFindMany:
		res, ts, err := s.execRead(p, req, func(v cluster.ReadView) (any, error) {
			return v.FindManyByID(req.Collection, req.IDs), nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = ts.Secs, ts.Inc
		for _, d := range res.([]storage.Document) {
			resp.Docs = append(resp.Docs, docToJSON(d))
		}
	case OpFind:
		filter, err := DecodeFilter(req.Filter)
		if err != nil {
			return fail(err)
		}
		res, ts, err := s.execRead(p, req, func(v cluster.ReadView) (any, error) {
			return v.Find(req.Collection, filter, req.Limit), nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = ts.Secs, ts.Inc
		for _, d := range res.([]storage.Document) {
			resp.Docs = append(resp.Docs, docToJSON(d))
		}
	case OpCount:
		filter, err := DecodeFilter(req.Filter)
		if err != nil {
			return fail(err)
		}
		res, ts, err := s.execRead(p, req, func(v cluster.ReadView) (any, error) {
			return v.Count(req.Collection, filter), nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = ts.Secs, ts.Inc
		resp.Count = res.(int)
	case OpWriteBatch:
		_, commitTS, err := s.rs.ExecWriteTracked(p, func(tx cluster.WriteTxn) (any, error) {
			for _, m := range req.Muts {
				doc, derr := jsonToDoc(m.Doc)
				if derr != nil {
					return nil, derr
				}
				switch m.Kind {
				case "insert":
					if derr := tx.Insert(m.Collection, doc); derr != nil {
						return nil, derr
					}
				case "set":
					if derr := tx.Set(m.Collection, m.DocID, doc); derr != nil {
						return nil, derr
					}
				case "delete":
					if derr := tx.Delete(m.Collection, m.DocID); derr != nil {
						return nil, derr
					}
				default:
					return nil, fmt.Errorf("wire: unknown mutation kind %q", m.Kind)
				}
			}
			return nil, nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = commitTS.Secs, commitTS.Inc
	default:
		return fail(fmt.Errorf("wire: unknown op %q", req.Op))
	}
	return resp
}
