package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"decongestant/internal/cluster"
	"decongestant/internal/obs"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// Server exposes a replica set (running on a real-time environment)
// over TCP. Connections are pipelined: a reader goroutine decodes
// frames, each request is dispatched on its own proc, and id-tagged
// responses stream back in completion order — so one socket carries
// many requests in flight. Each connection speaks the protocol version
// negotiated by its opening handshake: v2 responses are encoded into
// pooled buffers and flushed in bursts through one writev, and
// document payloads come from the storage layer's encoding cache; v1
// connections keep the original JSON codec.
type Server struct {
	env *sim.RealtimeEnv
	rs  *cluster.ReplicaSet

	// Per-opcode request counts and service latencies, registered in
	// the cluster's registry so the metrics op reports them alongside
	// the node instruments. Built once at construction; ops outside the
	// protocol land in the "other" bucket.
	opCounts map[string]*obs.Counter
	opLat    map[string]*obs.Histogram

	// Transport instruments: live connections by negotiated version,
	// frame and byte volume each way, and bodies that failed to decode.
	connsByVer [V2 + 1]*obs.Gauge
	framesIn   *obs.Counter
	framesOut  *obs.Counter
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
	decodeErrs *obs.Counter

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	pushed map[string]obs.Snapshot // client snapshots by source, pre-prefixed
	done   bool
	log    *log.Logger
}

// wireOps enumerates the protocol's opcodes for instrument setup.
var wireOps = []string{
	OpTopology, OpPing, OpStatus, OpFindByID, OpFindMany, OpFind,
	OpCount, OpWriteBatch, OpMetrics, OpMetricsPush, "other",
}

// NewServer creates a server over the given replica set. The replica
// set must have been built on env.
func NewServer(env *sim.RealtimeEnv, rs *cluster.ReplicaSet, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Server{
		env: env, rs: rs,
		opCounts: make(map[string]*obs.Counter, len(wireOps)),
		opLat:    make(map[string]*obs.Histogram, len(wireOps)),
		conns:    map[net.Conn]struct{}{},
		pushed:   map[string]obs.Snapshot{},
		log:      logger,
	}
	reg := rs.Metrics()
	for _, op := range wireOps {
		s.opCounts[op] = reg.Counter(obs.Name("wire.requests", "op", op))
		s.opLat[op] = reg.Histogram(obs.Name("wire.request_latency", "op", op))
	}
	s.connsByVer[V1] = reg.Gauge(obs.Name("wire.conns", "ver", "1"))
	s.connsByVer[V2] = reg.Gauge(obs.Name("wire.conns", "ver", "2"))
	s.framesIn = reg.Counter("wire.frames_in")
	s.framesOut = reg.Counter("wire.frames_out")
	s.bytesIn = reg.Counter("wire.bytes_in")
	s.bytesOut = reg.Counter("wire.bytes_out")
	s.decodeErrs = reg.Counter("wire.decode_errors")
	return s
}

// instruments returns the count and latency instruments for an opcode.
func (s *Server) instruments(op string) (*obs.Counter, *obs.Histogram) {
	c, ok := s.opCounts[op]
	if !ok {
		return s.opCounts["other"], s.opLat["other"]
	}
	return c, s.opLat[op]
}

// Serve accepts connections on ln until Close. It returns after the
// listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.done
			s.mu.Unlock()
			if done {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting and closes every live connection.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// handle serves one connection with request pipelining: the reader
// loop decodes frames and hands each request to its own dispatch
// goroutine, so a slow operation (a blocked afterClusterTime read, a
// long scan) never holds up the requests queued behind it. Responses
// carry the request id and return in completion order; the client
// matches them back to callers.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	ver, err := negotiate(br, conn)
	if err != nil {
		if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
			s.log.Printf("wire: handshake with %s: %v", conn.RemoteAddr(), err)
		}
		return
	}
	s.connsByVer[ver].Add(1)
	defer s.connsByVer[ver].Add(-1)
	binary := ver >= V2

	responses := make(chan *Response, 64)
	writerDone := make(chan struct{})
	go s.writeLoop(conn, ver, responses, writerDone)
	var inflight sync.WaitGroup
	fr := &frameReader{r: br}
	// One proc name per connection, not per request: formatting a
	// fresh name for every dispatch shows up in allocation profiles.
	procName := "wire/req-" + conn.RemoteAddr().String()
	for {
		body, err := fr.next()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Printf("wire: read from %s: %v", conn.RemoteAddr(), err)
			}
			break
		}
		s.framesIn.Inc(1)
		s.bytesIn.Inc(uint64(4 + len(body)))
		var req Request
		if binary {
			err = decodeRequest(body, &req)
		} else {
			err = decodeJSONBody(body, &req)
		}
		if err != nil {
			// A frame that doesn't decode means a broken or hostile
			// peer; the stream has no trustworthy continuation.
			s.decodeErrs.Inc(1)
			s.log.Printf("wire: decode from %s: %v", conn.RemoteAddr(), err)
			break
		}
		r := req
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			// The environment may shut down while a request is in
			// flight; swallow the stop signal like Spawn's wrapper does.
			defer func() {
				if v := recover(); v != nil && !sim.ErrStopped(v) {
					panic(v)
				}
			}()
			proc := s.env.Adhoc(procName)
			count, lat := s.instruments(r.Op)
			start := proc.Now()
			resp := s.dispatch(proc, &r, binary)
			count.Inc(1)
			lat.Observe(proc.Now() - start)
			resp.ID = r.ID
			responses <- resp
		}()
	}
	inflight.Wait()
	close(responses)
	<-writerDone
}

// writeLoop is the connection's single writer. The v1 path drains
// completed responses into a buffered writer and flushes only when no
// further response is immediately queued; the v2 path encodes each
// response into a pooled buffer and hands bursts to the kernel as one
// writev (net.Buffers), so neither codec pays a syscall per frame. On
// a write error it closes the connection (which unblocks the reader)
// and keeps draining so in-flight dispatchers never block on the
// response channel.
func (s *Server) writeLoop(conn net.Conn, ver byte, responses <-chan *Response, done chan<- struct{}) {
	defer close(done)
	if ver >= V2 {
		s.writeLoopBinary(conn, responses)
		return
	}
	bw := bufio.NewWriter(countingWriter{w: conn, c: s.bytesOut})
	broken := false
	for resp := range responses {
		if broken {
			continue
		}
		err := WriteFrame(bw, resp)
		s.framesOut.Inc(1)
		if err == nil && len(responses) == 0 {
			err = bw.Flush()
		}
		if err != nil {
			s.log.Printf("wire: write to %s: %v", conn.RemoteAddr(), err)
			conn.Close()
			broken = true
		}
	}
	if !broken {
		bw.Flush()
	}
}

// writevBatch bounds how many frames accumulate before a flush even
// while more completions are queued (IOV_MAX headroom).
const writevBatch = 64

func (s *Server) writeLoopBinary(conn net.Conn, responses <-chan *Response) {
	broken := false
	var frames net.Buffers
	var pooled []*[]byte
	flush := func() error {
		if len(frames) == 0 {
			return nil
		}
		var total uint64
		for _, f := range frames {
			total += uint64(len(f))
		}
		_, err := frames.WriteTo(conn)
		s.bytesOut.Inc(total)
		frames = frames[:0]
		for _, p := range pooled {
			putBuf(p)
		}
		pooled = pooled[:0]
		return err
	}
	for resp := range responses {
		if broken {
			continue
		}
		p := getBuf()
		buf, err := encodeResponse(beginFrame((*p)[:0]), resp)
		if err == nil {
			err = finishFrame(buf, 0)
		}
		if err != nil {
			// Encoding failed (an unencodable document, an oversized
			// frame): the caller still deserves an answer.
			buf, _ = encodeResponse(beginFrame((*p)[:0]), &Response{ID: resp.ID, Err: err.Error()})
			if err = finishFrame(buf, 0); err != nil {
				putBuf(p)
				continue
			}
		}
		*p = buf
		frames = append(frames, buf)
		pooled = append(pooled, p)
		s.framesOut.Inc(1)
		var werr error
		if len(responses) == 0 || len(frames) >= writevBatch {
			werr = flush()
		}
		if werr != nil {
			s.log.Printf("wire: write to %s: %v", conn.RemoteAddr(), werr)
			conn.Close()
			broken = true
		}
	}
	if !broken {
		flush()
	}
	for _, p := range pooled {
		putBuf(p)
	}
}

// countingWriter feeds written byte counts into a counter; placed
// under the v1 path's bufio.Writer so it prices flushes, not copies.
type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Inc(uint64(n))
	return n, err
}

// execRead runs a read op, honoring an afterClusterTime prerequisite
// when the request carries one, and returns the node's applied OpTime.
func (s *Server) execRead(p sim.Proc, req *Request, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, error) {
	after := oplog.OpTime{Secs: req.AfterSecs, Inc: req.AfterInc}
	return s.rs.ExecReadAfter(p, req.Node, after, fn)
}

// dispatch executes one request. On binary connections read results
// flow through cluster.EncodedReadView when the serving view offers
// it, so responses carry each document's cached BSON-lite encoding
// (rawDoc/rawDocs) and the write loop splices bytes instead of
// re-serializing; JSON connections get the map forms as before.
func (s *Server) dispatch(p sim.Proc, req *Request, binary bool) *Response {
	resp := &Response{}
	fail := func(err error) *Response {
		resp.Err = err.Error()
		return resp
	}
	if req.Node < 0 || req.Node >= len(s.rs.NodeIDs()) {
		switch req.Op {
		case OpTopology, OpWriteBatch, OpMetrics, OpMetricsPush:
			// Not addressed to a node.
		default:
			return fail(fmt.Errorf("wire: bad node %d", req.Node))
		}
	}
	switch req.Op {
	case OpTopology:
		topo := &Topology{Primary: s.rs.PrimaryID()}
		for _, id := range s.rs.NodeIDs() {
			topo.Zones = append(topo.Zones, s.rs.Zone(id))
		}
		resp.Topo = topo
	case OpPing:
		if s.rs.Ping(p, req.Node) < 0 {
			return fail(cluster.ErrNodeDown)
		}
	case OpStatus:
		st := s.rs.ServerStatus(p, req.Node)
		body := &StatusBody{From: st.From, Primary: st.Primary}
		for _, m := range st.Members {
			body.Members = append(body.Members, Member{
				ID: m.ID, Primary: m.Primary, Secs: m.Applied.Secs, Inc: m.Applied.Inc,
			})
		}
		resp.Status = body
	case OpFindByID:
		res, ts, err := s.execRead(p, req, func(v cluster.ReadView) (any, error) {
			if binary {
				if ev, ok := v.(cluster.EncodedReadView); ok {
					if e, found := ev.FindByIDEncoded(req.Collection, req.DocID); found {
						return e, nil
					}
					return nil, nil
				}
			}
			d, ok := v.FindByID(req.Collection, req.DocID)
			if !ok {
				return nil, nil
			}
			return d, nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = ts.Secs, ts.Inc
		switch d := res.(type) {
		case *storage.EncodedDoc:
			resp.Found = true
			resp.rawDoc = d.Bytes()
		case storage.Document:
			if d != nil {
				resp.Found = true
				s.fillDoc(resp, binary, d)
			}
		}
	case OpFindMany:
		res, ts, err := s.execRead(p, req, func(v cluster.ReadView) (any, error) {
			if binary {
				if ev, ok := v.(cluster.EncodedReadView); ok {
					return ev.FindManyByIDEncoded(req.Collection, req.IDs), nil
				}
			}
			return v.FindManyByID(req.Collection, req.IDs), nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = ts.Secs, ts.Inc
		s.fillDocs(resp, binary, res)
	case OpFind:
		filter, err := req.filterValue()
		if err != nil {
			return fail(err)
		}
		res, ts, err := s.execRead(p, req, func(v cluster.ReadView) (any, error) {
			if binary {
				if ev, ok := v.(cluster.EncodedReadView); ok {
					return ev.FindEncoded(req.Collection, filter, req.Limit), nil
				}
			}
			return v.Find(req.Collection, filter, req.Limit), nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = ts.Secs, ts.Inc
		s.fillDocs(resp, binary, res)
	case OpCount:
		filter, err := req.filterValue()
		if err != nil {
			return fail(err)
		}
		res, ts, err := s.execRead(p, req, func(v cluster.ReadView) (any, error) {
			return v.Count(req.Collection, filter), nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = ts.Secs, ts.Inc
		resp.Count = res.(int)
	case OpWriteBatch:
		_, commitTS, err := s.rs.ExecWriteTracked(p, func(tx cluster.WriteTxn) (any, error) {
			for i := range req.Muts {
				m := &req.Muts[i]
				doc, derr := m.document()
				if derr != nil {
					return nil, derr
				}
				switch m.Kind {
				case "insert":
					if derr := tx.Insert(m.Collection, doc); derr != nil {
						return nil, derr
					}
				case "set":
					if derr := tx.Set(m.Collection, m.DocID, doc); derr != nil {
						return nil, derr
					}
				case "delete":
					if derr := tx.Delete(m.Collection, m.DocID); derr != nil {
						return nil, derr
					}
				default:
					return nil, fmt.Errorf("wire: unknown mutation kind %q", m.Kind)
				}
			}
			return nil, nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = commitTS.Secs, commitTS.Inc
	case OpMetrics:
		snap := s.rs.Metrics().Snapshot()
		s.mu.Lock()
		others := make([]obs.Snapshot, 0, len(s.pushed))
		for _, ps := range s.pushed {
			others = append(others, ps)
		}
		s.mu.Unlock()
		merged := snap.Merge(others...)
		resp.Metrics = &merged
	case OpMetricsPush:
		if req.Snapshot == nil {
			return fail(fmt.Errorf("wire: metrics_push without a snapshot"))
		}
		src := req.Source
		if src == "" {
			src = "client"
		}
		s.mu.Lock()
		s.pushed[src] = req.Snapshot.Prefixed(src + ".")
		s.mu.Unlock()
	default:
		return fail(fmt.Errorf("wire: unknown op %q", req.Op))
	}
	return resp
}

// fillDoc routes a single-document result to the codec-appropriate
// response field.
func (s *Server) fillDoc(resp *Response, binary bool, d storage.Document) {
	if binary {
		resp.doc = d
	} else {
		resp.Doc = docToJSON(d)
	}
}

// fillDocs routes a multi-document read result — encoded wrappers or
// plain documents — to the codec-appropriate response fields.
func (s *Server) fillDocs(resp *Response, binary bool, res any) {
	switch ds := res.(type) {
	case []*storage.EncodedDoc:
		raw := make([][]byte, 0, len(ds))
		for _, e := range ds {
			raw = append(raw, e.Bytes())
		}
		resp.rawDocs = raw
	case []storage.Document:
		if binary {
			resp.docs = ds
			return
		}
		for _, d := range ds {
			resp.Docs = append(resp.Docs, docToJSON(d))
		}
	}
}
