package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"decongestant/internal/cluster"
	"decongestant/internal/obs"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// Server exposes a replica set (running on a real-time environment)
// over TCP. Connections are pipelined: a reader goroutine decodes
// frames, each request is dispatched on its own proc, and id-tagged
// responses stream back through a buffered writer in completion
// order — so one socket carries many requests in flight.
type Server struct {
	env *sim.RealtimeEnv
	rs  *cluster.ReplicaSet

	// Per-opcode request counts and service latencies, registered in
	// the cluster's registry so the metrics op reports them alongside
	// the node instruments. Built once at construction; ops outside the
	// protocol land in the "other" bucket.
	opCounts map[string]*obs.Counter
	opLat    map[string]*obs.Histogram

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	pushed map[string]obs.Snapshot // client snapshots by source, pre-prefixed
	done   bool
	log    *log.Logger
}

// wireOps enumerates the protocol's opcodes for instrument setup.
var wireOps = []string{
	OpTopology, OpPing, OpStatus, OpFindByID, OpFindMany, OpFind,
	OpCount, OpWriteBatch, OpMetrics, OpMetricsPush, "other",
}

// NewServer creates a server over the given replica set. The replica
// set must have been built on env.
func NewServer(env *sim.RealtimeEnv, rs *cluster.ReplicaSet, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Server{
		env: env, rs: rs,
		opCounts: make(map[string]*obs.Counter, len(wireOps)),
		opLat:    make(map[string]*obs.Histogram, len(wireOps)),
		conns:    map[net.Conn]struct{}{},
		pushed:   map[string]obs.Snapshot{},
		log:      logger,
	}
	reg := rs.Metrics()
	for _, op := range wireOps {
		s.opCounts[op] = reg.Counter(obs.Name("wire.requests", "op", op))
		s.opLat[op] = reg.Histogram(obs.Name("wire.request_latency", "op", op))
	}
	return s
}

// instruments returns the count and latency instruments for an opcode.
func (s *Server) instruments(op string) (*obs.Counter, *obs.Histogram) {
	c, ok := s.opCounts[op]
	if !ok {
		return s.opCounts["other"], s.opLat["other"]
	}
	return c, s.opLat[op]
}

// Serve accepts connections on ln until Close. It returns after the
// listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.done
			s.mu.Unlock()
			if done {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting and closes every live connection.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// handle serves one connection with request pipelining: the reader
// loop decodes frames and hands each request to its own dispatch
// goroutine, so a slow operation (a blocked afterClusterTime read, a
// long scan) never holds up the requests queued behind it. Responses
// carry the request id and return in completion order; the client
// matches them back to callers.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	responses := make(chan *Response, 64)
	writerDone := make(chan struct{})
	go s.writeLoop(conn, responses, writerDone)
	var inflight sync.WaitGroup
	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Printf("wire: read from %s: %v", conn.RemoteAddr(), err)
			}
			break
		}
		r := req
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			// The environment may shut down while a request is in
			// flight; swallow the stop signal like Spawn's wrapper does.
			defer func() {
				if v := recover(); v != nil && !sim.ErrStopped(v) {
					panic(v)
				}
			}()
			proc := s.env.Adhoc(fmt.Sprintf("wire/req-%s-%d", conn.RemoteAddr(), r.ID))
			count, lat := s.instruments(r.Op)
			start := proc.Now()
			resp := s.dispatch(proc, &r)
			count.Inc(1)
			lat.Observe(proc.Now() - start)
			resp.ID = r.ID
			responses <- resp
		}()
	}
	inflight.Wait()
	close(responses)
	<-writerDone
}

// writeLoop is the connection's single writer: it drains completed
// responses into a buffered writer and flushes only when no further
// response is immediately queued, so bursts of pipelined completions
// coalesce into fewer syscalls. On a write error it closes the
// connection (which unblocks the reader) and keeps draining so
// in-flight dispatchers never block on the response channel.
func (s *Server) writeLoop(conn net.Conn, responses <-chan *Response, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriter(conn)
	broken := false
	for resp := range responses {
		if broken {
			continue
		}
		err := WriteFrame(bw, resp)
		if err == nil && len(responses) == 0 {
			err = bw.Flush()
		}
		if err != nil {
			s.log.Printf("wire: write to %s: %v", conn.RemoteAddr(), err)
			conn.Close()
			broken = true
		}
	}
	if !broken {
		bw.Flush()
	}
}

// execRead runs a read op, honoring an afterClusterTime prerequisite
// when the request carries one, and returns the node's applied OpTime.
func (s *Server) execRead(p sim.Proc, req *Request, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, error) {
	after := oplog.OpTime{Secs: req.AfterSecs, Inc: req.AfterInc}
	return s.rs.ExecReadAfter(p, req.Node, after, fn)
}

func (s *Server) dispatch(p sim.Proc, req *Request) *Response {
	resp := &Response{}
	fail := func(err error) *Response {
		resp.Err = err.Error()
		return resp
	}
	if req.Node < 0 || req.Node >= len(s.rs.NodeIDs()) {
		switch req.Op {
		case OpTopology, OpWriteBatch, OpMetrics, OpMetricsPush:
			// Not addressed to a node.
		default:
			return fail(fmt.Errorf("wire: bad node %d", req.Node))
		}
	}
	switch req.Op {
	case OpTopology:
		topo := &Topology{Primary: s.rs.PrimaryID()}
		for _, id := range s.rs.NodeIDs() {
			topo.Zones = append(topo.Zones, s.rs.Zone(id))
		}
		resp.Topo = topo
	case OpPing:
		if s.rs.Ping(p, req.Node) < 0 {
			return fail(cluster.ErrNodeDown)
		}
	case OpStatus:
		st := s.rs.ServerStatus(p, req.Node)
		body := &StatusBody{From: st.From, Primary: st.Primary}
		for _, m := range st.Members {
			body.Members = append(body.Members, Member{
				ID: m.ID, Primary: m.Primary, Secs: m.Applied.Secs, Inc: m.Applied.Inc,
			})
		}
		resp.Status = body
	case OpFindByID:
		res, ts, err := s.execRead(p, req, func(v cluster.ReadView) (any, error) {
			d, ok := v.FindByID(req.Collection, req.DocID)
			if !ok {
				return nil, nil
			}
			return d, nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = ts.Secs, ts.Inc
		if d, ok := res.(storage.Document); ok && d != nil {
			resp.Found = true
			resp.Doc = docToJSON(d)
		}
	case OpFindMany:
		res, ts, err := s.execRead(p, req, func(v cluster.ReadView) (any, error) {
			return v.FindManyByID(req.Collection, req.IDs), nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = ts.Secs, ts.Inc
		for _, d := range res.([]storage.Document) {
			resp.Docs = append(resp.Docs, docToJSON(d))
		}
	case OpFind:
		filter, err := DecodeFilter(req.Filter)
		if err != nil {
			return fail(err)
		}
		res, ts, err := s.execRead(p, req, func(v cluster.ReadView) (any, error) {
			return v.Find(req.Collection, filter, req.Limit), nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = ts.Secs, ts.Inc
		for _, d := range res.([]storage.Document) {
			resp.Docs = append(resp.Docs, docToJSON(d))
		}
	case OpCount:
		filter, err := DecodeFilter(req.Filter)
		if err != nil {
			return fail(err)
		}
		res, ts, err := s.execRead(p, req, func(v cluster.ReadView) (any, error) {
			return v.Count(req.Collection, filter), nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = ts.Secs, ts.Inc
		resp.Count = res.(int)
	case OpWriteBatch:
		_, commitTS, err := s.rs.ExecWriteTracked(p, func(tx cluster.WriteTxn) (any, error) {
			for _, m := range req.Muts {
				doc, derr := jsonToDoc(m.Doc)
				if derr != nil {
					return nil, derr
				}
				switch m.Kind {
				case "insert":
					if derr := tx.Insert(m.Collection, doc); derr != nil {
						return nil, derr
					}
				case "set":
					if derr := tx.Set(m.Collection, m.DocID, doc); derr != nil {
						return nil, derr
					}
				case "delete":
					if derr := tx.Delete(m.Collection, m.DocID); derr != nil {
						return nil, derr
					}
				default:
					return nil, fmt.Errorf("wire: unknown mutation kind %q", m.Kind)
				}
			}
			return nil, nil
		})
		if err != nil {
			return fail(err)
		}
		resp.OpSecs, resp.OpInc = commitTS.Secs, commitTS.Inc
	case OpMetrics:
		snap := s.rs.Metrics().Snapshot()
		s.mu.Lock()
		others := make([]obs.Snapshot, 0, len(s.pushed))
		for _, ps := range s.pushed {
			others = append(others, ps)
		}
		s.mu.Unlock()
		merged := snap.Merge(others...)
		resp.Metrics = &merged
	case OpMetricsPush:
		if req.Snapshot == nil {
			return fail(fmt.Errorf("wire: metrics_push without a snapshot"))
		}
		src := req.Source
		if src == "" {
			src = "client"
		}
		s.mu.Lock()
		s.pushed[src] = req.Snapshot.Prefixed(src + ".")
		s.mu.Unlock()
	default:
		return fail(fmt.Errorf("wire: unknown op %q", req.Op))
	}
	return resp
}
