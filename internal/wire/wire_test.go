package wire

import (
	"bytes"
	"net"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/obs"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{ID: 7, Op: OpFindByID, Node: 1, Collection: "c", DocID: "k"}
	if err := WriteFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Op != in.Op || out.Node != in.Node ||
		out.Collection != in.Collection || out.DocID != in.DocID {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var out Request
	if err := ReadFrame(&buf, &out); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestFilterEncodingRoundTrip(t *testing.T) {
	f := storage.Filter{
		"a": storage.Eq(5),
		"b": storage.Gt("x"),
		"c": storage.In(1, 2, 3),
		"d": storage.Exists(),
		"e": storage.Lte(2.5),
	}
	dec, err := DecodeFilter(EncodeFilter(f))
	if err != nil {
		t.Fatal(err)
	}
	doc := storage.D{"a": int64(5), "b": "z", "c": int64(2), "d": true, "e": 2.5}
	nd, _ := doc.Normalized()
	if !f.Matches(nd) || !dec.Matches(nd) {
		t.Fatal("filters disagree on matching doc")
	}
	bad := storage.D{"a": int64(6), "b": "z", "c": int64(2), "d": true, "e": 2.5}
	nb, _ := bad.Normalized()
	if dec.Matches(nb) {
		t.Fatal("decoded filter matched non-matching doc")
	}
}

func TestJSONDocRoundTripNormalizesIntegers(t *testing.T) {
	d := storage.D{"i": int64(42), "f": 2.5, "s": "x", "nested": storage.D{"n": int64(1)},
		"arr": []any{int64(1), "two"}}
	nd, _ := d.Normalized()
	back, err := jsonToDoc(docToJSON(nd))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back["i"].(int64); !ok {
		t.Fatalf("integral number decoded as %T", back["i"])
	}
	if !storage.Equal(nd, back) {
		t.Fatalf("mismatch: %v vs %v", nd, back)
	}
}

// startTestServer runs a real-time replica set behind a TCP listener.
func startTestServer(t *testing.T) (*Server, *cluster.ReplicaSet, string, func()) {
	t.Helper()
	env := sim.NewRealtimeEnv(1)
	cfg := cluster.DefaultConfig()
	// Tiny service times: the tests exercise protocol correctness, not
	// queueing.
	cfg.ReadCost = 50 * time.Microsecond
	cfg.WriteCost = 100 * time.Microsecond
	cfg.ApplyCost = 20 * time.Microsecond
	cfg.GetMoreCost = 20 * time.Microsecond
	cfg.StatusCost = 20 * time.Microsecond
	cfg.RTTSameZone = 100 * time.Microsecond
	cfg.RTTCrossZoneBase = 200 * time.Microsecond
	cfg.ReplIdlePoll = 2 * time.Millisecond
	cfg.HeartbeatInterval = 50 * time.Millisecond
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	srv := NewServer(env, rs, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	stop := func() {
		srv.Close()
		env.Shutdown()
	}
	return srv, rs, ln.Addr().String(), stop
}

func TestWireTopologyAndPing(t *testing.T) {
	_, rs, addr, stop := startTestServer(t)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.PrimaryID(); got != rs.PrimaryID() {
		t.Fatalf("primary %d, want %d", got, rs.PrimaryID())
	}
	if len(cl.NodeIDs()) != 3 {
		t.Fatalf("nodes %v", cl.NodeIDs())
	}
	if cl.Zone(0) == "" || cl.Zone(1) == "" {
		t.Fatal("zones missing")
	}
	p := sim.NewRealtimeEnv(2).Adhoc("test")
	if rtt := cl.Ping(p, 0); rtt <= 0 || rtt > time.Second {
		t.Fatalf("implausible rtt %v", rtt)
	}
}

func TestWireWriteReadAcrossNodes(t *testing.T) {
	_, rs, addr, stop := startTestServer(t)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := sim.NewRealtimeEnv(3).Adhoc("test")

	if _, err := cl.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
		if err := tx.Insert("kv", storage.D{"_id": "a", "v": 1, "tag": "x"}); err != nil {
			return nil, err
		}
		return nil, tx.Insert("kv", storage.D{"_id": "b", "v": 2, "tag": "x"})
	}); err != nil {
		t.Fatal(err)
	}
	// Read from the primary immediately.
	res, err := cl.ExecRead(p, rs.PrimaryID(), func(v cluster.ReadView) (any, error) {
		d, ok := v.FindByID("kv", "a")
		if !ok {
			return nil, nil
		}
		return d.Int("v"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.(int64) != 1 {
		t.Fatalf("v=%v", res)
	}
	// Wait for replication; read from a secondary.
	time.Sleep(200 * time.Millisecond)
	secID := rs.SecondaryIDs()[0]
	res, err = cl.ExecRead(p, secID, func(v cluster.ReadView) (any, error) {
		docs := v.Find("kv", storage.Filter{"tag": storage.Eq("x")}, 0)
		return len(docs), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 2 {
		t.Fatalf("secondary sees %v docs, want 2", res)
	}
	// Count and FindMany.
	res, err = cl.ExecRead(p, secID, func(v cluster.ReadView) (any, error) {
		n := v.Count("kv", storage.Filter{"v": storage.Gte(1)})
		docs := v.FindManyByID("kv", []string{"a", "b", "missing"})
		return []int{n, len(docs)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	pair := res.([]int)
	if pair[0] != 2 || pair[1] != 2 {
		t.Fatalf("count=%d findMany=%d", pair[0], pair[1])
	}
}

func TestWireReadModifyWriteTransaction(t *testing.T) {
	_, _, addr, stop := startTestServer(t)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := sim.NewRealtimeEnv(4).Adhoc("test")
	if _, err := cl.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert("acct", storage.D{"_id": "x", "balance": 100})
	}); err != nil {
		t.Fatal(err)
	}
	// Read-modify-write through the remote transaction.
	if _, err := cl.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
		d, ok := tx.FindByID("acct", "x")
		if !ok {
			t.Error("doc missing in txn read")
			return nil, nil
		}
		return nil, tx.Set("acct", "x", storage.D{"balance": d.Int("balance") + 50})
	}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.ExecRead(p, cl.PrimaryID(), func(v cluster.ReadView) (any, error) {
		d, _ := v.FindByID("acct", "x")
		return d.Int("balance"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.(int64) != 150 {
		t.Fatalf("balance=%v", res)
	}
}

func TestWireServerStatus(t *testing.T) {
	_, rs, addr, stop := startTestServer(t)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := sim.NewRealtimeEnv(5).Adhoc("test")
	st := cl.ServerStatus(p, rs.PrimaryID())
	if len(st.Members) != 3 {
		t.Fatalf("members %d", len(st.Members))
	}
	if st.Primary != rs.PrimaryID() {
		t.Fatalf("primary %d", st.Primary)
	}
	if st.MaxSecondaryStalenessSecs() > 5 {
		t.Fatalf("staleness %d on idle cluster", st.MaxSecondaryStalenessSecs())
	}
}

// TestDecongestantOverWire runs the full stack — driver.Client, Read
// Balancer, Router — against the TCP server, proving the wire client
// satisfies the same contract as the in-process cluster.
func TestDecongestantOverWire(t *testing.T) {
	_, _, addr, stop := startTestServer(t)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	env := sim.NewRealtimeEnv(6)
	defer env.Shutdown()
	params := core.DefaultParams()
	params.Period = 300 * time.Millisecond
	params.StalenessPoll = 100 * time.Millisecond
	params.RTTPing = 100 * time.Millisecond
	sys := core.NewSystem(env, cl, params)

	p := env.Adhoc("seed")
	if _, _, err := sys.Router.Write(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert("kv", storage.D{"_id": "hot", "v": 0})
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // replicate

	done := make(chan struct{})
	env.Spawn("reader", func(p sim.Proc) {
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, _, _, err := sys.Router.Read(p, func(v cluster.ReadView) (any, error) {
				d, _ := v.FindByID("kv", "hot")
				return d.Int("v"), nil
			}); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
		}
	})
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("reads over wire timed out")
	}
	prim, sec := sys.Router.Counts(false)
	if prim+sec != 200 {
		t.Fatalf("counted %d reads", prim+sec)
	}
	if sec == 0 {
		t.Error("no reads routed to secondaries despite 10% floor")
	}
	if sys.Balancer.Stats().StatusPolls == 0 {
		t.Error("balancer never polled serverStatus over the wire")
	}
}

func TestWireConcurrentClients(t *testing.T) {
	_, _, addr, stop := startTestServer(t)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	env := sim.NewRealtimeEnv(7)
	defer env.Shutdown()
	p := env.Adhoc("seed")
	if _, err := cl.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert("kv", storage.D{"_id": "k", "v": 1})
	}); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			q := env.Adhoc("worker")
			for j := 0; j < 50; j++ {
				if _, err := cl.ExecRead(q, 0, func(v cluster.ReadView) (any, error) {
					v.FindByID("kv", "k")
					return nil, nil
				}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("concurrent clients timed out")
		}
	}
}

func TestWireBadRequests(t *testing.T) {
	_, _, addr, stop := startTestServer(t)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.roundTrip(&Request{Op: "bogus"}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := cl.roundTrip(&Request{Op: OpFindByID, Node: 99}); err == nil {
		t.Error("bad node accepted")
	}
	if _, err := cl.roundTrip(&Request{Op: OpWriteBatch, Muts: []Mutation{{Kind: "explode"}}}); err == nil {
		t.Error("unknown mutation kind accepted")
	}
	// The connection must still work after errors.
	if _, err := cl.roundTrip(&Request{Op: OpTopology}); err != nil {
		t.Fatalf("connection broken after error responses: %v", err)
	}
}

var _ = driver.Primary // keep driver imported for the full-stack test

// TestCausalSessionOverWire: read-your-writes at a secondary through
// the TCP protocol's afterClusterTime support.
func TestCausalSessionOverWire(t *testing.T) {
	env := sim.NewRealtimeEnv(10)
	cfg := cluster.DefaultConfig()
	cfg.ReadCost = 50 * time.Microsecond
	cfg.WriteCost = 100 * time.Microsecond
	cfg.ApplyCost = 20 * time.Microsecond
	cfg.ReplIdlePoll = 150 * time.Millisecond // visible staleness window
	cfg.HeartbeatInterval = 50 * time.Millisecond
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	srv := NewServer(env, rs, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() { srv.Close(); env.Shutdown() }()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	clientEnv := sim.NewRealtimeEnv(11)
	defer clientEnv.Shutdown()
	sess := driver.NewClient(clientEnv, cl).NewSession()
	if !sess.Causal() {
		t.Fatal("wire session not causal")
	}
	p := clientEnv.Adhoc("test")
	if _, _, err := sess.Write(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert("kv", storage.D{"_id": "ryw", "v": 1})
	}); err != nil {
		t.Fatal(err)
	}
	if sess.OperationTime().IsZero() {
		t.Fatal("token not advanced by wire write")
	}
	// Session read with Secondary preference must observe the write,
	// even though replication polls only every 150ms.
	res, _, _, err := sess.Read(p, driver.ReadOptions{Pref: driver.Secondary},
		func(v cluster.ReadView) (any, error) {
			_, ok := v.FindByID("kv", "ryw")
			return ok, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !res.(bool) {
		t.Fatal("causal session read over wire missed the session's write")
	}
}

// TestWireMetricsRoundTrip is the acceptance check for the metrics op:
// after a workload runs over the wire, a plain client fetch shows
// nonzero cluster-, driver- and balancer-level instruments — the
// latter two arriving via metrics_push from the client side, where
// those layers actually live.
func TestWireMetricsRoundTrip(t *testing.T) {
	_, rs, addr, stop := startTestServer(t)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	env := sim.NewRealtimeEnv(12)
	defer env.Shutdown()
	params := core.DefaultParams()
	params.Period = 300 * time.Millisecond
	params.StalenessPoll = 100 * time.Millisecond
	params.RTTPing = 100 * time.Millisecond
	sys := core.NewSystem(env, cl, params)

	p := env.Adhoc("seed")
	if _, _, err := sys.Router.Write(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert("kv", storage.D{"_id": "m", "v": 0})
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	env.Spawn("reader", func(p sim.Proc) {
		defer close(done)
		for i := 0; i < 100; i++ {
			sys.Router.Read(p, func(v cluster.ReadView) (any, error) {
				v.FindByID("kv", "m")
				return nil, nil
			})
		}
	})
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workload timed out")
	}

	// Push the client-side registry (driver + balancer instruments).
	if err := cl.PushMetrics("app", sys.Client.Metrics().Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		obs.Name("cluster.reads", "node", "0"),
		obs.Name("wire.requests", "op", OpFindByID),
		obs.Name("app.driver.selections", "pref", "primary"),
	} {
		if snap.CounterValue(name) == 0 {
			t.Errorf("%s is zero in the fetched snapshot", name)
		}
	}
	if _, ok := snap.Get("app.balancer.fraction_pct"); !ok {
		t.Error("pushed balancer gauge missing from the fetched snapshot")
	}
	if in, ok := snap.Get(obs.Name("wire.request_latency", "op", OpFindByID)); !ok || in.Hist == nil || in.Hist.Count == 0 {
		t.Error("per-op latency histogram empty")
	}
	// A re-push replaces, not duplicates, the source's snapshot.
	if err := cl.PushMetrics("app", sys.Client.Metrics().Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap2, err := cl.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, in := range snap2.Instruments {
		if in.Name == "app.balancer.fraction_pct" {
			seen++
		}
	}
	if seen != 1 {
		t.Errorf("re-push left %d copies of the gauge, want 1", seen)
	}
	_ = rs
}

// TestWirePingDownNodeIsNegative: a down node's probe fails in-band,
// so client-side RTT estimators skip it.
func TestWirePingDownNodeIsNegative(t *testing.T) {
	_, rs, addr, stop := startTestServer(t)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := sim.NewRealtimeEnv(13).Adhoc("test")
	down := rs.SecondaryIDs()[0]
	rs.SetDown(down, true)
	if rtt := cl.Ping(p, down); rtt >= 0 {
		t.Fatalf("ping of a down node returned %v, want negative", rtt)
	}
	if rtt := cl.Ping(p, rs.PrimaryID()); rtt <= 0 {
		t.Fatalf("ping of a live node returned %v", rtt)
	}
}
