package wire

import (
	"testing"

	"decongestant/internal/obs/trace"
	"decongestant/internal/storage"
)

// FuzzDecodeFrame throws arbitrary bytes at the v2 body decoders. The
// contract under corruption is: return an error, never panic, and
// never let an attacker-controlled count force a huge allocation (all
// counts are sanity-checked against the bytes that could back them
// before any make()).
func FuzzDecodeFrame(f *testing.F) {
	// Seed with valid encodings so mutation explores near-miss frames.
	req := Request{
		ID: 9, Op: OpFind, Node: 1, Collection: "orders", DocID: "d",
		IDs: []string{"a", "b"}, Limit: 3, AfterSecs: 7, AfterInc: 1,
	}
	req.filter = storage.Filter{"w": storage.Eq(int64(2)), "s": storage.In("x", "y")}
	if body, err := encodeRequest(nil, &req); err == nil {
		f.Add(body)
	}
	doc, _ := storage.D{
		"_id": "z", "n": int64(5), "f": 1.5, "b": []byte{1, 2},
		"arr": []any{int64(1), "s"}, "sub": storage.D{"k": true},
	}.Normalized()
	resp := Response{ID: 4, Found: true, OpSecs: 3, OpInc: 2}
	resp.doc = doc
	resp.docs = []storage.Document{doc}
	if body, err := encodeResponse(nil, &resp); err == nil {
		f.Add(body)
	}
	// A request carrying the v2 trace-context extension (tag 15), the
	// audited bound (16) and a span payload (17), so mutation explores
	// the tracing fields too.
	traced := Request{ID: 10, Op: OpFindByID, Node: 1, Collection: "kv", DocID: "a", BoundSecs: 3}
	traced.Trace = &trace.Context{TraceID: 7, SpanID: 8, Route: &trace.Route{
		Pref: "secondary", Reason: "bal-frac", FracPct: 40, StaleSecs: 2, Gated: true,
	}}
	traced.Spans = []trace.Span{{Trace: 7, ID: 9, Name: "client.exec_read", Node: -1}}
	if body, err := encodeRequest(nil, &traced); err == nil {
		f.Add(body)
	}
	// Shard-op frames: a mongos topology answer (shard roster + chunk
	// table) and an oplog_tail answer with entries and a truncation
	// horizon, so mutation explores the sharded-tier decoders too.
	shardResp := Response{
		ID: 11, OpSecs: 9, OpInc: 2, TruncSecs: 1, TruncInc: 1,
		Shards: []ShardInfo{{ID: 0, Addr: "127.0.0.1:27101"}, {ID: 1}},
		Chunks: &ChunkMapBody{Version: 3, Chunks: []ChunkInfo{
			{Min: "", Max: "m", Shard: 0}, {Min: "m", Max: "", Shard: 1},
		}},
	}
	shardResp.Entries = []EntryBody{
		{Secs: 9, Inc: 1, Kind: "set", Collection: "kv", DocID: "a", doc: doc},
		{Secs: 9, Inc: 2, Kind: "delete", Collection: "kv", DocID: "b"},
	}
	if body, err := encodeResponse(nil, &shardResp); err == nil {
		f.Add(body)
	}
	moveReq := Request{ID: 12, Op: OpMoveChunk, DocID: "doc050", Node: 2}
	if body, err := encodeRequest(nil, &moveReq); err == nil {
		f.Add(body)
	}
	tailReq := Request{ID: 13, Op: OpOplogTail, AfterSecs: 9, AfterInc: 1, Limit: 64}
	if body, err := encodeRequest(nil, &tailReq); err == nil {
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{rqIDs, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})  // huge count, no bytes
	f.Add([]byte{rsDocs, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // huge doc count
	f.Add([]byte{rqFilter, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Add([]byte{rqTrace, 0x00, 0x06, 0x00})                  // zero trace id
	f.Add([]byte{rqTrace, 0x05, 0x06, 0x02})                  // bad route flag
	f.Add([]byte{rqTrace, 0x05, 0x06, 0x01, 0xFF, 0x01})      // oversized pref length
	f.Add([]byte{rqSpans, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})      // huge span blob, no bytes
	f.Add([]byte{rsSpans, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 'x'}) // huge response span blob
	f.Add([]byte{rsOps, 0x02, '[', ']'})
	f.Add([]byte{rsShards, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})       // huge shard count, no bytes
	f.Add([]byte{rsChunks, 0x03, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // huge chunk count
	f.Add([]byte{rsEntries, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 'k'}) // huge entry count
	f.Add([]byte{rsTruncS, 0x02, rsTruncI})                     // truncation inc cut short
	// PR 9 lease surface: a linearizable request, a status answer with
	// a lease epoch and leased members, and near-miss member flags.
	linReq := Request{ID: 14, Op: OpFindByID, Node: 2, Collection: "kv", DocID: "a",
		ReadConcern: RCLinearizable}
	if body, err := encodeRequest(nil, &linReq); err == nil {
		f.Add(body)
	}
	leaseResp := Response{ID: 15, Status: &StatusBody{From: 1, LeaseEpoch: 6,
		Members: []Member{{ID: 0, Primary: true, Leased: true, Secs: 3, Inc: 1}, {ID: 1, Leased: true}}}}
	if body, err := encodeResponse(nil, &leaseResp); err == nil {
		f.Add(body)
	}
	f.Add([]byte{rsStatus, 0x02, 0x00, 0x01, 0x01, 0x00, 0x04, 0x00, 0x00}) // invalid member flags
	f.Add([]byte{rqReadConcern, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})              // oversized read concern
	// PR 10 freshness-cache surface: a cache-fill read asking for the
	// observed staleness, the response carrying it, a two-sided filter
	// condition, and near-miss frames for both.
	freshReq := Request{ID: 16, Op: OpFindByID, Node: 1, Collection: "kv", DocID: "a",
		WantFresh: true, BoundSecs: 3}
	if body, err := encodeRequest(nil, &freshReq); err == nil {
		f.Add(body)
	}
	staleResp := Response{ID: 17, Found: true, OpSecs: 9, OpInc: 2, StaleSecs: 4}
	staleResp.doc = doc
	if body, err := encodeResponse(nil, &staleResp); err == nil {
		f.Add(body)
	}
	rangeReq := Request{ID: 18, Op: OpFind, Node: 0, Collection: "kv", Limit: 8}
	rangeReq.filter = storage.Filter{"_id": storage.Range("doc10", "doc20")}
	if body, err := encodeRequest(nil, &rangeReq); err == nil {
		f.Add(body)
	}
	f.Add([]byte{rqWantFresh, 0x02})                                                 // invalid flag byte
	f.Add([]byte{rqWantFresh})                                                       // truncated flag
	f.Add([]byte{rsStaleSecs, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})                         // unterminated varint
	f.Add([]byte{rqFilter, 0x01, 0x01, 'k', 0x83, 0x02, 'a'})                        // two-sided bit, frame cut at op2
	f.Add([]byte{rqFilter, 0x01, 0x01, 'k', 0x83, 0x02, 'a', 0x00, 0x02, 'b', 0x00}) // zero op2

	f.Fuzz(func(t *testing.T, body []byte) {
		var rq Request
		_ = decodeRequest(body, &rq) // must not panic
		var rs Response
		_ = decodeResponse(body, &rs) // must not panic
		_, _, _ = storage.DecodeDocPrefix(body)
		_, _, _ = storage.DecodeValue(body)
	})
}
