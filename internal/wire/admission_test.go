package wire

import (
	"fmt"
	"net"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/obs"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// startAdmissionServer mirrors startTestServer but with an explicit
// ServerConfig and an optional cluster-config hook for shaping service
// times.
func startAdmissionServer(t *testing.T, scfg ServerConfig, tweak func(*cluster.Config)) (*cluster.ReplicaSet, string, func()) {
	t.Helper()
	env := sim.NewRealtimeEnv(1)
	cfg := cluster.DefaultConfig()
	cfg.ReadCost = 50 * time.Microsecond
	cfg.WriteCost = 100 * time.Microsecond
	cfg.ApplyCost = 20 * time.Microsecond
	cfg.GetMoreCost = 20 * time.Microsecond
	cfg.StatusCost = 20 * time.Microsecond
	cfg.RTTSameZone = 100 * time.Microsecond
	cfg.RTTCrossZoneBase = 200 * time.Microsecond
	cfg.ReplIdlePoll = 2 * time.Millisecond
	cfg.HeartbeatInterval = 50 * time.Millisecond
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	if tweak != nil {
		tweak(&cfg)
	}
	rs := cluster.New(env, cfg)
	srv := NewServerWith(env, rs, nil, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	stop := func() {
		srv.Close()
		env.Shutdown()
	}
	return rs, ln.Addr().String(), stop
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestIdleTimeoutReapsStalledClient covers the connection-lifecycle
// bug: a client that connects and goes silent — before the handshake
// or mid-frame — must be reaped by the idle timeout, and the
// connection gauges must come back down.
func TestIdleTimeoutReapsStalledClient(t *testing.T) {
	rs, addr, stop := startAdmissionServer(t, ServerConfig{IdleTimeout: 60 * time.Millisecond}, nil)
	defer stop()

	// Silent before the handshake.
	mute, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()

	// Handshakes, then stalls two bytes into a frame header.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if err := writeHello(stalled, V2); err != nil {
		t.Fatal(err)
	}
	if _, err := readHelloReply(stalled); err != nil {
		t.Fatal(err)
	}
	if _, err := stalled.Write([]byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}

	for _, c := range []net.Conn{mute, stalled} {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err == nil {
			t.Fatal("stalled connection still open after idle timeout")
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("server never closed the stalled connection")
		}
	}
	waitFor(t, 2*time.Second, func() bool {
		snap := rs.Metrics().Snapshot()
		return snap.CounterValue("wire.idle_closed") >= 2 &&
			snap.GaugeValue("status.connections.current") == 0
	}, "idle_closed/connection gauges never settled")
}

// TestIdleTimeoutSparesBusyConn: a connection whose only silence is
// waiting for its own slow responses must not be reaped.
func TestIdleTimeoutSparesBusyConn(t *testing.T) {
	_, addr, stop := startAdmissionServer(t,
		ServerConfig{IdleTimeout: 40 * time.Millisecond},
		func(cfg *cluster.Config) {
			cfg.ReadCost = 200 * time.Millisecond
			cfg.CostJitter = -1
		})
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Service time is 5x the idle timeout; several probe deadlines fire
	// while the request is in dispatch.
	if _, err := cl.roundTrip(&Request{Op: OpFindByID, Node: 0, Collection: "c", DocID: "k"}); err != nil {
		t.Fatalf("slow request on busy conn failed: %v", err)
	}
}

// TestMaxConnsCap: connections beyond the accept-stage cap are refused
// and counted; capacity freed by a close is reusable.
func TestMaxConnsCap(t *testing.T) {
	rs, addr, stop := startAdmissionServer(t, ServerConfig{MaxConns: 1}, nil)
	defer stop()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr); err == nil {
		t.Fatal("second connection admitted past MaxConns=1")
	}
	waitFor(t, 2*time.Second, func() bool {
		snap := rs.Metrics().Snapshot()
		return snap.CounterValue("status.connections.rejected") >= 1 &&
			snap.GaugeValue("status.connections.current") == 1 &&
			snap.GaugeValue("status.connections.available") == 0
	}, "rejection not reflected in connection gauges")

	cl.Close()
	waitFor(t, 2*time.Second, func() bool {
		cl2, err := Dial(addr)
		if err != nil {
			return false
		}
		cl2.Close()
		return true
	}, "freed connection slot never became dialable")
}

// TestShedReturnsRetryable: past the server-wide inflight ceiling a
// request is answered with CodeOverloaded — observable through
// IsRetryable on both the binary and the JSON protocol.
func TestShedReturnsRetryable(t *testing.T) {
	rs, addr, stop := startAdmissionServer(t,
		ServerConfig{ShedInflight: 1},
		func(cfg *cluster.Config) {
			cfg.ReadCost = 300 * time.Millisecond
			cfg.CostJitter = -1
		})
	defer stop()

	dialers := []struct {
		name string
		fn   func(string) (*Client, error)
	}{{"v2", Dial}, {"v1", DialJSON}}
	for _, d := range dialers {
		t.Run(d.name, func(t *testing.T) {
			cl, err := d.fn(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			slow := make(chan error, 1)
			go func() {
				_, err := cl.roundTrip(&Request{Op: OpFindByID, Node: 0, Collection: "c", DocID: "k"})
				slow <- err
			}()
			// Wait until the slow read is in service, then pile on.
			waitFor(t, 2*time.Second, func() bool {
				return rs.Metrics().Snapshot().GaugeValue("status.inflight_requests") >= 1
			}, "slow read never entered service")
			_, err = cl.roundTrip(&Request{Op: OpPing, Node: 0})
			if err == nil {
				t.Fatal("request past ShedInflight was served, want shed")
			}
			if !IsRetryable(err) {
				t.Fatalf("shed error not retryable: %v", err)
			}
			if !strings.Contains(err.Error(), "overloaded") {
				t.Fatalf("shed error message %q", err)
			}
			if err := <-slow; err != nil {
				t.Fatalf("admitted slow request failed: %v", err)
			}
		})
	}
	if got := rs.Metrics().Snapshot().CounterValue(obs.Name("wire.requests_shed", "reason", "overload")); got < 2 {
		t.Fatalf("wire.requests_shed = %d, want >= 2", got)
	}
}

// TestServeCloseLeavesNoGoroutines: a served and closed server — with
// live clients, backpressure, and a stalled connection in the mix —
// must return to the baseline goroutine count.
func TestServeCloseLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	rs, addr, stop := startAdmissionServer(t, ServerConfig{
		IdleTimeout:        200 * time.Millisecond,
		MaxInflightPerConn: 2,
		ShedInflight:       64,
	}, nil)
	_ = rs
	var clients []*Client
	for i := 0; i < 4; i++ {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
		for j := 0; j < 8; j++ {
			if _, err := cl.roundTrip(&Request{Op: OpPing, Node: 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// One connection left to stall; the reaper must not leak its
	// handler either.
	mute, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	mute.Close()
	for _, cl := range clients {
		cl.Close()
	}
	stop()
	waitFor(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	}, "goroutines leaked after Serve/Close")
}

// TestPrometheusServerStatusFamilies round-trips the full metrics
// surface over the wire — the same snapshot the /metrics endpoint
// renders — and checks both that every exposition line parses and that
// the serverStatus families (status, replstatus, collstats, dbstats)
// are all present.
func TestPrometheusServerStatusFamilies(t *testing.T) {
	rs, addr, stop := startAdmissionServer(t, ServerConfig{MaxConns: 8, ShedInflight: 64}, nil)
	defer stop()
	if err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("orders")
		for i := 0; i < 10; i++ {
			if err := c.Insert(storage.D{"_id": fmt.Sprintf("o%d", i), "v": int64(i)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Touch the read path so request counters and latency histograms
	// have observations.
	for i := 0; i < 5; i++ {
		if _, err := cl.roundTrip(&Request{Op: OpFindByID, Node: 0, Collection: "orders", DocID: "o1"}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := cl.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	text := snap.Prometheus()

	// Strict pass over every line: TYPE comments and `name{labels} value`
	// samples only.
	fams := map[string]bool{}
	validName := func(s string) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
				(c >= '0' && c <= '9' && i > 0)
			if !ok {
				return false
			}
		}
		return true
	}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 || !validName(parts[2]) {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			fams[parts[2]] = true
			continue
		}
		sample := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unterminated labels %q", ln+1, line)
			}
			sample = line[:i] + line[j+1:]
		}
		fields := strings.Fields(sample)
		if len(fields) != 2 || !validName(fields[0]) {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
	}

	for _, want := range []string{
		"status_connections_current", "status_connections_available",
		"status_inflight_requests", "status_queue_depth",
		"status_mem_heap_bytes", "status_mem_sys_bytes",
		"status_goroutines", "status_asserts",
		"replstatus_state", "replstatus_optime_secs", "replstatus_lag_secs",
		"collstats_docs", "collstats_indexes", "collstats_encoded_bytes",
		"dbstats_collections", "dbstats_docs", "dbstats_indexes", "dbstats_encoded_bytes",
		"wire_requests", "wire_request_latency", "wire_conns",
	} {
		if !fams[want] {
			t.Fatalf("family %s missing from exposition:\n%s", want, text)
		}
	}
	// The scraping connection itself must be visible in the gauges.
	if got := snap.GaugeValue("status.connections.current"); got < 1 {
		t.Fatalf("status.connections.current = %d, want >= 1", got)
	}
	if got := snap.GaugeValue("dbstats.docs"); got != 10 {
		t.Fatalf("dbstats.docs = %d, want 10", got)
	}
}
