package wire

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"decongestant/internal/cluster"
	"decongestant/internal/obs"
	"decongestant/internal/storage"
)

// allTypesDoc exercises every value type of the canonical document
// model: nil, both bools, int64 (including values above 2^53, which a
// float64 detour would corrupt), float64, string, []byte, arrays and
// nested documents.
func allTypesDoc(id string) storage.D {
	return storage.D{
		"_id":   id,
		"nil":   nil,
		"true":  true,
		"false": false,
		"int":   int64(-42),
		"big":   int64(1)<<53 + 1,
		"float": 2.718281828,
		"str":   "héllo, wire",
		"bytes": []byte{0x00, 0x01, 0xFE, 0xFF, '$'},
		"arr":   []any{int64(1), "two", 3.5, []byte{9}, storage.D{"in": true}},
		"doc":   storage.D{"nested": storage.D{"deep": int64(7)}, "b": []byte("raw")},
	}
}

// insertDoc writes one document through the client's transaction API.
func insertDoc(t *testing.T, cl *Client, doc storage.D) {
	t.Helper()
	if _, err := cl.ExecWrite(nil, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert("types", doc)
	}); err != nil {
		t.Fatal(err)
	}
}

// readDoc fetches one document by id from the primary.
func readDoc(t *testing.T, cl *Client, id string) storage.Document {
	t.Helper()
	res, err := cl.ExecRead(nil, cl.PrimaryID(), func(v cluster.ReadView) (any, error) {
		d, ok := v.FindByID("types", id)
		if !ok {
			return nil, fmt.Errorf("doc %s missing", id)
		}
		return d, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.(storage.Document)
}

// TestValueTypesRoundTripBothCodecs writes and reads a document
// holding every supported value type over each protocol version and
// over the version cross (written by one, read by the other) —
// detecting any codec that is lossy in either direction. The JSON
// fallback's weak spots are []byte (tagged as {"$bytes": base64}) and
// large int64s (json.Number, not float64); v2 carries both natively.
func TestValueTypesRoundTripBothCodecs(t *testing.T) {
	_, _, addr, stop := startTestServer(t)
	defer stop()

	v2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	v1, err := DialJSON(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()

	if ver, _ := v2.Version(); ver != V2 {
		t.Fatalf("Dial negotiated v%d, want v%d", ver, V2)
	}
	if ver, _ := v1.Version(); ver != V1 {
		t.Fatalf("DialJSON negotiated v%d, want v%d", ver, V1)
	}

	writers := map[string]*Client{"w2": v2, "w1": v1}
	readers := map[string]*Client{"r2": v2, "r1": v1}
	for wname, w := range writers {
		id := "all-" + wname
		want, err := allTypesDoc(id).Normalized()
		if err != nil {
			t.Fatal(err)
		}
		insertDoc(t, w, allTypesDoc(id))
		for rname, r := range readers {
			got := readDoc(t, r, id)
			if !storage.Equal(want, got) {
				t.Fatalf("%s->%s round trip mismatch:\n want %v\n got  %v", wname, rname, want, got)
			}
			if _, ok := got["bytes"].([]byte); !ok {
				t.Fatalf("%s->%s: bytes value decoded as %T", wname, rname, got["bytes"])
			}
		}
	}
}

// TestInt64PrecisionOverJSON pins the regression where the v1 codec
// decoded all numbers through float64, so 2^53+1 came back as 2^53.
func TestInt64PrecisionOverJSON(t *testing.T) {
	_, _, addr, stop := startTestServer(t)
	defer stop()
	cl, err := DialJSON(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const big = int64(1)<<53 + 1
	insertDoc(t, cl, storage.D{"_id": "big", "v": big})
	got := readDoc(t, cl, "big")
	v, ok := got["v"].(int64)
	if !ok {
		t.Fatalf("value decoded as %T", got["v"])
	}
	if v != big {
		t.Fatalf("int64 precision lost over JSON: got %d, want %d", v, big)
	}
}

// TestMixedVersionClients runs v1 and v2 clients concurrently against
// one server, each pipelining point reads, finds and writes over its
// shared connection — the compatibility matrix under -race.
func TestMixedVersionClients(t *testing.T) {
	_, rs, addr, stop := startTestServer(t)
	defer stop()
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("mixed")
		for i := 0; i < 64; i++ {
			if err := c.Insert(storage.D{
				"_id": fmt.Sprintf("m%03d", i), "g": int64(i % 8), "v": int64(i),
			}); err != nil {
				return err
			}
		}
		_, err := c.CreateIndex("g", false, "g")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	clients := make([]*Client, 0, 4)
	for i := 0; i < 2; i++ {
		v2, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := DialJSON(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, v2, v1)
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()

	const workers, iters = 4, 40
	var wg sync.WaitGroup
	errs := make(chan error, len(clients)*workers)
	for ci, cl := range clients {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(cl *Client, seed int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					id := fmt.Sprintf("m%03d", (seed*31+i)%64)
					_, err := cl.ExecRead(nil, 0, func(v cluster.ReadView) (any, error) {
						if _, ok := v.FindByID("mixed", id); !ok {
							return nil, fmt.Errorf("missing %s", id)
						}
						docs := v.Find("mixed", storage.Filter{"g": storage.Eq(int64(seed % 8))}, 0)
						if len(docs) == 0 {
							return nil, fmt.Errorf("empty group %d", seed%8)
						}
						return nil, nil
					})
					if err != nil {
						errs <- err
						return
					}
					if i%8 == 0 {
						_, err := cl.ExecWrite(nil, func(tx cluster.WriteTxn) (any, error) {
							return nil, tx.Set("mixed", id, storage.D{"touched": int64(seed)})
						})
						if err != nil {
							errs <- err
							return
						}
					}
				}
			}(cl, ci*workers+w)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// snapshotReading finds one instrument in a snapshot by exact name.
func snapshotReading(snap obs.Snapshot, name string) (obs.Instrument, bool) {
	for _, ins := range snap.Instruments {
		if ins.Name == name {
			return ins, true
		}
	}
	return obs.Instrument{}, false
}

// TestWireTransportInstruments drives traffic over both protocol
// versions and asserts the transport telemetry — per-version
// connection gauges, frame/byte volume and decode errors — through
// the ordinary metrics op.
func TestWireTransportInstruments(t *testing.T) {
	_, _, addr, stop := startTestServer(t)
	defer stop()
	v2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	v1, err := DialJSON(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	insertDoc(t, v2, storage.D{"_id": "x", "v": int64(1)})
	readDoc(t, v1, "x")

	snap, err := v2.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		name string
		kind string
	}{
		{obs.Name("wire.conns", "ver", "1"), obs.KindGauge},
		{obs.Name("wire.conns", "ver", "2"), obs.KindGauge},
		{"wire.frames_in", obs.KindCounter},
		{"wire.frames_out", obs.KindCounter},
		{"wire.bytes_in", obs.KindCounter},
		{"wire.bytes_out", obs.KindCounter},
		{"wire.decode_errors", obs.KindCounter},
	} {
		ins, ok := snapshotReading(snap, want.name)
		if !ok {
			t.Fatalf("instrument %q missing from metrics", want.name)
		}
		if ins.Kind != want.kind {
			t.Fatalf("instrument %q is a %s, want %s", want.name, ins.Kind, want.kind)
		}
	}
	if g, _ := snapshotReading(snap, obs.Name("wire.conns", "ver", "1")); g.Value != 1 {
		t.Fatalf("v1 conn gauge = %d, want 1", g.Value)
	}
	if g, _ := snapshotReading(snap, obs.Name("wire.conns", "ver", "2")); g.Value != 1 {
		t.Fatalf("v2 conn gauge = %d, want 1", g.Value)
	}
	fin, _ := snapshotReading(snap, "wire.frames_in")
	fout, _ := snapshotReading(snap, "wire.frames_out")
	bin, _ := snapshotReading(snap, "wire.bytes_in")
	if fin.Count == 0 || fout.Count == 0 || bin.Count == 0 {
		t.Fatalf("zero frame/byte volume: in=%d out=%d bytes_in=%d", fin.Count, fout.Count, bin.Count)
	}

	// A corrupt binary frame must bump the decode-error counter and
	// drop only the offending connection.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clientHandshake(raw, V2); err != nil {
		t.Fatal(err)
	}
	// Length-prefixed garbage: tag 99 is not a request field.
	if _, err := raw.Write([]byte{0, 0, 0, 2, 99, 99}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server kept a connection that sent a corrupt frame")
	}
	raw.Close()

	snap, err = v2.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	derr, _ := snapshotReading(snap, "wire.decode_errors")
	if derr.Count == 0 {
		t.Fatal("decode_errors not incremented by corrupt frame")
	}
}

// TestHandshakeFallbackAgainstV1OnlyServer simulates an old server
// that predates negotiation: it treats the hello magic as an oversized
// frame length and hangs up, and the client must transparently redial
// in JSON mode.
func TestHandshakeFallbackAgainstV1OnlyServer(t *testing.T) {
	_, _, addr, stop := startTestServer(t)
	defer stop()

	// Proxy that emulates the pre-handshake server loop: read a 4-byte
	// length, reject oversized frames by closing — exactly what the old
	// ReadFrame did with the magic — and otherwise forward bytes to the
	// real server over a JSON connection.
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pln.Close()
	go func() {
		for {
			c, err := pln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				head := make([]byte, 4)
				if _, err := io.ReadFull(c, head); err != nil {
					return
				}
				n := uint32(head[0])<<24 | uint32(head[1])<<16 | uint32(head[2])<<8 | uint32(head[3])
				if n > MaxFrame {
					return // old server: oversized frame, hang up
				}
				up, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				defer up.Close()
				if _, err := up.Write(head); err != nil {
					return
				}
				go io.Copy(up, c)
				io.Copy(c, up)
			}(c)
		}
	}()

	cl, err := Dial(pln.Addr().String())
	if err != nil {
		t.Fatalf("client did not fall back to JSON against v1-only server: %v", err)
	}
	defer cl.Close()
	if ver, _ := cl.Version(); ver != V1 {
		t.Fatalf("negotiated v%d through v1-only server, want v%d", ver, V1)
	}
	insertDoc(t, cl, storage.D{"_id": "fb", "v": int64(9)})
	got := readDoc(t, cl, "fb")
	if got["v"] != int64(9) {
		t.Fatalf("fallback read returned %v", got)
	}
}

// TestBinaryFilterOps checks every filter operator survives the v2
// codec (conditions travel as BSON-lite values, not JSON).
func TestBinaryFilterOps(t *testing.T) {
	f := storage.Filter{
		"a": storage.Eq(int64(5)),
		"b": storage.Ne("x"),
		"c": storage.Gt(1.5),
		"d": storage.Gte(int64(2)),
		"e": storage.Lt(int64(10)),
		"f": storage.Lte(int64(10)),
		"g": storage.In(int64(1), "two", 3.0),
		"h": storage.Exists(),
	}
	enc, err := appendFilter(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	dec, rest, err := decodeFilter(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if len(dec) != len(f) {
		t.Fatalf("decoded %d conds, want %d", len(dec), len(f))
	}
	match, err := storage.D{
		"a": int64(5), "b": "y", "c": 2.0, "d": int64(2),
		"e": int64(9), "f": int64(10), "g": "two", "h": nil,
	}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Matches(match) {
		t.Fatal("decoded filter rejects matching doc")
	}
	if dec.Matches(storage.D{"a": int64(6)}) {
		t.Fatal("decoded filter accepts non-matching doc")
	}
}

// TestBinaryRequestResponseRoundTrip covers the non-document request
// and response fields end to end through the v2 body codec.
func TestBinaryRequestResponseRoundTrip(t *testing.T) {
	in := Request{
		ID: 12345, Op: OpFind, Node: 2, Collection: "orders", DocID: "d1",
		IDs: []string{"a", "b", "c"}, Limit: 7,
		AfterSecs: 99, AfterInc: 3, Source: "bal",
	}
	in.filter = storage.Filter{"w": storage.Eq(int64(4))}
	body, err := encodeRequest(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := decodeRequest(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Op != in.Op || out.Node != in.Node ||
		out.Collection != in.Collection || out.DocID != in.DocID ||
		out.Limit != in.Limit || out.AfterSecs != in.AfterSecs ||
		out.AfterInc != in.AfterInc || out.Source != in.Source ||
		len(out.IDs) != 3 || out.IDs[2] != "c" || out.filter == nil {
		t.Fatalf("request mismatch: %+v", out)
	}

	// Unknown op names travel by string so the server can reject them
	// with its usual error, not a frame error.
	bogus := Request{ID: 1, Op: "bogus"}
	body, err = encodeRequest(nil, &bogus)
	if err != nil {
		t.Fatal(err)
	}
	var bout Request
	if err := decodeRequest(body, &bout); err != nil {
		t.Fatal(err)
	}
	if bout.Op != "bogus" {
		t.Fatalf("unknown op travelled as %q", bout.Op)
	}

	doc, err := allTypesDoc("r1").Normalized()
	if err != nil {
		t.Fatal(err)
	}
	resp := Response{
		ID: 54321, Err: "boom", Found: true, Count: 11,
		OpSecs: 77, OpInc: 5,
		Topo:   &Topology{Primary: 1, Zones: []string{"z0", "z1"}},
		Status: &StatusBody{From: 1, Primary: 0, Members: []Member{{ID: 0, Primary: true, Secs: 9, Inc: 2}}},
	}
	resp.doc = doc
	resp.docs = []storage.Document{doc, doc}
	body, err = encodeResponse(nil, &resp)
	if err != nil {
		t.Fatal(err)
	}
	var rout Response
	if err := decodeResponse(body, &rout); err != nil {
		t.Fatal(err)
	}
	if rout.ID != resp.ID || rout.Err != resp.Err || !rout.Found ||
		rout.Count != resp.Count || rout.OpSecs != resp.OpSecs || rout.OpInc != resp.OpInc {
		t.Fatalf("response scalar mismatch: %+v", rout)
	}
	if rout.Topo == nil || rout.Topo.Primary != 1 || strings.Join(rout.Topo.Zones, ",") != "z0,z1" {
		t.Fatalf("topo mismatch: %+v", rout.Topo)
	}
	if rout.Status == nil || len(rout.Status.Members) != 1 || !rout.Status.Members[0].Primary {
		t.Fatalf("status mismatch: %+v", rout.Status)
	}
	gotDoc, err := rout.document()
	if err != nil {
		t.Fatal(err)
	}
	if !storage.Equal(doc, gotDoc) {
		t.Fatalf("doc mismatch: %v", gotDoc)
	}
	gotDocs, err := rout.documents()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotDocs) != 2 || !storage.Equal(doc, gotDocs[1]) {
		t.Fatalf("docs mismatch: %v", gotDocs)
	}
}
