package wire

// Tracing-overhead benchmarks for the PR 7 observability work. The
// contract they guard: with sampling off (the default) the tracing
// plumbing costs nothing on the v2 hot path — the sampling decision is
// one atomic load and the codec emits zero extra bytes — and at the
// production-realistic 1% rate the overhead stays in the noise.
//
// Sampling-off overhead is measured by comparing the untraced PR 5
// benchmarks (BenchmarkWireConcurrentPointReads, BenchmarkWireFindQuery)
// against bench/baseline_pr7.txt, which was recorded immediately before
// the tracing code landed; cmd/benchgate enforces the ratio. The Traced
// variants here measure the sampled rate directly: TRACE_SAMPLE sets
// the rate (default 0.01).

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"testing"

	"decongestant/internal/cluster"
	"decongestant/internal/oplog"
	"decongestant/internal/storage"
)

// traceSampleRate reads the TRACE_SAMPLE env knob (default 1%).
func traceSampleRate(b *testing.B) float64 {
	b.Helper()
	s := os.Getenv("TRACE_SAMPLE")
	if s == "" {
		return 0.01
	}
	rate, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("bad TRACE_SAMPLE %q: %v", s, err)
	}
	return rate
}

// BenchmarkWireTracedPointReads is BenchmarkWireConcurrentPointReads
// on the traced read path: every read flips the sampling coin via
// ExecReadMeta (as the driver does), and sampled requests carry the
// trace context over the wire so the server records admission,
// dispatch and node exec spans for them.
func BenchmarkWireTracedPointReads(b *testing.B) {
	addr, stop := startBenchServer(b)
	defer stop()
	cl := benchDial(b, addr)
	defer cl.Close()
	cl.SetTraceSampling(traceSampleRate(b))
	tr := cl.Tracer()
	var seed atomic.Int64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		i := int(n * 7919)
		for pb.Next() {
			i++
			id := fmt.Sprintf("doc%05d", i%wireBenchDocs)
			res, _, err := cl.ExecReadMeta(nil, 0, oplog.Zero, cluster.ReadMeta{Ctx: tr.StartTrace()}, func(v cluster.ReadView) (any, error) {
				d, ok := v.FindByID("bench", id)
				if !ok {
					return nil, fmt.Errorf("wire bench: %s missing", id)
				}
				return d, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if res == nil {
				b.Fatal("nil doc")
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
}

// BenchmarkWireTracedFindQuery is BenchmarkWireFindQuery (the PR 5
// serialization-bound find path) with trace sampling enabled.
func BenchmarkWireTracedFindQuery(b *testing.B) {
	addr, stop := startBenchServer(b)
	defer stop()
	cl := benchDial(b, addr)
	defer cl.Close()
	cl.SetTraceSampling(traceSampleRate(b))
	tr := cl.Tracer()
	var seed atomic.Int64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		i := int(n * 7919)
		for pb.Next() {
			i++
			w := int64(i % wireBenchGroups)
			res, _, err := cl.ExecReadMeta(nil, 0, oplog.Zero, cluster.ReadMeta{Ctx: tr.StartTrace()}, func(v cluster.ReadView) (any, error) {
				docs := v.Find("orders", storage.Filter{"w_id": storage.Eq(w)}, 0)
				if len(docs) != wireBenchDocs/wireBenchGroups {
					return nil, fmt.Errorf("wire bench: w_id %d returned %d docs", w, len(docs))
				}
				return docs, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if res == nil {
				b.Fatal("nil docs")
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
}
