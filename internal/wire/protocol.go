// Package wire exposes a replica set over TCP and provides a network
// client that implements the same driver.Conn interface as the
// in-process cluster — so Decongestant's Read Balancer and Router run
// unchanged against a remote deployment. Reads issue one round trip
// per operation; write transactions buffer mutations client-side and
// commit them with a single batch request, like a real driver's
// transaction API.
//
// Two codecs share one frame format (4-byte length prefix + body):
// protocol v1 encodes bodies as JSON, v2 as hand-rolled binary with
// BSON-lite document payloads. The version is negotiated per
// connection by a client hello (see frame.go); servers keep speaking
// v1 to clients that never send one, so old clients and debug tooling
// keep working.
package wire

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"decongestant/internal/obs"
	"decongestant/internal/obs/trace"
	"decongestant/internal/storage"
)

// Op names of the protocol.
const (
	OpTopology   = "topology"
	OpPing       = "ping"
	OpStatus     = "status"
	OpFindByID   = "find_by_id"
	OpFindMany   = "find_many"
	OpFind       = "find"
	OpCount      = "count"
	OpWriteBatch = "write_batch"
	// OpMetrics returns the server's observability snapshot — the
	// cluster's registry merged with any snapshots clients have pushed —
	// serverStatus-style polling for telemetry.
	OpMetrics = "metrics"
	// OpMetricsPush uploads a client-side registry snapshot (driver and
	// balancer instruments live at the client) so OpMetrics exposes the
	// whole deployment from one endpoint. Pushes are keyed by Source;
	// repeat pushes replace the previous snapshot.
	OpMetricsPush = "metrics_push"
	// OpTrace exports retained spans: with DocID set to a hex trace id
	// it returns that trace's span tree, otherwise the most recent
	// spans (up to Limit).
	OpTrace = "trace"
	// OpCurrentOp returns the server's in-flight operations, MongoDB's
	// currentOp (empty unless the server was configured to track them).
	OpCurrentOp = "current_op"
	// OpTracePush uploads client-side recorded spans (driver, router,
	// balancer-decision hops) into the server's recorder, so one OpTrace
	// query returns the whole causal tree.
	OpTracePush = "trace_push"
	// OpListShards asks a mongos for its shard roster (id + address), so
	// clients discover the deployment instead of linking shard addresses.
	OpListShards = "list_shards"
	// OpChunkMap asks a mongos for its versioned chunk routing table.
	// Empty on hash-sharded deployments (no chunk metadata).
	OpChunkMap = "chunk_map"
	// OpOplogTail scans the primary's oplog after the request's
	// AfterSecs/AfterInc OpTime, up to Limit entries — the change feed
	// chunk migration drains a source shard through.
	OpOplogTail = "oplog_tail"
	// OpMoveChunk (mongos only) live-migrates the chunk owning DocID to
	// shard Node, draining writes via the source's oplog tail.
	OpMoveChunk = "move_chunk"
)

// MaxFrame bounds a single protocol frame (16 MiB).
const MaxFrame = 16 << 20

// Error codes carried in Response.Code. Zero means "no code" (legacy
// errors travel as bare strings); non-zero codes classify the failure
// so clients can tell retryable congestion pushback from hard errors.
const (
	// CodeOverloaded is load shedding: the server hit its saturation
	// threshold and rejected the request without executing it. The
	// request did not run — retrying after a backoff is always safe.
	CodeOverloaded = 1001
	// CodeNotLeased is a lease rejection: the target member could not
	// serve a linearizable read locally (no lease, lease expired, or
	// commit point not yet applied). The read did not execute — the
	// driver retries it at the primary. The reason rides in the error
	// message (see cluster.LeaseReject).
	CodeNotLeased = 1002
)

// Error is a typed protocol error: the server's message plus its
// error code. The client returns *Error for every server-reported
// failure, so callers can route on the code (see IsRetryable).
type Error struct {
	Code int
	Msg  string
}

func (e *Error) Error() string { return e.Msg }

// IsRetryable reports whether err is a server pushback that is safe to
// retry after a backoff — the request was shed before execution, so no
// state changed. Plain network errors are not classified here: the
// caller cannot know whether a write executed.
func IsRetryable(err error) bool {
	var we *Error
	if !errors.As(err, &we) {
		return false
	}
	return we.Code == CodeOverloaded || we.Code == CodeNotLeased
}

// Read concern values carried in Request.ReadConcern. Zero (the
// default, "local") costs zero wire bytes on both codecs.
const (
	// RCLocal is the default read concern: serve from the target node's
	// latest applied snapshot.
	RCLocal = 0
	// RCLinearizable asks the target to serve under the lease protocol:
	// the primary under its leader lease (or a majority-confirm round),
	// a secondary from a valid read lease — rejecting with CodeNotLeased
	// when it cannot.
	RCLinearizable = 1
)

// Cond is the wire form of a filter condition. Op2/Value2 carry the
// second bound of a two-sided range condition (storage.Cond.Op2);
// absent for the common one-sided case.
type Cond struct {
	Op     string `json:"op"`
	Value  any    `json:"value,omitempty"`
	Values []any  `json:"values,omitempty"`
	Op2    string `json:"op2,omitempty"`
	Value2 any    `json:"value2,omitempty"`
}

// Mutation is the wire form of one buffered write. Doc is the JSON
// (v1) document form; the client fills only the typed doc field and
// the v1 codec converts at marshal time, so the binary path never
// builds the JSON map.
type Mutation struct {
	Kind       string         `json:"kind"` // insert | set | delete
	Collection string         `json:"collection"`
	DocID      string         `json:"doc_id,omitempty"`
	Doc        map[string]any `json:"doc,omitempty"`

	doc storage.Document // canonical form; encoded directly by v2
}

// MarshalJSON materializes the JSON document form from the typed one
// when only the latter is set (a v1 connection sending a client-built
// mutation).
func (m Mutation) MarshalJSON() ([]byte, error) {
	type wireMutation Mutation // drop methods to avoid recursion
	cp := wireMutation(m)
	if cp.Doc == nil && m.doc != nil {
		cp.Doc = docToJSON(m.doc)
	}
	return json.Marshal(cp)
}

// document returns the mutation's payload in canonical form,
// whichever codec delivered it.
func (m *Mutation) document() (storage.Document, error) {
	if m.doc != nil {
		return m.doc, nil
	}
	return jsonToDoc(m.Doc)
}

// Document exposes the typed payload to out-of-package Backends.
func (m *Mutation) Document() (storage.Document, error) { return m.document() }

// Request is one client->server frame.
type Request struct {
	ID         uint64          `json:"id"`
	Op         string          `json:"op"`
	Node       int             `json:"node,omitempty"`
	Collection string          `json:"collection,omitempty"`
	DocID      string          `json:"doc_id,omitempty"`
	IDs        []string        `json:"ids,omitempty"`
	Filter     map[string]Cond `json:"filter,omitempty"`
	Limit      int             `json:"limit,omitempty"`
	Muts       []Mutation      `json:"muts,omitempty"`
	// AfterSecs/AfterInc carry a causal prerequisite (afterClusterTime):
	// read ops wait until the target node has applied this OpTime.
	AfterSecs int64  `json:"after_secs,omitempty"`
	AfterInc  uint32 `json:"after_inc,omitempty"`
	// Source names the pusher for metrics_push; Snapshot is its payload.
	Source   string        `json:"source,omitempty"`
	Snapshot *obs.Snapshot `json:"snapshot,omitempty"`
	// Trace is the operation's trace context, present only when the
	// originating client sampled it — nil costs zero wire bytes on both
	// codecs, keeping the untraced hot path untouched.
	Trace *trace.Context `json:"trace,omitempty"`
	// BoundSecs declares the freshness bound, in seconds, the client's
	// session promised for this read; the serving side's freshness
	// auditor checks the observed staleness against it (0 = none).
	BoundSecs int64 `json:"bound_secs,omitempty"`
	// ReadConcern selects the read's consistency level (see the RC
	// constants). Zero — the local default — is absent on the wire.
	ReadConcern int `json:"read_concern,omitempty"`
	// WantFresh asks the server to report the staleness it observed
	// serving this read (Response.StaleSecs) — the freshness-priced
	// cache's fill stamp. False costs zero wire bytes on both codecs.
	WantFresh bool `json:"want_fresh,omitempty"`
	// Spans is the trace_push payload.
	Spans []trace.Span `json:"spans,omitempty"`

	// filter is the typed form of Filter. The client fills only this;
	// the v2 codec encodes it directly (conditions travel as BSON-lite
	// values, decoded once server-side without re-normalization) and
	// the v1 codec converts at marshal time.
	filter storage.Filter
}

// MarshalJSON materializes the JSON filter form from the typed one
// when only the latter is set (a v1 connection sending a client-built
// request).
func (r *Request) MarshalJSON() ([]byte, error) {
	type wireRequest Request // drop methods to avoid recursion
	cp := wireRequest(*r)
	if cp.Filter == nil && r.filter != nil {
		cp.Filter = EncodeFilter(r.filter)
	}
	return json.Marshal(&cp)
}

// filterValue returns the request's filter in storage form, whichever
// codec delivered it.
func (r *Request) filterValue() (storage.Filter, error) {
	if r.filter != nil {
		return r.filter, nil
	}
	return DecodeFilter(r.Filter)
}

// FilterValue exposes the typed filter to out-of-package Backends
// (the mongos dispatcher lives in internal/sharding).
func (r *Request) FilterValue() (storage.Filter, error) { return r.filterValue() }

// Member is the wire form of a serverStatus member row.
type Member struct {
	ID      int    `json:"id"`
	Primary bool   `json:"primary"`
	Secs    int64  `json:"secs"`
	Inc     uint32 `json:"inc"`
	// Leased reports whether the member currently holds a valid lease
	// (leader lease for the primary, read lease for a secondary) and can
	// serve linearizable reads locally.
	Leased bool `json:"leased,omitempty"`
}

// StatusBody is the wire form of a serverStatus response.
type StatusBody struct {
	From    int      `json:"from"`
	Primary int      `json:"primary"`
	Members []Member `json:"members"`
	// LeaseEpoch is the replica set's current lease epoch (0 when the
	// lease subsystem is disabled).
	LeaseEpoch uint64 `json:"lease_epoch,omitempty"`
}

// Topology describes the replica set to clients.
type Topology struct {
	Primary int      `json:"primary"`
	Zones   []string `json:"zones"` // indexed by node id
}

// ShardInfo is one row of a mongos's list_shards answer.
type ShardInfo struct {
	ID   int    `json:"id"`
	Addr string `json:"addr,omitempty"` // empty for in-process shards
}

// ChunkInfo is the wire form of one chunk: the half-open shard-key
// range [Min, Max) owned by a shard. Empty Min means -inf; empty Max
// means +inf.
type ChunkInfo struct {
	Min   string `json:"min,omitempty"`
	Max   string `json:"max,omitempty"`
	Shard int    `json:"shard"`
}

// ChunkMapBody is a mongos's versioned chunk routing table.
type ChunkMapBody struct {
	Version uint64      `json:"version"`
	Chunks  []ChunkInfo `json:"chunks"`
}

// EntryBody is the wire form of one decoded oplog entry. Doc is the
// JSON (v1) payload form; servers fill only the typed doc and the v1
// codec converts at marshal time, mirroring Mutation.
type EntryBody struct {
	Secs       int64          `json:"secs"`
	Inc        uint32         `json:"inc"`
	Kind       string         `json:"kind"` // insert | set | delete | noop
	Collection string         `json:"collection,omitempty"`
	DocID      string         `json:"doc_id,omitempty"`
	Doc        map[string]any `json:"doc,omitempty"`

	doc storage.Document // canonical payload; encoded directly by v2
}

// MarshalJSON materializes the JSON document form from the typed one,
// like Mutation.MarshalJSON.
func (e EntryBody) MarshalJSON() ([]byte, error) {
	type wireEntry EntryBody // drop methods to avoid recursion
	cp := wireEntry(e)
	if cp.Doc == nil && e.doc != nil {
		cp.Doc = docToJSON(e.doc)
	}
	return json.Marshal(cp)
}

// document returns the entry payload in canonical form, whichever
// codec delivered it.
func (e *EntryBody) document() (storage.Document, error) {
	if e.doc != nil {
		return e.doc, nil
	}
	return jsonToDoc(e.Doc)
}

// Response is one server->client frame.
type Response struct {
	ID  uint64 `json:"id"`
	Err string `json:"err,omitempty"`
	// Code classifies Err when non-zero (see the Code constants); the
	// client surfaces both through *Error.
	Code   int              `json:"code,omitempty"`
	Found  bool             `json:"found,omitempty"`
	Doc    map[string]any   `json:"doc,omitempty"`
	Docs   []map[string]any `json:"docs,omitempty"`
	Count  int              `json:"count,omitempty"`
	Topo   *Topology        `json:"topo,omitempty"`
	Status *StatusBody      `json:"status,omitempty"`
	// OpSecs/OpInc report the serving node's lastApplied OpTime for
	// read ops and the commit OpTime for write batches, feeding the
	// client session's causal token.
	OpSecs int64  `json:"op_secs,omitempty"`
	OpInc  uint32 `json:"op_inc,omitempty"`
	// Metrics is the observability snapshot for the metrics op.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Spans answers the trace op; Ops answers current_op.
	Spans []trace.Span   `json:"spans,omitempty"`
	Ops   []trace.OpInfo `json:"ops,omitempty"`
	// Shards answers list_shards; Chunks answers chunk_map.
	Shards []ShardInfo   `json:"shards,omitempty"`
	Chunks *ChunkMapBody `json:"chunks,omitempty"`
	// Entries answers oplog_tail; OpSecs/OpInc carry the primary's
	// lastApplied and TruncSecs/TruncInc the log's truncation horizon,
	// so tailers detect both "caught up" and "fell off the log".
	Entries   []EntryBody `json:"entries,omitempty"`
	TruncSecs int64       `json:"trunc_secs,omitempty"`
	TruncInc  uint32      `json:"trunc_inc,omitempty"`
	// StaleSecs reports the staleness the serving node observed at
	// serve time (whole seconds; 0 when the primary served). Only
	// filled when the request set WantFresh — unrequested, it costs
	// zero wire bytes on both codecs.
	StaleSecs int64 `json:"stale_secs,omitempty"`

	// Typed document results, used by the v2 codec in both directions:
	// the server fills rawDoc/rawDocs with cached BSON-lite encodings
	// (or doc/docs when it must materialize), and the client's decoder
	// fills doc/docs — no JSON map form ever exists on that path.
	doc     storage.Document
	docs    []storage.Document
	rawDoc  []byte
	rawDocs [][]byte
}

// SetDoc fills the single-document result from an out-of-package
// Backend, routing to the codec-appropriate field.
func (r *Response) SetDoc(binary bool, d storage.Document) {
	if d == nil {
		return
	}
	r.Found = true
	fillDoc(r, binary, d)
}

// SetDocs fills a multi-document result from an out-of-package
// Backend.
func (r *Response) SetDocs(binary bool, ds []storage.Document) {
	fillDocs(r, binary, ds)
}

// document returns the single-document result in canonical form,
// whichever codec delivered it.
func (r *Response) document() (storage.Document, error) {
	if r.doc != nil {
		return r.doc, nil
	}
	return jsonToDoc(r.Doc)
}

// documents returns the multi-document result in canonical form.
func (r *Response) documents() ([]storage.Document, error) {
	if r.docs != nil {
		return r.docs, nil
	}
	if r.Docs == nil {
		return nil, nil
	}
	out := make([]storage.Document, 0, len(r.Docs))
	for _, m := range r.Docs {
		d, err := jsonToDoc(m)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// WriteFrame sends one JSON message with a 4-byte length prefix.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame receives one length-prefixed JSON message into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return decodeJSONBody(body, v)
}

// decodeJSONBody unmarshals a v1 frame body. Numbers inside untyped
// document maps decode as json.Number so int64 values above 2^53
// survive the trip (a plain float64 coercion would corrupt them);
// jsonValue converts them back to int64/float64.
func decodeJSONBody(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// EncodeFilter converts a storage.Filter to its wire form.
func EncodeFilter(f storage.Filter) map[string]Cond {
	if f == nil {
		return nil
	}
	out := make(map[string]Cond, len(f))
	for field, c := range f {
		wc := Cond{Op: opName(c.Op), Value: c.Value, Values: c.Values}
		if c.Op2 != 0 {
			wc.Op2, wc.Value2 = opName(c.Op2), c.Value2
		}
		out[field] = wc
	}
	return out
}

// DecodeFilter converts the wire form back to a storage.Filter.
func DecodeFilter(m map[string]Cond) (storage.Filter, error) {
	if m == nil {
		return nil, nil
	}
	out := make(storage.Filter, len(m))
	for field, c := range m {
		op, err := opValue(c.Op)
		if err != nil {
			return nil, err
		}
		val, err := jsonValue(c.Value)
		if err != nil {
			return nil, err
		}
		vals := make([]any, len(c.Values))
		for i, v := range c.Values {
			if vals[i], err = jsonValue(v); err != nil {
				return nil, err
			}
		}
		if len(vals) == 0 {
			vals = nil
		}
		sc := storage.Cond{Op: op, Value: val, Values: vals}
		if c.Op2 != "" {
			if sc.Op2, err = opValue(c.Op2); err != nil {
				return nil, err
			}
			if sc.Value2, err = jsonValue(c.Value2); err != nil {
				return nil, err
			}
		}
		out[field] = sc
	}
	return out, nil
}

func opName(op storage.Op) string {
	switch op {
	case storage.OpEq:
		return "eq"
	case storage.OpNe:
		return "ne"
	case storage.OpGt:
		return "gt"
	case storage.OpGte:
		return "gte"
	case storage.OpLt:
		return "lt"
	case storage.OpLte:
		return "lte"
	case storage.OpIn:
		return "in"
	case storage.OpExists:
		return "exists"
	}
	return "eq"
}

func opValue(name string) (storage.Op, error) {
	switch name {
	case "eq":
		return storage.OpEq, nil
	case "ne":
		return storage.OpNe, nil
	case "gt":
		return storage.OpGt, nil
	case "gte":
		return storage.OpGte, nil
	case "lt":
		return storage.OpLt, nil
	case "lte":
		return storage.OpLte, nil
	case "in":
		return storage.OpIn, nil
	case "exists":
		return storage.OpExists, nil
	}
	return 0, fmt.Errorf("wire: unknown filter op %q", name)
}

// bytesTag marks a []byte value in the JSON (v1) document form:
// {"$bytes": "<base64>"}. encoding/json's default would base64 the
// bytes but decode them back as a plain string, silently changing the
// value's type; the tag makes the round trip lossless. A user document
// whose value is itself a single-key map literally named "$bytes" with
// a string value would be misread — protocol v2 has no such ambiguity
// (bytes are a native BSON-lite type).
const bytesTag = "$bytes"

// docToJSON converts a storage.Document to a JSON-safe map. []byte
// values become tagged base64 objects; nested documents convert
// recursively.
func docToJSON(d storage.Document) map[string]any {
	if d == nil {
		return nil
	}
	out := make(map[string]any, len(d))
	for k, v := range d {
		out[k] = valueToJSON(v)
	}
	return out
}

func valueToJSON(v any) any {
	switch x := v.(type) {
	case storage.Document:
		return docToJSON(x)
	case map[string]any:
		return docToJSON(storage.Document(x))
	case []byte:
		return map[string]any{bytesTag: base64.StdEncoding.EncodeToString(x)}
	case []any:
		arr := make([]any, len(x))
		for i, e := range x {
			arr[i] = valueToJSON(e)
		}
		return arr
	default:
		return x
	}
}

// jsonToDoc normalizes a decoded JSON map into a storage.Document.
// JSON numbers arrive as float64; integral values are converted back
// to int64 so ids and counters behave as expected.
func jsonToDoc(m map[string]any) (storage.Document, error) {
	if m == nil {
		return nil, nil
	}
	out := make(storage.Document, len(m))
	for k, v := range m {
		nv, err := jsonValue(v)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", k, err)
		}
		out[k] = nv
	}
	return out, nil
}

func jsonValue(v any) (any, error) {
	switch x := v.(type) {
	case json.Number:
		// Integers decode exactly (UseNumber avoids the float64 detour
		// that corrupts values above 2^53); non-integers fall back to
		// float64.
		if i, err := strconv.ParseInt(string(x), 10, 64); err == nil {
			return i, nil
		}
		f, err := x.Float64()
		if err != nil {
			return nil, fmt.Errorf("wire: bad number %q", string(x))
		}
		return f, nil
	case float64:
		if x == float64(int64(x)) {
			return int64(x), nil
		}
		return x, nil
	case map[string]any:
		if b64, ok := x[bytesTag].(string); ok && len(x) == 1 {
			raw, err := base64.StdEncoding.DecodeString(b64)
			if err != nil {
				return nil, fmt.Errorf("wire: bad %s value: %w", bytesTag, err)
			}
			return raw, nil
		}
		return jsonToDoc(x)
	case []any:
		arr := make([]any, len(x))
		for i, e := range x {
			ne, err := jsonValue(e)
			if err != nil {
				return nil, err
			}
			arr[i] = ne
		}
		return arr, nil
	default:
		return storage.Normalize(v)
	}
}
