package wire

// Wire round-trip benchmarks over a real TCP loopback socket. The
// PR 3 contrast: the serial read→dispatch→write connection loop (and
// the client's one-connection-per-caller pool) versus per-connection
// request pipelining with id-matched responses.
//
//	go test ./internal/wire -bench BenchmarkWire -benchtime 1x -count 3 -benchmem

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"decongestant/internal/cluster"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

const wireBenchDocs = 1024

func startBenchServer(b *testing.B) (string, func()) {
	b.Helper()
	env := sim.NewRealtimeEnv(1)
	cfg := cluster.Config{
		Nodes:    3,
		CPUSlots: 8,

		ReadCost:    -1,
		WriteCost:   -1,
		ApplyCost:   -1,
		StatusCost:  -1,
		GetMoreCost: -1,
		CostJitter:  -1,

		RTTSameZone:        -1,
		RTTCrossZoneBase:   -1,
		RTTCrossZoneSpread: -1,
		RTTJitter:          -1,
	}
	rs := cluster.New(env, cfg)
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("bench")
		for i := 0; i < wireBenchDocs; i++ {
			if err := c.Insert(storage.D{
				"_id": fmt.Sprintf("doc%05d", i),
				"val": int64(i),
				"pad": "abcdefghijklmnopqrstuvwxyz",
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(env, rs, nil)
	ln, lerr := net.Listen("tcp", "127.0.0.1:0")
	if lerr != nil {
		b.Fatal(lerr)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() {
		srv.Close()
		env.Shutdown()
	}
}

// BenchmarkWireConcurrentPointReads issues concurrent single-document
// reads from many goroutines through one Client. Round-trips/sec is
// the PR 3 wire-layer headline.
func BenchmarkWireConcurrentPointReads(b *testing.B) {
	addr, stop := startBenchServer(b)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	var seed atomic.Int64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		i := int(n * 7919)
		for pb.Next() {
			i++
			id := fmt.Sprintf("doc%05d", i%wireBenchDocs)
			res, err := cl.ExecRead(nil, 0, func(v cluster.ReadView) (any, error) {
				d, ok := v.FindByID("bench", id)
				if !ok {
					return nil, fmt.Errorf("wire bench: %s missing", id)
				}
				return d, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if res == nil {
				b.Fatal("nil doc")
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
}
