package wire

// Wire round-trip benchmarks over a real TCP loopback socket. The
// PR 3 contrast: the serial read→dispatch→write connection loop (and
// the client's one-connection-per-caller pool) versus per-connection
// request pipelining with id-matched responses.
//
//	go test ./internal/wire -bench BenchmarkWire -benchtime 1x -count 3 -benchmem

import (
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"testing"

	"decongestant/internal/cluster"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

const (
	wireBenchDocs   = 1024
	wireBenchGroups = 64 // "orders" docs per w_id group = wireBenchDocs/wireBenchGroups
)

// benchDial opens the client the benchmarks measure. The WIRE_PROTO
// environment variable pins the protocol version ("1" = JSON codec),
// which is how bench/baseline_pr5.txt was recorded; the default is
// whatever Dial negotiates.
func benchDial(b *testing.B, addr string) *Client {
	b.Helper()
	dial := Dial
	if os.Getenv("WIRE_PROTO") == "1" {
		dial = DialJSON
	}
	cl, err := dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	return cl
}

func startBenchServer(b *testing.B) (string, func()) {
	b.Helper()
	env := sim.NewRealtimeEnv(1)
	cfg := cluster.Config{
		Nodes:    3,
		CPUSlots: 8,

		ReadCost:    -1,
		WriteCost:   -1,
		ApplyCost:   -1,
		StatusCost:  -1,
		GetMoreCost: -1,
		CostJitter:  -1,

		RTTSameZone:        -1,
		RTTCrossZoneBase:   -1,
		RTTCrossZoneSpread: -1,
		RTTJitter:          -1,
	}
	rs := cluster.New(env, cfg)
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("bench")
		for i := 0; i < wireBenchDocs; i++ {
			if err := c.Insert(storage.D{
				"_id": fmt.Sprintf("doc%05d", i),
				"val": int64(i),
				"pad": "abcdefghijklmnopqrstuvwxyz",
			}); err != nil {
				return err
			}
		}
		// "orders" carries TPC-C-like rows (mostly small integer columns
		// plus short strings) behind a w_id index: the serialization-
		// bound find path the wire benchmarks measure.
		o := s.C("orders")
		if _, err := o.CreateIndex("w_id", false, "w_id"); err != nil {
			return err
		}
		for i := 0; i < wireBenchDocs; i++ {
			if err := o.Insert(storage.D{
				"_id":       fmt.Sprintf("ord%05d", i),
				"w_id":      int64(i % wireBenchGroups),
				"d_id":      int64(i % 10),
				"c_id":      int64(i % 30),
				"carrier":   int64(i % 10),
				"ol_cnt":    int64(5 + i%10),
				"all_local": int64(1),
				"qty":       int64(i % 100),
				"ytd":       int64(i % 50),
				"order_cnt": int64(i % 20),
				"remote":    int64(i % 2),
				"entry_d":   int64(1234500000 + i),
				"amount":    3.14,
				"item":      fmt.Sprintf("item-%04d", i%wireBenchDocs),
				"dist":      "abcdefghijklmnopqrstuvwx",
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(env, rs, nil)
	ln, lerr := net.Listen("tcp", "127.0.0.1:0")
	if lerr != nil {
		b.Fatal(lerr)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() {
		srv.Close()
		env.Shutdown()
	}
}

// BenchmarkWireConcurrentPointReads issues concurrent single-document
// reads from many goroutines through one Client. Round-trips/sec is
// the PR 3 wire-layer headline.
func BenchmarkWireConcurrentPointReads(b *testing.B) {
	addr, stop := startBenchServer(b)
	defer stop()
	cl := benchDial(b, addr)
	defer cl.Close()
	var seed atomic.Int64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		i := int(n * 7919)
		for pb.Next() {
			i++
			id := fmt.Sprintf("doc%05d", i%wireBenchDocs)
			res, err := cl.ExecRead(nil, 0, func(v cluster.ReadView) (any, error) {
				d, ok := v.FindByID("bench", id)
				if !ok {
					return nil, fmt.Errorf("wire bench: %s missing", id)
				}
				return d, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if res == nil {
				b.Fatal("nil doc")
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
}

// BenchmarkWireFindQuery round-trips indexed find queries returning 16
// nested documents each — the serialization-bound path where the
// codec's encode/decode cost dominates the loopback round trip.
func BenchmarkWireFindQuery(b *testing.B) {
	addr, stop := startBenchServer(b)
	defer stop()
	cl := benchDial(b, addr)
	defer cl.Close()
	var seed atomic.Int64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		i := int(n * 7919)
		for pb.Next() {
			i++
			w := int64(i % wireBenchGroups)
			res, err := cl.ExecRead(nil, 0, func(v cluster.ReadView) (any, error) {
				docs := v.Find("orders", storage.Filter{"w_id": storage.Eq(w)}, 0)
				if len(docs) != wireBenchDocs/wireBenchGroups {
					return nil, fmt.Errorf("wire bench: w_id %d returned %d docs", w, len(docs))
				}
				return docs, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if res == nil {
				b.Fatal("nil docs")
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
}

// BenchmarkWireFindMany round-trips 16-id batch lookups of the nested
// order documents.
func BenchmarkWireFindMany(b *testing.B) {
	addr, stop := startBenchServer(b)
	defer stop()
	cl := benchDial(b, addr)
	defer cl.Close()
	const batch = 16
	var seed atomic.Int64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		i := int(n * 7919)
		ids := make([]string, batch)
		for pb.Next() {
			i++
			for j := range ids {
				ids[j] = fmt.Sprintf("ord%05d", (i*batch+j)%wireBenchDocs)
			}
			res, err := cl.ExecRead(nil, 0, func(v cluster.ReadView) (any, error) {
				docs := v.FindManyByID("orders", ids)
				if len(docs) != batch {
					return nil, fmt.Errorf("wire bench: batch returned %d docs", len(docs))
				}
				return docs, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if res == nil {
				b.Fatal("nil docs")
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
}
