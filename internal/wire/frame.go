package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Protocol versions. Both share the frame format — a 4-byte big-endian
// length prefix followed by the body — and differ only in the body
// codec: v1 bodies are JSON, v2 bodies are the hand-rolled binary
// encoding in binary.go with BSON-lite document payloads.
const (
	V1 = 1 // JSON bodies; the format old clients and debug tooling speak
	V2 = 2 // binary bodies with BSON-lite documents
)

// helloMagic opens a client hello: 4 magic bytes followed by one byte
// carrying the highest version the client speaks. The server replies
// with the magic and the version the connection will use,
// min(client max, V2). The magic is chosen so that a v1-only server
// reading it as a frame length sees ~3.5 GiB — far beyond MaxFrame —
// and drops the connection with a clean error, which the client takes
// as its cue to redial in JSON mode. A client that never sends a hello
// gets a v1 connection; the first four bytes of a real v1 frame are a
// length ≤ MaxFrame and can never collide with the magic.
var helloMagic = [4]byte{0xDC, 0xF2, 0x57, 0x50}

// helloLen is the size of both the client hello and the server reply.
const helloLen = 5

// writeHello sends a client hello advertising maxVersion.
func writeHello(w io.Writer, maxVersion byte) error {
	var buf [helloLen]byte
	copy(buf[:4], helloMagic[:])
	buf[4] = maxVersion
	_, err := w.Write(buf[:])
	return err
}

// readHelloReply reads and validates the server's handshake reply,
// returning the negotiated version.
func readHelloReply(r io.Reader) (byte, error) {
	var buf [helloLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	if [4]byte(buf[:4]) != helloMagic {
		return 0, fmt.Errorf("wire: bad handshake reply %x", buf[:4])
	}
	v := buf[4]
	if v < V1 || v > V2 {
		return 0, fmt.Errorf("wire: server negotiated unsupported version %d", v)
	}
	return v, nil
}

// negotiate performs the server side of the handshake on a buffered
// reader. It peeks at the first four bytes: a hello magic means a
// versioned client (consume the hello, reply, speak the negotiated
// version); anything else is the length prefix of a v1 frame from a
// client that predates negotiation — leave it unread and speak JSON.
func negotiate(br *bufio.Reader, w io.Writer) (byte, error) {
	head, err := br.Peek(4)
	if err != nil {
		return 0, err
	}
	if [4]byte(head) != helloMagic {
		return V1, nil
	}
	var hello [helloLen]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return 0, err
	}
	ver := hello[4]
	if ver > V2 {
		ver = V2
	}
	if ver < V1 {
		return 0, fmt.Errorf("wire: client advertised version %d", hello[4])
	}
	var reply [helloLen]byte
	copy(reply[:4], helloMagic[:])
	reply[4] = ver
	if _, err := w.Write(reply[:]); err != nil {
		return 0, err
	}
	return ver, nil
}

// framePool recycles frame-encoding buffers across requests. Buffers
// that grew beyond pooledBufCap are dropped rather than pooled, so one
// huge response does not pin memory forever.
const pooledBufCap = 1 << 20

var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getBuf() *[]byte { return framePool.Get().(*[]byte) }

func putBuf(p *[]byte) {
	if cap(*p) > pooledBufCap {
		return
	}
	*p = (*p)[:0]
	framePool.Put(p)
}

// beginFrame reserves the 4-byte length header; finishFrame patches it
// once the body has been appended after it.
func beginFrame(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0)
}

func finishFrame(b []byte, start int) error {
	n := len(b) - start - 4
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(b[start:start+4], uint32(n))
	return nil
}

// frameReader reads length-prefixed frame bodies into a buffer reused
// across calls — one allocation per connection, not per frame. The
// returned slice is only valid until the next call; decoders must copy
// what they keep (BSON-lite decoding does: strings are interned or
// copied, byte values are copied).
//
// The reader is resumable across transient read errors: partial header
// or body progress is retained in the struct, so a caller that gets a
// read-deadline timeout (the server's idle-timeout probe) can call
// next again and continue mid-frame without desynchronizing the
// stream.
type frameReader struct {
	r   io.Reader
	buf []byte

	hdr    [4]byte
	hn     int  // header bytes read so far
	inBody bool // header complete; bn tracks body progress
	bn     int
}

// midFrame reports whether a frame is partially read — the signal that
// a timed-out connection is stalled mid-frame rather than idle between
// requests.
func (fr *frameReader) midFrame() bool { return fr.hn > 0 || fr.inBody }

func (fr *frameReader) next() ([]byte, error) {
	if !fr.inBody {
		for fr.hn < 4 {
			n, err := fr.r.Read(fr.hdr[fr.hn:])
			fr.hn += n
			if err != nil {
				return nil, err
			}
		}
		size := binary.BigEndian.Uint32(fr.hdr[:])
		if size > MaxFrame {
			return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", size)
		}
		if uint32(cap(fr.buf)) < size {
			fr.buf = make([]byte, size)
		}
		fr.buf = fr.buf[:size]
		fr.bn = 0
		fr.inBody = true
	}
	for fr.bn < len(fr.buf) {
		n, err := fr.r.Read(fr.buf[fr.bn:])
		fr.bn += n
		if err != nil {
			return nil, err
		}
	}
	fr.hn, fr.inBody = 0, false
	return fr.buf, nil
}
