package wire

// Admission-control overhead benchmark: the PR 6 contrast is the seed
// server (no read deadlines, no inflight accounting, no shed checks)
// versus the admission-enabled server with every gate armed but none
// tripping — the steady-state cost of observability and control on the
// hot read path.
//
// bench/baseline_pr6.txt was recorded with WIRE_ADMISSION=off, which
// pins the seed construction path; the default run arms admission.
//
//	go test ./internal/wire -bench BenchmarkWireAdmission -benchtime 1x -count 3 -benchmem

import (
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func startBenchServerAdmission(b *testing.B) (string, func()) {
	b.Helper()
	env := sim.NewRealtimeEnv(1)
	cfg := cluster.Config{
		Nodes:    3,
		CPUSlots: 8,

		ReadCost:    -1,
		WriteCost:   -1,
		ApplyCost:   -1,
		StatusCost:  -1,
		GetMoreCost: -1,
		CostJitter:  -1,

		RTTSameZone:        -1,
		RTTCrossZoneBase:   -1,
		RTTCrossZoneSpread: -1,
		RTTJitter:          -1,
	}
	rs := cluster.New(env, cfg)
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("bench")
		for i := 0; i < wireBenchDocs; i++ {
			if err := c.Insert(storage.D{
				"_id": fmt.Sprintf("doc%05d", i),
				"val": int64(i),
				"pad": "abcdefghijklmnopqrstuvwxyz",
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	scfg := ServerConfig{
		IdleTimeout:        30 * time.Second,
		MaxConns:           1024,
		MaxInflightPerConn: 256,
		ShedInflight:       4096,
		SlowOpThreshold:    time.Second,
	}
	if os.Getenv("WIRE_ADMISSION") == "off" {
		scfg = ServerConfig{}
	}
	srv := NewServerWith(env, rs, nil, scfg)
	ln, lerr := net.Listen("tcp", "127.0.0.1:0")
	if lerr != nil {
		b.Fatal(lerr)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() {
		srv.Close()
		env.Shutdown()
	}
}

// BenchmarkWireAdmissionPointReads issues concurrent point reads with
// every admission gate armed (deadline per frame, per-conn semaphore,
// shed check, slow-op clock) but no gate tripping.
func BenchmarkWireAdmissionPointReads(b *testing.B) {
	addr, stop := startBenchServerAdmission(b)
	defer stop()
	cl := benchDial(b, addr)
	defer cl.Close()
	var seed atomic.Int64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		i := int(n * 7919)
		for pb.Next() {
			i++
			id := fmt.Sprintf("doc%05d", i%wireBenchDocs)
			res, err := cl.ExecRead(nil, 0, func(v cluster.ReadView) (any, error) {
				d, ok := v.FindByID("bench", id)
				if !ok {
					return nil, fmt.Errorf("wire bench: %s missing", id)
				}
				return d, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if res == nil {
				b.Fatal("nil doc")
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
}
