package wire

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/obs/trace"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// startTraceServer is startTestServer with an explicit ServerConfig
// and log sink, for the tracing and currentOp tests.
func startTraceServer(t *testing.T, logw io.Writer, cfg ServerConfig) (*cluster.ReplicaSet, string, func()) {
	t.Helper()
	env := sim.NewRealtimeEnv(1)
	ccfg := cluster.DefaultConfig()
	ccfg.ReadCost = 50 * time.Microsecond
	ccfg.WriteCost = 100 * time.Microsecond
	ccfg.ApplyCost = 20 * time.Microsecond
	ccfg.GetMoreCost = 20 * time.Microsecond
	ccfg.StatusCost = 20 * time.Microsecond
	ccfg.RTTSameZone = 100 * time.Microsecond
	ccfg.RTTCrossZoneBase = 200 * time.Microsecond
	ccfg.ReplIdlePoll = 2 * time.Millisecond
	ccfg.HeartbeatInterval = 50 * time.Millisecond
	ccfg.CheckpointInterval = time.Hour
	ccfg.NoopInterval = time.Hour
	rs := cluster.New(env, ccfg)
	var logger *log.Logger
	if logw != nil {
		logger = log.New(logw, "", 0)
	}
	srv := NewServerWith(env, rs, logger, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return rs, ln.Addr().String(), func() {
		srv.Close()
		env.Shutdown()
	}
}

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// traceContexts enumerates the shapes a request's trace context can
// take on the wire: absent, bare ids, and a full balancer route
// snapshot riding along.
func traceContexts() []*trace.Context {
	return []*trace.Context{
		nil,
		{TraceID: 0xdeadbeef},
		{TraceID: 1, SpanID: 0xffffffffffffffff},
		{TraceID: 42, SpanID: 7, Route: &trace.Route{
			Pref: "secondary", Reason: "bal-frac", FracPct: 35, StaleSecs: 4, Gated: true,
		}},
		{TraceID: 9, Route: &trace.Route{Pref: "primary", Reason: "", FracPct: 0, StaleSecs: -1}},
	}
}

func sameContext(a, b *trace.Context) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.TraceID != b.TraceID || a.SpanID != b.SpanID {
		return false
	}
	if (a.Route == nil) != (b.Route == nil) {
		return false
	}
	if a.Route == nil {
		return true
	}
	return *a.Route == *b.Route
}

// TestTraceContextRoundTripBothCodecs drives the same request —
// context shapes from absent to full-route, plus the audited bound and
// a span payload — through the v2 binary codec and the v1 JSON codec.
func TestTraceContextRoundTripBothCodecs(t *testing.T) {
	for i, tc := range traceContexts() {
		in := Request{ID: uint64(i + 1), Op: OpFind, Node: 1, Collection: "c", Trace: tc}
		if i%2 == 1 {
			in.BoundSecs = int64(3 + i)
		}
		if i == 3 {
			in.Spans = []trace.Span{{
				Trace: 42, ID: 5, Parent: 7, Name: "client.exec_read", Node: -1,
				Start: time.Second, Dur: time.Millisecond,
				Attrs: []trace.Attr{{K: "node", V: "1"}},
			}}
		}

		body, err := encodeRequest(nil, &in)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		var v2 Request
		if err := decodeRequest(body, &v2); err != nil {
			t.Fatalf("case %d: decode v2: %v", i, err)
		}
		checkTraceRequest(t, i, "v2", &in, &v2)

		jbody, err := json.Marshal(&in)
		if err != nil {
			t.Fatalf("case %d: encode v1: %v", i, err)
		}
		var v1 Request
		if err := decodeJSONBody(jbody, &v1); err != nil {
			t.Fatalf("case %d: decode v1: %v", i, err)
		}
		checkTraceRequest(t, i, "v1", &in, &v1)
	}
}

func checkTraceRequest(t *testing.T, i int, codec string, in, out *Request) {
	t.Helper()
	// A context with TraceID 0 is dead weight; the binary codec drops it
	// outright, so compare it as absent.
	want := in.Trace
	if want != nil && want.TraceID == 0 {
		want = nil
	}
	if !sameContext(want, out.Trace) {
		t.Fatalf("case %d (%s): trace context mismatch: %+v vs %+v", i, codec, want, out.Trace)
	}
	if out.BoundSecs != in.BoundSecs {
		t.Fatalf("case %d (%s): bound %d vs %d", i, codec, out.BoundSecs, in.BoundSecs)
	}
	if len(out.Spans) != len(in.Spans) {
		t.Fatalf("case %d (%s): %d spans vs %d", i, codec, len(out.Spans), len(in.Spans))
	}
	for j := range in.Spans {
		a, b := in.Spans[j], out.Spans[j]
		if a.Trace != b.Trace || a.ID != b.ID || a.Parent != b.Parent ||
			a.Name != b.Name || a.Node != b.Node || a.Start != b.Start || a.Dur != b.Dur ||
			len(a.Attrs) != len(b.Attrs) {
			t.Fatalf("case %d (%s): span mismatch: %+v vs %+v", i, codec, a, b)
		}
	}
}

// TestResponseSpansOpsRoundTrip covers the trace export side of both
// codecs: spans and currentOp infos in a response body.
func TestResponseSpansOpsRoundTrip(t *testing.T) {
	in := Response{
		ID: 3,
		Spans: []trace.Span{
			{Trace: 8, ID: 1, Name: "server.dispatch", Node: 2, Start: time.Second, Dur: time.Millisecond},
			{Trace: 8, ID: 2, Parent: 1, Name: "node.exec_read", Node: 2},
		},
		Ops: []trace.OpInfo{
			{ID: 11, Op: OpFind, Collection: "c", Node: 1, Trace: 8, Start: time.Second, RunningNS: 500},
		},
	}
	body, err := encodeResponse(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	var v2 Response
	if err := decodeResponse(body, &v2); err != nil {
		t.Fatal(err)
	}
	jbody, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var v1 Response
	if err := decodeJSONBody(jbody, &v1); err != nil {
		t.Fatal(err)
	}
	for _, out := range []*Response{&v2, &v1} {
		if len(out.Spans) != 2 || out.Spans[0].Name != "server.dispatch" || out.Spans[1].Parent != 1 {
			t.Fatalf("spans mismatch: %+v", out.Spans)
		}
		if len(out.Ops) != 1 || out.Ops[0].ID != 11 || out.Ops[0].Trace != 8 || out.Ops[0].RunningNS != 500 {
			t.Fatalf("ops mismatch: %+v", out.Ops)
		}
	}
}

// TestDecodeTraceContextRejectsCorruption spot-checks the corruption
// classes the fuzzer explores: zero trace id, bad flag bytes, and
// oversized route strings must all be frame errors.
func TestDecodeTraceContextRejectsCorruption(t *testing.T) {
	valid, err := encodeRequest(nil, &Request{
		ID: 1, Op: OpFind, Node: 1,
		Trace: &trace.Context{TraceID: 5, SpanID: 6, Route: &trace.Route{Pref: "secondary"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ok Request
	if err := decodeRequest(valid, &ok); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}

	cases := map[string][]byte{
		"zero trace id":    {rqTrace, 0x00, 0x06, 0x00},
		"truncated ids":    {rqTrace, 0x85},
		"bad route flag":   {rqTrace, 0x05, 0x06, 0x02},
		"truncated route":  {rqTrace, 0x05, 0x06, 0x01, 0x03, 'a'},
		"oversized pref":   {rqTrace, 0x05, 0x06, 0x01, 0xFF, 0x01},
		"bad gated flag":   append([]byte{rqTrace, 0x05, 0x06, 0x01, 0x00, 0x00, 0x00, 0x00}, 0x07),
		"huge span blob":   {rqSpans, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		"truncated bound":  {rqBound, 0x80},
		"huge spans count": {rqSpans, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
	}
	for name, body := range cases {
		var r Request
		if err := decodeRequest(body, &r); err == nil {
			t.Errorf("%s: corrupt frame accepted", name)
		}
	}
}

// TestEncodeRequestSamplingOffZeroAllocs is the CI alloc gate for the
// v2 hot path: encoding a find request with no trace context into a
// preallocated buffer must not allocate — the tracing fields cost
// nothing when sampling is off.
func TestEncodeRequestSamplingOffZeroAllocs(t *testing.T) {
	req := Request{ID: 1, Op: OpFind, Node: 1, Collection: "orders", Limit: 10,
		AfterSecs: 5, AfterInc: 2}
	req.filter = storage.Filter{"w": storage.Eq(int64(2))}
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		if _, err = encodeRequest(buf[:0], &req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encodeRequest with tracing off allocates %.1f times per op, want 0", allocs)
	}
}

// TestWireEndToEndTraceTree is the acceptance path: one trace id,
// sampled at the client, yields a causally linked span tree — client
// exec → server admission/dispatch → node exec — retrievable through
// the trace wire op after the client pushes its local spans.
func TestWireEndToEndTraceTree(t *testing.T) {
	_, rs, addr, stop := startTestServer(t)
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTraceSampling(1)

	if _, err := cl.ExecWrite(nil, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert("kv", storage.D{"_id": "a", "v": int64(1)})
	}); err != nil {
		t.Fatal(err)
	}
	// ExecRead is the untraced fast path; a traced read originates its
	// context (here via the rate-1 sampler) and goes through
	// ExecReadMeta, exactly as the driver does per sampled read.
	if _, _, err := cl.ExecReadMeta(nil, 0, oplog.Zero,
		cluster.ReadMeta{Ctx: cl.Tracer().StartTrace()},
		func(v cluster.ReadView) (any, error) {
			v.FindByID("kv", "a")
			return nil, nil
		}); err != nil {
		t.Fatal(err)
	}
	if err := cl.PushTraces(); err != nil {
		t.Fatal(err)
	}

	// The client recorder drained into the server; find the read's
	// trace id from the server's recent spans.
	var traceID uint64
	for _, s := range rs.Tracer().Recent(0) {
		if s.Name == "client.exec_read" {
			traceID = s.Trace
			break
		}
	}
	if traceID == 0 {
		t.Fatal("no client.exec_read span reached the server")
	}

	spans, err := cl.FetchTrace(traceID)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]trace.Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	for _, name := range []string{"client.exec_read", "server.admission", "server.dispatch", "node.exec_read"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace %s missing span %q; got %+v", trace.IDString(traceID), name, spans)
		}
	}
	client := byName["client.exec_read"]
	if byName["server.admission"].Parent != client.ID {
		t.Fatalf("admission span parent %x, want client span %x", byName["server.admission"].Parent, client.ID)
	}
	if byName["server.dispatch"].Parent != client.ID {
		t.Fatalf("dispatch span parent %x, want client span %x", byName["server.dispatch"].Parent, client.ID)
	}
	exec := byName["node.exec_read"]
	if exec.Parent != byName["server.dispatch"].ID {
		t.Fatalf("exec span parent %x, want dispatch span %x", exec.Parent, byName["server.dispatch"].ID)
	}
	if exec.Node != 0 {
		t.Fatalf("exec span on node %d, want 0", exec.Node)
	}
	found := false
	for _, a := range byName["server.dispatch"].Attrs {
		if a.K == "op" && a.V == OpFindByID {
			found = true
		}
	}
	if !found {
		t.Fatalf("dispatch span lacks op attr: %+v", byName["server.dispatch"].Attrs)
	}
}

// TestWireCurrentOp asserts an in-flight request shows up in the
// currentOp export with its op name and node, and disappears once it
// completes.
func TestWireCurrentOp(t *testing.T) {
	_, addr, stop := startTraceServer(t, nil, ServerConfig{CurrentOp: true})
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Park a causal read on an OpTime one past the last commit; it
	// stays in dispatch until the next write lands.
	_, commit, err := cl.ExecWriteTracked(nil, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert("kv", storage.D{"_id": "a", "v": int64(1)})
	})
	if err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		after := commit
		after.Inc++
		_, _, err := cl.ExecReadAfter(nil, 0, after, func(v cluster.ReadView) (any, error) {
			v.FindByID("kv", "a")
			return nil, nil
		})
		blocked <- err
	}()

	deadline := time.Now().Add(5 * time.Second)
	seen := false
	for time.Now().Before(deadline) {
		ops, err := cl.CurrentOp()
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if op.Op == OpFindByID && op.Node == 0 && op.ID != 0 {
				seen = true
			}
		}
		if seen {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !seen {
		t.Fatal("blocked read never appeared in currentOp")
	}

	if _, err := cl.ExecWrite(nil, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert("kv", storage.D{"_id": "b", "v": int64(2)})
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	// Drained: the read leaves the registry once it completes. (The
	// currentOp request itself is in dispatch while it snapshots, so
	// the registry is never literally empty — filter to the find.)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ops, err := cl.CurrentOp()
		if err != nil {
			t.Fatal(err)
		}
		gone := true
		for _, op := range ops {
			if op.Op == OpFindByID {
				gone = false
			}
		}
		if gone {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("currentOp never drained after the read completed")
}

// TestSlowOpRetroTraceAndLog asserts always-on-slow sampling: with
// sampling off, a request crossing the slow threshold still lands a
// server.dispatch span in the recorder, and the log line carries its
// trace id and a route placeholder.
func TestSlowOpRetroTraceAndLog(t *testing.T) {
	var logBuf syncBuffer
	rs, addr, stop := startTraceServer(t, &logBuf, ServerConfig{SlowOpThreshold: time.Nanosecond})
	defer stop()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.ExecRead(nil, 0, func(v cluster.ReadView) (any, error) {
		v.FindByID("kv", "nope")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}

	var dispatch []trace.Span
	for _, s := range rs.Tracer().Recent(0) {
		if s.Name == "server.dispatch" {
			dispatch = append(dispatch, s)
		}
	}
	if len(dispatch) == 0 {
		t.Fatal("slow op recorded no retroactive dispatch span")
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "slow op") ||
		!strings.Contains(logged, "trace="+trace.IDString(dispatch[len(dispatch)-1].Trace)) {
		t.Fatalf("slow-op log missing trace id: %q", logged)
	}
	if !strings.Contains(logged, "route=-") {
		t.Fatalf("unsampled slow op should log route=-: %q", logged)
	}
	snap := rs.Metrics().Snapshot()
	if got := snap.CounterValue("wire.slow_ops"); got == 0 {
		t.Fatal("slow op not counted")
	}
}
