package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"decongestant/internal/obs"
	"decongestant/internal/obs/trace"
	"decongestant/internal/storage"
)

// Protocol v2 body codec: hand-rolled binary encoding for Request and
// Response. A body is a sequence of fields, each a uvarint tag followed
// by a tag-specific payload; absent fields are simply not written, and
// unknown tags are a decode error (both sides negotiate the version,
// so there is no skew to tolerate). Documents travel as BSON-lite,
// which is self-delimiting — the server can splice a cached encoding
// straight into the frame, and the decoder hands concatenated docs to
// storage.DecodeDocPrefix one after another. Metrics snapshots are the
// one exception: they ride as JSON inside a binary field, since they
// are rare, large, and not on any hot path.

var errBadFrame = errors.New("wire: corrupt binary frame")

// Request field tags.
const (
	rqID          = 1  // uvarint
	rqOpCode      = 2  // byte, from opCodes
	rqOpName      = 3  // string, for ops outside the table
	rqNode        = 4  // varint
	rqCollection  = 5  // string
	rqDocID       = 6  // string
	rqIDs         = 7  // uvarint count + strings
	rqFilter      = 8  // see appendFilter
	rqLimit       = 9  // varint
	rqMuts        = 10 // uvarint count + mutations
	rqAfterSecs   = 11 // varint
	rqAfterInc    = 12 // uvarint
	rqSource      = 13 // string
	rqSnapshot    = 14 // uvarint length + JSON bytes
	rqTrace       = 15 // see appendTraceContext
	rqBound       = 16 // varint audited staleness bound, seconds
	rqSpans       = 17 // uvarint length + JSON bytes (trace_push payload)
	rqReadConcern = 18 // varint read concern (see the RC constants)
	rqWantFresh   = 19 // flag byte: report observed staleness in the response
)

// Response field tags.
const (
	rsID        = 1  // uvarint
	rsErr       = 2  // string
	rsFound     = 3  // byte
	rsDoc       = 4  // BSON-lite document
	rsDocs      = 5  // uvarint count + BSON-lite documents
	rsCount     = 6  // varint
	rsTopo      = 7  // varint primary + uvarint count + zone strings
	rsStatus    = 8  // see appendStatus
	rsOpSecs    = 9  // varint
	rsOpInc     = 10 // uvarint
	rsMetrics   = 11 // uvarint length + JSON bytes
	rsCode      = 12 // varint error code (classifies rsErr)
	rsSpans     = 13 // uvarint length + JSON bytes (trace op result)
	rsOps       = 14 // uvarint length + JSON bytes (current_op result)
	rsShards    = 15 // uvarint count + (varint id, string addr) rows
	rsChunks    = 16 // uvarint version + uvarint count + chunk rows
	rsEntries   = 17 // uvarint count + oplog entry rows
	rsTruncS    = 18 // varint oplog truncation horizon, seconds part
	rsTruncI    = 19 // uvarint oplog truncation horizon, inc part
	rsStaleSecs = 20 // varint observed staleness (answers rqWantFresh)
)

// opCodes maps op names to single-byte codes for the binary codec;
// opNames is the inverse. Ops outside the table (a misbehaving client,
// a future extension) travel by name so the server can reject them
// with its usual "unknown op" error instead of a frame error.
var opCodes = map[string]byte{
	OpTopology:    1,
	OpPing:        2,
	OpStatus:      3,
	OpFindByID:    4,
	OpFindMany:    5,
	OpFind:        6,
	OpCount:       7,
	OpWriteBatch:  8,
	OpMetrics:     9,
	OpMetricsPush: 10,
	OpTrace:       11,
	OpCurrentOp:   12,
	OpTracePush:   13,
	OpListShards:  14,
	OpChunkMap:    15,
	OpOplogTail:   16,
	OpMoveChunk:   17,
}

var opNames = func() map[byte]string {
	m := make(map[byte]string, len(opCodes))
	for name, code := range opCodes {
		m[code] = name
	}
	return m
}()

// Mutation kind codes. Oplog entries reuse them plus "noop" (entries
// ride replication, where heartbeats exist; mutations never carry one).
var kindCodes = map[string]byte{"insert": 1, "set": 2, "delete": 3}

const entryKindNoop = 4

var kindNames = func() map[byte]string {
	m := make(map[byte]string, len(kindCodes))
	for name, code := range kindCodes {
		m[code] = name
	}
	return m
}()

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func getUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errBadFrame
	}
	return v, b[n:], nil
}

func getVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, errBadFrame
	}
	return v, b[n:], nil
}

func getByte(b []byte) (byte, []byte, error) {
	if len(b) == 0 {
		return 0, nil, errBadFrame
	}
	return b[0], b[1:], nil
}

// getString decodes a length-prefixed string, interning short ones so
// repeated collection names, document ids and op strings share storage.
func getString(b []byte) (string, []byte, error) {
	n, b, err := getUvarint(b)
	if err != nil || n > uint64(len(b)) {
		return "", nil, errBadFrame
	}
	return storage.Intern(b[:n]), b[n:], nil
}

// getBytes decodes a length-prefixed byte payload without copying; the
// caller must consume it before the frame buffer is reused.
func getBytes(b []byte) ([]byte, []byte, error) {
	n, b, err := getUvarint(b)
	if err != nil || n > uint64(len(b)) {
		return nil, nil, errBadFrame
	}
	return b[:n], b[n:], nil
}

// maxRouteString bounds the route snapshot's pref/reason strings; both
// come from small enum-like sets, so anything longer is corruption.
const maxRouteString = 64

// appendTraceContext encodes the compact trace context: trace id, span
// id, then a route-presence byte optionally followed by the balancer
// decision snapshot. A request with no sampled context writes nothing
// at all (the tag is skipped), so tracing-off costs zero wire bytes.
func appendTraceContext(dst []byte, c *trace.Context) []byte {
	dst = binary.AppendUvarint(dst, c.TraceID)
	dst = binary.AppendUvarint(dst, c.SpanID)
	if c.Route == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = appendString(dst, c.Route.Pref)
	dst = appendString(dst, c.Route.Reason)
	dst = binary.AppendVarint(dst, int64(c.Route.FracPct))
	dst = binary.AppendVarint(dst, c.Route.StaleSecs)
	if c.Route.Gated {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// decodeTraceContext is the inverse of appendTraceContext. Corrupt
// contexts (zero trace id, bad flag bytes, oversized route strings)
// are frame errors; nothing here allocates proportionally to attacker-
// controlled counts.
func decodeTraceContext(b []byte) (*trace.Context, []byte, error) {
	tid, b, err := getUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if tid == 0 {
		return nil, nil, fmt.Errorf("%w: zero trace id", errBadFrame)
	}
	sid, b, err := getUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	flag, b, err := getByte(b)
	if err != nil {
		return nil, nil, err
	}
	c := &trace.Context{TraceID: tid, SpanID: sid}
	switch flag {
	case 0:
		return c, b, nil
	case 1:
	default:
		return nil, nil, fmt.Errorf("%w: trace route flag %d", errBadFrame, flag)
	}
	rt := &trace.Route{}
	if rt.Pref, b, err = getString(b); err != nil || len(rt.Pref) > maxRouteString {
		return nil, nil, errBadFrame
	}
	if rt.Reason, b, err = getString(b); err != nil || len(rt.Reason) > maxRouteString {
		return nil, nil, errBadFrame
	}
	var v int64
	if v, b, err = getVarint(b); err != nil {
		return nil, nil, err
	}
	rt.FracPct = int(v)
	if rt.StaleSecs, b, err = getVarint(b); err != nil {
		return nil, nil, err
	}
	if flag, b, err = getByte(b); err != nil {
		return nil, nil, err
	}
	switch flag {
	case 0:
	case 1:
		rt.Gated = true
	default:
		return nil, nil, fmt.Errorf("%w: trace gated flag %d", errBadFrame, flag)
	}
	c.Route = rt
	return c, b, nil
}

// encodeRequest appends r's binary body to dst.
func encodeRequest(dst []byte, r *Request) ([]byte, error) {
	if r.ID != 0 {
		dst = binary.AppendUvarint(dst, rqID)
		dst = binary.AppendUvarint(dst, r.ID)
	}
	if code, ok := opCodes[r.Op]; ok {
		dst = binary.AppendUvarint(dst, rqOpCode)
		dst = append(dst, code)
	} else if r.Op != "" {
		dst = binary.AppendUvarint(dst, rqOpName)
		dst = appendString(dst, r.Op)
	}
	if r.Node != 0 {
		dst = binary.AppendUvarint(dst, rqNode)
		dst = binary.AppendVarint(dst, int64(r.Node))
	}
	if r.Collection != "" {
		dst = binary.AppendUvarint(dst, rqCollection)
		dst = appendString(dst, r.Collection)
	}
	if r.DocID != "" {
		dst = binary.AppendUvarint(dst, rqDocID)
		dst = appendString(dst, r.DocID)
	}
	if len(r.IDs) > 0 {
		dst = binary.AppendUvarint(dst, rqIDs)
		dst = binary.AppendUvarint(dst, uint64(len(r.IDs)))
		for _, id := range r.IDs {
			dst = appendString(dst, id)
		}
	}
	if r.filter != nil || r.Filter != nil {
		f := r.filter
		if f == nil {
			var err error
			if f, err = DecodeFilter(r.Filter); err != nil {
				return nil, err
			}
		}
		dst = binary.AppendUvarint(dst, rqFilter)
		var err error
		if dst, err = appendFilter(dst, f); err != nil {
			return nil, err
		}
	}
	if r.Limit != 0 {
		dst = binary.AppendUvarint(dst, rqLimit)
		dst = binary.AppendVarint(dst, int64(r.Limit))
	}
	if len(r.Muts) > 0 {
		dst = binary.AppendUvarint(dst, rqMuts)
		dst = binary.AppendUvarint(dst, uint64(len(r.Muts)))
		for i := range r.Muts {
			var err error
			if dst, err = appendMutation(dst, &r.Muts[i]); err != nil {
				return nil, err
			}
		}
	}
	if r.AfterSecs != 0 {
		dst = binary.AppendUvarint(dst, rqAfterSecs)
		dst = binary.AppendVarint(dst, r.AfterSecs)
	}
	if r.AfterInc != 0 {
		dst = binary.AppendUvarint(dst, rqAfterInc)
		dst = binary.AppendUvarint(dst, uint64(r.AfterInc))
	}
	if r.Source != "" {
		dst = binary.AppendUvarint(dst, rqSource)
		dst = appendString(dst, r.Source)
	}
	if r.Snapshot != nil {
		body, err := json.Marshal(r.Snapshot)
		if err != nil {
			return nil, fmt.Errorf("wire: marshal snapshot: %w", err)
		}
		dst = binary.AppendUvarint(dst, rqSnapshot)
		dst = binary.AppendUvarint(dst, uint64(len(body)))
		dst = append(dst, body...)
	}
	if r.Trace != nil && r.Trace.TraceID != 0 {
		dst = binary.AppendUvarint(dst, rqTrace)
		dst = appendTraceContext(dst, r.Trace)
	}
	if r.BoundSecs != 0 {
		dst = binary.AppendUvarint(dst, rqBound)
		dst = binary.AppendVarint(dst, r.BoundSecs)
	}
	if len(r.Spans) > 0 {
		body, err := json.Marshal(r.Spans)
		if err != nil {
			return nil, fmt.Errorf("wire: marshal spans: %w", err)
		}
		dst = binary.AppendUvarint(dst, rqSpans)
		dst = binary.AppendUvarint(dst, uint64(len(body)))
		dst = append(dst, body...)
	}
	if r.ReadConcern != 0 {
		dst = binary.AppendUvarint(dst, rqReadConcern)
		dst = binary.AppendVarint(dst, int64(r.ReadConcern))
	}
	if r.WantFresh {
		dst = binary.AppendUvarint(dst, rqWantFresh)
		dst = append(dst, 1)
	}
	return dst, nil
}

// decodeRequest parses a binary body into r. The typed filter and
// mutation doc fields are filled directly; the JSON map forms stay nil.
func decodeRequest(b []byte, r *Request) error {
	var err error
	for len(b) > 0 {
		var tag uint64
		if tag, b, err = getUvarint(b); err != nil {
			return err
		}
		switch tag {
		case rqID:
			r.ID, b, err = getUvarint(b)
		case rqOpCode:
			var code byte
			if code, b, err = getByte(b); err == nil {
				name, ok := opNames[code]
				if !ok {
					return fmt.Errorf("%w: op code %d", errBadFrame, code)
				}
				r.Op = name
			}
		case rqOpName:
			r.Op, b, err = getString(b)
		case rqNode:
			var v int64
			if v, b, err = getVarint(b); err == nil {
				r.Node = int(v)
			}
		case rqCollection:
			r.Collection, b, err = getString(b)
		case rqDocID:
			r.DocID, b, err = getString(b)
		case rqIDs:
			var n uint64
			if n, b, err = getUvarint(b); err != nil {
				return err
			}
			if n > uint64(len(b)) { // each id costs ≥1 byte
				return errBadFrame
			}
			ids := make([]string, 0, n)
			for i := uint64(0); i < n; i++ {
				var id string
				if id, b, err = getString(b); err != nil {
					return err
				}
				ids = append(ids, id)
			}
			r.IDs = ids
		case rqFilter:
			r.filter, b, err = decodeFilter(b)
		case rqLimit:
			var v int64
			if v, b, err = getVarint(b); err == nil {
				r.Limit = int(v)
			}
		case rqMuts:
			var n uint64
			if n, b, err = getUvarint(b); err != nil {
				return err
			}
			if n > uint64(len(b))/4 { // kind + three length bytes minimum
				return errBadFrame
			}
			muts := make([]Mutation, 0, n)
			for i := uint64(0); i < n; i++ {
				var m Mutation
				if b, err = decodeMutation(b, &m); err != nil {
					return err
				}
				muts = append(muts, m)
			}
			r.Muts = muts
		case rqAfterSecs:
			r.AfterSecs, b, err = getVarint(b)
		case rqAfterInc:
			var v uint64
			if v, b, err = getUvarint(b); err == nil {
				r.AfterInc = uint32(v)
			}
		case rqSource:
			r.Source, b, err = getString(b)
		case rqSnapshot:
			var body []byte
			if body, b, err = getBytes(b); err != nil {
				return err
			}
			snap := &obs.Snapshot{}
			if err = json.Unmarshal(body, snap); err != nil {
				return fmt.Errorf("wire: unmarshal snapshot: %w", err)
			}
			r.Snapshot = snap
		case rqTrace:
			r.Trace, b, err = decodeTraceContext(b)
		case rqBound:
			r.BoundSecs, b, err = getVarint(b)
		case rqSpans:
			var body []byte
			if body, b, err = getBytes(b); err != nil {
				return err
			}
			var spans []trace.Span
			if err = json.Unmarshal(body, &spans); err != nil {
				return fmt.Errorf("wire: unmarshal spans: %w", err)
			}
			r.Spans = spans
		case rqReadConcern:
			var v int64
			if v, b, err = getVarint(b); err == nil {
				r.ReadConcern = int(v)
			}
		case rqWantFresh:
			var v byte
			if v, b, err = getByte(b); err == nil {
				if v != 1 {
					return fmt.Errorf("%w: want_fresh flag %d", errBadFrame, v)
				}
				r.WantFresh = true
			}
		default:
			return fmt.Errorf("%w: request tag %d", errBadFrame, tag)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// twoSidedBit marks a two-sided range condition in the filter op byte:
// when set, a second op byte and bound value follow the first value.
const twoSidedBit = 0x80

// appendFilter encodes a storage.Filter: uvarint condition count, then
// per condition the field name, a 1-byte op (high bit = two-sided),
// the value (BSON-lite, nil encoded explicitly), the optional second
// op byte + bound, and a uvarint-counted value list. Values are
// normalized defensively so hand-built filters with plain ints still
// encode.
func appendFilter(dst []byte, f storage.Filter) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(f)))
	for field, c := range f {
		dst = appendString(dst, field)
		opByte := byte(c.Op)
		if c.Op2 != 0 {
			opByte |= twoSidedBit
		}
		dst = append(dst, opByte)
		v, err := storage.Normalize(c.Value)
		if err != nil {
			return nil, err
		}
		dst = storage.AppendValue(dst, v)
		if c.Op2 != 0 {
			dst = append(dst, byte(c.Op2))
			if v, err = storage.Normalize(c.Value2); err != nil {
				return nil, err
			}
			dst = storage.AppendValue(dst, v)
		}
		dst = binary.AppendUvarint(dst, uint64(len(c.Values)))
		for _, e := range c.Values {
			if v, err = storage.Normalize(e); err != nil {
				return nil, err
			}
			dst = storage.AppendValue(dst, v)
		}
	}
	return dst, nil
}

// decodeFilter is the inverse of appendFilter. Decoded conditions are
// already canonical — the server plans and matches on them without
// re-normalizing.
func decodeFilter(b []byte) (storage.Filter, []byte, error) {
	n, b, err := getUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b))/3 { // field byte + op byte + value tag minimum
		return nil, nil, errBadFrame
	}
	f := make(storage.Filter, n)
	for i := uint64(0); i < n; i++ {
		var field string
		if field, b, err = getString(b); err != nil {
			return nil, nil, err
		}
		var op byte
		if op, b, err = getByte(b); err != nil {
			return nil, nil, err
		}
		twoSided := op&twoSidedBit != 0
		op &^= twoSidedBit
		if storage.Op(op) > storage.OpExists {
			return nil, nil, fmt.Errorf("%w: filter op %d", errBadFrame, op)
		}
		var c storage.Cond
		c.Op = storage.Op(op)
		if c.Value, b, err = storage.DecodeValue(b); err != nil {
			return nil, nil, errBadFrame
		}
		if twoSided {
			var op2 byte
			if op2, b, err = getByte(b); err != nil {
				return nil, nil, err
			}
			if op2 == 0 || storage.Op(op2) > storage.OpExists {
				return nil, nil, fmt.Errorf("%w: filter op2 %d", errBadFrame, op2)
			}
			c.Op2 = storage.Op(op2)
			if c.Value2, b, err = storage.DecodeValue(b); err != nil {
				return nil, nil, errBadFrame
			}
		}
		var nv uint64
		if nv, b, err = getUvarint(b); err != nil {
			return nil, nil, err
		}
		if nv > uint64(len(b)) { // each value costs ≥1 byte
			return nil, nil, errBadFrame
		}
		if nv > 0 {
			c.Values = make([]any, 0, nv)
			for j := uint64(0); j < nv; j++ {
				var v any
				if v, b, err = storage.DecodeValue(b); err != nil {
					return nil, nil, errBadFrame
				}
				c.Values = append(c.Values, v)
			}
		}
		f[field] = c
	}
	return f, b, nil
}

// appendMutation encodes one buffered write: a kind byte (or 0 + name
// for unknown kinds, which the server rejects itself), collection,
// doc id, and an optional BSON-lite document.
func appendMutation(dst []byte, m *Mutation) ([]byte, error) {
	if code, ok := kindCodes[m.Kind]; ok {
		dst = append(dst, code)
	} else {
		dst = append(dst, 0)
		dst = appendString(dst, m.Kind)
	}
	dst = appendString(dst, m.Collection)
	dst = appendString(dst, m.DocID)
	doc, err := m.document()
	if err != nil {
		return nil, err
	}
	if doc == nil {
		return append(dst, 0), nil
	}
	dst = append(dst, 1)
	return storage.AppendDoc(dst, doc), nil
}

func decodeMutation(b []byte, m *Mutation) ([]byte, error) {
	code, b, err := getByte(b)
	if err != nil {
		return nil, err
	}
	if code == 0 {
		if m.Kind, b, err = getString(b); err != nil {
			return nil, err
		}
	} else {
		name, ok := kindNames[code]
		if !ok {
			return nil, fmt.Errorf("%w: mutation kind %d", errBadFrame, code)
		}
		m.Kind = name
	}
	if m.Collection, b, err = getString(b); err != nil {
		return nil, err
	}
	if m.DocID, b, err = getString(b); err != nil {
		return nil, err
	}
	var hasDoc byte
	if hasDoc, b, err = getByte(b); err != nil {
		return nil, err
	}
	if hasDoc == 1 {
		if m.doc, b, err = storage.DecodeDocPrefix(b); err != nil {
			return nil, errBadFrame
		}
	} else if hasDoc != 0 {
		return nil, errBadFrame
	}
	return b, nil
}

// encodeResponse appends r's binary body to dst. Document payloads
// prefer the raw cached encodings (rawDoc/rawDocs) — spliced in with a
// copy but no re-encoding — then the typed documents, then the JSON
// map forms (defensive; binary dispatch never builds them).
func encodeResponse(dst []byte, r *Response) ([]byte, error) {
	if r.ID != 0 {
		dst = binary.AppendUvarint(dst, rsID)
		dst = binary.AppendUvarint(dst, r.ID)
	}
	if r.Err != "" {
		dst = binary.AppendUvarint(dst, rsErr)
		dst = appendString(dst, r.Err)
	}
	if r.Code != 0 {
		dst = binary.AppendUvarint(dst, rsCode)
		dst = binary.AppendVarint(dst, int64(r.Code))
	}
	if r.Found {
		dst = binary.AppendUvarint(dst, rsFound)
		dst = append(dst, 1)
	}
	var err error
	switch {
	case r.rawDoc != nil:
		dst = binary.AppendUvarint(dst, rsDoc)
		dst = append(dst, r.rawDoc...)
	case r.doc != nil:
		dst = binary.AppendUvarint(dst, rsDoc)
		dst = storage.AppendDoc(dst, r.doc)
	case r.Doc != nil:
		var d storage.Document
		if d, err = jsonToDoc(r.Doc); err != nil {
			return nil, err
		}
		dst = binary.AppendUvarint(dst, rsDoc)
		dst = storage.AppendDoc(dst, d)
	}
	switch {
	case r.rawDocs != nil:
		dst = binary.AppendUvarint(dst, rsDocs)
		dst = binary.AppendUvarint(dst, uint64(len(r.rawDocs)))
		for _, raw := range r.rawDocs {
			dst = append(dst, raw...)
		}
	case r.docs != nil:
		dst = binary.AppendUvarint(dst, rsDocs)
		dst = binary.AppendUvarint(dst, uint64(len(r.docs)))
		for _, d := range r.docs {
			dst = storage.AppendDoc(dst, d)
		}
	case r.Docs != nil:
		dst = binary.AppendUvarint(dst, rsDocs)
		dst = binary.AppendUvarint(dst, uint64(len(r.Docs)))
		for _, m := range r.Docs {
			var d storage.Document
			if d, err = jsonToDoc(m); err != nil {
				return nil, err
			}
			dst = storage.AppendDoc(dst, d)
		}
	}
	if r.Count != 0 {
		dst = binary.AppendUvarint(dst, rsCount)
		dst = binary.AppendVarint(dst, int64(r.Count))
	}
	if r.Topo != nil {
		dst = binary.AppendUvarint(dst, rsTopo)
		dst = binary.AppendVarint(dst, int64(r.Topo.Primary))
		dst = binary.AppendUvarint(dst, uint64(len(r.Topo.Zones)))
		for _, z := range r.Topo.Zones {
			dst = appendString(dst, z)
		}
	}
	if r.Status != nil {
		dst = binary.AppendUvarint(dst, rsStatus)
		dst = binary.AppendVarint(dst, int64(r.Status.From))
		dst = binary.AppendVarint(dst, int64(r.Status.Primary))
		dst = binary.AppendUvarint(dst, r.Status.LeaseEpoch)
		dst = binary.AppendUvarint(dst, uint64(len(r.Status.Members)))
		for _, m := range r.Status.Members {
			dst = binary.AppendVarint(dst, int64(m.ID))
			// One flag byte per member: bit 0 primary, bit 1 leased.
			var flags byte
			if m.Primary {
				flags |= 1
			}
			if m.Leased {
				flags |= 2
			}
			dst = append(dst, flags)
			dst = binary.AppendVarint(dst, m.Secs)
			dst = binary.AppendUvarint(dst, uint64(m.Inc))
		}
	}
	if r.OpSecs != 0 {
		dst = binary.AppendUvarint(dst, rsOpSecs)
		dst = binary.AppendVarint(dst, r.OpSecs)
	}
	if r.OpInc != 0 {
		dst = binary.AppendUvarint(dst, rsOpInc)
		dst = binary.AppendUvarint(dst, uint64(r.OpInc))
	}
	if r.Metrics != nil {
		body, merr := json.Marshal(r.Metrics)
		if merr != nil {
			return nil, fmt.Errorf("wire: marshal metrics: %w", merr)
		}
		dst = binary.AppendUvarint(dst, rsMetrics)
		dst = binary.AppendUvarint(dst, uint64(len(body)))
		dst = append(dst, body...)
	}
	// Spans and Ops ride as JSON inside the binary field, like metrics
	// snapshots: trace export is rare and explicitly a JSON surface.
	if len(r.Spans) > 0 {
		body, merr := json.Marshal(r.Spans)
		if merr != nil {
			return nil, fmt.Errorf("wire: marshal spans: %w", merr)
		}
		dst = binary.AppendUvarint(dst, rsSpans)
		dst = binary.AppendUvarint(dst, uint64(len(body)))
		dst = append(dst, body...)
	}
	if len(r.Ops) > 0 {
		body, merr := json.Marshal(r.Ops)
		if merr != nil {
			return nil, fmt.Errorf("wire: marshal ops: %w", merr)
		}
		dst = binary.AppendUvarint(dst, rsOps)
		dst = binary.AppendUvarint(dst, uint64(len(body)))
		dst = append(dst, body...)
	}
	if len(r.Shards) > 0 {
		dst = binary.AppendUvarint(dst, rsShards)
		dst = binary.AppendUvarint(dst, uint64(len(r.Shards)))
		for _, sh := range r.Shards {
			dst = binary.AppendVarint(dst, int64(sh.ID))
			dst = appendString(dst, sh.Addr)
		}
	}
	if r.Chunks != nil {
		dst = binary.AppendUvarint(dst, rsChunks)
		dst = binary.AppendUvarint(dst, r.Chunks.Version)
		dst = binary.AppendUvarint(dst, uint64(len(r.Chunks.Chunks)))
		for _, ck := range r.Chunks.Chunks {
			dst = appendString(dst, ck.Min)
			dst = appendString(dst, ck.Max)
			dst = binary.AppendVarint(dst, int64(ck.Shard))
		}
	}
	if len(r.Entries) > 0 {
		dst = binary.AppendUvarint(dst, rsEntries)
		dst = binary.AppendUvarint(dst, uint64(len(r.Entries)))
		for i := range r.Entries {
			e := &r.Entries[i]
			dst = binary.AppendVarint(dst, e.Secs)
			dst = binary.AppendUvarint(dst, uint64(e.Inc))
			if code, ok := kindCodes[e.Kind]; ok {
				dst = append(dst, code)
			} else {
				dst = append(dst, entryKindNoop)
			}
			dst = appendString(dst, e.Collection)
			dst = appendString(dst, e.DocID)
			doc, derr := e.document()
			if derr != nil {
				return nil, derr
			}
			if doc == nil {
				dst = append(dst, 0)
			} else {
				dst = append(dst, 1)
				dst = storage.AppendDoc(dst, doc)
			}
		}
	}
	if r.TruncSecs != 0 {
		dst = binary.AppendUvarint(dst, rsTruncS)
		dst = binary.AppendVarint(dst, r.TruncSecs)
	}
	if r.TruncInc != 0 {
		dst = binary.AppendUvarint(dst, rsTruncI)
		dst = binary.AppendUvarint(dst, uint64(r.TruncInc))
	}
	if r.StaleSecs != 0 {
		dst = binary.AppendUvarint(dst, rsStaleSecs)
		dst = binary.AppendVarint(dst, r.StaleSecs)
	}
	return dst, nil
}

// decodeResponse parses a binary body into r, filling the typed
// document fields (doc/docs); the JSON map forms stay nil and callers
// go through document()/documents().
func decodeResponse(b []byte, r *Response) error {
	var err error
	for len(b) > 0 {
		var tag uint64
		if tag, b, err = getUvarint(b); err != nil {
			return err
		}
		switch tag {
		case rsID:
			r.ID, b, err = getUvarint(b)
		case rsErr:
			r.Err, b, err = getString(b)
		case rsFound:
			var v byte
			if v, b, err = getByte(b); err == nil {
				r.Found = v != 0
			}
		case rsDoc:
			if r.doc, b, err = storage.DecodeDocPrefix(b); err != nil {
				return errBadFrame
			}
		case rsDocs:
			var n uint64
			if n, b, err = getUvarint(b); err != nil {
				return err
			}
			if n > uint64(len(b)) { // each doc costs ≥1 byte
				return errBadFrame
			}
			docs := make([]storage.Document, 0, n)
			for i := uint64(0); i < n; i++ {
				var d storage.Document
				if d, b, err = storage.DecodeDocPrefix(b); err != nil {
					return errBadFrame
				}
				docs = append(docs, d)
			}
			r.docs = docs
		case rsCount:
			var v int64
			if v, b, err = getVarint(b); err == nil {
				r.Count = int(v)
			}
		case rsTopo:
			topo := &Topology{}
			var v int64
			if v, b, err = getVarint(b); err != nil {
				return err
			}
			topo.Primary = int(v)
			var n uint64
			if n, b, err = getUvarint(b); err != nil {
				return err
			}
			if n > uint64(len(b))+1 { // zones may be empty strings
				return errBadFrame
			}
			topo.Zones = make([]string, 0, n)
			for i := uint64(0); i < n; i++ {
				var z string
				if z, b, err = getString(b); err != nil {
					return err
				}
				topo.Zones = append(topo.Zones, z)
			}
			r.Topo = topo
		case rsStatus:
			st := &StatusBody{}
			var v int64
			if v, b, err = getVarint(b); err != nil {
				return err
			}
			st.From = int(v)
			if v, b, err = getVarint(b); err != nil {
				return err
			}
			st.Primary = int(v)
			if st.LeaseEpoch, b, err = getUvarint(b); err != nil {
				return err
			}
			var n uint64
			if n, b, err = getUvarint(b); err != nil {
				return err
			}
			if n > uint64(len(b))/4 { // id + flags + secs + inc minimum
				return errBadFrame
			}
			st.Members = make([]Member, 0, n)
			for i := uint64(0); i < n; i++ {
				var m Member
				if v, b, err = getVarint(b); err != nil {
					return err
				}
				m.ID = int(v)
				var flags byte
				if flags, b, err = getByte(b); err != nil {
					return err
				}
				if flags > 3 {
					return fmt.Errorf("%w: member flags %d", errBadFrame, flags)
				}
				m.Primary = flags&1 != 0
				m.Leased = flags&2 != 0
				if m.Secs, b, err = getVarint(b); err != nil {
					return err
				}
				var inc uint64
				if inc, b, err = getUvarint(b); err != nil {
					return err
				}
				m.Inc = uint32(inc)
				st.Members = append(st.Members, m)
			}
			r.Status = st
		case rsCode:
			var v int64
			if v, b, err = getVarint(b); err == nil {
				r.Code = int(v)
			}
		case rsOpSecs:
			r.OpSecs, b, err = getVarint(b)
		case rsOpInc:
			var v uint64
			if v, b, err = getUvarint(b); err == nil {
				r.OpInc = uint32(v)
			}
		case rsMetrics:
			var body []byte
			if body, b, err = getBytes(b); err != nil {
				return err
			}
			snap := &obs.Snapshot{}
			if err = json.Unmarshal(body, snap); err != nil {
				return fmt.Errorf("wire: unmarshal metrics: %w", err)
			}
			r.Metrics = snap
		case rsSpans:
			var body []byte
			if body, b, err = getBytes(b); err != nil {
				return err
			}
			var spans []trace.Span
			if err = json.Unmarshal(body, &spans); err != nil {
				return fmt.Errorf("wire: unmarshal spans: %w", err)
			}
			r.Spans = spans
		case rsOps:
			var body []byte
			if body, b, err = getBytes(b); err != nil {
				return err
			}
			var ops []trace.OpInfo
			if err = json.Unmarshal(body, &ops); err != nil {
				return fmt.Errorf("wire: unmarshal ops: %w", err)
			}
			r.Ops = ops
		case rsShards:
			var n uint64
			if n, b, err = getUvarint(b); err != nil {
				return err
			}
			if n > uint64(len(b))/2 { // id byte + addr length byte minimum
				return errBadFrame
			}
			shards := make([]ShardInfo, 0, n)
			for i := uint64(0); i < n; i++ {
				var sh ShardInfo
				var v int64
				if v, b, err = getVarint(b); err != nil {
					return err
				}
				sh.ID = int(v)
				if sh.Addr, b, err = getString(b); err != nil {
					return err
				}
				shards = append(shards, sh)
			}
			r.Shards = shards
		case rsChunks:
			cm := &ChunkMapBody{}
			if cm.Version, b, err = getUvarint(b); err != nil {
				return err
			}
			var n uint64
			if n, b, err = getUvarint(b); err != nil {
				return err
			}
			if n > uint64(len(b))/3 { // two length bytes + shard byte minimum
				return errBadFrame
			}
			cm.Chunks = make([]ChunkInfo, 0, n)
			for i := uint64(0); i < n; i++ {
				var ck ChunkInfo
				if ck.Min, b, err = getString(b); err != nil {
					return err
				}
				if ck.Max, b, err = getString(b); err != nil {
					return err
				}
				var v int64
				if v, b, err = getVarint(b); err != nil {
					return err
				}
				ck.Shard = int(v)
				cm.Chunks = append(cm.Chunks, ck)
			}
			r.Chunks = cm
		case rsEntries:
			var n uint64
			if n, b, err = getUvarint(b); err != nil {
				return err
			}
			if n > uint64(len(b))/5 { // secs + inc + kind + 2 length bytes minimum
				return errBadFrame
			}
			entries := make([]EntryBody, 0, n)
			for i := uint64(0); i < n; i++ {
				var e EntryBody
				if e.Secs, b, err = getVarint(b); err != nil {
					return err
				}
				var inc uint64
				if inc, b, err = getUvarint(b); err != nil {
					return err
				}
				e.Inc = uint32(inc)
				var code byte
				if code, b, err = getByte(b); err != nil {
					return err
				}
				if code == entryKindNoop {
					e.Kind = "noop"
				} else if name, ok := kindNames[code]; ok {
					e.Kind = name
				} else {
					return fmt.Errorf("%w: entry kind %d", errBadFrame, code)
				}
				if e.Collection, b, err = getString(b); err != nil {
					return err
				}
				if e.DocID, b, err = getString(b); err != nil {
					return err
				}
				var hasDoc byte
				if hasDoc, b, err = getByte(b); err != nil {
					return err
				}
				if hasDoc == 1 {
					if e.doc, b, err = storage.DecodeDocPrefix(b); err != nil {
						return errBadFrame
					}
				} else if hasDoc != 0 {
					return errBadFrame
				}
				entries = append(entries, e)
			}
			r.Entries = entries
		case rsTruncS:
			r.TruncSecs, b, err = getVarint(b)
		case rsTruncI:
			var v uint64
			if v, b, err = getUvarint(b); err == nil {
				r.TruncInc = uint32(v)
			}
		case rsStaleSecs:
			r.StaleSecs, b, err = getVarint(b)
		default:
			return fmt.Errorf("%w: response tag %d", errBadFrame, tag)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
