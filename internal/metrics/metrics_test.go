package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Percentile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all zero")
	}
	h.Record(10 * time.Millisecond)
	h.Record(20 * time.Millisecond)
	h.Record(30 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("Count=%d", h.Count())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 30*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if m := h.Mean(); m != 20*time.Millisecond {
		t.Fatalf("Mean=%v", m)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5 * time.Millisecond)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatal("negative not clamped to 0")
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	var exact []time.Duration
	for i := 0; i < 100000; i++ {
		v := time.Duration(rng.Intn(100_000_000)) // up to 100ms
		h.Record(v)
		exact = append(exact, v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.8, 0.99} {
		want := exact[int(q*float64(len(exact)))-1]
		got := h.Percentile(q)
		relErr := float64(got-want) / float64(want)
		if relErr < -0.001 || relErr > 0.04 {
			t.Errorf("P%.0f: got %v want %v (rel err %.3f)", q*100, got, want, relErr)
		}
	}
}

func TestHistogramPercentileNeverBelowRecordedShare(t *testing.T) {
	// Property: Percentile(q) >= the exact q-quantile (bucket upper
	// bounds round up).
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		vals := make([]time.Duration, len(raw))
		for i, r := range raw {
			vals[i] = time.Duration(r)
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.5, 0.8, 1.0} {
			exact := PercentileOf(vals, q)
			if h.Percentile(q) < exact {
				return false
			}
		}
		return h.Percentile(1.0) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 50; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
	}
	for i := 51; i <= 100; i++ {
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("Count=%d", a.Count())
	}
	if a.Max() != 100*time.Millisecond || a.Min() != time.Millisecond {
		t.Fatalf("min/max %v/%v", a.Min(), a.Max())
	}
	p50 := a.Percentile(0.5)
	if p50 < 49*time.Millisecond || p50 > 53*time.Millisecond {
		t.Fatalf("P50=%v", p50)
	}
	a.Reset()
	if a.Count() != 0 || a.Percentile(0.5) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestPercentileOfExact(t *testing.T) {
	s := []time.Duration{5, 1, 4, 2, 3}
	if got := PercentileOf(s, 0.5); got != 3 {
		t.Fatalf("P50=%v", got)
	}
	if got := PercentileOf(s, 0.8); got != 4 {
		t.Fatalf("P80=%v", got)
	}
	if got := PercentileOf(s, 1.0); got != 5 {
		t.Fatalf("P100=%v", got)
	}
	if got := PercentileOf(s, 0); got != 1 {
		t.Fatalf("P0=%v", got)
	}
	if got := PercentileOf(nil, 0.5); got != 0 {
		t.Fatalf("empty=%v", got)
	}
	// Input must not be mutated.
	if s[0] != 5 {
		t.Fatal("PercentileOf sorted the caller's slice")
	}
}

func TestSeriesBucketsAndSnapshot(t *testing.T) {
	s := NewSeries(10 * time.Second)
	s.Observe(1*time.Second, 5*time.Millisecond)
	s.Observe(9*time.Second, 15*time.Millisecond)
	s.Observe(25*time.Second, 30*time.Millisecond)
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("%d buckets", len(snap))
	}
	if snap[0].Count != 2 || snap[1].Count != 0 || snap[2].Count != 1 {
		t.Fatalf("counts %v %v %v", snap[0].Count, snap[1].Count, snap[2].Count)
	}
	if snap[0].Throughput != 0.2 {
		t.Fatalf("throughput %v", snap[0].Throughput)
	}
	if snap[2].Start != 20*time.Second {
		t.Fatalf("start %v", snap[2].Start)
	}
}

func TestSeriesAggregateExcludesWarmup(t *testing.T) {
	s := NewSeries(time.Second)
	for i := 0; i < 20; i++ {
		s.Observe(time.Duration(i)*time.Second, time.Duration(i+1)*time.Millisecond)
	}
	agg := s.Aggregate(10 * time.Second)
	if agg.Count() != 10 {
		t.Fatalf("Count=%d", agg.Count())
	}
	if agg.Min() < 11*time.Millisecond {
		t.Fatalf("warm-up observation leaked in: min=%v", agg.Min())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc(3)
	c.Inc(4)
	if c.Total() != 7 {
		t.Fatalf("Total=%d", c.Total())
	}
}

// TestCounterConcurrent verifies Inc is safe from concurrently running
// procs (run under -race).
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc(1)
			}
		}()
	}
	wg.Wait()
	if c.Total() != 8000 {
		t.Fatalf("Total=%d, want 8000", c.Total())
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(1500 * time.Microsecond); got != "1.50ms" {
		t.Fatalf("got %q", got)
	}
}
