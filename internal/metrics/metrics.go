// Package metrics provides the measurement machinery used by the
// experiment harness and the Read Balancer: log-bucketed latency
// histograms with percentile queries, time-bucketed series (throughput
// + latency percentiles per window), and exact small-sample percentile
// helpers matching the paper's P50/P80 reporting.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// subBuckets is the linear resolution inside each power-of-two bucket;
// 64 gives ~1.6% relative error, ample for latency reporting.
const subBuckets = 64

// Histogram is a log-bucketed histogram of durations, HDR-style:
// geometric octaves each split into linear sub-buckets. The zero value
// is not usable; call NewHistogram.
type Histogram struct {
	counts []uint64
	total  uint64
	min    time.Duration
	max    time.Duration
	sum    time.Duration
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, 64*subBuckets), min: math.MaxInt64}
}

func bucketIndex(v time.Duration) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // position of the top bit
	shift := exp - (bits.Len64(subBuckets) - 1)
	sub := int(u >> uint(shift) & (subBuckets - 1))
	octave := shift + 1
	return octave*subBuckets + sub
}

func bucketUpperBound(idx int) time.Duration {
	octave := idx / subBuckets
	sub := idx % subBuckets
	if octave == 0 {
		return time.Duration(sub)
	}
	shift := octave - 1
	base := uint64(subBuckets) << uint(shift)
	return time.Duration(base + uint64(sub+1)<<uint(shift) - 1)
}

// Record adds one observation.
func (h *Histogram) Record(v time.Duration) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all observations; Mean their average.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.min
}
func (h *Histogram) Max() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the value at or below which q (0..1] of
// observations fall, to bucket resolution. Returns 0 when empty.
func (h *Histogram) Percentile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			ub := bucketUpperBound(i)
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// Merge adds all of other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// PercentileOf computes an exact percentile of a sample, matching the
// paper's "P50 of the recorded latency list" usage. q in (0,1].
func PercentileOf(sample []time.Duration, q float64) time.Duration {
	if len(sample) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// WindowStat summarizes one time bucket of a Series.
type WindowStat struct {
	Start      time.Duration
	Count      uint64
	Throughput float64 // per second
	P50        time.Duration
	P80        time.Duration
	P99        time.Duration
	Mean       time.Duration
}

// Series aggregates observations into fixed-width time buckets —
// the "per 10-second period" reporting used throughout the paper's
// figures.
type Series struct {
	width   time.Duration
	buckets []*Histogram
}

// NewSeries creates a series with the given bucket width.
func NewSeries(width time.Duration) *Series {
	if width <= 0 {
		panic("metrics: series width must be positive")
	}
	return &Series{width: width}
}

// Observe records an observation that completed at time `at`.
func (s *Series) Observe(at time.Duration, v time.Duration) {
	idx := int(at / s.width)
	if idx < 0 {
		idx = 0
	}
	for len(s.buckets) <= idx {
		s.buckets = append(s.buckets, nil)
	}
	if s.buckets[idx] == nil {
		s.buckets[idx] = NewHistogram()
	}
	s.buckets[idx].Record(v)
}

// Width returns the bucket width.
func (s *Series) Width() time.Duration { return s.width }

// Snapshot returns one WindowStat per bucket from the start through
// the last observed bucket; empty buckets have zero counts.
func (s *Series) Snapshot() []WindowStat {
	out := make([]WindowStat, len(s.buckets))
	for i, h := range s.buckets {
		w := WindowStat{Start: time.Duration(i) * s.width}
		if h != nil {
			w.Count = h.Count()
			w.Throughput = float64(h.Count()) / s.width.Seconds()
			w.P50 = h.Percentile(0.50)
			w.P80 = h.Percentile(0.80)
			w.P99 = h.Percentile(0.99)
			w.Mean = h.Mean()
		}
		out[i] = w
	}
	return out
}

// Aggregate merges all buckets whose start time is >= from into a
// single histogram — used for steady-state numbers that exclude
// warm-up.
func (s *Series) Aggregate(from time.Duration) *Histogram {
	agg := NewHistogram()
	for i, h := range s.buckets {
		if h == nil || time.Duration(i)*s.width < from {
			continue
		}
		agg.Merge(h)
	}
	return agg
}

// Counter is a monotone event counter, safe for concurrent use: it is
// incremented from concurrently running procs under the real-time
// environment. For windowed rates and labeled counters use the obs
// package's registry instruments.
type Counter struct {
	total atomic.Uint64
}

// Inc adds n events.
func (c *Counter) Inc(n uint64) { c.total.Add(n) }

// Total returns the count so far.
func (c *Counter) Total() uint64 { return c.total.Load() }

// FormatDuration renders durations the way the experiment tables print
// them: milliseconds with two decimals.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}
