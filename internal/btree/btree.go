// Package btree implements an in-memory B+ tree: an ordered map from
// keys to values with efficient point lookups, ordered insertion,
// deletion, and range scans. It backs the document store's primary and
// secondary indexes and the oplog's timestamp index.
//
// The tree is generic over the key type; ordering is supplied by a
// comparison function with the usual cmp semantics (negative, zero,
// positive). It is not safe for concurrent use; callers synchronize.
package btree

// degree is the minimum number of children of an internal node; nodes
// hold between degree-1 and 2*degree-1 keys.
const degree = 16

const maxKeys = 2*degree - 1
const minKeys = degree - 1

// Tree is a B+ tree mapping keys of type K to values of type V.
// All key/value pairs live in leaves; internal nodes hold separators.
type Tree[K, V any] struct {
	cmp  func(a, b K) int
	root *node[K, V]
	size int
}

type node[K, V any] struct {
	keys     []K
	vals     []V           // leaf only
	children []*node[K, V] // internal only
	next     *node[K, V]   // leaf-level sibling link for scans
}

func (n *node[K, V]) leaf() bool { return n.children == nil }

// New creates an empty tree with the given comparison function.
func New[K, V any](cmp func(a, b K) int) *Tree[K, V] {
	return &Tree[K, V]{cmp: cmp, root: &node[K, V]{}}
}

// Len returns the number of key/value pairs stored.
func (t *Tree[K, V]) Len() int { return t.size }

// search returns the index of the first key in n.keys >= k, and
// whether it equals k.
func (t *Tree[K, V]) search(n *node[K, V], k K) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cmp(n.keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found := lo < len(n.keys) && t.cmp(n.keys[lo], k) == 0
	return lo, found
}

// Get returns the value stored for k.
func (t *Tree[K, V]) Get(k K) (V, bool) {
	n := t.root
	for !n.leaf() {
		i, found := t.search(n, k)
		if found {
			i++ // separators equal to k route right
		}
		n = n.children[i]
	}
	i, found := t.search(n, k)
	if !found {
		var zero V
		return zero, false
	}
	return n.vals[i], true
}

// Set inserts or replaces the value for k. It reports whether the key
// was newly inserted (false means replaced).
func (t *Tree[K, V]) Set(k K, v V) bool {
	if len(t.root.keys) == maxKeys {
		old := t.root
		t.root = &node[K, V]{children: []*node[K, V]{old}}
		t.splitChild(t.root, 0)
	}
	inserted := t.insertNonFull(t.root, k, v)
	if inserted {
		t.size++
	}
	return inserted
}

// splitChild splits the full child at index i of parent, lifting the
// median (internal child) or copying the split key (leaf child, B+
// style) into the parent.
func (t *Tree[K, V]) splitChild(parent *node[K, V], i int) {
	child := parent.children[i]
	var sep K
	right := &node[K, V]{}
	if child.leaf() {
		mid := len(child.keys) / 2
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid:]...)
		right.vals = append(right.vals, child.vals[mid:]...)
		child.keys = child.keys[:mid:mid]
		child.vals = child.vals[:mid:mid]
		right.next = child.next
		child.next = right
	} else {
		mid := len(child.keys) / 2
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid:mid]
		child.children = child.children[: mid+1 : mid+1]
	}
	parent.keys = append(parent.keys, sep)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = sep
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *Tree[K, V]) insertNonFull(n *node[K, V], k K, v V) bool {
	for {
		if n.leaf() {
			i, found := t.search(n, k)
			if found {
				n.vals[i] = v
				return false
			}
			var zk K
			var zv V
			n.keys = append(n.keys, zk)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = k
			n.vals = append(n.vals, zv)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = v
			return true
		}
		i, found := t.search(n, k)
		if found {
			i++
		}
		if len(n.children[i].keys) == maxKeys {
			t.splitChild(n, i)
			// After the split the separator at i decides the side.
			if t.cmp(k, n.keys[i]) >= 0 {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes k and reports whether it was present.
func (t *Tree[K, V]) Delete(k K) bool {
	deleted := t.delete(t.root, k)
	if deleted {
		t.size--
	}
	if !t.root.leaf() && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	return deleted
}

func (t *Tree[K, V]) delete(n *node[K, V], k K) bool {
	if n.leaf() {
		i, found := t.search(n, k)
		if !found {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	i, found := t.search(n, k)
	if found {
		i++
	}
	child := n.children[i]
	if len(child.keys) <= minKeys {
		i = t.fill(n, i)
		child = n.children[i]
	}
	return t.delete(child, k)
}

// fill ensures child i of n has more than minKeys keys, borrowing from
// a sibling or merging. It returns the (possibly shifted) index of the
// child that now covers the original child's key range.
func (t *Tree[K, V]) fill(n *node[K, V], i int) int {
	if i > 0 && len(n.children[i-1].keys) > minKeys {
		t.borrowLeft(n, i)
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].keys) > minKeys {
		t.borrowRight(n, i)
		return i
	}
	if i > 0 {
		t.merge(n, i-1)
		return i - 1
	}
	t.merge(n, i)
	return i
}

func (t *Tree[K, V]) borrowLeft(n *node[K, V], i int) {
	child, left := n.children[i], n.children[i-1]
	if child.leaf() {
		last := len(left.keys) - 1
		child.keys = append([]K{left.keys[last]}, child.keys...)
		child.vals = append([]V{left.vals[last]}, child.vals...)
		left.keys = left.keys[:last]
		left.vals = left.vals[:last]
		n.keys[i-1] = child.keys[0]
	} else {
		child.keys = append([]K{n.keys[i-1]}, child.keys...)
		last := len(left.keys) - 1
		n.keys[i-1] = left.keys[last]
		left.keys = left.keys[:last]
		lc := len(left.children) - 1
		child.children = append([]*node[K, V]{left.children[lc]}, child.children...)
		left.children = left.children[:lc]
	}
}

func (t *Tree[K, V]) borrowRight(n *node[K, V], i int) {
	child, right := n.children[i], n.children[i+1]
	if child.leaf() {
		child.keys = append(child.keys, right.keys[0])
		child.vals = append(child.vals, right.vals[0])
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		n.keys[i] = right.keys[0]
	} else {
		child.keys = append(child.keys, n.keys[i])
		n.keys[i] = right.keys[0]
		right.keys = right.keys[1:]
		child.children = append(child.children, right.children[0])
		right.children = right.children[1:]
	}
}

// merge merges child i+1 into child i of n.
func (t *Tree[K, V]) merge(n *node[K, V], i int) {
	child, right := n.children[i], n.children[i+1]
	if child.leaf() {
		child.keys = append(child.keys, right.keys...)
		child.vals = append(child.vals, right.vals...)
		child.next = right.next
	} else {
		child.keys = append(child.keys, n.keys[i])
		child.keys = append(child.keys, right.keys...)
		child.children = append(child.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Ascend calls fn for each pair with k >= from, in ascending key order,
// until fn returns false or the keys are exhausted.
func (t *Tree[K, V]) Ascend(from K, fn func(k K, v V) bool) {
	n := t.root
	for !n.leaf() {
		i, found := t.search(n, from)
		if found {
			i++
		}
		n = n.children[i]
	}
	i, _ := t.search(n, from)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// AscendAll calls fn over every pair in ascending key order.
func (t *Tree[K, V]) AscendAll(fn func(k K, v V) bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	for n != nil {
		for i := 0; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Range calls fn for each pair with from <= k < to in ascending order.
func (t *Tree[K, V]) Range(from, to K, fn func(k K, v V) bool) {
	t.Ascend(from, func(k K, v V) bool {
		if t.cmp(k, to) >= 0 {
			return false
		}
		return fn(k, v)
	})
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		var zk K
		var zv V
		return zk, zv, false
	}
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		var zk K
		var zv V
		return zk, zv, false
	}
	last := len(n.keys) - 1
	return n.keys[last], n.vals[last], true
}
