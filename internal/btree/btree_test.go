package btree

import (
	"cmp"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func newInt() *Tree[int, int] { return New[int, int](cmp.Compare[int]) }

func TestEmptyTree(t *testing.T) {
	tr := newInt()
	if tr.Len() != 0 {
		t.Fatalf("Len=%d", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree returned true")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree returned ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree returned ok")
	}
}

func TestSetGetReplace(t *testing.T) {
	tr := newInt()
	if !tr.Set(1, 10) {
		t.Fatal("first Set not reported as insert")
	}
	if tr.Set(1, 20) {
		t.Fatal("second Set reported as insert")
	}
	if v, ok := tr.Get(1); !ok || v != 20 {
		t.Fatalf("Get=%d,%v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestInsertManyAscendOrder(t *testing.T) {
	tr := newInt()
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		tr.Set(k, k*2)
	}
	if tr.Len() != n {
		t.Fatalf("Len=%d, want %d", tr.Len(), n)
	}
	prev := -1
	count := 0
	tr.AscendAll(func(k, v int) bool {
		if k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if v != k*2 {
			t.Fatalf("wrong value %d for key %d", v, k)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("iterated %d, want %d", count, n)
	}
}

func TestDeleteEverySecondThenAll(t *testing.T) {
	tr := newInt()
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Set(i, i)
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(i)
		if (i%2 == 0) == ok {
			t.Fatalf("Get(%d) = %v after deleting evens", i, ok)
		}
	}
	for i := 1; i < n; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len=%d after deleting all", tr.Len())
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := newInt()
	for i := 0; i < 100; i++ {
		tr.Set(i*2, i)
	}
	for i := 0; i < 100; i++ {
		if tr.Delete(i*2 + 1) {
			t.Fatalf("deleted missing key %d", i*2+1)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestAscendFrom(t *testing.T) {
	tr := newInt()
	for i := 0; i < 100; i++ {
		tr.Set(i*10, i)
	}
	var got []int
	tr.Ascend(250, func(k, v int) bool {
		got = append(got, k)
		return len(got) < 5
	})
	want := []int{250, 260, 270, 280, 290}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// From a key that is absent: starts at successor.
	got = nil
	tr.Ascend(255, func(k, v int) bool {
		got = append(got, k)
		return len(got) < 2
	})
	if got[0] != 260 {
		t.Fatalf("Ascend(255) starts at %d, want 260", got[0])
	}
}

func TestRangeHalfOpen(t *testing.T) {
	tr := newInt()
	for i := 0; i < 50; i++ {
		tr.Set(i, i)
	}
	var got []int
	tr.Range(10, 15, func(k, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 5 || got[0] != 10 || got[4] != 14 {
		t.Fatalf("Range(10,15)=%v", got)
	}
	got = nil
	tr.Range(20, 20, func(k, v int) bool { got = append(got, k); return true })
	if len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
}

func TestMinMax(t *testing.T) {
	tr := newInt()
	perm := rand.New(rand.NewSource(2)).Perm(1000)
	for _, k := range perm {
		tr.Set(k, k)
	}
	if k, _, _ := tr.Min(); k != 0 {
		t.Fatalf("Min=%d", k)
	}
	if k, _, _ := tr.Max(); k != 999 {
		t.Fatalf("Max=%d", k)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string, int](cmp.Compare[string])
	words := []string{"mongo", "oplog", "primary", "secondary", "staleness", "balance"}
	for i, w := range words {
		tr.Set(w, i)
	}
	sorted := append([]string(nil), words...)
	sort.Strings(sorted)
	var got []string
	tr.AscendAll(func(k string, v int) bool { got = append(got, k); return true })
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("got %v, want %v", got, sorted)
		}
	}
}

// TestQuickAgainstMap drives random operations against a reference map
// and checks full agreement including iteration order.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		tr := newInt()
		ref := map[int]int{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			k := int(op % 512)
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Int()
				insNew := tr.Set(k, v)
				_, existed := ref[k]
				if insNew == existed {
					return false
				}
				ref[k] = v
			case 2:
				del := tr.Delete(k)
				_, existed := ref[k]
				if del != existed {
					return false
				}
				delete(ref, k)
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		// Full scan must equal sorted reference.
		keys := make([]int, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		i := 0
		ok := true
		tr.AscendAll(func(k, v int) bool {
			if i >= len(keys) || k != keys[i] || v != ref[k] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeMatchesReference checks Range against a sorted slice.
func TestQuickRangeMatchesReference(t *testing.T) {
	f := func(keys []uint16, lo, hi uint16) bool {
		tr := newInt()
		ref := map[int]bool{}
		for _, k := range keys {
			tr.Set(int(k), int(k))
			ref[int(k)] = true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		var want []int
		for k := range ref {
			if k >= int(lo) && k < int(hi) {
				want = append(want, k)
			}
		}
		sort.Ints(want)
		var got []int
		tr.Range(int(lo), int(hi), func(k, v int) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeSet(b *testing.B) {
	tr := newInt()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Set(rng.Intn(1<<20), i)
	}
}

func BenchmarkTreeGet(b *testing.B) {
	tr := newInt()
	for i := 0; i < 1<<16; i++ {
		tr.Set(i, i)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(rng.Intn(1 << 16))
	}
}
