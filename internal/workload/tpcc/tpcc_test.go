package tpcc

import (
	"fmt"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
	"decongestant/internal/workload"
)

// tinyScale keeps load times negligible in unit tests.
func tinyScale() Scale {
	return Scale{
		Warehouses:               2,
		DistrictsPerWH:           3,
		CustomersPerDistrict:     20,
		Items:                    100,
		InitialOrdersPerDistrict: 30,
		UndeliveredFraction:      0.3,
	}
}

func newTestCluster(t *testing.T, seed int64, sc Scale) (*sim.VirtualEnv, *cluster.ReplicaSet, *driver.Client) {
	t.Helper()
	env := sim.NewEnv(seed)
	cfg := cluster.DefaultConfig()
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	if err := Load(rs, sc, 42); err != nil {
		t.Fatal(err)
	}
	return env, rs, driver.NewClient(env, driver.WrapCluster(rs))
}

func TestMixesMatchTable1(t *testing.T) {
	std, rw := StandardMix(), ReadWriteMix()
	if std.Total() != 100 || rw.Total() != 100 {
		t.Fatalf("totals %d %d", std.Total(), rw.Total())
	}
	if std.StockLevel != 4 || std.Payment != 43 || std.NewOrder != 45 {
		t.Fatalf("standard mix wrong: %+v", std)
	}
	if rw.StockLevel != 50 || rw.Payment != 20 || rw.NewOrder != 22 {
		t.Fatalf("read-write mix wrong: %+v", rw)
	}
	if std.Delivery != rw.Delivery || std.OrderStatus != rw.OrderStatus {
		t.Fatal("Delivery/OrderStatus shares should match across mixes")
	}
}

func TestLoadPopulation(t *testing.T) {
	sc := tinyScale()
	env, rs, cl := newTestCluster(t, 1, sc)
	defer env.Shutdown()
	var counts map[string]int
	env.Spawn("counter", func(p sim.Proc) {
		res, err := cl.Conn().ExecRead(p, rs.PrimaryID(), func(v cluster.ReadView) (any, error) {
			out := map[string]int{}
			out["wh"] = v.Count(CollWarehouse, storage.Filter{})
			out["district"] = v.Count(CollDistrict, storage.Filter{})
			out["customer"] = v.Count(CollCustomer, storage.Filter{})
			out["item"] = v.Count(CollItem, storage.Filter{})
			out["stock"] = v.Count(CollStock, storage.Filter{})
			out["orders"] = v.Count(CollOrders, storage.Filter{})
			out["new_orders"] = v.Count(CollNewOrders, storage.Filter{})
			return out, nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		counts = res.(map[string]int)
	})
	env.Run(5 * time.Second)
	want := map[string]int{
		"wh":         sc.Warehouses,
		"district":   sc.Warehouses * sc.DistrictsPerWH,
		"customer":   sc.Warehouses * sc.DistrictsPerWH * sc.CustomersPerDistrict,
		"item":       sc.Items,
		"stock":      sc.Warehouses * sc.Items,
		"orders":     sc.Warehouses * sc.DistrictsPerWH * sc.InitialOrdersPerDistrict,
		"new_orders": sc.Warehouses * sc.DistrictsPerWH * 9, // 30% of 30
	}
	for k, w := range want {
		if counts[k] != w {
			t.Errorf("%s: %d, want %d", k, counts[k], w)
		}
	}
}

func TestNewOrderAdvancesDistrictAndInsertsOrder(t *testing.T) {
	sc := tinyScale()
	env, rs, cl := newTestCluster(t, 2, sc)
	defer env.Shutdown()
	exec := workload.FixedPref{Client: cl, Pref: driver.Primary}
	env.Spawn("terminal", func(p sim.Proc) {
		rng := env.NewRand("no-test")
		for i := 0; i < 30; i++ {
			if _, err := NewOrder(p, exec, sc, rng); err != nil {
				t.Errorf("NewOrder: %v", err)
				return
			}
		}
	})
	env.Run(time.Minute)
	var totalNext, orders int
	env.Spawn("check", func(p sim.Proc) {
		cl.Conn().ExecRead(p, rs.PrimaryID(), func(v cluster.ReadView) (any, error) {
			for w := 1; w <= sc.Warehouses; w++ {
				for d := 1; d <= sc.DistrictsPerWH; d++ {
					doc, _ := v.FindByID(CollDistrict, DistrictID(w, d))
					totalNext += int(doc.Int("next_o_id"))
				}
			}
			orders = v.Count(CollOrders, storage.Filter{})
			return nil, nil
		})
	})
	env.Run(2 * time.Minute)
	districts := sc.Warehouses * sc.DistrictsPerWH
	advance := totalNext - districts*(sc.InitialOrdersPerDistrict+1)
	added := orders - districts*sc.InitialOrdersPerDistrict
	// Intentional rollbacks (~1%) discard the whole transaction, so
	// the district advance must equal the committed order count.
	if advance != added {
		t.Errorf("next_o_id advanced %d but %d orders committed", advance, added)
	}
	if added < 25 || added > 30 {
		t.Errorf("committed orders %d, want close to 30", added)
	}
}

func TestPaymentUpdatesBalances(t *testing.T) {
	sc := tinyScale()
	env, rs, cl := newTestCluster(t, 3, sc)
	defer env.Shutdown()
	exec := workload.FixedPref{Client: cl, Pref: driver.Primary}
	env.Spawn("terminal", func(p sim.Proc) {
		rng := env.NewRand("pay-test")
		for i := 0; i < 20; i++ {
			if _, err := Payment(p, exec, sc, rng); err != nil {
				t.Errorf("Payment: %v", err)
			}
		}
	})
	env.Run(time.Minute)
	var ytd float64
	var histCount int
	env.Spawn("check", func(p sim.Proc) {
		cl.Conn().ExecRead(p, rs.PrimaryID(), func(v cluster.ReadView) (any, error) {
			for w := 1; w <= sc.Warehouses; w++ {
				doc, _ := v.FindByID(CollWarehouse, WarehouseID(w))
				ytd += doc.Float("ytd")
			}
			histCount = v.Count(CollHistory, storage.Filter{})
			return nil, nil
		})
	})
	env.Run(2 * time.Minute)
	base := float64(sc.Warehouses) * 300000
	if ytd <= base {
		t.Errorf("warehouse ytd did not grow: %v vs base %v", ytd, base)
	}
	if histCount != 20 {
		t.Errorf("history count %d, want 20", histCount)
	}
}

func TestOrderStatusReturnsLastOrder(t *testing.T) {
	sc := tinyScale()
	env, _, cl := newTestCluster(t, 4, sc)
	defer env.Shutdown()
	exec := workload.FixedPref{Client: cl, Pref: driver.Primary}
	env.Spawn("terminal", func(p sim.Proc) {
		rng := env.NewRand("os-test")
		for i := 0; i < 20; i++ {
			if _, _, err := OrderStatus(p, exec, sc, rng); err != nil {
				t.Errorf("OrderStatus: %v", err)
			}
		}
	})
	env.Run(time.Minute)
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	sc := tinyScale()
	env, rs, cl := newTestCluster(t, 5, sc)
	defer env.Shutdown()
	exec := workload.FixedPref{Client: cl, Pref: driver.Primary}
	before := sc.Warehouses * sc.DistrictsPerWH * 9
	env.Spawn("terminal", func(p sim.Proc) {
		rng := env.NewRand("del-test")
		for i := 0; i < 10; i++ {
			if _, err := Delivery(p, exec, sc, rng); err != nil {
				t.Errorf("Delivery: %v", err)
			}
		}
	})
	env.Run(time.Minute)
	var after int
	var delivered int
	env.Spawn("check", func(p sim.Proc) {
		cl.Conn().ExecRead(p, rs.PrimaryID(), func(v cluster.ReadView) (any, error) {
			after = v.Count(CollNewOrders, storage.Filter{})
			delivered = v.Count(CollOrders, storage.Filter{"carrier_id": storage.Gt(0)})
			return nil, nil
		})
	})
	env.Run(2 * time.Minute)
	if after >= before {
		t.Errorf("new_orders not drained: %d -> %d", before, after)
	}
	// Each delivered order must have gained a carrier id.
	base := sc.Warehouses * sc.DistrictsPerWH * 21 // initially delivered
	if delivered <= base {
		t.Errorf("no orders gained carriers: %d vs base %d", delivered, base)
	}
}

func TestStockLevelCountsLowStock(t *testing.T) {
	sc := tinyScale()
	env, _, cl := newTestCluster(t, 6, sc)
	defer env.Shutdown()
	exec := workload.FixedPref{Client: cl, Pref: driver.Primary}
	var lats []time.Duration
	env.Spawn("terminal", func(p sim.Proc) {
		rng := env.NewRand("sl-test")
		for i := 0; i < 20; i++ {
			_, lat, err := StockLevel(p, exec, sc, rng)
			if err != nil {
				t.Errorf("StockLevel: %v", err)
				return
			}
			lats = append(lats, lat)
		}
	})
	env.Run(time.Minute)
	if len(lats) != 20 {
		t.Fatalf("%d stock levels completed", len(lats))
	}
	for _, l := range lats {
		if l <= 0 || l > 500*time.Millisecond {
			t.Fatalf("implausible StockLevel latency %v", l)
		}
	}
}

func TestPoolRunsMixAndReportsKinds(t *testing.T) {
	sc := tinyScale()
	env, _, cl := newTestCluster(t, 7, sc)
	defer env.Shutdown()
	obs := &kindCounter{kinds: map[string]int{}}
	pool := NewPool(env, workload.FixedPref{Client: cl, Pref: driver.Primary}, obs, sc, ReadWriteMix())
	pool.SetClients(20)
	env.Run(30 * time.Second)
	if pool.Active() != 20 {
		t.Fatalf("Active=%d", pool.Active())
	}
	total := 0
	for _, c := range obs.kinds {
		total += c
	}
	if total < 100 {
		t.Fatalf("only %d transactions completed", total)
	}
	slShare := float64(obs.kinds[KindStockLevel]) / float64(total)
	if slShare < 0.40 || slShare > 0.60 {
		t.Errorf("StockLevel share %.2f under read-write mix, want ~0.5 (kinds: %v)", slShare, obs.kinds)
	}
	if obs.kinds[KindNewOrder] == 0 || obs.kinds[KindPayment] == 0 {
		t.Errorf("missing write kinds: %v", obs.kinds)
	}
}

type kindCounter struct {
	kinds map[string]int
}

func (k *kindCounter) ObserveRead(at time.Duration, pref driver.ReadPref, lat time.Duration, kind string) {
	k.kinds[kind]++
}
func (k *kindCounter) ObserveWrite(at time.Duration, lat time.Duration, kind string) {
	k.kinds[kind]++
}

func TestIDHelpersDistinct(t *testing.T) {
	ids := []string{
		WarehouseID(1), DistrictID(1, 1), CustomerID(1, 1, 1), ItemID(1),
		StockID(1, 1), OrderID(1, 1, 1), NewOrderID(1, 1, 1),
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q across helpers", id)
		}
		seen[id] = true
	}
	if OrderID(1, 23, 4) == OrderID(12, 3, 4) {
		t.Fatal("composite ids ambiguous")
	}
	_ = fmt.Sprintf
}
