// Package tpcc implements a document-model TPC-C in the spirit of
// Kamsky's MongoDB adaptation (PVLDB'19): orders embed their order
// lines, documents are keyed by composite string _ids, and the five
// transaction types run as multi-operation transactions against the
// replica set. The paper's *read-write TPC-C* variant (Table 1) boosts
// the read-only Stock Level transaction to 50% of the mix.
//
// Scale is configurable; the defaults are a laptop-scale population
// (fewer customers/items than the TPC-C standard, same document
// shapes and access patterns), which preserves the congestion and
// replication behaviour the experiments measure.
package tpcc

import (
	"fmt"
	"math/rand"

	"decongestant/internal/cluster"
	"decongestant/internal/storage"
	"decongestant/internal/workload"
)

// Collection names.
const (
	CollWarehouse = "warehouse"
	CollDistrict  = "district"
	CollCustomer  = "customer"
	CollItem      = "item"
	CollStock     = "stock"
	CollOrders    = "orders"
	CollNewOrders = "new_orders"
	CollHistory   = "history"
)

// Scale describes the data population.
type Scale struct {
	Warehouses           int
	DistrictsPerWH       int
	CustomersPerDistrict int
	Items                int
	// InitialOrdersPerDistrict seeds order history; the newest
	// UndeliveredFraction of them also get new_orders entries.
	InitialOrdersPerDistrict int
	UndeliveredFraction      float64
}

// DefaultScale is the laptop-scale population used by the experiments.
func DefaultScale() Scale {
	return Scale{
		Warehouses:               4,
		DistrictsPerWH:           10,
		CustomersPerDistrict:     300,
		Items:                    10_000,
		InitialOrdersPerDistrict: 300,
		UndeliveredFraction:      0.30,
	}
}

// ID helpers: composite string keys.
func WarehouseID(w int) string      { return fmt.Sprintf("w_%d", w) }
func DistrictID(w, d int) string    { return fmt.Sprintf("d_%d_%d", w, d) }
func CustomerID(w, d, c int) string { return fmt.Sprintf("c_%d_%d_%d", w, d, c) }
func ItemID(i int) string           { return fmt.Sprintf("i_%d", i) }
func StockID(w, i int) string       { return fmt.Sprintf("s_%d_%d", w, i) }
func OrderID(w, d, o int) string    { return fmt.Sprintf("o_%d_%d_%d", w, d, o) }
func NewOrderID(w, d, o int) string { return fmt.Sprintf("no_%d_%d_%d", w, d, o) }

// Load bootstraps the full population and indexes onto every node.
func Load(rs *cluster.ReplicaSet, sc Scale, seed int64) error {
	return rs.Bootstrap(func(s *storage.Store) error {
		rng := rand.New(rand.NewSource(seed))
		if err := createIndexes(s); err != nil {
			return err
		}
		if err := loadItems(s, sc, rng); err != nil {
			return err
		}
		for w := 1; w <= sc.Warehouses; w++ {
			if err := loadWarehouse(s, sc, w, rng); err != nil {
				return err
			}
		}
		return nil
	})
}

func createIndexes(s *storage.Store) error {
	orders := s.C(CollOrders)
	if _, err := orders.CreateIndex("wdo", false, "w_id", "d_id", "o_id"); err != nil {
		return err
	}
	if _, err := orders.CreateIndex("wdco", false, "w_id", "d_id", "c_id", "o_id"); err != nil {
		return err
	}
	if _, err := s.C(CollNewOrders).CreateIndex("wdo", false, "w_id", "d_id", "o_id"); err != nil {
		return err
	}
	return nil
}

func loadItems(s *storage.Store, sc Scale, rng *rand.Rand) error {
	c := s.C(CollItem)
	for i := 1; i <= sc.Items; i++ {
		err := c.Insert(storage.D{
			"_id":   ItemID(i),
			"i_id":  i,
			"name":  workload.RandString(rng, 24),
			"price": 1 + rng.Float64()*99,
			"data":  workload.RandString(rng, 50),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func loadWarehouse(s *storage.Store, sc Scale, w int, rng *rand.Rand) error {
	if err := s.C(CollWarehouse).Insert(storage.D{
		"_id":  WarehouseID(w),
		"w_id": w,
		"name": workload.RandString(rng, 10),
		"tax":  rng.Float64() * 0.2,
		"ytd":  300000.0,
	}); err != nil {
		return err
	}
	stock := s.C(CollStock)
	for i := 1; i <= sc.Items; i++ {
		if err := stock.Insert(storage.D{
			"_id":        StockID(w, i),
			"w_id":       w,
			"i_id":       i,
			"quantity":   10 + rng.Intn(91),
			"ytd":        0,
			"order_cnt":  0,
			"remote_cnt": 0,
		}); err != nil {
			return err
		}
	}
	for d := 1; d <= sc.DistrictsPerWH; d++ {
		if err := loadDistrict(s, sc, w, d, rng); err != nil {
			return err
		}
	}
	return nil
}

func loadDistrict(s *storage.Store, sc Scale, w, d int, rng *rand.Rand) error {
	if err := s.C(CollDistrict).Insert(storage.D{
		"_id":       DistrictID(w, d),
		"w_id":      w,
		"d_id":      d,
		"name":      workload.RandString(rng, 10),
		"tax":       rng.Float64() * 0.2,
		"ytd":       30000.0,
		"next_o_id": sc.InitialOrdersPerDistrict + 1,
	}); err != nil {
		return err
	}
	customers := s.C(CollCustomer)
	for c := 1; c <= sc.CustomersPerDistrict; c++ {
		if err := customers.Insert(storage.D{
			"_id":          CustomerID(w, d, c),
			"w_id":         w,
			"d_id":         d,
			"c_id":         c,
			"last":         workload.RandString(rng, 12),
			"balance":      -10.0,
			"ytd_payment":  10.0,
			"payment_cnt":  1,
			"delivery_cnt": 0,
			"data":         workload.RandString(rng, 250),
		}); err != nil {
			return err
		}
	}
	orders := s.C(CollOrders)
	newOrders := s.C(CollNewOrders)
	deliveredThrough := int(float64(sc.InitialOrdersPerDistrict) * (1 - sc.UndeliveredFraction))
	for o := 1; o <= sc.InitialOrdersPerDistrict; o++ {
		nLines := 5 + rng.Intn(11)
		lines := make([]any, 0, nLines)
		for l := 0; l < nLines; l++ {
			lines = append(lines, storage.D{
				"i_id":       1 + rng.Intn(sc.Items),
				"supply_w":   w,
				"qty":        5,
				"amount":     rng.Float64() * 100,
				"delivery_d": int64(0),
			})
		}
		delivered := o <= deliveredThrough
		carrier := 0
		if delivered {
			carrier = 1 + rng.Intn(10)
		}
		if err := orders.Insert(storage.D{
			"_id":         OrderID(w, d, o),
			"w_id":        w,
			"d_id":        d,
			"o_id":        o,
			"c_id":        1 + rng.Intn(sc.CustomersPerDistrict),
			"entry_d":     int64(0),
			"carrier_id":  carrier,
			"ol_cnt":      nLines,
			"order_lines": lines,
		}); err != nil {
			return err
		}
		if !delivered {
			if err := newOrders.Insert(storage.D{
				"_id":  NewOrderID(w, d, o),
				"w_id": w,
				"d_id": d,
				"o_id": o,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
