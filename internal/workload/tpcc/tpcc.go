package tpcc

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"decongestant/internal/sim"
	"decongestant/internal/workload"
)

// Mix is a transaction mix in whole percent; fields must sum to 100.
type Mix struct {
	StockLevel  int
	Delivery    int
	OrderStatus int
	Payment     int
	NewOrder    int
}

// StandardMix is the classic write-heavy TPC-C mix (Table 1, left).
func StandardMix() Mix {
	return Mix{StockLevel: 4, Delivery: 4, OrderStatus: 4, Payment: 43, NewOrder: 45}
}

// ReadWriteMix is the paper's read-write TPC-C: Stock Level boosted to
// 50% for a balance of read-only and update transactions (Table 1,
// right).
func ReadWriteMix() Mix {
	return Mix{StockLevel: 50, Delivery: 4, OrderStatus: 4, Payment: 20, NewOrder: 22}
}

// Total returns the sum of the mix's percentages.
func (m Mix) Total() int {
	return m.StockLevel + m.Delivery + m.OrderStatus + m.Payment + m.NewOrder
}

// pick chooses a transaction kind from the mix.
func (m Mix) pick(rng *rand.Rand) string {
	r := rng.Intn(m.Total())
	switch {
	case r < m.StockLevel:
		return KindStockLevel
	case r < m.StockLevel+m.Delivery:
		return KindDelivery
	case r < m.StockLevel+m.Delivery+m.OrderStatus:
		return KindOrderStatus
	case r < m.StockLevel+m.Delivery+m.OrderStatus+m.Payment:
		return KindPayment
	default:
		return KindNewOrder
	}
}

// Pool drives closed-loop TPC-C terminal processes. Client count can
// change at run time, as in Figure 4's burst experiment.
type Pool struct {
	env   sim.Env
	exec  workload.Executor
	obs   workload.Observer
	scale Scale

	mu      sync.Mutex
	mix     Mix
	active  int
	spawned int
}

// NewPool creates a TPC-C terminal pool; call SetClients to start.
func NewPool(env sim.Env, exec workload.Executor, obs workload.Observer, scale Scale, mix Mix) *Pool {
	if obs == nil {
		obs = workload.NopObserver{}
	}
	return &Pool{env: env, exec: exec, obs: obs, scale: scale, mix: mix}
}

// SetMix changes the transaction mix at run time.
func (pl *Pool) SetMix(m Mix) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.mix = m
}

// SetClients adjusts the number of active closed-loop terminals.
func (pl *Pool) SetClients(n int) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.active = n
	for pl.spawned < n {
		id := pl.spawned
		pl.spawned++
		pl.env.Spawn(fmt.Sprintf("tpcc/terminal-%d", id), func(p sim.Proc) {
			pl.terminalLoop(p, id)
		})
	}
}

// Active returns the number of active terminals.
func (pl *Pool) Active() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.active
}

func (pl *Pool) terminalLoop(p sim.Proc, id int) {
	rng := pl.env.NewRand(fmt.Sprintf("tpcc-terminal-%d", id))
	for {
		pl.mu.Lock()
		running := id < pl.active
		mix := pl.mix
		pl.mu.Unlock()
		if !running {
			p.Sleep(100 * time.Millisecond)
			continue
		}
		pl.doOne(p, rng, mix)
	}
}

func (pl *Pool) doOne(p sim.Proc, rng *rand.Rand, mix Mix) {
	kind := mix.pick(rng)
	switch kind {
	case KindStockLevel:
		pref, lat, err := StockLevel(p, pl.exec, pl.scale, rng)
		if err == nil {
			pl.obs.ObserveRead(p.Now(), pref, lat, kind)
		}
	case KindOrderStatus:
		pref, lat, err := OrderStatus(p, pl.exec, pl.scale, rng)
		if err == nil {
			pl.obs.ObserveRead(p.Now(), pref, lat, kind)
		}
	case KindDelivery:
		if lat, err := Delivery(p, pl.exec, pl.scale, rng); err == nil {
			pl.obs.ObserveWrite(p.Now(), lat, kind)
		}
	case KindPayment:
		if lat, err := Payment(p, pl.exec, pl.scale, rng); err == nil {
			pl.obs.ObserveWrite(p.Now(), lat, kind)
		}
	default:
		if lat, err := NewOrder(p, pl.exec, pl.scale, rng); err == nil {
			pl.obs.ObserveWrite(p.Now(), lat, kind)
		}
	}
}
