package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
	"decongestant/internal/workload"
)

// Transaction kind names reported to the Observer.
const (
	KindNewOrder    = "NewOrder"
	KindPayment     = "Payment"
	KindOrderStatus = "OrderStatus"
	KindDelivery    = "Delivery"
	KindStockLevel  = "StockLevel"
)

// errRollback models TPC-C's intentional 1% NewOrder aborts (invalid
// item id); the cluster discards the transaction's buffered writes.
var errRollback = errors.New("tpcc: intentional rollback (invalid item)")

// NewOrder places an order: it reads the district and the ordered
// items' stock, updates stock quantities and the district's next
// order id, and inserts the order (with embedded lines) plus its
// new_orders queue entry. 1% of executions abort intentionally.
func NewOrder(p sim.Proc, exec workload.Executor, sc Scale, rng *rand.Rand) (time.Duration, error) {
	w := 1 + rng.Intn(sc.Warehouses)
	d := 1 + rng.Intn(sc.DistrictsPerWH)
	c := 1 + rng.Intn(sc.CustomersPerDistrict)
	nItems := 5 + rng.Intn(11)
	itemIDs := make([]int, nItems)
	quantities := make([]int, nItems)
	for i := range itemIDs {
		itemIDs[i] = 1 + rng.Intn(sc.Items)
		quantities[i] = 1 + rng.Intn(10)
	}
	rollback := rng.Intn(100) == 0
	now := int64(p.Now())

	_, lat, err := exec.Write(p, func(tx cluster.WriteTxn) (any, error) {
		district, ok := tx.FindByID(CollDistrict, DistrictID(w, d))
		if !ok {
			return nil, errors.New("tpcc: district missing")
		}
		oID := int(district.Int("next_o_id"))
		if err := tx.Set(CollDistrict, DistrictID(w, d), storage.D{"next_o_id": oID + 1}); err != nil {
			return nil, err
		}
		lines := make([]any, 0, nItems)
		total := 0.0
		for i, itemID := range itemIDs {
			item, ok := tx.FindByID(CollItem, ItemID(itemID))
			if !ok {
				return nil, errRollback
			}
			stockDoc, ok := tx.FindByID(CollStock, StockID(w, itemID))
			if !ok {
				return nil, errors.New("tpcc: stock missing")
			}
			qty := int(stockDoc.Int("quantity"))
			olQty := quantities[i]
			if qty >= olQty+10 {
				qty -= olQty
			} else {
				qty = qty - olQty + 91
			}
			if err := tx.Set(CollStock, StockID(w, itemID), storage.D{
				"quantity":  qty,
				"ytd":       stockDoc.Int("ytd") + int64(olQty),
				"order_cnt": stockDoc.Int("order_cnt") + 1,
			}); err != nil {
				return nil, err
			}
			amount := float64(olQty) * item.Float("price")
			total += amount
			lines = append(lines, storage.D{
				"i_id":       itemID,
				"supply_w":   w,
				"qty":        olQty,
				"amount":     amount,
				"delivery_d": int64(0),
			})
		}
		if rollback {
			return nil, errRollback
		}
		if err := tx.Insert(CollOrders, storage.D{
			"_id":         OrderID(w, d, oID),
			"w_id":        w,
			"d_id":        d,
			"o_id":        oID,
			"c_id":        c,
			"entry_d":     now,
			"carrier_id":  0,
			"ol_cnt":      nItems,
			"order_lines": lines,
			"total":       total,
		}); err != nil {
			return nil, err
		}
		return nil, tx.Insert(CollNewOrders, storage.D{
			"_id": NewOrderID(w, d, oID), "w_id": w, "d_id": d, "o_id": oID,
		})
	})
	if errors.Is(err, errRollback) {
		return lat, nil // counted as a completed (aborted) transaction
	}
	return lat, err
}

// Payment records a customer payment against the warehouse, district
// and customer year-to-date totals and appends a history document.
// (Customers are selected by id; the 60%-by-last-name variant of the
// standard is not modeled.)
func Payment(p sim.Proc, exec workload.Executor, sc Scale, rng *rand.Rand) (time.Duration, error) {
	w := 1 + rng.Intn(sc.Warehouses)
	d := 1 + rng.Intn(sc.DistrictsPerWH)
	c := 1 + rng.Intn(sc.CustomersPerDistrict)
	amount := 1 + rng.Float64()*4999
	now := int64(p.Now())
	histID := fmt.Sprintf("h_%d_%d_%d_%s", w, d, c, workload.RandString(rng, 10))

	_, lat, err := exec.Write(p, func(tx cluster.WriteTxn) (any, error) {
		wh, ok := tx.FindByID(CollWarehouse, WarehouseID(w))
		if !ok {
			return nil, errors.New("tpcc: warehouse missing")
		}
		if err := tx.Set(CollWarehouse, WarehouseID(w), storage.D{"ytd": wh.Float("ytd") + amount}); err != nil {
			return nil, err
		}
		dist, ok := tx.FindByID(CollDistrict, DistrictID(w, d))
		if !ok {
			return nil, errors.New("tpcc: district missing")
		}
		if err := tx.Set(CollDistrict, DistrictID(w, d), storage.D{"ytd": dist.Float("ytd") + amount}); err != nil {
			return nil, err
		}
		cust, ok := tx.FindByID(CollCustomer, CustomerID(w, d, c))
		if !ok {
			return nil, errors.New("tpcc: customer missing")
		}
		if err := tx.Set(CollCustomer, CustomerID(w, d, c), storage.D{
			"balance":     cust.Float("balance") - amount,
			"ytd_payment": cust.Float("ytd_payment") + amount,
			"payment_cnt": cust.Int("payment_cnt") + 1,
		}); err != nil {
			return nil, err
		}
		return nil, tx.Insert(CollHistory, storage.D{
			"_id": histID, "w_id": w, "d_id": d, "c_id": c,
			"amount": amount, "date": now,
		})
	})
	return lat, err
}

// OrderStatus reads a customer's most recent order and its embedded
// lines. Read-only.
func OrderStatus(p sim.Proc, exec workload.Executor, sc Scale, rng *rand.Rand) (driver.ReadPref, time.Duration, error) {
	w := 1 + rng.Intn(sc.Warehouses)
	d := 1 + rng.Intn(sc.DistrictsPerWH)
	c := 1 + rng.Intn(sc.CustomersPerDistrict)

	_, pref, lat, err := exec.Read(p, func(v cluster.ReadView) (any, error) {
		cust, ok := v.FindByID(CollCustomer, CustomerID(w, d, c))
		if !ok {
			return nil, errors.New("tpcc: customer missing")
		}
		orders := v.Find(CollOrders, storage.Filter{
			"w_id": storage.Eq(w), "d_id": storage.Eq(d), "c_id": storage.Eq(c),
		}, 0)
		if len(orders) == 0 {
			return storage.D{"customer": cust}, nil
		}
		last := orders[len(orders)-1] // index scan is o_id-ascending
		return storage.D{"customer": cust, "order": last}, nil
	})
	return pref, lat, err
}

// Delivery processes the oldest undelivered order in each district of
// one warehouse: it removes the new_orders entry, stamps the order
// with a carrier and delivery date, and credits the customer.
func Delivery(p sim.Proc, exec workload.Executor, sc Scale, rng *rand.Rand) (time.Duration, error) {
	w := 1 + rng.Intn(sc.Warehouses)
	carrier := 1 + rng.Intn(10)
	now := int64(p.Now())

	_, lat, err := exec.Write(p, func(tx cluster.WriteTxn) (any, error) {
		for d := 1; d <= sc.DistrictsPerWH; d++ {
			pending := tx.Find(CollNewOrders, storage.Filter{
				"w_id": storage.Eq(w), "d_id": storage.Eq(d),
			}, 1)
			if len(pending) == 0 {
				continue
			}
			oID := int(pending[0].Int("o_id"))
			if err := tx.Delete(CollNewOrders, NewOrderID(w, d, oID)); err != nil {
				return nil, err
			}
			order, ok := tx.FindByID(CollOrders, OrderID(w, d, oID))
			if !ok {
				continue
			}
			// Committed documents are immutable shared snapshots: clone
			// each line before stamping the delivery date, never write
			// through the pointer the read returned.
			total := 0.0
			src := order.Array("order_lines")
			lines := make([]any, 0, len(src))
			for _, l := range src {
				ld, _ := l.(storage.Document)
				total += ld.Float("amount")
				stamped := ld.Clone()
				stamped["delivery_d"] = now
				lines = append(lines, stamped)
			}
			if err := tx.Set(CollOrders, OrderID(w, d, oID), storage.D{
				"carrier_id":  carrier,
				"order_lines": lines,
			}); err != nil {
				return nil, err
			}
			cID := int(order.Int("c_id"))
			cust, ok := tx.FindByID(CollCustomer, CustomerID(w, d, cID))
			if !ok {
				continue
			}
			if err := tx.Set(CollCustomer, CustomerID(w, d, cID), storage.D{
				"balance":      cust.Float("balance") + total,
				"delivery_cnt": cust.Int("delivery_cnt") + 1,
			}); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	return lat, err
}

// StockLevel counts, for one district, how many recently ordered items
// have stock below a threshold: district next_o_id, the last 20
// orders' embedded lines, then a batched stock fetch. Read-only — the
// transaction whose throughput and latency the paper's TPC-C figures
// report.
func StockLevel(p sim.Proc, exec workload.Executor, sc Scale, rng *rand.Rand) (driver.ReadPref, time.Duration, error) {
	w := 1 + rng.Intn(sc.Warehouses)
	d := 1 + rng.Intn(sc.DistrictsPerWH)
	threshold := 10 + rng.Intn(11)

	_, pref, lat, err := exec.Read(p, func(v cluster.ReadView) (any, error) {
		dist, ok := v.FindByID(CollDistrict, DistrictID(w, d))
		if !ok {
			return nil, errors.New("tpcc: district missing")
		}
		next := int(dist.Int("next_o_id"))
		lo := next - 20
		if lo < 1 {
			lo = 1
		}
		// Every read returns a shared no-copy snapshot; this
		// transaction only inspects, never mutates.
		orders := v.Find(CollOrders, storage.Filter{
			"w_id": storage.Eq(w), "d_id": storage.Eq(d),
			"o_id": storage.Gte(lo),
		}, 0)
		seen := map[int]bool{}
		var stockIDs []string
		for _, o := range orders {
			for _, l := range o.Array("order_lines") {
				ld, _ := l.(storage.Document)
				i := int(ld.Int("i_id"))
				if i != 0 && !seen[i] {
					seen[i] = true
					stockIDs = append(stockIDs, StockID(w, i))
				}
			}
		}
		low := 0
		for _, s := range v.FindManyByID(CollStock, stockIDs) {
			if int(s.Int("quantity")) < threshold {
				low++
			}
		}
		return low, nil
	})
	return pref, lat, err
}
