// Package workload defines the pieces shared by the benchmark
// workloads (YCSB, TPC-C, the S staleness prober): the Executor
// abstraction that routes operations either through a hard-coded Read
// Preference baseline or through Decongestant's Router, and the
// Observer interface experiments use to collect measurements.
package workload

import (
	"math/rand"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
)

// Executor routes workload operations to the replica set. The three
// systems compared throughout the paper's evaluation are three
// Executors: FixedPref(Primary), FixedPref(Secondary), and Router.
type Executor interface {
	// Read runs a read-only body somewhere according to the executor's
	// policy, returning the result, where it went, and the end-to-end
	// latency.
	Read(p sim.Proc, fn func(v cluster.ReadView) (any, error)) (any, driver.ReadPref, time.Duration, error)
	// Write runs a write transaction at the primary.
	Write(p sim.Proc, fn func(tx cluster.WriteTxn) (any, error)) (any, time.Duration, error)
}

// FixedPref is the state-of-practice baseline: every read is
// hard-coded with one Read Preference (§4.1.3).
type FixedPref struct {
	Client *driver.Client
	Pref   driver.ReadPref
}

// Read routes with the fixed preference.
func (f FixedPref) Read(p sim.Proc, fn func(v cluster.ReadView) (any, error)) (any, driver.ReadPref, time.Duration, error) {
	res, _, lat, err := f.Client.Read(p, driver.ReadOptions{Pref: f.Pref}, fn)
	return res, f.Pref, lat, err
}

// Write routes to the primary.
func (f FixedPref) Write(p sim.Proc, fn func(tx cluster.WriteTxn) (any, error)) (any, time.Duration, error) {
	return f.Client.Write(p, fn)
}

// RouterExec routes reads through Decongestant's Router.
type RouterExec struct {
	Router *core.Router
}

// Read flips the router's biased coin and reports the latency back to
// the Read Balancer.
func (r RouterExec) Read(p sim.Proc, fn func(v cluster.ReadView) (any, error)) (any, driver.ReadPref, time.Duration, error) {
	return r.Router.Read(p, fn)
}

// Write routes to the primary.
func (r RouterExec) Write(p sim.Proc, fn func(tx cluster.WriteTxn) (any, error)) (any, time.Duration, error) {
	return r.Router.Write(p, fn)
}

// Observer receives one event per completed operation. Implementations
// must tolerate calls from multiple workload processes.
type Observer interface {
	// ObserveRead reports a completed read-only operation: completion
	// time, where it was routed, end-to-end latency, and the workload
	// specific kind ("read", "StockLevel", ...).
	ObserveRead(at time.Duration, pref driver.ReadPref, lat time.Duration, kind string)
	// ObserveWrite reports a completed write transaction.
	ObserveWrite(at time.Duration, lat time.Duration, kind string)
}

// NopObserver discards all events.
type NopObserver struct{}

func (NopObserver) ObserveRead(time.Duration, driver.ReadPref, time.Duration, string) {}
func (NopObserver) ObserveWrite(time.Duration, time.Duration, string)                 {}

// RandString fills a deterministic alphanumeric string of length n —
// YCSB field payloads and TPC-C data strings. It draws 10 characters
// per 64-bit random word (6 bits each), keeping payload generation off
// the benchmark's critical path.
func RandString(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_"
	b := make([]byte, n)
	var word uint64
	var bits int
	for i := range b {
		if bits < 6 {
			word = rng.Uint64()
			bits = 60
		}
		b[i] = alphabet[word&63]
		word >>= 6
		bits -= 6
	}
	return string(b)
}
