// Package ycsb reimplements the YCSB core workloads (Cooper et al.,
// SoCC'10): the request-distribution generators (uniform, zipfian,
// scrambled zipfian, latest) and workloads A-F over the document
// store, driven by closed-loop client processes.
package ycsb

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Generator produces the next item index for a request distribution.
type Generator interface {
	Next(rng *rand.Rand) int64
}

// Uniform draws uniformly from [0, n).
type Uniform struct{ n int64 }

// NewUniform creates a uniform generator over n items.
func NewUniform(n int64) *Uniform { return &Uniform{n: n} }

func (u *Uniform) Next(rng *rand.Rand) int64 { return rng.Int63n(u.n) }

// Zipfian draws from a zipfian distribution over [0, n) with the YCSB
// constant 0.99, using the Gray et al. rejection-free method exactly
// as YCSB's ZipfianGenerator does.
type Zipfian struct {
	items                            int64
	theta, alpha, zetan, eta, zeta2t float64
}

// ZipfianConstant is YCSB's default skew.
const ZipfianConstant = 0.99

// NewZipfian creates a zipfian generator over n items.
func NewZipfian(n int64) *Zipfian {
	z := &Zipfian{items: n, theta: ZipfianConstant}
	z.alpha = 1 / (1 - z.theta)
	z.zetan = zeta(n, z.theta)
	z.zeta2t = zeta(2, z.theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2t/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *Zipfian) Next(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledZipfian spreads the zipfian head across the keyspace by
// hashing, like YCSB's ScrambledZipfianGenerator, so popular items are
// not clustered.
type ScrambledZipfian struct {
	z     *Zipfian
	items int64
}

// NewScrambledZipfian creates a scrambled zipfian generator over n
// items.
func NewScrambledZipfian(n int64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(n), items: n}
}

func (s *ScrambledZipfian) Next(rng *rand.Rand) int64 {
	v := s.z.Next(rng)
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return int64(h.Sum64() % uint64(s.items))
}

// Latest skews toward recently inserted items: it draws a zipfian
// offset back from the current maximum (YCSB's SkewedLatestGenerator).
type Latest struct {
	z   *Zipfian
	max func() int64
}

// NewLatest creates a latest-skewed generator; max reports the current
// largest item index.
func NewLatest(n int64, max func() int64) *Latest {
	return &Latest{z: NewZipfian(n), max: max}
}

func (l *Latest) Next(rng *rand.Rand) int64 {
	m := l.max()
	if m <= 0 {
		return 0
	}
	off := l.z.Next(rng)
	if off >= m {
		off = off % m
	}
	return m - 1 - off
}
