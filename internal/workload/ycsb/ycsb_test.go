package ycsb

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
	"decongestant/internal/workload"
)

func TestZipfianSkewAndRange(t *testing.T) {
	const n = 1000
	z := NewZipfian(n)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next(rng)
		if v < 0 || v >= n {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 should get roughly 1/zeta(n) of the mass (~13% for n=1000).
	p0 := float64(counts[0]) / draws
	if p0 < 0.10 || p0 > 0.18 {
		t.Fatalf("P(item0)=%.3f, want ~0.13", p0)
	}
	if counts[0] < counts[n/2]*10 {
		t.Fatalf("head not much hotter than middle: %d vs %d", counts[0], counts[n/2])
	}
}

func TestScrambledZipfianSpreadsHead(t *testing.T) {
	const n = 1000
	s := NewScrambledZipfian(n)
	rng := rand.New(rand.NewSource(2))
	counts := make(map[int64]int)
	for i := 0; i < 100000; i++ {
		v := s.Next(rng)
		if v < 0 || v >= n {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// The hottest item should not be item 0 systematically and should
	// still be much hotter than the median — skew preserved, head moved.
	hottest, hot := int64(-1), 0
	for k, c := range counts {
		if c > hot {
			hottest, hot = k, c
		}
	}
	if hot < 5000 {
		t.Fatalf("skew lost after scrambling: max count %d", hot)
	}
	_ = hottest
}

func TestUniformCoversRange(t *testing.T) {
	u := NewUniform(100)
	rng := rand.New(rand.NewSource(3))
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		seen[u.Next(rng)] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform covered only %d/100 items", len(seen))
	}
}

func TestLatestSkewsToRecent(t *testing.T) {
	maxv := int64(1000)
	l := NewLatest(1000, func() int64 { return maxv })
	rng := rand.New(rand.NewSource(4))
	recent := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		v := l.Next(rng)
		if v < 0 || v >= maxv {
			t.Fatalf("out of range: %d", v)
		}
		if v >= maxv-10 {
			recent++
		}
	}
	if float64(recent)/draws < 0.2 {
		t.Fatalf("only %.1f%% of draws in the newest 1%%", 100*float64(recent)/draws)
	}
}

func TestSpecsProportionsSumToOne(t *testing.T) {
	for _, s := range []Spec{WorkloadA(), WorkloadB(), WorkloadC(), WorkloadD(), WorkloadE(), WorkloadF()} {
		sum := s.ReadProportion + s.UpdateProportion + s.InsertProportion +
			s.ScanProportion + s.ReadModifyWriteProportion
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s proportions sum to %v", s.Name, sum)
		}
	}
	if a := WorkloadA(); a.ReadProportion != 0.5 {
		t.Error("YCSB-A read proportion wrong")
	}
	if b := WorkloadB(); b.ReadProportion != 0.95 {
		t.Error("YCSB-B read proportion wrong")
	}
}

type countingObserver struct {
	reads, writes int
	secondary     int
}

func (c *countingObserver) ObserveRead(at time.Duration, pref driver.ReadPref, lat time.Duration, kind string) {
	c.reads++
	if pref == driver.Secondary {
		c.secondary++
	}
}
func (c *countingObserver) ObserveWrite(at time.Duration, lat time.Duration, kind string) {
	c.writes++
}

func newTestCluster(seed int64) (*sim.VirtualEnv, *cluster.ReplicaSet, *driver.Client) {
	env := sim.NewEnv(seed)
	cfg := cluster.DefaultConfig()
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	cl := driver.NewClient(env, driver.WrapCluster(rs))
	return env, rs, cl
}

func TestLoadAndRunMixAgainstPrimary(t *testing.T) {
	env, rs, cl := newTestCluster(5)
	defer env.Shutdown()
	spec := WorkloadA()
	spec.RecordCount = 500
	if err := Load(rs, spec, 42); err != nil {
		t.Fatal(err)
	}
	obs := &countingObserver{}
	pool := NewPool(env, workload.FixedPref{Client: cl, Pref: driver.Primary}, obs, spec)
	pool.SetClients(10)
	env.Run(5 * time.Second)
	if obs.reads == 0 || obs.writes == 0 {
		t.Fatalf("reads=%d writes=%d", obs.reads, obs.writes)
	}
	ratio := float64(obs.reads) / float64(obs.reads+obs.writes)
	if ratio < 0.42 || ratio > 0.58 {
		t.Fatalf("read ratio %.2f for YCSB-A, want ~0.5", ratio)
	}
	if obs.secondary != 0 {
		t.Fatal("primary-only executor routed to secondary")
	}
}

func TestPoolSwitchesSpecAtRuntime(t *testing.T) {
	env, rs, cl := newTestCluster(6)
	defer env.Shutdown()
	specA := WorkloadA()
	specA.RecordCount = 300
	if err := Load(rs, specA, 1); err != nil {
		t.Fatal(err)
	}
	obs := &countingObserver{}
	pool := NewPool(env, workload.FixedPref{Client: cl, Pref: driver.Primary}, obs, specA)
	pool.SetClients(10)
	env.Run(4 * time.Second)
	r0, w0 := obs.reads, obs.writes
	pool.SetSpec(WorkloadB())
	env.Run(8 * time.Second)
	r1, w1 := obs.reads-r0, obs.writes-w0
	ratio := float64(r1) / float64(r1+w1)
	if ratio < 0.9 {
		t.Fatalf("read ratio %.2f after switch to YCSB-B, want ~0.95", ratio)
	}
	if pool.Spec().Name != "YCSB-B" {
		t.Fatal("spec not switched")
	}
}

func TestPoolScalesClientsUpAndDown(t *testing.T) {
	env, rs, cl := newTestCluster(7)
	defer env.Shutdown()
	spec := WorkloadB()
	spec.RecordCount = 300
	if err := Load(rs, spec, 1); err != nil {
		t.Fatal(err)
	}
	obs := &countingObserver{}
	pool := NewPool(env, workload.FixedPref{Client: cl, Pref: driver.Primary}, obs, spec)
	pool.SetClients(40)
	env.Run(5 * time.Second)
	high := obs.reads + obs.writes
	pool.SetClients(2)
	env.Run(10 * time.Second)
	low := obs.reads + obs.writes - high
	if pool.Active() != 2 {
		t.Fatalf("Active=%d", pool.Active())
	}
	// 2 clients over 5s must do far less than 40 clients over 5s
	// (closed loop at saturation).
	if low > high {
		t.Fatalf("throughput did not drop: %d then %d", high, low)
	}
}

func TestWorkloadDInsertsAndReadsLatest(t *testing.T) {
	env, rs, cl := newTestCluster(8)
	defer env.Shutdown()
	spec := WorkloadD()
	spec.RecordCount = 200
	if err := Load(rs, spec, 1); err != nil {
		t.Fatal(err)
	}
	obs := &countingObserver{}
	pool := NewPool(env, workload.FixedPref{Client: cl, Pref: driver.Primary}, obs, spec)
	pool.SetClients(5)
	env.Run(5 * time.Second)
	if obs.writes == 0 {
		t.Fatal("no inserts happened")
	}
	if pool.insertSq.Load() <= spec.RecordCount {
		t.Fatal("insert sequence did not advance")
	}
}
