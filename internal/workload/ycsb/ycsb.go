package ycsb

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
	"decongestant/internal/workload"
)

// Table is the collection YCSB operates on.
const Table = "usertable"

// Distribution selects the request key distribution.
type Distribution int

const (
	DistZipfian Distribution = iota
	DistUniform
	DistLatest
)

// Spec is a YCSB workload definition: record shape plus operation mix.
// Proportions must sum to 1.
type Spec struct {
	Name        string
	RecordCount int64
	FieldCount  int
	FieldLength int

	ReadProportion            float64
	UpdateProportion          float64
	InsertProportion          float64
	ScanProportion            float64
	ReadModifyWriteProportion float64
	MaxScanLength             int

	Distribution Distribution
}

// The standard YCSB core workloads. WorkloadA (50/50) and WorkloadB
// (95/5) are the two the paper evaluates with.
func baseSpec(name string) Spec {
	return Spec{
		Name:          name,
		RecordCount:   10_000,
		FieldCount:    10,
		FieldLength:   100,
		MaxScanLength: 100,
		Distribution:  DistZipfian,
	}
}

// WorkloadA is the update-heavy mix: 50% reads, 50% updates.
func WorkloadA() Spec {
	s := baseSpec("YCSB-A")
	s.ReadProportion, s.UpdateProportion = 0.5, 0.5
	return s
}

// WorkloadB is the read-mostly mix: 95% reads, 5% updates.
func WorkloadB() Spec {
	s := baseSpec("YCSB-B")
	s.ReadProportion, s.UpdateProportion = 0.95, 0.05
	return s
}

// WorkloadC is read-only.
func WorkloadC() Spec {
	s := baseSpec("YCSB-C")
	s.ReadProportion = 1.0
	return s
}

// WorkloadD is read-latest: 95% reads of recent inserts, 5% inserts.
func WorkloadD() Spec {
	s := baseSpec("YCSB-D")
	s.ReadProportion, s.InsertProportion = 0.95, 0.05
	s.Distribution = DistLatest
	return s
}

// WorkloadE is short scans: 95% scans, 5% inserts.
func WorkloadE() Spec {
	s := baseSpec("YCSB-E")
	s.ScanProportion, s.InsertProportion = 0.95, 0.05
	s.MaxScanLength = 20
	return s
}

// WorkloadF is read-modify-write: 50% reads, 50% RMW.
func WorkloadF() Spec {
	s := baseSpec("YCSB-F")
	s.ReadProportion, s.ReadModifyWriteProportion = 0.5, 0.5
	return s
}

// KeyName formats the _id for item i, as YCSB does ("user<i>").
func KeyName(i int64) string { return fmt.Sprintf("user%d", i) }

// Load bootstraps RecordCount documents onto every node of the
// replica set (pre-existing data, outside the oplog) and creates no
// secondary indexes — YCSB is a pure key-value workload.
func Load(rs *cluster.ReplicaSet, spec Spec, seed int64) error {
	return rs.Bootstrap(func(s *storage.Store) error {
		rng := rand.New(rand.NewSource(seed))
		c := s.C(Table)
		for i := int64(0); i < spec.RecordCount; i++ {
			doc := storage.D{"_id": KeyName(i)}
			for f := 0; f < spec.FieldCount; f++ {
				doc[fmt.Sprintf("field%d", f)] = workload.RandString(rng, spec.FieldLength)
			}
			if err := c.Insert(doc); err != nil {
				return err
			}
		}
		return nil
	})
}

// Pool drives a set of closed-loop YCSB client processes against an
// executor. The number of active clients can be changed while running
// (the paper's dynamic-workload experiments), as can the Spec.
type Pool struct {
	env  sim.Env
	exec workload.Executor
	obs  workload.Observer

	mu       sync.Mutex
	spec     Spec
	zipf     Generator
	uni      Generator
	latest   Generator
	active   int // clients allowed to run
	spawned  int
	insertSq atomic.Int64
	paused   bool
}

// NewPool creates a client pool for the given spec. Call SetClients to
// start client processes.
func NewPool(env sim.Env, exec workload.Executor, obs workload.Observer, spec Spec) *Pool {
	if obs == nil {
		obs = workload.NopObserver{}
	}
	pl := &Pool{env: env, exec: exec, obs: obs}
	pl.setSpecLocked(spec)
	pl.insertSq.Store(spec.RecordCount)
	return pl
}

func (pl *Pool) setSpecLocked(spec Spec) {
	pl.spec = spec
	pl.zipf = NewScrambledZipfian(spec.RecordCount)
	pl.uni = NewUniform(spec.RecordCount)
	pl.latest = NewLatest(spec.RecordCount, func() int64 { return pl.insertSq.Load() })
}

// SetSpec switches the operation mix at run time (e.g. YCSB-A ->
// YCSB-B at t=620s in Figure 2). The record population is unchanged.
func (pl *Pool) SetSpec(spec Spec) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	spec.RecordCount = pl.spec.RecordCount // population fixed after Load
	pl.setSpecLocked(spec)
}

// Spec returns the current workload spec.
func (pl *Pool) Spec() Spec {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.spec
}

// SetClients adjusts the number of active closed-loop clients. New
// processes are spawned as needed; surplus ones park until reactivated.
func (pl *Pool) SetClients(n int) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.active = n
	for pl.spawned < n {
		id := pl.spawned
		pl.spawned++
		pl.env.Spawn(fmt.Sprintf("ycsb/client-%d", id), func(p sim.Proc) {
			pl.clientLoop(p, id)
		})
	}
}

// Active returns the number of currently active clients.
func (pl *Pool) Active() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.active
}

func (pl *Pool) clientLoop(p sim.Proc, id int) {
	rng := pl.env.NewRand(fmt.Sprintf("ycsb-client-%d", id))
	for {
		pl.mu.Lock()
		running := id < pl.active
		spec := pl.spec
		pl.mu.Unlock()
		if !running {
			p.Sleep(100 * time.Millisecond)
			continue
		}
		pl.doOne(p, rng, spec)
	}
}

// doOne executes one operation drawn from the mix.
func (pl *Pool) doOne(p sim.Proc, rng *rand.Rand, spec Spec) {
	op := rng.Float64()
	switch {
	case op < spec.ReadProportion:
		pl.doRead(p, rng, spec)
	case op < spec.ReadProportion+spec.UpdateProportion:
		pl.doUpdate(p, rng, spec)
	case op < spec.ReadProportion+spec.UpdateProportion+spec.InsertProportion:
		pl.doInsert(p, rng, spec)
	case op < spec.ReadProportion+spec.UpdateProportion+spec.InsertProportion+spec.ScanProportion:
		pl.doScan(p, rng, spec)
	default:
		pl.doReadModifyWrite(p, rng, spec)
	}
}

func (pl *Pool) nextKey(rng *rand.Rand, spec Spec) string {
	var i int64
	switch spec.Distribution {
	case DistUniform:
		i = pl.uni.Next(rng)
	case DistLatest:
		i = pl.latest.Next(rng)
	default:
		i = pl.zipf.Next(rng)
	}
	return KeyName(i)
}

func (pl *Pool) randomField(rng *rand.Rand, spec Spec) (string, string) {
	f := fmt.Sprintf("field%d", rng.Intn(spec.FieldCount))
	return f, workload.RandString(rng, spec.FieldLength)
}

func (pl *Pool) doRead(p sim.Proc, rng *rand.Rand, spec Spec) {
	key := pl.nextKey(rng, spec)
	_, pref, lat, err := pl.exec.Read(p, func(v cluster.ReadView) (any, error) {
		// Shared (no-copy) read: the result is discarded, never mutated.
		d, _ := v.FindByID(Table, key)
		return d.Str("field0") != "", nil
	})
	if err == nil {
		pl.obs.ObserveRead(p.Now(), pref, lat, "read")
	}
}

func (pl *Pool) doUpdate(p sim.Proc, rng *rand.Rand, spec Spec) {
	key := pl.nextKey(rng, spec)
	field, val := pl.randomField(rng, spec)
	_, lat, err := pl.exec.Write(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Set(Table, key, storage.D{field: val})
	})
	if err == nil {
		pl.obs.ObserveWrite(p.Now(), lat, "update")
	}
}

func (pl *Pool) doInsert(p sim.Proc, rng *rand.Rand, spec Spec) {
	seq := pl.insertSq.Add(1) - 1
	doc := storage.D{"_id": KeyName(seq)}
	for f := 0; f < spec.FieldCount; f++ {
		doc[fmt.Sprintf("field%d", f)] = workload.RandString(rng, spec.FieldLength)
	}
	_, lat, err := pl.exec.Write(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert(Table, doc)
	})
	if err == nil {
		pl.obs.ObserveWrite(p.Now(), lat, "insert")
	}
}

func (pl *Pool) doScan(p sim.Proc, rng *rand.Rand, spec Spec) {
	start := pl.nextKey(rng, spec)
	n := 1 + rng.Intn(spec.MaxScanLength)
	_, pref, lat, err := pl.exec.Read(p, func(v cluster.ReadView) (any, error) {
		return v.Find(Table, storage.Filter{"_id": storage.Gte(start)}, n), nil
	})
	if err == nil {
		pl.obs.ObserveRead(p.Now(), pref, lat, "scan")
	}
}

func (pl *Pool) doReadModifyWrite(p sim.Proc, rng *rand.Rand, spec Spec) {
	key := pl.nextKey(rng, spec)
	field, val := pl.randomField(rng, spec)
	_, lat, err := pl.exec.Write(p, func(tx cluster.WriteTxn) (any, error) {
		if _, ok := tx.FindByID(Table, key); !ok {
			return nil, nil
		}
		return nil, tx.Set(Table, key, storage.D{field: val})
	})
	if err == nil {
		pl.obs.ObserveWrite(p.Now(), lat, "rmw")
	}
}
