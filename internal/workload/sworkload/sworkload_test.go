package sworkload

import (
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
)

func setup(seed int64, mutate func(*cluster.Config)) (*sim.VirtualEnv, *cluster.ReplicaSet, *driver.Client) {
	env := sim.NewEnv(seed)
	cfg := cluster.DefaultConfig()
	cfg.ReplIdlePoll = 10 * time.Millisecond
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	if mutate != nil {
		mutate(&cfg)
	}
	rs := cluster.New(env, cfg)
	cl := driver.NewClient(env, driver.WrapCluster(rs))
	return env, rs, cl
}

func TestHealthyClusterSeesNearZeroStaleness(t *testing.T) {
	env, _, cl := setup(1, nil)
	defer env.Shutdown()
	s := New(env, cl, Options{})
	s.Start()
	env.Run(30 * time.Second)
	if s.Writes() == 0 {
		t.Fatal("writer made no writes")
	}
	samples := s.Samples()
	if len(samples) < 50 {
		t.Fatalf("only %d samples", len(samples))
	}
	if p80 := s.StalenessPercentile(0.80, 5*time.Second); p80 > time.Second {
		t.Fatalf("P80 staleness %v on a healthy cluster", p80)
	}
}

func TestStalledReplicationIsVisibleToSWorkload(t *testing.T) {
	env, _, cl := setup(2, func(cfg *cluster.Config) {
		// Long checkpoints stall getMore: staleness must appear.
		cfg.CheckpointInterval = 5 * time.Second
		cfg.CheckpointMinDuration = 4 * time.Second
		cfg.CheckpointPerMB = 0
		cfg.CheckpointMaxDuration = 4 * time.Second
	})
	defer env.Shutdown()
	s := New(env, cl, Options{})
	s.Start()
	env.Run(20 * time.Second)
	if maxS := s.MaxStaleness(0); maxS < 2*time.Second {
		t.Fatalf("max observed staleness %v; checkpoint stall invisible", maxS)
	}
}

func TestProbeSecondaryHookRedirectsToPrimary(t *testing.T) {
	env, _, cl := setup(3, func(cfg *cluster.Config) {
		cfg.ReplIdlePoll = 10 * time.Second // replication effectively frozen
	})
	defer env.Shutdown()
	s := New(env, cl, Options{ProbeSecondary: func() bool { return false }})
	s.Start()
	env.Run(10 * time.Second)
	for _, smp := range s.Samples() {
		if smp.UsedSecondary {
			t.Fatal("probe used the secondary despite the hook")
		}
		if smp.Staleness != 0 {
			t.Fatalf("primary-only probe reported staleness %v", smp.Staleness)
		}
	}
	if len(s.Samples()) == 0 {
		t.Fatal("no samples")
	}
}

func TestFrozenSecondaryShowsGrowingStaleness(t *testing.T) {
	env, rs, cl := setup(4, func(cfg *cluster.Config) {
		cfg.ReplIdlePoll = 10 * time.Second
		cfg.DisableTailWake = true // poll IS the freeze; tail wake would undo it
	})
	defer env.Shutdown()
	// Mark both secondaries' replication as effectively stopped via the
	// idle poll; writes keep advancing the primary.
	_ = rs
	s := New(env, cl, Options{WriterInterval: 20 * time.Millisecond})
	s.Start()
	env.Run(8 * time.Second)
	samples := s.Samples()
	if len(samples) < 10 {
		t.Fatalf("only %d samples", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Staleness < 3*time.Second {
		t.Fatalf("staleness %v at t=%v; expected growth with frozen replication", last.Staleness, last.At)
	}
	// Staleness should grow roughly with elapsed time.
	mid := samples[len(samples)/2]
	if last.Staleness <= mid.Staleness {
		t.Fatalf("staleness not growing: %v then %v", mid.Staleness, last.Staleness)
	}
}
