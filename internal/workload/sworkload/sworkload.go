// Package sworkload implements the paper's S workload (§4.1.5): a
// writer that stamps the current time into a dedicated probe document
// at high frequency, and a reader that periodically probes the same
// document on the primary and on a secondary and compares the returned
// timestamps. The difference is the data staleness actually seen by a
// client — the ground truth the paper validates Decongestant's
// serverStatus-based estimates against (Figures 8-10).
package sworkload

import (
	"sync"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/metrics"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// Collection and document id of the probe cell.
const (
	Collection = "sprobe"
	CellID     = "cell"
)

// Sample is one reader probe.
type Sample struct {
	At time.Duration
	// Staleness is primary timestamp minus secondary timestamp at the
	// probe, clamped at zero.
	Staleness time.Duration
	// UsedSecondary is false when the probe's second read was sent to
	// the primary instead (the paper's variation for phases where the
	// application is not using secondaries at all).
	UsedSecondary bool
}

// Options configures the S workload.
type Options struct {
	// WriterInterval is the stamp period; it must be at least as fast
	// as the reader probes (default 50 ms).
	WriterInterval time.Duration
	// ProbeInterval is the reader period (default 250 ms).
	ProbeInterval time.Duration
	// ProbeSecondary, when non-nil, is consulted before each probe;
	// returning false redirects the probe's second read to the primary
	// (clients see no staleness while the application avoids
	// secondaries). Wire it to Decongestant's Balancer.Fraction.
	ProbeSecondary func() bool
}

func (o Options) withDefaults() Options {
	if o.WriterInterval == 0 {
		o.WriterInterval = 50 * time.Millisecond
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	return o
}

// S is a running S workload instance.
type S struct {
	env    sim.Env
	client *driver.Client
	opts   Options

	mu      sync.Mutex
	samples []Sample
	writes  int64
}

// New creates an S workload over the given client; Start launches its
// writer and reader processes.
func New(env sim.Env, client *driver.Client, opts Options) *S {
	return &S{env: env, client: client, opts: opts.withDefaults()}
}

// Start launches the writer and reader.
func (s *S) Start() {
	s.env.Spawn("sworkload/writer", s.writerLoop)
	s.env.Spawn("sworkload/reader", s.readerLoop)
}

func (s *S) writerLoop(p sim.Proc) {
	for {
		now := int64(p.Now())
		_, _, err := s.client.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Set(Collection, CellID, storage.D{"ts": now})
		})
		if err == nil {
			s.mu.Lock()
			s.writes++
			s.mu.Unlock()
		}
		p.Sleep(s.opts.WriterInterval)
	}
}

func (s *S) readerLoop(p sim.Proc) {
	readCell := func(pref driver.ReadPref) (int64, bool) {
		res, _, _, err := s.client.Read(p, driver.ReadOptions{Pref: pref}, func(v cluster.ReadView) (any, error) {
			d, ok := v.FindByID(Collection, CellID)
			if !ok {
				// Never replicated: timestamp 0 makes the staleness
				// read as the full time since the run started.
				return int64(0), nil
			}
			return d.Int("ts"), nil
		})
		if err != nil {
			return 0, false
		}
		return res.(int64), true
	}
	for {
		p.Sleep(s.opts.ProbeInterval)
		useSecondary := s.opts.ProbeSecondary == nil || s.opts.ProbeSecondary()
		primTS, ok := readCell(driver.Primary)
		if !ok {
			continue
		}
		secPref := driver.Primary
		if useSecondary {
			secPref = driver.Secondary
		}
		secTS, ok := readCell(secPref)
		if !ok {
			continue
		}
		staleness := time.Duration(primTS - secTS)
		if staleness < 0 {
			staleness = 0
		}
		s.mu.Lock()
		s.samples = append(s.samples, Sample{At: p.Now(), Staleness: staleness, UsedSecondary: useSecondary})
		s.mu.Unlock()
	}
}

// Samples returns a copy of the probes recorded so far.
func (s *S) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// Writes returns the number of successful stamp writes.
func (s *S) Writes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

// StalenessPercentile returns the q-percentile of client-observed
// staleness over samples taken at or after `from` (warm-up exclusion).
func (s *S) StalenessPercentile(q float64, from time.Duration) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var vals []time.Duration
	for _, smp := range s.samples {
		if smp.At >= from {
			vals = append(vals, smp.Staleness)
		}
	}
	return metrics.PercentileOf(vals, q)
}

// MaxStaleness returns the largest observed staleness at or after
// `from`.
func (s *S) MaxStaleness(from time.Duration) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var maxS time.Duration
	for _, smp := range s.samples {
		if smp.At >= from && smp.Staleness > maxS {
			maxS = smp.Staleness
		}
	}
	return maxS
}
