// Package cache implements the freshness-priced read cache: a
// lock-striped, bounded-staleness document cache that spends the
// client's declared staleness budget locally before paying the
// network.
//
// The core idea (Decongestant §4.1.2, applied to caching): an entry
// filled from a node that observed staleness s at wall time t is
// provably within any bound Δ at time t+e as long as
//
//	e + s + guardBand ≤ Δ
//
// because real staleness grows at most at wall-clock rate. The cache
// therefore never needs to revalidate an entry against the cluster —
// it prices each hit by the entry's age plus its fill staleness and
// compares against the read's bound. Entries also carry the fill
// OpTime, so causal sessions can refuse an entry older than their
// token (read-your-writes), and a chunk version, so a router-side
// cache drops entries owned by a migrated chunk.
//
// Committed documents are copy-on-write immutable, so hits hand back
// the cached storage.Document without cloning: the hit path performs
// zero allocations.
//
// The cache is clocked externally: every operation takes `now`, the
// caller's sim clock reading, so virtual-time runs stay deterministic
// and no cache code ever consults time.Now().
package cache

import (
	"sync"
	"time"

	"decongestant/internal/obs"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// Key identifies one cached point read.
type Key struct {
	Collection string
	ID         string
}

// Config tunes one cache instance. Zero values take defaults.
type Config struct {
	// MaxBytes bounds the cache's approximate payload size; the
	// least-recently-used entries are evicted past it. Default 8 MiB.
	MaxBytes int
	// GuardBandSecs widens the validity test to absorb clock skew
	// between fill and hit (the ε of the lease guard band). Default 1.
	GuardBandSecs int64
	// Stripes is the number of independently locked segments, rounded
	// up to a power of two. Default 16.
	Stripes int
	// NaiveTTLSecs switches the cache to a fixed-TTL validity rule that
	// ignores both the read's bound and the entry's fill staleness —
	// the strawman arm EXPERIMENTS.md uses to show why pricing matters.
	// 0 (default) keeps the freshness-priced rule.
	NaiveTTLSecs int64
	// FlightWait bounds how long a singleflight follower waits for the
	// leader's fill before giving up and fetching itself (covers a
	// leader that errors between registration and broadcast). Default
	// 2ms.
	FlightWait time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 8 << 20
	}
	if cfg.GuardBandSecs == 0 {
		cfg.GuardBandSecs = 1
	}
	if cfg.Stripes == 0 {
		cfg.Stripes = 16
	}
	n := 1
	for n < cfg.Stripes {
		n <<= 1
	}
	cfg.Stripes = n
	if cfg.FlightWait == 0 {
		cfg.FlightWait = 2 * time.Millisecond
	}
	return cfg
}

type entry struct {
	key  Key
	doc  storage.Document
	enc  *storage.EncodedDoc // optional pre-encoded form (router cache)
	wall time.Duration       // sim clock at fill
	// fillStalenessSecs is the staleness the serving node observed at
	// fill time; fillOpTime is its lastApplied, the floor for causal
	// token checks.
	fillStalenessSecs int64
	fillOpTime        oplog.OpTime
	chunkVersion      uint64
	bytes             int
	prev, next        *entry // intrusive LRU, head = most recent
}

type flight struct {
	gate sim.Gate
}

type stripe struct {
	mu       sync.Mutex
	entries  map[Key]*entry
	inflight map[Key]*flight
	head     *entry
	tail     *entry
	bytes    int
}

// Cache is one freshness-priced cache instance. Stripe mutexes are
// leaf locks: no cluster, sharding, or storage lock is ever acquired
// while one is held (DESIGN.md §15).
type Cache struct {
	cfg     Config
	env     sim.Env
	stripes []stripe
	mask    uint64
	budget  int // per-stripe byte budget

	hits          *obs.Counter
	misses        *obs.Counter
	expired       *obs.Counter
	evictions     *obs.Counter
	invalidations *obs.Counter
	collapsed     *obs.Counter
}

// New builds a cache. reg may be nil; then the cache registers its
// counters in a private registry (Stats still works).
func New(env sim.Env, cfg Config, reg *obs.Registry) *Cache {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Cache{
		cfg:           cfg,
		env:           env,
		stripes:       make([]stripe, cfg.Stripes),
		mask:          uint64(cfg.Stripes - 1),
		budget:        cfg.MaxBytes / cfg.Stripes,
		hits:          reg.Counter("cache.hits"),
		misses:        reg.Counter("cache.misses"),
		expired:       reg.Counter("cache.expired"),
		evictions:     reg.Counter("cache.evictions"),
		invalidations: reg.Counter("cache.invalidations"),
		collapsed:     reg.Counter("cache.fills_collapsed"),
	}
	for i := range c.stripes {
		c.stripes[i].entries = make(map[Key]*entry)
		c.stripes[i].inflight = make(map[Key]*flight)
	}
	return c
}

// EffectiveConfig reports the configuration after defaults were
// applied — what the cache is actually running with.
func (c *Cache) EffectiveConfig() Config { return c.cfg }

func (c *Cache) stripe(k Key) *stripe {
	// Inline FNV-1a: hash/fnv would allocate on the hit path.
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.Collection); i++ {
		h ^= uint64(k.Collection[i])
		h *= 1099511628211
	}
	h *= 1099511628211 // field separator
	for i := 0; i < len(k.ID); i++ {
		h ^= uint64(k.ID[i])
		h *= 1099511628211
	}
	return &c.stripes[h&c.mask]
}

func ceilSecs(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + time.Second - 1) / time.Second)
}

// Hit describes a served cache entry: the effective staleness priced
// into the hit (fill staleness plus entry age, in whole seconds) —
// which the caller MUST feed through the freshness auditor — and the
// fill OpTime, the floor a causal session advances its token to.
type Hit struct {
	EffSecs    int64
	FillOpTime oplog.OpTime
}

// Get looks up key and prices its validity against the read's bound.
// On a hit it returns the shared immutable document (never mutate it)
// and the hit metadata. version is the caller's chunk-version
// expectation (0 when unsharded); a stale-version entry is dropped
// and misses.
//
// A time-invalid entry is left in place: it may still satisfy a
// looser bound from another session, and LRU pressure reclaims it
// eventually. The hit path allocates nothing.
func (c *Cache) Get(now time.Duration, key Key, boundSecs int64, after oplog.OpTime, version uint64) (storage.Document, Hit, bool) {
	s := c.stripe(key)
	s.mu.Lock()
	e, hit, ok := c.lookupLocked(s, now, key, boundSecs, after, version)
	if !ok {
		return nil, Hit{}, false
	}
	s.moveFrontLocked(e)
	doc := e.doc
	s.mu.Unlock()
	c.hits.Inc(1)
	return doc, hit, true
}

// GetEncoded is Get for callers that serve wire frames: it returns the
// entry's pre-encoded form (entries stored without one miss).
func (c *Cache) GetEncoded(now time.Duration, key Key, boundSecs int64, after oplog.OpTime, version uint64) (*storage.EncodedDoc, Hit, bool) {
	s := c.stripe(key)
	s.mu.Lock()
	e, hit, ok := c.lookupLocked(s, now, key, boundSecs, after, version)
	if !ok {
		return nil, Hit{}, false
	}
	if e.enc == nil {
		s.mu.Unlock()
		c.misses.Inc(1)
		return nil, Hit{}, false
	}
	s.moveFrontLocked(e)
	enc := e.enc
	s.mu.Unlock()
	c.hits.Inc(1)
	return enc, hit, true
}

// lookupLocked finds and validates an entry under s.mu. On a miss it
// unlocks s and bumps the relevant counters; on a hit it returns with
// s.mu still held.
func (c *Cache) lookupLocked(s *stripe, now time.Duration, key Key, boundSecs int64, after oplog.OpTime, version uint64) (*entry, Hit, bool) {
	e := s.entries[key]
	if e == nil {
		s.mu.Unlock()
		c.misses.Inc(1)
		return nil, Hit{}, false
	}
	if e.chunkVersion != version {
		s.removeLocked(e)
		s.mu.Unlock()
		c.invalidations.Inc(1)
		c.misses.Inc(1)
		return nil, Hit{}, false
	}
	eff := e.fillStalenessSecs + ceilSecs(now-e.wall)
	var valid bool
	if c.cfg.NaiveTTLSecs > 0 {
		// Strawman: fixed TTL on wall age, blind to fill staleness and
		// to the bound. EXPERIMENTS.md shows this arm violating bounds
		// under lag sawtooth while the priced rule never does.
		valid = now-e.wall <= time.Duration(c.cfg.NaiveTTLSecs)*time.Second
	} else {
		valid = boundSecs > 0 && eff+c.cfg.GuardBandSecs <= boundSecs
	}
	if !valid {
		s.mu.Unlock()
		c.expired.Inc(1)
		c.misses.Inc(1)
		return nil, Hit{}, false
	}
	if e.fillOpTime.Before(after) {
		// The session has seen writes newer than this entry; serving it
		// would break read-your-writes. Keep the entry for sessions
		// with older tokens.
		s.mu.Unlock()
		c.misses.Inc(1)
		return nil, Hit{}, false
	}
	return e, Hit{EffSecs: eff, FillOpTime: e.fillOpTime}, true
}

// Put fills (or refreshes) an entry. doc must be a committed
// copy-on-write snapshot — the cache shares it, never clones it.
// fillStalenessSecs and fillOpTime come from the serving node's
// response; version is the router's chunk version (0 when unsharded).
func (c *Cache) Put(now time.Duration, key Key, doc storage.Document, fillStalenessSecs int64, fillOpTime oplog.OpTime, version uint64) {
	c.put(now, key, doc, nil, fillStalenessSecs, fillOpTime, version)
}

// PutEncoded is Put that also retains the document's encoded form so
// wire-serving callers can hit without re-encoding.
func (c *Cache) PutEncoded(now time.Duration, key Key, enc *storage.EncodedDoc, fillStalenessSecs int64, fillOpTime oplog.OpTime, version uint64) {
	c.put(now, key, enc.Doc(), enc, fillStalenessSecs, fillOpTime, version)
}

func (c *Cache) put(now time.Duration, key Key, doc storage.Document, enc *storage.EncodedDoc, fillStalenessSecs int64, fillOpTime oplog.OpTime, version uint64) {
	if doc == nil {
		return
	}
	size := len(key.Collection) + len(key.ID) + approxSize(doc)
	s := c.stripe(key)
	s.mu.Lock()
	if e := s.entries[key]; e != nil {
		// Refresh in place, but never regress: a concurrent slower fill
		// carrying an older snapshot must not clobber a newer one.
		if fillOpTime.Before(e.fillOpTime) {
			s.mu.Unlock()
			return
		}
		s.bytes += size - e.bytes
		e.doc, e.enc, e.wall = doc, enc, now
		e.fillStalenessSecs, e.fillOpTime, e.chunkVersion = fillStalenessSecs, fillOpTime, version
		e.bytes = size
		s.moveFrontLocked(e)
	} else {
		e := &entry{
			key: key, doc: doc, enc: enc, wall: now,
			fillStalenessSecs: fillStalenessSecs,
			fillOpTime:        fillOpTime,
			chunkVersion:      version,
			bytes:             size,
		}
		s.entries[key] = e
		s.pushFrontLocked(e)
		s.bytes += size
	}
	var evicted uint64
	for s.bytes > c.budget && s.tail != nil {
		s.removeLocked(s.tail)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Inc(evicted)
	}
}

// BeginFill elects a singleflight leader for a missing key. It returns
// true when the caller became leader — it must fetch and then call
// EndFill (even on error). It returns false after waiting for the
// current leader, at which point the caller should re-check Get before
// fetching itself.
func (c *Cache) BeginFill(p sim.Proc, key Key) bool {
	s := c.stripe(key)
	s.mu.Lock()
	f := s.inflight[key]
	if f == nil {
		f = &flight{gate: c.env.NewGate()}
		s.inflight[key] = f
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()
	c.collapsed.Inc(1)
	// The timeout covers a broadcast that fired between unlock and
	// wait, and a leader that died without filling.
	f.gate.WaitTimeout(p, c.cfg.FlightWait)
	return false
}

// EndFill releases the singleflight slot taken by BeginFill and wakes
// all collapsed followers.
func (c *Cache) EndFill(key Key) {
	s := c.stripe(key)
	s.mu.Lock()
	f := s.inflight[key]
	delete(s.inflight, key)
	s.mu.Unlock()
	if f != nil {
		f.gate.Broadcast()
	}
}

// InvalidateKey drops one entry — the write-through hook for local
// writes (insert/update/delete of that id).
func (c *Cache) InvalidateKey(key Key) {
	s := c.stripe(key)
	s.mu.Lock()
	e := s.entries[key]
	if e != nil {
		s.removeLocked(e)
	}
	s.mu.Unlock()
	if e != nil {
		c.invalidations.Inc(1)
	}
}

// InvalidateRange drops every entry of collection whose id lies in
// [min, max) (max == "" means unbounded above) — the move_chunk hook.
// It scans all stripes; migrations are rare enough that O(entries) is
// fine, and each stripe is only locked for its own scan.
func (c *Cache) InvalidateRange(collection, min, max string) {
	var dropped uint64
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		for k, e := range s.entries {
			if k.Collection != collection {
				continue
			}
			if k.ID < min || (max != "" && k.ID >= max) {
				continue
			}
			s.removeLocked(e)
			dropped++
		}
		s.mu.Unlock()
	}
	if dropped > 0 {
		c.invalidations.Inc(dropped)
	}
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits, Misses, Expired    uint64
	Evictions, Invalidations uint64
	FillsCollapsed           uint64
	Entries                  int
	Bytes                    int
}

// Snapshot returns current counters and occupancy.
func (c *Cache) Snapshot() Stats {
	st := Stats{
		Hits:           c.hits.Value(),
		Misses:         c.misses.Value(),
		Expired:        c.expired.Value(),
		Evictions:      c.evictions.Value(),
		Invalidations:  c.invalidations.Value(),
		FillsCollapsed: c.collapsed.Value(),
	}
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// ---- intrusive LRU (stripe lock held) ----

func (s *stripe) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *stripe) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *stripe) moveFrontLocked(e *entry) {
	if s.head == e {
		return
	}
	s.unlinkLocked(e)
	s.pushFrontLocked(e)
}

func (s *stripe) removeLocked(e *entry) {
	s.unlinkLocked(e)
	delete(s.entries, e.key)
	s.bytes -= e.bytes
}

// approxSize estimates a document's resident footprint without
// encoding it (encoding would defeat the zero-copy fill).
func approxSize(v any) int {
	switch x := v.(type) {
	case storage.Document:
		n := 48
		for k, fv := range x {
			n += len(k) + 16 + approxSize(fv)
		}
		return n
	case map[string]any:
		n := 48
		for k, fv := range x {
			n += len(k) + 16 + approxSize(fv)
		}
		return n
	case []any:
		n := 24
		for _, fv := range x {
			n += approxSize(fv)
		}
		return n
	case string:
		return 16 + len(x)
	case []byte:
		return 24 + len(x)
	default:
		return 16
	}
}
