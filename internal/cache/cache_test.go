package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func testDoc(id string) storage.Document {
	return storage.Document{"_id": id, "v": int64(1), "payload": "xxxxxxxxxxxxxxxx"}
}

// TestPricedValidity: an entry filled with observed staleness s at
// time t satisfies bound Δ exactly while age + s + guard ≤ Δ.
func TestPricedValidity(t *testing.T) {
	env := sim.NewRealtimeEnv(1)
	defer env.Shutdown()
	c := New(env, Config{GuardBandSecs: 1}, nil)
	k := Key{Collection: "c", ID: "a"}
	fill := 10 * time.Second
	c.Put(fill, k, testDoc("a"), 2, oplog.OpTime{Secs: 10, Inc: 1}, 0)

	// bound 5, fill staleness 2, guard 1: valid while age ≤ 2s.
	if _, hit, ok := c.Get(fill+2*time.Second, k, 5, oplog.Zero, 0); !ok || hit.EffSecs != 4 {
		t.Fatalf("age=2s: ok=%v eff=%d, want hit with eff 4", ok, hit.EffSecs)
	}
	if _, _, ok := c.Get(fill+2*time.Second+time.Millisecond, k, 5, oplog.Zero, 0); ok {
		t.Fatal("age just over 2s must miss under bound 5 (ceil to 3s + fill 2 + guard 1 > 5)")
	}
	// The same aged entry still serves a looser bound.
	if _, hit, ok := c.Get(fill+6*time.Second, k, 10, oplog.Zero, 0); !ok || hit.EffSecs != 8 {
		t.Fatalf("looser bound: ok=%v eff=%d, want hit with eff 8", ok, hit.EffSecs)
	}
	// Unbounded (boundSecs 0) reads never hit the priced cache.
	if _, _, ok := c.Get(fill, k, 0, oplog.Zero, 0); ok {
		t.Fatal("bound 0 must miss")
	}
}

// TestCausalTokenBypass: an entry older than the session token misses
// (read-your-writes), but stays for sessions with older tokens.
func TestCausalTokenBypass(t *testing.T) {
	env := sim.NewRealtimeEnv(1)
	defer env.Shutdown()
	c := New(env, Config{}, nil)
	k := Key{Collection: "c", ID: "a"}
	c.Put(0, k, testDoc("a"), 0, oplog.OpTime{Secs: 5, Inc: 2}, 0)
	if _, _, ok := c.Get(0, k, 30, oplog.OpTime{Secs: 5, Inc: 3}, 0); ok {
		t.Fatal("token ahead of fillOpTime must miss")
	}
	if _, _, ok := c.Get(0, k, 30, oplog.OpTime{Secs: 5, Inc: 2}, 0); !ok {
		t.Fatal("token at fillOpTime must hit")
	}
	if _, _, ok := c.Get(0, k, 30, oplog.Zero, 0); !ok {
		t.Fatal("tokenless read must hit")
	}
}

// TestNaiveTTL: the strawman arm serves on wall age alone, even when
// the effective staleness blows the bound.
func TestNaiveTTL(t *testing.T) {
	env := sim.NewRealtimeEnv(1)
	defer env.Shutdown()
	c := New(env, Config{NaiveTTLSecs: 10}, nil)
	k := Key{Collection: "c", ID: "a"}
	c.Put(0, k, testDoc("a"), 6, oplog.Zero, 0) // filled 6s stale
	// Bound 3 with effective staleness 6+2=8: the priced rule would
	// miss; naive TTL (age 2 ≤ 10) serves it — a bound violation the
	// auditor will catch via the returned effective staleness.
	doc, hit, ok := c.Get(2*time.Second, k, 3, oplog.Zero, 0)
	if !ok || doc == nil || hit.EffSecs != 8 {
		t.Fatalf("naive arm: ok=%v eff=%d, want hit with eff 8", ok, hit.EffSecs)
	}
	if _, _, ok := c.Get(11*time.Second, k, 3, oplog.Zero, 0); ok {
		t.Fatal("past the TTL the naive arm must miss")
	}
}

// TestChunkVersionInvalidation: a version-mismatched entry is dropped.
func TestChunkVersionInvalidation(t *testing.T) {
	env := sim.NewRealtimeEnv(1)
	defer env.Shutdown()
	c := New(env, Config{}, nil)
	k := Key{Collection: "c", ID: "a"}
	c.Put(0, k, testDoc("a"), 0, oplog.Zero, 7)
	if _, _, ok := c.Get(0, k, 30, oplog.Zero, 8); ok {
		t.Fatal("version mismatch must miss")
	}
	// The mismatch evicted it: even the old version misses now.
	if _, _, ok := c.Get(0, k, 30, oplog.Zero, 7); ok {
		t.Fatal("mismatched entry must have been dropped")
	}
	if st := c.Snapshot(); st.Invalidations != 1 || st.Entries != 0 {
		t.Fatalf("snapshot: %+v, want 1 invalidation, 0 entries", st)
	}
}

// TestInvalidateRange: only ids inside [min,max) of the named
// collection drop.
func TestInvalidateRange(t *testing.T) {
	env := sim.NewRealtimeEnv(1)
	defer env.Shutdown()
	c := New(env, Config{}, nil)
	for _, id := range []string{"a", "m", "z"} {
		c.Put(0, Key{Collection: "c", ID: id}, testDoc(id), 0, oplog.Zero, 0)
	}
	c.Put(0, Key{Collection: "other", ID: "m"}, testDoc("m"), 0, oplog.Zero, 0)
	c.InvalidateRange("c", "b", "y")
	hits := func(coll, id string) bool {
		_, _, ok := c.Get(0, Key{Collection: coll, ID: id}, 30, oplog.Zero, 0)
		return ok
	}
	if !hits("c", "a") || hits("c", "m") || !hits("c", "z") || !hits("other", "m") {
		t.Fatal("range invalidation dropped the wrong entries")
	}
	// Unbounded-above range.
	c.InvalidateRange("c", "b", "")
	if hits("c", "z") {
		t.Fatal("unbounded range must drop z")
	}
}

// TestLRUEviction: past the byte budget, the least-recently-used
// entries go first.
func TestLRUEviction(t *testing.T) {
	env := sim.NewRealtimeEnv(1)
	defer env.Shutdown()
	// One stripe so the LRU order is global; tiny budget.
	c := New(env, Config{Stripes: 1, MaxBytes: 600}, nil)
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("k%d", i)
		c.Put(0, Key{Collection: "c", ID: id}, testDoc(id), 0, oplog.Zero, 0)
		// Touch k0 after every insert to keep it hot.
		c.Get(0, Key{Collection: "c", ID: "k0"}, 30, oplog.Zero, 0)
	}
	if _, _, ok := c.Get(0, Key{Collection: "c", ID: "k0"}, 30, oplog.Zero, 0); !ok {
		t.Fatal("hot k0 must survive eviction")
	}
	st := c.Snapshot()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions, got %+v", st)
	}
	if st.Bytes > 600 {
		t.Fatalf("bytes %d over budget", st.Bytes)
	}
}

// TestPutNeverRegresses: a slower concurrent fill carrying an older
// snapshot must not clobber a newer one.
func TestPutNeverRegresses(t *testing.T) {
	env := sim.NewRealtimeEnv(1)
	defer env.Shutdown()
	c := New(env, Config{}, nil)
	k := Key{Collection: "c", ID: "a"}
	newer := storage.Document{"_id": "a", "v": int64(2)}
	c.Put(0, k, newer, 0, oplog.OpTime{Secs: 9}, 0)
	c.Put(0, k, testDoc("a"), 0, oplog.OpTime{Secs: 5}, 0)
	doc, _, ok := c.Get(0, k, 30, oplog.Zero, 0)
	if !ok || doc["v"] != int64(2) {
		t.Fatal("older fill clobbered the newer snapshot")
	}
}

// TestSingleflightCollapse: concurrent misses on one key elect a
// single leader; followers wait and re-check.
func TestSingleflightCollapse(t *testing.T) {
	env := sim.NewRealtimeEnv(1)
	defer env.Shutdown()
	c := New(env, Config{FlightWait: time.Second}, nil)
	k := Key{Collection: "c", ID: "hot"}
	var leaders, fills atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		env.Spawn("reader", func(p sim.Proc) {
			defer wg.Done()
			if _, _, ok := c.Get(p.Now(), k, 30, oplog.Zero, 0); ok {
				return
			}
			if c.BeginFill(p, k) {
				leaders.Add(1)
				time.Sleep(20 * time.Millisecond) // the "network fetch"
				c.Put(p.Now(), k, testDoc("hot"), 0, oplog.Zero, 0)
				fills.Add(1)
				c.EndFill(k)
				return
			}
			// Follower: after the leader finishes the entry must be there.
			if _, _, ok := c.Get(p.Now(), k, 30, oplog.Zero, 0); !ok {
				t.Error("follower re-check missed after leader fill")
			}
		})
	}
	wg.Wait()
	if leaders.Load() != 1 {
		t.Fatalf("leaders = %d, want 1", leaders.Load())
	}
	if got := c.Snapshot().FillsCollapsed; got != 7 {
		t.Fatalf("collapsed = %d, want 7", got)
	}
}

// BenchmarkCacheHitPath is the zero-alloc gate for the hit path: Get
// on a resident, valid entry must not allocate.
func BenchmarkCacheHitPath(b *testing.B) {
	env := sim.NewRealtimeEnv(1)
	defer env.Shutdown()
	c := New(env, Config{}, nil)
	const n = 1024
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key{Collection: "bench", ID: fmt.Sprintf("k%d", i)}
		c.Put(0, keys[i], testDoc(keys[i].ID), 1, oplog.OpTime{Secs: 1}, 0)
	}
	now := time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc, _, ok := c.Get(now, keys[i%n], 30, oplog.Zero, 0)
		if !ok || doc == nil {
			b.Fatal("unexpected miss")
		}
	}
}
