package obs

// Snapshot benchmarks for the PR 6 observability surface. The lookup
// benchmark's contrast is the lazily built name index versus the O(n)
// scan the accessors used before: bench/baseline_pr6.txt was recorded
// with OBS_NOINDEX=1, which strips the index by round-tripping the
// snapshot through JSON (exactly the shape wire-decoded snapshots had,
// and the pre-index cost for every snapshot).
//
//	go test ./internal/obs -bench BenchmarkSnapshot -benchtime 1x -count 3

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"
	"time"
)

// benchSnapshot builds a snapshot shaped like a live server's: a few
// hundred labeled instruments across counters, gauges and histograms.
func benchSnapshot(b *testing.B) (Snapshot, []string) {
	b.Helper()
	reg := NewRegistry()
	var names []string
	for i := 0; i < 160; i++ {
		n := Name("cluster.reads", "node", strconv.Itoa(i))
		reg.Counter(n).Inc(uint64(i))
		names = append(names, n)
		g := Name("replstatus.lag_secs", "node", strconv.Itoa(i))
		reg.Gauge(g).Set(int64(i))
		names = append(names, g)
	}
	for i := 0; i < 32; i++ {
		h := reg.Histogram(Name("wire.request_latency", "op", strconv.Itoa(i)))
		for j := 0; j < 100; j++ {
			h.Observe(time.Duration(j) * time.Microsecond)
		}
	}
	snap := reg.Snapshot()
	if os.Getenv("OBS_NOINDEX") == "1" {
		raw, err := snap.JSON()
		if err != nil {
			b.Fatal(err)
		}
		var stripped Snapshot
		if err := json.Unmarshal(raw, &stripped); err != nil {
			b.Fatal(err)
		}
		snap = stripped
	}
	return snap, names
}

// BenchmarkSnapshotLookup measures Get/CounterValue over every
// instrument name — the export and assertion pattern that was O(n^2)
// over the whole snapshot with linear scans.
func BenchmarkSnapshotLookup(b *testing.B) {
	snap, names := benchSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := snap.Get(names[i%len(names)]); !ok {
			b.Fatal("instrument missing")
		}
	}
}

// BenchmarkSnapshotPrometheus measures rendering the full exposition
// text — the per-scrape cost of the /metrics endpoint.
func BenchmarkSnapshotPrometheus(b *testing.B) {
	snap, _ := benchSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n += len(snap.Prometheus())
	}
	if n == 0 {
		b.Fatal("empty exposition")
	}
}
