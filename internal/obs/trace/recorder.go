package trace

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"decongestant/internal/obs"
)

// Config sizes a Recorder. Zero values take defaults.
type Config struct {
	// RingCap is the per-ring span capacity (default 2048).
	RingCap int
	// Rings is the number of retention rings; spans are filed by
	// Node+1 (ring 0 holds client/driver/server spans with Node -1),
	// clamped into range. Default 1.
	Rings int
	// SampleRate is the initial probabilistic sampling rate in [0,1].
	// Default 0 (off).
	SampleRate float64
	// PinnedCap bounds how many traces can be pinned (retained beyond
	// ring eviction, e.g. freshness-bound violators). Default 64.
	PinnedCap int
}

const pinnedSpanCap = 256

func (c Config) withDefaults() Config {
	if c.RingCap <= 0 {
		c.RingCap = 2048
	}
	if c.Rings <= 0 {
		c.Rings = 1
	}
	if c.PinnedCap <= 0 {
		c.PinnedCap = 64
	}
	return c
}

// spanRing is a bounded overwrite-oldest span buffer.
type spanRing struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	full  bool
	drops uint64
}

func (r *spanRing) add(s Span) (dropped bool) {
	r.mu.Lock()
	if r.full {
		dropped = true
		r.drops++
	}
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
	return dropped
}

// snapshot appends the ring's live spans (optionally filtered by trace
// id; 0 = all) to dst.
func (r *spanRing) snapshot(dst []Span, traceID uint64) []Span {
	r.mu.Lock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	for i := 0; i < n; i++ {
		if traceID == 0 || r.buf[i].Trace == traceID {
			dst = append(dst, r.buf[i])
		}
	}
	r.mu.Unlock()
	return dst
}

func (r *spanRing) reset() (drained []Span) {
	r.mu.Lock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	drained = make([]Span, n)
	copy(drained, r.buf[:n])
	r.next = 0
	r.full = false
	r.mu.Unlock()
	return drained
}

// Recorder records spans into per-node bounded rings, hands out trace
// and span ids, and applies the probabilistic sampling decision. All
// methods are safe for concurrent use.
type Recorder struct {
	cfg   Config
	rings []*spanRing

	// rate holds math.Float64bits of the sampling rate; 0 bits means
	// sampling off, so the StartTrace fast path is one atomic load.
	rate atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	pmu    sync.Mutex
	pinned map[uint64][]Span

	started  atomic.Uint64 // traces originated here
	recorded atomic.Uint64 // spans accepted
	dropped  atomic.Uint64 // spans overwritten before export
	pinDrops atomic.Uint64 // pins refused at PinnedCap
}

// NewRecorder builds a Recorder drawing ids and sampling decisions from
// rng (pass the sim environment's named stream for determinism).
func NewRecorder(rng *rand.Rand, cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:    cfg,
		rings:  make([]*spanRing, cfg.Rings),
		rng:    rng,
		pinned: make(map[uint64][]Span),
	}
	for i := range r.rings {
		r.rings[i] = &spanRing{buf: make([]Span, cfg.RingCap)}
	}
	if cfg.SampleRate > 0 {
		r.SetSampling(cfg.SampleRate)
	}
	return r
}

// SetSampling sets the probabilistic sampling rate in [0,1]; 0 turns
// origination off entirely (forced slow-op traces still record).
func (r *Recorder) SetSampling(rate float64) {
	if rate <= 0 {
		r.rate.Store(0)
		return
	}
	if rate > 1 {
		rate = 1
	}
	r.rate.Store(math.Float64bits(rate))
}

// SampleRate returns the current probabilistic sampling rate.
func (r *Recorder) SampleRate() float64 {
	bits := r.rate.Load()
	if bits == 0 {
		return 0
	}
	return math.Float64frombits(bits)
}

// StartTrace makes the sampling decision for a new operation: it
// returns a live Context with a fresh trace id when sampled and the
// zero Context otherwise. With sampling off the cost is one atomic
// load and zero allocations.
func (r *Recorder) StartTrace() Context {
	bits := r.rate.Load()
	if bits == 0 {
		return Context{}
	}
	rate := math.Float64frombits(bits)
	r.rngMu.Lock()
	sampled := r.rng.Float64() < rate
	var id uint64
	if sampled {
		for id == 0 {
			id = r.rng.Uint64()
		}
	}
	r.rngMu.Unlock()
	if !sampled {
		return Context{}
	}
	r.started.Add(1)
	return Context{TraceID: id}
}

// ForceTrace unconditionally starts a trace — the always-on-slow
// sampling path, which retroactively assigns an id to an op that
// crossed the slow threshold without a client-sampled context.
func (r *Recorder) ForceTrace() Context {
	r.started.Add(1)
	return Context{TraceID: r.NewSpanID()}
}

// NewSpanID returns a fresh nonzero span id.
func (r *Recorder) NewSpanID() uint64 {
	r.rngMu.Lock()
	var id uint64
	for id == 0 {
		id = r.rng.Uint64()
	}
	r.rngMu.Unlock()
	return id
}

func (r *Recorder) ringFor(node int) *spanRing {
	i := node + 1
	if i < 0 || i >= len(r.rings) {
		i = 0
	}
	return r.rings[i]
}

// Record files a finished span. Spans of pinned traces are also copied
// into the pinned store so ring eviction cannot lose them.
func (r *Recorder) Record(s Span) {
	if s.Trace == 0 {
		return
	}
	r.recorded.Add(1)
	if r.ringFor(s.Node).add(s) {
		r.dropped.Add(1)
	}
	r.pmu.Lock()
	if ps, ok := r.pinned[s.Trace]; ok && len(ps) < pinnedSpanCap {
		r.pinned[s.Trace] = append(ps, s)
	}
	r.pmu.Unlock()
}

// Pin retains a trace beyond ring eviction: its spans recorded so far
// are copied out of the rings and future spans are appended as they
// arrive. Used by the freshness auditor to keep bound violators.
func (r *Recorder) Pin(traceID uint64) {
	if traceID == 0 {
		return
	}
	r.pmu.Lock()
	_, exists := r.pinned[traceID]
	if !exists && len(r.pinned) >= r.cfg.PinnedCap {
		r.pmu.Unlock()
		r.pinDrops.Add(1)
		return
	}
	if !exists {
		r.pinned[traceID] = nil
	}
	r.pmu.Unlock()
	if exists {
		return
	}
	var got []Span
	for _, ring := range r.rings {
		got = ring.snapshot(got, traceID)
	}
	if len(got) == 0 {
		return
	}
	r.pmu.Lock()
	if ps, ok := r.pinned[traceID]; ok {
		room := pinnedSpanCap - len(ps)
		if room > 0 {
			if len(got) > room {
				got = got[:room]
			}
			r.pinned[traceID] = append(ps, got...)
		}
	}
	r.pmu.Unlock()
}

// Pinned lists the pinned trace ids.
func (r *Recorder) Pinned() []uint64 {
	r.pmu.Lock()
	ids := make([]uint64, 0, len(r.pinned))
	for id := range r.pinned {
		ids = append(ids, id)
	}
	r.pmu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TraceSpans returns every retained span of one trace (rings plus
// pinned store), deduplicated by span id and sorted by start time.
func (r *Recorder) TraceSpans(traceID uint64) []Span {
	if traceID == 0 {
		return nil
	}
	var got []Span
	for _, ring := range r.rings {
		got = ring.snapshot(got, traceID)
	}
	r.pmu.Lock()
	got = append(got, r.pinned[traceID]...)
	r.pmu.Unlock()
	return dedupeSort(got)
}

// Recent returns up to limit of the most recently started retained
// spans across all rings, newest first.
func (r *Recorder) Recent(limit int) []Span {
	if limit <= 0 {
		limit = 256
	}
	var got []Span
	for _, ring := range r.rings {
		got = ring.snapshot(got, 0)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Start > got[j].Start })
	if len(got) > limit {
		got = got[:limit]
	}
	return got
}

// Drain removes and returns every retained span (rings and pinned
// store) — the client-side trace_push path, which forwards locally
// recorded spans to the server so one trace op sees the whole tree.
func (r *Recorder) Drain() []Span {
	var got []Span
	for _, ring := range r.rings {
		got = append(got, ring.reset()...)
	}
	r.pmu.Lock()
	for id, ps := range r.pinned {
		got = append(got, ps...)
		delete(r.pinned, id)
	}
	r.pmu.Unlock()
	return dedupeSort(got)
}

// Import files externally recorded spans (the server side of
// trace_push). Spans keep their original ids; ring placement follows
// their Node as usual.
func (r *Recorder) Import(spans []Span) {
	for _, s := range spans {
		r.Record(s)
	}
}

// Register exposes the recorder's internals on reg: gauges for spans
// recorded/dropped, traces started/pinned, and pin refusals, refreshed
// at snapshot time.
func (r *Recorder) Register(reg *obs.Registry) {
	started := reg.Gauge("trace.traces_started")
	recorded := reg.Gauge("trace.spans_recorded")
	dropped := reg.Gauge("trace.spans_dropped")
	pinned := reg.Gauge("trace.traces_pinned")
	pinDrops := reg.Gauge("trace.pin_refusals")
	reg.RegisterCollector(func() {
		started.Set(int64(r.started.Load()))
		recorded.Set(int64(r.recorded.Load()))
		dropped.Set(int64(r.dropped.Load()))
		r.pmu.Lock()
		pinned.Set(int64(len(r.pinned)))
		r.pmu.Unlock()
		pinDrops.Set(int64(r.pinDrops.Load()))
	})
}

func dedupeSort(spans []Span) []Span {
	if len(spans) == 0 {
		return spans
	}
	seen := make(map[uint64]struct{}, len(spans))
	out := spans[:0]
	for _, s := range spans {
		if _, ok := seen[s.ID]; ok {
			continue
		}
		seen[s.ID] = struct{}{}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// IDString formats a trace id the way the trace wire op and the
// /debug/trace endpoint expect it back: lowercase hex.
func IDString(id uint64) string { return strconv.FormatUint(id, 16) }

// ParseID parses an IDString-formatted trace id.
func ParseID(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }
