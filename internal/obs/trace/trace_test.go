package trace

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"decongestant/internal/obs"
)

func newTestRecorder(cfg Config) *Recorder {
	return NewRecorder(rand.New(rand.NewSource(42)), cfg)
}

func TestSamplingOffIsZero(t *testing.T) {
	r := newTestRecorder(Config{})
	for i := 0; i < 100; i++ {
		if ctx := r.StartTrace(); ctx.Live() {
			t.Fatalf("sampling off produced live context %+v", ctx)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		_ = r.StartTrace()
	})
	if allocs != 0 {
		t.Fatalf("StartTrace with sampling off allocated %.1f/op, want 0", allocs)
	}
}

func TestSamplingRate(t *testing.T) {
	r := newTestRecorder(Config{SampleRate: 1})
	ctx := r.StartTrace()
	if !ctx.Live() {
		t.Fatal("rate 1 did not sample")
	}
	r.SetSampling(0.5)
	live := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if r.StartTrace().Live() {
			live++
		}
	}
	if live < n/3 || live > 2*n/3 {
		t.Fatalf("rate 0.5 sampled %d/%d", live, n)
	}
}

func TestForceTraceAlwaysLive(t *testing.T) {
	r := newTestRecorder(Config{})
	if !r.ForceTrace().Live() {
		t.Fatal("ForceTrace returned dead context")
	}
}

func TestRecordRetrieveSorted(t *testing.T) {
	r := newTestRecorder(Config{Rings: 4, RingCap: 16})
	const tid = 7
	r.Record(Span{Trace: tid, ID: 2, Name: "b", Node: 1, Start: 20})
	r.Record(Span{Trace: tid, ID: 1, Name: "a", Node: -1, Start: 10})
	r.Record(Span{Trace: 99, ID: 3, Name: "other", Node: 0, Start: 5})
	got := r.TraceSpans(tid)
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("TraceSpans = %+v", got)
	}
	if len(r.Recent(10)) != 3 {
		t.Fatalf("Recent = %+v", r.Recent(10))
	}
}

func TestRingEvictionAndPinning(t *testing.T) {
	r := newTestRecorder(Config{Rings: 1, RingCap: 8})
	const victim = 5
	r.Record(Span{Trace: victim, ID: 100, Name: "keep", Start: 1})
	r.Pin(victim)
	// Flood the ring so the victim's span is overwritten.
	for i := 0; i < 64; i++ {
		r.Record(Span{Trace: 1, ID: uint64(200 + i), Name: "noise", Start: time.Duration(i)})
	}
	var inRing []Span
	inRing = r.rings[0].snapshot(inRing, victim)
	if len(inRing) != 0 {
		t.Fatalf("victim span still in ring: %+v", inRing)
	}
	got := r.TraceSpans(victim)
	if len(got) != 1 || got[0].Name != "keep" {
		t.Fatalf("pinned span lost: %+v", got)
	}
	// Spans recorded after pinning are retained too.
	r.Record(Span{Trace: victim, ID: 101, Name: "late", Start: 2})
	for i := 0; i < 64; i++ {
		r.Record(Span{Trace: 1, ID: uint64(400 + i), Name: "noise", Start: time.Duration(i)})
	}
	if got := r.TraceSpans(victim); len(got) != 2 {
		t.Fatalf("post-pin span lost: %+v", got)
	}
	if ids := r.Pinned(); len(ids) != 1 || ids[0] != victim {
		t.Fatalf("Pinned = %v", ids)
	}
}

func TestPinnedCap(t *testing.T) {
	r := newTestRecorder(Config{PinnedCap: 2})
	r.Pin(1)
	r.Pin(2)
	r.Pin(3)
	if n := len(r.Pinned()); n != 2 {
		t.Fatalf("pinned %d traces, cap 2", n)
	}
	if r.pinDrops.Load() != 1 {
		t.Fatalf("pinDrops = %d", r.pinDrops.Load())
	}
}

func TestDrainImport(t *testing.T) {
	src := newTestRecorder(Config{})
	src.Record(Span{Trace: 9, ID: 1, Name: "client.read", Node: -1})
	src.Record(Span{Trace: 9, ID: 2, Name: "driver.read", Node: -1})
	drained := src.Drain()
	if len(drained) != 2 {
		t.Fatalf("Drain = %+v", drained)
	}
	if got := src.TraceSpans(9); len(got) != 0 {
		t.Fatalf("spans survived Drain: %+v", got)
	}
	dst := newTestRecorder(Config{})
	dst.Import(drained)
	if got := dst.TraceSpans(9); len(got) != 2 {
		t.Fatalf("Import lost spans: %+v", got)
	}
}

func TestRegisterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	r := newTestRecorder(Config{SampleRate: 1})
	r.Register(reg)
	r.StartTrace()
	r.Record(Span{Trace: 3, ID: 1, Name: "x"})
	snap := reg.Snapshot()
	if v := snap.GaugeValue("trace.spans_recorded"); v != 1 {
		t.Fatalf("spans_recorded = %d", v)
	}
	if v := snap.GaugeValue("trace.traces_started"); v != 1 {
		t.Fatalf("traces_started = %d", v)
	}
}

func TestOpRegistry(t *testing.T) {
	g := NewOpRegistry()
	id1 := g.Register("find", "users", 0, 7, 100)
	id2 := g.Register("get", "users", 1, 0, 200)
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	snap := g.Snapshot(1100)
	if len(snap) != 2 || snap[0].ID != id1 || snap[0].RunningNS != 1000 || snap[1].RunningNS != 900 {
		t.Fatalf("Snapshot = %+v", snap)
	}
	if snap[0].Trace != 7 {
		t.Fatalf("trace id lost: %+v", snap[0])
	}
	g.Done(id1)
	g.Done(id2)
	if g.Len() != 0 {
		t.Fatalf("Len after Done = %d", g.Len())
	}
}

// TestRingStress hammers the recorder with concurrent record, export,
// pin, and drain traffic; run under -race it is the satellite's span
// ring stress test.
func TestRingStress(t *testing.T) {
	r := newTestRecorder(Config{Rings: 4, RingCap: 64, SampleRate: 1})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx := r.StartTrace()
				r.Record(Span{Trace: ctx.TraceID, ID: r.NewSpanID(), Name: "stress", Node: w - 1, Start: time.Duration(i)})
				if i%17 == 0 {
					r.Pin(ctx.TraceID)
				}
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch w {
				case 0:
					_ = r.Recent(32)
				case 1:
					_ = r.TraceSpans(uint64(i))
				case 2:
					if i%50 == 0 {
						r.Import(r.Drain())
					} else {
						_ = r.Pinned()
					}
				}
			}
		}(w)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}
