// Package trace provides lightweight, allocation-conscious operation
// tracing for the Decongestant stack: compact trace contexts that ride
// the wire with each sampled request, spans recorded into per-node
// bounded rings on every hop (driver read, balancer decision, server
// admission/dispatch, node exec, w:majority wait), and a live
// currentOp registry of in-flight server operations.
//
// The design goal is that tracing costs nothing when it is off: a
// zero-valued Context is "not sampled", carries zero wire bytes on
// protocol v2, and every hot-path hook is a single comparison against
// it. Sampling is probabilistic at the originator (driver/session or
// wire client) plus always-on-slow at the server, which retroactively
// assigns a trace id to any op that crossed the slow-op threshold so
// its dispatch span is retrievable even when the client did not sample.
package trace

import "time"

// Route is the balancer's routing-decision snapshot linked into a
// sampled op's trace context: which preference the biased coin chose,
// why the balance fraction was where it was (the period-end reason
// code), and the staleness estimate the gate saw at decision time.
type Route struct {
	Pref      string `json:"pref"`
	Reason    string `json:"reason,omitempty"`
	FracPct   int    `json:"frac_pct"`
	StaleSecs int64  `json:"stale_secs"`
	Gated     bool   `json:"gated,omitempty"`
}

// Context is the compact trace context propagated end-to-end with one
// operation. The zero value means "not sampled" and every propagation
// hook treats it as free to ignore. SpanID is the parent span for the
// next hop; Route, when present, is the balancer decision that routed
// the op (attached by the core router, read back by the server's
// slow-op log).
type Context struct {
	TraceID uint64 `json:"tid"`
	SpanID  uint64 `json:"sid,omitempty"`
	Route   *Route `json:"route,omitempty"`
}

// Live reports whether the operation is sampled: only live contexts
// cost anything downstream.
func (c Context) Live() bool { return c.TraceID != 0 }

// Attr is one key/value annotation on a span. A fixed struct (rather
// than a map) keeps span recording to a single slice allocation.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Span is one timed hop of a traced operation. Node is the serving
// replica for node-local spans and -1 for client/driver/server-side
// spans that precede node selection. Start is the recorder-local
// monotonic clock (the sim environment's Now for in-process spans);
// span trees from different processes are ordered by parent links, not
// by comparing Start across processes.
type Span struct {
	Trace  uint64        `json:"trace"`
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Node   int           `json:"node"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

var epoch = time.Now()

// Now is the wall-clock span timestamp for recorders running outside a
// sim environment (the wire client): monotonic time since process
// start, matching the shape (not the base) of sim time.
func Now() time.Duration { return time.Since(epoch) }
