package trace

import (
	"sort"
	"sync"
	"time"
)

// OpInfo describes one in-flight (or, in a snapshot, then-in-flight)
// server operation — the currentOp surface. RunningNS is filled at
// snapshot time from the caller's clock.
type OpInfo struct {
	ID         uint64 `json:"opid"`
	Op         string `json:"op"`
	Collection string `json:"collection,omitempty"`
	Node       int    `json:"node"`
	Trace      uint64 `json:"trace,omitempty"`

	Start     time.Duration `json:"start_ns"`
	RunningNS int64         `json:"running_ns"`
}

// OpRegistry tracks in-flight operations for currentOp. It is a plain
// mutexed map: registration is two short critical sections per op, and
// the server only enables it when configured to.
type OpRegistry struct {
	mu  sync.Mutex
	seq uint64
	ops map[uint64]OpInfo
}

// NewOpRegistry returns an empty registry.
func NewOpRegistry() *OpRegistry {
	return &OpRegistry{ops: make(map[uint64]OpInfo)}
}

// Register files an op as in-flight and returns its opid for Done.
func (g *OpRegistry) Register(op, collection string, node int, traceID uint64, start time.Duration) uint64 {
	g.mu.Lock()
	g.seq++
	id := g.seq
	g.ops[id] = OpInfo{
		ID:         id,
		Op:         op,
		Collection: collection,
		Node:       node,
		Trace:      traceID,
		Start:      start,
	}
	g.mu.Unlock()
	return id
}

// Done removes a finished op.
func (g *OpRegistry) Done(id uint64) {
	g.mu.Lock()
	delete(g.ops, id)
	g.mu.Unlock()
}

// Snapshot lists the in-flight ops, longest-running first, with
// RunningNS computed against now.
func (g *OpRegistry) Snapshot(now time.Duration) []OpInfo {
	g.mu.Lock()
	out := make([]OpInfo, 0, len(g.ops))
	for _, op := range g.ops {
		op.RunningNS = int64(now - op.Start)
		if op.RunningNS < 0 {
			op.RunningNS = 0
		}
		out = append(out, op)
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].RunningNS != out[j].RunningNS {
			return out[i].RunningNS > out[j].RunningNS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len reports how many ops are currently in flight.
func (g *OpRegistry) Len() int {
	g.mu.Lock()
	n := len(g.ops)
	g.mu.Unlock()
	return n
}
