// Package obs is the unified observability registry: goroutine-safe
// named instruments (monotone counters, gauges, latency histograms)
// that every layer of the stack — cluster nodes, the driver, the Read
// Balancer, and the wire server — registers into, plus labeled
// snapshots with text and JSON exporters so the same telemetry can be
// read in-process, logged periodically, or fetched over TCP via the
// wire protocol's `metrics` command.
//
// Counters and gauges are lock-free (sync/atomic); histograms wrap
// the single-writer metrics.Histogram in a mutex. Instruments are
// get-or-create by name, so independent components referring to the
// same name share one instrument. Labels are encoded into the name
// with Name, e.g. Name("cluster.reads", "node", "0") —
// "cluster.reads{node=0}" — keeping lookups a single map access.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decongestant/internal/metrics"
)

// Counter is a monotone event counter, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds n events. A nil counter is a no-op, so callers never need
// to guard instrument lookups.
func (c *Counter) Inc(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the count so far (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set records the current level. A nil gauge is a no-op.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a concurrency-safe wrapper over the log-bucketed
// metrics.Histogram.
type Histogram struct {
	mu sync.Mutex
	h  *metrics.Histogram
}

// Observe records one duration. A nil histogram is a no-op.
func (h *Histogram) Observe(v time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Record(v)
	h.mu.Unlock()
}

// ObserveN records one dimensionless value — a batch size, a queue
// depth — in the same buckets. Snapshots report such histograms in
// raw units rather than nanoseconds; the instrument name should make
// the unit obvious.
func (h *Histogram) ObserveN(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Record(time.Duration(v))
	h.mu.Unlock()
}

// Stats summarizes the observations so far.
func (h *Histogram) Stats() HistStats {
	if h == nil {
		return HistStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistStats{
		Count: h.h.Count(),
		Sum:   h.h.Sum(),
		Mean:  h.h.Mean(),
		Min:   h.h.Min(),
		Max:   h.h.Max(),
		P50:   h.h.Percentile(0.50),
		P80:   h.h.Percentile(0.80),
		P99:   h.h.Percentile(0.99),
	}
}

// HistStats is one histogram's summary inside a snapshot. Durations
// serialize as nanoseconds.
type HistStats struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum"`
	Mean  time.Duration `json:"mean"`
	Min   time.Duration `json:"min"`
	Max   time.Duration `json:"max"`
	P50   time.Duration `json:"p50"`
	P80   time.Duration `json:"p80"`
	P99   time.Duration `json:"p99"`
}

// Instrument kinds inside a snapshot.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Instrument is one named reading inside a snapshot.
type Instrument struct {
	Name  string     `json:"name"`
	Kind  string     `json:"kind"`
	Count uint64     `json:"value,omitempty"` // counter total
	Value int64      `json:"level,omitempty"` // gauge level
	Hist  *HistStats `json:"hist,omitempty"`
}

// Snapshot is a point-in-time reading of every instrument, sorted by
// name. It is plain data, JSON-round-trippable for the wire protocol.
//
// Snapshots built by this package carry a lazily built name index, so
// repeated Get/CounterValue lookups — the export and assertion paths
// run one per instrument — stay O(1) instead of rescanning the
// instrument list. The index is shared by copies of the snapshot and
// built at most once. Snapshots decoded from JSON have no index and
// fall back to a linear scan.
type Snapshot struct {
	Instruments []Instrument `json:"instruments"`

	idx *snapIndex
}

// snapIndex is the lazily built name → position index of a snapshot.
// It lives behind a pointer so value copies of a Snapshot share one
// index, and sync.Once makes the lazy build race-free.
type snapIndex struct {
	once sync.Once
	m    map[string]int
}

// Registry holds named instruments. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// RegisterCollector registers fn to run at the start of every
// Snapshot call, before instruments are read. Collectors compute
// scrape-time instrument families — queue depths, replication lag,
// collection statistics, process memory — that would be wasteful to
// maintain on the hot paths; they typically Set gauges in this same
// registry. Collectors run outside the registry lock (they may create
// instruments) and must not block.
func (r *Registry) RegisterCollector(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil (whose methods are no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{h: metrics.NewHistogram()}
		r.hists[name] = h
	}
	return h
}

// Snapshot reads every instrument. The registry lock is held only
// while collecting the instrument pointers, not while summarizing, so
// a snapshot never stalls hot-path increments for long.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	collectors := r.collectors
	r.mu.Unlock()
	// Scrape-time collectors refresh their gauge families before the
	// instrument maps are copied; they may get-or-create instruments,
	// so they run outside the lock.
	for _, fn := range collectors {
		fn()
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var s Snapshot
	for name, c := range counters {
		s.Instruments = append(s.Instruments, Instrument{Name: name, Kind: KindCounter, Count: c.Value()})
	}
	for name, g := range gauges {
		s.Instruments = append(s.Instruments, Instrument{Name: name, Kind: KindGauge, Value: g.Value()})
	}
	for name, h := range hists {
		st := h.Stats()
		s.Instruments = append(s.Instruments, Instrument{Name: name, Kind: KindHistogram, Hist: &st})
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Instruments, func(i, j int) bool {
		return s.Instruments[i].Name < s.Instruments[j].Name
	})
	// The instrument set is final from here on; hand out a fresh lazy
	// index (building it eagerly would charge every snapshot for the
	// lookups only some of them perform).
	s.idx = &snapIndex{}
}

// Name formats an instrument name with labels: Name("x", "a", "1",
// "b", "2") is "x{a=1,b=2}". Labels are sorted by key so the same
// label set always produces the same name. An odd trailing key is
// ignored.
func Name(base string, kv ...string) string {
	n := len(kv) / 2
	if n == 0 {
		return base
	}
	type pair struct{ k, v string }
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{kv[2*i], kv[2*i+1]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Get returns the named instrument reading, if present. Snapshots
// built by this package answer through a name index built on first
// lookup; snapshots assembled by hand or decoded from JSON fall back
// to a linear scan.
func (s Snapshot) Get(name string) (Instrument, bool) {
	if ix := s.idx; ix != nil {
		ix.once.Do(func() {
			m := make(map[string]int, len(s.Instruments))
			for i := range s.Instruments {
				m[s.Instruments[i].Name] = i
			}
			ix.m = m
		})
		i, ok := ix.m[name]
		if !ok {
			return Instrument{}, false
		}
		return s.Instruments[i], true
	}
	for _, in := range s.Instruments {
		if in.Name == name {
			return in, true
		}
	}
	return Instrument{}, false
}

// CounterValue returns the named counter's total (0 when absent).
func (s Snapshot) CounterValue(name string) uint64 {
	in, _ := s.Get(name)
	return in.Count
}

// GaugeValue returns the named gauge's level (0 when absent).
func (s Snapshot) GaugeValue(name string) int64 {
	in, _ := s.Get(name)
	return in.Value
}

// Merge returns a snapshot containing s's instruments plus those of
// every other snapshot, re-sorted. Duplicate names are kept as-is
// (they can arise when a pushed client snapshot reuses a server-side
// name); consumers that need uniqueness should prefix sources.
func (s Snapshot) Merge(others ...Snapshot) Snapshot {
	out := Snapshot{Instruments: append([]Instrument(nil), s.Instruments...)}
	for _, o := range others {
		out.Instruments = append(out.Instruments, o.Instruments...)
	}
	out.sort()
	return out
}

// Prefixed returns a copy of the snapshot with every instrument name
// prefixed — used to namespace pushed client snapshots by source.
func (s Snapshot) Prefixed(prefix string) Snapshot {
	out := Snapshot{Instruments: make([]Instrument, len(s.Instruments)), idx: &snapIndex{}}
	for i, in := range s.Instruments {
		in.Name = prefix + in.Name
		out.Instruments[i] = in
	}
	return out
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the snapshot one instrument per line, the
// serverStatus-style human format logged by cmd/replsetd.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, in := range s.Instruments {
		switch in.Kind {
		case KindCounter:
			fmt.Fprintf(&b, "%-48s counter   %d\n", in.Name, in.Count)
		case KindGauge:
			fmt.Fprintf(&b, "%-48s gauge     %d\n", in.Name, in.Value)
		case KindHistogram:
			h := in.Hist
			if h == nil {
				h = &HistStats{}
			}
			fmt.Fprintf(&b, "%-48s histogram count=%d mean=%s p50=%s p80=%s p99=%s max=%s\n",
				in.Name, h.Count,
				metrics.FormatDuration(h.Mean), metrics.FormatDuration(h.P50),
				metrics.FormatDuration(h.P80), metrics.FormatDuration(h.P99),
				metrics.FormatDuration(h.Max))
		}
	}
	return b.String()
}
