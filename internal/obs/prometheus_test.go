package obs

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseExposition is a strict parser for the subset of the Prometheus
// text format the exporter emits: `# TYPE name kind` comment lines and
// `name{k="v",...} value` samples. It fails the test on any malformed
// line and returns the samples plus the TYPE declared for each family.
func parseExposition(t *testing.T, text string) (samples map[string]int64, types map[string]string) {
	t.Helper()
	samples = map[string]int64{}
	types = map[string]string{}
	validName := func(s string) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
				(c >= '0' && c <= '9' && i > 0)
			if !ok {
				return false
			}
		}
		return true
	}
	declared := "" // family the current TYPE block belongs to
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			name, kind := parts[2], parts[3]
			if !validName(name) {
				t.Fatalf("line %d: invalid family name %q", ln+1, name)
			}
			if kind != "counter" && kind != "gauge" && kind != "summary" {
				t.Fatalf("line %d: unknown family kind %q", ln+1, kind)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: family %q declared twice", ln+1, name)
			}
			types[name] = kind
			declared = name
			continue
		}
		// Sample line: name or name{labels}, then exactly one value.
		labels := ""
		sampleLine := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unterminated label block %q", ln+1, line)
			}
			labels = line[i+1 : j]
			sampleLine = line[:i] + line[j+1:]
		}
		fields := strings.Fields(sampleLine)
		if len(fields) != 2 {
			t.Fatalf("line %d: want `name value`, got %q", ln+1, line)
		}
		name := fields[0]
		if !validName(name) {
			t.Fatalf("line %d: invalid metric name %q", ln+1, name)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, line, err)
		}
		for _, pair := range strings.Split(labels, ",") {
			if labels == "" {
				break
			}
			k, val, ok := strings.Cut(pair, "=")
			if !ok || !validName(k) || !strings.HasPrefix(val, `"`) || !strings.HasSuffix(val, `"`) {
				t.Fatalf("line %d: malformed label pair %q", ln+1, pair)
			}
		}
		// Samples must stay inside their family's contiguous block.
		fam := name
		fam = strings.TrimSuffix(fam, "_sum")
		fam = strings.TrimSuffix(fam, "_count")
		if declared != "" && fam != declared && name != declared {
			if _, known := types[fam]; !known {
				t.Fatalf("line %d: sample %q outside its family block (current family %q)", ln+1, name, declared)
			}
		}
		key := name
		if labels != "" {
			key += "{" + labels + "}"
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %q", ln+1, key)
		}
		samples[key] = v
	}
	return samples, types
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wire.frames_in").Inc(7)
	reg.Counter(Name("wire.requests", "op", "find")).Inc(3)
	reg.Counter(Name("wire.requests", "op", "ping")).Inc(9)
	reg.Gauge(Name("replstatus.state", "node", "0")).Set(2)
	reg.Gauge(Name("replstatus.state", "node", "1")).Set(1)
	reg.Gauge("status.connections.current").Set(5)
	h := reg.Histogram(Name("wire.request_latency", "op", "find"))
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}

	text := reg.Snapshot().Prometheus()
	samples, types := parseExposition(t, text)

	if got := types["wire_frames_in"]; got != "counter" {
		t.Fatalf("wire_frames_in TYPE = %q, want counter", got)
	}
	if got := types["replstatus_state"]; got != "gauge" {
		t.Fatalf("replstatus_state TYPE = %q, want gauge", got)
	}
	if got := types["wire_request_latency"]; got != "summary" {
		t.Fatalf("wire_request_latency TYPE = %q, want summary", got)
	}
	if v := samples[`wire_frames_in`]; v != 7 {
		t.Fatalf("wire_frames_in = %d, want 7", v)
	}
	if v := samples[`wire_requests{op="find"}`]; v != 3 {
		t.Fatalf(`wire_requests{op="find"} = %d, want 3`, v)
	}
	if v := samples[`replstatus_state{node="0"}`]; v != 2 {
		t.Fatalf(`replstatus_state{node="0"} = %d, want 2`, v)
	}
	if v := samples[`status_connections_current`]; v != 5 {
		t.Fatalf("status_connections_current = %d, want 5", v)
	}
	if v := samples[`wire_request_latency_count{op="find"}`]; v != 100 {
		t.Fatalf("latency count = %d, want 100", v)
	}
	for _, q := range []string{"0", "0.5", "0.8", "0.99", "1"} {
		key := fmt.Sprintf(`wire_request_latency{op="find",quantile="%s"}`, q)
		if _, ok := samples[key]; !ok {
			t.Fatalf("missing quantile sample %s", key)
		}
	}
	// Quantiles must be monotone from min to max.
	q0 := samples[`wire_request_latency{op="find",quantile="0"}`]
	q50 := samples[`wire_request_latency{op="find",quantile="0.5"}`]
	q100 := samples[`wire_request_latency{op="find",quantile="1"}`]
	if !(q0 <= q50 && q50 <= q100) {
		t.Fatalf("quantiles not monotone: min=%d p50=%d max=%d", q0, q50, q100)
	}
}

func TestPrometheusSanitization(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Name("9weird.name-x", "bad-key", `va"l\ue`)).Inc(1)
	text := reg.Snapshot().Prometheus()
	samples, types := parseExposition(t, text)
	if got := types["_9weird_name_x"]; got != "counter" {
		t.Fatalf("sanitized family missing, types=%v", types)
	}
	want := `_9weird_name_x{bad_key="va\"l\\ue"}`
	if _, ok := samples[want]; !ok {
		t.Fatalf("sanitized sample %q missing in %v", want, samples)
	}
}

func TestPrometheusFamilyGrouping(t *testing.T) {
	// "x.ys" sorts before "x.y{...}" byte-wise; the renderer must still
	// emit both x.y samples contiguously under one TYPE line.
	reg := NewRegistry()
	reg.Counter(Name("x.y", "a", "1")).Inc(1)
	reg.Counter(Name("x.y", "a", "2")).Inc(1)
	reg.Counter("x.ys").Inc(1)
	text := reg.Snapshot().Prometheus()
	parseExposition(t, text) // parser enforces contiguity
	first := strings.Index(text, "x_y{")
	last := strings.LastIndex(text, "x_y{")
	between := text[first:last]
	if strings.Contains(between, "# TYPE") {
		t.Fatalf("family x_y split across TYPE blocks:\n%s", text)
	}
}
