package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Prometheus exposition rendering for snapshots: the text format
// scraped by real operators (text/plain; version 0.0.4). Instrument
// names map to Prometheus families by sanitizing the dotted base name
// ("status.connections.current" → "status_connections_current") and
// converting the package's inline label encoding ("cluster.reads
// {node=0}") into quoted Prometheus labels (cluster_reads{node="0"}).
//
// Counters and gauges export directly; histograms export as summaries
// with {quantile="0|0.5|0.8|0.99|1"} samples plus _sum and _count.
// Values keep the units the instruments observed in — nanoseconds for
// latency histograms, raw counts for ObserveN histograms — which the
// instrument name is expected to make obvious (DESIGN.md §11).

// Prometheus renders the snapshot in the Prometheus text exposition
// format, one family per instrument base name, with a # TYPE line
// opening each family.
func (s Snapshot) Prometheus() string {
	// Bucket instruments by family (sanitized base name): the format
	// requires every sample of a family to appear in one contiguous
	// group, and byte-wise instrument order does not guarantee that
	// ("x.y" sorts after "x.ys" once the label brace is appended).
	type family struct {
		name string
		kind string
		ins  []Instrument
	}
	order := make([]string, 0, len(s.Instruments))
	fams := make(map[string]*family, len(s.Instruments))
	for _, in := range s.Instruments {
		base, _ := splitName(in.Name)
		fam := sanitizeMetricName(base)
		f, ok := fams[fam]
		if !ok {
			f = &family{name: fam, kind: in.Kind}
			fams[fam] = f
			order = append(order, fam)
		}
		f.ins = append(f.ins, in)
	}
	sort.Strings(order)

	var b strings.Builder
	for _, fam := range order {
		f := fams[fam]
		switch f.kind {
		case KindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n", f.name)
		case KindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", f.name)
		case KindHistogram:
			fmt.Fprintf(&b, "# TYPE %s summary\n", f.name)
		}
		for _, in := range f.ins {
			_, labels := splitName(in.Name)
			switch in.Kind {
			case KindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, promLabels(labels, "", ""), in.Count)
			case KindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, promLabels(labels, "", ""), in.Value)
			case KindHistogram:
				h := in.Hist
				if h == nil {
					h = &HistStats{}
				}
				quantiles := []struct {
					q string
					v int64
				}{
					{"0", int64(h.Min)},
					{"0.5", int64(h.P50)},
					{"0.8", int64(h.P80)},
					{"0.99", int64(h.P99)},
					{"1", int64(h.Max)},
				}
				for _, qv := range quantiles {
					fmt.Fprintf(&b, "%s%s %d\n", f.name, promLabels(labels, "quantile", qv.q), qv.v)
				}
				fmt.Fprintf(&b, "%s_sum%s %d\n", f.name, promLabels(labels, "", ""), int64(h.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, promLabels(labels, "", ""), h.Count)
			}
		}
	}
	return b.String()
}

// splitName separates an instrument name into its dotted base and the
// inline label block (without braces): "a.b{x=1,y=2}" → "a.b",
// "x=1,y=2". Names without labels return an empty label block.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	labels = strings.TrimSuffix(name[i+1:], "}")
	return name[:i], labels
}

// sanitizeMetricName maps an instrument base name onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_:], replacing every other byte with
// an underscore and prefixing names that start with a digit.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName maps a label key onto [a-zA-Z0-9_].
func sanitizeLabelName(s string) string {
	out := sanitizeMetricName(s)
	return strings.ReplaceAll(out, ":", "_")
}

// promLabels renders the inline label block as a Prometheus label set,
// appending the optional extra pair (used for summary quantiles).
// Label values are quoted with \, " and newline escaped.
func promLabels(labels, extraKey, extraVal string) string {
	if labels == "" && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	if labels != "" {
		for _, pair := range strings.Split(labels, ",") {
			k, v, _ := strings.Cut(pair, "=")
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(sanitizeLabelName(k))
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(v))
			b.WriteByte('"')
		}
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
