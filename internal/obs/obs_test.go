package obs

import (
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNameFormatting(t *testing.T) {
	if got := Name("cluster.reads"); got != "cluster.reads" {
		t.Fatalf("bare name: %q", got)
	}
	if got := Name("cluster.reads", "node", "2"); got != "cluster.reads{node=2}" {
		t.Fatalf("one label: %q", got)
	}
	// Labels sort by key regardless of argument order.
	a := Name("x", "b", "2", "a", "1")
	b := Name("x", "a", "1", "b", "2")
	if a != b || a != "x{a=1,b=2}" {
		t.Fatalf("label sorting: %q vs %q", a, b)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("c")
	c2 := r.Counter("c")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	c1.Inc(3)
	if c2.Value() != 3 {
		t.Fatalf("shared counter value %d", c2.Value())
	}
	g := r.Gauge("g")
	g.Set(-7)
	g.Add(2)
	if g.Value() != -5 {
		t.Fatalf("gauge value %d", g.Value())
	}
	h := r.Histogram("h")
	h.Observe(time.Millisecond)
	if st := h.Stats(); st.Count != 1 || st.Mean == 0 {
		t.Fatalf("histogram stats %+v", st)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc(1)
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(time.Second)
	if v := r.Counter("c").Value(); v != 0 {
		t.Fatalf("nil counter value %d", v)
	}
	if s := r.Snapshot(); len(s.Instruments) != 0 {
		t.Fatalf("nil registry snapshot %+v", s)
	}
}

// TestConcurrentIncObserveSnapshot hammers one registry from many
// goroutines while snapshotting; run under -race this is the
// registry's core guarantee.
func TestConcurrentIncObserveSnapshot(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared.count").Inc(1)
				r.Counter(Name("labeled.count", "worker", string(rune('a'+w)))).Inc(1)
				r.Gauge("shared.gauge").Set(int64(i))
				r.Histogram("shared.hist").Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	// Concurrent snapshots must be safe and internally consistent.
	var snapWG sync.WaitGroup
	for s := 0; s < 4; s++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for i := 0; i < 50; i++ {
				snap := r.Snapshot()
				if _, ok := snap.Get("shared.count"); !ok && len(snap.Instruments) > 0 {
					// The counter exists from the first worker op on.
					continue
				}
			}
		}()
	}
	wg.Wait()
	snapWG.Wait()
	snap := r.Snapshot()
	if got := snap.CounterValue("shared.count"); got != workers*perWorker {
		t.Fatalf("shared.count = %d, want %d", got, workers*perWorker)
	}
	hist, ok := snap.Get("shared.hist")
	if !ok || hist.Hist == nil || hist.Hist.Count != workers*perWorker {
		t.Fatalf("shared.hist = %+v", hist)
	}
}

func TestSnapshotSortedAndExported(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Inc(2)
	r.Gauge("a.gauge").Set(5)
	r.Histogram("c.hist").Observe(3 * time.Millisecond)
	snap := r.Snapshot()
	if len(snap.Instruments) != 3 {
		t.Fatalf("instruments %d", len(snap.Instruments))
	}
	for i := 1; i < len(snap.Instruments); i++ {
		if snap.Instruments[i-1].Name >= snap.Instruments[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q",
				snap.Instruments[i-1].Name, snap.Instruments[i].Name)
		}
	}
	text := snap.Text()
	for _, want := range []string{"b.count", "counter", "a.gauge", "gauge", "c.hist", "histogram", "count=1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text export missing %q:\n%s", want, text)
		}
	}
	// JSON round trip preserves readings — the wire protocol relies on
	// this.
	raw, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.CounterValue("b.count") != 2 {
		t.Fatalf("counter lost in JSON round trip: %+v", back)
	}
	in, ok := back.Get("c.hist")
	if !ok || in.Hist == nil || in.Hist.Count != 1 {
		t.Fatalf("histogram lost in JSON round trip: %+v", in)
	}
}

func TestMergeAndPrefixed(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("server.reqs").Inc(1)
	r2 := NewRegistry()
	r2.Counter("client.sel").Inc(4)
	merged := r1.Snapshot().Merge(r2.Snapshot().Prefixed("c0."))
	if merged.CounterValue("server.reqs") != 1 || merged.CounterValue("c0.client.sel") != 4 {
		t.Fatalf("merge/prefix wrong: %+v", merged)
	}
}

func TestSnapshotIndexLookups(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 200; i++ {
		reg.Counter(Name("c", "i", strconv.Itoa(i))).Inc(uint64(i))
		reg.Gauge(Name("g", "i", strconv.Itoa(i))).Set(int64(i))
	}
	snap := reg.Snapshot()
	if snap.idx == nil {
		t.Fatal("registry-built snapshot has no index")
	}
	// Lookups through the index and through copies of the snapshot
	// (sharing the same index) must agree with the stored readings.
	copied := snap
	for i := 0; i < 200; i += 17 {
		cn, gn := Name("c", "i", strconv.Itoa(i)), Name("g", "i", strconv.Itoa(i))
		if v := snap.CounterValue(cn); v != uint64(i) {
			t.Fatalf("CounterValue(%s) = %d, want %d", cn, v, i)
		}
		if v := copied.GaugeValue(gn); v != int64(i) {
			t.Fatalf("copy GaugeValue(%s) = %d, want %d", gn, v, i)
		}
	}
	if copied.idx != snap.idx {
		t.Fatal("snapshot copy does not share the index")
	}
	if _, ok := snap.Get("absent"); ok {
		t.Fatal("Get found an absent instrument")
	}

	// JSON-decoded snapshots have no index and must fall back to the
	// linear scan with identical answers.
	raw, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.idx != nil {
		t.Fatal("decoded snapshot unexpectedly carries an index")
	}
	if v := back.CounterValue(Name("c", "i", "42")); v != 42 {
		t.Fatalf("fallback lookup = %d, want 42", v)
	}
}

func TestSnapshotIndexConcurrentBuild(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 64; i++ {
		reg.Counter(Name("c", "i", strconv.Itoa(i))).Inc(1)
	}
	snap := reg.Snapshot()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := snap // value copy shares the index
			for i := 0; i < 64; i++ {
				if s.CounterValue(Name("c", "i", strconv.Itoa(i))) != 1 {
					panic("lost reading")
				}
			}
		}()
	}
	wg.Wait()
}

func TestRegisterCollector(t *testing.T) {
	reg := NewRegistry()
	runs := 0
	reg.RegisterCollector(func() {
		runs++
		// Collectors run outside the registry lock, so get-or-create
		// from inside one must not deadlock.
		reg.Gauge("collected.depth").Set(int64(10 * runs))
	})
	if got := reg.Snapshot().GaugeValue("collected.depth"); got != 10 {
		t.Fatalf("first snapshot gauge = %d, want 10", got)
	}
	if got := reg.Snapshot().GaugeValue("collected.depth"); got != 20 {
		t.Fatalf("second snapshot gauge = %d, want 20", got)
	}
	if runs != 2 {
		t.Fatalf("collector ran %d times, want 2", runs)
	}
	// nil collectors and collectors on a nil registry are no-ops.
	reg.RegisterCollector(nil)
	var nilReg *Registry
	nilReg.RegisterCollector(func() {})
	if nilReg.Snapshot().Instruments != nil {
		t.Fatal("nil registry snapshot not empty")
	}
}
