package sim

import (
	"sync/atomic"
	"time"
)

// Resource models a server with a fixed number of identical service
// slots (e.g. CPU cores, disk channels). Callers occupy a slot for a
// service time; when all slots are busy, callers queue FIFO, which is
// what produces congestion latency under load.
type Resource struct {
	sem  Semaphore
	busy atomic.Int64 // accumulated busy nanoseconds across slots
	jobs atomic.Int64
}

// NewResource creates a resource with the given number of slots.
func NewResource(env Env, slots int) *Resource {
	return &Resource{sem: env.NewSemaphore(slots)}
}

// Use occupies one slot for service duration d, queueing if necessary.
// It returns the total time spent (queueing + service).
func (r *Resource) Use(p Proc, d time.Duration) time.Duration {
	start := p.Now()
	r.sem.Acquire(p)
	p.Sleep(d)
	r.sem.Release()
	r.busy.Add(int64(d))
	r.jobs.Add(1)
	return p.Now() - start
}

// Acquire takes a slot without a fixed service time; pair with Release.
func (r *Resource) Acquire(p Proc) { r.sem.Acquire(p) }

// Release returns a slot taken with Acquire.
func (r *Resource) Release() { r.sem.Release() }

// InUse reports busy slots; Waiting reports the queue length.
func (r *Resource) InUse() int   { return r.sem.InUse() }
func (r *Resource) Waiting() int { return r.sem.Waiting() }

// BusyTime returns the accumulated service time over all completed
// jobs, and Jobs the number of completed jobs.
func (r *Resource) BusyTime() time.Duration { return time.Duration(r.busy.Load()) }
func (r *Resource) Jobs() int64             { return r.jobs.Load() }

// Every spawns a process that invokes fn every interval until the
// environment shuts down. The first invocation happens after one
// interval.
func Every(env Env, name string, interval time.Duration, fn func(Proc)) {
	env.Spawn(name, func(p Proc) {
		for {
			p.Sleep(interval)
			fn(p)
		}
	})
}
