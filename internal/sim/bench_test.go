package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw scheduler throughput: one
// process sleeping in a tight loop (2 handshakes per event).
func BenchmarkEventThroughput(b *testing.B) {
	env := NewEnv(1)
	defer env.Shutdown()
	count := 0
	env.Spawn("ticker", func(p Proc) {
		for {
			p.Sleep(time.Microsecond)
			count++
		}
	})
	b.ResetTimer()
	env.Run(time.Duration(b.N) * time.Microsecond)
	if count < b.N-1 {
		b.Fatalf("ran %d events, want ~%d", count, b.N)
	}
}

// BenchmarkSemaphoreContention measures queueing through a contended
// resource: 64 processes sharing 4 slots.
func BenchmarkSemaphoreContention(b *testing.B) {
	env := NewEnv(1)
	defer env.Shutdown()
	res := NewResource(env, 4)
	done := 0
	for i := 0; i < 64; i++ {
		env.Spawn("w", func(p Proc) {
			for {
				res.Use(p, time.Microsecond)
				done++
			}
		})
	}
	b.ResetTimer()
	env.Run(time.Duration(b.N/4+1) * time.Microsecond)
	if done == 0 {
		b.Fatal("no work completed")
	}
}

// BenchmarkSpawn measures process creation + teardown.
func BenchmarkSpawn(b *testing.B) {
	env := NewEnv(1)
	defer env.Shutdown()
	for i := 0; i < b.N; i++ {
		env.Spawn("p", func(p Proc) {})
	}
	b.ResetTimer()
	env.Run(time.Hour)
}
