package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// VirtualEnv is a deterministic discrete-event environment. Processes
// are goroutines, but exactly one runs at any moment: the scheduler
// resumes the process owning the earliest event and waits for it to
// block again before advancing time. With a fixed seed, runs are fully
// reproducible.
type VirtualEnv struct {
	seed   int64
	now    time.Duration
	seq    uint64
	events eventHeap
	yield  chan struct{} // processes signal the scheduler here when they park
	closed bool
	procs  map[*vproc]struct{} // live processes
}

// NewEnv creates a virtual-time environment whose randomness derives
// from seed.
func NewEnv(seed int64) *VirtualEnv {
	return &VirtualEnv{
		seed:  seed,
		yield: make(chan struct{}),
		procs: make(map[*vproc]struct{}),
	}
}

type event struct {
	at  time.Duration
	seq uint64
	p   *vproc // process to resume, or nil for fn
	fn  func() // scheduler callback (must not block)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type vproc struct {
	env    *VirtualEnv
	name   string
	resume chan struct{}
	parked bool
	done   bool
}

func (p *vproc) Env() Env     { return p.env }
func (p *vproc) Name() string { return p.name }
func (p *vproc) Now() time.Duration {
	return p.env.now
}

// park hands control back to the scheduler and waits to be resumed.
func (p *vproc) park() {
	p.parked = true
	p.env.yield <- struct{}{}
	<-p.resume
	p.parked = false
	if p.env.closed {
		panic(stoppedError{})
	}
}

func (p *vproc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p.env.now+d, p, nil)
	p.park()
}

// Now returns the current virtual time.
func (e *VirtualEnv) Now() time.Duration { return e.now }

func (e *VirtualEnv) schedule(at time.Duration, p *vproc, fn func()) {
	if e.closed {
		return
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, p: p, fn: fn})
}

// After schedules fn to run in the scheduler context at now+d. fn must
// not block; use Spawn for blocking work.
func (e *VirtualEnv) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, nil, fn)
}

// Spawn starts a new process at the current virtual time.
func (e *VirtualEnv) Spawn(name string, fn func(Proc)) {
	if e.closed {
		return
	}
	p := &vproc{env: e, name: name, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			p.done = true
			delete(e.procs, p)
			if r := recover(); r != nil {
				if !ErrStopped(r) {
					// Re-panicking here would crash the scheduler
					// goroutine handshake, so surface loudly instead.
					panic(fmt.Sprintf("sim: process %q panicked: %v", name, r))
				}
				// Shutdown: just exit; scheduler is waiting on yield.
			}
			e.yield <- struct{}{}
		}()
		if e.closed {
			panic(stoppedError{})
		}
		fn(p)
	}()
	e.schedule(e.now, p, nil)
}

// Run executes events until virtual time exceeds `until` or no events
// remain. It can be called repeatedly with increasing horizons; state
// is preserved between calls. Run returns the virtual time reached.
func (e *VirtualEnv) Run(until time.Duration) time.Duration {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.events)
		e.now = next.at
		if next.fn != nil {
			next.fn()
			continue
		}
		p := next.p
		if p == nil || p.done {
			continue
		}
		p.resume <- struct{}{}
		<-e.yield
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

// Shutdown terminates all live processes (they observe ErrStopped) and
// releases their goroutines. The environment is unusable afterwards.
func (e *VirtualEnv) Shutdown() {
	if e.closed {
		return
	}
	e.closed = true
	e.events = nil
	// Every live process is blocked on its resume channel — either
	// parked in a primitive or waiting to start. Wake each; it observes
	// closed, panics ErrStopped, and its wrapper yields back.
	for len(e.procs) > 0 {
		var p *vproc
		for q := range e.procs {
			p = q
			break
		}
		delete(e.procs, p) // the wrapper would delete it anyway
		p.resume <- struct{}{}
		<-e.yield
	}
}

// NewRand returns a rand.Rand seeded from the environment seed and name.
func (e *VirtualEnv) NewRand(name string) *rand.Rand {
	return rand.New(rand.NewSource(seedFor(e.seed, name)))
}

// ---- Semaphore ----

type vsem struct {
	env     *VirtualEnv
	cap     int
	inUse   int
	waiters []*vproc
}

// NewSemaphore creates a FIFO counting semaphore.
func (e *VirtualEnv) NewSemaphore(capacity int) Semaphore {
	if capacity < 1 {
		panic("sim: semaphore capacity must be >= 1")
	}
	return &vsem{env: e, cap: capacity}
}

func (s *vsem) Acquire(p Proc) {
	vp := p.(*vproc)
	if s.inUse < s.cap && len(s.waiters) == 0 {
		s.inUse++
		return
	}
	s.waiters = append(s.waiters, vp)
	vp.park()
}

func (s *vsem) TryAcquire() bool {
	if s.inUse < s.cap && len(s.waiters) == 0 {
		s.inUse++
		return true
	}
	return false
}

func (s *vsem) Release() {
	if s.inUse <= 0 {
		panic("sim: semaphore release without acquire")
	}
	if len(s.waiters) > 0 {
		// Hand the slot directly to the next waiter; inUse stays the
		// same. Resume it via an immediate event to stay in scheduler
		// order.
		next := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.env.schedule(s.env.now, next, nil)
		return
	}
	s.inUse--
}

func (s *vsem) InUse() int   { return s.inUse }
func (s *vsem) Waiting() int { return len(s.waiters) }

// ---- Gate ----

// vgateWaiter is one parked process plus the reason it was (or will
// be) resumed: a Broadcast marks it fired; a timeout removes it from
// the waiter list before resuming, so the two wakeups never race.
type vgateWaiter struct {
	p        *vproc
	fired    bool
	timedOut bool
}

type vgate struct {
	env     *VirtualEnv
	waiters []*vgateWaiter
}

// NewGate creates a broadcast condition.
func (e *VirtualEnv) NewGate() Gate { return &vgate{env: e} }

func (g *vgate) Wait(p Proc) { g.WaitTimeout(p, 0) }

func (g *vgate) WaitTimeout(p Proc, d time.Duration) bool {
	vp := p.(*vproc)
	w := &vgateWaiter{p: vp}
	g.waiters = append(g.waiters, w)
	if d > 0 {
		g.env.After(d, func() {
			if w.fired || w.timedOut {
				return
			}
			w.timedOut = true
			for i, x := range g.waiters {
				if x == w {
					g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
					break
				}
			}
			g.env.schedule(g.env.now, vp, nil)
		})
	}
	vp.park()
	return w.fired
}

func (g *vgate) Broadcast() {
	for _, w := range g.waiters {
		w.fired = true
		g.env.schedule(g.env.now, w.p, nil)
	}
	g.waiters = nil
}

// ---- Mailbox ----

type vmailbox struct {
	env   *VirtualEnv
	queue []any
	recvs []*vproc
}

// NewMailbox creates an unbounded FIFO message queue.
func (e *VirtualEnv) NewMailbox() Mailbox { return &vmailbox{env: e} }

func (m *vmailbox) Send(v any) {
	m.queue = append(m.queue, v)
	if len(m.recvs) > 0 {
		next := m.recvs[0]
		m.recvs = m.recvs[1:]
		m.env.schedule(m.env.now, next, nil)
	}
}

func (m *vmailbox) Recv(p Proc) any {
	vp := p.(*vproc)
	for len(m.queue) == 0 {
		m.recvs = append(m.recvs, vp)
		vp.park()
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	return v
}

func (m *vmailbox) Len() int { return len(m.queue) }
