package sim

import (
	"math/rand"
	"sync"
	"time"
)

// RealtimeEnv runs processes as ordinary goroutines against the wall
// clock. It implements Env so the same cluster and workload code that
// runs in virtual time can serve real traffic (used by the TCP wire
// server). It is safe for concurrent use.
type RealtimeEnv struct {
	seed  int64
	start time.Time
	mu    sync.Mutex
	wg    sync.WaitGroup
	done  chan struct{}
	once  sync.Once
}

// NewRealtimeEnv creates a wall-clock environment.
func NewRealtimeEnv(seed int64) *RealtimeEnv {
	return &RealtimeEnv{seed: seed, start: time.Now(), done: make(chan struct{})}
}

// Now returns the wall-clock time since the environment started.
func (e *RealtimeEnv) Now() time.Duration { return time.Since(e.start) }

type rproc struct {
	env  *RealtimeEnv
	name string
}

func (p *rproc) Env() Env           { return p.env }
func (p *rproc) Name() string       { return p.name }
func (p *rproc) Now() time.Duration { return p.env.Now() }
func (p *rproc) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.env.done:
		panic(stoppedError{})
	}
}

// Spawn starts fn on a new goroutine.
func (e *RealtimeEnv) Spawn(name string, fn func(Proc)) {
	select {
	case <-e.done:
		return
	default:
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer func() {
			if r := recover(); r != nil && !ErrStopped(r) {
				panic(r)
			}
		}()
		fn(&rproc{env: e, name: name})
	}()
}

// Adhoc returns a Proc usable from an arbitrary goroutine (e.g. a
// network connection handler) without going through Spawn. The caller
// owns the goroutine's lifetime; Shutdown interrupts the proc's
// blocking operations like any other.
func (e *RealtimeEnv) Adhoc(name string) Proc {
	return &rproc{env: e, name: name}
}

// Shutdown stops all processes blocked in environment primitives and
// waits for them to exit.
func (e *RealtimeEnv) Shutdown() {
	e.once.Do(func() { close(e.done) })
	e.wg.Wait()
}

// NewRand returns a rand.Rand seeded from the environment seed and
// name. The source is wrapped with a mutex so multiple goroutines may
// share it.
func (e *RealtimeEnv) NewRand(name string) *rand.Rand {
	return rand.New(&lockedSource{src: rand.NewSource(seedFor(e.seed, name)).(rand.Source64)})
}

type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

// ---- Semaphore ----

type rsem struct {
	env   *RealtimeEnv
	slots chan struct{}
	mu    sync.Mutex
	wait  int
}

// NewSemaphore creates a channel-backed counting semaphore.
func (e *RealtimeEnv) NewSemaphore(capacity int) Semaphore {
	if capacity < 1 {
		panic("sim: semaphore capacity must be >= 1")
	}
	return &rsem{env: e, slots: make(chan struct{}, capacity)}
}

func (s *rsem) Acquire(p Proc) {
	s.mu.Lock()
	s.wait++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.wait--
		s.mu.Unlock()
	}()
	select {
	case s.slots <- struct{}{}:
	case <-s.env.done:
		panic(stoppedError{})
	}
}

func (s *rsem) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *rsem) Release() { <-s.slots }

func (s *rsem) InUse() int { return len(s.slots) }

func (s *rsem) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wait
}

// ---- Gate ----

type rgate struct {
	env *RealtimeEnv
	mu  sync.Mutex
	ch  chan struct{}
}

// NewGate creates a broadcast condition.
func (e *RealtimeEnv) NewGate() Gate {
	return &rgate{env: e, ch: make(chan struct{})}
}

func (g *rgate) Wait(p Proc) {
	g.mu.Lock()
	ch := g.ch
	g.mu.Unlock()
	select {
	case <-ch:
	case <-g.env.done:
		panic(stoppedError{})
	}
}

func (g *rgate) WaitTimeout(p Proc, d time.Duration) bool {
	g.mu.Lock()
	ch := g.ch
	g.mu.Unlock()
	if d <= 0 {
		select {
		case <-ch:
			return true
		case <-g.env.done:
			panic(stoppedError{})
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	case <-g.env.done:
		panic(stoppedError{})
	}
}

func (g *rgate) Broadcast() {
	g.mu.Lock()
	close(g.ch)
	g.ch = make(chan struct{})
	g.mu.Unlock()
}

// ---- Mailbox ----

type rmailbox struct {
	env   *RealtimeEnv
	mu    sync.Mutex
	queue []any
	avail chan struct{} // capacity 1, signaled when queue non-empty
}

// NewMailbox creates an unbounded FIFO message queue.
func (e *RealtimeEnv) NewMailbox() Mailbox {
	return &rmailbox{env: e, avail: make(chan struct{}, 1)}
}

func (m *rmailbox) Send(v any) {
	m.mu.Lock()
	m.queue = append(m.queue, v)
	m.mu.Unlock()
	select {
	case m.avail <- struct{}{}:
	default:
	}
}

func (m *rmailbox) Recv(p Proc) any {
	for {
		m.mu.Lock()
		if len(m.queue) > 0 {
			v := m.queue[0]
			m.queue = m.queue[1:]
			nonEmpty := len(m.queue) > 0
			m.mu.Unlock()
			if nonEmpty {
				select {
				case m.avail <- struct{}{}:
				default:
				}
			}
			return v
		}
		m.mu.Unlock()
		select {
		case <-m.avail:
		case <-m.env.done:
			panic(stoppedError{})
		}
	}
}

func (m *rmailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
