package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealtimeSleepAndNow(t *testing.T) {
	env := NewRealtimeEnv(1)
	defer env.Shutdown()
	var elapsed atomic.Int64
	done := make(chan struct{})
	env.Spawn("p", func(p Proc) {
		start := p.Now()
		p.Sleep(20 * time.Millisecond)
		elapsed.Store(int64(p.Now() - start))
		close(done)
	})
	<-done
	if e := time.Duration(elapsed.Load()); e < 15*time.Millisecond {
		t.Fatalf("slept only %v", e)
	}
}

func TestRealtimeSemaphoreLimitsConcurrency(t *testing.T) {
	env := NewRealtimeEnv(1)
	defer env.Shutdown()
	sem := env.NewSemaphore(2)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		env.Spawn("w", func(p Proc) {
			defer wg.Done()
			sem.Acquire(p)
			n := cur.Add(1)
			for {
				pk := peak.Load()
				if n <= pk || peak.CompareAndSwap(pk, n) {
					break
				}
			}
			p.Sleep(5 * time.Millisecond)
			cur.Add(-1)
			sem.Release()
		})
	}
	wg.Wait()
	if pk := peak.Load(); pk > 2 {
		t.Fatalf("peak concurrency %d exceeds capacity 2", pk)
	}
}

func TestRealtimeMailbox(t *testing.T) {
	env := NewRealtimeEnv(1)
	defer env.Shutdown()
	mb := env.NewMailbox()
	got := make(chan int, 3)
	env.Spawn("recv", func(p Proc) {
		for i := 0; i < 3; i++ {
			got <- mb.Recv(p).(int)
		}
	})
	for i := 0; i < 3; i++ {
		mb.Send(i)
	}
	for i := 0; i < 3; i++ {
		select {
		case v := <-got:
			if v != i {
				t.Fatalf("got %d, want %d", v, i)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for mailbox message")
		}
	}
}

func TestRealtimeGateBroadcast(t *testing.T) {
	env := NewRealtimeEnv(1)
	defer env.Shutdown()
	gate := env.NewGate()
	var woke atomic.Int64
	var ready sync.WaitGroup
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		ready.Add(1)
		wg.Add(1)
		env.Spawn("w", func(p Proc) {
			defer wg.Done()
			ready.Done()
			gate.Wait(p)
			woke.Add(1)
		})
	}
	ready.Wait()
	time.Sleep(10 * time.Millisecond) // let them reach Wait
	gate.Broadcast()
	wg.Wait()
	if woke.Load() != 4 {
		t.Fatalf("woke=%d, want 4", woke.Load())
	}
}

func TestRealtimeGateWaitTimeout(t *testing.T) {
	env := NewRealtimeEnv(1)
	defer env.Shutdown()
	gate := env.NewGate()
	p := env.Adhoc("waiter")
	start := time.Now()
	if gate.WaitTimeout(p, 20*time.Millisecond) {
		t.Fatal("WaitTimeout reported broadcast, want timeout")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("WaitTimeout returned before the timeout elapsed")
	}
	done := make(chan bool, 1)
	go func() {
		q := env.Adhoc("waiter2")
		done <- gate.WaitTimeout(q, 10*time.Second)
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block
	gate.Broadcast()
	select {
	case fired := <-done:
		if !fired {
			t.Fatal("WaitTimeout reported timeout, want broadcast")
		}
	case <-time.After(time.Second):
		t.Fatal("broadcast did not wake the timed waiter")
	}
}

func TestRealtimeShutdownUnblocksEverything(t *testing.T) {
	env := NewRealtimeEnv(1)
	sem := env.NewSemaphore(1)
	mb := env.NewMailbox()
	gate := env.NewGate()
	env.Spawn("holder", func(p Proc) {
		sem.Acquire(p)
		p.Sleep(time.Hour)
	})
	env.Spawn("semWaiter", func(p Proc) { sem.Acquire(p) })
	env.Spawn("mbWaiter", func(p Proc) { mb.Recv(p) })
	env.Spawn("gateWaiter", func(p Proc) { gate.Wait(p) })
	time.Sleep(20 * time.Millisecond)
	finished := make(chan struct{})
	go func() {
		env.Shutdown()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung")
	}
}

func TestRealtimeNewRandConcurrentSafe(t *testing.T) {
	env := NewRealtimeEnv(1)
	defer env.Shutdown()
	rng := env.NewRand("shared")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				rng.Int63()
			}
		}()
	}
	wg.Wait()
}
