// Package sim provides a deterministic discrete-event simulation kernel
// with goroutine-based processes, plus a real-time implementation of the
// same interfaces so identical process code can run against the wall
// clock.
//
// The virtual environment runs processes one at a time
// (run-to-completion between blocking points), ordered by virtual time
// and a sequence number, so a simulation with a fixed seed is fully
// deterministic. Processes block only through environment primitives:
// Proc.Sleep, Semaphore.Acquire, Gate.Wait and Mailbox.Recv.
package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Proc is the handle a running process uses to interact with its
// environment. A Proc must only be used from the goroutine running the
// process function it was passed to.
type Proc interface {
	// Env returns the environment this process runs in.
	Env() Env
	// Now returns the current (virtual or wall-clock) time since the
	// environment started.
	Now() time.Duration
	// Sleep suspends the process for d. Negative or zero durations
	// yield without advancing time.
	Sleep(d time.Duration)
	// Name returns the name the process was spawned with.
	Name() string
}

// Env is an execution environment for processes. Implementations:
// NewEnv (virtual time) and NewRealtimeEnv (wall clock).
type Env interface {
	// Now returns the time since the environment started.
	Now() time.Duration
	// Spawn starts a new process. In the virtual environment the
	// process begins at the current virtual time; it is safe to call
	// from inside another process or from outside Run.
	Spawn(name string, fn func(Proc))
	// NewSemaphore creates a counting semaphore with the given
	// capacity (number of simultaneous holders).
	NewSemaphore(capacity int) Semaphore
	// NewGate creates a broadcast condition.
	NewGate() Gate
	// NewMailbox creates an unbounded FIFO message queue.
	NewMailbox() Mailbox
	// NewRand returns a deterministic (for the virtual env) random
	// source derived from the environment seed and the given name, so
	// each component's randomness is independent of spawn order.
	NewRand(name string) *rand.Rand
}

// Semaphore is a counting semaphore. Waiters are served FIFO.
type Semaphore interface {
	// Acquire blocks p until a slot is available and takes it.
	Acquire(p Proc)
	// TryAcquire takes a slot if one is free without blocking.
	TryAcquire() bool
	// Release returns a slot. It may be called from any process (or,
	// in the virtual env, from scheduler callbacks).
	Release()
	// InUse reports the number of slots currently held.
	InUse() int
	// Waiting reports the number of processes blocked in Acquire.
	Waiting() int
}

// Gate is a broadcast condition: Wait blocks until the next Broadcast.
type Gate interface {
	Wait(p Proc)
	// WaitTimeout blocks until the next Broadcast or until d elapses,
	// whichever comes first, and reports whether it was woken by a
	// Broadcast. Non-positive d waits without a timeout (like Wait).
	// Oplog tail waiters use the timeout as a liveness backstop so a
	// missed signal degrades to the old poll interval, never a hang.
	WaitTimeout(p Proc, d time.Duration) bool
	Broadcast()
}

// Mailbox is an unbounded FIFO queue of messages with blocking receive.
type Mailbox interface {
	// Send enqueues v and wakes one receiver if any is blocked. It
	// never blocks.
	Send(v any)
	// Recv blocks p until a message is available and dequeues it.
	Recv(p Proc) any
	// Len reports the number of queued messages.
	Len() int
}

// ErrStopped is the panic value delivered to processes when their
// environment shuts down; the process wrapper recovers it.
type stoppedError struct{}

func (stoppedError) Error() string { return "sim: environment stopped" }

// ErrStopped reports whether a recovered panic value came from
// environment shutdown.
func ErrStopped(v any) bool {
	_, ok := v.(stoppedError)
	return ok
}

// seedFor derives a 64-bit seed from a base seed and a component name.
func seedFor(seed int64, name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, name)
	return int64(h.Sum64())
}
