package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	var woke time.Duration
	env.Spawn("sleeper", func(p Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	env.Run(time.Minute)
	if woke != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", woke)
	}
	if env.Now() != time.Minute {
		t.Fatalf("env.Now() = %v, want 1m (idle time advances to horizon)", env.Now())
	}
}

func TestZeroAndNegativeSleepDoNotAdvanceTime(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	var at0, atNeg time.Duration
	env.Spawn("p", func(p Proc) {
		p.Sleep(0)
		at0 = p.Now()
		p.Sleep(-time.Second)
		atNeg = p.Now()
	})
	env.Run(time.Second)
	if at0 != 0 || atNeg != 0 {
		t.Fatalf("time advanced on zero/negative sleep: %v %v", at0, atNeg)
	}
}

func TestEventOrderingIsFIFOAtSameInstant(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.Spawn("p", func(p Proc) {
			p.Sleep(time.Second) // all wake at t=1s
			order = append(order, i)
		})
	}
	env.Run(2 * time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d]=%d, spawn order not preserved: %v", i, v, order)
		}
	}
}

func TestRunResumable(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	ticks := 0
	env.Spawn("ticker", func(p Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	env.Run(3 * time.Second)
	if ticks != 3 {
		t.Fatalf("after first Run: ticks=%d, want 3", ticks)
	}
	env.Run(10 * time.Second)
	if ticks != 10 {
		t.Fatalf("after second Run: ticks=%d, want 10", ticks)
	}
}

func TestRunHorizonDoesNotExecuteLaterEvents(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	fired := false
	env.Spawn("late", func(p Proc) {
		p.Sleep(10 * time.Second)
		fired = true
	})
	env.Run(5 * time.Second)
	if fired {
		t.Fatal("event beyond horizon executed")
	}
	if got := env.Now(); got != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", got)
	}
}

func TestSemaphoreSerializesAndQueuesFIFO(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	sem := env.NewSemaphore(1)
	var finished []int
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn("worker", func(p Proc) {
			sem.Acquire(p)
			p.Sleep(time.Second)
			sem.Release()
			finished = append(finished, i)
		})
	}
	end := env.Run(time.Minute)
	_ = end
	if len(finished) != 3 {
		t.Fatalf("finished %d workers, want 3", len(finished))
	}
	for i, v := range finished {
		if v != i {
			t.Fatalf("completion order %v not FIFO", finished)
		}
	}
	if env.events.Len() != 0 {
		t.Fatalf("leftover events: %d", env.events.Len())
	}
}

func TestSemaphoreCapacityTwoOverlaps(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	sem := env.NewSemaphore(2)
	var doneAt []time.Duration
	for i := 0; i < 4; i++ {
		env.Spawn("w", func(p Proc) {
			sem.Acquire(p)
			p.Sleep(time.Second)
			sem.Release()
			doneAt = append(doneAt, p.Now())
		})
	}
	env.Run(time.Minute)
	// 4 jobs of 1s on 2 slots: two finish at 1s, two at 2s.
	want := []time.Duration{time.Second, time.Second, 2 * time.Second, 2 * time.Second}
	if len(doneAt) != 4 {
		t.Fatalf("completed %d, want 4", len(doneAt))
	}
	for i := range want {
		if doneAt[i] != want[i] {
			t.Fatalf("doneAt=%v, want %v", doneAt, want)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	sem := env.NewSemaphore(1)
	var got1, got2, got3 bool
	env.Spawn("p", func(p Proc) {
		got1 = sem.TryAcquire()
		got2 = sem.TryAcquire()
		sem.Release()
		got3 = sem.TryAcquire()
	})
	env.Run(time.Second)
	if !got1 || got2 || !got3 {
		t.Fatalf("TryAcquire sequence = %v %v %v, want true false true", got1, got2, got3)
	}
}

func TestSemaphoreReleaseWithoutAcquirePanics(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	sem := env.NewSemaphore(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sem.Release()
}

func TestGateBroadcastWakesAllWaiters(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	gate := env.NewGate()
	woke := 0
	for i := 0; i < 5; i++ {
		env.Spawn("waiter", func(p Proc) {
			gate.Wait(p)
			woke++
		})
	}
	env.Spawn("caster", func(p Proc) {
		p.Sleep(time.Second)
		gate.Broadcast()
	})
	env.Run(2 * time.Second)
	if woke != 5 {
		t.Fatalf("woke=%d, want 5", woke)
	}
}

func TestGateWaitTimeoutExpires(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	gate := env.NewGate()
	var fired bool
	var at time.Duration
	env.Spawn("waiter", func(p Proc) {
		fired = gate.WaitTimeout(p, time.Second)
		at = p.Now()
	})
	env.Run(5 * time.Second)
	if fired {
		t.Fatal("WaitTimeout reported broadcast, want timeout")
	}
	if at != time.Second {
		t.Fatalf("woke at %v, want 1s", at)
	}
}

func TestGateWaitTimeoutBroadcastWinsAndTimerIsInert(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	gate := env.NewGate()
	wakes := 0
	var fired bool
	var at time.Duration
	env.Spawn("waiter", func(p Proc) {
		fired = gate.WaitTimeout(p, 2*time.Second)
		wakes++
		at = p.Now()
		// Park again with no timeout: the first wait's stale timer
		// firing at t=2s must not wake this wait.
		gate.Wait(p)
		wakes++
	})
	env.Spawn("caster", func(p Proc) {
		p.Sleep(time.Second)
		gate.Broadcast()
	})
	env.Run(10 * time.Second)
	if !fired {
		t.Fatal("WaitTimeout reported timeout, want broadcast")
	}
	if at != time.Second {
		t.Fatalf("woke at %v, want 1s", at)
	}
	if wakes != 1 {
		t.Fatalf("wakes=%d, want 1 (stale timer must not fire the second wait)", wakes)
	}
}

func TestMailboxFIFOAndBlockingRecv(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	mb := env.NewMailbox()
	var got []int
	var recvTimes []time.Duration
	env.Spawn("recv", func(p Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p).(int))
			recvTimes = append(recvTimes, p.Now())
		}
	})
	env.Spawn("send", func(p Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Second)
			mb.Send(i)
		}
	})
	env.Run(time.Minute)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v, want [0 1 2]", got)
	}
	for i, ts := range recvTimes {
		if want := time.Duration(i+1) * time.Second; ts != want {
			t.Fatalf("recv %d at %v, want %v", i, ts, want)
		}
	}
}

func TestMailboxMultipleReceivers(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	mb := env.NewMailbox()
	received := 0
	for i := 0; i < 3; i++ {
		env.Spawn("recv", func(p Proc) {
			mb.Recv(p)
			received++
		})
	}
	env.Spawn("send", func(p Proc) {
		p.Sleep(time.Second)
		for i := 0; i < 3; i++ {
			mb.Send(i)
		}
	})
	env.Run(time.Minute)
	if received != 3 {
		t.Fatalf("received=%d, want 3", received)
	}
	if mb.Len() != 0 {
		t.Fatalf("mailbox not drained: %d", mb.Len())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		env := NewEnv(42)
		defer env.Shutdown()
		rng := env.NewRand("jitter")
		sem := env.NewSemaphore(2)
		var events []time.Duration
		for i := 0; i < 20; i++ {
			env.Spawn("w", func(p Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(time.Duration(rng.Intn(1000)) * time.Millisecond)
					sem.Acquire(p)
					p.Sleep(time.Duration(rng.Intn(100)) * time.Millisecond)
					sem.Release()
					events = append(events, p.Now())
				}
			})
		}
		env.Run(time.Minute)
		return events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNewRandIndependentOfSpawnOrder(t *testing.T) {
	e1 := NewEnv(7)
	e2 := NewEnv(7)
	defer e1.Shutdown()
	defer e2.Shutdown()
	_ = e1.NewRand("other") // extra draw stream in e1 only
	r1 := e1.NewRand("target")
	r2 := e2.NewRand("target")
	for i := 0; i < 100; i++ {
		if r1.Int63() != r2.Int63() {
			t.Fatal("named rand streams differ between envs with same seed")
		}
	}
}

func TestShutdownReleasesBlockedProcesses(t *testing.T) {
	env := NewEnv(1)
	sem := env.NewSemaphore(1)
	mb := env.NewMailbox()
	gate := env.NewGate()
	env.Spawn("holder", func(p Proc) {
		sem.Acquire(p)
		p.Sleep(time.Hour)
	})
	env.Spawn("semWaiter", func(p Proc) { sem.Acquire(p) })
	env.Spawn("mbWaiter", func(p Proc) { mb.Recv(p) })
	env.Spawn("gateWaiter", func(p Proc) { gate.Wait(p) })
	env.Run(time.Second)
	env.Shutdown() // must not hang
	if len(env.procs) != 0 {
		t.Fatalf("%d processes alive after shutdown", len(env.procs))
	}
}

func TestShutdownIdempotentAndSpawnAfterShutdownIgnored(t *testing.T) {
	env := NewEnv(1)
	env.Spawn("p", func(p Proc) { p.Sleep(time.Hour) })
	env.Run(time.Second)
	env.Shutdown()
	env.Shutdown()
	env.Spawn("late", func(p Proc) { t.Error("late process ran") })
	env.Run(2 * time.Second)
}

func TestAfterCallback(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	var at time.Duration
	env.After(3*time.Second, func() { at = env.Now() })
	env.Run(time.Minute)
	if at != 3*time.Second {
		t.Fatalf("callback at %v, want 3s", at)
	}
}

func TestSpawnInsideProcess(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	var childAt time.Duration
	env.Spawn("parent", func(p Proc) {
		p.Sleep(2 * time.Second)
		p.Env().Spawn("child", func(c Proc) {
			c.Sleep(time.Second)
			childAt = c.Now()
		})
	})
	env.Run(time.Minute)
	if childAt != 3*time.Second {
		t.Fatalf("child finished at %v, want 3s", childAt)
	}
}

func TestEverySpawnsPeriodicProcess(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	count := 0
	Every(env, "tick", time.Second, func(p Proc) { count++ })
	env.Run(10*time.Second + time.Millisecond)
	if count != 10 {
		t.Fatalf("count=%d, want 10", count)
	}
}

func TestResourceUseReturnsQueueingPlusService(t *testing.T) {
	env := NewEnv(1)
	defer env.Shutdown()
	res := NewResource(env, 1)
	var lat []time.Duration
	for i := 0; i < 3; i++ {
		env.Spawn("w", func(p Proc) {
			lat = append(lat, res.Use(p, time.Second))
		})
	}
	env.Run(time.Minute)
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if lat[i] != want[i] {
			t.Fatalf("latencies %v, want %v", lat, want)
		}
	}
	if res.Jobs() != 3 {
		t.Fatalf("jobs=%d, want 3", res.Jobs())
	}
	if res.BusyTime() != 3*time.Second {
		t.Fatalf("busy=%v, want 3s", res.BusyTime())
	}
}
