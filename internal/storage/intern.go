package storage

import (
	"math"
	"sync"
)

// Interning for BSON-lite decoding. Field names repeat across every
// document of a collection, and short string values (enum-ish codes,
// warehouse ids) repeat across rows, so decoding each one into a
// fresh heap string is pure allocator churn — on the binary wire path
// it would dominate the per-document decode cost. Intern returns a
// canonical shared string for such inputs from a bounded, sharded
// table; once a shard fills up, lookups still hit but new strings are
// no longer retained, so the table cannot grow without bound under
// high-cardinality values.
//
// A second layer caches *boxed* values: storing a decoded value into
// a Document means converting it to `any`, and that conversion heap-
// allocates the interface payload (runtime.convTstring / convT64)
// even when the underlying bytes are shared — Go's runtime only
// pre-boxes integers below 256. InternValue / InternInt64 /
// InternFloat64 return ready-boxed values from equally bounded
// tables, so re-decoding a warm working set allocates nothing per
// value. Entries are boxed once at insert and shared forever after;
// all boxed values are immutable.

const (
	// internMaxLen caps the length of strings worth interning: long
	// strings are unlikely to repeat and would bloat the table.
	internMaxLen = 64
	internShards = 16
	// internShardCap bounds each shard (~2048 * 16 shards = 32Ki
	// strings process-wide).
	internShardCap = 2048
)

// internEntry pairs the canonical string with its pre-boxed `any`
// form, so value-position strings skip the convTstring allocation.
type internEntry struct {
	s   string
	box any
}

type internShard struct {
	mu sync.RWMutex
	m  map[string]internEntry
}

var interner [internShards]internShard

// numShard is a bounded cache of boxed numeric values, keyed by the
// value's 64 bits. int64 and float64 use separate tables (their bit
// patterns collide).
type numShard struct {
	mu sync.RWMutex
	m  map[uint64]any
}

var (
	intBoxes   [internShards]numShard
	floatBoxes [internShards]numShard
)

// Intern returns a string equal to b, shared across callers when b is
// short enough to be worth caching. The returned string is immutable
// and safe for concurrent use.
func Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxLen {
		return string(b)
	}
	e, ok := lookupIntern(b)
	if ok {
		return e.s
	}
	return insertIntern(string(b)).s
}

// InternValue is Intern returning the string pre-boxed as `any` — for
// string values headed into a Document, where the interface
// conversion would otherwise allocate per decode.
func InternValue(b []byte) any {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxLen {
		return string(b)
	}
	e, ok := lookupIntern(b)
	if ok {
		return e.box
	}
	return insertIntern(string(b)).box
}

func internShardFor(b []byte) *internShard {
	// FNV-1a shard selection: cheap and stable, no per-call state.
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return &interner[h%internShards]
}

func lookupIntern(b []byte) (internEntry, bool) {
	s := internShardFor(b)
	s.mu.RLock()
	e, ok := s.m[string(b)] // compiler elides the []byte->string copy
	s.mu.RUnlock()
	return e, ok
}

func insertIntern(str string) internEntry {
	s := internShardFor([]byte(str))
	e := internEntry{s: str, box: str}
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]internEntry, 64)
	}
	if have, ok := s.m[str]; ok {
		s.mu.Unlock()
		return have
	}
	if len(s.m) < internShardCap {
		s.m[str] = e
	}
	s.mu.Unlock()
	return e
}

// numShardFor spreads sequential values across shards with a
// multiplicative hash.
func numShardFor(tbl *[internShards]numShard, key uint64) *numShard {
	return &tbl[(key*0x9E3779B97F4A7C15)>>59&(internShards-1)]
}

// lookupNum returns the cached box for key, if present.
func lookupNum(s *numShard, key uint64) (any, bool) {
	s.mu.RLock()
	box, ok := s.m[key]
	s.mu.RUnlock()
	return box, ok
}

// insertNum stores box under key (bounded), returning the canonical
// box. The caller pays the one boxing allocation on this miss path.
func insertNum(s *numShard, key uint64, box any) any {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[uint64]any, 64)
	}
	if have, ok := s.m[key]; ok {
		s.mu.Unlock()
		return have
	}
	if len(s.m) < internShardCap {
		s.m[key] = box
	}
	s.mu.Unlock()
	return box
}

// InternInt64 returns v boxed as `any`, sharing the box for repeated
// values. Values below 256 ride Go's built-in static boxes; others
// come from the bounded cache. Boxing happens only on the miss path.
func InternInt64(v int64) any {
	if uint64(v) < 256 {
		return v // runtime.convT64's static cache: no allocation
	}
	s := numShardFor(&intBoxes, uint64(v))
	if box, ok := lookupNum(s, uint64(v)); ok {
		return box
	}
	return insertNum(s, uint64(v), v)
}

// InternFloat64 returns f boxed as `any` from the bounded cache.
func InternFloat64(f float64) any {
	key := math.Float64bits(f)
	s := numShardFor(&floatBoxes, key)
	if box, ok := lookupNum(s, key); ok {
		return box
	}
	return insertNum(s, key, f)
}
