package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickIndexScanEquivalentToFullScan: for random datasets and
// random (indexable) filters, a collection with a matching compound
// index must return exactly the same documents as one without any
// index.
func TestQuickIndexScanEquivalentToFullScan(t *testing.T) {
	type q struct {
		WEq   uint8
		DEq   uint8
		OpSel uint8
		Bound uint8
	}
	f := func(seed int64, queries []q) bool {
		rng := rand.New(rand.NewSource(seed))
		indexed := NewStore().C("c")
		plain := NewStore().C("c")
		if _, err := indexed.CreateIndex("wdo", false, "w", "d", "o"); err != nil {
			return false
		}
		n := 200
		for i := 0; i < n; i++ {
			doc := D{
				"_id": fmt.Sprintf("x%d", i),
				"w":   rng.Intn(4),
				"d":   rng.Intn(5),
				"o":   rng.Intn(30),
			}
			if indexed.Insert(doc) != nil || plain.Insert(doc) != nil {
				return false
			}
		}
		for _, query := range queries {
			filter := Filter{
				"w": Eq(int(query.WEq % 4)),
				"d": Eq(int(query.DEq % 5)),
			}
			bound := int(query.Bound % 30)
			switch query.OpSel % 5 {
			case 0:
				filter["o"] = Gt(bound)
			case 1:
				filter["o"] = Gte(bound)
			case 2:
				filter["o"] = Lt(bound)
			case 3:
				filter["o"] = Lte(bound)
			case 4:
				filter["o"] = Eq(bound)
			}
			a := idsOf(indexed.Find(filter, 0))
			b := idsOf(plain.Find(filter, 0))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			if indexed.Count(filter) != plain.Count(filter) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func idsOf(docs []Document) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.ID()
	}
	sort.Strings(out)
	return out
}

// TestQuickLimitConsistency: with a limit, results are a subset of the
// unlimited results and at most `limit` long.
func TestQuickLimitConsistency(t *testing.T) {
	f := func(seed int64, limit uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewStore().C("c")
		c.CreateIndex("byG", false, "g")
		for i := 0; i < 100; i++ {
			c.Insert(D{"_id": fmt.Sprintf("k%d", i), "g": rng.Intn(3)})
		}
		filter := Filter{"g": Eq(1)}
		lim := int(limit%20) + 1
		all := map[string]bool{}
		for _, d := range c.Find(filter, 0) {
			all[d.ID()] = true
		}
		limited := c.Find(filter, lim)
		if len(limited) > lim {
			return false
		}
		if len(all) >= lim && len(limited) != lim {
			return false
		}
		for _, d := range limited {
			if !all[d.ID()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStorageInsert(b *testing.B) {
	c := NewStore().C("bench")
	c.CreateIndex("byN", false, "n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(D{"_id": fmt.Sprintf("k%d", i), "n": i % 1000, "payload": "xxxxxxxxxxxxxxxx"})
	}
}

func BenchmarkStorageFindByID(b *testing.B) {
	c := NewStore().C("bench")
	for i := 0; i < 100000; i++ {
		c.Insert(D{"_id": fmt.Sprintf("k%d", i), "n": i})
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FindByID(fmt.Sprintf("k%d", rng.Intn(100000)))
	}
}

func BenchmarkStorageIndexedFind(b *testing.B) {
	c := NewStore().C("bench")
	c.CreateIndex("wdo", false, "w", "d", "o")
	for i := 0; i < 50000; i++ {
		c.Insert(D{"_id": fmt.Sprintf("k%d", i), "w": i % 10, "d": (i / 10) % 10, "o": i / 100})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Find(Filter{"w": Eq(i % 10), "d": Eq(3), "o": Gte(100)}, 0)
	}
}

func BenchmarkBSONLiteEncodeDecode(b *testing.B) {
	d := D{"_id": "k", "a": int64(1), "b": "some string value here", "c": 3.14,
		"arr": []any{int64(1), int64(2), int64(3)}, "nested": D{"x": "y"}}
	nd, _ := d.Normalized()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := EncodeDoc(nd)
		if _, err := DecodeDoc(enc); err != nil {
			b.Fatal(err)
		}
	}
}
