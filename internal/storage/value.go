// Package storage implements the in-memory document store that backs
// each replica-set node: JSON-like documents, collections with a
// primary _id index and optional secondary (compound) indexes over a
// memcomparable key encoding, filtered queries with simple index
// selection, and a compact binary ("BSON-lite") document encoding used
// for oplog payloads and deep copies.
//
// The store is safe for concurrent use: collections carry
// reader-writer locks, and committed documents are immutable
// (mutations are copy-on-write — they build a fresh document and swap
// the pointer), so queries return shared snapshots without defensive
// copies. Every Document obtained from a collection is strictly
// read-only; clone before modifying.
package storage

import (
	"fmt"
	"sort"
)

// Document is a JSON-like document. Supported value types: nil, bool,
// int64, float64, string, []byte, []any and Document. Integers of other
// widths are normalized to int64 on insert.
type Document map[string]any

// D is shorthand for constructing documents in code.
type D = Document

// Normalize converts convenience numeric types (int, int32, ...) to the
// canonical int64/float64 representation, recursively. It returns an
// error for unsupported types.
func Normalize(v any) (any, error) {
	switch x := v.(type) {
	case nil, bool, int64, float64, string, []byte:
		return x, nil
	case int:
		return int64(x), nil
	case int8:
		return int64(x), nil
	case int16:
		return int64(x), nil
	case int32:
		return int64(x), nil
	case uint8:
		return int64(x), nil
	case uint16:
		return int64(x), nil
	case uint32:
		return int64(x), nil
	case float32:
		return float64(x), nil
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			n, err := Normalize(e)
			if err != nil {
				return nil, err
			}
			out[i] = n
		}
		return out, nil
	case Document:
		return x.Normalized()
	case map[string]any:
		return Document(x).Normalized()
	default:
		return nil, fmt.Errorf("storage: unsupported value type %T", v)
	}
}

// Normalized returns a copy of d with all values normalized.
func (d Document) Normalized() (Document, error) {
	out := make(Document, len(d))
	for k, v := range d {
		n, err := Normalize(v)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", k, err)
		}
		out[k] = n
	}
	return out, nil
}

// Clone performs a deep copy of the document.
func (d Document) Clone() Document {
	out := make(Document, len(d))
	for k, v := range d {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v any) any {
	switch x := v.(type) {
	case Document:
		return x.Clone()
	case map[string]any:
		return Document(x).Clone()
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = cloneValue(e)
		}
		return out
	case []byte:
		out := make([]byte, len(x))
		copy(out, x)
		return out
	default:
		return x
	}
}

// Get returns the value of a (possibly dotted) field path.
func (d Document) Get(path string) (any, bool) {
	cur := any(d)
	start := 0
	for i := 0; i <= len(path); i++ {
		if i == len(path) || path[i] == '.' {
			seg := path[start:i]
			doc, ok := asDocument(cur)
			if !ok {
				return nil, false
			}
			v, ok := doc[seg]
			if !ok {
				return nil, false
			}
			cur = v
			start = i + 1
		}
	}
	return cur, true
}

func asDocument(v any) (Document, bool) {
	switch x := v.(type) {
	case Document:
		return x, true
	case map[string]any:
		return Document(x), true
	default:
		return nil, false
	}
}

// Int returns the field as int64 (0 if missing or not numeric).
func (d Document) Int(path string) int64 {
	v, _ := d.Get(path)
	switch x := v.(type) {
	case int64:
		return x
	case float64:
		return int64(x)
	}
	return 0
}

// Float returns the field as float64 (0 if missing or not numeric).
func (d Document) Float(path string) float64 {
	v, _ := d.Get(path)
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	}
	return 0
}

// Str returns the field as string ("" if missing or not a string).
func (d Document) Str(path string) string {
	v, _ := d.Get(path)
	s, _ := v.(string)
	return s
}

// Array returns the field as a []any (nil if missing or wrong type).
func (d Document) Array(path string) []any {
	v, _ := d.Get(path)
	a, _ := v.([]any)
	return a
}

// Doc returns the field as a nested Document.
func (d Document) Doc(path string) Document {
	v, _ := d.Get(path)
	doc, _ := asDocument(v)
	return doc
}

// ID returns the document's _id as a string. Non-string ids are
// formatted canonically.
func (d Document) ID() string {
	v, ok := d["_id"]
	if !ok {
		return ""
	}
	if s, ok := v.(string); ok {
		return s
	}
	return fmt.Sprint(v)
}

// Keys returns the document's field names in sorted order.
func (d Document) Keys() []string {
	keys := make([]string, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Equal reports deep equality of two values in the document model.
func Equal(a, b any) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case int64:
		switch y := b.(type) {
		case int64:
			return x == y
		case float64:
			return float64(x) == y
		}
		return false
	case float64:
		switch y := b.(type) {
		case float64:
			return x == y
		case int64:
			return x == float64(y)
		}
		return false
	case string:
		y, ok := b.(string)
		return ok && x == y
	case []byte:
		y, ok := b.([]byte)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case []any:
		y, ok := b.([]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case Document:
		y, ok := asDocument(b)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			w, ok := y[k]
			if !ok || !Equal(v, w) {
				return false
			}
		}
		return true
	case map[string]any:
		return Equal(Document(x), b)
	}
	return false
}
