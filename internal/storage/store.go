package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Store is a named set of collections: one node's local database. It
// is safe for concurrent use: the collection map is guarded by an
// RWMutex (C's fast path is a read lock), and each Collection carries
// its own reader-writer synchronization.
type Store struct {
	mu          sync.RWMutex
	collections map[string]*Collection
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{collections: make(map[string]*Collection)}
}

// Create makes a new, empty collection. It errors if one exists.
func (s *Store) Create(name string) (*Collection, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.collections[name]; ok {
		return nil, fmt.Errorf("storage: collection %q already exists", name)
	}
	c := newCollection(name)
	s.collections[name] = c
	return c, nil
}

// C returns the collection with the given name, creating it if needed.
func (s *Store) C(name string) *Collection {
	s.mu.RLock()
	c, ok := s.collections[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.collections[name]; ok {
		return c
	}
	c = newCollection(name)
	s.collections[name] = c
	return c
}

// Lookup returns the named collection without creating it.
func (s *Store) Lookup(name string) (*Collection, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.collections[name]
	return c, ok
}

// Names returns the collection names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.collections))
	for n := range s.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CloneShallow returns a new store whose collections share this
// store's committed documents (see Collection.CloneShallow) — the
// initial-sync snapshot a node that fell off the oplog restarts from.
func (s *Store) CloneShallow() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := NewStore()
	for name, c := range s.collections {
		out.collections[name] = c.CloneShallow()
	}
	return out
}

// TotalDocs returns the number of documents across all collections.
func (s *Store) TotalDocs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, c := range s.collections {
		n += c.Len()
	}
	return n
}

// DBStats aggregates CollStats over a whole store — the dbstats
// command's source.
type DBStats struct {
	Collections int
	Docs        int
	Indexes     int
	// EncodedBytes is the total footprint of cached BSON-lite
	// encodings (see CollStats.EncodedBytes).
	EncodedBytes int64
	// PerCollection carries the individual rows, sorted by name.
	PerCollection []CollStats
}

// Stats walks every collection and returns the store's dbstats view.
// Cost is one read-locked tree walk per collection; intended for
// scrape-interval telemetry, not hot paths.
func (s *Store) Stats() DBStats {
	s.mu.RLock()
	colls := make([]*Collection, 0, len(s.collections))
	for _, c := range s.collections {
		colls = append(colls, c)
	}
	s.mu.RUnlock()
	out := DBStats{Collections: len(colls)}
	for _, c := range colls {
		cs := c.Stats()
		out.Docs += cs.Docs
		out.Indexes += cs.Indexes
		out.EncodedBytes += cs.EncodedBytes
		out.PerCollection = append(out.PerCollection, cs)
	}
	sort.Slice(out.PerCollection, func(i, j int) bool {
		return out.PerCollection[i].Name < out.PerCollection[j].Name
	})
	return out
}
