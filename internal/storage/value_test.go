package storage

import (
	"testing"
	"testing/quick"
)

func TestNormalizeNumericWidths(t *testing.T) {
	d := Document{
		"a": int(1), "b": int32(2), "c": int8(3), "d": float32(1.5),
		"e": []any{int(4), float32(2.5)},
		"f": map[string]any{"g": int16(7)},
	}
	n, err := d.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n["a"].(int64); !ok {
		t.Fatalf("a not int64: %T", n["a"])
	}
	if _, ok := n["d"].(float64); !ok {
		t.Fatalf("d not float64: %T", n["d"])
	}
	if _, ok := n["e"].([]any)[0].(int64); !ok {
		t.Fatal("array element not normalized")
	}
	if _, ok := n["f"].(Document)["g"].(int64); !ok {
		t.Fatal("nested doc not normalized")
	}
}

func TestNormalizeRejectsUnsupported(t *testing.T) {
	if _, err := (Document{"ch": make(chan int)}).Normalized(); err == nil {
		t.Fatal("expected error for channel value")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := Document{
		"nested": Document{"x": int64(1)},
		"arr":    []any{int64(1), Document{"y": int64(2)}},
		"bytes":  []byte{1, 2, 3},
	}
	c := d.Clone()
	c["nested"].(Document)["x"] = int64(99)
	c["arr"].([]any)[0] = int64(99)
	c["bytes"].([]byte)[0] = 99
	if d["nested"].(Document)["x"].(int64) != 1 {
		t.Fatal("nested doc shared after clone")
	}
	if d["arr"].([]any)[0].(int64) != 1 {
		t.Fatal("array shared after clone")
	}
	if d["bytes"].([]byte)[0] != 1 {
		t.Fatal("bytes shared after clone")
	}
}

func TestGetDottedPath(t *testing.T) {
	d := Document{"a": Document{"b": Document{"c": int64(7)}}}
	if v, ok := d.Get("a.b.c"); !ok || v.(int64) != 7 {
		t.Fatalf("Get(a.b.c) = %v, %v", v, ok)
	}
	if _, ok := d.Get("a.x.c"); ok {
		t.Fatal("missing path reported present")
	}
	if _, ok := d.Get("a.b.c.d"); ok {
		t.Fatal("path through scalar reported present")
	}
}

func TestAccessors(t *testing.T) {
	d := Document{"i": int64(3), "f": 2.5, "s": "hi", "arr": []any{int64(1)}, "d": Document{"k": "v"}, "_id": "x1"}
	if d.Int("i") != 3 || d.Int("f") != 2 || d.Int("missing") != 0 {
		t.Fatal("Int accessor wrong")
	}
	if d.Float("f") != 2.5 || d.Float("i") != 3.0 {
		t.Fatal("Float accessor wrong")
	}
	if d.Str("s") != "hi" || d.Str("i") != "" {
		t.Fatal("Str accessor wrong")
	}
	if len(d.Array("arr")) != 1 || d.Array("s") != nil {
		t.Fatal("Array accessor wrong")
	}
	if d.Doc("d").Str("k") != "v" {
		t.Fatal("Doc accessor wrong")
	}
	if d.ID() != "x1" {
		t.Fatal("ID accessor wrong")
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Equal(int64(3), float64(3)) || !Equal(float64(3), int64(3)) {
		t.Fatal("int64/float64 equality broken")
	}
	if Equal(int64(3), "3") {
		t.Fatal("string/number equal")
	}
	if !Equal([]any{int64(1), "a"}, []any{int64(1), "a"}) {
		t.Fatal("array equality broken")
	}
	if !Equal(Document{"a": int64(1)}, map[string]any{"a": int64(1)}) {
		t.Fatal("Document/map equality broken")
	}
	if Equal(Document{"a": int64(1)}, Document{"a": int64(1), "b": int64(2)}) {
		t.Fatal("different-size docs equal")
	}
}

func TestBSONLiteRoundTrip(t *testing.T) {
	d := Document{
		"_id":  "doc1",
		"n":    nil,
		"t":    true,
		"f":    false,
		"i":    int64(-12345),
		"big":  int64(1) << 60,
		"fl":   3.14159,
		"s":    "hello \x00 world",
		"b":    []byte{0, 1, 255},
		"arr":  []any{int64(1), "two", Document{"three": 3.0}},
		"doc":  Document{"nested": Document{"deep": "yes"}},
		"empt": Document{},
	}
	enc := EncodeDoc(d)
	dec, err := DecodeDoc(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(d, dec) {
		t.Fatalf("round trip mismatch:\n in: %v\nout: %v", d, dec)
	}
}

func TestBSONLiteCanonical(t *testing.T) {
	a := EncodeDoc(Document{"x": int64(1), "y": "z"})
	b := EncodeDoc(Document{"y": "z", "x": int64(1)})
	if string(a) != string(b) {
		t.Fatal("encoding not canonical across insertion orders")
	}
}

func TestBSONLiteCorruptInputs(t *testing.T) {
	good := EncodeDoc(Document{"k": "value", "n": int64(5)})
	for cut := 1; cut < len(good); cut++ {
		if _, err := DecodeDoc(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := DecodeDoc(append(append([]byte{}, good...), 0xAA)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
	if _, err := DecodeDoc([]byte{0x01, 0x01, 'k', 0x7F}); err == nil {
		t.Fatal("unknown type tag decoded without error")
	}
}

func TestQuickBSONLiteRoundTrip(t *testing.T) {
	f := func(s string, i int64, fl float64, bs []byte, flag bool) bool {
		if fl != fl { // NaN breaks Equal, not the codec; skip it
			fl = 0
		}
		d := Document{"s": s, "i": i, "f": fl, "b": bs, "flag": flag,
			"arr": []any{s, i}, "nested": Document{"x": fl}}
		dec, err := DecodeDoc(EncodeDoc(d))
		if err != nil {
			return false
		}
		return Equal(d, dec)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
