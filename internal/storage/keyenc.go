package storage

import (
	"encoding/binary"
	"math"
)

// Memcomparable key encoding: encodes index key values to byte strings
// whose bytewise order matches the value order. Used for compound
// secondary index keys.
//
// Type tags establish a total order across types:
// nil < bool < number < string < bytes. Numbers (int64 and float64) are
// encoded under a single tag as order-corrected IEEE-754 doubles, so
// integers and floats interleave correctly; integer magnitudes above
// 2^53 lose ordering precision (document ids in this codebase are far
// below that).
const (
	tagNil    byte = 0x01
	tagFalse  byte = 0x02
	tagTrue   byte = 0x03
	tagNumber byte = 0x04
	tagString byte = 0x05
	tagBytes  byte = 0x06
)

// AppendKey appends the memcomparable encoding of v to dst.
func AppendKey(dst []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, tagNil)
	case bool:
		if x {
			return append(dst, tagTrue)
		}
		return append(dst, tagFalse)
	case int64:
		return appendNumber(dst, float64(x))
	case float64:
		return appendNumber(dst, x)
	case string:
		dst = append(dst, tagString)
		return appendEscaped(dst, []byte(x))
	case []byte:
		dst = append(dst, tagBytes)
		return appendEscaped(dst, x)
	default:
		// Callers normalize documents on insert, so this indicates a
		// programming error in index definitions.
		panic("storage: unindexable key type")
	}
}

func appendNumber(dst []byte, f float64) []byte {
	dst = append(dst, tagNumber)
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits // negative: flip all bits
	} else {
		bits |= 1 << 63 // non-negative: flip sign bit
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], bits)
	return append(dst, buf[:]...)
}

// appendEscaped writes b with 0x00 escaped as 0x00 0xFF and terminates
// with 0x00 0x01, preserving prefix ordering.
func appendEscaped(dst, b []byte) []byte {
	for _, c := range b {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x01)
}

// EncodeCompoundKey encodes the ordered field values of a compound
// index entry into a single memcomparable byte string.
func EncodeCompoundKey(values ...any) string {
	var dst []byte
	for _, v := range values {
		dst = AppendKey(dst, v)
	}
	return string(dst)
}

// CompoundKeyPrefix returns the encoding of a key prefix — useful for
// range scans over the leading fields of a compound index: all keys
// with that prefix sort within [prefix, PrefixSuccessor(prefix)).
func CompoundKeyPrefix(values ...any) string {
	return EncodeCompoundKey(values...)
}

// PrefixSuccessor returns the smallest string greater than every string
// with the given prefix, or "" if there is none (all 0xFF).
func PrefixSuccessor(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}
