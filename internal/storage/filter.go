package storage

// Query filters: a Filter maps field paths to conditions. All
// conditions must hold (implicit AND), mirroring the common MongoDB
// find shape {f1: v1, f2: {$gt: v2}}.

// Op is a comparison operator in a filter condition.
type Op int

const (
	OpEq Op = iota
	OpNe
	OpGt
	OpGte
	OpLt
	OpLte
	OpIn
	OpExists
)

// Cond is a single condition on a field. A range condition (OpGt,
// OpGte, OpLt, OpLte) may carry a second range bound in Op2/Value2,
// making the condition a two-sided interval on one field — e.g.
// {$gte: lo, $lt: hi} — which planIndex turns into a closed-interval
// index scan instead of a one-sided scan plus residual filtering.
// Op2 is meaningful only when the primary op is a range op; the zero
// Op2 means no second bound.
type Cond struct {
	Op     Op
	Value  any
	Values []any // for OpIn
	Op2    Op    // optional second range bound (OpGt/OpGte/OpLt/OpLte)
	Value2 any
}

// Filter maps field paths to conditions; all must match.
type Filter map[string]Cond

// Eq, Ne, Gt, Gte, Lt, Lte, In and Exists build conditions.
func Eq(v any) Cond  { return Cond{Op: OpEq, Value: mustNormalize(v)} }
func Ne(v any) Cond  { return Cond{Op: OpNe, Value: mustNormalize(v)} }
func Gt(v any) Cond  { return Cond{Op: OpGt, Value: mustNormalize(v)} }
func Gte(v any) Cond { return Cond{Op: OpGte, Value: mustNormalize(v)} }
func Lt(v any) Cond  { return Cond{Op: OpLt, Value: mustNormalize(v)} }
func Lte(v any) Cond { return Cond{Op: OpLte, Value: mustNormalize(v)} }
func Exists() Cond   { return Cond{Op: OpExists} }

// Range builds the half-open two-sided condition lo <= x < hi.
func Range(lo, hi any) Cond {
	return Cond{Op: OpGte, Value: mustNormalize(lo), Op2: OpLt, Value2: mustNormalize(hi)}
}

// IsRangeOp reports whether op is an ordering comparison usable as an
// interval bound.
func IsRangeOp(op Op) bool {
	return op == OpGt || op == OpGte || op == OpLt || op == OpLte
}

// And combines two one-sided range conditions on the same field into a
// two-sided condition. Both operands must be range conditions without
// second bounds; anything else panics (a programming error, like an
// unindexable key type).
func (c Cond) And(other Cond) Cond {
	if !IsRangeOp(c.Op) || c.Op2 != 0 || !IsRangeOp(other.Op) || other.Op2 != 0 {
		panic("storage: Cond.And requires two one-sided range conditions")
	}
	c.Op2, c.Value2 = other.Op, other.Value
	return c
}
func In(vs ...any) Cond {
	out := make([]any, len(vs))
	for i, v := range vs {
		out[i] = mustNormalize(v)
	}
	return Cond{Op: OpIn, Values: out}
}

func mustNormalize(v any) any {
	n, err := Normalize(v)
	if err != nil {
		panic(err)
	}
	return n
}

// Matches reports whether the document satisfies every condition.
func (f Filter) Matches(d Document) bool {
	for path, c := range f {
		v, ok := d.Get(path)
		if !c.matches(v, ok) {
			return false
		}
	}
	return true
}

func (c Cond) matches(v any, present bool) bool {
	switch c.Op {
	case OpExists:
		return present
	case OpEq:
		return present && Equal(v, c.Value)
	case OpNe:
		return !present || !Equal(v, c.Value)
	case OpIn:
		if !present {
			return false
		}
		for _, w := range c.Values {
			if Equal(v, w) {
				return true
			}
		}
		return false
	}
	if !present {
		return false
	}
	if !rangeMatches(c.Op, v, c.Value) {
		return false
	}
	if c.Op2 != 0 {
		return rangeMatches(c.Op2, v, c.Value2)
	}
	return true
}

// rangeMatches evaluates one ordering comparison; non-range ops and
// type-bracketed incomparable values fail.
func rangeMatches(op Op, v, bound any) bool {
	cmp, ok := Compare(v, bound)
	if !ok {
		return false
	}
	switch op {
	case OpGt:
		return cmp > 0
	case OpGte:
		return cmp >= 0
	case OpLt:
		return cmp < 0
	case OpLte:
		return cmp <= 0
	}
	return false
}

// Compare orders two scalar values. It returns ok=false when the types
// are not mutually comparable (e.g. string vs number): range conditions
// then fail, matching MongoDB's type-bracketed comparisons.
func Compare(a, b any) (int, bool) {
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return cmpOrdered(x, y), true
		case float64:
			return cmpOrdered(float64(x), y), true
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return cmpOrdered(x, float64(y)), true
		case float64:
			return cmpOrdered(x, y), true
		}
	case string:
		if y, ok := b.(string); ok {
			return cmpOrdered(x, y), true
		}
	case bool:
		if y, ok := b.(bool); ok {
			switch {
			case x == y:
				return 0, true
			case !x:
				return -1, true
			default:
				return 1, true
			}
		}
	case nil:
		if b == nil {
			return 0, true
		}
	}
	return 0, false
}

func cmpOrdered[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
