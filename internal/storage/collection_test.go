package storage

import (
	"fmt"
	"testing"
)

func TestInsertFindDelete(t *testing.T) {
	s := NewStore()
	c := s.C("users")
	if err := c.Insert(D{"_id": "u1", "name": "ada", "age": 36}); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(D{"_id": "u1", "name": "dup"}); err == nil {
		t.Fatal("duplicate _id accepted")
	}
	if err := c.Insert(D{"name": "no id"}); err == nil {
		t.Fatal("missing _id accepted")
	}
	d, ok := c.FindByID("u1")
	if !ok || d.Str("name") != "ada" || d.Int("age") != 36 {
		t.Fatalf("FindByID: %v %v", d, ok)
	}
	if !c.Delete("u1") {
		t.Fatal("delete failed")
	}
	if c.Delete("u1") {
		t.Fatal("second delete succeeded")
	}
	if _, ok := c.FindByID("u1"); ok {
		t.Fatal("found after delete")
	}
}

func TestStoredCopyDetached(t *testing.T) {
	c := NewStore().C("c")
	orig := D{"_id": "x", "v": 1, "nested": D{"a": 1}}
	if err := c.Insert(orig); err != nil {
		t.Fatal(err)
	}
	orig["v"] = 999
	orig["nested"].(D)["a"] = 999
	got, _ := c.FindByID("x")
	if got.Int("v") != 1 || got.Doc("nested").Int("a") != 1 {
		t.Fatal("stored document aliases caller value")
	}
}

func TestCopyOnWriteSnapshots(t *testing.T) {
	c := NewStore().C("c")
	if err := c.Insert(D{"_id": "x", "v": 1, "nested": D{"a": 1}}); err != nil {
		t.Fatal(err)
	}
	// A reader's snapshot must survive later writes: mutations build a
	// fresh document and swap the pointer rather than editing in place.
	snap, _ := c.FindByID("x")
	if _, err := c.ApplySet("x", D{"v": 2, "nested": D{"a": 2}}); err != nil {
		t.Fatal(err)
	}
	if snap.Int("v") != 1 || snap.Doc("nested").Int("a") != 1 {
		t.Fatalf("snapshot changed under a writer: %v", snap)
	}
	cur, _ := c.FindByID("x")
	if cur.Int("v") != 2 || cur.Doc("nested").Int("a") != 2 {
		t.Fatalf("post-write state wrong: %v", cur)
	}
	// Upsert replacement likewise leaves the old snapshot untouched.
	if err := c.Upsert(D{"_id": "x", "v": 3}); err != nil {
		t.Fatal(err)
	}
	if cur.Int("v") != 2 {
		t.Fatalf("upsert mutated a committed document: %v", cur)
	}
}

func TestApplySetMergeAndIdempotence(t *testing.T) {
	c := NewStore().C("c")
	if err := c.Insert(D{"_id": "k", "a": 1, "b": 2}); err != nil {
		t.Fatal(err)
	}
	post, err := c.ApplySet("k", D{"b": 20, "c": 30})
	if err != nil {
		t.Fatal(err)
	}
	if post.Int("a") != 1 || post.Int("b") != 20 || post.Int("c") != 30 {
		t.Fatalf("post-image wrong: %v", post)
	}
	// Re-apply: state unchanged (idempotent, as oplog application needs).
	post2, err := c.ApplySet("k", D{"b": 20, "c": 30})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(post, post2) {
		t.Fatalf("re-apply changed state: %v vs %v", post, post2)
	}
	// ApplySet on a missing id creates the document.
	if _, err := c.ApplySet("new", D{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if d, ok := c.FindByID("new"); !ok || d.Int("x") != 1 {
		t.Fatal("ApplySet did not upsert")
	}
}

func TestUpsertReplaces(t *testing.T) {
	c := NewStore().C("c")
	if err := c.Upsert(D{"_id": "k", "a": 1, "b": 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Upsert(D{"_id": "k", "a": 10}); err != nil {
		t.Fatal(err)
	}
	d, _ := c.FindByID("k")
	if d.Int("a") != 10 {
		t.Fatalf("a=%d", d.Int("a"))
	}
	if _, present := d["b"]; present {
		t.Fatal("upsert merged instead of replacing")
	}
}

func TestFindWithFilterFullScan(t *testing.T) {
	c := NewStore().C("c")
	for i := 0; i < 100; i++ {
		if err := c.Insert(D{"_id": fmt.Sprintf("d%03d", i), "n": i, "mod": i % 10}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Find(Filter{"mod": Eq(3)}, 0)
	if len(got) != 10 {
		t.Fatalf("found %d, want 10", len(got))
	}
	got = c.Find(Filter{"n": Gte(90), "mod": Lt(5)}, 0)
	if len(got) != 5 {
		t.Fatalf("found %d, want 5", len(got))
	}
	got = c.Find(Filter{"mod": Eq(3)}, 4)
	if len(got) != 4 {
		t.Fatalf("limit ignored: %d", len(got))
	}
	if n := c.Count(Filter{"mod": In(1, 2)}); n != 20 {
		t.Fatalf("Count=%d, want 20", n)
	}
}

func TestSecondaryIndexEqualityAndRange(t *testing.T) {
	c := NewStore().C("orders")
	if _, err := c.CreateIndex("wdo", false, "w", "d", "o"); err != nil {
		t.Fatal(err)
	}
	n := 0
	for w := 1; w <= 3; w++ {
		for d := 1; d <= 4; d++ {
			for o := 1; o <= 25; o++ {
				n++
				err := c.Insert(D{"_id": fmt.Sprintf("o%d", n), "w": w, "d": d, "o": o})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	got := c.Find(Filter{"w": Eq(2), "d": Eq(3)}, 0)
	if len(got) != 25 {
		t.Fatalf("equality prefix found %d, want 25", len(got))
	}
	// Leading equalities + trailing range (the Stock Level pattern).
	got = c.Find(Filter{"w": Eq(2), "d": Eq(3), "o": Gt(5)}, 0)
	if len(got) != 20 {
		t.Fatalf("range found %d, want 20", len(got))
	}
	got = c.Find(Filter{"w": Eq(2), "d": Eq(3), "o": Gte(5)}, 0)
	if len(got) != 21 {
		t.Fatalf("gte found %d, want 21", len(got))
	}
	got = c.Find(Filter{"w": Eq(2), "d": Eq(3), "o": Lte(5)}, 0)
	if len(got) != 5 {
		t.Fatalf("lte found %d, want 5", len(got))
	}
	got = c.Find(Filter{"w": Eq(2), "d": Eq(3), "o": Lt(5)}, 0)
	if len(got) != 4 {
		t.Fatalf("lt found %d, want 4", len(got))
	}
}

func TestIndexMaintainedAcrossUpdateDelete(t *testing.T) {
	c := NewStore().C("c")
	if _, err := c.CreateIndex("byV", false, "v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Insert(D{"_id": fmt.Sprintf("k%d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.ApplySet("k5", D{"v": 100}); err != nil {
		t.Fatal(err)
	}
	if got := c.Find(Filter{"v": Eq(5)}, 0); len(got) != 0 {
		t.Fatal("old index entry survived update")
	}
	if got := c.Find(Filter{"v": Eq(100)}, 0); len(got) != 1 {
		t.Fatal("new index entry missing after update")
	}
	c.Delete("k6")
	if got := c.Find(Filter{"v": Eq(6)}, 0); len(got) != 0 {
		t.Fatal("index entry survived delete")
	}
}

func TestIndexBackfill(t *testing.T) {
	c := NewStore().C("c")
	for i := 0; i < 50; i++ {
		if err := c.Insert(D{"_id": fmt.Sprintf("k%d", i), "grp": i % 5}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CreateIndex("byGrp", false, "grp"); err != nil {
		t.Fatal(err)
	}
	if got := c.Find(Filter{"grp": Eq(2)}, 0); len(got) != 10 {
		t.Fatalf("backfilled index found %d, want 10", len(got))
	}
	if _, err := c.CreateIndex("byGrp", false, "grp"); err == nil {
		t.Fatal("duplicate index name accepted")
	}
}

func TestUniqueIndexRejectsDuplicates(t *testing.T) {
	c := NewStore().C("c")
	if _, err := c.CreateIndex("uniq", true, "email"); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(D{"_id": "a", "email": "x@y"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(D{"_id": "b", "email": "x@y"}); err == nil {
		t.Fatal("unique violation accepted")
	}
	// Failed insert must not leave the doc behind.
	if _, ok := c.FindByID("b"); ok {
		t.Fatal("rejected document stored")
	}
	if err := c.Insert(D{"_id": "b", "email": "z@y"}); err != nil {
		t.Fatal(err)
	}
}

func TestMissingIndexedFieldIndexesAsNil(t *testing.T) {
	c := NewStore().C("c")
	if _, err := c.CreateIndex("byV", false, "v"); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(D{"_id": "novalue"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(D{"_id": "with", "v": 1}); err != nil {
		t.Fatal(err)
	}
	if got := c.Find(Filter{"v": Eq(1)}, 0); len(got) != 1 {
		t.Fatalf("found %d", len(got))
	}
}

func TestStoreCollections(t *testing.T) {
	s := NewStore()
	if _, err := s.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("a"); err == nil {
		t.Fatal("duplicate collection accepted")
	}
	s.C("b").Insert(D{"_id": "1"})
	if _, ok := s.Lookup("zzz"); ok {
		t.Fatal("Lookup invented a collection")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names=%v", names)
	}
	if s.TotalDocs() != 1 {
		t.Fatalf("TotalDocs=%d", s.TotalDocs())
	}
}

func TestFilterOperators(t *testing.T) {
	d := D{"n": int64(5), "s": "abc", "b": true}
	cases := []struct {
		f    Filter
		want bool
	}{
		{Filter{"n": Eq(5)}, true},
		{Filter{"n": Eq(5.0)}, true},
		{Filter{"n": Ne(4)}, true},
		{Filter{"n": Ne(5)}, false},
		{Filter{"n": Gt(4)}, true},
		{Filter{"n": Gt(5)}, false},
		{Filter{"n": Gte(5)}, true},
		{Filter{"n": Lt(6)}, true},
		{Filter{"n": Lte(5)}, true},
		{Filter{"n": In(1, 5, 9)}, true},
		{Filter{"n": In(1, 9)}, false},
		{Filter{"n": Exists()}, true},
		{Filter{"missing": Exists()}, false},
		{Filter{"missing": Ne(1)}, true}, // absent field != value
		{Filter{"s": Gt("abb")}, true},
		{Filter{"s": Gt(5)}, false}, // type-bracketed: no cross-type range
		{Filter{"n": Eq(5), "s": Eq("abc")}, true},
		{Filter{"n": Eq(5), "s": Eq("zzz")}, false},
	}
	for i, tc := range cases {
		if got := tc.f.Matches(d); got != tc.want {
			t.Errorf("case %d: Matches=%v, want %v", i, got, tc.want)
		}
	}
}
