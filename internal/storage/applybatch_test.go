package storage

// Tests for the replication-owned apply entry points (UpsertOwned,
// ApplySetOwned, ApplyBatch) and the initial-sync shallow clone.

import "testing"

func TestApplyBatchMixedOps(t *testing.T) {
	c := NewStore().C("c")
	if _, err := c.CreateIndex("grp", false, "grp"); err != nil {
		t.Fatal(err)
	}
	ops := []ApplyOp{
		{Kind: ApplyUpsert, ID: "a", Doc: D{"_id": "a", "grp": int64(1), "v": int64(1)}},
		{Kind: ApplyUpsert, ID: "b", Doc: D{"_id": "b", "grp": int64(2), "v": int64(2)}},
		{Kind: ApplyMerge, ID: "a", Doc: D{"v": int64(10)}},
		{Kind: ApplyDelete, ID: "b"},
		{Kind: ApplyMerge, ID: "ghost", Doc: D{"grp": int64(3)}}, // upserting merge
	}
	applied, err := c.ApplyBatch(ops)
	if err != nil || applied != len(ops) {
		t.Fatalf("applied=%d err=%v", applied, err)
	}
	a, ok := c.FindByID("a")
	if !ok || a.Int("v") != 10 || a.Int("grp") != 1 {
		t.Fatalf("a=%v", a)
	}
	if _, ok := c.FindByID("b"); ok {
		t.Fatal("b survived delete")
	}
	// Index must reflect the batch: a moved nowhere, b gone, ghost added.
	if got := c.Find(Filter{"grp": Eq(int64(2))}, 0); len(got) != 0 {
		t.Fatalf("grp=2 still indexed: %v", got)
	}
	if got := c.Find(Filter{"grp": Eq(int64(3))}, 0); len(got) != 1 {
		t.Fatalf("ghost not indexed: %v", got)
	}
}

func TestApplyBatchSkipsBadOpAndReportsFirstError(t *testing.T) {
	c := NewStore().C("c")
	ops := []ApplyOp{
		{Kind: ApplyUpsert, ID: "a", Doc: D{"_id": "a", "v": int64(1)}},
		{Kind: ApplyUpsert, ID: "bad", Doc: D{"v": int64(2)}}, // no _id
		{Kind: ApplyUpsert, ID: "b", Doc: D{"_id": "b", "v": int64(3)}},
	}
	applied, err := c.ApplyBatch(ops)
	if applied != 2 || err == nil {
		t.Fatalf("applied=%d err=%v, want 2 with error", applied, err)
	}
	if _, ok := c.FindByID("b"); !ok {
		t.Fatal("op after the failure was not applied")
	}
}

func TestOwnedVariantsMatchPublicOnes(t *testing.T) {
	plain := NewStore().C("c")
	owned := NewStore().C("c")
	doc := D{"_id": "k", "v": int64(1), "arr": []any{int64(1), int64(2)}}
	if err := plain.Upsert(doc); err != nil {
		t.Fatal(err)
	}
	norm, err := doc.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if err := owned.UpsertOwned(norm); err != nil {
		t.Fatal(err)
	}
	fields := D{"v": int64(7), "w": int64(8)}
	if _, err := plain.ApplySet("k", fields); err != nil {
		t.Fatal(err)
	}
	nf, err := fields.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owned.ApplySetOwned("k", nf); err != nil {
		t.Fatal(err)
	}
	d1, _ := plain.FindByID("k")
	d2, _ := owned.FindByID("k")
	if !Equal(d1, d2) {
		t.Fatalf("owned path diverged: %v vs %v", d1, d2)
	}
}

func TestCloneShallowIsIndependent(t *testing.T) {
	s := NewStore()
	c := s.C("c")
	if _, err := c.CreateIndex("grp", false, "grp"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Insert(D{"_id": string(rune('a' + i)), "grp": int64(i % 4), "v": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	clone := s.CloneShallow()
	cc := clone.C("c")
	if cc.Len() != 20 {
		t.Fatalf("clone has %d docs", cc.Len())
	}
	// Index works in the clone.
	if got := cc.Find(Filter{"grp": Eq(int64(2))}, 0); len(got) != 5 {
		t.Fatalf("clone index scan: %d docs, want 5", len(got))
	}
	// Documents are shared pointers, not deep copies.
	d1, _ := c.FindByID("a")
	d2, _ := cc.FindByID("a")
	if !Equal(d1, d2) {
		t.Fatal("clone content differs")
	}
	// Divergence after the clone stays private to each side.
	if _, err := cc.ApplySet("a", D{"v": int64(99)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("b"); !err {
		t.Fatal("delete in original failed")
	}
	if d, _ := c.FindByID("a"); d.Int("v") == 99 {
		t.Fatal("clone write leaked into the original")
	}
	if _, ok := cc.FindByID("b"); !ok {
		t.Fatal("original delete leaked into the clone")
	}
}
