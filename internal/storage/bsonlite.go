package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// BSON-lite: a compact, self-describing binary encoding of documents,
// in the spirit of BSON. Used for oplog entry payloads (so replication
// ships bytes, not shared pointers) and as the wire body format.
//
// Layout: document = uvarint fieldCount, then per field:
// uvarint len + name bytes, 1-byte type code, value. Fields are written
// in sorted name order so encodings are canonical and comparable.

const (
	btNil    byte = 0x00
	btFalse  byte = 0x01
	btTrue   byte = 0x02
	btInt64  byte = 0x03
	btFloat  byte = 0x04
	btString byte = 0x05
	btBytes  byte = 0x06
	btArray  byte = 0x07
	btDoc    byte = 0x08
)

var errCorrupt = errors.New("storage: corrupt bson-lite data")

// EncodeDoc serializes a document to BSON-lite bytes.
func EncodeDoc(d Document) []byte {
	return appendDoc(nil, d)
}

// AppendDoc appends a document's BSON-lite encoding to dst.
func AppendDoc(dst []byte, d Document) []byte {
	return appendDoc(dst, d)
}

// smallDocFields is the field count up to which appendDoc sorts keys
// in a stack scratch buffer, keeping small-document encoding off the
// allocator entirely.
const smallDocFields = 16

func appendDoc(dst []byte, d Document) []byte {
	if len(d) <= smallDocFields {
		var scratch [smallDocFields]string
		keys := scratch[:0]
		for k := range d {
			keys = append(keys, k)
		}
		insertionSortStrings(keys)
		return appendFields(dst, d, keys)
	}
	keys := make([]string, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return appendFields(dst, d, keys)
}

// insertionSortStrings sorts in place without the interface boxing of
// sort.Strings, so a caller's stack scratch buffer does not escape.
func insertionSortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func appendFields(dst []byte, d Document, keys []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = appendValue(dst, d[k])
	}
	return dst
}

func appendValue(dst []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, btNil)
	case bool:
		if x {
			return append(dst, btTrue)
		}
		return append(dst, btFalse)
	case int64:
		dst = append(dst, btInt64)
		return binary.AppendVarint(dst, x)
	case float64:
		dst = append(dst, btFloat)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		return append(dst, buf[:]...)
	case string:
		dst = append(dst, btString)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...)
	case []byte:
		dst = append(dst, btBytes)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...)
	case []any:
		dst = append(dst, btArray)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		for _, e := range x {
			dst = appendValue(dst, e)
		}
		return dst
	case Document:
		dst = append(dst, btDoc)
		return appendDoc(dst, x)
	case map[string]any:
		dst = append(dst, btDoc)
		return appendDoc(dst, Document(x))
	default:
		panic(fmt.Sprintf("storage: cannot encode %T (normalize first)", v))
	}
}

// AppendValue appends one value's BSON-lite encoding (type tag plus
// payload) to dst. The value must be in the canonical document model
// (Normalize first); unsupported types panic like EncodeDoc.
func AppendValue(dst []byte, v any) []byte {
	return appendValue(dst, v)
}

// DecodeValue decodes one BSON-lite value from b, returning the value
// and the unconsumed remainder.
func DecodeValue(b []byte) (any, []byte, error) {
	return decodeValue(b)
}

// DecodeDocPrefix decodes one document from the front of b, returning
// the unconsumed remainder — for streams that concatenate documents
// back to back (the encoding is self-delimiting).
func DecodeDocPrefix(b []byte) (Document, []byte, error) {
	return decodeDoc(b)
}

// DecodeDoc parses BSON-lite bytes back into a document.
func DecodeDoc(b []byte) (Document, error) {
	d, rest, err := decodeDoc(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errCorrupt, len(rest))
	}
	return d, nil
}

func decodeDoc(b []byte) (Document, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	// A field costs at least two bytes (key length + type tag), so a
	// count beyond len(b)/2 is corrupt — reject it before sizing the
	// map, so hostile input cannot force a huge allocation.
	if n > uint64(len(b))/2 {
		return nil, nil, errCorrupt
	}
	d := make(Document, n)
	for i := uint64(0); i < n; i++ {
		var klen uint64
		klen, b, err = readUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		if uint64(len(b)) < klen {
			return nil, nil, errCorrupt
		}
		key := Intern(b[:klen])
		b = b[klen:]
		var v any
		v, b, err = decodeValue(b)
		if err != nil {
			return nil, nil, err
		}
		d[key] = v
	}
	return d, b, nil
}

func decodeValue(b []byte) (any, []byte, error) {
	if len(b) == 0 {
		return nil, nil, errCorrupt
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case btNil:
		return nil, b, nil
	case btFalse:
		return false, b, nil
	case btTrue:
		return true, b, nil
	case btInt64:
		v, n := binary.Varint(b)
		if n <= 0 {
			return nil, nil, errCorrupt
		}
		return InternInt64(v), b[n:], nil
	case btFloat:
		if len(b) < 8 {
			return nil, nil, errCorrupt
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(b))
		return InternFloat64(v), b[8:], nil
	case btString:
		n, b, err := readUvarint(b)
		if err != nil || uint64(len(b)) < n {
			return nil, nil, errCorrupt
		}
		return InternValue(b[:n]), b[n:], nil
	case btBytes:
		n, b, err := readUvarint(b)
		if err != nil || uint64(len(b)) < n {
			return nil, nil, errCorrupt
		}
		out := make([]byte, n)
		copy(out, b[:n])
		return out, b[n:], nil
	case btArray:
		n, b, err := readUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		// An element costs at least one byte (its type tag): bound the
		// slice allocation by the bytes that could actually back it.
		if n > uint64(len(b)) {
			return nil, nil, errCorrupt
		}
		arr := make([]any, 0, n)
		for i := uint64(0); i < n; i++ {
			var e any
			e, b, err = decodeValue(b)
			if err != nil {
				return nil, nil, err
			}
			arr = append(arr, e)
		}
		return arr, b, nil
	case btDoc:
		return decodeDocAsAny(b)
	default:
		return nil, nil, fmt.Errorf("%w: unknown type tag 0x%02x", errCorrupt, tag)
	}
}

func decodeDocAsAny(b []byte) (any, []byte, error) {
	d, rest, err := decodeDoc(b)
	return d, rest, err
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errCorrupt
	}
	return v, b[n:], nil
}
