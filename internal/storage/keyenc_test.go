package storage

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyEncodingOrdersNumbers(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e18, -5, -0.5, 0, 0.5, 5, 1e18, math.Inf(1)}
	var keys []string
	for _, v := range vals {
		keys = append(keys, string(AppendKey(nil, v)))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("number keys out of order: %q", keys)
	}
}

func TestKeyEncodingIntFloatInterleave(t *testing.T) {
	a := string(AppendKey(nil, int64(3)))
	b := string(AppendKey(nil, 3.5))
	c := string(AppendKey(nil, int64(4)))
	if !(a < b && b < c) {
		t.Fatal("int/float interleaving broken")
	}
	if a3f := string(AppendKey(nil, 3.0)); a3f != a {
		t.Fatal("int64(3) and float64(3) encode differently")
	}
}

func TestKeyEncodingOrdersStringsWithZeros(t *testing.T) {
	vals := []string{"", "a", "a\x00", "a\x00b", "a\x01", "ab", "b"}
	var keys []string
	for _, v := range vals {
		keys = append(keys, string(AppendKey(nil, v)))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("string keys out of order at %d: %q vs %q", i, vals[i-1], vals[i])
		}
	}
}

func TestKeyEncodingTypeOrder(t *testing.T) {
	// nil < false < true < number < string < bytes
	ordered := []any{nil, false, true, int64(-1), "a", []byte("a")}
	var keys []string
	for _, v := range ordered {
		keys = append(keys, string(AppendKey(nil, v)))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("type ordering broken: %q", keys)
	}
}

func TestCompoundKeyPrefixScan(t *testing.T) {
	full := EncodeCompoundKey(int64(1), "d2", int64(77))
	prefix := CompoundKeyPrefix(int64(1), "d2")
	if len(full) <= len(prefix) || full[:len(prefix)] != prefix {
		t.Fatal("compound key does not extend its prefix")
	}
	succ := PrefixSuccessor(prefix)
	if !(prefix <= full && full < succ) {
		t.Fatal("full key not within [prefix, successor)")
	}
	other := EncodeCompoundKey(int64(1), "d3", int64(0))
	if other < succ {
		t.Fatal("key from different prefix fell inside the range")
	}
}

func TestPrefixSuccessorAll0xFF(t *testing.T) {
	if PrefixSuccessor("\xff\xff") != "" {
		t.Fatal("successor of all-0xFF should be empty")
	}
	if PrefixSuccessor("") != "" {
		t.Fatal("successor of empty should be empty")
	}
	if PrefixSuccessor("a\xff") != "b" {
		t.Fatalf("PrefixSuccessor(a 0xFF) = %q", PrefixSuccessor("a\xff"))
	}
}

func TestQuickNumberKeyOrderMatchesValueOrder(t *testing.T) {
	f := func(a, b float64) bool {
		if a != a || b != b {
			return true // NaN unordered; not used as keys
		}
		ka := string(AppendKey(nil, a))
		kb := string(AppendKey(nil, b))
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStringKeyOrderMatchesValueOrder(t *testing.T) {
	f := func(a, b string) bool {
		ka := string(AppendKey(nil, a))
		kb := string(AppendKey(nil, b))
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
