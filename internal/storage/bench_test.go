package storage

// Read-path allocation benchmarks. The PR 3 headline: with immutable
// (copy-on-write) committed documents, point lookups and scans return
// shared snapshots instead of deep clones, so B/op and allocs/op on
// these benches collapse to near zero.
//
//	go test ./internal/storage -bench BenchmarkCollection -benchtime 1x -count 3 -benchmem

import (
	"fmt"
	"testing"
)

func benchCollection(b *testing.B, docs int) *Collection {
	b.Helper()
	c := newCollection("bench")
	if _, err := c.CreateIndex("w_id", false, "w_id"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < docs; i++ {
		lines := make([]any, 8)
		for j := range lines {
			lines[j] = Document{
				"i_id":   int64(j),
				"qty":    int64(5),
				"amount": 3.14,
				"info":   "abcdefghijklmnopqrstuvwx",
			}
		}
		if err := c.Insert(Document{
			"_id":         fmt.Sprintf("doc%05d", i),
			"w_id":        int64(i % 64),
			"val":         int64(i),
			"order_lines": lines,
		}); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

func BenchmarkCollectionFindByID(b *testing.B) {
	c := benchCollection(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, ok := c.FindByID(fmt.Sprintf("doc%05d", i%1024))
		if !ok || d == nil {
			b.Fatal("missing doc")
		}
	}
}

func BenchmarkCollectionFindScan(b *testing.B) {
	c := benchCollection(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs := c.Find(Filter{"w_id": Eq(int64(i % 64))}, 0)
		if len(docs) == 0 {
			b.Fatal("empty scan")
		}
	}
}

// BenchmarkEncodeDoc measures BSON-lite document encoding: "small" is
// the flat-document fast path (the per-call key-slice allocation and
// sort.Strings the PR 5 scratch-buffer sort removes), "nested" the
// recursive path through arrays of subdocuments.
func BenchmarkEncodeDoc(b *testing.B) {
	small := Document{
		"_id":  "doc00042",
		"w_id": int64(42),
		"val":  int64(7),
		"pad":  "abcdefghijklmnopqrstuvwxyz",
		"ok":   true,
		"f":    3.14,
	}
	lines := make([]any, 8)
	for j := range lines {
		lines[j] = Document{
			"i_id":   int64(j),
			"qty":    int64(5),
			"amount": 3.14,
			"info":   "abcdefghijklmnopqrstuvwx",
		}
	}
	nested := Document{
		"_id":         "doc00042",
		"w_id":        int64(42),
		"val":         int64(7),
		"order_lines": lines,
	}
	var dst []byte
	b.Run("small", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = appendDoc(dst[:0], small)
		}
	})
	b.Run("nested", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = appendDoc(dst[:0], nested)
		}
	})
}

func BenchmarkCollectionApplySet(b *testing.B) {
	c := benchCollection(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ApplySet(fmt.Sprintf("doc%05d", i%1024),
			Document{"val": int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
