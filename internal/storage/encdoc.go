package storage

import "sync/atomic"

// EncodedDoc pairs a committed document with a lazily computed cache
// of its BSON-lite encoding. Collections store one EncodedDoc per
// committed document; because committed documents are immutable under
// copy-on-write (every mutation builds a fresh document and swaps the
// stored wrapper), a cached encoding can never go stale — invalidation
// is the pointer swap itself. The wire server uses the cache to splice
// already-encoded bytes straight into binary response frames, so a hot
// read set pays the document encoding cost once, not per request.
type EncodedDoc struct {
	doc Document
	enc atomic.Pointer[[]byte]
}

func newEncodedDoc(d Document) *EncodedDoc {
	return &EncodedDoc{doc: d}
}

// Doc returns the wrapped document — a shared immutable snapshot,
// strictly read-only for the caller.
func (e *EncodedDoc) Doc() Document { return e.doc }

// Bytes returns the document's BSON-lite encoding, computing and
// caching it on first use. Concurrent first calls may both encode (the
// canonical encoding makes the race benign — both produce identical
// bytes); the returned slice is shared and strictly read-only.
func (e *EncodedDoc) Bytes() []byte {
	if p := e.enc.Load(); p != nil {
		return *p
	}
	b := EncodeDoc(e.doc)
	e.enc.Store(&b)
	return b
}

// EncodedLen returns the cached encoding's size, or 0 if the document
// has not been encoded yet.
func (e *EncodedDoc) EncodedLen() int {
	if p := e.enc.Load(); p != nil {
		return len(*p)
	}
	return 0
}
