package storage

import (
	"cmp"
	"fmt"

	"decongestant/internal/btree"
)

// Collection is a set of documents keyed by their _id, with optional
// secondary compound indexes.
type Collection struct {
	name    string
	docs    *btree.Tree[string, Document]
	indexes map[string]*Index
}

// Index is a secondary compound index. Entries are keyed by the
// memcomparable encoding of the indexed field values followed by the
// document _id (so duplicates coexist); the entry value is the _id.
type Index struct {
	Name   string
	Fields []string
	Unique bool
	tree   *btree.Tree[string, string]
}

func newCollection(name string) *Collection {
	return &Collection{
		name:    name,
		docs:    btree.New[string, Document](cmp.Compare[string]),
		indexes: make(map[string]*Index),
	}
}

// Name returns the collection name; Len the number of documents.
func (c *Collection) Name() string { return c.name }
func (c *Collection) Len() int     { return c.docs.Len() }

// CreateIndex adds a compound index over the given field paths and
// backfills it from existing documents.
func (c *Collection) CreateIndex(name string, unique bool, fields ...string) (*Index, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("storage: index %q has no fields", name)
	}
	if _, exists := c.indexes[name]; exists {
		return nil, fmt.Errorf("storage: index %q already exists on %s", name, c.name)
	}
	idx := &Index{
		Name:   name,
		Fields: fields,
		Unique: unique,
		tree:   btree.New[string, string](cmp.Compare[string]),
	}
	var backfillErr error
	c.docs.AscendAll(func(id string, d Document) bool {
		if err := idx.insert(d, id); err != nil {
			backfillErr = err
			return false
		}
		return true
	})
	if backfillErr != nil {
		return nil, backfillErr
	}
	c.indexes[name] = idx
	return idx, nil
}

// Indexes returns the collection's secondary indexes by name.
func (c *Collection) Indexes() map[string]*Index { return c.indexes }

func (idx *Index) keyFor(d Document, id string) (string, string) {
	var enc []byte
	for _, f := range idx.Fields {
		v, _ := d.Get(f) // missing fields index as nil, like MongoDB
		enc = AppendKey(enc, v)
	}
	prefix := string(enc)
	return prefix, prefix + "\x00id:" + id
}

func (idx *Index) insert(d Document, id string) error {
	prefix, key := idx.keyFor(d, id)
	if idx.Unique {
		dup := false
		idx.tree.Range(prefix, PrefixSuccessor(prefix), func(k, v string) bool {
			dup = true
			return false
		})
		if dup {
			return fmt.Errorf("storage: duplicate key for unique index %q", idx.Name)
		}
	}
	idx.tree.Set(key, id)
	return nil
}

func (idx *Index) remove(d Document, id string) {
	_, key := idx.keyFor(d, id)
	idx.tree.Delete(key)
}

func (idx *Index) removeKey(key string) { idx.tree.Delete(key) }

// Insert adds a document. The document must carry a string _id that is
// not already present. The stored copy is normalized and detached from
// the caller's value.
func (c *Collection) Insert(doc Document) error {
	norm, err := doc.Normalized()
	if err != nil {
		return err
	}
	id, ok := norm["_id"].(string)
	if !ok || id == "" {
		return fmt.Errorf("storage: insert into %s requires a string _id", c.name)
	}
	if _, exists := c.docs.Get(id); exists {
		return fmt.Errorf("storage: duplicate _id %q in %s", id, c.name)
	}
	stored := norm.Clone()
	for _, idx := range c.indexes {
		if err := idx.insert(stored, id); err != nil {
			// Roll back entries added so far.
			for _, undo := range c.indexes {
				if undo == idx {
					break
				}
				undo.remove(stored, id)
			}
			return err
		}
	}
	c.docs.Set(id, stored)
	return nil
}

// Upsert inserts the document or fully replaces an existing one with
// the same _id. Used by idempotent oplog application.
func (c *Collection) Upsert(doc Document) error {
	norm, err := doc.Normalized()
	if err != nil {
		return err
	}
	id, ok := norm["_id"].(string)
	if !ok || id == "" {
		return fmt.Errorf("storage: upsert into %s requires a string _id", c.name)
	}
	if old, exists := c.docs.Get(id); exists {
		for _, idx := range c.indexes {
			idx.remove(old, id)
		}
	}
	stored := norm.Clone()
	for _, idx := range c.indexes {
		if err := idx.insert(stored, id); err != nil {
			return err
		}
	}
	c.docs.Set(id, stored)
	return nil
}

// ApplySet merges the given fields into the document with the given
// _id, creating it if absent. The operation is idempotent: re-applying
// the same set yields the same state. It returns the post-image as a
// live (read-only) view of the stored document — this is the write
// hot path, so it avoids defensive copies; callers needing a detached
// document clone it themselves.
func (c *Collection) ApplySet(id string, fields Document) (Document, error) {
	norm, err := fields.Normalized()
	if err != nil {
		return nil, err
	}
	old, exists := c.docs.Get(id)
	if !exists {
		merged := Document{"_id": id}
		for k, v := range norm {
			if k == "_id" {
				continue
			}
			merged[k] = cloneValue(v)
		}
		for _, idx := range c.indexes {
			if err := idx.insert(merged, id); err != nil {
				return nil, err
			}
		}
		c.docs.Set(id, merged)
		return merged, nil
	}
	// Capture the old index keys before mutating in place.
	oldKeys := make([]string, 0, len(c.indexes))
	idxs := make([]*Index, 0, len(c.indexes))
	for _, idx := range c.indexes {
		_, key := idx.keyFor(old, id)
		oldKeys = append(oldKeys, key)
		idxs = append(idxs, idx)
	}
	for k, v := range norm {
		if k == "_id" {
			continue
		}
		old[k] = cloneValue(v)
	}
	for i, idx := range idxs {
		idx.removeKey(oldKeys[i])
		if err := idx.insert(old, id); err != nil {
			return nil, err
		}
	}
	return old, nil
}

// Delete removes the document with the given _id; it reports whether a
// document was removed.
func (c *Collection) Delete(id string) bool {
	doc, exists := c.docs.Get(id)
	if !exists {
		return false
	}
	for _, idx := range c.indexes {
		idx.remove(doc, id)
	}
	c.docs.Delete(id)
	return true
}

// FindByID returns a detached copy of the document with the given _id.
func (c *Collection) FindByID(id string) (Document, bool) {
	d, ok := c.docs.Get(id)
	if !ok {
		return nil, false
	}
	return d.Clone(), true
}

// FindByIDShared returns the stored document without copying. The
// caller must not modify it (or anything reachable from it).
func (c *Collection) FindByIDShared(id string) (Document, bool) {
	return c.docs.Get(id)
}

// Find returns detached copies of documents matching the filter, up to
// limit (0 = no limit). It uses a secondary index when the filter has
// equality conditions on an index's leading fields (optionally followed
// by one range condition on the next field); otherwise it scans.
func (c *Collection) Find(f Filter, limit int) []Document {
	var out []Document
	emit := func(d Document) bool {
		if f.Matches(d) {
			out = append(out, d.Clone())
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	}
	if idx, lo, hi := c.planIndex(f); idx != nil {
		idx.tree.Range(lo, hi, func(k, id string) bool {
			d, ok := c.docs.Get(id)
			if !ok {
				return true
			}
			return emit(d)
		})
		return out
	}
	c.docs.AscendAll(func(id string, d Document) bool { return emit(d) })
	return out
}

// FindShared is Find without the defensive copies: results are the
// stored documents themselves and must be treated as read-only.
func (c *Collection) FindShared(f Filter, limit int) []Document {
	var out []Document
	emit := func(d Document) bool {
		if f.Matches(d) {
			out = append(out, d)
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	}
	if idx, lo, hi := c.planIndex(f); idx != nil {
		idx.tree.Range(lo, hi, func(k, id string) bool {
			d, ok := c.docs.Get(id)
			if !ok {
				return true
			}
			return emit(d)
		})
		return out
	}
	c.docs.AscendAll(func(id string, d Document) bool { return emit(d) })
	return out
}

// Count returns the number of documents matching the filter.
func (c *Collection) Count(f Filter) int {
	n := 0
	if idx, lo, hi := c.planIndex(f); idx != nil {
		idx.tree.Range(lo, hi, func(k, id string) bool {
			if d, ok := c.docs.Get(id); ok && f.Matches(d) {
				n++
			}
			return true
		})
		return n
	}
	c.docs.AscendAll(func(id string, d Document) bool {
		if f.Matches(d) {
			n++
		}
		return true
	})
	return n
}

// planIndex picks an index usable for the filter and returns the scan
// bounds, or nil if none applies.
func (c *Collection) planIndex(f Filter) (*Index, string, string) {
	var best *Index
	var bestLo, bestHi string
	bestScore := 0
	for _, idx := range c.indexes {
		score := 0
		var enc []byte
		usable := true
		var lo, hi string
		for i, field := range idx.Fields {
			cnd, ok := f[field]
			if !ok {
				break
			}
			if cnd.Op == OpEq {
				enc = AppendKey(enc, cnd.Value)
				score = i + 1
				continue
			}
			// One trailing range condition is usable.
			if cnd.Op == OpGt || cnd.Op == OpGte || cnd.Op == OpLt || cnd.Op == OpLte {
				prefix := string(enc)
				switch cnd.Op {
				case OpGt, OpGte:
					lo = string(AppendKey([]byte(prefix), cnd.Value))
					if cnd.Op == OpGt {
						lo = PrefixSuccessor(lo)
					}
					hi = PrefixSuccessor(prefix)
				case OpLt, OpLte:
					lo = prefix
					hi = string(AppendKey([]byte(prefix), cnd.Value))
					if cnd.Op == OpLte {
						hi = PrefixSuccessor(hi)
					}
				}
				score = i + 1
			}
			break
		}
		if !usable || score == 0 {
			continue
		}
		if lo == "" && hi == "" {
			prefix := string(enc)
			lo, hi = prefix, PrefixSuccessor(prefix)
		}
		if score > bestScore {
			best, bestLo, bestHi, bestScore = idx, lo, hi, score
		}
	}
	if best == nil {
		return nil, "", ""
	}
	if bestHi == "" {
		bestHi = "\xff\xff\xff\xff\xff\xff\xff\xff"
	}
	return best, bestLo, bestHi
}

// ScanIDs iterates document ids in _id order, for diagnostics/tests.
func (c *Collection) ScanIDs(fn func(id string) bool) {
	c.docs.AscendAll(func(id string, d Document) bool { return fn(id) })
}
