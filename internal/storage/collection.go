package storage

import (
	"cmp"
	"fmt"
	"sync"

	"decongestant/internal/btree"
)

// Collection is a set of documents keyed by their _id, with optional
// secondary compound indexes.
//
// Concurrency: a Collection is safe for concurrent use. An RWMutex
// lets any number of readers scan while writers mutate exclusively.
// Committed documents are immutable — mutating operations build a
// fresh document and swap the pointer (copy-on-write) — so read
// methods return the stored documents themselves, without defensive
// copies, and a reader's result set stays a consistent snapshot even
// while writers advance the collection. Callers must therefore treat
// every returned Document as strictly read-only; a caller that wants
// to modify a result clones it first.
//
// Each committed document is stored behind an EncodedDoc wrapper that
// lazily caches its canonical BSON-lite encoding — populated the first
// time the wire layer serializes the document, and invalidated for
// free because mutation swaps the wrapper along with the document.
type Collection struct {
	name    string
	mu      sync.RWMutex
	docs    *btree.Tree[string, *EncodedDoc]
	indexes map[string]*Index
}

// Index is a secondary compound index. Entries are keyed by the
// memcomparable encoding of the indexed field values followed by the
// document _id (so duplicates coexist); the entry value is the _id.
type Index struct {
	Name   string
	Fields []string
	Unique bool
	tree   *btree.Tree[string, string]
}

func newCollection(name string) *Collection {
	return &Collection{
		name:    name,
		docs:    btree.New[string, *EncodedDoc](cmp.Compare[string]),
		indexes: make(map[string]*Index),
	}
}

// Name returns the collection name; Len the number of documents.
func (c *Collection) Name() string { return c.name }

func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.docs.Len()
}

// CreateIndex adds a compound index over the given field paths and
// backfills it from existing documents.
func (c *Collection) CreateIndex(name string, unique bool, fields ...string) (*Index, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("storage: index %q has no fields", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.indexes[name]; exists {
		return nil, fmt.Errorf("storage: index %q already exists on %s", name, c.name)
	}
	idx := &Index{
		Name:   name,
		Fields: fields,
		Unique: unique,
		tree:   btree.New[string, string](cmp.Compare[string]),
	}
	var backfillErr error
	c.docs.AscendAll(func(id string, e *EncodedDoc) bool {
		if err := idx.insert(e.doc, id); err != nil {
			backfillErr = err
			return false
		}
		return true
	})
	if backfillErr != nil {
		return nil, backfillErr
	}
	c.indexes[name] = idx
	return idx, nil
}

// Indexes returns a copy of the collection's secondary-index map, so
// callers can enumerate indexes without racing concurrent CreateIndex
// calls or mutating the collection's own bookkeeping.
func (c *Collection) Indexes() map[string]*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*Index, len(c.indexes))
	for name, idx := range c.indexes {
		out[name] = idx
	}
	return out
}

func (idx *Index) keyFor(d Document, id string) (string, string) {
	var enc []byte
	for _, f := range idx.Fields {
		v, _ := d.Get(f) // missing fields index as nil, like MongoDB
		enc = AppendKey(enc, v)
	}
	prefix := string(enc)
	return prefix, prefix + "\x00id:" + id
}

func (idx *Index) insert(d Document, id string) error {
	prefix, key := idx.keyFor(d, id)
	if idx.Unique {
		dup := false
		idx.tree.Range(prefix, PrefixSuccessor(prefix), func(k, v string) bool {
			dup = true
			return false
		})
		if dup {
			return fmt.Errorf("storage: duplicate key for unique index %q", idx.Name)
		}
	}
	idx.tree.Set(key, id)
	return nil
}

func (idx *Index) remove(d Document, id string) {
	_, key := idx.keyFor(d, id)
	idx.tree.Delete(key)
}

// Insert adds a document. The document must carry a string _id that is
// not already present. The stored copy is normalized and detached from
// the caller's value.
func (c *Collection) Insert(doc Document) error {
	norm, err := doc.Normalized()
	if err != nil {
		return err
	}
	id, ok := norm["_id"].(string)
	if !ok || id == "" {
		return fmt.Errorf("storage: insert into %s requires a string _id", c.name)
	}
	stored := norm.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.docs.Get(id); exists {
		return fmt.Errorf("storage: duplicate _id %q in %s", id, c.name)
	}
	var added []*Index
	for _, idx := range c.indexes {
		if err := idx.insert(stored, id); err != nil {
			for _, undo := range added {
				undo.remove(stored, id)
			}
			return err
		}
		added = append(added, idx)
	}
	c.docs.Set(id, newEncodedDoc(stored))
	return nil
}

// Upsert inserts the document or fully replaces an existing one with
// the same _id. Used by idempotent oplog application. The previous
// committed document is left untouched (copy-on-write): readers that
// already hold it keep a consistent snapshot.
func (c *Collection) Upsert(doc Document) error {
	norm, err := doc.Normalized()
	if err != nil {
		return err
	}
	stored := norm.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.upsertLocked(stored)
}

// UpsertOwned is Upsert for a document the caller hands over: already
// normalized and never mutated again (a freshly decoded oplog payload,
// or a commit-time post-image). It skips the normalize-and-clone pass
// and stores the document directly — committed documents stay immutable
// under copy-on-write, so transferring (or even sharing) the pointer is
// safe.
func (c *Collection) UpsertOwned(doc Document) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.upsertLocked(doc)
}

// upsertLocked replaces or inserts a ready-to-store document. Caller
// holds the write lock.
func (c *Collection) upsertLocked(stored Document) error {
	id, ok := stored["_id"].(string)
	if !ok || id == "" {
		return fmt.Errorf("storage: upsert into %s requires a string _id", c.name)
	}
	if old, exists := c.docs.Get(id); exists {
		for _, idx := range c.indexes {
			idx.remove(old.doc, id)
		}
	}
	for _, idx := range c.indexes {
		if err := idx.insert(stored, id); err != nil {
			return err
		}
	}
	c.docs.Set(id, newEncodedDoc(stored))
	return nil
}

// ApplySet merges the given fields into the document with the given
// _id, creating it if absent. The operation is idempotent: re-applying
// the same set yields the same state. Copy-on-write: the merge builds
// a fresh document (sharing the unchanged values of the old one, which
// are immutable) and swaps the pointer, so concurrent readers holding
// the pre-image never observe the mutation. It returns the committed
// post-image, which callers must treat as read-only.
func (c *Collection) ApplySet(id string, fields Document) (Document, error) {
	norm, err := fields.Normalized()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applySetLocked(id, norm, false)
}

// ApplySetOwned is ApplySet for field values the caller hands over:
// already normalized and never mutated again (a freshly decoded oplog
// payload, or commit-time post-image fields). It skips normalization
// and moves the values into the merged document without cloning.
func (c *Collection) ApplySetOwned(id string, fields Document) (Document, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applySetLocked(id, fields, true)
}

// applySetLocked merges ready-to-store fields into the identified
// document (copy-on-write: the merge builds a fresh document). Caller
// holds the write lock. When owned, field values transfer without a
// clone.
func (c *Collection) applySetLocked(id string, fields Document, owned bool) (Document, error) {
	var old Document
	oldEnc, exists := c.docs.Get(id)
	if exists {
		old = oldEnc.doc
	}
	merged := make(Document, len(old)+len(fields))
	for k, v := range old {
		merged[k] = v
	}
	merged["_id"] = id
	for k, v := range fields {
		if k == "_id" {
			continue
		}
		if owned {
			merged[k] = v
		} else {
			merged[k] = cloneValue(v)
		}
	}
	if exists {
		for _, idx := range c.indexes {
			idx.remove(old, id)
		}
	}
	for _, idx := range c.indexes {
		if err := idx.insert(merged, id); err != nil {
			return nil, err
		}
	}
	c.docs.Set(id, newEncodedDoc(merged))
	return merged, nil
}

// Delete removes the document with the given _id; it reports whether a
// document was removed.
func (c *Collection) Delete(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deleteLocked(id)
}

// deleteLocked removes a document. Caller holds the write lock.
func (c *Collection) deleteLocked(id string) bool {
	e, exists := c.docs.Get(id)
	if !exists {
		return false
	}
	for _, idx := range c.indexes {
		idx.remove(e.doc, id)
	}
	c.docs.Delete(id)
	return true
}

// ApplyKind selects the operation of one ApplyOp.
type ApplyKind int

const (
	// ApplyUpsert stores Doc (which carries its own _id) outright.
	ApplyUpsert ApplyKind = iota
	// ApplyMerge merges Doc's fields into the document identified by ID.
	ApplyMerge
	// ApplyDelete removes the document identified by ID.
	ApplyDelete
)

// ApplyOp is one replication mutation inside an ApplyBatch. Doc is
// owned by the collection after the call (see UpsertOwned).
type ApplyOp struct {
	Kind ApplyKind
	ID   string
	Doc  Document
}

// ApplyBatch applies an ordered run of replication mutations under a
// single write-lock acquisition — the batch apply entry point used by
// secondary oplog application, amortizing lock traffic that per-entry
// calls would pay per document. Individual failures skip the op rather
// than aborting the batch (oplog application must keep going); it
// returns how many ops applied and the first error encountered.
func (c *Collection) ApplyBatch(ops []ApplyOp) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	applied := 0
	var first error
	for _, op := range ops {
		var err error
		switch op.Kind {
		case ApplyUpsert:
			err = c.upsertLocked(op.Doc)
		case ApplyMerge:
			_, err = c.applySetLocked(op.ID, op.Doc, true)
		case ApplyDelete:
			c.deleteLocked(op.ID)
		default:
			err = fmt.Errorf("storage: unknown apply op kind %d", op.Kind)
		}
		if err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		applied++
	}
	return applied, first
}

// CloneShallow returns a new collection sharing this collection's
// committed documents. Documents are immutable under copy-on-write, so
// the pointer sharing is safe; the _id and secondary index trees are
// copied entry by entry (new trees, same keys). This is the initial-
// sync snapshot: O(n) pointer copies instead of a deep clone of every
// document.
func (c *Collection) CloneShallow() *Collection {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := newCollection(c.name)
	c.docs.AscendAll(func(id string, e *EncodedDoc) bool {
		// Sharing the wrapper shares the encoding cache too — safe,
		// since both the document and its cached bytes are immutable.
		out.docs.Set(id, e)
		return true
	})
	for name, idx := range c.indexes {
		ni := &Index{
			Name:   idx.Name,
			Fields: append([]string(nil), idx.Fields...),
			Unique: idx.Unique,
			tree:   btree.New[string, string](cmp.Compare[string]),
		}
		idx.tree.AscendAll(func(k, id string) bool {
			ni.tree.Set(k, id)
			return true
		})
		out.indexes[name] = ni
	}
	return out
}

// FindByID returns the committed document with the given _id. The
// result is a shared immutable snapshot (committed documents are never
// mutated in place); the caller must not modify it, or anything
// reachable from it, and clones it first if it needs to.
func (c *Collection) FindByID(id string) (Document, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.docs.Get(id)
	if !ok {
		return nil, false
	}
	return e.doc, true
}

// FindByIDEncoded returns the committed document's EncodedDoc wrapper,
// giving the caller access to its lazily cached BSON-lite encoding.
// The wire server's binary read path uses it to splice pre-encoded
// bytes into response frames.
func (c *Collection) FindByIDEncoded(id string) (*EncodedDoc, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.docs.Get(id)
}

// Find returns the committed documents matching the filter, up to
// limit (0 = no limit). It uses a secondary index when the filter has
// equality conditions on an index's leading fields (optionally followed
// by one range condition on the next field); otherwise it scans. The
// results are shared immutable snapshots — strictly read-only for the
// caller.
func (c *Collection) Find(f Filter, limit int) []Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Document
	emit := func(d Document) bool {
		if f.Matches(d) {
			out = append(out, d)
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	}
	if idx, lo, hi := c.planIndex(f); idx != nil {
		idx.tree.Range(lo, hi, func(k, id string) bool {
			e, ok := c.docs.Get(id)
			if !ok {
				return true
			}
			return emit(e.doc)
		})
		return out
	}
	c.scanIDRange(f, func(id string, e *EncodedDoc) bool { return emit(e.doc) })
	return out
}

// FindEncoded is Find returning EncodedDoc wrappers, so the wire
// server can serve a filtered scan from the per-document encoding
// cache. Matching runs against the wrapped documents; results are
// shared and strictly read-only.
func (c *Collection) FindEncoded(f Filter, limit int) []*EncodedDoc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*EncodedDoc
	emit := func(e *EncodedDoc) bool {
		if f.Matches(e.doc) {
			out = append(out, e)
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	}
	if idx, lo, hi := c.planIndex(f); idx != nil {
		idx.tree.Range(lo, hi, func(k, id string) bool {
			e, ok := c.docs.Get(id)
			if !ok {
				return true
			}
			return emit(e)
		})
		return out
	}
	c.scanIDRange(f, func(id string, e *EncodedDoc) bool { return emit(e) })
	return out
}

// Count returns the number of documents matching the filter.
func (c *Collection) Count(f Filter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	if idx, lo, hi := c.planIndex(f); idx != nil {
		idx.tree.Range(lo, hi, func(k, id string) bool {
			if e, ok := c.docs.Get(id); ok && f.Matches(e.doc) {
				n++
			}
			return true
		})
		return n
	}
	c.scanIDRange(f, func(id string, e *EncodedDoc) bool {
		if f.Matches(e.doc) {
			n++
		}
		return true
	})
	return n
}

// scanIDRange walks the primary tree over the slice selected by the
// filter's _id condition — the whole tree when the filter has no
// usable _id bound. Residual matching stays with the caller; this only
// narrows the walk. Caller holds c.mu.
func (c *Collection) scanIDRange(f Filter, fn func(id string, e *EncodedDoc) bool) {
	lo, hi, ok := planIDRange(f)
	switch {
	case !ok:
		c.docs.AscendAll(fn)
	case hi == "":
		c.docs.Ascend(lo, fn)
	default:
		c.docs.Range(lo, hi, fn)
	}
}

// planIDRange resolves a filter's _id condition into a primary-key
// interval [lo, hi) ("" hi = unbounded). An equality becomes a
// single-key interval; one- and two-sided string ranges map directly
// (ids compare as raw strings, and s+"\x00" is the successor of s).
// ok=false means the condition does not bound the scan.
func planIDRange(f Filter) (lo, hi string, ok bool) {
	cnd, present := f["_id"]
	if !present {
		return "", "", false
	}
	bound := func(op Op, v any) bool {
		s, isStr := v.(string)
		if !isStr {
			return false
		}
		switch op {
		case OpGt:
			lo = s + "\x00"
		case OpGte:
			lo = s
		case OpLt:
			hi = s
		case OpLte:
			hi = s + "\x00"
		default:
			return false
		}
		return true
	}
	switch {
	case cnd.Op == OpEq:
		id, isStr := cnd.Value.(string)
		if !isStr {
			return "", "", false
		}
		return id, id + "\x00", true
	case IsRangeOp(cnd.Op):
		if !bound(cnd.Op, cnd.Value) {
			return "", "", false
		}
		if cnd.Op2 != 0 && !bound(cnd.Op2, cnd.Value2) {
			return "", "", false
		}
		return lo, hi, true
	}
	return "", "", false
}

// planIndex picks an index usable for the filter and returns the scan
// bounds, or nil if none applies. Caller holds c.mu (read or write).
func (c *Collection) planIndex(f Filter) (*Index, string, string) {
	var best *Index
	var bestLo, bestHi string
	bestScore := 0
	for _, idx := range c.indexes {
		score := 0
		var enc []byte
		usable := true
		var lo, hi string
		for i, field := range idx.Fields {
			cnd, ok := f[field]
			if !ok {
				break
			}
			if cnd.Op == OpEq {
				enc = AppendKey(enc, cnd.Value)
				score = i + 1
				continue
			}
			// One trailing range condition is usable — one-sided, or a
			// two-sided interval carried in Op2/Value2, which scans the
			// closed interval [lo, hi) instead of one side of the prefix
			// plus residual filtering.
			if IsRangeOp(cnd.Op) {
				prefix := string(enc)
				lo, hi = prefix, PrefixSuccessor(prefix)
				apply := func(op Op, val any) {
					switch op {
					case OpGt, OpGte:
						lo = string(AppendKey([]byte(prefix), val))
						if op == OpGt {
							lo = PrefixSuccessor(lo)
						}
					case OpLt, OpLte:
						hi = string(AppendKey([]byte(prefix), val))
						if op == OpLte {
							hi = PrefixSuccessor(hi)
						}
					}
				}
				apply(cnd.Op, cnd.Value)
				if cnd.Op2 != 0 {
					apply(cnd.Op2, cnd.Value2)
				}
				score = i + 1
			}
			break
		}
		if !usable || score == 0 {
			continue
		}
		if lo == "" && hi == "" {
			prefix := string(enc)
			lo, hi = prefix, PrefixSuccessor(prefix)
		}
		if score > bestScore {
			best, bestLo, bestHi, bestScore = idx, lo, hi, score
		}
	}
	if best == nil {
		return nil, "", ""
	}
	if bestHi == "" {
		bestHi = "\xff\xff\xff\xff\xff\xff\xff\xff"
	}
	return best, bestLo, bestHi
}

// ScanIDs iterates document ids in _id order, for diagnostics/tests.
func (c *Collection) ScanIDs(fn func(id string) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.docs.AscendAll(func(id string, e *EncodedDoc) bool { return fn(id) })
}

// CollStats is the collstats command's view of one collection.
type CollStats struct {
	Name    string
	Docs    int
	Indexes int
	// EncodedBytes sums the cached BSON-lite encodings — the
	// collection's wire-cache footprint. Documents never serialized
	// contribute 0 (the cache is lazy), so this is a lower bound on
	// data size that converges to it as the read set heats up.
	EncodedBytes int64
	// EncodedDocs counts documents whose encoding is cached.
	EncodedDocs int
}

// Stats reads the collection's collstats under the read lock in one
// ordered walk. It never forces encodings (that would churn CPU and
// memory on a scrape), so EncodedBytes prices only the cache that
// exists.
func (c *Collection) Stats() CollStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := CollStats{Name: c.name, Docs: c.docs.Len(), Indexes: len(c.indexes)}
	c.docs.AscendAll(func(id string, e *EncodedDoc) bool {
		if n := e.EncodedLen(); n > 0 {
			st.EncodedBytes += int64(n)
			st.EncodedDocs++
		}
		return true
	})
	return st
}
