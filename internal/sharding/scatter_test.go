package sharding

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func TestMergeByID(t *testing.T) {
	mk := func(ids ...string) []storage.Document {
		out := make([]storage.Document, len(ids))
		for i, id := range ids {
			out[i] = storage.D{"_id": id}
		}
		return out
	}
	ids := func(docs []storage.Document) []string {
		out := make([]string, len(docs))
		for i, d := range docs {
			out[i] = d.ID()
		}
		return out
	}
	eq := func(got []storage.Document, want ...string) {
		t.Helper()
		g := ids(got)
		if len(g) != len(want) {
			t.Fatalf("merged %v, want %v", g, want)
		}
		for i := range g {
			if g[i] != want[i] {
				t.Fatalf("merged %v, want %v", g, want)
			}
		}
	}
	runs := func(rs ...[]storage.Document) []shardRun {
		out := make([]shardRun, len(rs))
		for i, r := range rs {
			out[i] = shardRun{shard: i, docs: r}
		}
		return out
	}
	eq(mergeByID(nil, 0, nil))
	eq(mergeByID(runs(mk("a", "c")), 0, nil), "a", "c")
	eq(mergeByID(runs(mk("a", "d"), mk("b", "c", "e")), 0, nil), "a", "b", "c", "d", "e")
	eq(mergeByID(runs(mk("a", "d"), mk("b", "c", "e")), 3, nil), "a", "b", "c")
	// A migrating chunk exists on two shards at once: equal ids must
	// merge to one copy, in every arrangement.
	eq(mergeByID(runs(mk("a", "b"), mk("b", "c")), 0, nil), "a", "b", "c")
	eq(mergeByID(runs(mk("a", "b", "b2")), 0, nil), "a", "b", "b2")
	eq(mergeByID(runs(mk("x", "x")), 0, nil), "x")
}

// TestMergeByIDPrefersOwner: duplicate _ids across shards resolve to
// the owning shard's copy — the other copy is a migration clone that
// may be stale — regardless of which run the heap pops first, and
// even when the duplicate pops after the limit is reached.
func TestMergeByIDPrefersOwner(t *testing.T) {
	doc := func(id string, v int64) storage.Document { return storage.D{"_id": id, "v": v} }
	owner := func(id string) int { return 1 } // shard 1 owns everything
	find := func(docs []storage.Document, id string) storage.Document {
		t.Helper()
		for _, d := range docs {
			if d.ID() == id {
				return d
			}
		}
		t.Fatalf("id %s missing from %v", id, docs)
		return nil
	}
	for _, order := range [][]shardRun{
		{{shard: 0, docs: []storage.Document{doc("a", 1), doc("b", 1)}},
			{shard: 1, docs: []storage.Document{doc("b", 2), doc("c", 2)}}},
		{{shard: 1, docs: []storage.Document{doc("b", 2), doc("c", 2)}},
			{shard: 0, docs: []storage.Document{doc("a", 1), doc("b", 1)}}},
	} {
		got := mergeByID(order, 0, owner)
		if len(got) != 3 {
			t.Fatalf("merged %d docs, want 3", len(got))
		}
		if v := find(got, "b").Int("v"); v != 2 {
			t.Fatalf("duplicate b resolved to v=%d, want the owner's copy (v=2)", v)
		}
	}
	// Limit hit exactly at the duplicate: the owner's copy must still
	// displace the stale one before the merge stops.
	got := mergeByID([]shardRun{
		{shard: 0, docs: []storage.Document{doc("a", 1), doc("b", 1)}},
		{shard: 1, docs: []storage.Document{doc("b", 2)}},
	}, 2, owner)
	if len(got) != 2 {
		t.Fatalf("merged %d docs, want 2", len(got))
	}
	if v := find(got, "b").Int("v"); v != 2 {
		t.Fatalf("limit-edge duplicate b resolved to v=%d, want the owner's copy (v=2)", v)
	}
}

// scatterCluster loads a 3-shard realtime cluster with docs and
// returns routers in parallel and sequential scatter modes over the
// same shards.
func scatterCluster(t testing.TB, docs int) (*Cluster, *Router, *Router, func()) {
	t.Helper()
	env := sim.NewRealtimeEnv(11)
	cfg := shardConfig()
	cfg.ReplIdlePoll = 2 * time.Millisecond
	c := New(env, 3, cfg)
	err := c.Bootstrap(func(shard int, s *storage.Store) error {
		for i := 0; i < docs; i++ {
			id := fmt.Sprintf("item%04d", i)
			if c.ShardFor(id) != shard {
				continue
			}
			if err := s.C("items").Insert(storage.D{"_id": id, "grp": int64(i % 4), "val": int64(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]driver.Conn, c.NumShards())
	for i := range conns {
		conns[i] = driver.WrapCluster(c.Shard(i))
	}
	par := NewConnRouter(env, conns, core.DefaultParams(), RouterOptions{})
	seq := NewConnRouter(env, conns, core.DefaultParams(), RouterOptions{SequentialScatter: true})
	return c, par, seq, env.Shutdown
}

func TestScatterFindParallelMatchesSequential(t *testing.T) {
	_, par, seq, stop := scatterCluster(t, 120)
	defer stop()
	p := par.renv.Adhoc("test")
	for _, limit := range []int{0, 7, 30, 500} {
		f := storage.Filter{"grp": storage.Eq(int64(1))}
		a, err := par.ScatterFind(p, "items", f, limit)
		if err != nil {
			t.Fatal(err)
		}
		b, err := seq.ScatterFind(p, "items", f, limit)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("limit %d: parallel %d docs, sequential %d", limit, len(a), len(b))
		}
		for i := range a {
			if a[i].ID() != b[i].ID() || a[i].Int("val") != b[i].Int("val") {
				t.Fatalf("limit %d: doc %d differs: %v vs %v", limit, i, a[i], b[i])
			}
		}
		for i := 1; i < len(a); i++ {
			if a[i-1].ID() >= a[i].ID() {
				t.Fatal("parallel merge not id-ordered")
			}
		}
	}
	na, err := par.ScatterCount(p, "items", storage.Filter{"grp": storage.Eq(int64(2))})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := seq.ScatterCount(p, "items", storage.Filter{"grp": storage.Eq(int64(2))})
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || na != 30 {
		t.Fatalf("counts: parallel %d, sequential %d, want 30", na, nb)
	}
}

func TestScatterPartialFailureSemantics(t *testing.T) {
	c, par, _, stop := scatterCluster(t, 60)
	defer stop()
	p := par.renv.Adhoc("test")

	full, err := par.ScatterFind(p, "items", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 60 {
		t.Fatalf("full scatter found %d docs, want 60", len(full))
	}

	// Take shard 1 down entirely: its reads fail at every node.
	down := c.Shard(1)
	for _, id := range down.NodeIDs() {
		down.SetDown(id, true)
	}

	docs, err := par.ScatterFind(p, "items", nil, 0)
	var perr *PartialError
	if !errors.As(err, &perr) {
		t.Fatalf("scatter with a down shard returned %v, want *PartialError", err)
	}
	if failed := perr.Failed(); len(failed) != 1 || failed[0].Shard != 1 {
		t.Fatalf("failed outcomes = %+v, want exactly shard 1", failed)
	}
	if len(docs) == 0 || len(docs) >= 60 {
		t.Fatalf("partial results carried %d docs, want the two live shards' share", len(docs))
	}
	for _, d := range docs {
		if c.ShardFor(d.ID()) == 1 {
			t.Fatalf("doc %s from the down shard in partial results", d.ID())
		}
	}

	// AllowPartial turns the same outcome into a success.
	okDocs, err := par.ScatterFindOpts(p, "items", nil, 0, ScatterOptions{AllowPartial: true})
	if err != nil {
		t.Fatalf("AllowPartial scatter: %v", err)
	}
	if len(okDocs) != len(docs) {
		t.Fatalf("AllowPartial returned %d docs, plain partial %d", len(okDocs), len(docs))
	}
	n, err := par.ScatterCountOpts(p, "items", nil, ScatterOptions{AllowPartial: true})
	if err != nil || n != len(docs) {
		t.Fatalf("AllowPartial count = %d (%v), want %d", n, err, len(docs))
	}

	// Every shard down: AllowPartial must still fail.
	for s := 0; s < c.NumShards(); s++ {
		rs := c.Shard(s)
		for _, id := range rs.NodeIDs() {
			rs.SetDown(id, true)
		}
	}
	if _, err := par.ScatterFindOpts(p, "items", nil, 0, ScatterOptions{AllowPartial: true}); err == nil {
		t.Fatal("scatter with every shard down succeeded")
	}

	snap := par.Registry().Snapshot()
	if got := snap.CounterValue("sharding.scatter_partial"); got < 3 {
		t.Fatalf("sharding.scatter_partial = %d, want >= 3", got)
	}
}
