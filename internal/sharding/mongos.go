package sharding

import (
	"fmt"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/obs"
	"decongestant/internal/obs/trace"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
	"decongestant/internal/wire"
)

// Mongos is the wire-facing query router: it implements wire.Backend,
// so a wire.Server (NewBackendServer) exposes a sharded cluster
// behind the exact protocol a single replica set speaks. Unmodified
// driver.Clients and wire.Clients connect to it and see a one-node
// "replica set" whose reads and writes are routed by shard key across
// the real shards, each shard driven by its own Decongestant system.
//
// Routed ops keep their semantics with two documented exceptions:
// causal tokens (afterClusterTime) do not propagate through the
// router, and cross-shard write batches are split per shard and are
// not atomic across shards.
type Mongos struct {
	env    sim.Env
	router *Router
	shards []wire.ShardInfo
}

// NewMongos builds a router over pre-dialed shard connections and
// wraps it for wire serving. addrs (optional, may be nil) are the
// shard addresses reported by the list_shards op.
func NewMongos(env sim.Env, conns []driver.Conn, addrs []string, params core.Params, opts RouterOptions) *Mongos {
	m := &Mongos{env: env, router: NewConnRouter(env, conns, params, opts)}
	for i := range conns {
		si := wire.ShardInfo{ID: i}
		if i < len(addrs) {
			si.Addr = addrs[i]
		}
		m.shards = append(m.shards, si)
	}
	return m
}

// Router returns the underlying shard router.
func (m *Mongos) Router() *Router { return m.router }

// Metrics implements wire.Backend: the router's registry (scatter,
// stale-retry, and migration counters), which the wire server also
// fills with transport metrics.
func (m *Mongos) Metrics() *obs.Registry { return m.router.Registry() }

// Tracer implements wire.Backend: the recorder holding mongos.scatter
// spans and the server's transport spans.
func (m *Mongos) Tracer() *trace.Recorder { return m.router.Tracer() }

// Dispatch implements wire.Backend: the routed op set.
func (m *Mongos) Dispatch(p sim.Proc, req *wire.Request, binary bool, tctx trace.Context) *wire.Response {
	resp := &wire.Response{}
	fail := func(err error) *wire.Response {
		resp.Err = err.Error()
		return resp
	}
	switch req.Op {
	case wire.OpTopology:
		// One logical node: clients address the router itself; the
		// real topology hides behind it (inspect it via list_shards).
		resp.Topo = &wire.Topology{Primary: 0, Zones: []string{"mongos"}}
	case wire.OpPing:
		// Alive by definition of having answered.
	case wire.OpStatus:
		resp.Status = &wire.StatusBody{
			From: 0, Primary: 0,
			Members: []wire.Member{{ID: 0, Primary: true}},
		}
	case wire.OpFindByID:
		doc, err := m.findByID(p, req.Collection, req.DocID, req.BoundSecs)
		if err != nil {
			return fail(err)
		}
		resp.SetDoc(binary, doc)
	case wire.OpFindMany:
		docs, err := m.findMany(p, req.Collection, req.IDs, req.BoundSecs)
		if err != nil {
			return fail(err)
		}
		resp.SetDocs(binary, docs)
	case wire.OpFind:
		filter, err := req.FilterValue()
		if err != nil {
			return fail(err)
		}
		docs, err := m.router.scatterFind(p, tctx, req.Collection, filter, req.Limit, ScatterOptions{})
		if err != nil {
			return fail(err)
		}
		resp.SetDocs(binary, docs)
	case wire.OpCount:
		filter, err := req.FilterValue()
		if err != nil {
			return fail(err)
		}
		n, err := m.router.scatterCount(p, tctx, req.Collection, filter, ScatterOptions{})
		if err != nil {
			return fail(err)
		}
		resp.Count = n
	case wire.OpWriteBatch:
		if err := m.writeBatch(p, req.Muts); err != nil {
			return fail(err)
		}
	case wire.OpListShards:
		resp.Shards = append([]wire.ShardInfo(nil), m.shards...)
	case wire.OpChunkMap:
		if auth := m.router.Authority(); auth != nil {
			cm := auth.Map()
			body := &wire.ChunkMapBody{Version: cm.Version}
			for _, ck := range cm.Chunks {
				body.Chunks = append(body.Chunks, wire.ChunkInfo{Min: ck.Min, Max: ck.Max, Shard: ck.Shard})
			}
			resp.Chunks = body
		}
	case wire.OpMoveChunk:
		if err := m.router.MigrateChunk(p, req.DocID, req.Node, MigrateOptions{}); err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("wire: op %q not supported by mongos", req.Op))
	}
	return resp
}

// findByID routes a point read, spending the request's declared
// freshness bound against the router cache first when one is enabled.
func (m *Mongos) findByID(p sim.Proc, collection, id string, boundSecs int64) (storage.Document, error) {
	doc, _, _, err := m.router.ReadByIDBounded(p, collection, id, boundSecs)
	return doc, err
}

func (m *Mongos) findMany(p sim.Proc, collection string, ids []string, boundSecs int64) ([]storage.Document, error) {
	var docs []storage.Document
	for _, id := range ids {
		d, _, _, err := m.router.ReadByIDBounded(p, collection, id, boundSecs)
		if err != nil {
			return nil, err
		}
		if d != nil {
			docs = append(docs, d)
		}
	}
	return docs, nil
}

// writeBatch splits a batch by owning shard, routing every mutation
// through the chunk authority so writes respect migration freezes.
// The split is not atomic across shards (each shard's sub-batch is).
func (m *Mongos) writeBatch(p sim.Proc, muts []wire.Mutation) error {
	for i := range muts {
		mut := &muts[i]
		key := mut.DocID
		doc, err := mut.Document()
		if err != nil {
			return err
		}
		if key == "" && doc != nil {
			key = doc.ID()
		}
		if key == "" {
			return fmt.Errorf("sharding: mutation without a document id")
		}
		m.router.noteCollection(mut.Collection)
		kind := mut.Kind
		coll := mut.Collection
		err = m.router.route(p, key, true, func(shard int) error {
			_, _, err := m.router.systems[shard].Router.Write(p, func(tx cluster.WriteTxn) (any, error) {
				switch kind {
				case "insert":
					return nil, tx.Insert(coll, doc)
				case "set":
					return nil, tx.Set(coll, key, doc)
				case "delete":
					return nil, tx.Delete(coll, key)
				default:
					return nil, fmt.Errorf("wire: unknown mutation kind %q", kind)
				}
			})
			return err
		})
		if err != nil {
			return err
		}
		m.router.invalidateKey(coll, key)
	}
	return nil
}
