package sharding

import (
	"fmt"
	"testing"
	"time"

	"decongestant/internal/cache"
	"decongestant/internal/core"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// TestRouterCacheHitAndWriteInvalidation: a bounded read fills the
// router cache, a repeat is served locally, and a routed write to the
// key drops the entry so the next read refetches the new value.
func TestRouterCacheHitAndWriteInvalidation(t *testing.T) {
	env := sim.NewEnv(11)
	defer env.Shutdown()
	c := New(env, 2, shardConfig())
	c.EnableChunks([]string{"m"})
	r := NewRouter(env, c, core.DefaultParams())
	rc := r.EnableCache(cache.Config{})
	if rc == nil {
		t.Fatal("EnableCache returned nil")
	}

	ok := false
	env.Spawn("client", func(p sim.Proc) {
		if _, err := r.Insert(p, "kv", storage.D{"_id": "a", "v": int64(1)}); err != nil {
			t.Error(err)
			return
		}
		read := func(want int64) {
			d, _, _, err := r.ReadByIDBounded(p, "kv", "a", 5)
			if err != nil || d == nil || d.Int("v") != want {
				t.Errorf("bounded read: %v %v, want v=%d", d, err, want)
			}
		}
		read(1) // fill
		read(1) // hit
		s := rc.Snapshot()
		if s.Hits != 1 || s.Misses != 1 {
			t.Errorf("after two reads: %+v", s)
		}
		if _, err := r.Upsert(p, "kv", "a", storage.D{"v": int64(2)}); err != nil {
			t.Error(err)
			return
		}
		read(2) // the write invalidated; this refills with the new value
		if s := rc.Snapshot(); s.Invalidations != 1 || s.Misses != 2 {
			t.Errorf("after write: %+v", s)
		}
		// An unbounded read never consults the cache.
		if d, _, _, err := r.ReadByIDBounded(p, "kv", "a", 0); err != nil || d.Int("v") != 2 {
			t.Errorf("unbounded read: %v %v", d, err)
		}
		if s := rc.Snapshot(); s.Hits != 1 {
			t.Errorf("unbounded read touched the cache: %+v", s)
		}
		ok = true
	})
	env.Run(10 * time.Second)
	if !ok {
		t.Fatal("client did not finish")
	}
}

// TestRouterCacheChunkMoveInvalidates: migrating a chunk drops the
// cached documents of the moved range (eagerly at commit, and any
// survivor lazily via the version stamp), while entries outside the
// range keep serving hits under the new table version... except that a
// version bump invalidates them on next lookup too — the conservative
// contract this test pins down is simply that no post-move read serves
// a document from the pre-move cache generation.
func TestRouterCacheChunkMoveInvalidates(t *testing.T) {
	env := sim.NewRealtimeEnv(13)
	defer env.Shutdown()
	cfg := shardConfig()
	cfg.ReplIdlePoll = 2 * time.Millisecond
	c := New(env, 2, cfg)
	c.EnableChunks([]string{"doc050"})
	r := NewRouter(env, c, core.DefaultParams())
	rc := r.EnableCache(cache.Config{})

	p := env.Adhoc("client")
	for i := 0; i < 100; i += 10 {
		id := fmt.Sprintf("doc%03d", i)
		if _, err := r.Insert(p, "kv", storage.D{"_id": id, "v": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Fill the cache across both chunks.
	for i := 0; i < 100; i += 10 {
		id := fmt.Sprintf("doc%03d", i)
		if d, _, _, err := r.ReadByIDBounded(p, "kv", id, 30); err != nil || d == nil {
			t.Fatalf("fill %s: %v %v", id, d, err)
		}
	}
	if s := rc.Snapshot(); s.Entries != 10 {
		t.Fatalf("expected 10 cached entries, have %+v", s)
	}

	moved := c.Owner("doc070")
	if err := r.MigrateChunk(p, "doc070", 1-moved, MigrateOptions{}); err != nil {
		t.Fatal(err)
	}
	// The moved range ["doc050", "") was eagerly dropped.
	if s := rc.Snapshot(); s.Entries != 5 {
		t.Fatalf("after move: %d entries cached, want 5 (low chunk only)", s.Entries)
	}
	// Every post-move bounded read — moved range or not — returns the
	// right document. The first pass serves nothing from the pre-move
	// generation: the table version bumped, so even the surviving
	// low-chunk entries are dropped on lookup (counted as
	// invalidations) and refilled under the new version.
	base := rc.Snapshot()
	pass := func(label string) {
		for i := 0; i < 100; i += 10 {
			id := fmt.Sprintf("doc%03d", i)
			d, _, _, err := r.ReadByIDBounded(p, "kv", id, 30)
			if err != nil || d == nil || d.Int("v") != int64(i) {
				t.Fatalf("%s read %s: %v %v", label, id, d, err)
			}
		}
	}
	pass("post-move")
	s := rc.Snapshot()
	if s.Hits != base.Hits {
		t.Fatalf("%d post-move reads served from the pre-move generation", s.Hits-base.Hits)
	}
	if s.Invalidations != base.Invalidations+5 {
		t.Fatalf("surviving stale-version entries not dropped: %+v (base %+v)", s, base)
	}
	pass("refilled")
	if s2 := rc.Snapshot(); s2.Hits != s.Hits+10 {
		t.Fatalf("refilled entries not hitting: %+v", s2)
	}
	for i := 0; i < c.NumShards(); i++ {
		if got := c.Shard(i).Metrics().Snapshot().CounterValue("freshness.bound_violations"); got != 0 {
			t.Fatalf("shard %d: %d bound violations", i, got)
		}
	}
}
