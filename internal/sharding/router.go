package sharding

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"decongestant/internal/cache"
	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/obs"
	"decongestant/internal/obs/trace"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// maxStaleRetries bounds how many times a routed op chases a moving
// chunk before giving up. One refresh normally suffices; the bound
// exists so a wedged authority cannot spin a client forever.
const maxStaleRetries = 4

// Router is the mongos: it owns one complete Decongestant system per
// shard and routes document operations by shard key. Each shard's
// Read Balancer adapts to that shard's congestion independently.
//
// In hash mode the shard is a pure function of the key. In chunk mode
// the router caches a version of the authority's ChunkMap; when a
// migration moves a chunk, the next op planned against the stale
// cache is rejected with a StaleChunkError, the cache refreshes, and
// the op retries against the new owner (counted by
// sharding.stale_chunk_retries).
type Router struct {
	env     sim.Env
	renv    *sim.RealtimeEnv // non-nil when parallel scatter is possible
	cluster *Cluster         // nil for conn-backed routers
	systems []*core.System
	conns   []driver.Conn
	params  core.Params
	auth    *ChunkAuthority // nil in hash mode
	cached  atomic.Pointer[ChunkMap]

	reg        *obs.Registry
	tracer     *trace.Recorder
	seqScatter bool

	// Router-side freshness-priced cache (nil when disabled; see
	// cache.go). auditors holds each shard conn's CacheAuditor
	// capability (nil entries for conns that lack it), resolved once at
	// EnableCache so hits never type-assert.
	rcache   *cache.Cache
	auditors []driver.CacheAuditor

	staleRetries     *obs.Counter
	scatterPartial   *obs.Counter
	scatterTotal     *obs.Counter
	migrationsDone   *obs.Counter
	migrationResyncs *obs.Counter
	chunksGauge      *obs.Gauge
	versionGauge     *obs.Gauge

	migMu sync.Mutex // serializes MigrateChunk calls through this router

	collMu sync.Mutex
	colls  map[string]struct{}
}

// RouterOptions tunes a conn-backed router (NewConnRouter).
type RouterOptions struct {
	// Authority enables chunk routing; nil means hash mode.
	Authority *ChunkAuthority
	// Registry receives the router's counters; nil allocates a fresh
	// one (readable via Router.Registry).
	Registry *obs.Registry
	// Tracer records mongos.scatter spans; nil allocates an unsampled
	// recorder.
	Tracer *trace.Recorder
	// SequentialScatter forces the one-shard-at-a-time scatter path
	// (the pre-parallel behavior; also forced by SCATTER_SEQ=1).
	SequentialScatter bool
}

// NewRouter builds a router with an independent Decongestant per
// shard (the Balancers' background processes start immediately). If
// the cluster has chunks enabled (EnableChunks must run first), the
// router routes by chunk.
func NewRouter(env sim.Env, c *Cluster, params core.Params) *Router {
	conns := make([]driver.Conn, len(c.shards))
	for i, rs := range c.shards {
		conns[i] = driver.WrapCluster(rs)
	}
	r := newRouter(env, conns, params, RouterOptions{Authority: c.auth})
	r.cluster = c
	return r
}

// NewConnRouter builds a router over pre-dialed shard connections —
// the form mongosd uses, where each conn is a wire client to a
// remote shard server.
func NewConnRouter(env sim.Env, conns []driver.Conn, params core.Params, opts RouterOptions) *Router {
	return newRouter(env, conns, params, opts)
}

func newRouter(env sim.Env, conns []driver.Conn, params core.Params, opts RouterOptions) *Router {
	if len(conns) == 0 {
		panic("sharding: router needs at least one shard connection")
	}
	r := &Router{
		env:        env,
		conns:      conns,
		params:     params,
		auth:       opts.Authority,
		reg:        opts.Registry,
		tracer:     opts.Tracer,
		seqScatter: opts.SequentialScatter || os.Getenv("SCATTER_SEQ") == "1",
		colls:      make(map[string]struct{}),
	}
	if re, ok := env.(*sim.RealtimeEnv); ok {
		r.renv = re
	}
	if r.reg == nil {
		r.reg = obs.NewRegistry()
	}
	if r.tracer == nil {
		r.tracer = trace.NewRecorder(env.NewRand("sharding.router.trace"), trace.Config{})
	}
	r.staleRetries = r.reg.Counter("sharding.stale_chunk_retries")
	r.scatterPartial = r.reg.Counter("sharding.scatter_partial")
	r.scatterTotal = r.reg.Counter("sharding.scatter_total")
	r.migrationsDone = r.reg.Counter("sharding.migrations")
	r.migrationResyncs = r.reg.Counter("sharding.migration_resyncs")
	r.chunksGauge = r.reg.Gauge("sharding.chunks")
	r.versionGauge = r.reg.Gauge("sharding.chunk_version")
	if r.auth != nil {
		m := r.auth.Map()
		r.cached.Store(m)
		r.chunksGauge.Set(int64(m.NumChunks()))
		r.versionGauge.Set(int64(m.Version))
	}
	for _, conn := range conns {
		r.systems = append(r.systems, core.NewSystem(env, conn, params))
	}
	return r
}

// System returns shard i's Decongestant system (for inspection).
func (r *Router) System(i int) *core.System { return r.systems[i] }

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.systems) }

// Registry returns the router's metrics (stale retries, scatter
// partials, migration counters).
func (r *Router) Registry() *obs.Registry { return r.reg }

// Tracer returns the recorder carrying mongos.scatter spans.
func (r *Router) Tracer() *trace.Recorder { return r.tracer }

// Authority returns the chunk authority, or nil in hash mode.
func (r *Router) Authority() *ChunkAuthority { return r.auth }

// ChunkVersion returns the version of the router's cached table (0 in
// hash mode).
func (r *Router) ChunkVersion() uint64 {
	if m := r.cached.Load(); m != nil {
		return m.Version
	}
	return 0
}

// Owner returns the shard the router would route key to right now.
func (r *Router) Owner(key string) int {
	if m := r.cached.Load(); m != nil {
		return m.Owner(key)
	}
	return hashShard(key, uint32(len(r.systems)))
}

// refreshMap re-reads the authoritative table into the router's
// cache, mirroring what a real mongos does on a stale-config error.
func (r *Router) refreshMap() {
	if r.auth == nil {
		return
	}
	m := r.auth.Map()
	r.cached.Store(m)
	r.chunksGauge.Set(int64(m.NumChunks()))
	r.versionGauge.Set(int64(m.Version))
}

// noteCollection remembers a collection name seen in traffic so chunk
// migration knows which collections to clone by default.
func (r *Router) noteCollection(coll string) {
	r.collMu.Lock()
	if _, ok := r.colls[coll]; !ok {
		r.colls[coll] = struct{}{}
	}
	r.collMu.Unlock()
}

func (r *Router) seenCollections() []string {
	r.collMu.Lock()
	defer r.collMu.Unlock()
	out := make([]string, 0, len(r.colls))
	for c := range r.colls {
		out = append(out, c)
	}
	return out
}

// route plans key onto a shard under the cached table, validates the
// plan with the authority, runs fn, and retries on stale-chunk
// rejections after refreshing the cache. In hash mode it is a direct
// call with no authority round trip.
func (r *Router) route(p sim.Proc, key string, write bool, fn func(shard int) error) error {
	if r.auth == nil {
		return fn(hashShard(key, uint32(len(r.systems))))
	}
	for attempt := 0; ; attempt++ {
		shard := r.cached.Load().Owner(key)
		l, err := r.auth.Enter(p, key, shard, write)
		if err != nil {
			if IsStaleChunk(err) && attempt < maxStaleRetries {
				r.staleRetries.Inc(1)
				r.refreshMap()
				continue
			}
			return err
		}
		err = fn(shard)
		l.release()
		return err
	}
}

// ReadByID routes a single-document read to the owning shard through
// that shard's Decongestant Router.
func (r *Router) ReadByID(p sim.Proc, collection, id string) (storage.Document, driver.ReadPref, time.Duration, error) {
	r.noteCollection(collection)
	var (
		doc  storage.Document
		pref driver.ReadPref
		lat  time.Duration
	)
	err := r.route(p, id, false, func(shard int) error {
		res, pf, lt, err := r.systems[shard].Router.Read(p, func(v cluster.ReadView) (any, error) {
			d, ok := v.FindByID(collection, id)
			if !ok {
				return nil, nil
			}
			return d, nil
		})
		pref, lat = pf, lt
		if err != nil {
			return err
		}
		if res != nil {
			doc = res.(storage.Document)
		}
		return nil
	})
	if err != nil {
		return nil, pref, lat, err
	}
	return doc, pref, lat, nil
}

// Upsert routes a single-document set to the owning shard's primary.
func (r *Router) Upsert(p sim.Proc, collection, id string, fields storage.Document) (time.Duration, error) {
	r.noteCollection(collection)
	var lat time.Duration
	err := r.route(p, id, true, func(shard int) error {
		_, lt, err := r.systems[shard].Router.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Set(collection, id, fields)
		})
		lat = lt
		return err
	})
	if err == nil {
		r.invalidateKey(collection, id)
	}
	return lat, err
}

// Insert routes a single-document insert to the owning shard.
func (r *Router) Insert(p sim.Proc, collection string, doc storage.Document) (time.Duration, error) {
	id := doc.ID()
	if id == "" {
		return 0, fmt.Errorf("sharding: insert requires a string _id")
	}
	r.noteCollection(collection)
	var lat time.Duration
	err := r.route(p, id, true, func(shard int) error {
		_, lt, err := r.systems[shard].Router.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Insert(collection, doc)
		})
		lat = lt
		return err
	})
	if err == nil {
		r.invalidateKey(collection, id)
	}
	return lat, err
}

// Delete routes a single-document delete to the owning shard.
func (r *Router) Delete(p sim.Proc, collection, id string) (time.Duration, error) {
	r.noteCollection(collection)
	var lat time.Duration
	err := r.route(p, id, true, func(shard int) error {
		_, lt, err := r.systems[shard].Router.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Delete(collection, id)
		})
		lat = lt
		return err
	})
	if err == nil {
		r.invalidateKey(collection, id)
	}
	return lat, err
}

// Fractions returns each shard's current Balance Fraction in percent —
// the per-shard adaptation the paper's §2.2 remark predicts.
func (r *Router) Fractions() []int {
	out := make([]int, len(r.systems))
	for i, sys := range r.systems {
		out[i] = sys.Balancer.FractionPct()
	}
	return out
}
