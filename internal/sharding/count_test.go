package sharding

// Regression tests for exact ScatterCount (PR 9, closing DESIGN.md's
// old limitation (c)): during a chunk migration the moving range
// transiently exists on both source and destination, and a per-shard
// count sum used to overcount it. Counts are now bounded per shard by
// the ranges it owns under one authoritative table snapshot.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decongestant/internal/storage"

	"decongestant/internal/core"
	"decongestant/internal/sim"
)

// TestScatterCountChunkModeExact: steady state, chunk mode — the
// ownership-bounded count matches the document population, with and
// without a field filter, and the _id-constrained fallback path still
// answers.
func TestScatterCountChunkModeExact(t *testing.T) {
	env := sim.NewRealtimeEnv(71)
	defer env.Shutdown()
	c := New(env, 2, shardConfig())
	c.EnableChunks([]string{"doc100", "doc200"})
	r := NewRouter(env, c, core.DefaultParams())

	p := env.Adhoc("loader")
	const numDocs = 300
	for i := 0; i < numDocs; i++ {
		doc := storage.D{"_id": fmt.Sprintf("doc%03d", i), "grp": int64(i % 3)}
		if _, err := r.Insert(p, "kv", doc); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := r.ScatterCount(p, "kv", nil); err != nil || n != numDocs {
		t.Fatalf("unfiltered count = %d, %v; want %d", n, err, numDocs)
	}
	f := storage.Filter{"grp": storage.Eq(int64(1))}
	if n, err := r.ScatterCount(p, "kv", f); err != nil || n != numDocs/3 {
		t.Fatalf("filtered count = %d, %v; want %d", n, err, numDocs/3)
	}
	idf := storage.Filter{"_id": storage.Gte("doc200")}
	if n, err := r.ScatterCount(p, "kv", idf); err != nil || n != 100 {
		t.Fatalf("_id-filtered count = %d, %v; want 100", n, err)
	}
}

// TestScatterCountExactDuringMigration: a counter hammers ScatterCount
// while a chunk migrates (clone, catch-up, freeze, flip, cleanup) and
// upsert writers churn the moving range. The count must never deviate
// from the fixed population — before the fix the copy phase double
// counted the moving range on source and destination.
func TestScatterCountExactDuringMigration(t *testing.T) {
	const numDocs = 300
	env := sim.NewRealtimeEnv(72)
	defer env.Shutdown()
	cfg := shardConfig()
	cfg.ReplIdlePoll = 2 * time.Millisecond
	c := New(env, 2, cfg)
	c.EnableChunks([]string{"doc200"})
	r := NewRouter(env, c, core.DefaultParams())

	id := func(i int) string { return fmt.Sprintf("doc%03d", i) }
	moved := c.Owner("doc250")
	dest := 1 - moved

	loader := env.Adhoc("loader")
	for i := 0; i < numDocs; i++ {
		if _, err := r.Insert(loader, "kv", storage.D{"_id": id(i), "seq": int64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range r.conns {
		r.waitSecondaries(loader, r.conns[i], 5*time.Second)
	}

	var (
		stop   atomic.Bool
		failMu sync.Mutex
		fail   = func(format string, args ...any) {
			failMu.Lock()
			defer failMu.Unlock()
			t.Errorf(format, args...)
			stop.Store(true)
		}
	)
	var wg sync.WaitGroup

	// Writers churn the moving range so the count races clone batches
	// and frozen-tail replay, not just a quiescent copy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := env.Adhoc("writer")
		for i, seq := 200, int64(0); !stop.Load(); i = 200 + (i-199)%100 {
			seq++
			if _, err := r.Upsert(p, "kv", id(i), storage.D{"seq": seq}); err != nil {
				fail("upsert %s: %v", id(i), err)
				return
			}
		}
	}()

	counts := new(atomic.Int64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := env.Adhoc("counter")
		for !stop.Load() {
			n, err := r.ScatterCount(p, "kv", nil)
			if err != nil {
				fail("count: %v", err)
				return
			}
			if n != numDocs {
				fail("count = %d mid-migration, want %d (orphans or double-counted range)", n, numDocs)
				return
			}
			counts.Add(1)
		}
	}()

	time.Sleep(50 * time.Millisecond)
	mig := env.Adhoc("migrator")
	if err := r.MigrateChunk(mig, "doc250", dest, MigrateOptions{}); err != nil {
		t.Fatalf("MigrateChunk: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	// Move it back: the counter also spans a migration whose source is
	// the destination of the first.
	if err := r.MigrateChunk(mig, "doc250", moved, MigrateOptions{}); err != nil {
		t.Fatalf("MigrateChunk back: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if t.Failed() {
		return
	}
	if counts.Load() == 0 {
		t.Fatal("counter never completed a ScatterCount")
	}
	if r.Authority().Version() < 3 {
		t.Fatalf("table version %d, want >= 3 after two moves", r.Authority().Version())
	}
}
