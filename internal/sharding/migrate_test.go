package sharding

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// TestSplitChunkInvisibleToTraffic: a split bumps the table version
// without changing ownership, so routed ops keep working against the
// old cache with zero stale retries.
func TestSplitChunkInvisibleToTraffic(t *testing.T) {
	env := sim.NewEnv(5)
	defer env.Shutdown()
	c := New(env, 2, shardConfig())
	auth := c.EnableChunks([]string{"m"})
	r := NewRouter(env, c, core.DefaultParams())

	ok := false
	env.Spawn("client", func(p sim.Proc) {
		for i := 0; i < 10; i++ {
			id := fmt.Sprintf("k%02d", i)
			if _, err := r.Insert(p, "kv", storage.D{"_id": id, "v": int64(i)}); err != nil {
				t.Error(err)
				return
			}
		}
		if err := r.SplitChunk("k05"); err != nil {
			t.Error(err)
			return
		}
		if auth.Version() != 2 || auth.Map().NumChunks() != 3 {
			t.Errorf("after split: version %d, %d chunks", auth.Version(), auth.Map().NumChunks())
			return
		}
		for i := 0; i < 10; i++ {
			id := fmt.Sprintf("k%02d", i)
			d, _, _, err := r.ReadByID(p, "kv", id)
			if err != nil || d == nil {
				t.Errorf("read %s after split: %v %v", id, d, err)
				return
			}
		}
		ok = true
	})
	env.Run(10 * time.Second)
	if !ok {
		t.Fatal("client did not finish")
	}
	if got := r.Registry().Snapshot().CounterValue("sharding.stale_chunk_retries"); got != 0 {
		t.Fatalf("split caused %d stale retries, want 0", got)
	}
}

// TestMigrateChunkUnderLoad is the headline live-migration test: a
// chunk moves between shards while readers, writers, and scatter
// queries run concurrently. Afterwards no document may be lost or
// duplicated, every document must hold its last written value, the
// freshness audit must be clean, and stale-chunk retries bounded.
// Run it with -race: the scatter fan-out, the migration drains, and
// the authority's freeze all interleave here.
func TestMigrateChunkUnderLoad(t *testing.T) {
	const (
		numDocs    = 300
		splitKey   = "doc200"
		numWriters = 2
		numReaders = 2
	)
	env := sim.NewRealtimeEnv(7)
	defer env.Shutdown()
	cfg := shardConfig()
	cfg.ReplIdlePoll = 2 * time.Millisecond
	c := New(env, 2, cfg)
	c.EnableChunks([]string{splitKey})
	r := NewRouter(env, c, core.DefaultParams())

	id := func(i int) string { return fmt.Sprintf("doc%03d", i) }
	moved := c.Owner("doc250") // shard owning the chunk that will move
	dest := 1 - moved

	// Load through the router so placement follows the chunk table.
	loader := env.Adhoc("loader")
	for i := 0; i < numDocs; i++ {
		if _, err := r.Insert(loader, "kv", storage.D{"_id": id(i), "seq": int64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range r.conns {
		r.waitSecondaries(loader, r.conns[i], 5*time.Second)
	}

	var (
		stop     atomic.Bool
		workerMu sync.Mutex
		lastSeq  = make(map[string]int64)
		fail     = func(format string, args ...any) {
			workerMu.Lock()
			defer workerMu.Unlock()
			t.Errorf(format, args...)
			stop.Store(true)
		}
	)
	var wg sync.WaitGroup
	for w := 0; w < numWriters; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := env.Adhoc(fmt.Sprintf("writer%d", w))
			seq := int64(0)
			for i := w; !stop.Load(); i = (i + numWriters) % numDocs {
				seq++
				docID := id(i)
				if _, err := r.Upsert(p, "kv", docID, storage.D{"seq": seq}); err != nil {
					fail("writer %d: upsert %s: %v", w, docID, err)
					return
				}
				workerMu.Lock()
				lastSeq[docID] = seq
				workerMu.Unlock()
			}
		}()
	}
	for rd := 0; rd < numReaders; rd++ {
		rd := rd
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := env.Adhoc(fmt.Sprintf("reader%d", rd))
			rng := env.NewRand(fmt.Sprintf("reader%d", rd))
			for !stop.Load() {
				docID := id(rng.Intn(numDocs))
				d, _, _, err := r.ReadByID(p, "kv", docID)
				if err != nil {
					fail("reader %d: %s: %v", rd, docID, err)
					return
				}
				if d == nil {
					fail("reader %d: %s LOST (not found mid-migration)", rd, docID)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := env.Adhoc("scatterer")
		for !stop.Load() {
			docs, err := r.ScatterFind(p, "kv", nil, 0)
			if err != nil {
				fail("scatter: %v", err)
				return
			}
			if len(docs) != numDocs {
				fail("scatter saw %d docs, want %d (lost or duplicated mid-migration)", len(docs), numDocs)
				return
			}
			for i := 1; i < len(docs); i++ {
				if docs[i].ID() == docs[i-1].ID() {
					fail("scatter returned duplicate %s", docs[i].ID())
					return
				}
			}
		}
	}()

	// Let traffic reach steady state, migrate, keep traffic going.
	time.Sleep(100 * time.Millisecond)
	mig := env.Adhoc("migrator")
	if err := r.MigrateChunk(mig, "doc250", dest, MigrateOptions{}); err != nil {
		t.Fatalf("MigrateChunk: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// The chunk and all its documents must now live on dest, and only
	// there; everything else stays put. Each doc holds the last value
	// its writer recorded.
	if got := c.Owner("doc250"); got != dest {
		t.Fatalf("owner after migration = %d, want %d", got, dest)
	}
	seen := make(map[string]int)
	check := env.Adhoc("checker")
	for s := 0; s < c.NumShards(); s++ {
		conn := r.conns[s]
		res, err := conn.ExecRead(check, conn.PrimaryID(), func(v cluster.ReadView) (any, error) {
			return v.Find("kv", nil, 0), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.([]storage.Document) {
			seen[d.ID()]++
			if owner := c.Owner(d.ID()); owner != s {
				t.Errorf("doc %s on shard %d, owner is %d (orphan after migration)", d.ID(), s, owner)
			}
			workerMu.Lock()
			want, wrote := lastSeq[d.ID()]
			workerMu.Unlock()
			if wrote && d.Int("seq") != want {
				t.Errorf("doc %s seq = %d, last write was %d (lost update)", d.ID(), d.Int("seq"), want)
			}
		}
	}
	for i := 0; i < numDocs; i++ {
		switch seen[id(i)] {
		case 1:
		case 0:
			t.Errorf("doc %s LOST by migration", id(i))
		default:
			t.Errorf("doc %s duplicated %d times", id(i), seen[id(i)])
		}
	}

	snap := r.Registry().Snapshot()
	if got := snap.CounterValue("sharding.migrations"); got != 1 {
		t.Errorf("sharding.migrations = %d, want 1", got)
	}
	if got := snap.CounterValue("sharding.stale_chunk_retries"); got > 64 {
		t.Errorf("sharding.stale_chunk_retries = %d, want bounded (<= 64)", got)
	}
	violations := uint64(0)
	for s := 0; s < c.NumShards(); s++ {
		violations += c.Shard(s).Metrics().Snapshot().CounterValue("freshness.bound_violations")
	}
	if violations != 0 {
		t.Errorf("freshness.bound_violations = %d across shards, want 0", violations)
	}
}

// TestMigrateChunkPurgesStaleDestinationCopy: a clone attempt must
// delete the destination's copy of the range before copying. The
// orphan here stands in for an aborted earlier migration (or a
// truncation resync's stale snapshot) whose document was since
// deleted on the source: it is in neither the new snapshot nor the
// replay stream, so without the purge it would survive the ownership
// flip and resurrect.
func TestMigrateChunkPurgesStaleDestinationCopy(t *testing.T) {
	env := sim.NewRealtimeEnv(13)
	defer env.Shutdown()
	cfg := shardConfig()
	cfg.ReplIdlePoll = 2 * time.Millisecond
	c := New(env, 2, cfg)
	c.EnableChunks([]string{"doc200"})
	r := NewRouter(env, c, core.DefaultParams())

	p := env.Adhoc("test")
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("doc%03d", i)
		if _, err := r.Insert(p, "kv", storage.D{"_id": id, "seq": int64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	moved := c.Owner("doc250")
	dest := 1 - moved

	// Plant the orphan directly on the destination, inside the moving
	// range, bypassing the router — the source has never seen this id.
	orphan := "doc250-stale-orphan"
	dconn := r.conns[dest]
	if _, err := dconn.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Set("kv", orphan, storage.D{"_id": orphan, "seq": int64(-1)})
	}); err != nil {
		t.Fatal(err)
	}

	if err := r.MigrateChunk(p, "doc250", dest, MigrateOptions{}); err != nil {
		t.Fatalf("MigrateChunk: %v", err)
	}

	res, err := dconn.ExecRead(p, dconn.PrimaryID(), func(v cluster.ReadView) (any, error) {
		d, ok := v.FindByID("kv", orphan)
		if !ok {
			return nil, nil
		}
		return d, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("stale orphan %s survived the migration (purge-before-clone missing)", orphan)
	}
	// The legitimate documents all moved intact.
	docs, err := r.ScatterFind(p, "kv", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 300 {
		t.Fatalf("post-migration scatter saw %d docs, want 300", len(docs))
	}
}

// TestMigrateChunkErrors covers the guard rails.
func TestMigrateChunkErrors(t *testing.T) {
	env := sim.NewRealtimeEnv(9)
	defer env.Shutdown()
	c := New(env, 2, shardConfig())
	p := env.Adhoc("test")

	hashRouter := NewRouter(env, c, core.DefaultParams())
	if err := hashRouter.MigrateChunk(p, "x", 1, MigrateOptions{}); err == nil {
		t.Fatal("MigrateChunk in hash mode succeeded")
	}
	if err := hashRouter.SplitChunk("x"); err == nil {
		t.Fatal("SplitChunk in hash mode succeeded")
	}

	c2 := New(env, 2, shardConfig())
	c2.EnableChunks([]string{"m"})
	r := NewRouter(env, c2, core.DefaultParams())
	if err := r.MigrateChunk(p, "a", 5, MigrateOptions{}); err == nil {
		t.Fatal("MigrateChunk to a bogus shard succeeded")
	}
	owner := c2.Owner("a")
	if err := r.MigrateChunk(p, "a", owner, MigrateOptions{Collections: []string{"kv"}}); err == nil {
		t.Fatal("MigrateChunk to the current owner succeeded")
	}
	if err := r.MigrateChunk(p, "a", 1-owner, MigrateOptions{}); err == nil {
		t.Fatal("MigrateChunk with no known collections succeeded")
	}
}
