package sharding

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decongestant/internal/sim"
)

// Chunk is a half-open shard-key range [Min, Max) owned by one shard.
// An empty Min means -inf, an empty Max means +inf; keys compare as
// raw strings (the _id shard key).
type Chunk struct {
	Min   string
	Max   string
	Shard int
}

// Contains reports whether key falls inside the chunk's range.
func (c Chunk) Contains(key string) bool {
	return key >= c.Min && (c.Max == "" || key < c.Max)
}

func (c Chunk) String() string {
	return fmt.Sprintf("[%q,%q)@%d", c.Min, c.Max, c.Shard)
}

// ChunkMap is an immutable routing table: chunks sorted by Min,
// covering the full key space with no gaps (Chunks[0].Min == "",
// Chunks[len-1].Max == ""). Mutations (split, move) produce a new map
// with Version+1; routers cache a map and refresh it when a shard
// rejects an op with a StaleChunkError.
type ChunkMap struct {
	Version uint64
	Chunks  []Chunk
}

// NewChunkMap builds a version-1 table from sorted split points: keys
// below splits[0] form the first chunk, and so on. Chunks are assigned
// to the numShards shards round-robin. Duplicate or unsorted split
// points are normalized.
func NewChunkMap(splits []string, numShards int) *ChunkMap {
	if numShards < 1 {
		panic("sharding: need at least one shard")
	}
	ss := append([]string(nil), splits...)
	sort.Strings(ss)
	uniq := ss[:0]
	for i, s := range ss {
		if s == "" || (i > 0 && s == ss[i-1]) {
			continue
		}
		uniq = append(uniq, s)
	}
	m := &ChunkMap{Version: 1}
	lo := ""
	for i, s := range uniq {
		m.Chunks = append(m.Chunks, Chunk{Min: lo, Max: s, Shard: i % numShards})
		lo = s
	}
	m.Chunks = append(m.Chunks, Chunk{Min: lo, Max: "", Shard: len(uniq) % numShards})
	return m
}

// indexOf locates the chunk containing key in O(log chunks).
func (m *ChunkMap) indexOf(key string) int {
	// First i with Min > key; the owning chunk is the one before it.
	i := sort.Search(len(m.Chunks), func(i int) bool { return m.Chunks[i].Min > key })
	return i - 1
}

// At returns the chunk containing key.
func (m *ChunkMap) At(key string) Chunk { return m.Chunks[m.indexOf(key)] }

// Owner returns the shard owning key under this table version.
func (m *ChunkMap) Owner(key string) int { return m.Chunks[m.indexOf(key)].Shard }

// NumChunks returns the number of chunks.
func (m *ChunkMap) NumChunks() int { return len(m.Chunks) }

// split returns a copy with the chunk containing key split at key.
// Ownership is unchanged, so cached routers stay correct; only the
// version moves.
func (m *ChunkMap) split(key string) (*ChunkMap, error) {
	if key == "" {
		return nil, fmt.Errorf("sharding: cannot split at -inf")
	}
	i := m.indexOf(key)
	ck := m.Chunks[i]
	if ck.Min == key {
		return nil, fmt.Errorf("sharding: %s already splits at %q", ck, key)
	}
	out := &ChunkMap{Version: m.Version + 1, Chunks: make([]Chunk, 0, len(m.Chunks)+1)}
	out.Chunks = append(out.Chunks, m.Chunks[:i]...)
	out.Chunks = append(out.Chunks,
		Chunk{Min: ck.Min, Max: key, Shard: ck.Shard},
		Chunk{Min: key, Max: ck.Max, Shard: ck.Shard})
	out.Chunks = append(out.Chunks, m.Chunks[i+1:]...)
	return out, nil
}

// move returns a copy with the chunk starting at min reassigned to
// shard `to`. A min that matches no chunk is an invariant violation —
// migration holds the single migration slot and splits are rejected
// while it runs, so the chunk resolved at beginMigration must still
// exist — and panics rather than publishing a version bump that moved
// nothing.
func (m *ChunkMap) move(min string, to int) *ChunkMap {
	out := &ChunkMap{Version: m.Version + 1, Chunks: append([]Chunk(nil), m.Chunks...)}
	found := false
	for i := range out.Chunks {
		if out.Chunks[i].Min == min {
			out.Chunks[i].Shard = to
			found = true
		}
	}
	if !found {
		panic(fmt.Sprintf("sharding: move: no chunk with min %q in table v%d", min, m.Version))
	}
	return out
}

// StaleChunkError is returned when an op planned against a cached
// routing table reaches a shard that no longer owns the key (the
// chunk moved since the router cached its map). Routers refresh their
// cache and retry; the retry count is bounded and surfaced through
// the sharding.stale_chunk_retries counter.
type StaleChunkError struct {
	Key          string
	PlannedShard int
	OwnerShard   int
	Version      uint64
}

func (e *StaleChunkError) Error() string {
	return fmt.Sprintf("sharding: stale chunk version for key %q: planned shard %d, owner is %d (version %d)",
		e.Key, e.PlannedShard, e.OwnerShard, e.Version)
}

// staleChunkMarker is the stable prefix-independent token every
// StaleChunkError message carries; mongosd flattens errors to strings
// on the wire, so remote callers match on it.
const staleChunkMarker = "stale chunk version"

// IsStaleChunk reports whether err is a stale-chunk-version rejection,
// either the typed form (possibly wrapped) or the string form a wire
// response carries after the error crossed mongosd as text.
func IsStaleChunk(err error) bool {
	if err == nil {
		return false
	}
	var sce *StaleChunkError
	if errors.As(err, &sce) {
		return true
	}
	return strings.Contains(err.Error(), staleChunkMarker)
}

// inflightKey identifies a set of in-flight ops: the chunk range they
// entered under and the shard they were routed to. Migration drains
// wait only on entries overlapping the moving range on the relevant
// shard, so traffic to other chunks never delays a hand-off.
type inflightKey struct {
	min   string
	max   string
	shard int
	write bool
}

// ChunkAuthority is the config-server role: it owns the authoritative
// routing table and coordinates splits and migrations against live
// traffic. Every routed op calls Enter before touching a shard — the
// authority validates the op's placement against the current table
// (returning StaleChunkError on a miss), blocks writes targeting a
// write-frozen chunk during a migration hand-off, and refcounts the op
// so migration can drain in-flight work before deleting source data.
//
// Lock order: ChunkAuthority.mu is a leaf — nothing else is acquired
// while holding it. The table itself is an atomic pointer so the read
// path (Map/Owner) never takes the lock.
type ChunkAuthority struct {
	env  sim.Env
	cur  atomic.Pointer[ChunkMap]
	gate sim.Gate

	mu        sync.Mutex
	inflight  map[inflightKey]int
	frozen    bool
	frozenMin string
	frozenMax string
	migrating bool
}

// NewChunkAuthority builds an authority serving the given initial
// table.
func NewChunkAuthority(env sim.Env, m *ChunkMap) *ChunkAuthority {
	a := &ChunkAuthority{env: env, gate: env.NewGate(), inflight: make(map[inflightKey]int)}
	a.cur.Store(m)
	return a
}

// Map returns the current authoritative table (lock-free).
func (a *ChunkAuthority) Map() *ChunkMap { return a.cur.Load() }

// Version returns the current table version.
func (a *ChunkAuthority) Version() uint64 { return a.cur.Load().Version }

// lease records one in-flight op admitted by Enter. Release it when
// the op completes.
type lease struct {
	a *ChunkAuthority
	k inflightKey
}

func (l lease) release() {
	if l.a == nil {
		return
	}
	l.a.mu.Lock()
	if n := l.a.inflight[l.k] - 1; n > 0 {
		l.a.inflight[l.k] = n
	} else {
		delete(l.a.inflight, l.k)
	}
	l.a.mu.Unlock()
	l.a.gate.Broadcast()
}

// freezeWaitPoll bounds how long a blocked writer or draining migrator
// sleeps between re-checks if a Broadcast is missed.
const freezeWaitPoll = 2 * time.Millisecond

// Enter validates an op routed to shard for key against the current
// table and registers it in flight. If the shard no longer owns the
// key it returns a *StaleChunkError (the caller refreshes its cached
// map and retries). Writes targeting a write-frozen chunk block until
// the freeze lifts, then revalidate — after a migration hand-off the
// revalidation observes the new owner and fails stale, steering the
// retried write to the destination shard.
//
// Validation and in-flight registration happen under one a.mu hold,
// and commitMove publishes the moved table under the same lock: an op
// admitted against the old owner is therefore visible to the
// migration's freeze/drain before the ownership flip, and an op that
// misses the drain observes the new table and fails stale. Without
// that atomicity a write could validate against the pre-move table,
// register after the final drain, land on the source, and be deleted
// by cleanup — a silently lost acknowledged write.
func (a *ChunkAuthority) Enter(p sim.Proc, key string, shard int, write bool) (lease, error) {
	for {
		a.mu.Lock()
		m := a.cur.Load()
		ck := m.At(key)
		if ck.Shard != shard {
			a.mu.Unlock()
			return lease{}, &StaleChunkError{Key: key, PlannedShard: shard, OwnerShard: ck.Shard, Version: m.Version}
		}
		if write && a.frozen && keyInRange(key, a.frozenMin, a.frozenMax) {
			a.mu.Unlock()
			a.gate.WaitTimeout(p, freezeWaitPoll)
			continue
		}
		k := inflightKey{min: ck.Min, max: ck.Max, shard: shard, write: write}
		a.inflight[k]++
		a.mu.Unlock()
		return lease{a: a, k: k}, nil
	}
}

// enterScatter atomically snapshots the current table and registers
// one in-flight read entry per chunk on its owning shard. A scatter
// that plans per-shard work against the snapshot is thereby visible to
// migration's post-flip reader drain: cleanup cannot delete a moved
// range until every scatter that snapshotted the pre-move table has
// finished against the intact source copy. The snapshot and the
// registration share one mu hold — the same lock commitMove publishes
// under — so a flip cannot slip between them; and because post-flip
// scatters register the moved range on its new owner, the drain is
// never starved by a steady stream of scatters. Release every lease
// when the scatter completes.
func (a *ChunkAuthority) enterScatter() (*ChunkMap, []lease) {
	a.mu.Lock()
	m := a.cur.Load()
	leases := make([]lease, 0, len(m.Chunks))
	for _, ck := range m.Chunks {
		k := inflightKey{min: ck.Min, max: ck.Max, shard: ck.Shard}
		a.inflight[k]++
		leases = append(leases, lease{a: a, k: k})
	}
	a.mu.Unlock()
	return m, leases
}

// Split splits the chunk containing key at key. Ownership is
// unchanged, so no in-flight op is invalidated; cached routers keep
// working and pick up the new version lazily.
func (a *ChunkAuthority) Split(key string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.migrating {
		return fmt.Errorf("sharding: cannot split during a migration")
	}
	next, err := a.cur.Load().split(key)
	if err != nil {
		return err
	}
	a.cur.Store(next)
	return nil
}

// beginMigration claims the single migration slot and resolves the
// chunk containing key under the current table. It fails if a
// migration is already running or the chunk is already on `to`.
func (a *ChunkAuthority) beginMigration(key string, to int) (Chunk, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.migrating {
		return Chunk{}, fmt.Errorf("sharding: migration already in progress")
	}
	ck := a.cur.Load().At(key)
	if ck.Shard == to {
		return Chunk{}, fmt.Errorf("sharding: chunk %s already on shard %d", ck, to)
	}
	a.migrating = true
	return ck, nil
}

// abortMigration releases the migration slot and any freeze.
func (a *ChunkAuthority) abortMigration() {
	a.mu.Lock()
	a.migrating = false
	a.frozen = false
	a.mu.Unlock()
	a.gate.Broadcast()
}

// freezeWrites blocks new writes to the chunk's range and waits for
// writes already in flight against the source shard to drain. Reads
// are never frozen — the source keeps a complete copy of the range
// until after the hand-off.
func (a *ChunkAuthority) freezeWrites(p sim.Proc, ck Chunk) {
	a.mu.Lock()
	a.frozen = true
	a.frozenMin, a.frozenMax = ck.Min, ck.Max
	a.mu.Unlock()
	a.waitDrain(p, ck, ck.Shard, true)
}

// commitMove publishes the new table with the chunk reassigned to
// shard `to`, lifts the write freeze, and wakes blocked writers (which
// revalidate, fail stale, and get rerouted to the destination).
func (a *ChunkAuthority) commitMove(ck Chunk, to int) *ChunkMap {
	a.mu.Lock()
	next := a.cur.Load().move(ck.Min, to)
	a.cur.Store(next)
	a.frozen = false
	a.migrating = false
	a.mu.Unlock()
	a.gate.Broadcast()
	return next
}

// drainReaders waits until no op admitted against the given shard
// still overlaps the chunk's range. The migrator calls it after the
// hand-off, before deleting the source copy, so reads planned against
// the old table finish against intact data.
func (a *ChunkAuthority) drainReaders(p sim.Proc, ck Chunk, shard int) {
	a.waitDrain(p, ck, shard, false)
}

// waitDrain blocks until no in-flight entry on shard overlaps
// [ck.Min, ck.Max). writesOnly restricts the wait to write entries.
func (a *ChunkAuthority) waitDrain(p sim.Proc, ck Chunk, shard int, writesOnly bool) {
	for {
		a.mu.Lock()
		busy := false
		for k, n := range a.inflight {
			if n <= 0 || k.shard != shard || (writesOnly && !k.write) {
				continue
			}
			if rangesOverlap(k.min, k.max, ck.Min, ck.Max) {
				busy = true
				break
			}
		}
		a.mu.Unlock()
		if !busy {
			return
		}
		a.gate.WaitTimeout(p, freezeWaitPoll)
	}
}

// keyInRange reports whether key falls in the half-open range
// [min, max) with "" meaning ±inf at the respective end.
func keyInRange(key, min, max string) bool {
	return key >= min && (max == "" || key < max)
}

// rangesOverlap reports whether [aMin,aMax) and [bMin,bMax) intersect.
func rangesOverlap(aMin, aMax, bMin, bMax string) bool {
	if aMax != "" && aMax <= bMin {
		return false
	}
	if bMax != "" && bMax <= aMin {
		return false
	}
	return true
}
