// Package sharding implements MongoDB-style horizontal partitioning
// over replica sets (§2.2): documents are partitioned by _id across
// shards, each shard is a full replica set, and a mongos-like router
// fans operations out. The paper notes its techniques "can be applied
// to sharded clusters, which support the same Read Preference API" —
// Router demonstrates exactly that by running one independent
// Decongestant (Read Balancer + Router) per shard.
//
// Two placement modes exist. The default hash mode assigns each _id
// by FNV-1a hash — uniform, but immovable. Chunk mode (EnableChunks)
// partitions the key space into contiguous ranges tracked by a
// versioned ChunkMap; chunks can be split and live-migrated between
// shards while traffic continues (see migrate.go).
package sharding

import (
	"fmt"

	"decongestant/internal/cluster"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// Cluster is a sharded deployment: N shards, each a replica set.
type Cluster struct {
	env     sim.Env
	shards  []*cluster.ReplicaSet
	nShards uint32
	auth    *ChunkAuthority
}

// New builds a sharded cluster of numShards replica sets, each with
// the given per-shard configuration.
func New(env sim.Env, numShards int, cfg cluster.Config) *Cluster {
	if numShards < 1 {
		panic("sharding: need at least one shard")
	}
	c := &Cluster{env: env, nShards: uint32(numShards)}
	for i := 0; i < numShards; i++ {
		c.shards = append(c.shards, cluster.New(env, cfg))
	}
	return c
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Shard returns shard i's replica set.
func (c *Cluster) Shard(i int) *cluster.ReplicaSet { return c.shards[i] }

// FNV-1a constants (hash/fnv's 32-bit parameters, inlined so the hot
// routing path allocates nothing).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// hashShard is the allocation-free FNV-1a placement shared by Cluster
// and conn-backed routers. It is bit-identical to hash/fnv.New32a
// followed by Sum32() % n, so documents placed by earlier versions
// stay on the same shard.
func hashShard(id string, n uint32) int {
	h := uint32(fnvOffset32)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * fnvPrime32
	}
	return int(h % n)
}

// ShardFor hash-partitions a document id onto a shard. It is the hash
// mode's placement function and allocates nothing — it sits on the
// routing fast path of every single-document op.
func (c *Cluster) ShardFor(id string) int { return hashShard(id, c.nShards) }

// EnableChunks switches the cluster from hash placement to chunk
// routing: the key space is cut at the given split points and chunks
// are assigned round-robin. Call it before NewRouter and before
// loading data (Owner governs Bootstrap placement). It returns the
// authority so tests and tools can drive splits and migrations.
func (c *Cluster) EnableChunks(splits []string) *ChunkAuthority {
	c.auth = NewChunkAuthority(c.env, NewChunkMap(splits, len(c.shards)))
	return c.auth
}

// Authority returns the chunk authority, or nil in hash mode.
func (c *Cluster) Authority() *ChunkAuthority { return c.auth }

// Owner returns the shard that owns id under the current placement
// mode — the chunk table when chunks are enabled, the hash otherwise.
func (c *Cluster) Owner(id string) int {
	if c.auth != nil {
		return c.auth.Map().Owner(id)
	}
	return c.ShardFor(id)
}

// Bootstrap loads data: fn is invoked once per (shard, store) so
// loaders can insert only the documents belonging to that shard (use
// Owner). It runs against every node of every shard.
func (c *Cluster) Bootstrap(fn func(shard int, s *storage.Store) error) error {
	for i, rs := range c.shards {
		i := i
		if err := rs.Bootstrap(func(s *storage.Store) error { return fn(i, s) }); err != nil {
			return fmt.Errorf("sharding: shard %d: %w", i, err)
		}
	}
	return nil
}
