// Package sharding implements MongoDB-style horizontal partitioning
// over replica sets (§2.2): documents are hash-partitioned by _id
// across shards, each shard is a full replica set, and a mongos-like
// router fans operations out. The paper notes its techniques "can be
// applied to sharded clusters, which support the same Read Preference
// API" — Router demonstrates exactly that by running one independent
// Decongestant (Read Balancer + Router) per shard.
package sharding

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// Cluster is a sharded deployment: N shards, each a replica set.
type Cluster struct {
	env    sim.Env
	shards []*cluster.ReplicaSet
}

// New builds a sharded cluster of numShards replica sets, each with
// the given per-shard configuration.
func New(env sim.Env, numShards int, cfg cluster.Config) *Cluster {
	if numShards < 1 {
		panic("sharding: need at least one shard")
	}
	c := &Cluster{env: env}
	for i := 0; i < numShards; i++ {
		c.shards = append(c.shards, cluster.New(env, cfg))
	}
	return c
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Shard returns shard i's replica set.
func (c *Cluster) Shard(i int) *cluster.ReplicaSet { return c.shards[i] }

// ShardFor hash-partitions a document id onto a shard.
func (c *Cluster) ShardFor(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(c.shards)))
}

// Bootstrap loads data: fn is invoked once per (shard, store) so
// loaders can insert only the documents belonging to that shard (use
// ShardFor). It runs against every node of every shard.
func (c *Cluster) Bootstrap(fn func(shard int, s *storage.Store) error) error {
	for i, rs := range c.shards {
		i := i
		if err := rs.Bootstrap(func(s *storage.Store) error { return fn(i, s) }); err != nil {
			return fmt.Errorf("sharding: shard %d: %w", i, err)
		}
	}
	return nil
}

// Router is the mongos: it owns one complete Decongestant system per
// shard and routes document operations by shard key. Each shard's
// Read Balancer adapts to that shard's congestion independently.
type Router struct {
	cluster *Cluster
	systems []*core.System
}

// NewRouter builds a router with an independent Decongestant per
// shard (the Balancers' background processes start immediately).
func NewRouter(env sim.Env, c *Cluster, params core.Params) *Router {
	r := &Router{cluster: c}
	for _, rs := range c.shards {
		r.systems = append(r.systems, core.NewSystem(env, driver.WrapCluster(rs), params))
	}
	return r
}

// System returns shard i's Decongestant system (for inspection).
func (r *Router) System(i int) *core.System { return r.systems[i] }

// ReadByID routes a single-document read to the owning shard through
// that shard's Decongestant Router.
func (r *Router) ReadByID(p sim.Proc, collection, id string) (storage.Document, driver.ReadPref, time.Duration, error) {
	shard := r.cluster.ShardFor(id)
	res, pref, lat, err := r.systems[shard].Router.Read(p, func(v cluster.ReadView) (any, error) {
		d, ok := v.FindByID(collection, id)
		if !ok {
			return nil, nil
		}
		return d, nil
	})
	if err != nil {
		return nil, pref, lat, err
	}
	if res == nil {
		return nil, pref, lat, nil
	}
	return res.(storage.Document), pref, lat, nil
}

// Upsert routes a single-document set to the owning shard's primary.
func (r *Router) Upsert(p sim.Proc, collection, id string, fields storage.Document) (time.Duration, error) {
	shard := r.cluster.ShardFor(id)
	_, lat, err := r.systems[shard].Router.Write(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Set(collection, id, fields)
	})
	return lat, err
}

// Insert routes a single-document insert to the owning shard.
func (r *Router) Insert(p sim.Proc, collection string, doc storage.Document) (time.Duration, error) {
	id := doc.ID()
	if id == "" {
		return 0, fmt.Errorf("sharding: insert requires a string _id")
	}
	shard := r.cluster.ShardFor(id)
	_, lat, err := r.systems[shard].Router.Write(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Insert(collection, doc)
	})
	return lat, err
}

// Delete routes a single-document delete to the owning shard.
func (r *Router) Delete(p sim.Proc, collection, id string) (time.Duration, error) {
	shard := r.cluster.ShardFor(id)
	_, lat, err := r.systems[shard].Router.Write(p, func(tx cluster.WriteTxn) (any, error) {
		return nil, tx.Delete(collection, id)
	})
	return lat, err
}

// ScatterFind fans a filtered query out to every shard (each through
// its own Decongestant routing decision) and merges the results in
// _id order, honoring the limit across the union.
func (r *Router) ScatterFind(p sim.Proc, collection string, f storage.Filter, limit int) ([]storage.Document, error) {
	var merged []storage.Document
	for _, sys := range r.systems {
		res, _, _, err := sys.Router.Read(p, func(v cluster.ReadView) (any, error) {
			return v.Find(collection, f, limit), nil
		})
		if err != nil {
			return nil, err
		}
		merged = append(merged, res.([]storage.Document)...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID() < merged[j].ID() })
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	return merged, nil
}

// Fractions returns each shard's current Balance Fraction in percent —
// the per-shard adaptation the paper's §2.2 remark predicts.
func (r *Router) Fractions() []int {
	out := make([]int, len(r.systems))
	for i, sys := range r.systems {
		out[i] = sys.Balancer.FractionPct()
	}
	return out
}
