package sharding

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"decongestant/internal/sim"
)

func TestNewChunkMapCoversKeySpace(t *testing.T) {
	// Unsorted with duplicates and an empty split: all normalized away.
	m := NewChunkMap([]string{"m", "d", "m", "", "t"}, 3)
	if m.Version != 1 {
		t.Fatalf("fresh map version = %d, want 1", m.Version)
	}
	if got := m.NumChunks(); got != 4 {
		t.Fatalf("NumChunks = %d, want 4", got)
	}
	if m.Chunks[0].Min != "" || m.Chunks[len(m.Chunks)-1].Max != "" {
		t.Fatalf("map does not cover key space: %v", m.Chunks)
	}
	for i := 1; i < len(m.Chunks); i++ {
		if m.Chunks[i].Min != m.Chunks[i-1].Max {
			t.Fatalf("gap between chunks %d and %d: %v", i-1, i, m.Chunks)
		}
	}
	// Binary-search owner must agree with a linear scan for many keys.
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("%c%03d", 'a'+i%26, i)
		want := -1
		for _, ck := range m.Chunks {
			if ck.Contains(key) {
				want = ck.Shard
				break
			}
		}
		if got := m.Owner(key); got != want {
			t.Fatalf("Owner(%q) = %d, want %d", key, got, want)
		}
	}
	// Boundary keys land in the right-hand chunk (half-open ranges).
	if m.At("d").Min != "d" {
		t.Fatalf("At(%q) = %v, want chunk starting at d", "d", m.At("d"))
	}
}

func TestChunkMapSplitAndMove(t *testing.T) {
	m := NewChunkMap([]string{"m"}, 2)
	owners := map[string]int{}
	for _, k := range []string{"a", "m", "z"} {
		owners[k] = m.Owner(k)
	}
	m2, err := m.split("f")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != m.Version+1 || m2.NumChunks() != m.NumChunks()+1 {
		t.Fatalf("split produced version %d with %d chunks", m2.Version, m2.NumChunks())
	}
	for k, want := range owners {
		if got := m2.Owner(k); got != want {
			t.Fatalf("split changed ownership of %q: %d -> %d", k, want, got)
		}
	}
	if _, err := m2.split("f"); err == nil {
		t.Fatal("re-splitting at an existing boundary must fail")
	}
	if _, err := m2.split(""); err == nil {
		t.Fatal("splitting at -inf must fail")
	}
	m3 := m2.move("f", 1)
	if got := m3.Owner("g"); got != 1 {
		t.Fatalf("after move, Owner(g) = %d, want 1", got)
	}
	if got := m3.Owner("a"); got != owners["a"] {
		t.Fatalf("move changed an unrelated chunk: Owner(a) = %d", got)
	}
	if m2.Owner("g") == 1 {
		t.Fatal("move mutated its input map")
	}
}

// TestShardForMatchesStdlibFNV pins the inlined hash to the stdlib
// implementation it replaced, so existing data placement is unchanged.
func TestShardForMatchesStdlibFNV(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Shutdown()
	c := New(env, 5, shardConfig())
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("doc-%d-%c", i, 'a'+i%26)
		h := fnv.New32a()
		h.Write([]byte(id))
		want := int(h.Sum32() % 5)
		if got := c.ShardFor(id); got != want {
			t.Fatalf("ShardFor(%q) = %d, stdlib fnv gives %d", id, got, want)
		}
	}
}

func TestShardForZeroAllocs(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Shutdown()
	c := New(env, 4, shardConfig())
	id := "user:12345:profile"
	if allocs := testing.AllocsPerRun(1000, func() {
		if c.ShardFor(id) < 0 {
			t.Fatal("negative shard")
		}
	}); allocs != 0 {
		t.Fatalf("ShardFor allocates %.1f/op, want 0", allocs)
	}
}

func TestAuthorityEnterDetectsStalePlacement(t *testing.T) {
	env := sim.NewEnv(3)
	defer env.Shutdown()
	a := NewChunkAuthority(env, NewChunkMap([]string{"m"}, 2))
	ran := false
	env.Spawn("probe", func(p sim.Proc) {
		owner := a.Map().Owner("q")
		l, err := a.Enter(p, "q", owner, false)
		if err != nil {
			t.Errorf("Enter with correct owner: %v", err)
			return
		}
		l.release()
		wrong := (owner + 1) % 2
		if _, err := a.Enter(p, "q", wrong, false); !IsStaleChunk(err) {
			t.Errorf("Enter with wrong owner: got %v, want StaleChunkError", err)
		}
		ran = true
	})
	env.Run(time.Second)
	if !ran {
		t.Fatal("probe did not finish")
	}
}

// TestFreezeBlocksWritesUntilHandoff drives the migration hand-off
// protocol directly: a write to the frozen chunk blocks, and after
// commitMove it observes the new owner as a stale rejection (the
// router's cue to reroute to the destination).
func TestFreezeBlocksWritesUntilHandoff(t *testing.T) {
	env := sim.NewEnv(4)
	defer env.Shutdown()
	a := NewChunkAuthority(env, NewChunkMap([]string{"m"}, 2))
	ck := a.Map().At("q")
	src := ck.Shard

	var writeErr error
	writerDone := false
	env.Spawn("coordinator", func(p sim.Proc) {
		if _, err := a.beginMigration("q", 1-src); err != nil {
			t.Error(err)
			return
		}
		a.freezeWrites(p, ck)
		env.Spawn("writer", func(wp sim.Proc) {
			_, writeErr = a.Enter(wp, "q", src, true)
			writerDone = true
		})
		// Give the writer time to hit the freeze, then hand off.
		p.Sleep(20 * time.Millisecond)
		if writerDone {
			t.Error("write entered a frozen chunk before the hand-off")
			return
		}
		a.commitMove(ck, 1-src)
	})
	env.Run(time.Second)
	if !writerDone {
		t.Fatal("writer never returned from Enter")
	}
	if !IsStaleChunk(writeErr) {
		t.Fatalf("post-handoff write got %v, want StaleChunkError steering it to the destination", writeErr)
	}
	if got := a.Map().Owner("q"); got != 1-src {
		t.Fatalf("owner after commitMove = %d, want %d", got, 1-src)
	}
	if a.Version() != 2 {
		t.Fatalf("version after move = %d, want 2", a.Version())
	}
}

func TestRangesOverlap(t *testing.T) {
	cases := []struct {
		aMin, aMax, bMin, bMax string
		want                   bool
	}{
		{"", "", "m", "t", true},
		{"a", "f", "f", "k", false},
		{"a", "g", "f", "k", true},
		{"t", "", "", "a", false},
		{"", "a", "a", "", false},
		{"m", "t", "m", "t", true},
	}
	for _, c := range cases {
		if got := rangesOverlap(c.aMin, c.aMax, c.bMin, c.bMax); got != c.want {
			t.Errorf("rangesOverlap(%q,%q,%q,%q) = %v, want %v", c.aMin, c.aMax, c.bMin, c.bMax, got, c.want)
		}
	}
}
