package sharding

import (
	"fmt"
	"net"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
	"decongestant/internal/wire"
)

// mongosFixture is a full wire-level deployment: four shard replica
// sets each behind its own wire server, a Mongos routing over dialed
// shard connections, itself served over the wire, plus a single
// replica set holding the identical dataset as the equivalence
// reference.
type mongosFixture struct {
	env    *sim.RealtimeEnv
	mongos *Mongos
	mcl    *wire.Client // client conn to the mongos server
	ref    driver.Conn  // in-process conn to the reference replica set
	stops  []func()
}

func (f *mongosFixture) Close() {
	for i := len(f.stops) - 1; i >= 0; i-- {
		f.stops[i]()
	}
	f.env.Shutdown()
}

func startMongosFixture(t *testing.T, splits []string) *mongosFixture {
	t.Helper()
	env := sim.NewRealtimeEnv(21)
	f := &mongosFixture{env: env}
	cfg := shardConfig()
	cfg.ReplIdlePoll = 2 * time.Millisecond

	serve := func(rs *cluster.ReplicaSet) string {
		srv := wire.NewServerWith(env, rs, nil, wire.ServerConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		f.stops = append(f.stops, srv.Close)
		return ln.Addr().String()
	}

	const numShards = 4
	conns := make([]driver.Conn, numShards)
	addrs := make([]string, numShards)
	for i := 0; i < numShards; i++ {
		addrs[i] = serve(cluster.New(env, cfg))
		cl, err := wire.Dial(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		f.stops = append(f.stops, func() { cl.Close() })
		conns[i] = cl
	}

	opts := RouterOptions{}
	if len(splits) > 0 {
		opts.Authority = NewChunkAuthority(env, NewChunkMap(splits, numShards))
	}
	f.mongos = NewMongos(env, conns, addrs, core.DefaultParams(), opts)
	maddr := func() string {
		srv := wire.NewBackendServer(env, f.mongos, nil, wire.ServerConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		f.stops = append(f.stops, srv.Close)
		return ln.Addr().String()
	}()
	mcl, err := wire.Dial(maddr)
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, func() { mcl.Close() })
	f.mcl = mcl

	f.ref = driver.WrapCluster(cluster.New(env, cfg))
	return f
}

// settle waits until every shard's secondaries (and the reference
// set's) have applied everything, so read placement cannot skew the
// comparison.
func (f *mongosFixture) settle(p sim.Proc) {
	r := f.mongos.Router()
	for i := range r.conns {
		r.waitSecondaries(p, r.conns[i], 5*time.Second)
	}
	r.waitSecondaries(p, f.ref, 5*time.Second)
}

// compare runs the same read against the mongos conn and the
// reference conn and requires identical results.
func (f *mongosFixture) compare(t *testing.T, p sim.Proc, tag string, filter storage.Filter, limit int) {
	t.Helper()
	read := func(conn driver.Conn) ([]storage.Document, int) {
		res, err := conn.ExecRead(p, conn.PrimaryID(), func(v cluster.ReadView) (any, error) {
			return v.Find("kv", filter, limit), nil
		})
		if err != nil {
			t.Fatalf("%s: find: %v", tag, err)
		}
		cnt, err := conn.ExecRead(p, conn.PrimaryID(), func(v cluster.ReadView) (any, error) {
			return v.Count("kv", filter), nil
		})
		if err != nil {
			t.Fatalf("%s: count: %v", tag, err)
		}
		return res.([]storage.Document), cnt.(int)
	}
	gotDocs, gotCount := read(f.mcl)
	wantDocs, wantCount := read(f.ref)
	if gotCount != wantCount {
		t.Fatalf("%s: mongos count %d, reference %d", tag, gotCount, wantCount)
	}
	if len(gotDocs) != len(wantDocs) {
		t.Fatalf("%s: mongos found %d docs, reference %d", tag, len(gotDocs), len(wantDocs))
	}
	for i := range gotDocs {
		g, w := gotDocs[i], wantDocs[i]
		if g.ID() != w.ID() || g.Int("val") != w.Int("val") || g.Str("grp") != w.Str("grp") {
			t.Fatalf("%s: doc %d differs: %v vs %v", tag, i, g, w)
		}
	}
}

// TestMongosEquivalence loads the same dataset through mongosd (4
// shards, chunk-routed) and into a single replica set, then requires
// Find and Count to agree on randomized filters — before and after a
// live chunk migration driven over the wire with move_chunk.
func TestMongosEquivalence(t *testing.T) {
	const numDocs = 160
	f := startMongosFixture(t, []string{"doc040", "doc080", "doc120"})
	defer f.Close()
	p := f.env.Adhoc("test")

	// Load both deployments through their write paths, in batches.
	id := func(i int) string { return fmt.Sprintf("doc%03d", i) }
	grps := []string{"red", "green", "blue"}
	for lo := 0; lo < numDocs; lo += 20 {
		lo := lo
		write := func(conn driver.Conn) {
			_, err := conn.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
				for i := lo; i < lo+20 && i < numDocs; i++ {
					err := tx.Insert("kv", storage.D{
						"_id": id(i), "val": int64(i), "grp": grps[i%len(grps)],
					})
					if err != nil {
						return nil, err
					}
				}
				return nil, nil
			})
			if err != nil {
				t.Fatalf("load batch at %d: %v", lo, err)
			}
		}
		write(f.mcl)
		write(f.ref)
	}
	// A few updates and deletes through both write paths.
	mutate := func(conn driver.Conn) {
		_, err := conn.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
			for i := 0; i < numDocs; i += 17 {
				if err := tx.Set("kv", id(i), storage.D{"val": int64(1000 + i)}); err != nil {
					return nil, err
				}
			}
			return nil, tx.Delete("kv", id(13))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mutate(f.mcl)
	mutate(f.ref)
	f.settle(p)

	// The chunk table must have placed documents across shards.
	shards, err := f.mcl.ListShards()
	if err != nil || len(shards) != 4 {
		t.Fatalf("ListShards = %v, %v", shards, err)
	}
	cm, err := f.mcl.ChunkMap()
	if err != nil || cm == nil || len(cm.Chunks) != 4 {
		t.Fatalf("ChunkMap = %+v, %v", cm, err)
	}

	randomized := func(stage string) {
		rng := f.env.NewRand("filters-" + stage)
		for trial := 0; trial < 25; trial++ {
			var filter storage.Filter
			switch rng.Intn(5) {
			case 0:
				filter = nil
			case 1:
				filter = storage.Filter{"grp": storage.Eq(grps[rng.Intn(len(grps))])}
			case 2:
				filter = storage.Filter{"val": storage.Gte(int64(rng.Intn(numDocs)))}
			case 3:
				filter = storage.Filter{"val": storage.Lt(int64(rng.Intn(numDocs)))}
			case 4:
				filter = storage.Filter{
					"grp": storage.Eq(grps[rng.Intn(len(grps))]),
					"val": storage.Gte(int64(rng.Intn(numDocs))),
				}
			}
			limit := 0
			if rng.Intn(2) == 1 {
				limit = 1 + rng.Intn(50)
			}
			f.compare(t, p, fmt.Sprintf("%s trial %d (%v limit %d)", stage, trial, filter, limit), filter, limit)
		}
	}
	randomized("pre-migration")

	// Point reads and multi-gets agree too.
	for _, docID := range []string{id(0), id(13), id(42), id(119), "missing"} {
		got, gerr := readByID(p, f.mcl, docID)
		want, werr := readByID(p, f.ref, docID)
		if (gerr != nil) != (werr != nil) || (got == nil) != (want == nil) {
			t.Fatalf("FindByID(%s): mongos (%v,%v) vs reference (%v,%v)", docID, got, gerr, want, werr)
		}
		if got != nil && got.Int("val") != want.Int("val") {
			t.Fatalf("FindByID(%s): val %d vs %d", docID, got.Int("val"), want.Int("val"))
		}
	}

	// Live-migrate a chunk over the wire and re-verify equivalence.
	fromShard := cm.Chunks[1].Shard
	var toShard int
	for s := 0; s < len(shards); s++ {
		if s != fromShard {
			toShard = s
			break
		}
	}
	if err := f.mcl.MoveChunk("doc050", toShard); err != nil {
		t.Fatalf("MoveChunk: %v", err)
	}
	cm2, err := f.mcl.ChunkMap()
	if err != nil || cm2.Version != cm.Version+1 {
		t.Fatalf("post-move chunk map version %d (want %d): %v", cm2.Version, cm.Version+1, err)
	}
	f.settle(p)
	randomized("post-migration")

	snap := f.mongos.Metrics().Snapshot()
	if got := snap.CounterValue("sharding.migrations"); got != 1 {
		t.Errorf("sharding.migrations = %d, want 1", got)
	}
}

func readByID(p sim.Proc, conn driver.Conn, id string) (storage.Document, error) {
	res, err := conn.ExecRead(p, conn.PrimaryID(), func(v cluster.ReadView) (any, error) {
		d, ok := v.FindByID("kv", id)
		if !ok {
			return nil, nil
		}
		return d, nil
	})
	if err != nil || res == nil {
		return nil, err
	}
	return res.(storage.Document), nil
}
