package sharding

// The router-side freshness-priced cache: one shared bounded-staleness
// document cache in front of all shards, consulted by bounded
// single-document reads before any shard is touched. It is the mongos
// counterpart of the driver-side cache (internal/driver/cache.go) with
// one extra dimension: every entry is stamped with the chunk-table
// version it was filled under, so a chunk migration invalidates the
// moved range both eagerly (InvalidateRange at commit) and lazily (a
// version-mismatched entry is dropped on its next lookup, which is how
// routers that merely refreshed after a stale-chunk rejection converge).
//
// Causal tokens do not propagate through the mongos (a documented
// router exception), so lookups carry no session prerequisite; the
// validity rule is purely the freshness price: an entry filled with
// observed staleness s at wall time t satisfies bound Δ until
// t + (Δ − s − guardBand).

import (
	"time"

	"decongestant/internal/cache"
	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// EnableCache attaches the shared router-side cache. Hits are audited
// against the owning shard's freshness auditor when that shard's
// connection offers the CacheAuditor capability (the in-process shard
// conns do; wire-backed shards count hits only in the router's own
// cache.* instruments). Call before serving traffic.
func (r *Router) EnableCache(cfg cache.Config) *cache.Cache {
	r.rcache = cache.New(r.env, cfg, r.reg)
	r.auditors = make([]driver.CacheAuditor, len(r.conns))
	for i, conn := range r.conns {
		r.auditors[i], _ = conn.(driver.CacheAuditor)
	}
	return r.rcache
}

// Cache returns the router-side cache (nil when disabled).
func (r *Router) Cache() *cache.Cache { return r.rcache }

// cacheGet answers one lookup from the router cache, auditing a hit
// with its effective staleness against the owning shard's freshness
// auditor.
func (r *Router) cacheGet(p sim.Proc, key cache.Key, boundSecs int64) (storage.Document, bool) {
	doc, hit, ok := r.rcache.Get(p.Now(), key, boundSecs, oplog.Zero, r.ChunkVersion())
	if !ok {
		return nil, false
	}
	if a := r.auditors[r.Owner(key.ID)]; a != nil {
		a.AuditServed(boundSecs, hit.EffSecs, 0)
	}
	return doc, true
}

// invalidateKey drops one document from the router cache after a
// routed write committed (no-op with the cache disabled). Invalidation
// rather than refresh is deliberate: the commit is newer than any
// concurrent fill, so dropping is always safe.
func (r *Router) invalidateKey(collection, id string) {
	if r.rcache != nil {
		r.rcache.InvalidateKey(cache.Key{Collection: collection, ID: id})
	}
}

// invalidateChunk drops every cached document of a migrated chunk's
// range across the migrated collections. Called at migration commit,
// after the authority published the new table.
func (r *Router) invalidateChunk(ck Chunk, collections []string) {
	if r.rcache == nil {
		return
	}
	for _, coll := range collections {
		r.rcache.InvalidateRange(coll, ck.Min, ck.Max)
	}
}

// ReadByIDBounded is ReadByID under a caller-declared freshness bound:
// with the router cache enabled and boundSecs > 0 it first tries to
// spend the staleness budget locally, and only on a miss routes to the
// owning shard — through that shard's Decongestant router, asking the
// serving node for its observed staleness — then fills the cache with
// the result. Concurrent misses of one key collapse into a single
// shard read. A cache hit reports zero shard latency and the zero
// ReadPref (no shard served).
func (r *Router) ReadByIDBounded(p sim.Proc, collection, id string, boundSecs int64) (storage.Document, driver.ReadPref, time.Duration, error) {
	if r.rcache == nil || boundSecs <= 0 {
		return r.ReadByID(p, collection, id)
	}
	start := p.Now()
	key := cache.Key{Collection: collection, ID: id}
	if doc, ok := r.cacheGet(p, key, boundSecs); ok {
		return doc, 0, p.Now() - start, nil
	}
	leader := r.rcache.BeginFill(p, key)
	if !leader {
		// Collapsed follower: the leader's fill may already answer.
		if doc, ok := r.cacheGet(p, key, boundSecs); ok {
			return doc, 0, p.Now() - start, nil
		}
		leader = r.rcache.BeginFill(p, key)
	}
	if leader {
		defer r.rcache.EndFill(key)
	}

	r.noteCollection(collection)
	version := r.ChunkVersion()
	var (
		doc      storage.Document
		pref     driver.ReadPref
		ts       oplog.OpTime
		observed int64
		fresh    bool
	)
	err := r.route(p, id, false, func(shard int) error {
		res, t, obs, pf, _, fr, err := r.systems[shard].Router.ReadFresh(p, func(v cluster.ReadView) (any, error) {
			d, ok := v.FindByID(collection, id)
			if !ok {
				return nil, nil
			}
			return d, nil
		})
		pref, ts, observed, fresh = pf, t, obs, fr
		if err != nil {
			return err
		}
		if res != nil {
			doc = res.(storage.Document)
		}
		return nil
	})
	lat := p.Now() - start
	if err != nil {
		return nil, pref, lat, err
	}
	// Stamp the fill with the table version the read routed under; if a
	// migration bumped it mid-read the fill is skipped rather than
	// stamped ambiguously (the next bounded read refills).
	if doc != nil && fresh && r.ChunkVersion() == version {
		r.rcache.Put(p.Now(), key, doc, observed, ts, version)
	}
	return doc, pref, lat, nil
}
