package sharding

import (
	"fmt"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/driver"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// MigrateOptions tunes a chunk migration.
type MigrateOptions struct {
	// Collections to clone; defaults to every collection the router
	// has seen traffic for.
	Collections []string
	// BatchSize bounds documents per destination write transaction
	// (default 128).
	BatchSize int
	// CatchupRounds bounds oplog catch-up iterations before the
	// migration freezes writes regardless of remaining lag (default
	// 1000); the final drain is separately bounded by the oplog
	// position captured at freeze time.
	CatchupRounds int
	// SecondaryWait bounds how long the hand-off waits for the
	// destination's secondaries to replicate the cloned range before
	// flipping ownership (default 10s).
	SecondaryWait time.Duration
}

func (o *MigrateOptions) defaults(r *Router) {
	if len(o.Collections) == 0 {
		o.Collections = r.seenCollections()
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 128
	}
	if o.CatchupRounds <= 0 {
		o.CatchupRounds = 1000
	}
	if o.SecondaryWait <= 0 {
		o.SecondaryWait = 10 * time.Second
	}
}

// catchupThreshold: once an oplog round returns fewer entries than
// this, the source is close enough to freeze writes and finish.
const catchupThreshold = 64

// maxResyncs bounds full-clone restarts after oplog truncation gaps.
const maxResyncs = 3

// SplitChunk splits the chunk containing key at key. Ownership does
// not change, so the split is invisible to in-flight traffic.
func (r *Router) SplitChunk(key string) error {
	if r.auth == nil {
		return fmt.Errorf("sharding: chunk routing not enabled")
	}
	if err := r.auth.Split(key); err != nil {
		return err
	}
	r.refreshMap()
	return nil
}

// MigrateChunk live-migrates the chunk containing key to shard `to`
// while traffic continues:
//
//  1. snapshot-clone the range from the source primary to the
//     destination (batched upserts),
//  2. tail the source oplog and replay writes to the range until the
//     destination has nearly caught up (a truncation gap forces a
//     full resync, counted by sharding.migration_resyncs),
//  3. freeze writes to the range (reads never freeze), drain the last
//     oplog entries, wait for the destination's secondaries to
//     replicate the clone,
//  4. flip ownership in the authority's table (version+1) — blocked
//     writers revalidate, fail stale, and reroute to the destination;
//     routers with cached maps learn the same way,
//  5. wait for reads planned against the old table to finish, then
//     delete the source copy.
//
// The source keeps a complete copy of the range until step 5, so
// reads are served correctly throughout. A migration that fails
// before the flip purges the destination's partial clone before
// releasing the migration slot, so no orphan documents survive an
// abort; each clone attempt likewise purges the destination's range
// first (a resync's stale snapshot could otherwise resurrect
// documents deleted on the source between attempts).
func (r *Router) MigrateChunk(p sim.Proc, key string, to int, opts MigrateOptions) error {
	if r.auth == nil {
		return fmt.Errorf("sharding: chunk routing not enabled")
	}
	if to < 0 || to >= len(r.conns) {
		return fmt.Errorf("sharding: no shard %d", to)
	}
	opts.defaults(r)
	if len(opts.Collections) == 0 {
		return fmt.Errorf("sharding: no collections to migrate (none seen; set MigrateOptions.Collections)")
	}

	r.migMu.Lock()
	defer r.migMu.Unlock()

	ck, err := r.auth.beginMigration(key, to)
	if err != nil {
		return err
	}
	src, dst := r.conns[ck.Shard], r.conns[to]
	tailer, ok := src.(driver.OplogTailer)
	if !ok {
		r.auth.abortMigration()
		return fmt.Errorf("sharding: source shard %d connection cannot tail the oplog", ck.Shard)
	}

	committed, err := r.runMigration(p, ck, to, src, dst, tailer, opts)
	if err != nil {
		if !committed {
			// The destination holds a partial clone of a range it does
			// not own; purge it before releasing the migration slot so
			// scatter reads and a later retry never see orphans.
			if perr := r.deleteRange(p, ck, dst, opts); perr != nil {
				err = fmt.Errorf("%w (orphan purge on destination shard %d also failed: %v)", err, to, perr)
			}
			r.auth.abortMigration()
		}
		return err
	}
	// The destination owns the range now; cached copies of its
	// documents were filled under the old owner and table version.
	r.invalidateChunk(ck, opts.Collections)
	r.migrationsDone.Inc(1)
	return nil
}

// runMigration drives the protocol. committed reports whether the
// ownership flip was published: once true the destination is the
// owner and the caller must not purge it or abort the (already
// released) migration slot, even if source cleanup failed.
func (r *Router) runMigration(p sim.Proc, ck Chunk, to int, src, dst driver.Conn, tailer driver.OplogTailer, opts MigrateOptions) (committed bool, err error) {
	collSet := make(map[string]bool, len(opts.Collections))
	for _, c := range opts.Collections {
		collSet[c] = true
	}

	var cursor oplog.OpTime
	for resync := 0; ; resync++ {
		if resync > maxResyncs {
			return false, fmt.Errorf("sharding: migration of %s gave up after %d oplog resyncs", ck, maxResyncs)
		}
		if resync > 0 {
			r.migrationResyncs.Inc(1)
		}
		// Purge any copy of the range already on the destination —
		// orphans from an aborted earlier attempt, or the previous
		// snapshot on a truncation resync. The fresh replay cursor
		// starts at "now", so a document deleted on the source since
		// the stale clone would be neither in the new snapshot nor
		// replayed as a delete; cloning over the stale copy would
		// resurrect it after the ownership flip.
		if err := r.deleteRange(p, ck, dst, opts); err != nil {
			return false, err
		}
		// The replay cursor is captured before the snapshot reads, so
		// every write racing the clone is replayed; re-applying
		// entries the snapshot already contains is idempotent (the
		// full suffix replays in order).
		_, applied, _, err := tailer.OplogTail(p, oplog.OpTime{Secs: 1 << 60}, 1)
		if err != nil {
			return false, fmt.Errorf("sharding: migration cursor: %w", err)
		}
		cursor = applied
		if err := r.cloneRange(p, ck, src, dst, opts); err != nil {
			return false, err
		}
		gap, cur, err := r.catchUp(p, ck, collSet, dst, tailer, cursor, opts, nil)
		if err != nil {
			return false, err
		}
		if gap {
			continue // oplog truncated under us: full resync
		}
		cursor = cur
		break
	}

	// Hand-off: stop writes to the range, drain the tail through the
	// freeze point, and make sure the destination's secondaries hold
	// the clone before reads can be routed there.
	r.auth.freezeWrites(p, ck)
	// Writes to the range are now frozen and drained, so every
	// relevant oplog entry sits at or before the primary's applied
	// optime right now. Capturing it bounds the final drain: sustained
	// writes to other chunks on the same source shard keep appending
	// to the shared oplog forever, so "a round came back empty" alone
	// may never hold.
	_, frozenEnd, _, err := tailer.OplogTail(p, oplog.OpTime{Secs: 1 << 60}, 1)
	if err != nil {
		return false, fmt.Errorf("sharding: freeze point: %w", err)
	}
	if _, _, err := r.catchUp(p, ck, collSet, dst, tailer, cursor, opts, &frozenEnd); err != nil {
		return false, err
	}
	r.waitSecondaries(p, dst, opts.SecondaryWait)
	r.auth.commitMove(ck, to)
	r.refreshMap()

	// Reads planned against the old table may still be running on the
	// source; only after they finish is the source copy deletable.
	r.auth.drainReaders(p, ck, ck.Shard)
	return true, r.deleteRange(p, ck, src, opts)
}

// cloneRange snapshot-copies every document of the chunk's range from
// the source primary into the destination, batched.
func (r *Router) cloneRange(p sim.Proc, ck Chunk, src, dst driver.Conn, opts MigrateOptions) error {
	for _, coll := range opts.Collections {
		res, err := src.ExecRead(p, src.PrimaryID(), func(v cluster.ReadView) (any, error) {
			return v.Find(coll, rangeFilter(ck), 0), nil
		})
		if err != nil {
			return fmt.Errorf("sharding: clone read %s: %w", coll, err)
		}
		docs := clipToChunk(res.([]storage.Document), ck)
		for len(docs) > 0 {
			n := opts.BatchSize
			if n > len(docs) {
				n = len(docs)
			}
			batch := docs[:n]
			docs = docs[n:]
			_, err := dst.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
				for _, d := range batch {
					if err := tx.Set(coll, d.ID(), d); err != nil {
						return nil, err
					}
				}
				return nil, nil
			})
			if err != nil {
				return fmt.Errorf("sharding: clone write %s: %w", coll, err)
			}
		}
	}
	return nil
}

// catchUp replays source-oplog writes to the chunk's range onto the
// destination, starting after cursor. With drainTo set it drains the
// frozen tail: writes to the range are frozen and drained, so every
// relevant entry is at or before drainTo (the primary's applied
// optime captured after the freeze) — the drain ends once the cursor
// reaches drainTo or a round comes back empty, bounded by the oplog
// length at freeze time no matter how fast other chunks keep writing.
// Without drainTo it stops once a round returns fewer than
// catchupThreshold entries or the round budget runs out. It reports a
// truncation gap (the log no longer reaches back to the cursor), the
// advanced cursor, and any replay error; a gap during the frozen
// drain is an error — resyncing would require unfreezing, so the
// migration fails instead of holding writes indefinitely.
func (r *Router) catchUp(p sim.Proc, ck Chunk, colls map[string]bool, dst driver.Conn, tailer driver.OplogTailer, cursor oplog.OpTime, opts MigrateOptions, drainTo *oplog.OpTime) (bool, oplog.OpTime, error) {
	for round := 0; ; round++ {
		entries, _, trunc, err := tailer.OplogTail(p, cursor, 1024)
		if err != nil {
			return false, cursor, fmt.Errorf("sharding: oplog tail: %w", err)
		}
		if cursor.Before(trunc) {
			if drainTo != nil {
				return false, cursor, fmt.Errorf("sharding: source oplog truncated past the drain cursor while writes were frozen")
			}
			return true, cursor, nil
		}
		if err := r.replay(p, ck, colls, dst, entries, opts.BatchSize); err != nil {
			return false, cursor, err
		}
		if len(entries) > 0 {
			cursor = entries[len(entries)-1].TS
		}
		if drainTo != nil {
			if len(entries) == 0 || !cursor.Before(*drainTo) {
				return false, cursor, nil
			}
			continue
		}
		if len(entries) < catchupThreshold || round >= opts.CatchupRounds {
			return false, cursor, nil
		}
	}
}

// replay applies the relevant slice of oplog entries — the migrated
// collections, keys inside the chunk — to the destination in order.
func (r *Router) replay(p sim.Proc, ck Chunk, colls map[string]bool, dst driver.Conn, entries []oplog.DecodedEntry, batchSize int) error {
	relevant := entries[:0:0]
	for _, e := range entries {
		if e.Kind == oplog.KindNoop || !colls[e.Collection] || !ck.Contains(e.DocID) {
			continue
		}
		relevant = append(relevant, e)
	}
	for len(relevant) > 0 {
		n := batchSize
		if n > len(relevant) {
			n = len(relevant)
		}
		batch := relevant[:n]
		relevant = relevant[n:]
		_, err := dst.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
			for _, e := range batch {
				var err error
				switch e.Kind {
				case oplog.KindInsert, oplog.KindSet:
					err = tx.Set(e.Collection, e.DocID, e.Doc)
				case oplog.KindDelete:
					err = tx.Delete(e.Collection, e.DocID)
				}
				if err != nil {
					return nil, err
				}
			}
			return nil, nil
		})
		if err != nil {
			return fmt.Errorf("sharding: oplog replay: %w", err)
		}
	}
	return nil
}

// waitSecondaries polls the destination's replica-set status until
// every member has applied the primary's optime (bounded by the
// deadline) so post-flip secondary reads observe the cloned range.
func (r *Router) waitSecondaries(p sim.Proc, dst driver.Conn, wait time.Duration) {
	deadline := r.env.Now() + wait
	for r.env.Now() < deadline {
		st := dst.ServerStatus(p, dst.PrimaryID())
		var target oplog.OpTime
		for _, m := range st.Members {
			if m.Primary {
				target = m.Applied
			}
		}
		caughtUp := len(st.Members) > 0
		for _, m := range st.Members {
			if m.Applied.Before(target) {
				caughtUp = false
				break
			}
		}
		if caughtUp {
			return
		}
		p.Sleep(2 * time.Millisecond)
	}
}

// deleteRange removes the chunk's range from the given shard — the
// source copy after a committed hand-off, or the destination's
// partial clone before a (re)clone and on abort.
func (r *Router) deleteRange(p sim.Proc, ck Chunk, conn driver.Conn, opts MigrateOptions) error {
	for _, coll := range opts.Collections {
		res, err := conn.ExecRead(p, conn.PrimaryID(), func(v cluster.ReadView) (any, error) {
			return v.Find(coll, rangeFilter(ck), 0), nil
		})
		if err != nil {
			return fmt.Errorf("sharding: cleanup read %s: %w", coll, err)
		}
		ids := make([]string, 0)
		for _, d := range clipToChunk(res.([]storage.Document), ck) {
			ids = append(ids, d.ID())
		}
		for len(ids) > 0 {
			n := opts.BatchSize
			if n > len(ids) {
				n = len(ids)
			}
			batch := ids[:n]
			ids = ids[n:]
			_, err := conn.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
				for _, id := range batch {
					if err := tx.Delete(coll, id); err != nil {
						return nil, err
					}
				}
				return nil, nil
			})
			if err != nil {
				return fmt.Errorf("sharding: cleanup write %s: %w", coll, err)
			}
		}
	}
	return nil
}

// rangeFilter selects documents at or above the chunk's lower bound.
// Filters carry one condition per field, so the upper bound is
// enforced client-side by clipToChunk.
func rangeFilter(ck Chunk) storage.Filter {
	if ck.Min == "" {
		return nil
	}
	return storage.Filter{"_id": storage.Gte(ck.Min)}
}

// clipToChunk drops documents at or above the chunk's upper bound.
func clipToChunk(docs []storage.Document, ck Chunk) []storage.Document {
	if ck.Max == "" {
		return docs
	}
	out := docs[:0:0]
	for _, d := range docs {
		if d.ID() < ck.Max {
			out = append(out, d)
		}
	}
	return out
}
