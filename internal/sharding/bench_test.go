package sharding

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
	"decongestant/internal/wire"
)

// benchShardConfig gives the shard replica sets real service times so
// the benchmarks measure shard capacity, not router transport: one CPU
// slot and a 200µs point read caps each node around 5k reads/s, far
// below what the wire layer itself sustains (>100k rt/s with zero
// costs, per the internal/wire benchmarks). Scaling from 1 shard to 4
// must therefore show up as throughput, which is exactly what the
// bench-pr8 gate asserts. Jitter and RTT are disabled for stable
// ratios.
func benchShardConfig() cluster.Config {
	return cluster.Config{
		Nodes:    3,
		CPUSlots: 1,

		ReadCost:    200 * time.Microsecond,
		WriteCost:   400 * time.Microsecond,
		ApplyCost:   20 * time.Microsecond,
		StatusCost:  20 * time.Microsecond,
		GetMoreCost: 20 * time.Microsecond,
		CostJitter:  -1,

		ReplIdlePoll:       2 * time.Millisecond,
		NoopInterval:       time.Hour,
		CheckpointInterval: time.Hour,

		RTTSameZone:        -1,
		RTTCrossZoneBase:   -1,
		RTTCrossZoneSpread: -1,
		RTTJitter:          -1,
	}
}

// BenchmarkShardFor measures the inlined FNV-1a shard-key hash. The
// bench-pr8 gate holds it at 0 allocs/op: routing a read must not
// touch the heap.
func BenchmarkShardFor(b *testing.B) {
	env := sim.NewEnv(1)
	defer env.Shutdown()
	c := New(env, 4, shardConfig())
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("user:%d:profile", i*7919)
	}
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += c.ShardFor(keys[i%len(keys)])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
	if sink < 0 {
		b.Fatal("impossible shard sum")
	}
}

const (
	scatterBenchDocs = 240
	scatterBenchColl = "items"
)

// benchScatterRouter is a 4-shard in-process cluster with realistic
// read costs, loaded with scatterBenchDocs documents hash-placed
// across the shards.
func benchScatterRouter(b *testing.B, sequential bool) (*Router, func()) {
	b.Helper()
	env := sim.NewRealtimeEnv(1)
	c := New(env, 4, benchShardConfig())
	err := c.Bootstrap(func(shard int, s *storage.Store) error {
		for i := 0; i < scatterBenchDocs; i++ {
			id := fmt.Sprintf("item%04d", i)
			if c.ShardFor(id) != shard {
				continue
			}
			if err := s.C(scatterBenchColl).Insert(storage.D{"_id": id, "val": int64(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	conns := make([]driver.Conn, c.NumShards())
	for i := range conns {
		conns[i] = driver.WrapCluster(c.Shard(i))
	}
	r := NewConnRouter(env, conns, core.DefaultParams(), RouterOptions{SequentialScatter: sequential})
	return r, env.Shutdown
}

func benchScatterFind(b *testing.B, sequential bool) {
	r, stop := benchScatterRouter(b, sequential)
	defer stop()
	p := r.renv.Adhoc("bench")
	// Warm the balancer/status machinery before timing.
	if _, err := r.ScatterFind(p, scatterBenchColl, nil, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs, err := r.ScatterFind(p, scatterBenchColl, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(docs) != scatterBenchDocs {
			b.Fatalf("scatter found %d docs, want %d", len(docs), scatterBenchDocs)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
}

// BenchmarkScatterFindParallel vs BenchmarkScatterFindSequential is
// the scatter-gather headline: the same 4-shard full-collection query
// fanned out concurrently versus shard-by-shard. bench-pr8 requires
// parallel >= 2.5x sequential. (SCATTER_SEQ=1 downgrades the parallel
// router to sequential; the committed baseline was captured that way.)
func BenchmarkScatterFindParallel(b *testing.B) { benchScatterFind(b, false) }

func BenchmarkScatterFindSequential(b *testing.B) { benchScatterFind(b, true) }

const mongosBenchDocs = 2000

// mongosBenchConfig slows point reads down to 10ms of modeled service
// time. The scaling benchmarks must measure shard capacity, and on a
// small CI box the real CPU cost of the full wire stack (~1ms/op on
// one core) would otherwise swamp a microsecond-scale model: every
// deployment would bottleneck on the benchmark process itself and
// 4 shards could never show 4x. At 10ms/read a shard's primary caps
// at ~100 reads/s — far above the stack's real per-op cost — so
// adding shards adds throughput, which is the property under test.
func mongosBenchConfig() cluster.Config {
	cfg := benchShardConfig()
	cfg.ReadCost = 10 * time.Millisecond
	return cfg
}

// benchMongos builds the full wire-level deployment: numShards shard
// replica sets each behind its own wire server, a mongos routing over
// dialed connections, itself served over the wire, and a client
// connection to the mongos.
func benchMongos(b *testing.B, numShards int) (*wire.Client, func()) {
	b.Helper()
	env := sim.NewRealtimeEnv(1)
	cfg := mongosBenchConfig()
	var stops []func()
	stop := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		env.Shutdown()
	}

	// Chunk the key space evenly so point reads spread across shards.
	var splits []string
	for s := 1; s < numShards; s++ {
		splits = append(splits, fmt.Sprintf("doc%05d", s*mongosBenchDocs/numShards))
	}
	cm := NewChunkMap(splits, numShards)

	conns := make([]driver.Conn, numShards)
	addrs := make([]string, numShards)
	for i := 0; i < numShards; i++ {
		rs := cluster.New(env, cfg)
		shard := i
		err := rs.Bootstrap(func(s *storage.Store) error {
			for d := 0; d < mongosBenchDocs; d++ {
				id := fmt.Sprintf("doc%05d", d)
				if cm.Owner(id) != shard {
					continue
				}
				if err := s.C("kv").Insert(storage.D{"_id": id, "val": int64(d)}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			stop()
			b.Fatal(err)
		}
		srv := wire.NewServerWith(env, rs, nil, wire.ServerConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			b.Fatal(err)
		}
		go srv.Serve(ln)
		stops = append(stops, srv.Close)
		addrs[i] = ln.Addr().String()
		cl, err := wire.Dial(addrs[i])
		if err != nil {
			stop()
			b.Fatal(err)
		}
		stops = append(stops, func() { cl.Close() })
		conns[i] = cl
	}

	opts := RouterOptions{}
	if len(splits) > 0 {
		opts.Authority = NewChunkAuthority(env, cm)
	}
	mongos := NewMongos(env, conns, addrs, core.DefaultParams(), opts)
	srv := wire.NewBackendServer(env, mongos, nil, wire.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stop()
		b.Fatal(err)
	}
	go srv.Serve(ln)
	stops = append(stops, srv.Close)
	mcl, err := wire.Dial(ln.Addr().String())
	if err != nil {
		stop()
		b.Fatal(err)
	}
	stops = append(stops, func() { mcl.Close() })
	return mcl, stop
}

func benchMongosPointReads(b *testing.B, numShards int) {
	mcl, stop := benchMongos(b, numShards)
	defer stop()
	var seed atomic.Int64
	// Enough closed-loop clients that every shard keeps its queue
	// non-empty even when the random key draw is momentarily uneven;
	// too few and the 4-shard deployment idles below capacity.
	b.SetParallelism(48)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := seed.Add(1)
		i := int(n * 7919)
		for pb.Next() {
			i++
			id := fmt.Sprintf("doc%05d", i%mongosBenchDocs)
			res, err := mcl.ExecRead(nil, 0, func(v cluster.ReadView) (any, error) {
				d, ok := v.FindByID("kv", id)
				if !ok {
					return nil, fmt.Errorf("mongos bench: %s missing", id)
				}
				return d, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if res == nil {
				b.Fatal("nil doc")
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
}

// BenchmarkMongosPointReads1 vs BenchmarkMongosPointReads4 is the
// sharded-tier scaling headline: identical closed-loop point-read load
// through mongosd against 1 shard and against 4 chunk-routed shards.
// With shard capacity the bottleneck (see benchShardConfig), bench-pr8
// requires the 4-shard deployment to deliver >= 3x the throughput.
func BenchmarkMongosPointReads1(b *testing.B) { benchMongosPointReads(b, 1) }

func BenchmarkMongosPointReads4(b *testing.B) { benchMongosPointReads(b, 4) }
