package sharding

import (
	"fmt"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func shardConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.ReplIdlePoll = 5 * time.Millisecond
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	return cfg
}

func TestShardForIsStableAndBalanced(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Shutdown()
	c := New(env, 4, shardConfig())
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		id := fmt.Sprintf("doc%d", i)
		s := c.ShardFor(id)
		if s != c.ShardFor(id) {
			t.Fatal("ShardFor not stable")
		}
		counts[s]++
	}
	for i, n := range counts {
		if n < 700 || n > 1300 {
			t.Fatalf("shard %d holds %d/4000 docs; hash badly skewed: %v", i, n, counts)
		}
	}
}

func TestShardedCRUDRoutesToOwningShard(t *testing.T) {
	env := sim.NewEnv(2)
	defer env.Shutdown()
	c := New(env, 3, shardConfig())
	r := NewRouter(env, c, core.DefaultParams())

	var readBack storage.Document
	env.Spawn("client", func(p sim.Proc) {
		for i := 0; i < 30; i++ {
			id := fmt.Sprintf("k%d", i)
			if _, err := r.Insert(p, "kv", storage.D{"_id": id, "v": i}); err != nil {
				t.Errorf("insert %s: %v", id, err)
				return
			}
		}
		if _, err := r.Upsert(p, "kv", "k7", storage.D{"v": 700}); err != nil {
			t.Error(err)
			return
		}
		d, _, _, err := r.ReadByID(p, "kv", "k7")
		if err != nil {
			t.Error(err)
			return
		}
		readBack = d
		if _, err := r.Delete(p, "kv", "k3"); err != nil {
			t.Error(err)
		}
		if d, _, _, _ := r.ReadByID(p, "kv", "k3"); d != nil {
			t.Error("k3 survived delete")
		}
	})
	env.Run(5 * time.Second)
	if readBack == nil || readBack.Int("v") != 700 {
		t.Fatalf("read back %v", readBack)
	}
	// Documents must live only on their owning shard's primary.
	for i := 0; i < 30; i++ {
		if i == 3 {
			continue
		}
		id := fmt.Sprintf("k%d", i)
		owner := c.ShardFor(id)
		for s := 0; s < c.NumShards(); s++ {
			var found bool
			env.Spawn("check", func(p sim.Proc) {
				res, _ := c.Shard(s).ExecRead(p, c.Shard(s).PrimaryID(), func(v cluster.ReadView) (any, error) {
					_, ok := v.FindByID("kv", id)
					return ok, nil
				})
				found = res.(bool)
			})
			env.Run(env.Now() + 50*time.Millisecond)
			if found != (s == owner) {
				t.Fatalf("doc %s found=%v on shard %d (owner %d)", id, found, s, owner)
			}
		}
	}
}

func TestScatterFindMergesAcrossShards(t *testing.T) {
	env := sim.NewEnv(3)
	defer env.Shutdown()
	c := New(env, 3, shardConfig())
	r := NewRouter(env, c, core.DefaultParams())
	// Load via Bootstrap so each shard holds only its own documents.
	err := c.Bootstrap(func(shard int, s *storage.Store) error {
		for i := 0; i < 60; i++ {
			id := fmt.Sprintf("item%02d", i)
			if c.ShardFor(id) != shard {
				continue
			}
			if err := s.C("items").Insert(storage.D{"_id": id, "grp": i % 2}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var docs []storage.Document
	env.Spawn("client", func(p sim.Proc) {
		var err error
		docs, err = r.ScatterFind(p, "items", storage.Filter{"grp": storage.Eq(1)}, 0)
		if err != nil {
			t.Error(err)
		}
	})
	env.Run(2 * time.Second)
	if len(docs) != 30 {
		t.Fatalf("scatter found %d docs, want 30", len(docs))
	}
	for i := 1; i < len(docs); i++ {
		if docs[i-1].ID() >= docs[i].ID() {
			t.Fatal("merged results not id-ordered")
		}
	}
	// Limit applies across the union.
	env.Spawn("client2", func(p sim.Proc) {
		limited, err := r.ScatterFind(p, "items", storage.Filter{"grp": storage.Eq(1)}, 7)
		if err != nil || len(limited) != 7 {
			t.Errorf("limited scatter: %d docs err %v", len(limited), err)
		}
	})
	env.Run(4 * time.Second)
}

// TestPerShardAdaptationIndependence validates §2.2's remark: with one
// shard's keys hot and the others idle, only the hot shard's Read
// Balancer shifts load to its secondaries.
func TestPerShardAdaptationIndependence(t *testing.T) {
	env := sim.NewEnv(4)
	defer env.Shutdown()
	cfg := shardConfig()
	cfg.CPUSlots = 8
	cfg.ReadCost = 3 * time.Millisecond
	c := New(env, 2, cfg)
	params := core.DefaultParams()
	params.Period = 3 * time.Second
	r := NewRouter(env, c, params)

	// Find a key owned by shard 0 to hammer.
	hotKey := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("hot%d", i)
		if c.ShardFor(k) == 0 {
			hotKey = k
			break
		}
	}
	c.Bootstrap(func(shard int, s *storage.Store) error {
		if shard == c.ShardFor(hotKey) {
			return s.C("kv").Insert(storage.D{"_id": hotKey, "v": 0})
		}
		return nil
	})
	for i := 0; i < 100; i++ {
		env.Spawn("hot-client", func(p sim.Proc) {
			for {
				r.ReadByID(p, "kv", hotKey)
			}
		})
	}
	env.Run(60 * time.Second)
	fr := r.Fractions()
	if fr[0] < 50 {
		t.Errorf("hot shard fraction %d%%, want it to climb", fr[0])
	}
	if fr[1] > 20 {
		t.Errorf("idle shard fraction %d%%, want it to stay near the floor", fr[1])
	}
}
