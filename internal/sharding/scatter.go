package sharding

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"

	"decongestant/internal/cluster"
	"decongestant/internal/obs/trace"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// ShardOutcome is one shard's result of a scatter operation.
type ShardOutcome struct {
	Shard int
	Docs  int // documents (or count) contributed
	Err   error
}

// PartialError reports a scatter that could not reach every shard. It
// carries the per-shard outcomes so callers can distinguish "shard 2
// was down" from "everything failed". The merged results from the
// shards that did answer are still returned alongside it.
type PartialError struct {
	Outcomes []ShardOutcome
}

// Failed returns the outcomes of the shards that errored.
func (e *PartialError) Failed() []ShardOutcome {
	var out []ShardOutcome
	for _, o := range e.Outcomes {
		if o.Err != nil {
			out = append(out, o)
		}
	}
	return out
}

func (e *PartialError) Error() string {
	failed := e.Failed()
	parts := make([]string, 0, len(failed))
	for _, o := range failed {
		parts = append(parts, fmt.Sprintf("shard %d: %v", o.Shard, o.Err))
	}
	return fmt.Sprintf("sharding: scatter failed on %d/%d shards (%s)",
		len(failed), len(e.Outcomes), strings.Join(parts, "; "))
}

// ScatterOptions tunes scatter-gather failure semantics.
type ScatterOptions struct {
	// AllowPartial accepts results from the shards that answered: a
	// scatter succeeds (nil error) unless every shard failed. Without
	// it any shard failure surfaces as a *PartialError, with the
	// partial results still attached to the return value.
	AllowPartial bool
}

// shardPart is one shard's contribution, produced inside the fan-out.
type shardPart struct {
	docs  []storage.Document
	count int
	err   error
}

// fanOut runs one task per shard — concurrently under the real-time
// environment (each task on its own ad-hoc proc), sequentially under
// the virtual environment or when SCATTER_SEQ=1 pins the old
// behavior. It returns per-shard results indexed by shard.
func (r *Router) fanOut(p sim.Proc, task func(p sim.Proc, shard int) shardPart) []shardPart {
	parts := make([]shardPart, len(r.systems))
	if r.renv == nil || r.seqScatter {
		for i := range r.systems {
			parts[i] = task(p, i)
		}
		return parts
	}
	var wg sync.WaitGroup
	for i := range r.systems {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					if sim.ErrStopped(v) {
						parts[shard] = shardPart{err: fmt.Errorf("sharding: environment stopped")}
						return
					}
					panic(v)
				}
			}()
			parts[shard] = task(r.renv.Adhoc("sharding/scatter"), shard)
		}(i)
	}
	wg.Wait()
	return parts
}

// scatter runs the per-shard read fn across all shards under a
// mongos.scatter span (when tctx is sampled), recording one child
// span per shard.
func (r *Router) scatter(p sim.Proc, tctx trace.Context, name string, fn func(p sim.Proc, shard int) shardPart) []shardPart {
	r.scatterTotal.Inc(1)
	if !tctx.Live() {
		return r.fanOut(p, fn)
	}
	parent := trace.Span{
		Trace:  tctx.TraceID,
		ID:     r.tracer.NewSpanID(),
		Parent: tctx.SpanID,
		Name:   "mongos.scatter",
		Node:   -1,
		Start:  r.env.Now(),
		Attrs:  []trace.Attr{{K: "op", V: name}, {K: "shards", V: fmt.Sprint(len(r.systems))}},
	}
	parts := r.fanOut(p, func(p sim.Proc, shard int) shardPart {
		start := r.env.Now()
		part := fn(p, shard)
		child := trace.Span{
			Trace:  tctx.TraceID,
			ID:     r.tracer.NewSpanID(),
			Parent: parent.ID,
			Name:   "mongos.shard_" + name,
			Node:   -1,
			Start:  start,
			Dur:    r.env.Now() - start,
			Attrs:  []trace.Attr{{K: "shard", V: fmt.Sprint(shard)}},
		}
		if part.err != nil {
			child.Attrs = append(child.Attrs, trace.Attr{K: "err", V: part.err.Error()})
		}
		r.tracer.Record(child)
		return part
	})
	parent.Dur = r.env.Now() - parent.Start
	r.tracer.Record(parent)
	return parts
}

// gather applies the partial-failure policy to per-shard outcomes:
// any failure bumps sharding.scatter_partial; with AllowPartial the
// scatter still succeeds unless every shard failed.
func (r *Router) gather(parts []shardPart, opts ScatterOptions) *PartialError {
	failed := 0
	outcomes := make([]ShardOutcome, len(parts))
	for i, part := range parts {
		n := part.count
		if n == 0 {
			n = len(part.docs)
		}
		outcomes[i] = ShardOutcome{Shard: i, Docs: n, Err: part.err}
		if part.err != nil {
			failed++
		}
	}
	if failed == 0 {
		return nil
	}
	r.scatterPartial.Inc(1)
	perr := &PartialError{Outcomes: outcomes}
	if opts.AllowPartial && failed < len(parts) {
		return nil
	}
	return perr
}

// ScatterFind fans a filtered query out to every shard (each through
// its own Decongestant routing decision) and merges the results in
// _id order, honoring the limit across the union. Under the real-time
// environment the shards are queried concurrently; the limit is
// pushed down so no shard returns more than the union needs.
func (r *Router) ScatterFind(p sim.Proc, collection string, f storage.Filter, limit int) ([]storage.Document, error) {
	return r.ScatterFindOpts(p, collection, f, limit, ScatterOptions{})
}

// ScatterFindOpts is ScatterFind with explicit failure semantics.
func (r *Router) ScatterFindOpts(p sim.Proc, collection string, f storage.Filter, limit int, opts ScatterOptions) ([]storage.Document, error) {
	return r.scatterFind(p, r.tracer.StartTrace(), collection, f, limit, opts)
}

func (r *Router) scatterFind(p sim.Proc, tctx trace.Context, collection string, f storage.Filter, limit int, opts ScatterOptions) ([]storage.Document, error) {
	r.noteCollection(collection)
	parts := r.scatter(p, tctx, "find", func(p sim.Proc, shard int) shardPart {
		res, _, _, err := r.systems[shard].Router.Read(p, func(v cluster.ReadView) (any, error) {
			return v.Find(collection, f, limit), nil
		})
		if err != nil {
			return shardPart{err: err}
		}
		docs := res.([]storage.Document)
		// Index-driven scans return index-key order; the k-way merge
		// needs each run sorted by _id.
		if !sorted(docs) {
			sort.Slice(docs, func(i, j int) bool { return docs[i].ID() < docs[j].ID() })
		}
		return shardPart{docs: docs}
	})
	perr := r.gather(parts, opts)
	runs := make([]shardRun, 0, len(parts))
	for shard, part := range parts {
		if part.err == nil && len(part.docs) > 0 {
			runs = append(runs, shardRun{shard: shard, docs: part.docs})
		}
	}
	merged := mergeByID(runs, limit, r.Owner)
	if perr != nil {
		return merged, perr
	}
	return merged, nil
}

// ScatterCount fans a filtered count to every shard and sums.
func (r *Router) ScatterCount(p sim.Proc, collection string, f storage.Filter) (int, error) {
	return r.ScatterCountOpts(p, collection, f, ScatterOptions{})
}

// ScatterCountOpts is ScatterCount with explicit failure semantics.
func (r *Router) ScatterCountOpts(p sim.Proc, collection string, f storage.Filter, opts ScatterOptions) (int, error) {
	return r.scatterCount(p, r.tracer.StartTrace(), collection, f, opts)
}

func (r *Router) scatterCount(p sim.Proc, tctx trace.Context, collection string, f storage.Filter, opts ScatterOptions) (int, error) {
	r.noteCollection(collection)
	// In chunk mode each shard counts only the ranges it owns under ONE
	// authoritative table snapshot, so a migrating range — transiently
	// present on both source and destination — is counted exactly once.
	// Registration precedes the snapshot: cleanup of a just-moved range
	// drains these entries first, so the copy being counted stays
	// intact. A caller-supplied _id condition intersects with each
	// chunk's range (two-sided range conditions carry the interval), so
	// _id-constrained filters get the same exactness guarantee instead
	// of falling back to the overcount-prone per-shard sum.
	var table *ChunkMap
	if r.auth != nil {
		var guards []lease
		table, guards = r.auth.enterScatter()
		defer func() {
			for _, g := range guards {
				g.release()
			}
		}()
	}
	parts := r.scatter(p, tctx, "count", func(p sim.Proc, shard int) shardPart {
		res, _, _, err := r.systems[shard].Router.Read(p, func(v cluster.ReadView) (any, error) {
			if table == nil {
				return v.Count(collection, f), nil
			}
			n := 0
			for _, ck := range table.Chunks {
				if ck.Shard == shard {
					n += chunkCount(v, collection, f, ck)
				}
			}
			return n, nil
		})
		if err != nil {
			return shardPart{err: err}
		}
		return shardPart{count: res.(int)}
	})
	perr := r.gather(parts, opts)
	total := 0
	for _, part := range parts {
		if part.err == nil {
			total += part.count
		}
	}
	if perr != nil {
		return total, perr
	}
	return total, nil
}

// chunkCount counts the f-matching documents inside [ck.Min, ck.Max)
// under one read view. Two-sided range conditions let the chunk bound
// and any caller-supplied _id condition merge into one closed-interval
// count — a single scan even against a remote view, so there is no
// pair of wire reads to straddle a concurrent write. Only the $ne
// shape still needs a difference (the interval minus the excluded
// point); its clamp guards the remote view, where those two counts are
// separate round trips.
func chunkCount(v cluster.ReadView, collection string, f storage.Filter, ck Chunk) int {
	g, empty, excluded := chunkFilter(f, ck)
	if empty {
		return 0
	}
	n := v.Count(collection, g)
	if excluded != "" {
		h := make(storage.Filter, len(g)+1)
		for k, c := range g {
			h[k] = c
		}
		h["_id"] = storage.Eq(excluded)
		n -= v.Count(collection, h)
		if n < 0 {
			n = 0
		}
	}
	return n
}

// chunkFilter returns f with its _id condition intersected with the
// chunk's [Min, Max) range. empty=true means the intersection is
// provably empty (count 0, no scan needed). excluded carries the
// single in-range _id a $ne condition removes; the caller subtracts
// its count separately, since a condition slot holds at most an
// interval. All _ids are strings, so a non-string bound is
// type-bracketed: equality/range/$in shapes match nothing, while $ne
// and $exists are vacuously true.
func chunkFilter(f storage.Filter, ck Chunk) (g storage.Filter, empty bool, excluded string) {
	lo, hi := ck.Min, ck.Max
	var inIDs []any
	cnd, has := f["_id"]
	if has {
		switch {
		case cnd.Op == storage.OpEq:
			s, ok := cnd.Value.(string)
			if !ok || !keyInRange(s, lo, hi) {
				return nil, true, ""
			}
			// The equality is at least as tight as the chunk bound, and
			// only the owning chunk reaches here: count it as-is.
			return f, false, ""
		case cnd.Op == storage.OpIn:
			for _, v := range cnd.Values {
				if s, ok := v.(string); ok && keyInRange(s, lo, hi) {
					inIDs = append(inIDs, s)
				}
			}
			if len(inIDs) == 0 {
				return nil, true, ""
			}
		case cnd.Op == storage.OpNe:
			if s, ok := cnd.Value.(string); ok && keyInRange(s, lo, hi) {
				excluded = s
			}
		case cnd.Op == storage.OpExists:
			// _id always exists; the chunk bound alone remains.
		case storage.IsRangeOp(cnd.Op):
			tighten := func(op storage.Op, v any) bool {
				s, ok := v.(string)
				if !ok {
					return false
				}
				switch op {
				case storage.OpGt:
					s += "\x00" // successor: Gt s == Gte s+"\x00" on raw strings
					fallthrough
				case storage.OpGte:
					if s > lo {
						lo = s
					}
				case storage.OpLte:
					s += "\x00"
					fallthrough
				case storage.OpLt:
					if hi == "" || s < hi {
						hi = s
					}
				}
				return true
			}
			if !tighten(cnd.Op, cnd.Value) {
				return nil, true, ""
			}
			if cnd.Op2 != 0 && !tighten(cnd.Op2, cnd.Value2) {
				return nil, true, ""
			}
		default:
			// An unknown condition shape matches nothing.
			return nil, true, ""
		}
	}
	if hi != "" && hi <= lo {
		return nil, true, ""
	}
	g = make(storage.Filter, len(f)+1)
	for k, c := range f {
		g[k] = c
	}
	switch {
	case inIDs != nil:
		g["_id"] = storage.Cond{Op: storage.OpIn, Values: inIDs}
	case lo == "" && hi == "":
		delete(g, "_id") // whole-keyspace chunk, no residual bound
	case hi == "":
		g["_id"] = storage.Gte(lo)
	case lo == "":
		g["_id"] = storage.Lt(hi)
	default:
		g["_id"] = storage.Range(lo, hi)
	}
	return g, false, excluded
}

func sorted(docs []storage.Document) bool {
	for i := 1; i < len(docs); i++ {
		if docs[i].ID() < docs[i-1].ID() {
			return false
		}
	}
	return true
}

// shardRun is one shard's sorted result run entering the k-way merge;
// the shard index lets the merge resolve duplicate _ids in favor of
// the owning shard.
type shardRun struct {
	shard int
	docs  []storage.Document
}

// runHeap is a min-heap of sorted runs keyed by each run's head _id —
// the streaming side of the k-way merge.
type runHeap struct {
	runs []shardRun
}

func (h *runHeap) Len() int { return len(h.runs) }
func (h *runHeap) Less(i, j int) bool {
	return h.runs[i].docs[0].ID() < h.runs[j].docs[0].ID()
}
func (h *runHeap) Swap(i, j int) { h.runs[i], h.runs[j] = h.runs[j], h.runs[i] }
func (h *runHeap) Push(x any)    { h.runs = append(h.runs, x.(shardRun)) }
func (h *runHeap) Pop() any      { n := len(h.runs); r := h.runs[n-1]; h.runs = h.runs[:n-1]; return r }

// mergeByID streams the k sorted runs into one _id-ordered slice,
// stopping at limit instead of materializing the full union. It
// de-duplicates equal _ids across runs — during a chunk migration the
// moving range transiently exists on both source and destination, and
// the merge must not surface both copies. When owner is non-nil,
// duplicates resolve to the copy from the shard that owns the key
// under the router's cached table: pre-flip that is the source (the
// authoritative copy; the destination's clone may lag), post-flip the
// destination (by then fully drained). Keeping whichever copy the
// heap pops first would arbitrarily surface stale clone data.
func mergeByID(runs []shardRun, limit int, owner func(string) int) []storage.Document {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		out := runs[0].docs
		if limit > 0 && len(out) > limit {
			out = out[:limit]
		}
		return dedupSorted(out)
	}
	h := &runHeap{runs: runs}
	heap.Init(h)
	total := 0
	for _, r := range runs {
		total += len(r.docs)
	}
	if limit > 0 && limit < total {
		total = limit
	}
	out := make([]storage.Document, 0, total)
	lastID := ""
	lastShard := -1
	// Keep draining duplicates of the last emitted _id even once the
	// limit is reached, so the owner's copy can still displace a stale
	// one that happened to pop first.
	for h.Len() > 0 && (limit <= 0 || len(out) < limit || h.runs[0].docs[0].ID() == lastID) {
		run := h.runs[0]
		d := run.docs[0]
		id := d.ID()
		switch {
		case len(out) == 0 || id != lastID:
			out = append(out, d)
			lastID, lastShard = id, run.shard
		case owner != nil && run.shard != lastShard && owner(id) == run.shard:
			out[len(out)-1] = d
			lastShard = run.shard
		}
		if len(run.docs) > 1 {
			h.runs[0].docs = run.docs[1:]
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out
}

// dedupSorted removes adjacent duplicate _ids from a sorted run.
func dedupSorted(docs []storage.Document) []storage.Document {
	for i := 1; i < len(docs); i++ {
		if docs[i].ID() == docs[i-1].ID() {
			out := append([]storage.Document(nil), docs[:i]...)
			for _, d := range docs[i:] {
				if d.ID() != out[len(out)-1].ID() {
					out = append(out, d)
				}
			}
			return out
		}
	}
	return docs
}
