package oplog

// Benchmark for capped-oplog maintenance: the steady state of a loaded
// primary is "append a batch, truncate back to the cap". With the flat
// slice representation every truncation copies the entire retained
// suffix (O(cap)); the ring representation only releases the dropped
// slots (O(dropped)).
//
// Run with:
//
//	go test ./internal/oplog -run '^$' -bench BenchmarkOplogTruncate -benchtime 1s -count 3 -benchmem

import (
	"testing"
	"time"
)

// BenchmarkOplogTruncate models one maintenance round at a capped
// primary oplog: append truncateBatch entries at the tail, then cut
// back to truncateCap. Throughput is reported in maintained entries/s.
func BenchmarkOplogTruncate(b *testing.B) {
	const (
		truncateCap   = 100_000
		truncateBatch = 1_000
	)
	l := NewLog()
	now := time.Duration(0)
	fill := func(count int) {
		for i := 0; i < count; i++ {
			now += time.Millisecond
			ts := l.NextTS(now)
			if err := l.Append(NewNoop(ts)); err != nil {
				b.Fatal(err)
			}
		}
	}
	fill(truncateCap)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill(truncateBatch)
		l.TruncateToLast(truncateCap)
	}
	b.StopTimer()
	if l.Len() != truncateCap {
		b.Fatalf("log length %d, want %d", l.Len(), truncateCap)
	}
	b.ReportMetric(float64(b.N*truncateBatch)/b.Elapsed().Seconds(), "entries/s")
}
